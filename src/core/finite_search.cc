#include "core/finite_search.h"

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace vqdr {

namespace {

// Progress cadence for instance enumeration: frequent enough to look alive,
// sparse enough that a callback-free run pays only the ticker branch.
constexpr std::uint64_t kProgressStride = 1024;

}  // namespace

DeterminacySearchResult SearchDeterminacyCounterexample(
    const ViewSet& views, const Query& q, const Schema& base,
    const EnumerationOptions& options) {
  VQDR_TRACE_SPAN("search.determinacy");
  DeterminacySearchResult result;

  // The examined tally is read back from the shared obs counter instead of
  // a parallel hand-rolled count (single-threaded searches, so the delta is
  // exactly this call's instances).
  obs::Counter& instances = obs::GetCounter("search.instances");
  const std::uint64_t instances_before = instances.value();
  obs::ProgressTicker ticker("search.instances", kProgressStride,
                             options.max_instances);

  // First instance and query answer seen per view-image key.
  struct GroupInfo {
    Instance first{Schema{}};
    Relation answer{0};
  };
  std::map<std::string, GroupInfo> groups;

  bool cancelled = false;
  EnumerationOutcome outcome =
      ForEachInstance(base, options, [&](const Instance& d) {
        instances.Increment();
        if (!ticker.Tick()) {
          cancelled = true;
          return false;
        }
        Instance image = views.Apply(d);
        std::string key = image.ToKey();
        Relation answer = q.Eval(d);
        auto it = groups.find(key);
        if (it == groups.end()) {
          VQDR_COUNTER_INC("search.groups");
          groups.emplace(key, GroupInfo{d, answer});
          return true;
        }
        if (it->second.answer != answer) {
          VQDR_COUNTER_INC("search.counterexamples");
          result.verdict = SearchVerdict::kCounterexampleFound;
          result.counterexample =
              DeterminacyCounterexample{it->second.first, d};
          return false;
        }
        return true;
      });
  result.instances_examined = instances.value() - instances_before;
  if (result.verdict != SearchVerdict::kCounterexampleFound &&
      (!outcome.complete || cancelled)) {
    result.verdict = SearchVerdict::kBudgetExhausted;
  }
  return result;
}

MonotonicitySearchResult SearchMonotonicityViolation(
    const ViewSet& views, const Query& q, const Schema& base,
    const EnumerationOptions& options) {
  VQDR_TRACE_SPAN("search.monotonicity");
  MonotonicitySearchResult result;

  obs::Counter& instances = obs::GetCounter("search.mono.instances");
  const std::uint64_t instances_before = instances.value();
  obs::ProgressTicker ticker("search.mono.instances", kProgressStride,
                             options.max_instances);

  struct Entry {
    Instance d{Schema{}};
    Instance image{Schema{}};
    Relation answer{0};
  };
  std::vector<Entry> entries;

  bool cancelled = false;
  EnumerationOutcome outcome =
      ForEachInstance(base, options, [&](const Instance& d) {
        instances.Increment();
        if (!ticker.Tick()) {
          cancelled = true;
          return false;
        }
        entries.push_back(Entry{d, views.Apply(d), q.Eval(d)});
        return true;
      });
  result.instances_examined = instances.value() - instances_before;

  obs::Counter& pairs = obs::GetCounter("search.mono.pairs");
  for (const Entry& a : entries) {
    for (const Entry& b : entries) {
      if (&a == &b) continue;
      if (!a.image.IsSubInstanceOf(b.image)) continue;
      pairs.Increment();
      if (!a.answer.IsSubsetOf(b.answer)) {
        VQDR_COUNTER_INC("search.mono.violations");
        result.verdict = SearchVerdict::kCounterexampleFound;
        result.violation =
            MonotonicityViolation{a.d, b.d, a.image, b.image};
        return result;
      }
    }
  }
  if (!outcome.complete || cancelled) {
    result.verdict = SearchVerdict::kBudgetExhausted;
  }
  return result;
}

}  // namespace vqdr
