#ifndef VQDR_BASE_STATUS_H_
#define VQDR_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "base/check.h"

namespace vqdr {

// Minimal error-reporting types. The library does not use exceptions
// (following the Google style guide); fallible public entry points (parsers,
// budgeted searches) return Status or StatusOr<T>.

/// Machine-readable classification of an error, so callers can distinguish
/// misuse (kInvalidArgument) from a budget stop (kResourceExhausted), an
/// external cancellation (kCancelled) and an engine-internal failure
/// (kInternal) without parsing the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kResourceExhausted,
  kCancelled,
  kInternal,
  kUnknown,
};

/// The canonical short name of a code ("OK", "INVALID_ARGUMENT", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnknown:
      return "UNKNOWN";
  }
  return "UNKNOWN";
}

/// A success-or-error value carrying a code and a human-readable message on
/// error.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status with the given message and code
  /// (kUnknown when the caller has nothing more precise to say).
  static Status Error(std::string message,
                      StatusCode code = StatusCode::kUnknown) {
    Status s;
    s.message_ = std::move(message);
    s.code_ = code == StatusCode::kOk ? StatusCode::kUnknown : code;
    return s;
  }

  /// The caller passed something malformed (parse errors, bad options).
  static Status InvalidArgument(std::string message) {
    return Error(std::move(message), StatusCode::kInvalidArgument);
  }

  /// A budget (deadline, steps, memory) stopped the call before completion.
  static Status ResourceExhausted(std::string message) {
    return Error(std::move(message), StatusCode::kResourceExhausted);
  }

  /// The caller (or a progress callback) asked the call to stop.
  static Status Cancelled(std::string message) {
    return Error(std::move(message), StatusCode::kCancelled);
  }

  /// An invariant broke inside the library (captured task exception,
  /// injected fault, allocation failure).
  static Status Internal(std::string message) {
    return Error(std::move(message), StatusCode::kInternal);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value so `return value;` works in functions returning
  /// StatusOr<T>.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  /// Implicit from an error status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    VQDR_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// The contained value; the StatusOr must be OK.
  const T& value() const& {
    VQDR_CHECK(ok()) << "value() on error StatusOr: " << status_.message();
    return *value_;
  }

  T& value() & {
    VQDR_CHECK(ok()) << "value() on error StatusOr: " << status_.message();
    return *value_;
  }

  T&& value() && {
    VQDR_CHECK(ok()) << "value() on error StatusOr: " << status_.message();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace vqdr

#endif  // VQDR_BASE_STATUS_H_
