#ifndef VQDR_FO_LIBRARY_H_
#define VQDR_FO_LIBRARY_H_

#include <string>

#include "fo/formula.h"

namespace vqdr {

/// Builders for the stock FO sentences used by the paper's constructions.

/// ψ of Example 3.2 (with strict orders, as in Proposition 5.7): the binary
/// relation `rel` is a strict total order on the active domain —
/// irreflexive, transitive, and total (x ≠ y → x<y ∨ y<x).
FoPtr StrictTotalOrderSentence(const std::string& rel);

/// `rel` is a (non-strict) linear order ≤ on the active domain: reflexive,
/// antisymmetric, transitive, total.
FoPtr LinearOrderSentence(const std::string& rel);

/// The conjunction of two formulas (convenience).
FoPtr AndAlso(FoPtr a, FoPtr b);

}  // namespace vqdr

#endif  // VQDR_FO_LIBRARY_H_
