file(REMOVE_RECURSE
  "CMakeFiles/vqdr_fo.dir/evaluator.cc.o"
  "CMakeFiles/vqdr_fo.dir/evaluator.cc.o.d"
  "CMakeFiles/vqdr_fo.dir/formula.cc.o"
  "CMakeFiles/vqdr_fo.dir/formula.cc.o.d"
  "CMakeFiles/vqdr_fo.dir/from_cq.cc.o"
  "CMakeFiles/vqdr_fo.dir/from_cq.cc.o.d"
  "CMakeFiles/vqdr_fo.dir/library.cc.o"
  "CMakeFiles/vqdr_fo.dir/library.cc.o.d"
  "CMakeFiles/vqdr_fo.dir/normalize.cc.o"
  "CMakeFiles/vqdr_fo.dir/normalize.cc.o.d"
  "CMakeFiles/vqdr_fo.dir/order_invariance.cc.o"
  "CMakeFiles/vqdr_fo.dir/order_invariance.cc.o.d"
  "CMakeFiles/vqdr_fo.dir/parser.cc.o"
  "CMakeFiles/vqdr_fo.dir/parser.cc.o.d"
  "libvqdr_fo.a"
  "libvqdr_fo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqdr_fo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
