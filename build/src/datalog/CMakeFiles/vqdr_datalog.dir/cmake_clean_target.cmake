file(REMOVE_RECURSE
  "libvqdr_datalog.a"
)
