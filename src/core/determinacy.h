#ifndef VQDR_CORE_DETERMINACY_H_
#define VQDR_CORE_DETERMINACY_H_

#include <optional>

#include "cq/conjunctive_query.h"
#include "data/instance.h"
#include "guard/budget.h"
#include "memo/memo.h"
#include "obs/explain.h"
#include "views/view_set.h"

namespace vqdr {

/// Result of the unrestricted-case determinacy decision for CQ views and a
/// CQ query (Theorems 3.3/3.7 of the paper).
struct UnrestrictedDeterminacyResult {
  /// Whether V ↠ Q over unrestricted (finite or infinite) instances.
  /// Unrestricted determinacy implies finite determinacy, so a true answer
  /// is also a sound finite-determinacy certificate; a false answer says
  /// nothing about the finite case (their equivalence for CQs is the
  /// paper's central open problem, Theorem 5.11).
  bool determined = false;

  /// S = V([Q]): the canonical view image — the frozen body of the
  /// canonical rewriting Q_V (Proposition 3.5).
  Instance canonical_view_image{Schema{}};

  /// The frozen head x̄ (image of Q's head terms in [Q]).
  Tuple frozen_head;

  /// D' = V_∅^{-1}(S): the chased-back inverse used by the decision test
  /// x̄ ∈ Q(D').
  Instance chase_inverse{Schema{}};

  /// The canonical rewriting Q_V over σ_V with [Q_V] = S. Present iff
  /// determined; by Proposition 3.5 it satisfies Q = Q_V ∘ V.
  std::optional<ConjunctiveQuery> canonical_rewriting;

  /// Why the decision ended. `determined` is meaningful only when this is
  /// kComplete — a budget-stopped decision reports the partial chase (the
  /// fields computed so far) and never fabricates a verdict.
  guard::Outcome outcome = guard::Outcome::kComplete;
};

/// Decides V ↠ Q in the unrestricted case (Theorem 3.7): computes
/// S = V([Q]), chases back D' = V_∅^{-1}(S), and tests x̄ ∈ Q(D').
/// Requires pure CQ views and query.
///
/// `budget`, when non-null, bounds the chase-back and the decision match;
/// on a trip the result carries outcome != kComplete and whatever was
/// already computed (canonical image, partial inverse).
///
/// `memo` controls result caching: the full result (verdict, canonical
/// image, inverse, rewriting) is cached under an exact key — the decision
/// builds its own value factory, so equal inputs replay byte-identically —
/// and only kComplete outcomes are ever installed. See DESIGN.md §9.
///
/// `explain`, when non-null (and VQDR_OBS is compiled in), receives the
/// decision's provenance: a kDecision event carrying either the replayable
/// homomorphism witnessing x̄ ∈ Q(D') (determined) or the chased-back D'
/// that refutes it (not determined), plus kMemo events for cache probes.
UnrestrictedDeterminacyResult DecideUnrestrictedDeterminacy(
    const ViewSet& views, const ConjunctiveQuery& q,
    guard::Budget* budget = nullptr, const memo::MemoOptions& memo = {},
    obs::ExplainLog* explain = nullptr);

}  // namespace vqdr

#endif  // VQDR_CORE_DETERMINACY_H_
