#include "core/finite_search.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cq/explain_bridge.h"
#include "guard/fault.h"
#include "obs/context.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

#ifndef VQDR_PAR_DISABLED
#include "par/pool.h"
#include "par/shard.h"
#endif

namespace vqdr {

namespace {

// Progress cadence for instance enumeration: frequent enough to look alive,
// sparse enough that a callback-free run pays only the ticker branch.
constexpr std::uint64_t kProgressStride = 1024;

#ifndef VQDR_PAR_DISABLED
// Budget-checkpoint cadence inside parallel workers: tighter than the
// progress stride so deadlines and cancellation land promptly even when the
// per-instance work is expensive.
constexpr std::uint64_t kGovernStride = 128;
#endif

std::vector<Value> UniverseFor(const EnumerationOptions& options) {
  std::vector<Value> universe;
  for (int v = 1; v <= options.domain_size; ++v) universe.push_back(Value(v));
  return universe;
}

int ResolveThreads(const EnumerationOptions& options) {
#ifdef VQDR_PAR_DISABLED
  (void)options;
  return 1;
#else
  int threads = options.threads;
  if (threads == 0) threads = par::DefaultThreads();
  return threads < 1 ? 1 : threads;
#endif
}

DeterminacySearchResult SearchDeterminacyCounterexampleSerial(
    const ViewSet& views, const Query& q, const Schema& base,
    const EnumerationOptions& options) {
  DeterminacySearchResult result;

  obs::CounterSite instances = obs::GetCounterSite("search.instances");
  obs::ProgressTicker ticker("search.instances", kProgressStride,
                             options.max_instances);

  // The examined tally is a local count of body invocations (mirrored into
  // the shared obs counter): a local count, unlike a counter *delta*, stays
  // exact when other threads run searches concurrently.
  std::uint64_t examined = 0;

  // First instance and query answer seen per view-image key.
  struct GroupInfo {
    Instance first{Schema{}};
    Relation answer{0};
  };
  std::map<std::string, GroupInfo> groups;

  bool cancelled = false;
  EnumerationOutcome outcome;
  try {
    outcome = ForEachInstance(base, options, [&](const Instance& d) {
      instances.Increment();
      ++examined;
      if (!ticker.Tick()) {
        cancelled = true;
        return false;
      }
      VQDR_FAULT_ALLOC("search.instances");
      Instance image = views.Apply(d);
      std::string key = image.ToKey();
      Relation answer = q.Eval(d);
      auto it = groups.find(key);
      if (it == groups.end()) {
        VQDR_COUNTER_INC("search.groups");
        groups.emplace(key, GroupInfo{d, answer});
        return true;
      }
      if (it->second.answer != answer) {
        VQDR_COUNTER_INC("search.counterexamples");
        result.verdict = SearchVerdict::kCounterexampleFound;
        result.counterexample =
            DeterminacyCounterexample{it->second.first, d};
        return false;
      }
      return true;
    });
  } catch (...) {
    // Allocation failure (real or injected) mid-sweep: report the honest
    // prefix instead of propagating. The throwing instance did not finish,
    // so it is not part of the examined prefix.
    if (options.budget != nullptr) options.budget->MarkInternalError();
    result.verdict = SearchVerdict::kBudgetExhausted;
    result.outcome = guard::Outcome::kInternalError;
    result.instances_examined = examined > 0 ? examined - 1 : 0;
    return result;
  }
  result.instances_examined = examined;
  if (result.verdict != SearchVerdict::kCounterexampleFound &&
      (!outcome.complete || cancelled)) {
    result.verdict = SearchVerdict::kBudgetExhausted;
    result.outcome = cancelled ? guard::Outcome::kCancelled : outcome.outcome;
  }
  return result;
}

#ifndef VQDR_PAR_DISABLED

// Per-chunk grouping record: enough to reconstruct, at merge time, the first
// conflict the serial sweep would have reported. For each view-image key a
// chunk remembers its locally-first instance (with its answer) and the first
// local instance whose answer differs from that local first. Given the key's
// *global* first answer A from earlier chunks, the chunk's earliest conflict
// against A is either its local first (when its answer != A) or its recorded
// differing instance (when the local first agrees with A) — no other local
// instance can conflict earlier.
struct GroupRecord {
  std::uint64_t first_index = 0;
  Instance first{Schema{}};
  Relation first_answer{0};
  bool has_diff = false;
  std::uint64_t diff_index = 0;
  Instance diff{Schema{}};
};

struct SearchChunk {
  bool processed = false;
  std::uint64_t examined = 0;
  std::map<std::string, GroupRecord> groups;
};

DeterminacySearchResult SearchDeterminacyCounterexampleParallel(
    const ViewSet& views, const Query& q, const InstanceSpace& space,
    const EnumerationOptions& options, int threads) {
  VQDR_TRACE_SPAN("search.determinacy.par");

  const bool truncated = space.total() > options.max_instances;
  const std::uint64_t n = truncated ? options.max_instances : space.total();
  par::ShardPlan plan = par::PlanShards(n, threads);

  std::vector<SearchChunk> chunks(plan.num_chunks);
  par::FirstHit hint;
  par::OpContext op("search.instances", options.max_instances,
                    kProgressStride, options.budget);
  obs::CounterSite instances = obs::GetCounterSite("search.instances");

  std::uint64_t pool_errors = 0;
  {
    par::ThreadPool pool(threads);
    par::ParallelForChunks(pool, plan.num_chunks, [&](std::uint64_t c) {
      if (op.cancelled()) return;
      const std::uint64_t begin = plan.Begin(c);
      // A conflict strictly before this chunk already beats anything the
      // chunk could contribute (lowest index wins) — skip it.
      if (hint.best() < begin) return;
      SearchChunk& chunk = chunks[c];
      std::uint64_t since_report = 0;
      bool completed = true;
      space.ForRange(
          begin, plan.End(c), [&](std::uint64_t idx, const Instance& d) {
            VQDR_FAULT_ALLOC("search.instances");
            ++chunk.examined;
            Instance image = views.Apply(d);
            std::string key = image.ToKey();
            Relation answer = q.Eval(d);
            auto it = chunk.groups.find(key);
            if (it == chunk.groups.end()) {
              VQDR_COUNTER_INC("search.groups");
              chunk.groups.emplace(
                  std::move(key),
                  GroupRecord{idx, d, std::move(answer), false, 0,
                              Instance{Schema{}}});
            } else if (!it->second.has_diff &&
                       answer != it->second.first_answer) {
              it->second.has_diff = true;
              it->second.diff_index = idx;
              it->second.diff = d;
              hint.TryImprove(idx);
            }
            if (++since_report >= kGovernStride) {
              if (!op.AddProgress(since_report)) {
                completed = false;
                return false;
              }
              since_report = 0;
              if (hint.best() < begin) {
                // Pruned mid-flight: treat like a skipped chunk.
                completed = false;
                return false;
              }
            }
            return true;
          });
      op.AddProgress(since_report);
      instances.Add(chunk.examined);
      chunk.processed = completed;
    });
    // A task that threw (injected allocation failure, say) left its chunk
    // unprocessed; the pool captured the exception and kept draining.
    pool_errors = pool.error_count();
    if (pool_errors > 0) pool.TakeFirstError();
  }
  if (pool_errors > 0 && options.budget != nullptr) {
    options.budget->MarkInternalError();
  }

  // Deterministic merge, in chunk order. The merge stops at the first
  // unprocessed chunk: chunks are only skipped when a conflict strictly
  // before them exists, so the winning (lowest-index) conflict always lies
  // within the contiguous processed prefix.
  struct GlobalEntry {
    const Instance* first;
    const Relation* answer;
  };
  std::map<std::string, GlobalEntry> global;
  std::uint64_t best_index = par::FirstHit::kNone;
  const Instance* best_d1 = nullptr;
  const Instance* best_d2 = nullptr;
  auto candidate = [&](std::uint64_t index, const Instance* d1,
                       const Instance* d2) {
    if (index < best_index) {
      best_index = index;
      best_d1 = d1;
      best_d2 = d2;
    }
  };
  std::uint64_t prefix = 0;
  bool prefix_complete = true;
  for (std::uint64_t c = 0; c < plan.num_chunks; ++c) {
    if (!chunks[c].processed) {
      prefix_complete = false;
      break;
    }
    prefix += plan.Size(c);
    for (auto& [key, rec] : chunks[c].groups) {
      auto git = global.find(key);
      if (git == global.end()) {
        if (rec.has_diff) candidate(rec.diff_index, &rec.first, &rec.diff);
        global.emplace(key, GlobalEntry{&rec.first, &rec.first_answer});
      } else if (*git->second.answer != rec.first_answer) {
        candidate(rec.first_index, git->second.first, &rec.first);
      } else if (rec.has_diff) {
        candidate(rec.diff_index, git->second.first, &rec.diff);
      }
    }
  }

  DeterminacySearchResult result;
  if (best_index != par::FirstHit::kNone) {
    VQDR_COUNTER_INC("search.counterexamples");
    result.verdict = SearchVerdict::kCounterexampleFound;
    result.counterexample = DeterminacyCounterexample{*best_d1, *best_d2};
    // The serial sweep stops on the conflicting instance: index + 1 bodies.
    result.instances_examined = best_index + 1;
  } else if (!prefix_complete || truncated || op.cancelled() ||
             pool_errors > 0) {
    result.verdict = SearchVerdict::kBudgetExhausted;
    result.instances_examined = prefix;
    result.outcome = op.outcome();
    if (pool_errors > 0) result.outcome = guard::Outcome::kInternalError;
    if (guard::IsComplete(result.outcome)) {
      // Space truncation without a budget trip: same class of stop as a
      // step budget.
      result.outcome = guard::Outcome::kStepBudgetExhausted;
    }
  } else {
    result.verdict = SearchVerdict::kNoneWithinBound;
    result.instances_examined = n;
  }
  return result;
}

#endif  // VQDR_PAR_DISABLED

MonotonicitySearchResult SearchMonotonicityViolationSerial(
    const ViewSet& views, const Query& q, const Schema& base,
    const EnumerationOptions& options) {
  MonotonicitySearchResult result;

  obs::CounterSite instances = obs::GetCounterSite("search.mono.instances");
  obs::ProgressTicker ticker("search.mono.instances", kProgressStride,
                             options.max_instances);
  std::uint64_t examined = 0;

  struct Entry {
    Instance d{Schema{}};
    Instance image{Schema{}};
    Relation answer{0};
  };
  std::vector<Entry> entries;

  bool cancelled = false;
  EnumerationOutcome outcome;
  try {
    outcome = ForEachInstance(base, options, [&](const Instance& d) {
      instances.Increment();
      ++examined;
      if (!ticker.Tick()) {
        cancelled = true;
        return false;
      }
      VQDR_FAULT_ALLOC("search.instances");
      entries.push_back(Entry{d, views.Apply(d), q.Eval(d)});
      return true;
    });
  } catch (...) {
    if (options.budget != nullptr) options.budget->MarkInternalError();
    result.verdict = SearchVerdict::kBudgetExhausted;
    result.outcome = guard::Outcome::kInternalError;
    result.instances_examined = examined > 0 ? examined - 1 : 0;
    return result;
  }
  result.instances_examined = examined;

  obs::CounterSite pairs = obs::GetCounterSite("search.mono.pairs");
  for (const Entry& a : entries) {
    // One budget step per row: a row is O(entries) subset tests, so the
    // quadratic phase stays governable without per-pair overhead.
    guard::Outcome check = guard::Check(options.budget);
    if (!guard::IsComplete(check)) {
      result.verdict = SearchVerdict::kBudgetExhausted;
      result.outcome = check;
      return result;
    }
    // Tally the row locally and flush once: a row is O(entries) qualifying
    // pairs, and per-pair counter traffic (global + per-op mirror) is
    // measurable on the hot path.
    std::uint64_t row_pairs = 0;
    for (const Entry& b : entries) {
      if (&a == &b) continue;
      if (!a.image.IsSubInstanceOf(b.image)) continue;
      ++row_pairs;
      if (!a.answer.IsSubsetOf(b.answer)) {
        pairs.Add(row_pairs);
        VQDR_COUNTER_INC("search.mono.violations");
        result.verdict = SearchVerdict::kCounterexampleFound;
        result.violation =
            MonotonicityViolation{a.d, b.d, a.image, b.image};
        return result;
      }
    }
    if (row_pairs != 0) pairs.Add(row_pairs);
  }
  if (!outcome.complete || cancelled) {
    result.verdict = SearchVerdict::kBudgetExhausted;
    result.outcome = cancelled ? guard::Outcome::kCancelled : outcome.outcome;
  }
  return result;
}

#ifndef VQDR_PAR_DISABLED

MonotonicitySearchResult SearchMonotonicityViolationParallel(
    const ViewSet& views, const Query& q, const InstanceSpace& space,
    const EnumerationOptions& options, int threads) {
  VQDR_TRACE_SPAN("search.monotonicity.par");

  const bool truncated = space.total() > options.max_instances;
  const std::uint64_t n = truncated ? options.max_instances : space.total();

  struct Entry {
    Instance d{Schema{}};
    Instance image{Schema{}};
    Relation answer{0};
  };

  par::ThreadPool pool(threads);

  // Phase 1: evaluate (view image, answer) for every instance in the
  // prefix, sharded; entries are concatenated in chunk order afterwards, so
  // the merged vector is exactly the serial enumeration order.
  par::ShardPlan plan = par::PlanShards(n, threads);
  struct EntryChunk {
    bool processed = false;
    std::uint64_t examined = 0;
    std::vector<Entry> entries;
  };
  std::vector<EntryChunk> entry_chunks(plan.num_chunks);
  par::OpContext op("search.mono.instances", options.max_instances,
                    kProgressStride, options.budget);
  obs::CounterSite instances = obs::GetCounterSite("search.mono.instances");

  par::ParallelForChunks(pool, plan.num_chunks, [&](std::uint64_t c) {
    if (op.cancelled()) return;
    EntryChunk& chunk = entry_chunks[c];
    chunk.entries.reserve(plan.Size(c));
    std::uint64_t since_report = 0;
    bool completed = true;
    space.ForRange(plan.Begin(c), plan.End(c),
                   [&](std::uint64_t, const Instance& d) {
                     VQDR_FAULT_ALLOC("search.instances");
                     ++chunk.examined;
                     chunk.entries.push_back(
                         Entry{d, views.Apply(d), q.Eval(d)});
                     if (++since_report >= kGovernStride) {
                       if (!op.AddProgress(since_report)) {
                         completed = false;
                         return false;
                       }
                       since_report = 0;
                     }
                     return true;
                   });
    op.AddProgress(since_report);
    instances.Add(chunk.examined);
    chunk.processed = completed;
  });
  std::uint64_t pool_errors = pool.error_count();
  if (pool_errors > 0) {
    pool.TakeFirstError();
    if (options.budget != nullptr) options.budget->MarkInternalError();
  }

  std::vector<Entry> entries;
  entries.reserve(n);
  bool enumeration_complete = true;
  for (EntryChunk& chunk : entry_chunks) {
    if (!chunk.processed) {
      enumeration_complete = false;
      break;
    }
    for (Entry& e : chunk.entries) entries.push_back(std::move(e));
  }

  MonotonicitySearchResult result;
  result.instances_examined = entries.size();

  // Phase 2: the quadratic pair scan, sharded by row. Each row chunk
  // reports its lexicographically-first violating (a, b); the merge takes
  // the overall lexicographic minimum, reproducing the serial row-major
  // first hit. A published row hint prunes row chunks that start beyond it.
  const std::uint64_t rows = entries.size();
  par::ShardPlan row_plan = par::PlanShards(rows, threads, 1, 4096);
  struct RowHit {
    bool processed = false;
    bool found = false;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };
  std::vector<RowHit> row_hits(row_plan.num_chunks);
  par::FirstHit row_hint;
  obs::CounterSite pairs = obs::GetCounterSite("search.mono.pairs");

  par::ParallelForChunks(pool, row_plan.num_chunks, [&](std::uint64_t c) {
    const std::uint64_t row_begin = row_plan.Begin(c);
    if (row_hint.best() < row_begin) return;
    RowHit& hit = row_hits[c];
    std::uint64_t local_pairs = 0;
    bool completed = true;
    for (std::uint64_t a = row_begin; a < row_plan.End(c) && !hit.found;
         ++a) {
      // One budget step per row, matching the serial scan's granularity.
      if (!guard::IsComplete(guard::Check(options.budget))) {
        completed = false;
        break;
      }
      for (std::uint64_t b = 0; b < rows; ++b) {
        if (a == b) continue;
        if (!entries[a].image.IsSubInstanceOf(entries[b].image)) continue;
        ++local_pairs;
        if (!entries[a].answer.IsSubsetOf(entries[b].answer)) {
          hit.found = true;
          hit.a = a;
          hit.b = b;
          row_hint.TryImprove(a);
          break;
        }
      }
    }
    pairs.Add(local_pairs);
    hit.processed = completed;
  });
  std::uint64_t scan_errors = pool.error_count();
  if (scan_errors > 0) {
    pool.TakeFirstError();
    pool_errors += scan_errors;
    if (options.budget != nullptr) options.budget->MarkInternalError();
  }

  bool found = false;
  std::uint64_t best_a = 0;
  std::uint64_t best_b = 0;
  for (const RowHit& hit : row_hits) {
    if (!hit.processed) break;  // skipped: every candidate there is later
    if (hit.found &&
        (!found || hit.a < best_a || (hit.a == best_a && hit.b < best_b))) {
      found = true;
      best_a = hit.a;
      best_b = hit.b;
    }
  }

  bool row_scan_complete = true;
  for (const RowHit& hit : row_hits) {
    if (!hit.processed) {
      row_scan_complete = false;
      break;
    }
  }

  if (found) {
    VQDR_COUNTER_INC("search.mono.violations");
    result.verdict = SearchVerdict::kCounterexampleFound;
    result.violation = MonotonicityViolation{
        entries[best_a].d, entries[best_b].d, entries[best_a].image,
        entries[best_b].image};
    return result;
  }
  if (!enumeration_complete || !row_scan_complete || truncated ||
      op.cancelled() || pool_errors > 0) {
    result.verdict = SearchVerdict::kBudgetExhausted;
    result.outcome = op.outcome();
    if (pool_errors > 0) result.outcome = guard::Outcome::kInternalError;
    if (guard::IsComplete(result.outcome)) {
      result.outcome = guard::StopReason(options.budget);
    }
    if (guard::IsComplete(result.outcome)) {
      result.outcome = guard::Outcome::kStepBudgetExhausted;
    }
  }
  return result;
}

#endif  // VQDR_PAR_DISABLED

// Provenance for a finished bounded search: the refuting pair itself on a
// hit (both instances, replayable), a kNote stating what the silence means
// otherwise. Recorded in the top-level wrappers so serial and parallel
// sweeps produce identical logs.
void RecordSearchOutcome(obs::ExplainLog* log, const char* label,
                         SearchVerdict verdict,
                         std::uint64_t instances_examined, const Instance* d1,
                         const Instance* d2) {
  if (!obs::Wants(log)) return;
  obs::ExplainEvent e;
  e.label = label;
  e.stats["instances_examined"] =
      static_cast<std::int64_t>(instances_examined);
  switch (verdict) {
    case SearchVerdict::kCounterexampleFound:
      e.kind = obs::ExplainKind::kCounterexample;
      e.detail = "refuting pair found: equal view images, different answers";
      e.instance = ToExplainFacts(*d1);
      e.instance2 = ToExplainFacts(*d2);
      break;
    case SearchVerdict::kNoneWithinBound:
      e.kind = obs::ExplainKind::kNote;
      e.detail = "no counterexample within bound (silence, not proof)";
      break;
    case SearchVerdict::kBudgetExhausted:
      e.kind = obs::ExplainKind::kNote;
      e.detail = "search stopped before covering the space";
      break;
  }
  log->Append(std::move(e));
}

}  // namespace

DeterminacySearchResult SearchDeterminacyCounterexample(
    const ViewSet& views, const Query& q, const Schema& base,
    const EnumerationOptions& options) {
  obs::OpScope op(obs::OpKind::kSearch, "search.determinacy", options.budget);
  VQDR_TRACE_SPAN("search.determinacy");
  const int threads = ResolveThreads(options);
  DeterminacySearchResult result;
  bool computed = false;
#ifndef VQDR_PAR_DISABLED
  if (threads > 1) {
    InstanceSpace space(base, UniverseFor(options));
    if (space.indexable()) {
      result = SearchDeterminacyCounterexampleParallel(views, q, space,
                                                       options, threads);
      computed = true;
    }
    // Not indexable: the serial sweep's incremental bail-out semantics are
    // the only option.
  }
#endif
  if (!computed) {
    result = SearchDeterminacyCounterexampleSerial(views, q, base, options);
  }
  RecordSearchOutcome(
      options.explain, "search.determinacy", result.verdict,
      result.instances_examined,
      result.counterexample ? &result.counterexample->d1 : nullptr,
      result.counterexample ? &result.counterexample->d2 : nullptr);
  return result;
}

MonotonicitySearchResult SearchMonotonicityViolation(
    const ViewSet& views, const Query& q, const Schema& base,
    const EnumerationOptions& options) {
  obs::OpScope op(obs::OpKind::kMonotonicity, "search.monotonicity",
                  options.budget);
  VQDR_TRACE_SPAN("search.monotonicity");
  const int threads = ResolveThreads(options);
  MonotonicitySearchResult result;
  bool computed = false;
#ifndef VQDR_PAR_DISABLED
  if (threads > 1) {
    InstanceSpace space(base, UniverseFor(options));
    if (space.indexable()) {
      result = SearchMonotonicityViolationParallel(views, q, space, options,
                                                   threads);
      computed = true;
    }
  }
#endif
  if (!computed) {
    result = SearchMonotonicityViolationSerial(views, q, base, options);
  }
  RecordSearchOutcome(options.explain, "search.monotonicity", result.verdict,
                      result.instances_examined,
                      result.violation ? &result.violation->d1 : nullptr,
                      result.violation ? &result.violation->d2 : nullptr);
  return result;
}

}  // namespace vqdr
