file(REMOVE_RECURSE
  "CMakeFiles/vqdr_data.dir/instance.cc.o"
  "CMakeFiles/vqdr_data.dir/instance.cc.o.d"
  "CMakeFiles/vqdr_data.dir/isomorphism.cc.o"
  "CMakeFiles/vqdr_data.dir/isomorphism.cc.o.d"
  "CMakeFiles/vqdr_data.dir/relation.cc.o"
  "CMakeFiles/vqdr_data.dir/relation.cc.o.d"
  "CMakeFiles/vqdr_data.dir/schema.cc.o"
  "CMakeFiles/vqdr_data.dir/schema.cc.o.d"
  "CMakeFiles/vqdr_data.dir/tuple.cc.o"
  "CMakeFiles/vqdr_data.dir/tuple.cc.o.d"
  "CMakeFiles/vqdr_data.dir/value.cc.o"
  "CMakeFiles/vqdr_data.dir/value.cc.o.d"
  "libvqdr_data.a"
  "libvqdr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqdr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
