file(REMOVE_RECURSE
  "libvqdr_chase.a"
)
