// Converts a VQDR JSONL trace (the VQDR_TRACE sink format) into the Chrome
// trace_event JSON format, loadable in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing.
//
// Usage:  VQDR_TRACE=/tmp/run.jsonl ./determinacy_tool scenario.txt
//         ./trace_convert /tmp/run.jsonl > run.trace.json
//         (no argument: reads the JSONL stream from stdin)

#include <fstream>
#include <iostream>
#include <string>

#include "obs/export.h"

int main(int argc, char** argv) {
  std::istream* in = &std::cin;
  std::ifstream file;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::cerr << "error: cannot open " << argv[1] << "\n";
      return 1;
    }
    in = &file;
  }
  std::string error;
  if (!vqdr::obs::ConvertTraceJsonlToChrome(*in, std::cout, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  return 0;
}
