# Empty compiler generated dependencies file for bench_order_invariance.
# This may be replaced when dependencies are built.
