// Tests for the remaining core machinery: the twin-schema encoding of
// Section 4, Boolean-view determinacy (Theorem 4.6), query answering
// through views (Lemma 5.3 / Theorem 5.2), certain answers, and the
// monotonicity search.

#include <gtest/gtest.h>

#include "core/boolean_views.h"
#include "core/determinacy.h"
#include "core/finite_search.h"
#include "core/query_answering.h"
#include "core/twin_encoding.h"
#include "cq/matcher.h"
#include "cq/parser.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

class CoreExtraFixture : public ::testing::Test {
 protected:
  ConjunctiveQuery Cq(const std::string& text) {
    auto q = ParseCq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message();
    return q.value();
  }

  ViewSet CqViews(const std::vector<std::string>& defs) {
    ViewSet views;
    for (const std::string& def : defs) {
      ConjunctiveQuery q = Cq(def);
      views.Add(q.head_name(), Query::FromCq(q));
    }
    return views;
  }

  Instance Db(const std::string& text, const Schema& schema) {
    auto d = ParseInstance(text, schema, pool_);
    EXPECT_TRUE(d.ok()) << d.status().message();
    return d.value();
  }

  NamePool pool_;
};

// ---- Twin-schema encoding (Section 4) ----

TEST_F(CoreExtraFixture, TwinSearchFindsCounterexampleForProjection) {
  Schema base{{"E", 2}};
  ViewSet views = CqViews({"V(x) :- E(x, y)"});
  Query q = Query::FromCq(Cq("Q(x, y) :- E(x, y)"));
  TwinEncoding encoding = BuildTwinEncoding(views, q, base);
  EnumerationOptions options;
  options.domain_size = 2;
  TwinSatResult result = BoundedTwinSearch(encoding, base, options);
  ASSERT_EQ(result.verdict, SearchVerdict::kCounterexampleFound);
  const auto& ce = *result.counterexample;
  EXPECT_EQ(views.Apply(ce.d1), views.Apply(ce.d2));
  EXPECT_NE(q.Eval(ce.d1), q.Eval(ce.d2));
}

TEST_F(CoreExtraFixture, TwinSearchSilentOnDeterminedPair) {
  Schema base{{"E", 2}};
  ViewSet views = CqViews({"V(x, y) :- E(x, y)"});
  Query q = Query::FromCq(Cq("Q(x, y) :- E(x, z), E(z, y)"));
  TwinEncoding encoding = BuildTwinEncoding(views, q, base);
  EnumerationOptions options;
  options.domain_size = 2;
  TwinSatResult result = BoundedTwinSearch(encoding, base, options);
  EXPECT_EQ(result.verdict, SearchVerdict::kNoneWithinBound);
}

TEST_F(CoreExtraFixture, TwinSearchAgreesWithDirectSearch) {
  // The two bounded refutation methods must agree on refutability.
  Schema base{{"E", 2}};
  std::vector<std::pair<std::vector<std::string>, std::string>> cases = {
      {{"V(x) :- E(x, y)"}, "Q(x, y) :- E(x, y)"},         // refutable
      {{"V(x, y) :- E(x, y)"}, "Q(x) :- E(x, x)"},         // determined
      {{"P2(x, y) :- E(x, z), E(z, y)"}, "Q(x) :- E(x, x)"},  // refutable
  };
  EnumerationOptions options;
  options.domain_size = 2;
  for (const auto& [defs, qtext] : cases) {
    ViewSet views = CqViews(defs);
    Query q = Query::FromCq(Cq(qtext));
    auto direct = SearchDeterminacyCounterexample(views, q, base, options);
    auto twin = BoundedTwinSearch(BuildTwinEncoding(views, q, base), base,
                                  options);
    EXPECT_EQ(direct.verdict == SearchVerdict::kCounterexampleFound,
              twin.verdict == SearchVerdict::kCounterexampleFound)
        << qtext;
  }
}

// ---- Boolean views (Theorem 4.6) ----

TEST_F(CoreExtraFixture, BooleanViewsDetermineSameBooleanQuery) {
  ViewSet views = CqViews({"V() :- E(x, x)"});
  ConjunctiveQuery q = Cq("Q() :- E(y, y)");
  auto result = DecideBooleanViewDeterminacy(views, q);
  EXPECT_TRUE(result.determined);
  EXPECT_GE(result.realizable_classes, 2);
}

TEST_F(CoreExtraFixture, BooleanViewsDoNotDetermineStrongerQuery) {
  // V = "some edge exists"; Q = "some self-loop exists": same view image
  // can hold with and without a loop.
  ViewSet views = CqViews({"V() :- E(x, y)"});
  ConjunctiveQuery q = Cq("Q() :- E(x, x)");
  auto result = DecideBooleanViewDeterminacy(views, q);
  ASSERT_FALSE(result.determined);
  const auto& ce = *result.counterexample;
  EXPECT_EQ(views.Apply(ce.d1), views.Apply(ce.d2));
  EXPECT_NE(EvaluateCq(q, ce.d1), EvaluateCq(q, ce.d2));
}

TEST_F(CoreExtraFixture, BooleanViewsImpliedQueryIsDetermined) {
  // Q = "some walk of length 2" is implied by V = "some self-loop"... only
  // in one class; in the V-false class Q varies, so NOT determined.
  ViewSet views = CqViews({"V() :- E(x, x)"});
  ConjunctiveQuery q = Cq("Q() :- E(x, y), E(y, z)");
  auto result = DecideBooleanViewDeterminacy(views, q);
  ASSERT_FALSE(result.determined);
  const auto& ce = *result.counterexample;
  EXPECT_EQ(views.Apply(ce.d1), views.Apply(ce.d2));
  EXPECT_NE(EvaluateCq(q, ce.d1), EvaluateCq(q, ce.d2));
}

TEST_F(CoreExtraFixture, TwoBooleanViewsDetermineConjunction) {
  ViewSet views = CqViews({"V1() :- A(x)", "V2() :- B(x)"});
  ConjunctiveQuery q = Cq("Q() :- A(x), B(y)");
  EXPECT_TRUE(DecideBooleanViewDeterminacy(views, q).determined);
}

TEST_F(CoreExtraFixture, TwoBooleanViewsDoNotDetermineJoin) {
  // Q joins on the same element; V only reveals nonemptiness of A and B.
  ViewSet views = CqViews({"V1() :- A(x)", "V2() :- B(x)"});
  ConjunctiveQuery q = Cq("Q() :- A(x), B(x)");
  auto result = DecideBooleanViewDeterminacy(views, q);
  ASSERT_FALSE(result.determined);
  const auto& ce = *result.counterexample;
  EXPECT_EQ(views.Apply(ce.d1), views.Apply(ce.d2));
  EXPECT_NE(EvaluateCq(q, ce.d1), EvaluateCq(q, ce.d2));
}

TEST_F(CoreExtraFixture, BooleanViewsNeverDetermineNonBooleanQuery) {
  ViewSet views = CqViews({"V() :- P(x)"});
  ConjunctiveQuery q = Cq("Q(x) :- P(x)");
  auto result = DecideBooleanViewDeterminacy(views, q);
  ASSERT_FALSE(result.determined);
  const auto& ce = *result.counterexample;
  EXPECT_EQ(views.Apply(ce.d1), views.Apply(ce.d2));
  EXPECT_NE(EvaluateCq(q, ce.d1), EvaluateCq(q, ce.d2));
}

TEST_F(CoreExtraFixture, BooleanViewsDetermineConstantOnlyAnswer) {
  // Q's answer is always ⊆ {('a')}, fixed by genericity; V reveals exactly
  // whether it is nonempty.
  ViewSet views = CqViews({"V() :- P('a')"});
  ConjunctiveQuery q = Cq("Q(x) :- P(x), x = 'a'");
  bool sat = true;
  ConjunctiveQuery pure = q.PropagateEqualities(&sat);
  ASSERT_TRUE(sat);
  ASSERT_TRUE(pure.IsPureCq());
  EXPECT_TRUE(DecideBooleanViewDeterminacy(views, pure).determined);
}

TEST_F(CoreExtraFixture, BooleanDecisionAgreesWithBoundedSearch) {
  // Property sweep: the exact Boolean decision and the brute-force finite
  // search agree on refutability for a family of view/query combinations.
  Schema base{{"E", 2}};
  std::vector<std::string> bool_views = {"V() :- E(x, x)", "V() :- E(x, y)",
                                         "V() :- E(x, y), E(y, x)"};
  std::vector<std::string> bool_queries = {
      "Q() :- E(x, x)", "Q() :- E(x, y)", "Q() :- E(x, y), E(y, x)",
      "Q() :- E(x, y), E(y, z)"};
  EnumerationOptions options;
  options.domain_size = 2;
  for (const std::string& vdef : bool_views) {
    for (const std::string& qdef : bool_queries) {
      ViewSet views = CqViews({vdef});
      ConjunctiveQuery q = Cq(qdef);
      auto exact = DecideBooleanViewDeterminacy(views, q);
      auto search = SearchDeterminacyCounterexample(views, Query::FromCq(q),
                                                    base, options);
      if (search.verdict == SearchVerdict::kCounterexampleFound) {
        EXPECT_FALSE(exact.determined) << vdef << " / " << qdef;
      }
      if (exact.determined) {
        EXPECT_EQ(search.verdict, SearchVerdict::kNoneWithinBound)
            << vdef << " / " << qdef;
      }
    }
  }
}

// ---- Query answering (Lemma 5.3) ----

TEST_F(CoreExtraFixture, AnswerViaPreimageComputesQv) {
  Schema base{{"E", 2}};
  ViewSet views = CqViews({"P1(x, y) :- E(x, y)"});
  Query q = Query::FromCq(Cq("Q(x, y) :- E(x, z), E(z, y)"));

  Instance d = PathInstance(3);
  Instance s = views.Apply(d);
  QueryAnsweringOptions opts;
  opts.extra_values = 0;  // P1 exposes E fully, no fresh values needed
  auto answer = AnswerViaPreimage(views, q, base, s, opts);
  ASSERT_TRUE(answer.ok()) << answer.status().message();
  EXPECT_EQ(answer->answer, q.Eval(d));
}

TEST_F(CoreExtraFixture, AnswerViaPreimageFailsOffImage) {
  Schema base{{"E", 2}};
  // The view forces symmetric pairs; an asymmetric extent has no pre-image.
  ViewSet views = CqViews({"V(x, y) :- E(x, y), E(y, x)"});
  Instance s(views.OutputSchema());
  s.AddFact("V", MakeTuple({1, 2}));  // but (2,1) missing: impossible
  QueryAnsweringOptions opts;
  opts.extra_values = 0;
  Query q = Query::FromCq(Cq("Q(x) :- E(x, x)"));
  EXPECT_FALSE(AnswerViaPreimage(views, q, base, s, opts).ok());
}

TEST_F(CoreExtraFixture, AllPreimagesAgreeWhenDetermined) {
  Schema base{{"E", 2}};
  ViewSet views = CqViews({"P1(x, y) :- E(x, y)"});
  Query q = Query::FromCq(Cq("Q(x, y) :- E(x, z), E(z, y)"));
  Instance s = views.Apply(PathInstance(3));
  QueryAnsweringOptions opts;
  opts.extra_values = 1;
  PreimageAgreement agreement =
      AnswerViaAllPreimages(views, q, base, s, opts);
  EXPECT_TRUE(agreement.any_preimage);
  EXPECT_TRUE(agreement.all_agree);
}

TEST_F(CoreExtraFixture, PreimagesDisagreeWhenNotDetermined) {
  Schema base{{"E", 2}};
  ViewSet views = CqViews({"V(x) :- E(x, y)"});
  Query q = Query::FromCq(Cq("Q(x, y) :- E(x, y)"));
  Instance d = Db("E(a, b)", base);
  Instance s = views.Apply(d);
  QueryAnsweringOptions opts;
  opts.extra_values = 1;
  PreimageAgreement agreement =
      AnswerViaAllPreimages(views, q, base, s, opts);
  EXPECT_TRUE(agreement.any_preimage);
  EXPECT_FALSE(agreement.all_agree);
  ASSERT_TRUE(agreement.disagreement.has_value());
  EXPECT_EQ(views.Apply(agreement.disagreement->first), s);
  EXPECT_EQ(views.Apply(agreement.disagreement->second), s);
}

TEST_F(CoreExtraFixture, CertainAnswersIntersectPreimages) {
  Schema base{{"E", 2}};
  ViewSet views = CqViews({"V(x) :- E(x, y)"});
  // Q asks for sources; certain answers: x is a source in EVERY pre-image,
  // which holds exactly for the exposed sources.
  Query q = Query::FromCq(Cq("Q(x) :- E(x, y)"));
  Instance d = Db("E(a, b)", base);
  Instance s = views.Apply(d);
  QueryAnsweringOptions opts;
  opts.extra_values = 1;
  CertainAnswers certain = ComputeCertainAnswers(views, q, base, s, opts);
  EXPECT_TRUE(certain.any_preimage);
  EXPECT_EQ(certain.answer.size(), 1u);
  EXPECT_TRUE(certain.answer.Contains(Tuple{pool_.Intern("a")}));

  // For a non-determined target, certain answers are strictly below some
  // pre-image's answer.
  Query q2 = Query::FromCq(Cq("Q(x, y) :- E(x, y)"));
  CertainAnswers certain2 = ComputeCertainAnswers(views, q2, base, s, opts);
  EXPECT_TRUE(certain2.any_preimage);
  EXPECT_TRUE(certain2.answer.empty());
}

// ---- Monotonicity search ----

TEST_F(CoreExtraFixture, MonotonicitySearchCleanOnMonotoneComposition) {
  Schema base{{"E", 2}};
  ViewSet views = CqViews({"P1(x, y) :- E(x, y)"});
  Query q = Query::FromCq(Cq("Q(x, y) :- E(x, z), E(z, y)"));
  EnumerationOptions options;
  options.domain_size = 2;
  auto result = SearchMonotonicityViolation(views, q, base, options);
  EXPECT_EQ(result.verdict, SearchVerdict::kNoneWithinBound);
}

}  // namespace
}  // namespace vqdr
