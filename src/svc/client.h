#ifndef VQDR_SVC_CLIENT_H_
#define VQDR_SVC_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/status.h"

// Minimal blocking client for the vqdr-serve line protocol, used by the
// vqdr-client CLI and the end-to-end tests. One connection, one in-flight
// call at a time (the protocol answers in request order, so pipelining is
// possible — this client just doesn't need it).

namespace vqdr::svc {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the server's Unix socket.
  static StatusOr<Client> Connect(const std::string& socket_path);

  bool connected() const { return fd_ >= 0; }

  /// Sends one request line and reads one response line. `timeout_ms`
  /// bounds the wait for the response (0 = wait forever).
  StatusOr<std::string> Call(std::string_view request_line,
                             std::uint64_t timeout_ms = 0);

  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes past the last response line
};

}  // namespace vqdr::svc

#endif  // VQDR_SVC_CLIENT_H_
