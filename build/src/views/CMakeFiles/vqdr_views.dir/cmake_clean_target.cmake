file(REMOVE_RECURSE
  "libvqdr_views.a"
)
