#include "core/determinacy.h"

#include "base/check.h"
#include "chase/view_inverse.h"
#include "cq/canonical.h"
#include "cq/explain_bridge.h"
#include "cq/matcher.h"
#include "obs/context.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef VQDR_MEMO_DISABLED
#include <memory>
#include <string>

#include "cq/fingerprint.h"
#include "cq/serialize.h"
#include "data/serialize.h"
#include "memo/snapshot.h"
#include "memo/store.h"
#endif

namespace vqdr {

namespace {

UnrestrictedDeterminacyResult DecideUnrestrictedDeterminacyImpl(
    const ViewSet& views, const ConjunctiveQuery& q, guard::Budget* budget,
    obs::ExplainLog* explain);

#ifndef VQDR_MEMO_DISABLED
// Snapshot codec (DESIGN.md §14). Only kComplete results are installed, so
// the outcome is implied; the verdict, both instances, the frozen head, and
// the optional rewriting are encoded exactly.
std::string EncodeDeterminacyResult(const UnrestrictedDeterminacyResult& r) {
  wire::Encoder enc;
  enc.U8(r.determined ? 1 : 0);
  EncodeInstance(r.canonical_view_image, enc);
  EncodeTuple(r.frozen_head, enc);
  EncodeInstance(r.chase_inverse, enc);
  enc.U8(r.canonical_rewriting.has_value() ? 1 : 0);
  if (r.canonical_rewriting.has_value()) {
    EncodeCq(*r.canonical_rewriting, enc);
  }
  return enc.Take();
}

std::shared_ptr<const UnrestrictedDeterminacyResult>
DecodeDeterminacyResult(std::string_view payload) {
  wire::Decoder dec(payload);
  auto r = std::make_shared<UnrestrictedDeterminacyResult>();
  std::uint8_t determined = dec.U8();
  if (determined > 1) return nullptr;
  r->determined = determined == 1;
  if (!DecodeInstance(dec, &r->canonical_view_image)) return nullptr;
  if (!DecodeTuple(dec, &r->frozen_head)) return nullptr;
  if (!DecodeInstance(dec, &r->chase_inverse)) return nullptr;
  std::uint8_t has_rewriting = dec.U8();
  if (has_rewriting > 1) return nullptr;
  if (has_rewriting == 1) {
    ConjunctiveQuery rewriting;
    if (!DecodeCq(dec, &rewriting)) return nullptr;
    r->canonical_rewriting = std::move(rewriting);
  }
  if (!dec.ok() || !dec.AtEnd()) return nullptr;
  return r;
}

[[maybe_unused]] const bool kDeterminacyCodecRegistered =
    memo::RegisterSnapshotType<UnrestrictedDeterminacyResult>(
        "det.v1", EncodeDeterminacyResult, DecodeDeterminacyResult);
#endif

void RecordDeterminacyMemoProbe(obs::ExplainLog* log, bool hit) {
  if (!obs::Wants(log)) return;
  obs::ExplainEvent e;
  e.kind = obs::ExplainKind::kMemo;
  e.label = "determinacy";
  e.detail = hit ? "hit" : "miss";
  e.stats["hit"] = hit ? 1 : 0;
  log->Append(std::move(e));
}

}  // namespace

UnrestrictedDeterminacyResult DecideUnrestrictedDeterminacy(
    const ViewSet& views, const ConjunctiveQuery& q, guard::Budget* budget,
    const memo::MemoOptions& memo, obs::ExplainLog* explain) {
  // No-op when already inside a battery/batch op; top-level direct calls
  // get their own registry entry.
  obs::OpScope op(obs::OpKind::kDecide, "determinacy.decide", budget);
#ifndef VQDR_MEMO_DISABLED
  if (memo::ResolveUse(memo)) {
    VQDR_TRACE_SPAN("memo.determinacy");
    // Exact key: the result's instances carry concrete frozen-value ids.
    // The decision builds its own factory from a fixed floor, so equal
    // (views, query) serializations replay byte-identically.
    std::string key = "det|" + views.ToString() + "|" + ExactCqKey(q);
    memo::Store& store = memo::ResolveStore(memo);
    if (auto hit = store.Get<UnrestrictedDeterminacyResult>(key)) {
      RecordDeterminacyMemoProbe(explain, /*hit=*/true);
      return *hit;
    }
    RecordDeterminacyMemoProbe(explain, /*hit=*/false);
    UnrestrictedDeterminacyResult result =
        DecideUnrestrictedDeterminacyImpl(views, q, budget, explain);
    // Never cache partial outcomes — they describe this run's budget, not
    // the inputs.
    if (guard::IsComplete(result.outcome)) store.Put(key, result);
    return result;
  }
#endif
  return DecideUnrestrictedDeterminacyImpl(views, q, budget, explain);
}

namespace {

UnrestrictedDeterminacyResult DecideUnrestrictedDeterminacyImpl(
    const ViewSet& views, const ConjunctiveQuery& q, guard::Budget* budget,
    obs::ExplainLog* explain) {
  VQDR_COUNTER_INC("determinacy.decisions");
  VQDR_TRACE_SPAN("determinacy.unrestricted");
  VQDR_CHECK(views.AllPureCq())
      << "unrestricted determinacy decision requires pure CQ views";
  VQDR_CHECK(q.IsPureCq())
      << "unrestricted determinacy decision requires a pure CQ query";
  VQDR_CHECK(q.IsSafe()) << "query must be safe: " << q.ToString();

  UnrestrictedDeterminacyResult result;

  // Freeze Q; keep constants (of query and views) out of the fresh range.
  ValueFactory factory;
  for (const View& v : views.views()) {
    for (Value c : v.query.AsCq().Constants()) factory.NoteUsed(c);
  }
  FrozenQuery frozen = Freeze(q, factory);

  // [Q] over the widened chase schema (views may mention extra relations).
  Schema chase_schema = ChaseSchema(views, frozen.instance.schema());
  Instance d0(chase_schema);
  for (const RelationDecl& d : frozen.instance.schema().decls()) {
    d0.Set(d.name, frozen.instance.Get(d.name));
  }

  // S = V([Q]) and D' = V_∅^{-1}(S).
  result.frozen_head = frozen.frozen_head;
  result.canonical_view_image = views.Apply(d0);
  Instance empty(chase_schema);
  try {
    result.chase_inverse =
        ViewInverse(views, empty, result.canonical_view_image, factory, budget);
    if (budget != nullptr && budget->Stopped()) {
      // Partial chase-back: x̄ ∈ Q(D') over an incomplete D' could flip
      // either way, so no verdict — report what was computed and stop.
      result.outcome = budget->stop_reason();
      return result;
    }

    // Decision: x̄ ∈ Q(V_∅^{-1}(V([Q]))). The matcher polls the budget per
    // backtracking node, so a hostile chase-back cannot outlive a deadline.
    Binding decision_witness;
    result.determined = CqAnswerContains(
        q, result.chase_inverse, frozen.frozen_head, budget,
        obs::Wants(explain) ? &decision_witness : nullptr);
    if (budget != nullptr && budget->Stopped()) {
      result.outcome = budget->stop_reason();
      result.determined = false;
      return result;
    }
    if (obs::Wants(explain)) {
      obs::ExplainEvent e;
      e.kind = obs::ExplainKind::kDecision;
      e.label = "determinacy.unrestricted";
      e.stats["determined"] = result.determined ? 1 : 0;
      e.stats["view_image_facts"] = static_cast<std::int64_t>(
          result.canonical_view_image.TupleCount());
      e.stats["chase_inverse_facts"] =
          static_cast<std::int64_t>(result.chase_inverse.TupleCount());
      if (result.determined) {
        e.detail = "x̄ ∈ Q(D'): the frozen head is recoverable from the "
                   "chased-back inverse (Theorem 3.7)";
        e.witness = MakeContainmentWitness(q, result.chase_inverse,
                                           frozen.frozen_head,
                                           decision_witness);
      } else {
        e.detail = "x̄ ∉ Q(D'): the chased-back inverse does not recover "
                   "the frozen head (Theorem 3.7)";
        e.instance = ToExplainFacts(result.chase_inverse);
      }
      explain->Append(std::move(e));
    }
  } catch (...) {
    if (budget != nullptr) budget->MarkInternalError();
    result.outcome = guard::Outcome::kInternalError;
    result.determined = false;
    return result;
  }

  if (result.determined) {
    VQDR_COUNTER_INC("determinacy.determined");
    // Q_V: the CQ over σ_V whose frozen body is S and whose head is x̄.
    // Constants of the query/views remain constants; frozen variables of
    // [Q] become variables of Q_V.
    std::set<Value> constants = q.Constants();
    for (const View& v : views.views()) {
      for (Value c : v.query.AsCq().Constants()) constants.insert(c);
    }
    result.canonical_rewriting =
        InstanceToQuery(result.canonical_view_image, frozen.frozen_head,
                        constants, q.head_name());
  }
  return result;
}

}  // namespace

}  // namespace vqdr
