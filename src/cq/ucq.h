#ifndef VQDR_CQ_UCQ_H_
#define VQDR_CQ_UCQ_H_

#include <string>
#include <vector>

#include "cq/conjunctive_query.h"

namespace vqdr {

/// A union of conjunctive queries (UCQ, and UCQ=/UCQ≠/UCQ¬ when the
/// disjuncts use the corresponding extensions). All disjuncts share the head
/// name and arity.
class UnionQuery {
 public:
  UnionQuery() = default;

  /// A UCQ with a single disjunct.
  explicit UnionQuery(ConjunctiveQuery disjunct) {
    AddDisjunct(std::move(disjunct));
  }

  /// Adds a disjunct; head name and arity must match previous disjuncts.
  void AddDisjunct(ConjunctiveQuery disjunct);

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  bool empty() const { return disjuncts_.empty(); }

  /// Head name (of the first disjunct; all agree). Requires non-empty.
  const std::string& head_name() const;

  /// Head arity; requires non-empty.
  int head_arity() const;

  /// True if every disjunct is a plain CQ.
  bool IsPureUcq() const;

  /// Union of the disjuncts' body schemas.
  Schema BodySchema() const;

  /// Safety of every disjunct.
  bool IsSafe() const;

  /// "Q(x) :- A(x) | Q(x) :- B(x)".
  std::string ToString() const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

}  // namespace vqdr

#endif  // VQDR_CQ_UCQ_H_
