# Empty compiler generated dependencies file for test_containment.
# This may be replaced when dependencies are built.
