#ifndef VQDR_CQ_TERM_H_
#define VQDR_CQ_TERM_H_

#include <string>

#include "base/check.h"
#include "data/value.h"

namespace vqdr {

/// A term of a conjunctive query: either a variable (identified by name) or
/// a constant from **dom**. Constants in queries denote themselves (query
/// constants, not logical constants — see Section 2 of the paper).
class Term {
 public:
  /// Default-constructs a variable named "_"; prefer the factories.
  Term() : is_var_(true), var_("_") {}

  static Term Var(std::string name) {
    Term t;
    t.is_var_ = true;
    t.var_ = std::move(name);
    return t;
  }

  static Term Const(Value v) {
    Term t;
    t.is_var_ = false;
    t.constant_ = v;
    return t;
  }

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }

  const std::string& var() const {
    VQDR_CHECK(is_var_) << "var() on constant term";
    return var_;
  }

  Value constant() const {
    VQDR_CHECK(!is_var_) << "constant() on variable term";
    return constant_;
  }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_var_ != b.is_var_) return false;
    return a.is_var_ ? a.var_ == b.var_ : a.constant_ == b.constant_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.is_var_ != b.is_var_) return a.is_var_;  // constants sort first
    return a.is_var_ ? a.var_ < b.var_ : a.constant_ < b.constant_;
  }

  /// "x" for variables, "'#7'" for constants.
  std::string ToString() const {
    if (is_var_) return var_;
    return "'#" + std::to_string(constant_.id) + "'";
  }

 private:
  bool is_var_;
  std::string var_;
  Value constant_;
};

}  // namespace vqdr

#endif  // VQDR_CQ_TERM_H_
