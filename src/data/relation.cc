#include "data/relation.h"

#include <algorithm>
#include <sstream>

#include "base/check.h"

namespace vqdr {

Relation::Relation(int arity, std::vector<Tuple> tuples)
    : arity_(arity), tuples_(std::move(tuples)) {
  for (const Tuple& t : tuples_) {
    VQDR_CHECK_EQ(static_cast<int>(t.size()), arity_)
        << "tuple arity mismatch in relation constructor";
  }
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
}

bool Relation::Insert(const Tuple& t) {
  VQDR_CHECK_EQ(static_cast<int>(t.size()), arity_)
      << "tuple arity mismatch on insert";
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it != tuples_.end() && *it == t) return false;
  tuples_.insert(it, t);
  return true;
}

bool Relation::Contains(const Tuple& t) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

bool Relation::Erase(const Tuple& t) {
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it == tuples_.end() || *it != t) return false;
  tuples_.erase(it);
  return true;
}

bool Relation::AsBool() const {
  VQDR_CHECK_EQ(arity_, 0) << "AsBool on non-proposition";
  return !tuples_.empty();
}

void Relation::SetBool(bool value) {
  VQDR_CHECK_EQ(arity_, 0) << "SetBool on non-proposition";
  tuples_.clear();
  if (value) tuples_.push_back(Tuple{});
}

void Relation::CollectActiveDomain(std::set<Value>& out) const {
  for (const Tuple& t : tuples_) {
    for (Value v : t) out.insert(v);
  }
}

Relation Relation::Apply(const std::function<Value(Value)>& map) const {
  Relation result(arity_);
  for (const Tuple& t : tuples_) {
    Tuple mapped;
    mapped.reserve(t.size());
    for (Value v : t) mapped.push_back(map(v));
    result.Insert(mapped);
  }
  return result;
}

Relation Relation::Union(const Relation& other) const {
  VQDR_CHECK_EQ(arity_, other.arity_) << "arity mismatch in Union";
  Relation result(arity_);
  std::set_union(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                 other.tuples_.end(), std::back_inserter(result.tuples_));
  return result;
}

Relation Relation::Intersect(const Relation& other) const {
  VQDR_CHECK_EQ(arity_, other.arity_) << "arity mismatch in Intersect";
  Relation result(arity_);
  std::set_intersection(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                        other.tuples_.end(),
                        std::back_inserter(result.tuples_));
  return result;
}

Relation Relation::Difference(const Relation& other) const {
  VQDR_CHECK_EQ(arity_, other.arity_) << "arity mismatch in Difference";
  Relation result(arity_);
  std::set_difference(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                      other.tuples_.end(), std::back_inserter(result.tuples_));
  return result;
}

bool Relation::IsSubsetOf(const Relation& other) const {
  VQDR_CHECK_EQ(arity_, other.arity_) << "arity mismatch in IsSubsetOf";
  return std::includes(other.tuples_.begin(), other.tuples_.end(),
                       tuples_.begin(), tuples_.end());
}

std::string Relation::ToString() const {
  if (arity_ == 0) return tuples_.empty() ? "false" : "true";
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) out << ", ";
    out << TupleToString(tuples_[i]);
  }
  out << "}";
  return out.str();
}

}  // namespace vqdr
