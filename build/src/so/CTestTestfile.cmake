# CMake generated Testfile for 
# Source directory: /root/repo/src/so
# Build directory: /root/repo/build/src/so
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
