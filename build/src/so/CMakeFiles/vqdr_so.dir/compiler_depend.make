# Empty compiler generated dependencies file for vqdr_so.
# This may be replaced when dependencies are built.
