#ifndef VQDR_DATA_TUPLE_H_
#define VQDR_DATA_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "data/value.h"

namespace vqdr {

/// A database tuple: a fixed-length sequence of domain values. Vector order
/// and comparisons make tuples usable as ordered set elements.
using Tuple = std::vector<Value>;

/// Convenience constructor from raw ids: MakeTuple({1, 2, 3}).
Tuple MakeTuple(std::initializer_list<std::int64_t> ids);

/// Renders as "(#1, #2)".
std::string TupleToString(const Tuple& t);

}  // namespace vqdr

#endif  // VQDR_DATA_TUPLE_H_
