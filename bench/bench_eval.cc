// E-F1: the language zoo of Figure 1, measured — the same semantic query
// (paths of length 2 over a random graph) evaluated as CQ, UCQ, FO and
// Datalog, plus transitive closure where only Datalog applies. The shape
// to observe: CQ/UCQ join evaluation ≪ active-domain FO ≪ anything
// second-order (see bench_so in this binary, budget-capped).

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "cq/matcher.h"
#include "datalog/program.h"
#include "fo/from_cq.h"
#include "fo/evaluator.h"
#include "fo/parser.h"
#include "gen/workloads.h"
#include "so/so_query.h"

namespace vqdr {
namespace {

Instance Graph(int nodes) { return RandomGraph(nodes, 3 * nodes, 42); }

void BM_EvalCq(benchmark::State& state) {
  ConjunctiveQuery q = ChainQuery(2);
  Instance d = Graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateCq(q, d));
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EvalCq)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_EvalUcq(benchmark::State& state) {
  UnionQuery q;
  q.AddDisjunct(ChainQuery(2, "E", "Q"));
  q.AddDisjunct(ChainQuery(3, "E", "Q"));
  Instance d = Graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateUcq(q, d));
  }
}
BENCHMARK(BM_EvalUcq)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_EvalFo(benchmark::State& state) {
  // The same path-2 query through the FO evaluator (active-domain
  // quantification): the cost of generality.
  FoQuery q = CqToFoQuery(ChainQuery(2));
  Instance d = Graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateFo(q, d));
  }
}
BENCHMARK(BM_EvalFo)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_EvalDatalogTc(benchmark::State& state) {
  NamePool pool;
  DatalogProgram program =
      ParseDatalog("T(x, y) :- E(x, y); T(x, y) :- E(x, z), T(z, y)", pool)
          .value();
  Instance d = Graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.Query(d, "T"));
  }
}
BENCHMARK(BM_EvalDatalogTc)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_EvalExistsSo(benchmark::State& state) {
  // 2-colorability on tiny graphs: the exponential wall of ∃SO.
  NamePool pool;
  SoQuery q;
  q.existential = true;
  q.relation_vars = {{"C", 1}};
  FoQuery matrix;
  matrix.formula =
      ParseFo("forall x, y . (E(x, y) -> "
              "(C(x) & !C(y)) | (!C(x) & C(y)))",
              pool)
          .value();
  q.matrix = matrix;
  Instance d = PathInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = EvaluateSo(q, d);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EvalExistsSo)->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond);

void BM_HomomorphismSearch(benchmark::State& state) {
  // Boolean chain query into a random graph: the raw hom-search engine.
  ConjunctiveQuery q = CycleQuery(static_cast<int>(state.range(0)));
  Instance d = Graph(24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CqHolds(q, d));
  }
  state.counters["cycle_len"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_HomomorphismSearch)->DenseRange(2, 6)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("eval");
