#ifndef VQDR_CORE_DETERMINACY_BATCH_H_
#define VQDR_CORE_DETERMINACY_BATCH_H_

#include <cstddef>
#include <vector>

#include "core/determinacy.h"
#include "cq/conjunctive_query.h"
#include "guard/budget.h"
#include "views/view_set.h"

namespace vqdr {

/// One (V, Q) pair submitted to the batch decider.
struct DeterminacyBatchItem {
  ViewSet views;
  ConjunctiveQuery query{"Q", {}};
};

/// Decides unrestricted determinacy for every item, concurrently.
///
/// results[i] is exactly DecideUnrestrictedDeterminacy(items[i].views,
/// items[i].query) — each decision is a pure function of its item, so the
/// output is independent of scheduling and of `threads`. threads follows the
/// usual convention: 1 = a plain serial loop, 0 = par::DefaultThreads(),
/// N > 1 = one pool task per item. Progress is reported per completed item
/// on the "determinacy.batch" phase; the batch always processes every item
/// (a partially-decided batch has no sound meaning, so progress callbacks
/// cannot cancel it mid-flight).
std::vector<UnrestrictedDeterminacyResult> DecideUnrestrictedDeterminacyBatch(
    const std::vector<DeterminacyBatchItem>& items, int threads = 0,
    const memo::MemoOptions& memo = {});

/// Result of a governed batch run.
struct DeterminacyBatchResult {
  /// One entry per item, index-aligned. Items the budget skipped (or that
  /// stopped mid-decision) carry their own outcome != kComplete and no
  /// trustworthy `determined` flag.
  std::vector<UnrestrictedDeterminacyResult> results;

  /// The strongest stop reason across the batch; kComplete iff every item
  /// was fully decided.
  guard::Outcome outcome = guard::Outcome::kComplete;

  /// Items whose decisions ran to completion.
  std::size_t items_completed = 0;
};

/// Governed batch: one shared budget envelope across all items. Once the
/// budget trips, remaining items are skipped (their result records the stop
/// reason) and the completed prefix of decisions is returned — identical to
/// what an ungoverned run would have produced for those items.
/// `memo` is forwarded to every per-item decision: duplicate items hit the
/// cache (first-install-wins keeps concurrent installs deterministic), and
/// budget-stopped items are never installed.
DeterminacyBatchResult DecideUnrestrictedDeterminacyBatchGoverned(
    const std::vector<DeterminacyBatchItem>& items, int threads = 0,
    guard::Budget* budget = nullptr, const memo::MemoOptions& memo = {});

}  // namespace vqdr

#endif  // VQDR_CORE_DETERMINACY_BATCH_H_
