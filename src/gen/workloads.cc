#include "gen/workloads.h"

#include "base/check.h"
#include "base/rng.h"

namespace vqdr {

ConjunctiveQuery ChainQuery(int length, const std::string& edge,
                            const std::string& head) {
  VQDR_CHECK_GE(length, 1);
  auto var = [](int i) { return Term::Var("x" + std::to_string(i)); };
  ConjunctiveQuery q(head, {var(0), var(length)});
  for (int i = 0; i < length; ++i) {
    q.AddAtom(Atom(edge, {var(i), var(i + 1)}));
  }
  return q;
}

ConjunctiveQuery StarQuery(int arms, const std::string& edge,
                           const std::string& head) {
  VQDR_CHECK_GE(arms, 1);
  ConjunctiveQuery q(head, {Term::Var("c")});
  for (int i = 1; i <= arms; ++i) {
    q.AddAtom(Atom(edge, {Term::Var("c"), Term::Var("x" + std::to_string(i))}));
  }
  return q;
}

ConjunctiveQuery CycleQuery(int length, const std::string& edge,
                            const std::string& head) {
  VQDR_CHECK_GE(length, 1);
  auto var = [](int i) { return Term::Var("x" + std::to_string(i)); };
  ConjunctiveQuery q(head, {});
  for (int i = 0; i < length; ++i) {
    q.AddAtom(Atom(edge, {var(i), var((i + 1) % length)}));
  }
  return q;
}

ViewSet PathViews(int max_length, const std::string& edge) {
  VQDR_CHECK_GE(max_length, 1);
  ViewSet views;
  for (int len = 1; len <= max_length; ++len) {
    views.Add("P" + std::to_string(len),
              Query::FromCq(ChainQuery(len, edge, "P" + std::to_string(len))));
  }
  return views;
}

Instance PathInstance(int nodes, const std::string& edge) {
  VQDR_CHECK_GE(nodes, 1);
  Instance d(Schema{{edge, 2}});
  for (int i = 1; i < nodes; ++i) {
    d.AddFact(edge, Tuple{Value(i), Value(i + 1)});
  }
  return d;
}

Instance RandomGraph(int nodes, int edges, std::uint64_t seed,
                     const std::string& edge) {
  VQDR_CHECK_GE(nodes, 1);
  Rng rng(seed);
  Instance d(Schema{{edge, 2}});
  for (int i = 0; i < edges; ++i) {
    Value a(1 + static_cast<std::int64_t>(rng.Below(nodes)));
    Value b(1 + static_cast<std::int64_t>(rng.Below(nodes)));
    d.AddFact(edge, Tuple{a, b});
  }
  return d;
}

}  // namespace vqdr
