#include "par/pool.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "guard/fault.h"
#include "obs/context.h"

namespace vqdr::par {

namespace {

// Identifies the worker a thread belongs to, so nested Submit() lands in the
// submitter's own deque. Distinct pools never share threads, so a plain
// pointer + index pair suffices.
struct WorkerIdentity {
  const void* pool = nullptr;
  int index = -1;
};
thread_local WorkerIdentity t_worker;

}  // namespace

int DefaultThreads() {
  if (const char* env = std::getenv("VQDR_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  deques_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
#ifndef VQDR_OBS_DISABLED
  // Carry the submitter's operation context across the task boundary, so a
  // work-stolen chunk's spans, counters, heartbeats, and guard outcomes
  // attribute to the op that spawned it — not to the worker's previous op.
  if (obs::OpHandle op = obs::CurrentOpHandle()) {
    task = [op = std::move(op), inner = std::move(task)] {
      obs::OpTaskScope bind(op);
      inner();
    };
  }
#endif
  int target;
  if (t_worker.pool == this) {
    target = t_worker.index;  // owner's deque: LIFO for itself
  } else {
    target = static_cast<int>(next_deque_.fetch_add(
                 1, std::memory_order_relaxed) %
             deques_.size());
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(deques_[target]->mu);
    deques_[target]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_relaxed);
  {
    // Taking mu_ serializes against workers deciding to sleep, so a task
    // pushed while a worker checks its predicate cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(mu_);
  }
  work_cv_.notify_one();
}

bool ThreadPool::TryRunOne(int self) {
  std::function<void()> task;
  const int n = static_cast<int>(deques_.size());
  // Own deque first (back = most recently pushed), then steal from the
  // front of the others in cyclic order.
  {
    Deque& own = *deques_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    for (int step = 1; step < n && !task; ++step) {
      Deque& victim = *deques_[(self + step) % n];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (!task) return false;

  queued_.fetch_sub(1, std::memory_order_relaxed);
  try {
    VQDR_FAULT_TASK("pool.task");
    task();
  } catch (...) {
    // A throwing task must not escape into the worker loop (std::terminate)
    // or stall the drain: record it and keep going. Wait() still sees the
    // pending_ decrement below, and the caller reads error_count() after.
    {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    error_count_.fetch_add(1, std::memory_order_release);
  }
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mu_);
    idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop(int self) {
  t_worker.pool = this;
  t_worker.index = self;
  for (;;) {
    if (TryRunOne(self)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

std::exception_ptr ThreadPool::TakeFirstError() {
  std::lock_guard<std::mutex> lock(error_mu_);
  std::exception_ptr e = first_error_;
  first_error_ = nullptr;
  error_count_.store(0, std::memory_order_release);
  return e;
}

void ParallelForChunks(ThreadPool& pool, std::uint64_t num_chunks,
                       const std::function<void(std::uint64_t)>& body) {
  for (std::uint64_t c = 0; c < num_chunks; ++c) {
    pool.Submit([&body, c] { body(c); });
  }
  pool.Wait();
}

}  // namespace vqdr::par
