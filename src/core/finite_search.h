#ifndef VQDR_CORE_FINITE_SEARCH_H_
#define VQDR_CORE_FINITE_SEARCH_H_

#include <optional>

#include "data/instance.h"
#include "gen/enumerate.h"
#include "guard/budget.h"
#include "views/view_set.h"

namespace vqdr {

/// Bounded search for *finite*-determinacy counterexamples. Finite
/// determinacy is undecidable already for UCQs (Theorem 4.5), so the
/// library offers the two sound half-tests the theory permits:
///
///  * positive: unrestricted determinacy (core/determinacy.h) implies
///    finite determinacy;
///  * negative: an explicit pair D₁, D₂ with V(D₁)=V(D₂), Q(D₁)≠Q(D₂)
///    refutes it. This header searches for such pairs exhaustively over all
///    instances within a domain bound.

/// A refuting pair.
struct DeterminacyCounterexample {
  Instance d1{Schema{}};
  Instance d2{Schema{}};
};

/// Verdict of a bounded search.
enum class SearchVerdict {
  /// No counterexample exists within the bound (determinacy holds on the
  /// searched fragment; silence, not proof).
  kNoneWithinBound,
  /// A counterexample was found: determinacy refuted outright.
  kCounterexampleFound,
  /// The instance budget ran out before covering the space.
  kBudgetExhausted,
};

struct DeterminacySearchResult {
  SearchVerdict verdict = SearchVerdict::kNoneWithinBound;
  std::optional<DeterminacyCounterexample> counterexample;
  /// The serial-order prefix length this verdict rests on: with a
  /// counterexample at enumeration index j this is j + 1, otherwise the
  /// number of instances covered. Deterministic at every thread count (it
  /// is computed from the merged per-worker records, never from a shared
  /// counter delta that concurrent searches could pollute). The
  /// `search.instances` obs counter separately sums the *actual* work across
  /// workers, which can exceed this value when workers race past the
  /// earliest conflict before the pruning hint lands.
  std::uint64_t instances_examined = 0;

  /// Why the search ended. kComplete for a covered space or a found
  /// counterexample; a budget stop reason (deadline/steps/memory/cancel) or
  /// kInternalError otherwise. Never kComplete when verdict is
  /// kBudgetExhausted, and the examined prefix is always honest: everything
  /// counted was actually searched.
  guard::Outcome outcome = guard::Outcome::kComplete;
};

/// Enumerates every instance over `base` within `options`, groups by view
/// image, and reports the first group on which Q disagrees. Reports
/// liveness through obs::ReportProgress ("search.instances"); a progress
/// callback returning false stops the search with kBudgetExhausted.
///
/// With options.threads > 1 (and VQDR_PAR on) the instance space is sharded
/// across a work-stealing pool; the merge is deterministic and
/// lowest-index-wins, so the verdict *and* the counterexample pair are
/// identical to the serial sweep's. threads == 1 runs the original serial
/// code path unchanged.
DeterminacySearchResult SearchDeterminacyCounterexample(
    const ViewSet& views, const Query& q, const Schema& base,
    const EnumerationOptions& options);

/// A monotonicity violation of Q_V: V(D₁) ⊆ V(D₂) but Q(D₁) ⊄ Q(D₂).
/// Exhibits the paper's Propositions 5.8/5.12 phenomena. Only meaningful
/// when V determines Q on the searched fragment (callers should check).
struct MonotonicityViolation {
  Instance d1{Schema{}};
  Instance d2{Schema{}};
  Instance view_image1{Schema{}};
  Instance view_image2{Schema{}};
};

struct MonotonicitySearchResult {
  SearchVerdict verdict = SearchVerdict::kNoneWithinBound;
  std::optional<MonotonicityViolation> violation;
  std::uint64_t instances_examined = 0;

  /// Why the search ended; see DeterminacySearchResult::outcome.
  guard::Outcome outcome = guard::Outcome::kComplete;
};

/// Searches for a pair witnessing non-monotonicity of the induced mapping
/// Q_V. Quadratic in the number of enumerated instances — keep bounds small.
/// With options.threads > 1 both the instance evaluation and the pair scan
/// shard across a work-stealing pool; the merged violation is the serial
/// row-major first hit.
MonotonicitySearchResult SearchMonotonicityViolation(
    const ViewSet& views, const Query& q, const Schema& base,
    const EnumerationOptions& options);

}  // namespace vqdr

#endif  // VQDR_CORE_FINITE_SEARCH_H_
