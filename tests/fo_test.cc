// Tests for the FO module: parsing, active-domain evaluation,
// classification, normalization, order-invariance.

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "fo/evaluator.h"
#include "fo/from_cq.h"
#include "fo/library.h"
#include "fo/normalize.h"
#include "fo/order_invariance.h"
#include "cq/matcher.h"
#include "fo/parser.h"

namespace vqdr {
namespace {

class FoFixture : public ::testing::Test {
 protected:
  FoPtr Fo(const std::string& text) {
    auto f = ParseFo(text, pool_);
    EXPECT_TRUE(f.ok()) << f.status().message() << " in: " << text;
    return f.value();
  }

  FoQuery FoQ(const std::string& text) {
    auto q = ParseFoQuery(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message() << " in: " << text;
    return q.value();
  }

  Instance Db(const std::string& text, const Schema& schema) {
    auto d = ParseInstance(text, schema, pool_);
    EXPECT_TRUE(d.ok()) << d.status().message();
    return d.value();
  }

  NamePool pool_;
};

TEST_F(FoFixture, ParsePrecedence) {
  // & binds tighter than |, which binds tighter than ->.
  FoPtr f = Fo("A() & B() | C() -> D()");
  EXPECT_EQ(f->kind(), FoFormula::Kind::kImplies);
  EXPECT_EQ(f->children()[0]->kind(), FoFormula::Kind::kOr);
}

TEST_F(FoFixture, ParseQuantifierScopesRight) {
  FoPtr f = Fo("forall x . R(x) -> S(x)");
  // Scope extends right: ∀x.(R(x) → S(x)).
  EXPECT_EQ(f->kind(), FoFormula::Kind::kForall);
}

TEST_F(FoFixture, ParseErrors) {
  EXPECT_FALSE(ParseFo("forall . R(x)", pool_).ok());
  EXPECT_FALSE(ParseFo("R(x", pool_).ok());
  EXPECT_FALSE(ParseFo("R(x) &", pool_).ok());
  EXPECT_FALSE(ParseFo("R(x) R(y)", pool_).ok());
  EXPECT_FALSE(ParseFoQuery("Q(x) := R(x, y)", pool_).ok());  // y free
}

TEST_F(FoFixture, FreeVariables) {
  FoPtr f = Fo("exists y . R(x, y) & S(z)");
  auto free = f->FreeVariables();
  EXPECT_EQ(free.size(), 2u);
  EXPECT_TRUE(free.count("x"));
  EXPECT_TRUE(free.count("z"));
}

TEST_F(FoFixture, EvaluateQuantifiers) {
  Schema schema{{"E", 2}};
  Instance d = Db("E(a, b), E(b, c)", schema);
  EXPECT_TRUE(FoSentenceHolds(Fo("exists x, y . E(x, y)"), d));
  EXPECT_FALSE(FoSentenceHolds(Fo("forall x . exists y . E(x, y)"), d));
  // Every node has an in- or out-edge here.
  EXPECT_TRUE(FoSentenceHolds(
      Fo("forall x . (exists y . E(x, y)) | (exists y . E(y, x))"), d));
}

TEST_F(FoFixture, EvaluateNegationAndEquality) {
  Schema schema{{"P", 1}};
  Instance d = Db("P(a), P(b)", schema);
  EXPECT_TRUE(FoSentenceHolds(Fo("exists x, y . P(x) & P(y) & x != y"), d));
  EXPECT_FALSE(
      FoSentenceHolds(Fo("forall x, y . (P(x) & P(y) -> x = y)"), d));
}

TEST_F(FoFixture, EvaluateConstants) {
  Schema schema{{"P", 1}};
  Instance d = Db("P(a)", schema);
  EXPECT_TRUE(FoSentenceHolds(Fo("P('a')"), d));
  EXPECT_FALSE(FoSentenceHolds(Fo("P('zzz')"), d));
  // Constants extend the quantification range even if absent from adom.
  EXPECT_TRUE(FoSentenceHolds(Fo("exists x . !P(x) & x = 'zzz'"), d));
}

TEST_F(FoFixture, EvaluateOnEmptyInstance) {
  Schema schema{{"P", 1}};
  Instance d(schema);
  EXPECT_FALSE(FoSentenceHolds(Fo("exists x . P(x)"), d));
  EXPECT_TRUE(FoSentenceHolds(Fo("forall x . P(x)"), d));  // vacuous
}

TEST_F(FoFixture, EvaluateQueryWithFreeVariables) {
  Schema schema{{"E", 2}};
  Instance d = Db("E(a, b), E(b, c)", schema);
  FoQuery q = FoQ("Q(x) := exists y . E(x, y) & !(exists z . E(z, x))");
  Relation answer = EvaluateFo(q, d);
  // Sources: nodes with out-edges but no in-edges: a.
  EXPECT_EQ(answer.size(), 1u);
  EXPECT_TRUE(answer.Contains(Tuple{pool_.Intern("a")}));
}

TEST_F(FoFixture, ExistentialClassification) {
  EXPECT_TRUE(Fo("exists x . R(x)")->IsExistential());
  EXPECT_FALSE(Fo("forall x . R(x)")->IsExistential());
  // ¬∀x.¬R(x) ≡ ∃x.R(x) is existential by polarity.
  EXPECT_TRUE(Fo("!(forall x . !R(x))")->IsExistential());
  // Universal inside a negated implication-left is fine too.
  EXPECT_FALSE(Fo("exists x . R(x) & forall y . S(y)")->IsExistential());
}

TEST_F(FoFixture, RenameRelations) {
  FoPtr f = Fo("forall x . R(x) -> S(x)");
  FoPtr renamed = f->RenameRelations(
      [](const std::string& r) { return "one_" + r; });
  Schema used = renamed->UsedSchema();
  EXPECT_TRUE(used.Contains("one_R"));
  EXPECT_TRUE(used.Contains("one_S"));
  EXPECT_FALSE(used.Contains("R"));
}

TEST_F(FoFixture, NormalizeToAndNotExistsPreservesSemantics) {
  Schema schema{{"E", 2}, {"P", 1}};
  std::vector<std::string> sentences = {
      "forall x . exists y . E(x, y) | P(x)",
      "forall x, y . (E(x, y) -> E(y, x))",
      "(exists x . P(x)) <-> (forall y . E(y, y))",
      "forall x . (P(x) & !(exists y . E(x, y)))",
  };
  std::vector<std::string> dbs = {"", "E(a, b), P(a)", "E(a, a), E(b, b)",
                                  "P(a), P(b), E(b, a)"};
  for (const std::string& text : sentences) {
    FoPtr original = Fo(text);
    FoPtr normalized = ToAndNotExists(original);
    // Normal form uses only ∧, ¬, ∃ (checked via IsExistential-style walk
    // below by rendering: no 'forall', '|', '->' appear).
    std::string rendered = normalized->ToString();
    EXPECT_EQ(rendered.find("forall"), std::string::npos) << rendered;
    EXPECT_EQ(rendered.find("->"), std::string::npos) << rendered;
    EXPECT_EQ(rendered.find(" | "), std::string::npos) << rendered;
    for (const std::string& db_text : dbs) {
      Instance d = Db(db_text, schema);
      EXPECT_EQ(FoSentenceHolds(original, d), FoSentenceHolds(normalized, d))
          << text << " on " << db_text;
    }
  }
}

TEST_F(FoFixture, CqToFoQueryAgreesWithCqEvaluation) {
  Schema schema{{"E", 2}, {"T", 1}};
  Instance d = Db("E(a, b), E(b, c), E(c, c), T(b)", schema);
  auto cq = ParseCq("Q(x, y) :- E(x, z), E(z, y), not T(x), x != y", pool_);
  ASSERT_TRUE(cq.ok());
  FoQuery fo = CqToFoQuery(cq.value());
  EXPECT_EQ(EvaluateFo(fo, d), EvaluateCq(cq.value(), d));
}

TEST_F(FoFixture, UcqToFoQueryAgreesWithUcqEvaluation) {
  Schema schema{{"A", 1}, {"B", 1}};
  Instance d = Db("A(a), B(b), B(c)", schema);
  auto ucq = ParseUcq("Q(x) :- A(x) | Q(x) :- B(x)", pool_);
  ASSERT_TRUE(ucq.ok());
  FoQuery fo = UcqToFoQuery(ucq.value());
  EXPECT_EQ(EvaluateFo(fo, d), EvaluateUcq(ucq.value(), d));
}

TEST_F(FoFixture, StrictTotalOrderSentenceRecognizesOrders) {
  Schema schema{{"Lt", 2}};
  FoPtr psi = StrictTotalOrderSentence("Lt");
  EXPECT_TRUE(FoSentenceHolds(psi, Db("Lt(a, b), Lt(b, c), Lt(a, c)",
                                      schema)));
  EXPECT_FALSE(FoSentenceHolds(psi, Db("Lt(a, b), Lt(b, c)", schema)));
  EXPECT_FALSE(FoSentenceHolds(psi, Db("Lt(a, b), Lt(b, a)", schema)));
  EXPECT_FALSE(FoSentenceHolds(psi, Db("Lt(a, a)", schema)));
}

TEST_F(FoFixture, LinearOrderSentenceRecognizesOrders) {
  Schema schema{{"Le", 2}};
  FoPtr psi = LinearOrderSentence("Le");
  EXPECT_TRUE(FoSentenceHolds(
      psi, Db("Le(a, a), Le(b, b), Le(a, b)", schema)));
  EXPECT_FALSE(FoSentenceHolds(psi, Db("Le(a, b), Le(b, b)", schema)));
}

TEST_F(FoFixture, OrderInvarianceDetectsInvariantQuery) {
  // "at least two elements" phrased with the order: invariant.
  Schema schema{{"P", 1}};
  Instance d = Db("P(a), P(b), P(c)", schema);
  FoQuery q = FoQ("Q() := exists x, y . Lt(x, y)");
  OrderInvarianceResult result = CheckOrderInvariance(q, d, "Lt");
  EXPECT_TRUE(result.invariant);
  EXPECT_EQ(result.orders_checked, 6u);  // 3! orders
  EXPECT_TRUE(result.answer.AsBool());
}

TEST_F(FoFixture, OrderInvarianceDetectsNonInvariantQuery) {
  // "the minimum is in P": depends on the order.
  Schema schema{{"P", 1}, {"M", 1}};
  Instance d = Db("P(a), M(b)", schema);
  FoQuery q = FoQ("Q() := exists x . P(x) & !(exists y . Lt(y, x))");
  OrderInvarianceResult result = CheckOrderInvariance(q, d, "Lt");
  EXPECT_FALSE(result.invariant);
}

TEST_F(FoFixture, DeeplyNestedNegationIsRejectedNotOverflowed) {
  // 10k-deep "!" chain: without the parser's depth limit this would
  // overflow the thread stack in the recursive descent.
  std::string text(10'000, '!');
  text += "P(x)";
  auto f = ParseFo(text, pool_);
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FoFixture, DeeplyNestedParensAreRejectedNotOverflowed) {
  std::string text(10'000, '(');
  text += "P(x)";
  text += std::string(10'000, ')');
  auto f = ParseFo(text, pool_);
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FoFixture, DeeplyNestedQuantifiersAreRejectedNotOverflowed) {
  std::string text;
  for (int i = 0; i < 5'000; ++i) text += "exists x . ";
  text += "P(x)";
  auto f = ParseFo(text, pool_);
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FoFixture, ModerateNestingStillParses) {
  // The limit must not reject reasonable formulas.
  std::string text(100, '!');
  text += "P(x)";
  EXPECT_TRUE(ParseFo(text, pool_).ok());
}

TEST_F(FoFixture, MalformedFormulaCorpusErrorsCleanly) {
  const char* corpus[] = {
      "",
      "P(",
      "P(x",
      "P(x,",
      "forall . P(x)",
      "exists x P(x)",
      "P(x) &",
      "| P(x)",
      "P(x) ->",
      "x =",
      "!= y",
      "'unterminated",
      "P(x) @ Q(y)",
      "((P(x))",
      "P(x))",
  };
  for (const char* text : corpus) {
    auto f = ParseFo(text, pool_);
    EXPECT_FALSE(f.ok()) << "accepted malformed: " << text;
  }
}

TEST_F(FoFixture, WithStrictOrderBuildsAllPairs) {
  Schema schema{{"P", 1}};
  Instance d = Db("P(a), P(b), P(c)", schema);
  std::vector<Value> ranked{pool_.Intern("c"), pool_.Intern("a"),
                            pool_.Intern("b")};
  Instance ordered = WithStrictOrder(d, "Lt", ranked);
  EXPECT_EQ(ordered.Get("Lt").size(), 3u);  // 3 choose 2
  EXPECT_TRUE(ordered.HasFact("Lt", Tuple{pool_.Intern("c"),
                                          pool_.Intern("b")}));
  EXPECT_FALSE(ordered.HasFact("Lt", Tuple{pool_.Intern("b"),
                                           pool_.Intern("c")}));
}

}  // namespace
}  // namespace vqdr
