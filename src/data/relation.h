#ifndef VQDR_DATA_RELATION_H_
#define VQDR_DATA_RELATION_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "data/tuple.h"
#include "data/value.h"

namespace vqdr {

/// A finite relation: a set of tuples of a fixed arity. Arity-zero relations
/// are the paper's *propositions*: they hold either the empty tuple (true) or
/// nothing (false).
///
/// Tuples are kept sorted and deduplicated, so equality, subset tests and set
/// operations are linear merges and iteration order is deterministic.
class Relation {
 public:
  /// An empty relation of the given arity.
  explicit Relation(int arity = 0) : arity_(arity) {}

  /// A relation initialised with the given tuples (each must match `arity`).
  Relation(int arity, std::vector<Tuple> tuples);

  int arity() const { return arity_; }
  bool empty() const { return tuples_.empty(); }
  std::size_t size() const { return tuples_.size(); }

  /// The tuples in sorted order.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Inserts a tuple; returns true if it was new. Arity-checked.
  bool Insert(const Tuple& t);

  /// Membership test (binary search).
  bool Contains(const Tuple& t) const;

  /// Removes a tuple if present; returns true if it was present.
  bool Erase(const Tuple& t);

  /// For propositions (arity 0): truth value.
  bool AsBool() const;

  /// Sets a proposition's truth value. Arity must be 0.
  void SetBool(bool value);

  /// Adds every value appearing in any tuple to `out`.
  void CollectActiveDomain(std::set<Value>& out) const;

  /// The relation obtained by applying `map` to every value of every tuple.
  /// Tuples that collide after mapping are merged (set semantics).
  Relation Apply(const std::function<Value(Value)>& map) const;

  /// Set union / intersection / difference with a same-arity relation.
  Relation Union(const Relation& other) const;
  Relation Intersect(const Relation& other) const;
  Relation Difference(const Relation& other) const;

  /// True if every tuple of this relation is in `other`.
  bool IsSubsetOf(const Relation& other) const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.arity_ == b.arity_ && a.tuples_ == b.tuples_;
  }
  friend bool operator!=(const Relation& a, const Relation& b) {
    return !(a == b);
  }
  friend bool operator<(const Relation& a, const Relation& b) {
    if (a.arity_ != b.arity_) return a.arity_ < b.arity_;
    return a.tuples_ < b.tuples_;
  }

  /// Renders as "{(…), (…)}" (or "true"/"false" for propositions).
  std::string ToString() const;

 private:
  int arity_;
  std::vector<Tuple> tuples_;  // sorted, unique
};

}  // namespace vqdr

#endif  // VQDR_DATA_RELATION_H_
