# Empty compiler generated dependencies file for bench_counterexample_search.
# This may be replaced when dependencies are built.
