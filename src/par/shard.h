#ifndef VQDR_PAR_SHARD_H_
#define VQDR_PAR_SHARD_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "guard/budget.h"

// Deterministic sharding and merge primitives on top of par/pool.h.
//
// The contract every parallel engine in this library honours: the *answer*
// is a pure function of the input, never of the schedule. The pieces here
// make that cheap to get right:
//
//  * ShardPlan/PlanShards — a chunking of an index space [0, total) that
//    depends only on (total, threads), so a run at a given thread count
//    always produces the same chunks, and merged results can be assembled
//    in chunk order.
//  * FirstHit — a monotonically-decreasing atomic index used as a *pruning
//    hint*: once some worker has found a hit at index i, chunks that start
//    beyond i can be skipped, because the lowest-index hit wins the merge
//    and every candidate in such a chunk has a larger index. Skipping is a
//    pure optimisation; the merge never reads the hint.
//  * OpContext — per-operation cancellation + aggregated progress reporting
//    riding the process-wide obs::ReportProgress hook. Workers report
//    batches of completed units; a callback returning false flips the
//    cancel flag, which workers poll at chunk/stride granularity.

namespace vqdr::par {

/// A fixed chunking of [0, total). Chunk c covers [Begin(c), End(c)).
struct ShardPlan {
  std::uint64_t total = 0;
  std::uint64_t chunk = 1;
  std::uint64_t num_chunks = 0;

  std::uint64_t Begin(std::uint64_t c) const { return c * chunk; }
  std::uint64_t End(std::uint64_t c) const {
    std::uint64_t e = (c + 1) * chunk;
    return e < total ? e : total;
  }
  std::uint64_t Size(std::uint64_t c) const { return End(c) - Begin(c); }
};

/// Plans chunks for `total` units across `threads` workers. Deterministic in
/// (total, threads): aims for ~8 chunks per worker (so stealing can balance
/// uneven chunks) with the chunk size clamped to [min_chunk, max_chunk].
ShardPlan PlanShards(std::uint64_t total, int threads,
                     std::uint64_t min_chunk = 16,
                     std::uint64_t max_chunk = 4096);

/// A concurrent lowest-index-wins cell. Workers publish candidate indices;
/// best() only ever decreases. Payloads are kept in per-chunk storage and
/// resolved by the deterministic merge — this cell is just the pruning hint.
class FirstHit {
 public:
  static constexpr std::uint64_t kNone = ~0ull;

  /// Lowers the best index to `index` if it improves it. Returns true when
  /// `index` became the new best.
  bool TryImprove(std::uint64_t index) {
    std::uint64_t cur = best_.load(std::memory_order_relaxed);
    while (index < cur) {
      if (best_.compare_exchange_weak(cur, index,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  std::uint64_t best() const { return best_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> best_{kNone};
};

/// Shared state of one parallel operation: a cancel flag plus aggregated
/// progress, reported through obs::ReportProgress under the operation's
/// phase name. Reports are throttled to one per `stride` completed units and
/// serialized across workers (progress callbacks were written for
/// single-threaded tickers; they never see concurrent invocations).
class OpContext {
 public:
  /// `budget`, when non-null, is charged by every AddProgress call; a budget
  /// trip cancels the operation the same way a progress callback would.
  OpContext(const char* phase, std::uint64_t total, std::uint64_t stride,
            guard::Budget* budget = nullptr);

  /// Records `n` completed units against the budget and the progress
  /// aggregate. May invoke the progress callback; if the callback asks to
  /// stop or the budget trips, the operation is cancelled. Returns false
  /// once cancelled — callers should unwind at the next safe point.
  bool AddProgress(std::uint64_t n);

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  std::uint64_t done() const { return done_.load(std::memory_order_relaxed); }

  guard::Budget* budget() const { return budget_; }

  /// How the operation ended: the budget's stop reason when it tripped,
  /// kCancelled for a callback-driven stop, kComplete otherwise.
  guard::Outcome outcome() const {
    guard::Outcome o = guard::StopReason(budget_);
    if (!guard::IsComplete(o)) return o;
    return cancelled() ? guard::Outcome::kCancelled
                       : guard::Outcome::kComplete;
  }

 private:
  const char* phase_;
  std::uint64_t total_;
  std::uint64_t stride_;
  bool enabled_;
  guard::Budget* budget_;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> next_report_;
  std::mutex report_mu_;
  std::atomic<bool> cancelled_{false};
};

}  // namespace vqdr::par

#endif  // VQDR_PAR_SHARD_H_
