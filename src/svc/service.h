#ifndef VQDR_SVC_SERVICE_H_
#define VQDR_SVC_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cq/conjunctive_query.h"
#include "data/value.h"
#include "guard/classes.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "par/pool.h"
#include "svc/proto.h"
#include "svc/registry.h"
#include "views/view_set.h"

// The vqdr-serve request engine (transport-free): admission control,
// dispatch, and graceful degradation, shared by the socket server and the
// in-process tests. One Service per process; it owns the worker pool, the
// per-tenant budget-class table, and the watchdog hookup, and it shares the
// process-wide memo store across every request.
//
// Robustness contract (DESIGN.md §13):
//  * Admission is explicit: a request past the tenant's concurrency slots or
//    the global queue limit gets a structured "overloaded" rejection with a
//    retry_after_ms hint — never a silent drop, never unbounded queueing.
//  * The request budget is built AT ADMISSION (deadline armed immediately),
//    so time spent queued counts against the client's deadline.
//  * A tripped budget degrades, it does not fail: the response stays ok with
//    the guard::Outcome tag and the exact computed prefix.
//  * Captured handler exceptions (including injected faults) become
//    ok=false/"internal" responses with outcome INTERNAL_ERROR — the worker
//    and the connection both survive.
//  * A wedged request is detected by the obs stall watchdog through its
//    per-request op identity; the service's stall hook cancels that
//    request's budget, so the handler stops at its next checkpoint, the
//    response reports CANCELLED, and the admission slot is freed. Exactly
//    one structured report per stall (native watchdog discipline).

namespace vqdr {
struct UnrestrictedDeterminacyResult;
struct ContainmentResult;
struct ChaseChain;
namespace memo {
class SnapshotFlusher;
}  // namespace memo
}  // namespace vqdr

namespace vqdr::svc {

struct ServiceOptions {
  /// Worker pool size; 0 = par::DefaultThreads().
  int threads = 0;

  /// Global cap on requests admitted and not yet finished (queued plus
  /// running). Beyond it: "overloaded".
  std::size_t queue_limit = 64;

  /// Backpressure hint when the global queue limit rejects (per-tenant
  /// rejections use the class's own hint).
  std::uint64_t retry_after_ms = 25;

  /// Install the stall hook that cancels a stalled request's budget (the
  /// watchdog itself starts via VQDR_WATCHDOG_MS or obs::StartWatchdog).
  bool cancel_stalled = true;

  /// Turn on the process-wide memo store so every request shares the warm
  /// cache. Engines install only kComplete outcomes and replay hits
  /// byte-identically, so served results stay exact. false leaves the
  /// VQDR_MEMO runtime default untouched.
  bool enable_memo = true;

  /// Memo snapshot file backing warm restarts (DESIGN.md §14). "" falls back
  /// to the VQDR_MEMO_SNAPSHOT environment variable; both empty = no
  /// persistence. When set, the snapshot is loaded at construction and
  /// written by the background flusher, at drain, and by the "snapshot"
  /// control op. Requires enable_memo.
  std::string memo_snapshot_path;

  /// Background snapshot flush interval in milliseconds. 0 = no background
  /// thread — the snapshot is still written at drain and on the "snapshot"
  /// control op.
  std::uint64_t memo_flush_ms = 0;
};

/// Counters the tests and the "stats" operation read.
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_overloaded = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t internal_errors = 0;
  std::uint64_t watchdog_cancels = 0;
  std::uint64_t bad_requests = 0;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Per-tenant budget classes; define them before serving traffic.
  guard::BudgetClassTable& classes() { return classes_; }

  /// Full request path: parse, admit, dispatch, serialize. Never throws;
  /// malformed frames come back as "bad_request" responses. Thread-safe —
  /// this is the connection-thread entry point.
  std::string HandleLine(std::string_view line);

  /// Same, from a parsed request (test seam).
  Response Handle(const Request& req);

  /// Stops admitting queued work ("draining" rejections; control operations
  /// still served) — the SIGTERM drain-then-exit path.
  void BeginDrain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Admitted-not-finished requests.
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

  ServiceStats stats() const;

  const ServiceOptions& options() const { return options_; }

  /// Writes the memo snapshot now (the "snapshot" control op and the test
  /// seam). On success *result_json gets {"path":...,"entries":N,...};
  /// fails when no snapshot path is configured or the write itself fails.
  Status FlushMemoSnapshot(std::string* result_json);

  /// The resolved snapshot path ("" = persistence off).
  const std::string& memo_snapshot_path() const {
    return memo_snapshot_path_;
  }

 private:
  struct Job;

  void RegisterBuiltinOps();
  Response Reject(const char* code, const Request& req,
                  std::uint64_t retry_after_ms);
  Response RunQueued(const OpRegistry::Entry& entry, const Request& req,
                     guard::BudgetClass& cls);

  ServiceOptions options_;
  OpRegistry registry_;
  guard::BudgetClassTable classes_;
  std::unique_ptr<par::ThreadPool> pool_;

  // Warm-restart persistence: null when no snapshot path is configured. The
  // flusher is reset in the destructor AFTER the pool drains, which is the
  // flush-on-SIGTERM-drain final write. (The path stays "" and the flusher
  // member disappears when the memo subsystem is compiled out.)
  std::string memo_snapshot_path_;
#ifndef VQDR_MEMO_DISABLED
  std::unique_ptr<memo::SnapshotFlusher> memo_flusher_;
#endif

  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> next_request_{0};

  // Live request budgets by op id, for the watchdog stall hook.
  std::mutex live_mu_;
  std::map<obs::OpId, std::shared_ptr<guard::Budget>> live_ops_;

  mutable std::mutex stats_mu_;
  ServiceStats stats_;

  // Baseline for the /metrics delta (captured at construction).
  obs::MetricsSnapshot metrics_baseline_;

  bool stall_hook_installed_ = false;
};

/// A request's parsed engine inputs. Parsing order is fixed — views in
/// request order, then the query (then q1 before q2) — so an independent
/// direct engine call on the same strings replays byte-identically.
struct Scenario {
  NamePool pool;
  Schema schema;
  ViewSet views;
  std::optional<ConjunctiveQuery> query;
};

/// Builds the scenario of a determinacy/chase-style request: `schema` as
/// "Name/arity ..." ("" = the query body schema), `views` as pure-CQ rules,
/// `query` as a pure-CQ rule.
Status BuildScenario(const std::string& schema,
                     const std::vector<std::string>& views,
                     const std::string& query, Scenario* out);

// Result-object builders, shared between the handlers and the byte-identity
// tests: both sides serialize an engine result through the same function, so
// "served == direct" is an exact string comparison.
std::string DeterminacyResultJson(
    const vqdr::UnrestrictedDeterminacyResult& result, const NamePool& pool);
std::string ContainmentResultJson(const vqdr::ContainmentResult& result);
std::string ChaseResultJson(const vqdr::ChaseChain& chain,
                            const NamePool& pool);

}  // namespace vqdr::svc

#endif  // VQDR_SVC_SERVICE_H_
