// Indexed-join homomorphism engine (DESIGN.md §12).
//
// Replaces the naive scan-every-tuple backtracking join with:
//   - per-(relation, argument-position) posting-list indexes, built lazily
//     once per call and shared across the whole search;
//   - bitset candidate domains: the candidates for an atom are the
//     intersection of its structural base set (constants + intra-atom
//     repeated-variable equality) with the posting lists of its bound
//     positions;
//   - forward checking: a candidate is discarded when it wipes out the
//     candidate domain of some not-yet-matched atom;
//   - conflict-directed backjumping: when a subtree fails for reasons
//     provably independent of the current level's value, the remaining
//     candidates at this level are skipped;
//   - symmetry breaking: a candidate is skipped when it is the image of an
//     already-failed candidate under an automorphism of the target instance
//     (interchangeable-value classes seeded from the WL value coloring).
//
// Every pruning rule above eliminates only subtrees that provably contain
// zero homomorphisms, and atom selection replicates the legacy rule bit for
// bit, so this engine delivers exactly the legacy engine's on_match sequence
// — same homomorphisms, same order — which is what keeps verdicts and
// witnesses byte-identical across the differential battery.

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/check.h"
#include "cq/fingerprint.h"
#include "cq/matcher_impl.h"

namespace vqdr::matcher_internal {

namespace {

// Interchange-class construction gives up beyond these sizes: symmetry
// breaking is an optimisation, so "too big to analyse" just means "run
// without it".
constexpr std::size_t kSymMaxTuples = 2048;
constexpr std::size_t kSymMaxDomain = 256;
constexpr std::size_t kSymMaxPairChecks = 20000;

// Interchange classes are only built once the search has burned this many
// candidate attempts: the WL coloring behind them costs more than an entire
// small search, and symmetry skips only pay off on wide refutation fronts.
constexpr std::uint64_t kSymMinAttempts = 512;

// Relations at or below this size are filtered by scanning tuples directly
// instead of materialising posting lists — but only for the first few
// domain computations: a search that keeps coming back to the same relation
// amortises the posting build, a tiny search never pays for it.
constexpr std::size_t kSmallRelationScan = 64;
constexpr int kScansBeforeIndexing = 12;

constexpr std::size_t kNoBit = static_cast<std::size_t>(-1);

// Fixed-universe bitset over the tuple indices of one relation.
class Bits {
 public:
  std::size_t universe() const { return n_; }

  void InitZero(std::size_t n) {
    n_ = n;
    w_.assign((n + 63) / 64, 0);
  }

  void InitOnes(std::size_t n) {
    n_ = n;
    w_.assign((n + 63) / 64, ~0ull);
    if ((n & 63) != 0) w_.back() = (1ull << (n & 63)) - 1;
  }

  void Set(std::size_t i) { w_[i >> 6] |= 1ull << (i & 63); }

  void Clear(std::size_t i) { w_[i >> 6] &= ~(1ull << (i & 63)); }

  bool Any() const {
    for (std::uint64_t w : w_) {
      if (w != 0) return true;
    }
    return false;
  }

  std::size_t Count() const {
    std::size_t c = 0;
    for (std::uint64_t w : w_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  void CopyFrom(const Bits& o) {
    n_ = o.n_;
    w_ = o.w_;  // vector assign reuses capacity across levels
  }

  // this &= o; returns whether any bit survives. Universes must match.
  bool AndWith(const Bits& o) {
    std::uint64_t any = 0;
    for (std::size_t i = 0; i < w_.size(); ++i) {
      w_[i] &= o.w_[i];
      any |= w_[i];
    }
    return any != 0;
  }

  // First set bit at index >= from, or kNoBit.
  std::size_t FindNext(std::size_t from) const {
    if (from >= n_) return kNoBit;
    std::size_t wi = from >> 6;
    std::uint64_t w = w_[wi] & (~0ull << (from & 63));
    while (true) {
      if (w != 0) {
        return (wi << 6) + static_cast<std::size_t>(__builtin_ctzll(w));
      }
      if (++wi == w_.size()) return kNoBit;
      w = w_[wi];
    }
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> w_;
};

using Mask = std::uint64_t;

enum class Res { kStopped, kMatched, kFailed };

class Engine {
 public:
  Engine(const std::vector<Atom>& atoms, const Instance& db,
         const Binding& initial,
         const std::function<bool(const Binding&)>& on_match,
         MatchStats& stats, guard::Budget* budget,
         const MatcherOptions& options)
      : atoms_(atoms),
        db_(db),
        on_match_(on_match),
        stats_(stats),
        budget_(budget),
        n_(static_cast<int>(atoms.size())),
        fc_(options.forward_checking),
        cbj_(options.conflict_backjumping && atoms.size() <= 64),
        sym_wanted_(options.symmetry_breaking),
        binding_(initial) {
    BuildRelations();
    BuildVariables(initial);
    BuildAtomInfos();
    for (const auto& [var, value] : initial) {
      (void)var;
      ImageAdd(value.id);
    }
    matched_.assign(n_, 0);
    levels_.resize(n_);
  }

  bool Run() {
    if (!guard::IsComplete(guard::Check(budget_))) return false;
    if (impossible_) return true;  // completed with zero matches
    return Node(0) != Res::kStopped;
  }

 private:
  struct RelInfo {
    const Relation* rel = nullptr;
    std::size_t size = 0;
    // posts[pos][value id] = tuples with that value at that position.
    std::vector<std::unordered_map<std::int64_t, Bits>> posts;
    bool posts_built = false;
    int scans_left = kScansBeforeIndexing;
  };

  struct AtomInfo {
    int rel_id = 0;
    // Per argument position: variable id, or -1 for a constant.
    std::vector<int> slot_var;
    // Tuples passing this atom's binding-independent constraints
    // (constants match, repeated variables see equal values). When the atom
    // has neither, `base_full` marks the whole relation as passing and
    // `base` stays empty.
    Bits base;
    bool base_full = false;
  };

  struct Level {
    Bits cand;
    Bits fc_scratch;
    // Signatures of candidates whose subtrees were exhaustively refuted at
    // this node — symmetric candidates fail identically and are skipped.
    std::set<std::vector<std::int64_t>> failed_sigs;
    std::vector<int> newly_bound;
  };

  static Mask LevelBit(int level) {
    return level < 0 ? 0 : (Mask{1} << level);
  }

  // The symbol tables are flat vectors with linear lookup: queries have a
  // handful of relations and at most a few dozen variables, where a scan
  // beats hashing and — more importantly for the tiny-search workloads the
  // chase and finite search generate — costs zero allocations per call.
  int RelIdOf(const std::string& predicate) const {
    for (std::size_t i = 0; i < rel_names_.size(); ++i) {
      if (rel_names_[i] == predicate) return static_cast<int>(i);
    }
    return -1;
  }

  int VarIdOf(const std::string& name) const {
    for (std::size_t i = 0; i < var_names_.size(); ++i) {
      if (var_names_[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  void BuildRelations() {
    for (const Atom& a : atoms_) {
      if (RelIdOf(a.predicate) >= 0) continue;
      rel_names_.push_back(a.predicate);
      RelInfo r;
      r.rel = &db_.Get(a.predicate);
      r.size = r.rel->size();
      rels_.push_back(std::move(r));
    }
  }

  void BuildVariables(const Binding& initial) {
    for (const Atom& a : atoms_) {
      for (const Term& t : a.args) {
        if (t.is_var()) {
          if (VarIdOf(t.var()) < 0) var_names_.push_back(t.var());
        } else if (std::find(query_consts_.begin(), query_consts_.end(),
                             t.constant().id) == query_consts_.end()) {
          query_consts_.push_back(t.constant().id);
        }
      }
    }
    val_.assign(var_names_.size(), Value{});
    bound_.assign(var_names_.size(), 0);
    level_of_.assign(var_names_.size(), -1);
    for (const auto& [name, value] : initial) {
      int v = VarIdOf(name);
      if (v < 0) continue;
      val_[v] = value;
      bound_[v] = 1;
    }
  }

  void BuildAtomInfos() {
    atom_info_.resize(n_);
    for (int ai = 0; ai < n_; ++ai) {
      const Atom& a = atoms_[ai];
      AtomInfo& info = atom_info_[ai];
      info.rel_id = RelIdOf(a.predicate);
      info.slot_var.reserve(a.args.size());
      bool constrained = false;
      for (std::size_t s = 0; s < a.args.size(); ++s) {
        const Term& t = a.args[s];
        info.slot_var.push_back(t.is_var() ? VarIdOf(t.var()) : -1);
        if (info.slot_var[s] < 0) constrained = true;
        for (std::size_t s2 = 0; !constrained && s2 < s; ++s2) {
          if (info.slot_var[s2] == info.slot_var[s]) constrained = true;
        }
      }
      const RelInfo& r = rels_[info.rel_id];
      if (!constrained) {
        // No constants, no repeated variables: every tuple passes, so the
        // base set is the whole relation — represented implicitly, which
        // keeps construction O(arity) instead of O(tuples).
        info.base_full = true;
        if (r.size == 0) impossible_ = true;
        continue;
      }
      info.base.InitZero(r.size);
      const std::vector<Tuple>& tuples = r.rel->tuples();
      bool any = false;
      for (std::size_t idx = 0; idx < tuples.size(); ++idx) {
        const Tuple& t = tuples[idx];
        bool ok = true;
        for (std::size_t s = 0; ok && s < a.args.size(); ++s) {
          if (info.slot_var[s] < 0) {
            ok = a.args[s].constant() == t[s];
            continue;
          }
          // Repeated variable: all occurrences must see the same value.
          for (std::size_t s2 = 0; s2 < s; ++s2) {
            if (info.slot_var[s2] == info.slot_var[s] && t[s2] != t[s]) {
              ok = false;
              break;
            }
          }
        }
        if (ok) {
          info.base.Set(idx);
          any = true;
        }
      }
      if (!any) impossible_ = true;
    }
  }

  void EnsurePosts(RelInfo& r) {
    if (r.posts_built) return;
    r.posts_built = true;
    ++stats_.index_builds;
    const std::vector<Tuple>& tuples = r.rel->tuples();
    std::size_t arity = tuples.empty() ? 0 : tuples.front().size();
    r.posts.resize(arity);
    for (std::size_t idx = 0; idx < tuples.size(); ++idx) {
      for (std::size_t pos = 0; pos < arity; ++pos) {
        Bits& b = r.posts[pos][tuples[idx][pos].id];
        if (b.universe() == 0) b.InitZero(r.size);
        b.Set(idx);
      }
    }
  }

  // Candidate domain of atom `ai` under the current partial binding:
  // base ∩ posting lists of every bound argument position. Accumulates the
  // levels consulted into *cs. Returns false if the domain is empty.
  bool ComputeDomain(int ai, Bits& out, Mask* cs) {
    const AtomInfo& info = atom_info_[ai];
    RelInfo& r = rels_[info.rel_id];
    if (info.base_full) {
      out.InitOnes(r.size);
    } else {
      out.CopyFrom(info.base);
    }
    if (!r.posts_built && r.size <= kSmallRelationScan && r.scans_left > 0) {
      --r.scans_left;
      // Tiny relation: test the bound slots of each surviving tuple
      // directly — cheaper than building posting lists would be.
      bool any_bound = false;
      for (std::size_t s = 0; s < info.slot_var.size(); ++s) {
        int v = info.slot_var[s];
        if (v < 0 || !bound_[v]) continue;
        *cs |= LevelBit(level_of_[v]);
        any_bound = true;
      }
      if (!any_bound) return out.Any();
      ++stats_.index_lookups;
      const std::vector<Tuple>& tuples = r.rel->tuples();
      bool nonempty = false;
      for (std::size_t idx = out.FindNext(0); idx != kNoBit;
           idx = out.FindNext(idx + 1)) {
        const Tuple& t = tuples[idx];
        bool ok = true;
        for (std::size_t s = 0; ok && s < info.slot_var.size(); ++s) {
          int v = info.slot_var[s];
          if (v >= 0 && bound_[v] && t[s] != val_[v]) ok = false;
        }
        if (ok) {
          nonempty = true;
        } else {
          out.Clear(idx);
        }
      }
      return nonempty;
    }
    bool nonempty = true;
    for (std::size_t s = 0; s < info.slot_var.size(); ++s) {
      int v = info.slot_var[s];
      if (v < 0 || !bound_[v]) continue;
      *cs |= LevelBit(level_of_[v]);
      if (!nonempty) continue;
      EnsurePosts(r);
      ++stats_.index_lookups;
      auto it = r.posts[s].find(val_[v].id);
      if (it == r.posts[s].end() || !out.AndWith(it->second)) {
        nonempty = false;
      }
    }
    return nonempty;
  }

  // ---------- symmetry breaking ----------

  // True when the interchange classes are built and non-trivial. Builds them
  // on first use; on failure (too big, no symmetry) disables the feature for
  // the rest of the call.
  bool SymReady() {
    if (!sym_wanted_) return false;
    if (sym_state_ == 0) {
      if (total_attempts_ < kSymMinAttempts) return false;
      BuildSymClasses();
    }
    return sym_state_ == 1;
  }

  // Exact check: is the transposition (u v) an automorphism of db? A
  // transposition is an involution, so mapping every touched tuple back into
  // its relation is both necessary and sufficient.
  bool TranspositionIsAutomorphism(Value u, Value v) const {
    for (const RelationDecl& decl : db_.schema().decls()) {
      const Relation& rel = db_.Get(decl.name);
      for (const Tuple& t : rel.tuples()) {
        bool touched = false;
        for (const Value& x : t) {
          if (x == u || x == v) {
            touched = true;
            break;
          }
        }
        if (!touched) continue;
        Tuple mapped = t;
        for (Value& x : mapped) x = x == u ? v : (x == v ? u : x);
        if (!rel.Contains(mapped)) return false;
      }
    }
    return true;
  }

  // Partitions (part of) the active domain into interchange classes: sets of
  // values any permutation of which is an automorphism of db. WL colors are
  // a necessary condition for interchangeability and serve as the cheap
  // filter; membership is then verified exactly against a class
  // representative. Star transpositions (rep x) generate the full symmetric
  // group on the class, and automorphisms compose, so every permutation
  // supported on a class is a genuine automorphism.
  void BuildSymClasses() {
    sym_state_ = 2;  // pessimistic until proven useful
    if (db_.TupleCount() > kSymMaxTuples) return;
    std::set<Value> dom = db_.ActiveDomain();
    if (dom.size() < 2 || dom.size() > kSymMaxDomain) return;
    std::unordered_map<Value, int> wl = WlValueColorClasses(db_);
    std::map<int, std::vector<Value>> groups;
    for (Value v : dom) groups[wl[v]].push_back(v);
    std::size_t checks = 0;
    int next_class = 0;
    for (const auto& [color, vals] : groups) {
      (void)color;
      if (vals.size() < 2) continue;
      std::vector<std::vector<Value>> subs;
      for (Value v : vals) {
        bool placed = false;
        for (auto& sub : subs) {
          if (++checks > kSymMaxPairChecks) return;
          if (TranspositionIsAutomorphism(sub.front(), v)) {
            sub.push_back(v);
            placed = true;
            break;
          }
        }
        if (!placed) subs.push_back({v});
      }
      for (const auto& sub : subs) {
        if (sub.size() < 2) continue;
        for (Value v : sub) class_of_[v.id] = next_class;
        ++next_class;
      }
    }
    if (!class_of_.empty()) sym_state_ = 1;
  }

  // Multiset of values in the current binding's image, kept as a flat
  // vector (bindings are small; linear scan, zero allocation steady-state).
  void ImageAdd(std::int64_t id) {
    for (auto& [value, count] : image_) {
      if (value == id) {
        ++count;
        return;
      }
    }
    image_.emplace_back(id, 1);
  }

  void ImageRemove(std::int64_t id) {
    for (std::size_t i = 0; i < image_.size(); ++i) {
      if (image_[i].first != id) continue;
      if (--image_[i].second == 0) {
        image_[i] = image_.back();
        image_.pop_back();
      }
      return;
    }
  }

  bool ImageHas(std::int64_t id) const {
    for (const auto& [value, count] : image_) {
      if (value == id) return count > 0;
    }
    return false;
  }

  // A value is pinned when any automorphism used for candidate exchange must
  // fix it: it is in the image of the current binding or is a query constant.
  bool Pinned(Value v) const {
    if (std::find(query_consts_.begin(), query_consts_.end(), v.id) !=
        query_consts_.end()) {
      return true;
    }
    return ImageHas(v.id);
  }

  // Signature of candidate tuple `t` for atom `ai` at the current node,
  // BEFORE its free slots are bound. Two candidates with equal signatures
  // are images of each other under an automorphism fixing every pinned
  // value, so their subtrees succeed or fail together.
  void ComputeSig(int ai, const Tuple& t, std::vector<std::int64_t>& out) const {
    const AtomInfo& info = atom_info_[ai];
    out.clear();
    for (std::size_t s = 0; s < t.size(); ++s) {
      int v = info.slot_var[s];
      Value x = t[s];
      bool exact = v < 0 || bound_[v] || Pinned(x);
      auto cls = exact ? class_of_.end() : class_of_.find(x.id);
      if (exact || cls == class_of_.end()) {
        out.push_back(0);
        out.push_back(x.id);
        continue;
      }
      // First occurrence of this value among the earlier free unpinned
      // slots: the repetition pattern must match, not just the classes.
      std::size_t first = s;
      for (std::size_t s2 = 0; s2 < s; ++s2) {
        int v2 = info.slot_var[s2];
        if (v2 >= 0 && !bound_[v2] && t[s2] == x && !Pinned(t[s2])) {
          first = s2;
          break;
        }
      }
      out.push_back(1);
      out.push_back(cls->second);
      out.push_back(static_cast<std::int64_t>(first));
    }
  }

  // ---------- search ----------

  void BindCandidate(int ai, const Tuple& t, int depth, Level& lv) {
    const AtomInfo& info = atom_info_[ai];
    lv.newly_bound.clear();
    for (std::size_t s = 0; s < t.size(); ++s) {
      int v = info.slot_var[s];
      if (v < 0 || bound_[v]) continue;
      bound_[v] = 1;
      val_[v] = t[s];
      level_of_[v] = depth;
      lv.newly_bound.push_back(v);
      binding_.emplace(var_names_[v], t[s]);
      ImageAdd(t[s].id);
    }
  }

  void UnbindCandidate(Level& lv) {
    for (int v : lv.newly_bound) {
      bound_[v] = 0;
      level_of_[v] = -1;
      binding_.erase(var_names_[v]);
      ImageRemove(val_[v].id);
    }
    lv.newly_bound.clear();
  }

  // Forward checking: after binding a candidate at `depth`, every
  // not-yet-matched atom touching a newly bound variable must retain a
  // non-empty candidate domain. On a wipe-out, the levels of the failing
  // atom's bound variables join the conflict set.
  bool ForwardCheck(int depth, Level& lv, Mask* cs) {
    for (int bi = 0; bi < n_; ++bi) {
      if (matched_[bi]) continue;
      const AtomInfo& info = atom_info_[bi];
      bool affected = false;
      for (int v : info.slot_var) {
        if (v >= 0 && bound_[v] && level_of_[v] == depth) {
          affected = true;
          break;
        }
      }
      if (!affected) continue;
      Mask consulted = 0;
      if (!ComputeDomain(bi, lv.fc_scratch, &consulted)) {
        *cs |= consulted & ~LevelBit(depth);
        ++stats_.fc_prunes;
        return false;
      }
    }
    return true;
  }

  Res Node(int depth) {
    // One budget step per backtracking node, mirroring the legacy engine's
    // polling density.
    if (!guard::IsComplete(guard::Check(budget_))) return Res::kStopped;
    if (depth == n_) {
      ++stats_.matches;
      return on_match_(binding_) ? Res::kMatched : Res::kStopped;
    }

    // Atom selection replicates the legacy rule exactly — maximal bound
    // positions, then smaller relation, then first in ascending atom order —
    // and is value-blind (it depends only on WHICH variables are bound),
    // which is what makes the backjumping argument sound.
    int best = -1;
    int best_bound = -1;
    std::size_t best_size = 0;
    for (int ai = 0; ai < n_; ++ai) {
      if (matched_[ai]) continue;
      const AtomInfo& info = atom_info_[ai];
      int bound = 0;
      for (int v : info.slot_var) {
        if (v < 0 || bound_[v]) ++bound;
      }
      std::size_t size = rels_[info.rel_id].size;
      if (bound > best_bound || (bound == best_bound && size < best_size)) {
        best_bound = bound;
        best_size = size;
        best = ai;
      }
    }

    Level& lv = levels_[depth];
    lv.failed_sigs.clear();
    Mask cs = 0;
    bool nonempty = ComputeDomain(best, lv.cand, &cs);
    const RelInfo& r = rels_[atom_info_[best].rel_id];
    matched_[best] = 1;

    bool matched_below = false;
    bool stopped = false;
    std::uint64_t attempts = 0;
    if (nonempty) {
      stats_.index_candidates += lv.cand.Count();
      for (std::size_t idx = lv.cand.FindNext(0); idx != kNoBit;
           idx = lv.cand.FindNext(idx + 1)) {
        ++attempts;
        ++total_attempts_;
        const Tuple& tuple = r.rel->tuples()[idx];
        if (!lv.failed_sigs.empty()) {
          ComputeSig(best, tuple, sig_scratch_);
          if (lv.failed_sigs.count(sig_scratch_) != 0) {
            ++stats_.sym_skips;
            // The skip leans on the whole binding image; give up on
            // attributing this node's failure to specific levels.
            cs = ~Mask{0};
            continue;
          }
        }
        BindCandidate(best, tuple, depth, lv);
        if (fc_ && !ForwardCheck(depth, lv, &cs)) {
          UnbindCandidate(lv);
          if (SymReady()) {
            ComputeSig(best, tuple, sig_scratch_);
            lv.failed_sigs.insert(sig_scratch_);
          }
          continue;
        }
        Res child = Node(depth + 1);
        UnbindCandidate(lv);
        if (child == Res::kStopped) {
          stopped = true;
          break;
        }
        if (child == Res::kMatched) {
          matched_below = true;
          continue;
        }
        // Child subtree exhaustively refuted (no budget stop): fold its
        // conflict set into ours and remember the candidate's shape.
        cs |= child_cs_ & ~LevelBit(depth);
        if (SymReady()) {
          ComputeSig(best, tuple, sig_scratch_);
          lv.failed_sigs.insert(sig_scratch_);
        }
        if (cbj_ && (child_cs_ & LevelBit(depth)) == 0) {
          // The failure did not consult this level's value: every remaining
          // candidate here meets the identical refutation.
          ++stats_.bj_jumps;
          break;
        }
      }
    }
    stats_.attempts += attempts;
    matched_[best] = 0;
    if (stopped) return Res::kStopped;
    if (matched_below) return Res::kMatched;
    child_cs_ = cbj_ ? cs : ~Mask{0};
    return Res::kFailed;
  }

  const std::vector<Atom>& atoms_;
  const Instance& db_;
  const std::function<bool(const Binding&)>& on_match_;
  MatchStats& stats_;
  guard::Budget* budget_;
  const int n_;
  const bool fc_;
  const bool cbj_;
  const bool sym_wanted_;

  std::vector<std::string> rel_names_;
  std::vector<RelInfo> rels_;
  std::vector<AtomInfo> atom_info_;

  std::vector<std::string> var_names_;
  std::vector<Value> val_;
  std::vector<char> bound_;
  std::vector<int> level_of_;

  Binding binding_;
  std::vector<std::pair<std::int64_t, int>> image_;
  std::vector<std::int64_t> query_consts_;

  std::vector<char> matched_;
  std::vector<Level> levels_;
  std::vector<std::int64_t> sig_scratch_;

  // 0 = not yet built, 1 = built and non-trivial, 2 = unavailable.
  int sym_state_ = 0;
  std::uint64_t total_attempts_ = 0;
  std::unordered_map<std::int64_t, int> class_of_;

  Mask child_cs_ = 0;
  bool impossible_ = false;
};

}  // namespace

bool IndexedMatch(const std::vector<Atom>& atoms, const Instance& db,
                  const Binding& initial,
                  const std::function<bool(const Binding&)>& on_match,
                  MatchStats& stats, guard::Budget* budget,
                  const MatcherOptions& options) {
  Engine engine(atoms, db, initial, on_match, stats, budget, options);
  return engine.Run();
}

}  // namespace vqdr::matcher_internal
