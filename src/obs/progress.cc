#include "obs/progress.h"

#include <memory>
#include <mutex>

namespace vqdr::obs {

namespace {

std::mutex g_mu;
std::shared_ptr<ProgressCallback> g_callback;  // null when disabled

std::shared_ptr<ProgressCallback> CurrentCallback() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_callback;
}

}  // namespace

void SetProgressCallback(ProgressCallback callback) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_callback = std::make_shared<ProgressCallback>(std::move(callback));
}

void ClearProgressCallback() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_callback.reset();
}

bool ProgressEnabled() { return CurrentCallback() != nullptr; }

bool ReportProgress(const char* phase, std::uint64_t current,
                    std::uint64_t total) {
  OpHeartbeat();
  std::shared_ptr<ProgressCallback> cb = CurrentCallback();
  if (cb == nullptr) return true;
  ProgressEvent e;
  e.phase = phase;
  e.current = current;
  e.total = total;
  return (*cb)(e);
}

ProgressTicker::ProgressTicker(const char* phase, std::uint64_t stride,
                               std::uint64_t total)
    : phase_(phase),
      stride_(stride == 0 ? 1 : stride),
      total_(total),
      enabled_(ProgressEnabled()) {}

bool ProgressTicker::Report() {
  return ReportProgress(phase_, count_, total_);
}

}  // namespace vqdr::obs
