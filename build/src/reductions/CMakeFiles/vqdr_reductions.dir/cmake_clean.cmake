file(REMOVE_RECURSE
  "CMakeFiles/vqdr_reductions.dir/counterexamples.cc.o"
  "CMakeFiles/vqdr_reductions.dir/counterexamples.cc.o.d"
  "CMakeFiles/vqdr_reductions.dir/gimp.cc.o"
  "CMakeFiles/vqdr_reductions.dir/gimp.cc.o.d"
  "CMakeFiles/vqdr_reductions.dir/monoid.cc.o"
  "CMakeFiles/vqdr_reductions.dir/monoid.cc.o.d"
  "CMakeFiles/vqdr_reductions.dir/order_views.cc.o"
  "CMakeFiles/vqdr_reductions.dir/order_views.cc.o.d"
  "CMakeFiles/vqdr_reductions.dir/sat_reductions.cc.o"
  "CMakeFiles/vqdr_reductions.dir/sat_reductions.cc.o.d"
  "CMakeFiles/vqdr_reductions.dir/turing.cc.o"
  "CMakeFiles/vqdr_reductions.dir/turing.cc.o.d"
  "libvqdr_reductions.a"
  "libvqdr_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqdr_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
