// Tests for CQ/UCQ containment, equivalence and minimisation
// (Chandra–Merlin [9] and Sagiv–Yannakakis machinery used throughout the
// paper's Section 3).

#include <sstream>

#include <gtest/gtest.h>

#include "cq/canonical.h"
#include "cq/containment.h"
#include "cq/matcher.h"
#include "cq/minimize.h"
#include "cq/parser.h"

namespace vqdr {
namespace {

class ContainmentFixture : public ::testing::Test {
 protected:
  ConjunctiveQuery Cq(const std::string& text) {
    auto q = ParseCq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message() << " in: " << text;
    return q.value();
  }

  UnionQuery Ucq(const std::string& text) {
    auto q = ParseUcq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message() << " in: " << text;
    return q.value();
  }

  NamePool pool_;
};

TEST_F(ContainmentFixture, LongerPathContainedInShorter) {
  // A 3-path implies a 2-path pattern (drop one hop).
  ConjunctiveQuery p3 = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, y)");
  ConjunctiveQuery p1 = Cq("Q(x, y) :- E(x, y)");
  // p1 says there is a direct edge: every direct edge yields a 3-walk only
  // on reflexive graphs, so p1 is NOT contained in p3.
  EXPECT_FALSE(CqContainedIn(p1, p3));
  // And a 3-walk does not yield a direct edge either.
  EXPECT_FALSE(CqContainedIn(p3, p1));
}

TEST_F(ContainmentFixture, TriangleContainedInWalk) {
  ConjunctiveQuery triangle = Cq("Q(x) :- E(x, y), E(y, z), E(z, x)");
  ConjunctiveQuery walk = Cq("Q(x) :- E(x, u), E(u, v)");
  EXPECT_TRUE(CqContainedIn(triangle, walk));
  EXPECT_FALSE(CqContainedIn(walk, triangle));
}

TEST_F(ContainmentFixture, EquivalentUpToRenaming) {
  ConjunctiveQuery a = Cq("Q(x) :- R(x, y), S(y)");
  ConjunctiveQuery b = Cq("Q(u) :- R(u, w), S(w)");
  EXPECT_TRUE(CqEquivalent(a, b));
}

TEST_F(ContainmentFixture, RedundantAtomEquivalence) {
  ConjunctiveQuery redundant = Cq("Q(x) :- R(x, y), R(x, z)");
  ConjunctiveQuery minimal = Cq("Q(x) :- R(x, y)");
  EXPECT_TRUE(CqEquivalent(redundant, minimal));
}

TEST_F(ContainmentFixture, ConstantsBlockContainment) {
  ConjunctiveQuery general = Cq("Q(x) :- R(x, y)");
  ConjunctiveQuery specific = Cq("Q(x) :- R(x, 'a')");
  EXPECT_TRUE(CqContainedIn(specific, general));
  EXPECT_FALSE(CqContainedIn(general, specific));
}

TEST_F(ContainmentFixture, DistinctConstantsNotEquivalent) {
  ConjunctiveQuery qa = Cq("Q() :- R('a')");
  ConjunctiveQuery qb = Cq("Q() :- R('b')");
  EXPECT_FALSE(CqContainedIn(qa, qb));
  EXPECT_FALSE(CqContainedIn(qb, qa));
}

TEST_F(ContainmentFixture, UnsatisfiableContainedEverywhere) {
  ConjunctiveQuery bot = Cq("Q(x) :- R(x), 'a' = 'b'");
  ConjunctiveQuery any = Cq("Q(x) :- S(x)");
  EXPECT_TRUE(CqContainedIn(bot, any));
  EXPECT_FALSE(CqContainedIn(any, bot));
  EXPECT_FALSE(CqSatisfiable(bot));
  EXPECT_TRUE(CqSatisfiable(any));
}

// The classical incompleteness example for the naive (single canonical
// instance) test in the presence of ≠: with disequalities the containment
// test must consider variable identifications.
TEST_F(ContainmentFixture, DisequalityContainmentNeedsPatterns) {
  // Q1(x) :- R(x,y), R(y,x): on instances where x=y is forced, Q2 with
  // x != y does not apply, so Q1 is not contained in Q2.
  ConjunctiveQuery q1 = Cq("Q(x) :- R(x, y), R(y, x)");
  ConjunctiveQuery q2 = Cq("Q(x) :- R(x, y), R(y, x), x != y");
  EXPECT_TRUE(CqContainedIn(q2, q1));
  EXPECT_FALSE(CqContainedIn(q1, q2));
}

TEST_F(ContainmentFixture, DisequalityEquivalentQueries) {
  ConjunctiveQuery a = Cq("Q(x) :- R(x, y), x != y");
  ConjunctiveQuery b = Cq("Q(u) :- R(u, v), v != u");
  EXPECT_TRUE(CqContainedIn(a, b));
  EXPECT_TRUE(CqContainedIn(b, a));
}

TEST_F(ContainmentFixture, UcqContainmentPerDisjunct) {
  UnionQuery small = Ucq("Q(x) :- A(x)");
  UnionQuery big = Ucq("Q(x) :- A(x) | Q(x) :- B(x)");
  EXPECT_TRUE(UcqContainedIn(small, big));
  EXPECT_FALSE(UcqContainedIn(big, small));
}

TEST_F(ContainmentFixture, UcqContainmentIntoUnionNotSingle) {
  // Sagiv–Yannakakis: a disjunct may be covered by the union even though it
  // maps into no single disjunct — but for pure CQs each canonical instance
  // must satisfy some single disjunct, which this test exercises.
  UnionQuery left = Ucq("Q(x) :- A(x), B(x)");
  UnionQuery right = Ucq("Q(x) :- A(x) | Q(x) :- B(x)");
  EXPECT_TRUE(UcqContainedIn(left, right));
  EXPECT_FALSE(UcqContainedIn(right, left));
}

TEST_F(ContainmentFixture, UcqEquivalenceModuloSubsumedDisjunct) {
  UnionQuery with_redundant =
      Ucq("Q(x) :- A(x) | Q(x) :- A(x), B(x)");
  UnionQuery minimal = Ucq("Q(x) :- A(x)");
  EXPECT_TRUE(UcqEquivalent(with_redundant, minimal));
}

TEST_F(ContainmentFixture, MinimizeRemovesRedundantAtoms) {
  ConjunctiveQuery q = Cq("Q(x) :- R(x, y), R(x, z), R(x, w)");
  ConjunctiveQuery core = MinimizeCq(q);
  EXPECT_EQ(core.atoms().size(), 1u);
  EXPECT_TRUE(CqEquivalent(q, core));
}

TEST_F(ContainmentFixture, MinimizeKeepsNonRedundantAtoms) {
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, z), E(z, y)");
  ConjunctiveQuery core = MinimizeCq(q);
  EXPECT_EQ(core.atoms().size(), 2u);
}

TEST_F(ContainmentFixture, MinimizeFoldsChainOntoTriangleCore) {
  // Boolean query: triangle plus a pendant walk folds onto the triangle.
  ConjunctiveQuery q =
      Cq("Q() :- E(x, y), E(y, z), E(z, x), E(x, u), E(u, v)");
  ConjunctiveQuery core = MinimizeCq(q);
  EXPECT_EQ(core.atoms().size(), 3u);
  EXPECT_TRUE(CqEquivalent(q, core));
}

TEST_F(ContainmentFixture, MinimizeUcqDropsSubsumedDisjuncts) {
  UnionQuery q =
      Ucq("Q(x) :- A(x) | Q(x) :- A(x), B(x) | Q(x) :- C(x, y), C(x, z)");
  UnionQuery min = MinimizeUcq(q);
  ASSERT_EQ(min.disjuncts().size(), 2u);
  EXPECT_EQ(min.disjuncts()[0].atoms().size(), 1u);
  EXPECT_EQ(min.disjuncts()[1].atoms().size(), 1u);
  EXPECT_TRUE(UcqEquivalent(q, min));
}

TEST_F(ContainmentFixture, MinimizeUcqKeepsOneOfEquivalentPair) {
  UnionQuery q = Ucq("Q(x) :- A(x), A(x) | Q(x) :- A(x)");
  UnionQuery min = MinimizeUcq(q);
  EXPECT_EQ(min.disjuncts().size(), 1u);
  EXPECT_TRUE(UcqEquivalent(q, min));
}

// --- Golden verdict+witness fixtures (DESIGN.md §12) ---
//
// Recorded from the seed matcher. The containment witness is the FIRST
// homomorphism in enumeration order, so these pin the exact enumeration
// sequence: any engine change that alters it — even to another valid
// witness — is a contract break, not a refactor.

std::string RenderWitness(const Binding& witness) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [var, value] : witness) {
    if (!first) os << " ";
    first = false;
    os << var << "=" << value.id;
  }
  return os.str();
}

TEST_F(ContainmentFixture, GoldenTriangleIntoWalkWitness) {
  ConjunctiveQuery triangle = Cq("Q(x) :- E(x, y), E(y, z), E(z, x)");
  ConjunctiveQuery walk = Cq("Q(x) :- E(x, u), E(u, v)");
  ValueFactory factory;
  FrozenQuery pattern = Freeze(triangle, factory);
  Binding witness;
  ASSERT_TRUE(CqAnswerContains(walk, pattern.instance, pattern.frozen_head,
                               nullptr, &witness));
  EXPECT_EQ(RenderWitness(witness), "u=2 v=3 x=1");
}

TEST_F(ContainmentFixture, GoldenRedundantAtomFoldWitness) {
  ConjunctiveQuery redundant = Cq("Q(x) :- R(x, y), R(x, z)");
  ConjunctiveQuery minimal = Cq("Q(x) :- R(x, y)");
  ValueFactory factory;
  FrozenQuery pattern = Freeze(minimal, factory);
  Binding witness;
  ASSERT_TRUE(CqAnswerContains(redundant, pattern.instance,
                               pattern.frozen_head, nullptr, &witness));
  EXPECT_EQ(RenderWitness(witness), "x=1 y=2 z=2");
}

TEST_F(ContainmentFixture, GoldenConstantAnchoredWitness) {
  ConjunctiveQuery specific = Cq("Q(x) :- R(x, 'a'), S('a')");
  ConjunctiveQuery general = Cq("Q(x) :- R(x, w)");
  ValueFactory factory;
  FrozenQuery pattern = Freeze(specific, factory);
  Binding witness;
  ASSERT_TRUE(CqAnswerContains(general, pattern.instance,
                               pattern.frozen_head, nullptr, &witness));
  EXPECT_EQ(RenderWitness(witness), "w=1 x=2");
  EXPECT_FALSE(CqContainedIn(general, specific));
  EXPECT_TRUE(CqContainedIn(specific, general));
}

}  // namespace
}  // namespace vqdr
