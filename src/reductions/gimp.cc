#include "reductions/gimp.h"

#include <functional>
#include <map>

#include "base/check.h"
#include "fo/evaluator.h"
#include "fo/normalize.h"
#include "fo/parser.h"

namespace vqdr {

namespace {

constexpr char kDiagName[] = "Diag__";

// All tuples over `universe` of the given arity.
std::vector<Tuple> AllTuplesOver(const std::set<Value>& universe, int arity) {
  std::vector<Tuple> result;
  if (arity == 0) {
    result.push_back(Tuple{});
    return result;
  }
  Tuple current(arity);
  std::function<void(int)> rec = [&](int pos) {
    if (pos == arity) {
      result.push_back(current);
      return;
    }
    for (Value v : universe) {
      current[pos] = v;
      rec(pos + 1);
    }
  };
  rec(0);
  return result;
}

// Replaces equality atoms by Diag__ atoms (the construction's safe-view
// encoding of equality).
FoPtr ReplaceEquality(const FoPtr& f, bool* used_equality) {
  using F = FoFormula;
  using Kind = FoFormula::Kind;
  switch (f->kind()) {
    case Kind::kEquals:
      *used_equality = true;
      return F::MakeAtom(Atom(kDiagName, {f->lhs(), f->rhs()}));
    case Kind::kNot:
      return F::Not(ReplaceEquality(f->children()[0], used_equality));
    case Kind::kAnd: {
      std::vector<FoPtr> kids;
      for (const FoPtr& c : f->children()) {
        kids.push_back(ReplaceEquality(c, used_equality));
      }
      return F::And(std::move(kids));
    }
    case Kind::kExists:
      return F::Exists(f->quantified_vars(),
                       ReplaceEquality(f->children()[0], used_equality));
    default:
      return f;
  }
}

std::vector<std::string> SortedFreeVars(const FoPtr& f) {
  std::set<std::string> vars = f->FreeVariables();
  return std::vector<std::string>(vars.begin(), vars.end());
}

std::vector<Term> VarTerms(const std::vector<std::string>& vars) {
  std::vector<Term> terms;
  terms.reserve(vars.size());
  for (const std::string& v : vars) terms.push_back(Term::Var(v));
  return terms;
}

}  // namespace

StatusOr<GimpConstruction> GimpConstruction::Build(
    FoPtr phi, Schema tau, RelationDecl t_decl,
    std::vector<RelationDecl> s_decls) {
  GimpConstruction g;
  g.tau_ = tau;
  g.t_name_ = t_decl.name;
  g.tau_prime_ = tau;
  g.tau_prime_.Add(t_decl.name, t_decl.arity);
  for (const RelationDecl& s : s_decls) g.tau_prime_.Add(s.name, s.arity);

  if (!phi->FreeVariables().empty()) {
    return Status::Error("phi must be a sentence");
  }

  // Normalize to {∧, ¬, ∃} and replace equality by Diag__.
  FoPtr normalized = SimplifyDoubleNegation(ToAndNotExists(phi));
  bool used_equality = false;
  normalized = ReplaceEquality(normalized, &used_equality);

  g.full_schema_ = g.tau_prime_;
  if (used_equality) g.full_schema_.Add(kDiagName, 2);

  // Index the subformula DAG (deduplicated by rendering).
  std::map<std::string, int> index;
  std::function<StatusOr<int>(const FoPtr&)> visit =
      [&](const FoPtr& f) -> StatusOr<int> {
    std::string key = f->ToString();
    auto it = index.find(key);
    if (it != index.end()) return it->second;

    using Kind = FoFormula::Kind;
    // Visit children first so this node's index (and thus its fresh symbol
    // names) is assigned after theirs — names stay collision-free.
    switch (f->kind()) {
      case Kind::kNot:
      case Kind::kAnd:
      case Kind::kExists: {
        for (const FoPtr& c : f->children()) {
          StatusOr<int> child = visit(c);
          if (!child.ok()) return child.status();
        }
        break;
      }
      case Kind::kTrue:
      case Kind::kFalse:
        return Status::Error("true/false literals not supported in phi");
      case Kind::kAtom:
        break;
      default:
        return Status::Error("phi must normalize to the {and,not,exists} "
                             "fragment");
    }

    Node node;
    node.formula = f;
    node.vars = SortedFreeVars(f);
    int arity = static_cast<int>(node.vars.size());
    int id = static_cast<int>(g.nodes_.size());
    std::string bar_name = "Xbar" + std::to_string(id);
    std::string aux_name = "Xf" + std::to_string(id);

    switch (f->kind()) {
      case Kind::kAtom: {
        if (!g.tau_prime_.Contains(f->atom().predicate) &&
            f->atom().predicate != kDiagName) {
          return Status::Error("phi mentions unknown relation " +
                               f->atom().predicate);
        }
        node.pos = f->atom();
        node.neg = Atom(bar_name, VarTerms(node.vars));
        g.full_schema_.Add(bar_name, arity);
        break;
      }
      case Kind::kNot: {
        const Node& c = g.nodes_[index.at(f->children()[0]->ToString())];
        node.pos = c.neg;
        node.neg = c.pos;
        break;
      }
      case Kind::kAnd:
      case Kind::kExists: {
        node.pos = Atom(aux_name, VarTerms(node.vars));
        node.neg = Atom(bar_name, VarTerms(node.vars));
        node.has_own_symbol = true;
        g.full_schema_.Add(aux_name, arity);
        g.full_schema_.Add(bar_name, arity);
        break;
      }
      default:
        break;
    }
    g.nodes_.push_back(std::move(node));
    index.emplace(key, id);
    return id;
  };
  StatusOr<int> root_or = visit(normalized);
  if (!root_or.ok()) return root_or.status();
  int root = root_or.value();
  g.phi_ = phi;

  // --- Views ---
  // V_τ: the base relations are exposed verbatim.
  for (const RelationDecl& d : tau.decls()) {
    std::vector<Term> head;
    for (int i = 0; i < d.arity; ++i) {
      head.push_back(Term::Var("t" + std::to_string(i)));
    }
    ConjunctiveQuery v("Vtau_" + d.name, head);
    v.AddAtom(Atom(d.name, head));
    g.views_.Add("Vtau_" + d.name, Query::FromCq(v));
  }
  // The diagonal relation is exposed (it carries no information beyond the
  // active domain).
  if (used_equality) {
    ConjunctiveQuery v("Vdiag", {Term::Var("x"), Term::Var("y")});
    v.AddAtom(Atom(kDiagName, {Term::Var("x"), Term::Var("y")}));
    g.views_.Add("Vdiag", Query::FromCq(v));
  }

  for (std::size_t i = 0; i < g.nodes_.size(); ++i) {
    const Node& node = g.nodes_[i];
    if (node.formula->kind() == FoFormula::Kind::kNot) continue;
    std::vector<Term> head = VarTerms(node.vars);
    std::string id = std::to_string(i);

    // Complement pair: pos ∧ neg = ∅ and pos ∨ neg = adom^k.
    {
      ConjunctiveQuery inter("Vint" + id, head);
      inter.AddAtom(node.pos);
      inter.AddAtom(node.neg);
      g.views_.Add("Vint" + id, Query::FromCq(inter));

      UnionQuery uni;
      ConjunctiveQuery d1("Vuni" + id, head);
      d1.AddAtom(node.pos);
      uni.AddDisjunct(std::move(d1));
      ConjunctiveQuery d2("Vuni" + id, head);
      d2.AddAtom(node.neg);
      uni.AddDisjunct(std::move(d2));
      g.views_.Add("Vuni" + id, Query::FromUcq(uni));
    }

    if (node.formula->kind() == FoFormula::Kind::kAnd) {
      // ⋀ pos(children) ∧ neg(θ) = ∅.
      ConjunctiveQuery v0("Vand" + id, head);
      for (const FoPtr& c : node.formula->children()) {
        bool dummy = false;
        (void)dummy;
        const Node& cn = g.nodes_[index.at(c->ToString())];
        v0.AddAtom(cn.pos);
      }
      v0.AddAtom(node.neg);
      g.views_.Add("Vand" + id, Query::FromCq(v0));
      // R_θ ∧ neg(child_j) = ∅ for each child.
      int j = 0;
      for (const FoPtr& c : node.formula->children()) {
        const Node& cn = g.nodes_[index.at(c->ToString())];
        ConjunctiveQuery vj("Vand" + id + "_" + std::to_string(j), head);
        vj.AddAtom(node.pos);
        vj.AddAtom(cn.neg);
        g.views_.Add("Vand" + id + "_" + std::to_string(j),
                     Query::FromCq(vj));
        ++j;
      }
    } else if (node.formula->kind() == FoFormula::Kind::kExists) {
      const Node& cn =
          g.nodes_[index.at(node.formula->children()[0]->ToString())];
      // pos(child) ∧ neg(θ) = ∅  (the quantified variable projects out).
      ConjunctiveQuery v1("Vex" + id, head);
      v1.AddAtom(cn.pos);
      v1.AddAtom(node.neg);
      g.views_.Add("Vex" + id, Query::FromCq(v1));
      // (∃v pos(child)) ∨ neg(θ) = adom^k.
      UnionQuery v2;
      ConjunctiveQuery d1("Vexu" + id, head);
      d1.AddAtom(cn.pos);
      v2.AddDisjunct(std::move(d1));
      ConjunctiveQuery d2("Vexu" + id, head);
      d2.AddAtom(node.neg);
      v2.AddDisjunct(std::move(d2));
      g.views_.Add("Vexu" + id, Query::FromUcq(v2));
    }
  }
  // V_φ: the root truth value.
  {
    const Node& root_node = g.nodes_[root];
    VQDR_CHECK(root_node.vars.empty());
    ConjunctiveQuery v("Vphi", {});
    v.AddAtom(root_node.pos);
    g.views_.Add("Vphi", Query::FromCq(v));
  }

  // --- ψ: every auxiliary relation has its intended content ---
  std::vector<FoPtr> clauses;
  if (used_equality) {
    clauses.push_back(FoFormula::Forall(
        {"x", "y"},
        FoFormula::Iff(
            FoFormula::MakeAtom(
                Atom(kDiagName, {Term::Var("x"), Term::Var("y")})),
            FoFormula::Eq(Term::Var("x"), Term::Var("y")))));
  }
  for (std::size_t i = 0; i < g.nodes_.size(); ++i) {
    const Node& node = g.nodes_[i];
    using Kind = FoFormula::Kind;
    if (node.formula->kind() == Kind::kNot) continue;
    // Bar clause: Bar_θ(x̄) ↔ ¬pos(θ)(x̄).
    clauses.push_back(FoFormula::Forall(
        node.vars,
        FoFormula::Iff(FoFormula::MakeAtom(node.neg),
                       FoFormula::Not(FoFormula::MakeAtom(node.pos)))));
    if (!node.has_own_symbol) continue;
    // Structural clause for R_θ.
    FoPtr structural;
    if (node.formula->kind() == Kind::kAnd) {
      std::vector<FoPtr> parts;
      for (const FoPtr& c : node.formula->children()) {
        parts.push_back(FoFormula::MakeAtom(
            g.nodes_[index.at(c->ToString())].pos));
      }
      structural = FoFormula::And(std::move(parts));
    } else {
      const Node& cn =
          g.nodes_[index.at(node.formula->children()[0]->ToString())];
      structural = FoFormula::Exists(node.formula->quantified_vars(),
                                     FoFormula::MakeAtom(cn.pos));
    }
    clauses.push_back(FoFormula::Forall(
        node.vars,
        FoFormula::Iff(FoFormula::MakeAtom(node.pos), structural)));
  }
  g.psi_ = FoFormula::And(std::move(clauses));

  // --- Q = ψ ∧ φ ∧ T(x̄) ---
  FoQuery q;
  q.head_name = "Q";
  std::vector<Term> t_args;
  for (int i = 0; i < t_decl.arity; ++i) {
    q.free_vars.push_back("h" + std::to_string(i + 1));
    t_args.push_back(Term::Var(q.free_vars.back()));
  }
  q.formula = FoFormula::And(
      {g.psi_, phi, FoFormula::MakeAtom(Atom(t_decl.name, t_args))});
  g.query_ = Query::FromFo(std::move(q));
  return g;
}

Instance GimpConstruction::CompleteInstance(
    const Instance& d_tau_prime) const {
  Instance result(full_schema_);
  for (const RelationDecl& d : d_tau_prime.schema().decls()) {
    result.Set(d.name, d_tau_prime.Get(d.name));
  }
  // Universe: active domain plus φ's constants.
  std::set<Value> universe = d_tau_prime.ActiveDomain();
  for (Value c : phi_->Constants()) universe.insert(c);

  // Diagonal first (node formulas may reference it).
  if (full_schema_.Contains(kDiagName)) {
    Relation diag(2);
    for (Value v : universe) diag.Insert(Tuple{v, v});
    result.Set(kDiagName, diag);
  }

  for (const Node& node : nodes_) {
    if (node.formula->kind() == FoFormula::Kind::kNot) continue;
    FoQuery content_query;
    content_query.free_vars = node.vars;
    content_query.formula = node.formula;
    Relation content = EvaluateFo(content_query, result);
    if (node.has_own_symbol) {
      result.Set(node.pos.predicate, content);
    }
    // Bar = universe^k − content.
    Relation bar(static_cast<int>(node.vars.size()));
    for (const Tuple& t : AllTuplesOver(universe, bar.arity())) {
      if (!content.Contains(t)) bar.Insert(t);
    }
    result.Set(node.neg.predicate, bar);
  }
  return result;
}

bool ParityGimp::Even(const Instance& d_tau) {
  return d_tau.Get("U").size() % 2 == 0;
}

StatusOr<ParityGimp> BuildParityGimp() {
  NamePool pool;
  const char* phi_text =
      "(forall x, y . (Ord(x, y) -> U(x) & U(y))) "
      "& (forall x . !Ord(x, x)) "
      "& (forall x, y, z . (Ord(x, y) & Ord(y, z) -> Ord(x, z))) "
      "& (forall x, y . (U(x) & U(y) & !(x = y) -> Ord(x, y) | Ord(y, x))) "
      "& (forall x . (Alt(x) -> U(x))) "
      "& (forall x . (U(x) & !(exists y . Ord(y, x)) -> Alt(x))) "
      "& (forall x, y . (Ord(x, y) & !(exists z . (Ord(x, z) & Ord(z, y))) "
      "-> (Alt(y) <-> !Alt(x)))) "
      "& (T() <-> (!(exists x . U(x)) "
      "| (exists x . (U(x) & !(exists y . Ord(x, y)) & !Alt(x)))))";
  StatusOr<FoPtr> phi = ParseFo(phi_text, pool);
  if (!phi.ok()) return phi.status();

  StatusOr<GimpConstruction> construction = GimpConstruction::Build(
      phi.value(), Schema{{"U", 1}}, RelationDecl{"T", 0},
      {RelationDecl{"Ord", 2}, RelationDecl{"Alt", 1}});
  if (!construction.ok()) return construction.status();
  ParityGimp result;
  result.construction = std::move(construction).value();
  return result;
}

}  // namespace vqdr
