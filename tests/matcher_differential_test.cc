// Differential battery: the indexed homomorphism engine vs the legacy
// oracle (DESIGN.md §12). The contract under test is strict: both engines
// must deliver the SAME homomorphisms in the SAME order — not merely agree
// on match/no-match — because witnesses, first-found enumeration prefixes,
// and every downstream verdict are byte-derived from that sequence.
//
// This binary is only registered when the oracle is compiled in
// (-DVQDR_MATCHER_LEGACY=ON); it pins engines per call through
// MatcherOptions, so it is independent of the process-default engine.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "cq/canonical.h"
#include "cq/containment.h"
#include "cq/explain_bridge.h"
#include "cq/matcher.h"
#include "data/instance.h"
#include "gen/random_instance.h"
#include "gen/random_query.h"
#include "gen/workloads.h"
#include "obs/explain.h"

namespace vqdr {
namespace {

MatcherOptions Engine(MatcherEngine engine) {
  MatcherOptions options;
  options.engine = engine;
  return options;
}

Term V(const std::string& name) { return Term::Var(name); }
Term C(std::int64_t id) { return Term::Const(Value(id)); }

ConjunctiveQuery MakeCq(std::vector<Term> head, std::vector<Atom> atoms) {
  ConjunctiveQuery q("Q", std::move(head));
  for (Atom& a : atoms) q.AddAtom(std::move(a));
  return q;
}

ConjunctiveQuery Normalize(const ConjunctiveQuery& q) {
  bool satisfiable = true;
  ConjunctiveQuery normalized = q.PropagateEqualities(&satisfiable);
  EXPECT_TRUE(satisfiable);
  return normalized;
}

// Full enumeration through one engine: the exact on_match sequence.
std::vector<Binding> Enumerate(const std::vector<Atom>& atoms,
                               const Instance& db, const Binding& initial,
                               MatcherEngine engine) {
  std::vector<Binding> out;
  bool completed = ForEachMatch(
      atoms, db, initial,
      [&](const Binding& b) {
        out.push_back(b);
        return true;
      },
      nullptr, Engine(engine));
  EXPECT_TRUE(completed);
  return out;
}

std::optional<Binding> FirstMatch(const std::vector<Atom>& atoms,
                                  const Instance& db, const Binding& initial,
                                  MatcherEngine engine) {
  std::optional<Binding> out;
  ForEachMatch(
      atoms, db, initial,
      [&](const Binding& b) {
        out = b;
        return false;
      },
      nullptr, Engine(engine));
  return out;
}

// Asserts the two engines produce identical enumeration sequences for the
// atoms of `q` over `db`, and identical EvaluateCq answers.
void ExpectEngineAgreement(const ConjunctiveQuery& q, const Instance& db,
                           const std::string& context) {
  ConjunctiveQuery normalized = Normalize(q);
  std::vector<Binding> legacy =
      Enumerate(normalized.atoms(), db, Binding{}, MatcherEngine::kLegacy);
  std::vector<Binding> indexed =
      Enumerate(normalized.atoms(), db, Binding{}, MatcherEngine::kIndexed);
  ASSERT_EQ(legacy.size(), indexed.size()) << context;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    ASSERT_EQ(legacy[i], indexed[i]) << context << " at match #" << i;
  }
  EXPECT_EQ(EvaluateCq(q, db, Engine(MatcherEngine::kLegacy)),
            EvaluateCq(q, db, Engine(MatcherEngine::kIndexed)))
      << context;
}

Schema DiffSchema() { return Schema{{"E", 2}, {"P", 1}, {"T", 3}}; }

// ---------------------------------------------------------------------------
// Seeded random battery: >= 500 (query, instance) pairs across a grid of
// query shapes and instance densities. Full-sequence equality each time.
// ---------------------------------------------------------------------------

TEST(MatcherDifferential, SeededRandomPairsAgree) {
  if (!MatcherLegacyCompiled()) GTEST_SKIP() << "oracle not compiled in";
  int pairs = 0;
  for (std::uint64_t seed = 1; seed <= 520; ++seed) {
    Rng rng(seed * 7919);
    RandomCqOptions qopt;
    qopt.schema = DiffSchema();
    qopt.min_atoms = 1;
    qopt.max_atoms = 2 + static_cast<int>(seed % 4);  // up to 5 atoms
    qopt.variable_pool = 2 + static_cast<int>(seed % 5);
    qopt.head_arity = static_cast<int>(seed % 3);  // includes boolean CQs
    ConjunctiveQuery q = RandomCq(rng, qopt);

    RandomInstanceOptions iopt;
    iopt.domain_size = 3 + static_cast<int>(seed % 7);
    iopt.tuples_per_relation = 4 + static_cast<int>(seed % 24);
    Instance db = RandomInstance(qopt.schema, rng, iopt);

    ExpectEngineAgreement(q, db, "seed " + std::to_string(seed));
    ++pairs;
  }
  EXPECT_GE(pairs, 500);
}

TEST(MatcherDifferential, FirstFoundHomomorphismOrderPreserved) {
  if (!MatcherLegacyCompiled()) GTEST_SKIP() << "oracle not compiled in";
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed * 104729);
    RandomCqOptions qopt;
    qopt.schema = DiffSchema();
    qopt.max_atoms = 4;
    qopt.variable_pool = 5;
    ConjunctiveQuery q = RandomCq(rng, qopt);
    RandomInstanceOptions iopt;
    iopt.domain_size = 6;
    iopt.tuples_per_relation = 18;
    Instance db = RandomInstance(qopt.schema, rng, iopt);

    ConjunctiveQuery normalized = Normalize(q);
    std::optional<Binding> legacy = FirstMatch(normalized.atoms(), db,
                                               Binding{},
                                               MatcherEngine::kLegacy);
    std::optional<Binding> indexed = FirstMatch(normalized.atoms(), db,
                                                Binding{},
                                                MatcherEngine::kIndexed);
    ASSERT_EQ(legacy.has_value(), indexed.has_value()) << "seed " << seed;
    if (legacy.has_value()) {
      EXPECT_EQ(*legacy, *indexed) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Adversarial shapes.
// ---------------------------------------------------------------------------

TEST(MatcherDifferential, SelfJoinsAndRepeatedVariables) {
  if (!MatcherLegacyCompiled()) GTEST_SKIP() << "oracle not compiled in";
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed);
    Schema schema{{"E", 2}};
    RandomInstanceOptions iopt;
    iopt.domain_size = 5;
    iopt.tuples_per_relation = 12;
    Instance db = RandomInstance(schema, rng, iopt);

    // Diagonal self-join, 2-cycle, duplicated atom, and a mix.
    ConjunctiveQuery diag = MakeCq({V("x")}, {{"E", {V("x"), V("x")}}});
    ConjunctiveQuery cyc = MakeCq({V("x"), V("y")},
                                  {{"E", {V("x"), V("y")}},
                                   {"E", {V("y"), V("x")}}});
    ConjunctiveQuery dup = MakeCq({V("x"), V("y")},
                                  {{"E", {V("x"), V("y")}},
                                   {"E", {V("x"), V("y")}}});
    ConjunctiveQuery mix = MakeCq({V("x"), V("y")},
                                  {{"E", {V("x"), V("x")}},
                                   {"E", {V("x"), V("y")}}});
    for (const ConjunctiveQuery& q : {diag, cyc, dup, mix}) {
      ExpectEngineAgreement(q, db,
                            q.ToString() + " seed " + std::to_string(seed));
    }
  }
}

TEST(MatcherDifferential, ConstantsInAtoms) {
  if (!MatcherLegacyCompiled()) GTEST_SKIP() << "oracle not compiled in";
  Schema schema{{"E", 2}, {"P", 1}};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 31);
    RandomInstanceOptions iopt;
    iopt.domain_size = 4;  // small domain so the constants actually hit
    iopt.tuples_per_relation = 10;
    Instance db = RandomInstance(schema, rng, iopt);
    ConjunctiveQuery from1 = MakeCq({V("x")}, {{"E", {C(1), V("x")}}});
    ConjunctiveQuery to2 = MakeCq({V("x")}, {{"E", {V("x"), C(2)}},
                                             {"P", {V("x")}}});
    ConjunctiveQuery ground = MakeCq({}, {{"E", {C(1), C(2)}}});
    ConjunctiveQuery loop3 = MakeCq({V("x")}, {{"E", {V("x"), V("x")}},
                                               {"E", {V("x"), C(3)}}});
    // A constant outside the instance domain: zero matches both ways.
    ConjunctiveQuery absent = MakeCq({V("x")}, {{"E", {C(99), V("x")}}});
    for (const ConjunctiveQuery& q : {from1, to2, ground, loop3, absent}) {
      ExpectEngineAgreement(q, db,
                            q.ToString() + " seed " + std::to_string(seed));
    }
  }
}

TEST(MatcherDifferential, BooleanAndDisconnectedBodies) {
  if (!MatcherLegacyCompiled()) GTEST_SKIP() << "oracle not compiled in";
  Schema schema{{"E", 2}, {"P", 1}};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 131);
    RandomInstanceOptions iopt;
    iopt.domain_size = 5;
    iopt.tuples_per_relation = 8;
    Instance db = RandomInstance(schema, rng, iopt);
    ConjunctiveQuery bool_edge = MakeCq({}, {{"E", {V("x"), V("y")}}});
    ConjunctiveQuery bool_disc = MakeCq({}, {{"E", {V("x"), V("y")}},
                                             {"P", {V("z")}}});
    ConjunctiveQuery cross = MakeCq({V("x"), V("z")},
                                    {{"E", {V("x"), V("y")}},
                                     {"P", {V("z")}}});  // cross product
    ConjunctiveQuery three = MakeCq({}, {{"E", {V("x"), V("y")}},
                                         {"E", {V("u"), V("v")}},
                                         {"P", {V("w")}}});
    for (const ConjunctiveQuery& q : {bool_edge, bool_disc, cross, three}) {
      ExpectEngineAgreement(q, db,
                            q.ToString() + " seed " + std::to_string(seed));
    }
  }
}

TEST(MatcherDifferential, DegenerateInputs) {
  if (!MatcherLegacyCompiled()) GTEST_SKIP() << "oracle not compiled in";
  Schema schema{{"E", 2}};
  Instance empty_db(schema);
  Instance db(schema);
  db.AddFact("E", {Value(1), Value(2)});

  // Empty atom list: exactly one match, the initial binding, both engines.
  for (MatcherEngine e : {MatcherEngine::kLegacy, MatcherEngine::kIndexed}) {
    std::vector<Binding> ms = Enumerate({}, db, Binding{}, e);
    ASSERT_EQ(ms.size(), 1u);
    EXPECT_TRUE(ms[0].empty());
  }

  std::vector<Atom> edge{{"E", {V("x"), V("y")}}};

  // Atom over an empty relation: no matches, enumeration completes.
  EXPECT_TRUE(
      Enumerate(edge, empty_db, Binding{}, MatcherEngine::kLegacy).empty());
  EXPECT_TRUE(
      Enumerate(edge, empty_db, Binding{}, MatcherEngine::kIndexed).empty());

  // Predicate missing from the schema entirely: treated as empty relation.
  Instance narrow{Schema{{"P", 1}}};
  EXPECT_TRUE(
      Enumerate(edge, narrow, Binding{}, MatcherEngine::kLegacy).empty());
  EXPECT_TRUE(
      Enumerate(edge, narrow, Binding{}, MatcherEngine::kIndexed).empty());

  // Pre-bound initial binding, satisfiable and not.
  Binding hit{{"x", Value(1)}};
  Binding miss{{"x", Value(7)}};
  EXPECT_EQ(Enumerate(edge, db, hit, MatcherEngine::kLegacy),
            Enumerate(edge, db, hit, MatcherEngine::kIndexed));
  EXPECT_EQ(Enumerate(edge, db, miss, MatcherEngine::kLegacy),
            Enumerate(edge, db, miss, MatcherEngine::kIndexed));
}

// ---------------------------------------------------------------------------
// Every pruning rule is individually order-preserving: any combination of
// forward checking / backjumping / symmetry breaking yields the legacy
// sequence.
// ---------------------------------------------------------------------------

TEST(MatcherDifferential, PruningTogglesPreserveSequence) {
  if (!MatcherLegacyCompiled()) GTEST_SKIP() << "oracle not compiled in";
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 271);
    RandomCqOptions qopt;
    qopt.schema = DiffSchema();
    qopt.max_atoms = 5;
    qopt.variable_pool = 4;
    ConjunctiveQuery q = Normalize(RandomCq(rng, qopt));
    RandomInstanceOptions iopt;
    iopt.domain_size = 5;
    iopt.tuples_per_relation = 14;
    Instance db = RandomInstance(qopt.schema, rng, iopt);

    std::vector<Binding> oracle =
        Enumerate(q.atoms(), db, Binding{}, MatcherEngine::kLegacy);
    for (int mask = 0; mask < 8; ++mask) {
      MatcherOptions options;
      options.engine = MatcherEngine::kIndexed;
      options.forward_checking = (mask & 1) != 0;
      options.conflict_backjumping = (mask & 2) != 0;
      options.symmetry_breaking = (mask & 4) != 0;
      std::vector<Binding> got;
      ForEachMatch(
          q.atoms(), db, Binding{},
          [&](const Binding& b) {
            got.push_back(b);
            return true;
          },
          nullptr, options);
      ASSERT_EQ(oracle, got) << "seed " << seed << " mask " << mask;
    }
  }
}

// ---------------------------------------------------------------------------
// Witness extraction: verdicts equal, witnesses byte-identical, and the
// extracted witness replays through the engine-independent explain bridge.
// ---------------------------------------------------------------------------

TEST(MatcherDifferential, WitnessesIdenticalAndReplayable) {
  if (!MatcherLegacyCompiled()) GTEST_SKIP() << "oracle not compiled in";
  int verified = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    Rng rng(seed * 613);
    RandomCqOptions qopt;
    qopt.schema = DiffSchema();
    qopt.max_atoms = 3;
    qopt.variable_pool = 4;
    qopt.head_arity = 1;
    ConjunctiveQuery q = RandomCq(rng, qopt);
    RandomInstanceOptions iopt;
    iopt.domain_size = 5;
    iopt.tuples_per_relation = 10;
    Instance db = RandomInstance(qopt.schema, rng, iopt);

    Relation answers = EvaluateCq(q, db);
    for (const Tuple& t : answers.tuples()) {
      Binding legacy_witness;
      Binding indexed_witness;
      bool legacy_found = CqAnswerContains(q, db, t, nullptr, &legacy_witness,
                                           Engine(MatcherEngine::kLegacy));
      bool indexed_found = CqAnswerContains(q, db, t, nullptr,
                                            &indexed_witness,
                                            Engine(MatcherEngine::kIndexed));
      ASSERT_TRUE(legacy_found) << "seed " << seed;
      ASSERT_TRUE(indexed_found) << "seed " << seed;
      ASSERT_EQ(legacy_witness, indexed_witness) << "seed " << seed;

      obs::ExplainWitness witness =
          MakeContainmentWitness(q, db, t, indexed_witness);
      std::string error;
      EXPECT_TRUE(witness.Verify(&error)) << "seed " << seed << ": " << error;
      ++verified;
    }
    // Negative side: a tuple outside the answer must be rejected by both.
    Tuple absent{Value(997)};
    EXPECT_EQ(CqAnswerContains(q, db, absent, nullptr, nullptr,
                               Engine(MatcherEngine::kLegacy)),
              CqAnswerContains(q, db, absent, nullptr, nullptr,
                               Engine(MatcherEngine::kIndexed)));
  }
  EXPECT_GT(verified, 50);
}

// ---------------------------------------------------------------------------
// Instance-level homomorphism search and containment end to end, including
// the threaded sweep at 2 and 8 workers (the PAR label runs this under
// tsan).
// ---------------------------------------------------------------------------

TEST(MatcherDifferential, InstanceHomomorphismAgrees) {
  if (!MatcherLegacyCompiled()) GTEST_SKIP() << "oracle not compiled in";
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed * 37);
    Schema schema{{"E", 2}};
    RandomInstanceOptions small;
    small.domain_size = 4;
    small.tuples_per_relation = 5;
    RandomInstanceOptions big;
    big.domain_size = 6;
    big.tuples_per_relation = 16;
    Instance from = RandomInstance(schema, rng, small);
    Instance to = RandomInstance(schema, rng, big);

    auto legacy = FindInstanceHomomorphism(from, to, {}, {},
                                           Engine(MatcherEngine::kLegacy));
    auto indexed = FindInstanceHomomorphism(from, to, {}, {},
                                            Engine(MatcherEngine::kIndexed));
    ASSERT_EQ(legacy.has_value(), indexed.has_value()) << "seed " << seed;
    if (legacy.has_value()) {
      EXPECT_EQ(*legacy, *indexed) << "seed " << seed;
    }
  }
}

TEST(MatcherDifferential, ContainmentVerdictsAgreeAcrossThreads) {
  if (!MatcherLegacyCompiled()) GTEST_SKIP() << "oracle not compiled in";
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 911);
    RandomCqOptions qopt;
    qopt.schema = Schema{{"E", 2}, {"P", 1}};
    qopt.max_atoms = 3;
    qopt.variable_pool = 3;
    ConjunctiveQuery q1 = RandomCq(rng, qopt);
    ConjunctiveQuery q2 = RandomCq(rng, qopt);

    CqContainmentOptions legacy;
    legacy.matcher = Engine(MatcherEngine::kLegacy);
    bool oracle = CqContainedIn(q1, q2, legacy);
    for (int threads : {1, 2, 8}) {
      CqContainmentOptions indexed;
      indexed.matcher = Engine(MatcherEngine::kIndexed);
      indexed.threads = threads;
      EXPECT_EQ(oracle, CqContainedIn(q1, q2, indexed))
          << "seed " << seed << " threads " << threads;
    }
  }
}

// Chain/cycle workloads from the bench suite — the hom-dominated shapes the
// speedup claim is measured on must agree too, not just random soup.
TEST(MatcherDifferential, WorkloadShapesAgree) {
  if (!MatcherLegacyCompiled()) GTEST_SKIP() << "oracle not compiled in";
  // Chain length is capped at 8: legacy full enumeration over the random
  // graph grows fast with n, and this binary also runs under tsan.
  for (int n : {2, 4, 6, 8}) {
    Instance db = RandomGraph(10, 30, /*seed=*/static_cast<std::uint64_t>(n));
    ExpectEngineAgreement(ChainQuery(n), db, "chain " + std::to_string(n));
    ExpectEngineAgreement(CycleQuery(std::max(2, n / 2)), db,
                          "cycle " + std::to_string(n));
    ExpectEngineAgreement(StarQuery(std::max(2, n / 3)), db,
                          "star " + std::to_string(n));
  }
}

}  // namespace
}  // namespace vqdr
