#include "memo/store.h"

#include <atomic>
#include <cstdlib>
#include <functional>
#include <sstream>

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/obs_macros.h"

namespace vqdr::memo {

namespace {

constexpr std::size_t kDefaultCapacity = 8192;

std::size_t CapacityFromEnv() {
  const char* raw = std::getenv("VQDR_MEMO_CAPACITY");
  if (raw == nullptr || *raw == '\0') return kDefaultCapacity;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed == 0) return kDefaultCapacity;
  return static_cast<std::size_t>(parsed);
}

bool EnabledFromEnv() {
  const char* raw = std::getenv("VQDR_MEMO");
  if (raw == nullptr) return false;
  std::string v(raw);
  return !v.empty() && v != "0" && v != "off" && v != "OFF" && v != "false" &&
         v != "FALSE";
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnabledFromEnv()};
  return flag;
}

}  // namespace

Store::Store(std::size_t capacity, std::size_t shards)
    : capacity_(capacity == 0 ? 1 : capacity),
      shard_count_(shards == 0 ? 1 : shards) {
  if (shard_count_ > capacity_) shard_count_ = capacity_;
  per_shard_capacity_ = capacity_ / shard_count_;
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  shards_ = std::make_unique<Shard[]>(shard_count_);
}

Store::Shard& Store::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shard_count_];
}

std::shared_ptr<const void> Store::GetErased(const std::string& key,
                                             const std::type_info& type) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || *it->second.type != type) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    VQDR_COUNTER_INC("memo.misses");
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  hits_.fetch_add(1, std::memory_order_relaxed);
  VQDR_COUNTER_INC("memo.hits");
  return it->second.value;
}

void Store::PutErased(const std::string& key,
                      std::shared_ptr<const void> value,
                      const std::type_info& type) {
  VQDR_CHECK(value != nullptr) << "memo::Store::Put: null value";
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.find(key) != shard.map.end()) {
    // First install wins; the keying discipline guarantees any concurrent
    // computation of the same key produced an equivalent value.
    return;
  }
  while (shard.map.size() >= per_shard_capacity_) {
    const std::string& victim = shard.lru.back();
    shard.map.erase(victim);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    VQDR_COUNTER_INC("memo.evictions");
  }
  shard.lru.push_front(key);
  Entry entry;
  entry.value = std::move(value);
  entry.type = &type;
  entry.lru_it = shard.lru.begin();
  shard.map.emplace(key, std::move(entry));
  installs_.fetch_add(1, std::memory_order_relaxed);
  VQDR_COUNTER_INC("memo.installs");
}

StatsSnapshot Store::Stats() const {
  StatsSnapshot s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.installs = installs_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = size();
  s.capacity = capacity_;
  return s;
}

void Store::Clear() {
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].map.clear();
    shards_[i].lru.clear();
  }
}

std::size_t Store::size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].map.size();
  }
  return total;
}

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}

bool ResolveUse(const MemoOptions& options) {
  switch (options.use) {
    case Use::kOn:
      return true;
    case Use::kOff:
      return false;
    case Use::kDefault:
      return Enabled();
  }
  return false;
}

Store& GlobalStore() {
  static Store* store = new Store(CapacityFromEnv());
  return *store;
}

Store& ResolveStore(const MemoOptions& options) {
  return options.store != nullptr ? *options.store : GlobalStore();
}

StatsSnapshot GlobalStats() { return GlobalStore().Stats(); }

}  // namespace vqdr::memo
