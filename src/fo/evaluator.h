#ifndef VQDR_FO_EVALUATOR_H_
#define VQDR_FO_EVALUATOR_H_

#include <map>
#include <string>

#include "data/instance.h"
#include "fo/formula.h"

namespace vqdr {

/// Active-domain FO semantics: quantifiers range over adom(D) together with
/// the constants mentioned in the formula. This is the standard finite-model
/// evaluation for generic queries (Abiteboul–Hull–Vianu, ch. 5); all of the
/// paper's FO constructions are domain-independent over this range.

/// Truth of `formula` in `db` under `binding` (must cover the free
/// variables).
bool EvalFo(const FoPtr& formula, const Instance& db,
            const std::map<std::string, Value>& binding);

/// Truth of a sentence (no free variables).
bool FoSentenceHolds(const FoPtr& sentence, const Instance& db);

/// Q(D): enumerates assignments of the query's free variables over
/// adom(D) ∪ constants(Q) and collects satisfying tuples.
Relation EvaluateFo(const FoQuery& q, const Instance& db);

}  // namespace vqdr

#endif  // VQDR_FO_EVALUATOR_H_
