#include "guard/outcome.h"

namespace vqdr::guard {

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kComplete:
      return "COMPLETE";
    case Outcome::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case Outcome::kStepBudgetExhausted:
      return "STEP_BUDGET_EXHAUSTED";
    case Outcome::kMemoryBudgetExhausted:
      return "MEMORY_BUDGET_EXHAUSTED";
    case Outcome::kCancelled:
      return "CANCELLED";
    case Outcome::kInternalError:
      return "INTERNAL_ERROR";
  }
  return "INTERNAL_ERROR";
}

Outcome MergeOutcome(Outcome a, Outcome b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

Status OutcomeToStatus(Outcome o, const std::string& context) {
  switch (o) {
    case Outcome::kComplete:
      return Status::Ok();
    case Outcome::kDeadlineExceeded:
    case Outcome::kStepBudgetExhausted:
    case Outcome::kMemoryBudgetExhausted:
      return Status::ResourceExhausted(context + ": " + OutcomeName(o));
    case Outcome::kCancelled:
      return Status::Cancelled(context + ": cancelled");
    case Outcome::kInternalError:
      return Status::Internal(context + ": internal error");
  }
  return Status::Internal(context + ": internal error");
}

}  // namespace vqdr::guard
