#ifndef VQDR_CQ_MATCHER_IMPL_H_
#define VQDR_CQ_MATCHER_IMPL_H_

// Internal seam between the ForEachMatch dispatcher (matcher.cc) and the two
// homomorphism-search engines (matcher_indexed.cc, matcher_legacy.cc). Not
// part of the public API; tests include it only to reach the stats struct.

#include <cstdint>
#include <functional>
#include <vector>

#include "cq/matcher.h"

namespace vqdr::matcher_internal {

// Stack-local tally for one ForEachMatch call, flushed to the obs counters
// once at the end — keeps atomic traffic out of the recursion entirely.
struct MatchStats {
  // Candidate tuples actually tried against an atom (legacy: every tuple of
  // the selected relation at every node; indexed: the index-intersected
  // candidate set only).
  std::uint64_t attempts = 0;
  // Full homomorphisms delivered to on_match.
  std::uint64_t matches = 0;
  // Per-(relation, position) posting-list index constructions.
  std::uint64_t index_builds = 0;
  // Posting-list probes during candidate-set intersection.
  std::uint64_t index_lookups = 0;
  // Total candidates surviving index intersection across all nodes.
  std::uint64_t index_candidates = 0;
  // Candidates discarded because some future atom's domain wiped out.
  std::uint64_t fc_prunes = 0;
  // Candidate loops cut short by conflict-directed backjumping.
  std::uint64_t bj_jumps = 0;
  // Candidates skipped as symmetric images of an already-failed candidate.
  std::uint64_t sym_skips = 0;
};

// The indexed-join engine (DESIGN.md §12). Enumerates exactly the
// homomorphisms the legacy engine enumerates, in exactly the same order;
// returns false iff stopped early (on_match veto or budget stop).
bool IndexedMatch(const std::vector<Atom>& atoms, const Instance& db,
                  const Binding& initial,
                  const std::function<bool(const Binding&)>& on_match,
                  MatchStats& stats, guard::Budget* budget,
                  const MatcherOptions& options);

#ifdef VQDR_MATCHER_LEGACY
// The pre-rewrite naive backtracking engine, compiled only under
// -DVQDR_MATCHER_LEGACY=ON as the differential-testing oracle.
bool LegacyMatch(const std::vector<Atom>& atoms, const Instance& db,
                 const Binding& initial,
                 const std::function<bool(const Binding&)>& on_match,
                 MatchStats& stats, guard::Budget* budget);
#endif

}  // namespace vqdr::matcher_internal

#endif  // VQDR_CQ_MATCHER_IMPL_H_
