# Empty compiler generated dependencies file for vqdr_datalog.
# This may be replaced when dependencies are built.
