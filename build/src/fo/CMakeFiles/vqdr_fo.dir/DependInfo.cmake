
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fo/evaluator.cc" "src/fo/CMakeFiles/vqdr_fo.dir/evaluator.cc.o" "gcc" "src/fo/CMakeFiles/vqdr_fo.dir/evaluator.cc.o.d"
  "/root/repo/src/fo/formula.cc" "src/fo/CMakeFiles/vqdr_fo.dir/formula.cc.o" "gcc" "src/fo/CMakeFiles/vqdr_fo.dir/formula.cc.o.d"
  "/root/repo/src/fo/from_cq.cc" "src/fo/CMakeFiles/vqdr_fo.dir/from_cq.cc.o" "gcc" "src/fo/CMakeFiles/vqdr_fo.dir/from_cq.cc.o.d"
  "/root/repo/src/fo/library.cc" "src/fo/CMakeFiles/vqdr_fo.dir/library.cc.o" "gcc" "src/fo/CMakeFiles/vqdr_fo.dir/library.cc.o.d"
  "/root/repo/src/fo/normalize.cc" "src/fo/CMakeFiles/vqdr_fo.dir/normalize.cc.o" "gcc" "src/fo/CMakeFiles/vqdr_fo.dir/normalize.cc.o.d"
  "/root/repo/src/fo/order_invariance.cc" "src/fo/CMakeFiles/vqdr_fo.dir/order_invariance.cc.o" "gcc" "src/fo/CMakeFiles/vqdr_fo.dir/order_invariance.cc.o.d"
  "/root/repo/src/fo/parser.cc" "src/fo/CMakeFiles/vqdr_fo.dir/parser.cc.o" "gcc" "src/fo/CMakeFiles/vqdr_fo.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cq/CMakeFiles/vqdr_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vqdr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/vqdr_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
