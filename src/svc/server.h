#ifndef VQDR_SVC_SERVER_H_
#define VQDR_SVC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "svc/service.h"

// The vqdr-serve transport: a Unix-domain stream socket speaking the
// line-delimited protocol of svc/proto.h. Each accepted connection gets its
// own thread running a read-dispatch-write loop with per-connection
// robustness:
//
//  * idle/read timeout — a connection silent for idle_timeout_ms is closed;
//  * frame cap + resync — an overlong line is answered with a structured
//    "frame_too_large" rejection and input is discarded to the next newline,
//    so one hostile frame never wedges or kills the connection;
//  * malformed JSON is answered with "bad_request" and the connection lives
//    on (recovery, not teardown).
//
// Shutdown() is the drain-then-exit path (SIGTERM): stop accepting, flip
// the service to draining (queued ops rejected with "draining", control
// ops still served), wait for in-flight requests to finish, then close the
// remaining connections and join every thread.

namespace vqdr::svc {

struct ServerOptions {
  /// Filesystem path of the listening socket. A stale file is unlinked at
  /// Start() and the path is unlinked again at Shutdown().
  std::string socket_path;

  /// Close a connection after this long with no complete frame. 0 disables.
  std::uint64_t idle_timeout_ms = 30000;

  /// How long Shutdown() waits for in-flight requests before closing
  /// connections anyway.
  std::uint64_t drain_timeout_ms = 10000;

  int backlog = 64;
};

class Server {
 public:
  Server(Service& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Drain-then-exit; idempotent and safe without a prior Start().
  void Shutdown();

  const std::string& socket_path() const { return options_.socket_path; }

  /// Connections accepted since Start() (tests).
  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Service& service_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: wakes the accept poll
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> connections_accepted_{0};

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace vqdr::svc

#endif  // VQDR_SVC_SERVER_H_
