file(REMOVE_RECURSE
  "CMakeFiles/vqdr_so.dir/so_query.cc.o"
  "CMakeFiles/vqdr_so.dir/so_query.cc.o.d"
  "libvqdr_so.a"
  "libvqdr_so.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqdr_so.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
