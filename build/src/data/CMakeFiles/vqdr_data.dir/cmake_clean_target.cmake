file(REMOVE_RECURSE
  "libvqdr_data.a"
)
