file(REMOVE_RECURSE
  "libvqdr_base.a"
)
