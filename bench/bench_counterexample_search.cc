// E-4.sat / E-5.8 / E-5.12: bounded finite-determinacy refutation — the
// direct grouped search versus the Section-4 twin-schema FO encoding, on
// the paper's counterexample families. The shape to observe: both methods
// find the same refutations; the twin encoding pays FO-evaluation overhead
// per enumerated instance, the direct search pays per-group bookkeeping.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "core/finite_search.h"
#include "core/twin_encoding.h"
#include "cq/matcher.h"
#include "cq/parser.h"
#include "reductions/counterexamples.h"

namespace vqdr {
namespace {

void BM_DirectSearchProp58(benchmark::State& state) {
  NamePool pool;
  NonMonotonicityFamily family = Prop58Family(pool);
  EnumerationOptions options;
  options.domain_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = SearchDeterminacyCounterexample(family.views, family.query,
                                                  family.base, options);
    benchmark::DoNotOptimize(result);
    state.counters["instances"] =
        static_cast<double>(result.instances_examined);
  }
}
BENCHMARK(BM_DirectSearchProp58)->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

void BM_DirectSearchProjection(benchmark::State& state) {
  // The refutable projection case: search stops at the first hit.
  NamePool pool;
  Schema base{{"E", 2}};
  ViewSet views;
  views.Add("V", Query::FromCq(ParseCq("V(x) :- E(x, y)", pool).value()));
  Query q = Query::FromCq(ParseCq("Q(x, y) :- E(x, y)", pool).value());
  EnumerationOptions options;
  options.domain_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = SearchDeterminacyCounterexample(views, q, base, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DirectSearchProjection)->DenseRange(2, 3)
    ->Unit(benchmark::kMicrosecond);

void BM_TwinSearchProjection(benchmark::State& state) {
  NamePool pool;
  Schema base{{"E", 2}};
  ViewSet views;
  views.Add("V", Query::FromCq(ParseCq("V(x) :- E(x, y)", pool).value()));
  Query q = Query::FromCq(ParseCq("Q(x, y) :- E(x, y)", pool).value());
  TwinEncoding encoding = BuildTwinEncoding(views, q, base);
  EnumerationOptions options;
  options.domain_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = BoundedTwinSearch(encoding, base, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TwinSearchProjection)->DenseRange(2, 2)
    ->Unit(benchmark::kMillisecond);

void BM_MonotonicitySearchProp512(benchmark::State& state) {
  NamePool pool;
  NonMonotonicityFamily family = Prop512Family(pool);
  EnumerationOptions options;
  options.domain_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = SearchMonotonicityViolation(family.views, family.query,
                                              family.base, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MonotonicitySearchProp512)->DenseRange(2, 2)
    ->Unit(benchmark::kMillisecond);

// --- Engine-differential variant (DESIGN.md §12) ---
//
// The finite search evaluates views and queries on every enumerated
// instance — thousands of small hom searches — and routes through the
// process-default engine, so this variant swaps the default for the
// duration of the run (arg 1: 0 = indexed, 1 = legacy; legacy rows are
// skipped unless -DVQDR_MATCHER_LEGACY=ON). `instances` must be identical
// across engines: the search path is byte-deterministic.

void BM_DirectSearchProp58ByEngine(benchmark::State& state) {
  MatcherEngine engine = MatcherEngine::kIndexed;
  if (state.range(1) != 0) {
    if (!MatcherLegacyCompiled()) {
      state.SkipWithError(
          "legacy oracle not compiled (-DVQDR_MATCHER_LEGACY=ON)");
      return;
    }
    engine = MatcherEngine::kLegacy;
  }
  NamePool pool;
  NonMonotonicityFamily family = Prop58Family(pool);
  EnumerationOptions options;
  options.domain_size = static_cast<int>(state.range(0));
  MatcherEngine previous = SetDefaultMatcherEngine(engine);
  for (auto _ : state) {
    auto result = SearchDeterminacyCounterexample(family.views, family.query,
                                                  family.base, options);
    benchmark::DoNotOptimize(result);
    state.counters["instances"] =
        static_cast<double>(result.instances_examined);
  }
  SetDefaultMatcherEngine(previous);
}
BENCHMARK(BM_DirectSearchProp58ByEngine)
    ->ArgsProduct({{2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("counterexample_search");
