#ifndef VQDR_GEN_RANDOM_QUERY_H_
#define VQDR_GEN_RANDOM_QUERY_H_

#include "base/rng.h"
#include "cq/conjunctive_query.h"
#include "views/view_set.h"

namespace vqdr {

/// Parameters for random conjunctive-query generation (property tests and
/// fuzz-style sweeps).
struct RandomCqOptions {
  /// Body atoms drawn over this schema.
  Schema schema{{"E", 2}, {"P", 1}};

  int min_atoms = 1;
  int max_atoms = 4;

  /// Variables drawn from a pool of this size (reuse creates joins).
  int variable_pool = 4;

  /// Head arity (head variables are picked from the body, keeping the
  /// query safe).
  int head_arity = 1;
};

/// A random safe pure CQ, deterministic in `rng`.
ConjunctiveQuery RandomCq(Rng& rng, const RandomCqOptions& options,
                          const std::string& head_name = "Q");

/// A random CQ view set over `options.schema`: `count` views, each a
/// RandomCq with head arity 1–2.
ViewSet RandomCqViews(Rng& rng, const RandomCqOptions& options, int count);

/// A random CQ over the *output schema* of `views` (a candidate rewriting),
/// safe, with the given head arity.
ConjunctiveQuery RandomRewriting(Rng& rng, const ViewSet& views,
                                 int max_atoms, int head_arity,
                                 const std::string& head_name = "Q");

}  // namespace vqdr

#endif  // VQDR_GEN_RANDOM_QUERY_H_
