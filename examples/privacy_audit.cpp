// Privacy auditing (the paper's third motivating scenario, "in reverse"):
// access to a database is provided through public views; secret queries
// must NOT be determined by them. The auditor checks each secret and, when
// information leaks, produces the rewriting an adversary would use — or,
// when it is safe, a pair of indistinguishable worlds as evidence.
//
// Build & run:  ./build/examples/privacy_audit

#include <iostream>
#include <vector>

#include "core/determinacy.h"
#include "core/finite_search.h"
#include "core/rewriting.h"
#include "cq/parser.h"

using namespace vqdr;

int main() {
  NamePool pool;

  // Hospital data: Visit(patient, doctor), Specialty(doctor, field).
  Schema base{{"Visit", 2}, {"Specialty", 2}};

  // Published views: per-doctor visit counts are hidden; the hospital
  // exposes which doctors were visited at all and the specialty table.
  ViewSet published;
  published.Add(
      "VisitedDoctor",
      Query::FromCq(ParseCq("VisitedDoctor(d) :- Visit(p, d)", pool).value()));
  published.Add(
      "Specialties",
      Query::FromCq(
          ParseCq("Specialties(d, f) :- Specialty(d, f)", pool).value()));
  published.Add(
      "PatientsOf",
      Query::FromCq(ParseCq("PatientsOf(p, f) :- Visit(p, d), "
                            "Specialty(d, f)",
                            pool)
                        .value()));

  std::cout << "Published views:\n" << published.ToString() << "\n";

  struct Secret {
    std::string description;
    std::string query;
  };
  std::vector<Secret> secrets = {
      {"which patient visited which doctor", "S(p, d) :- Visit(p, d)"},
      {"patients who visited an oncologist",
       "S(p) :- Visit(p, d), Specialty(d, 'oncology')"},
      {"whether any doctor at all was visited", "S() :- Visit(p, d)"},
  };

  for (const Secret& secret : secrets) {
    ConjunctiveQuery q = ParseCq(secret.query, pool).value();
    std::cout << "Secret (" << secret.description
              << "): " << CqToString(q, pool) << "\n";

    UnrestrictedDeterminacyResult det =
        DecideUnrestrictedDeterminacy(published, q);
    if (det.determined) {
      CqRewritingResult rewriting = FindCqRewriting(published, q);
      std::cout << "  LEAK: the views determine this secret.\n"
                << "  An adversary computes it as: "
                << CqToString(*rewriting.rewriting, pool) << "\n";
    } else {
      std::cout << "  Not determined in the unrestricted sense.\n";
      // Produce evidence: two worlds with equal published views but
      // different secret answers (bounded search; finite determinacy is
      // undecidable in general, Theorem 4.5).
      EnumerationOptions options;
      options.domain_size = 2;
      auto search = SearchDeterminacyCounterexample(
          published, Query::FromCq(q), base, options);
      if (search.verdict == SearchVerdict::kCounterexampleFound) {
        std::cout << "  SAFE, with evidence. Two indistinguishable worlds:\n"
                  << "  world A:\n"
                  << InstanceToString(search.counterexample->d1, pool)
                  << "  world B:\n"
                  << InstanceToString(search.counterexample->d2, pool)
                  << "  (equal view images, different secret answers)\n";
      } else {
        std::cout << "  No finite counterexample up to "
                  << options.domain_size
                  << " elements — treat as POSSIBLY LEAKING and audit "
                     "with larger bounds.\n";
      }
    }
    std::cout << "\n";
  }
  return 0;
}
