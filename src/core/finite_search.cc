#include "core/finite_search.h"

#include <map>
#include <string>
#include <vector>

namespace vqdr {

DeterminacySearchResult SearchDeterminacyCounterexample(
    const ViewSet& views, const Query& q, const Schema& base,
    const EnumerationOptions& options) {
  DeterminacySearchResult result;

  // First instance and query answer seen per view-image key.
  struct GroupInfo {
    Instance first{Schema{}};
    Relation answer{0};
  };
  std::map<std::string, GroupInfo> groups;

  EnumerationOutcome outcome =
      ForEachInstance(base, options, [&](const Instance& d) {
        Instance image = views.Apply(d);
        std::string key = image.ToKey();
        Relation answer = q.Eval(d);
        auto it = groups.find(key);
        if (it == groups.end()) {
          groups.emplace(key, GroupInfo{d, answer});
          return true;
        }
        if (it->second.answer != answer) {
          result.verdict = SearchVerdict::kCounterexampleFound;
          result.counterexample =
              DeterminacyCounterexample{it->second.first, d};
          return false;
        }
        return true;
      });
  result.instances_examined = outcome.visited;
  if (result.verdict != SearchVerdict::kCounterexampleFound &&
      !outcome.complete) {
    result.verdict = SearchVerdict::kBudgetExhausted;
  }
  return result;
}

MonotonicitySearchResult SearchMonotonicityViolation(
    const ViewSet& views, const Query& q, const Schema& base,
    const EnumerationOptions& options) {
  MonotonicitySearchResult result;

  struct Entry {
    Instance d{Schema{}};
    Instance image{Schema{}};
    Relation answer{0};
  };
  std::vector<Entry> entries;

  EnumerationOutcome outcome =
      ForEachInstance(base, options, [&](const Instance& d) {
        entries.push_back(Entry{d, views.Apply(d), q.Eval(d)});
        return true;
      });
  result.instances_examined = outcome.visited;

  for (const Entry& a : entries) {
    for (const Entry& b : entries) {
      if (&a == &b) continue;
      if (!a.image.IsSubInstanceOf(b.image)) continue;
      if (!a.answer.IsSubsetOf(b.answer)) {
        result.verdict = SearchVerdict::kCounterexampleFound;
        result.violation =
            MonotonicityViolation{a.d, b.d, a.image, b.image};
        return result;
      }
    }
  }
  if (!outcome.complete) result.verdict = SearchVerdict::kBudgetExhausted;
  return result;
}

}  // namespace vqdr
