#ifndef VQDR_GEN_RANDOM_INSTANCE_H_
#define VQDR_GEN_RANDOM_INSTANCE_H_

#include "base/rng.h"
#include "data/instance.h"

namespace vqdr {

/// Parameters for random instance generation.
struct RandomInstanceOptions {
  /// Values drawn from {1..domain_size}.
  int domain_size = 8;

  /// Tuples inserted per relation (duplicates collapse, so the realised
  /// size may be smaller).
  int tuples_per_relation = 12;

  /// Propositions are set true with probability 1/2.
  bool randomize_propositions = true;
};

/// A random instance over `schema`, deterministic in `rng`'s seed.
Instance RandomInstance(const Schema& schema, Rng& rng,
                        const RandomInstanceOptions& options);

}  // namespace vqdr

#endif  // VQDR_GEN_RANDOM_INSTANCE_H_
