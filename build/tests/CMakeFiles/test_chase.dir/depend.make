# Empty dependencies file for test_chase.
# This may be replaced when dependencies are built.
