// Tests for the paper's reductions: the monoid word-problem reduction
// (Theorem 4.5), the Turing-machine construction (Theorem 5.1), the GIMP
// construction (Theorem 5.4), the Prop 4.1 reductions, the order-view
// constructions (Example 3.2 / Prop 5.7) and the non-monotonicity families
// (Props 5.8 / 5.12).

#include <gtest/gtest.h>

#include "core/finite_search.h"
#include "core/query_answering.h"
#include "cq/matcher.h"
#include "cq/parser.h"
#include "fo/evaluator.h"
#include "fo/parser.h"
#include "reductions/counterexamples.h"
#include "reductions/gimp.h"
#include "reductions/monoid.h"
#include "reductions/order_views.h"
#include "reductions/sat_reductions.h"
#include "reductions/turing.h"

namespace vqdr {
namespace {

class ReductionsFixture : public ::testing::Test {
 protected:
  Instance Db(const std::string& text, const Schema& schema) {
    auto d = ParseInstance(text, schema, pool_);
    EXPECT_TRUE(d.ok()) << d.status().message();
    return d.value();
  }

  NamePool pool_;
};

// ---- Theorem 4.5: monoid reduction ----

TEST_F(ReductionsFixture, MonoidViewsAreUcq) {
  for (bool use_equality : {true, false}) {
    ViewSet views = MonoidViews(use_equality);
    EXPECT_GE(views.size(), 6u);
    for (const View& v : views.views()) {
      // Each view is a CQ or UCQ; the equality-free variant is pure.
      EXPECT_TRUE(v.query.language() == Query::Language::kCq ||
                  v.query.language() == Query::Language::kUcq);
      if (!use_equality) {
        EXPECT_TRUE(v.query.IsSyntacticallyMonotone());
      }
    }
  }
}

TEST_F(ReductionsFixture, MonoidQueryIsSafeUcq) {
  WordProblem commutativity;
  commutativity.hypotheses = {{"a", "b", "c"}, {"b", "a", "d"}};
  commutativity.lhs = "c";
  commutativity.rhs = "d";
  for (bool use_equality : {true, false}) {
    UnionQuery q = MonoidQuery(commutativity, use_equality);
    EXPECT_TRUE(q.IsSafe());
    EXPECT_EQ(q.head_arity(), 2);
    EXPECT_EQ(q.disjuncts().size(), 11u);  // 9 adom² + p1-branch + p2-branch
  }
}

TEST_F(ReductionsFixture, MonoidalSearchRefutesCommutativity) {
  // "ab = c, ba = d ⊨ c = d" fails over monoidal functions (non-abelian
  // ones exist); the bounded search finds a counterexample.
  WordProblem commutativity;
  commutativity.hypotheses = {{"a", "b", "c"}, {"b", "a", "d"}};
  commutativity.lhs = "c";
  commutativity.rhs = "d";
  MonoidalSearchResult search =
      SearchMonoidalCounterexample(commutativity, /*max_size=*/3);
  ASSERT_FALSE(search.implies_up_to_bound);
  EXPECT_GT(search.monoidal_functions, 0u);

  // The counterexample's table is complete, onto, associative and violates
  // F under the assignment.
  const MonoidalCounterexample& ce = *search.counterexample;
  int n = ce.size;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      for (int c = 0; c < n; ++c) {
        EXPECT_EQ(ce.table[ce.table[a * n + b] * n + c],
                  ce.table[a * n + ce.table[b * n + c]]);
      }
    }
  }
}

TEST_F(ReductionsFixture, MonoidalSearchConfirmsTrivialImplication) {
  // "ab = c ⊨ ab = c" holds trivially.
  WordProblem trivial;
  trivial.hypotheses = {{"a", "b", "c"}, {"a", "b", "d"}};
  trivial.lhs = "c";
  trivial.rhs = "d";
  // c and d are both f(a,b), so functionality forces c = d.
  MonoidalSearchResult search = SearchMonoidalCounterexample(trivial, 3);
  EXPECT_TRUE(search.implies_up_to_bound);
}

TEST_F(ReductionsFixture, MonoidCounterexampleRefutesDeterminacy) {
  // The end-to-end reduction property on a concrete witness: when H does
  // not imply F, the derived pair (D1, D2) has equal view images and
  // different Q_{H,F} answers — for both view variants.
  WordProblem commutativity;
  commutativity.hypotheses = {{"a", "b", "c"}, {"b", "a", "d"}};
  commutativity.lhs = "c";
  commutativity.rhs = "d";
  MonoidalSearchResult search = SearchMonoidalCounterexample(commutativity, 3);
  ASSERT_FALSE(search.implies_up_to_bound);
  DeterminacyCounterexample pair =
      MonoidCounterexampleToInstances(*search.counterexample);

  for (bool use_equality : {true, false}) {
    ViewSet views = MonoidViews(use_equality);
    UnionQuery q = MonoidQuery(commutativity, use_equality);
    EXPECT_EQ(views.Apply(pair.d1).ToKey(), views.Apply(pair.d2).ToKey())
        << "view variant eq=" << use_equality;
    EXPECT_NE(EvaluateUcq(q, pair.d1), EvaluateUcq(q, pair.d2))
        << "query variant eq=" << use_equality;
  }
}

TEST_F(ReductionsFixture, MonoidImplicationPreservesDeterminacyOnWitness) {
  // For an implication that HOLDS (functionality merges c and d), any
  // monoidal graph extended with p1 vs p2 yields equal answers.
  WordProblem trivial;
  trivial.hypotheses = {{"a", "b", "c"}, {"a", "b", "d"}};
  trivial.lhs = "c";
  trivial.rhs = "d";
  ASSERT_TRUE(SearchMonoidalCounterexample(trivial, 3).implies_up_to_bound);

  // Use the 2-element cyclic group as a monoidal function.
  MonoidalCounterexample z2;
  z2.size = 2;
  z2.table = {0, 1, 1, 0};
  DeterminacyCounterexample pair = MonoidCounterexampleToInstances(z2);
  for (bool use_equality : {true, false}) {
    ViewSet views = MonoidViews(use_equality);
    UnionQuery q = MonoidQuery(trivial, use_equality);
    ASSERT_EQ(views.Apply(pair.d1).ToKey(), views.Apply(pair.d2).ToKey());
    EXPECT_EQ(EvaluateUcq(q, pair.d1), EvaluateUcq(q, pair.d2));
  }
}

// ---- Theorem 5.1: Turing construction ----

TEST_F(ReductionsFixture, TmRunComplement) {
  SimpleTm tm = ComplementTm();
  auto run = tm.Run("0110", 100, 100);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->back().tape.substr(0, 4), "1001");
}

TEST_F(ReductionsFixture, TmHangsWithoutTransition) {
  SimpleTm tm(/*start=*/0, /*halt=*/{1});
  EXPECT_FALSE(tm.Run("0", 10, 10).ok());
}

TEST_F(ReductionsFixture, EncodeDecodeGraphRoundTrip) {
  Relation edges(2, {MakeTuple({1, 2}), MakeTuple({2, 2})});
  std::vector<Value> ranked{Value(1), Value(2)};
  std::string enc = EncodeGraph(edges, ranked);
  EXPECT_EQ(enc, "0101");  // (1,2) and (2,2)
  EXPECT_EQ(DecodeGraph(enc, ranked), edges);
}

TEST_F(ReductionsFixture, ComputationInstanceVerifies) {
  SimpleTm tm = ComplementTm();
  Relation graph(2, {MakeTuple({1, 2})});
  auto instance = BuildComputationInstance(tm, graph);
  ASSERT_TRUE(instance.ok()) << instance.status().message();
  EXPECT_TRUE(VerifyComputationInstance(tm, instance.value()));
  // R2 holds the complement within adom.
  EXPECT_EQ(instance->Get("R2"), ComplementWithinAdom(graph));
}

TEST_F(ReductionsFixture, CorruptedComputationRejected) {
  SimpleTm tm = ComplementTm();
  Relation graph(2, {MakeTuple({1, 2})});
  auto instance = BuildComputationInstance(tm, graph);
  ASSERT_TRUE(instance.ok());

  // Tamper with the output.
  Instance wrong_output = instance.value();
  wrong_output.GetMutable("R2").Insert(MakeTuple({1, 2}));
  EXPECT_FALSE(VerifyComputationInstance(tm, wrong_output));

  // Tamper with the trace.
  Instance wrong_trace = instance.value();
  Relation& t = wrong_trace.GetMutable("T");
  Tuple first = t.tuples().front();
  t.Erase(first);
  EXPECT_FALSE(VerifyComputationInstance(tm, wrong_trace));

  // Break the order.
  Instance wrong_order = instance.value();
  Relation& le = wrong_order.GetMutable("Le");
  le.Erase(le.tuples().front());
  EXPECT_FALSE(VerifyComputationInstance(tm, wrong_order));
}

TEST_F(ReductionsFixture, TuringViewDeterminesQueryOnComputationInstances) {
  // Theorem 5.1's heart: Q = q ∘ V. Two valid computation instances with
  // the same R1 (different padding) get the same Q; and Q(D) equals the
  // machine's query applied to V(D).
  SimpleTm tm = ComplementTm();
  ViewSet views = TuringViews(tm);
  Query q = TuringQuery(tm);

  Relation graph(2, {MakeTuple({1, 2}), MakeTuple({2, 1})});
  auto d1 = BuildComputationInstance(tm, graph);
  auto d2 = BuildComputationInstance(tm, graph, /*extra_elements=*/9);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok()) << d2.status().message();

  Instance s1 = views.Apply(d1.value());
  Instance s2 = views.Apply(d2.value());
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(q.Eval(d1.value()), q.Eval(d2.value()));
  EXPECT_EQ(q.Eval(d1.value()), ComplementWithinAdom(s1.Get("VR1")));
}

TEST_F(ReductionsFixture, TuringViewEmptyOnInvalidInstances) {
  SimpleTm tm = ComplementTm();
  ViewSet views = TuringViews(tm);
  Query q = TuringQuery(tm);
  Instance junk(TuringSchema());
  junk.AddFact("R1", MakeTuple({1, 2}));  // no order, no trace
  EXPECT_TRUE(views.Apply(junk).Get("VR1").empty());
  EXPECT_TRUE(q.Eval(junk).empty());
}

TEST_F(ReductionsFixture, IdentityTmComputesIdentity) {
  SimpleTm tm = IdentityTm();
  Relation graph(2, {MakeTuple({1, 2})});
  auto d = BuildComputationInstance(tm, graph);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(VerifyComputationInstance(tm, d.value()));
  EXPECT_EQ(d->Get("R2"), graph);
}

// ---- Proposition 4.1 reductions ----

TEST_F(ReductionsFixture, SatisfiabilityReduction) {
  Schema sigma{{"P", 1}};
  // Satisfiable φ: ∃x P(x) → V does not determine Q.
  FoQuery sat;
  sat.formula = ParseFo("exists x . P(x)", pool_).value();
  DeterminacyInstance inst = FromSatisfiability(Query::FromFo(sat), sigma);
  EnumerationOptions options;
  options.domain_size = 2;
  auto search = SearchDeterminacyCounterexample(inst.views, inst.query,
                                                inst.base, options);
  EXPECT_EQ(search.verdict, SearchVerdict::kCounterexampleFound);

  // Unsatisfiable φ: determinacy holds (Q is constantly empty).
  FoQuery unsat;
  unsat.formula =
      ParseFo("(exists x . P(x)) & !(exists x . P(x))", pool_).value();
  DeterminacyInstance inst2 =
      FromSatisfiability(Query::FromFo(unsat), sigma);
  auto search2 = SearchDeterminacyCounterexample(inst2.views, inst2.query,
                                                 inst2.base, options);
  EXPECT_EQ(search2.verdict, SearchVerdict::kNoneWithinBound);
}

TEST_F(ReductionsFixture, ValidityReduction) {
  Schema sigma{{"P", 1}};
  // Valid φ: determinacy holds (the view equals R).
  FoQuery valid;
  valid.formula = ParseFo("forall x . (P(x) -> P(x))", pool_).value();
  DeterminacyInstance inst = FromValidity(Query::FromFo(valid), sigma);
  EnumerationOptions options;
  options.domain_size = 2;
  auto search = SearchDeterminacyCounterexample(inst.views, inst.query,
                                                inst.base, options);
  EXPECT_EQ(search.verdict, SearchVerdict::kNoneWithinBound);

  // Non-valid φ: refuted.
  FoQuery invalid;
  invalid.formula = ParseFo("exists x . P(x)", pool_).value();
  DeterminacyInstance inst2 = FromValidity(Query::FromFo(invalid), sigma);
  auto search2 = SearchDeterminacyCounterexample(inst2.views, inst2.query,
                                                 inst2.base, options);
  EXPECT_EQ(search2.verdict, SearchVerdict::kCounterexampleFound);
}

// ---- Example 3.2 / Proposition 5.7: order views ----

TEST_F(ReductionsFixture, OrderGuardedQueryOnOrderedInstances) {
  Schema sigma{{"P", 1}};
  // φ = "at least 2 elements", phrased with the order (order-invariant).
  FoQuery phi;
  phi.formula = ParseFo("exists x, y . Lt(x, y)", pool_).value();
  Query q = OrderGuardedQuery(phi, sigma, "Lt");

  Schema full = sigma;
  full.Add("Lt", 2);
  Instance two = Db("P(a), P(b), Lt(a, b)", full);
  EXPECT_TRUE(q.Eval(two).AsBool());
  Instance bad_order = Db("P(a), P(b)", full);  // not total
  EXPECT_FALSE(q.Eval(bad_order).AsBool());
}

TEST_F(ReductionsFixture, Example32ViewsDetermineOrderInvariantQuery) {
  Schema sigma{{"P", 1}};
  FoQuery phi;
  phi.formula = ParseFo("exists x, y . Lt(x, y)", pool_).value();
  ViewSet views = Example32Views(sigma, "Lt");
  Query q = OrderGuardedQuery(phi, sigma, "Lt");

  Schema full = sigma;
  full.Add("Lt", 2);
  EnumerationOptions options;
  options.domain_size = 2;
  auto search = SearchDeterminacyCounterexample(views, q, full, options);
  EXPECT_EQ(search.verdict, SearchVerdict::kNoneWithinBound);
}

TEST_F(ReductionsFixture, Prop57ViewsDetermineOrderInvariantQuery) {
  Schema sigma{{"P", 1}};
  FoQuery phi;
  phi.formula = ParseFo("exists x, y . Lt(x, y)", pool_).value();
  ViewSet views = Prop57Views(sigma, "Lt");
  Query q = OrderGuardedQuery(phi, sigma, "Lt");

  Schema full = sigma;
  full.Add("Lt", 2);
  EnumerationOptions options;
  options.domain_size = 2;
  auto search = SearchDeterminacyCounterexample(views, q, full, options);
  EXPECT_EQ(search.verdict, SearchVerdict::kNoneWithinBound);
}

TEST_F(ReductionsFixture, Prop57ViewsDoNotExposeTheOrder) {
  // Two instances with the same P and different (valid) orders have the
  // same view image: the views reveal only order-validity, not the order.
  Schema sigma{{"P", 1}};
  ViewSet views = Prop57Views(sigma, "Lt");
  Schema full = sigma;
  full.Add("Lt", 2);
  Instance d1 = Db("P(a), P(b), Lt(a, b)", full);
  Instance d2 = Db("P(a), P(b), Lt(b, a)", full);
  EXPECT_EQ(views.Apply(d1), views.Apply(d2));
}

// ---- Propositions 5.8 / 5.12 ----

TEST_F(ReductionsFixture, Prop58WitnessShowsNonMonotonicity) {
  NonMonotonicityFamily family = Prop58Family(pool_);
  // The witness pair: V(D1) ⊆ V(D2) but Q(D1) ⊄ Q(D2).
  EXPECT_TRUE(family.witness.view_image1.IsSubInstanceOf(
      family.witness.view_image2));
  Relation q1 = family.query.Eval(family.witness.d1);
  Relation q2 = family.query.Eval(family.witness.d2);
  EXPECT_FALSE(q1.IsSubsetOf(q2));
}

TEST_F(ReductionsFixture, Prop58ViewsDetermineQuery) {
  NonMonotonicityFamily family = Prop58Family(pool_);
  EnumerationOptions options;
  options.domain_size = 2;
  auto search = SearchDeterminacyCounterexample(family.views, family.query,
                                                family.base, options);
  EXPECT_EQ(search.verdict, SearchVerdict::kNoneWithinBound);
}

TEST_F(ReductionsFixture, Prop58MonotonicitySearchFindsTheViolation) {
  NonMonotonicityFamily family = Prop58Family(pool_);
  EnumerationOptions options;
  options.domain_size = 2;
  auto result = SearchMonotonicityViolation(family.views, family.query,
                                            family.base, options);
  EXPECT_EQ(result.verdict, SearchVerdict::kCounterexampleFound);
}

TEST_F(ReductionsFixture, Prop512WitnessShowsNonMonotonicity) {
  NonMonotonicityFamily family = Prop512Family(pool_);
  EXPECT_TRUE(family.witness.view_image1.IsSubInstanceOf(
      family.witness.view_image2));
  Relation q1 = family.query.Eval(family.witness.d1);
  Relation q2 = family.query.Eval(family.witness.d2);
  EXPECT_FALSE(q1.IsSubsetOf(q2));
}

TEST_F(ReductionsFixture, Prop512ViewsDetermineQuery) {
  NonMonotonicityFamily family = Prop512Family(pool_);
  EnumerationOptions options;
  options.domain_size = 3;  // the phenomena need 2–3 elements
  options.max_instances = 1ull << 21;
  auto search = SearchDeterminacyCounterexample(family.views, family.query,
                                                family.base, options);
  EXPECT_EQ(search.verdict, SearchVerdict::kNoneWithinBound);
}

TEST_F(ReductionsFixture, Prop512MonotonicitySearchFindsTheViolation) {
  NonMonotonicityFamily family = Prop512Family(pool_);
  EnumerationOptions options;
  options.domain_size = 2;
  auto result = SearchMonotonicityViolation(family.views, family.query,
                                            family.base, options);
  EXPECT_EQ(result.verdict, SearchVerdict::kCounterexampleFound);
}

// ---- Theorem 5.4: GIMP ----

TEST_F(ReductionsFixture, ParityPhiImplicitlyDefinesEven) {
  auto gimp = BuildParityGimp();
  ASSERT_TRUE(gimp.ok()) << gimp.status().message();
  const GimpConstruction& g = gimp->construction;

  // For U of sizes 0..3: completing a correct (T, Ord, Alt) assignment
  // satisfies Q consistently with parity; wrong T makes Q false.
  for (int n = 0; n <= 3; ++n) {
    Instance d_tau(Schema{{"U", 1}});
    for (int i = 1; i <= n; ++i) d_tau.AddFact("U", Tuple{Value(i)});

    Instance d_prime(g.tau_prime());
    d_prime.Set("U", d_tau.Get("U"));
    // Ord: natural order; Alt: odd positions.
    for (int i = 1; i <= n; ++i) {
      for (int j = i + 1; j <= n; ++j) {
        d_prime.AddFact("Ord", Tuple{Value(i), Value(j)});
      }
      if (i % 2 == 1) d_prime.AddFact("Alt", Tuple{Value(i)});
    }
    bool even = n % 2 == 0;
    d_prime.GetMutable("T").SetBool(even);

    Instance complete = g.CompleteInstance(d_prime);
    EXPECT_TRUE(FoSentenceHolds(g.psi(), complete)) << "n=" << n;
    Relation q_answer = g.query().Eval(complete);
    EXPECT_EQ(q_answer.AsBool(), even) << "n=" << n;

    // Flipping T falsifies φ, so Q returns empty regardless of parity.
    Instance wrong = d_prime;
    wrong.GetMutable("T").SetBool(!even);
    Instance complete_wrong = g.CompleteInstance(wrong);
    EXPECT_FALSE(g.query().Eval(complete_wrong).AsBool()) << "n=" << n;
  }
}

TEST_F(ReductionsFixture, GimpViewsShowOnlyPatterns) {
  // The views on a correctly-completed instance: every Vint view is empty
  // and every Vuni view is full — and crucially the view image does not
  // reveal T beyond the root bit.
  auto gimp = BuildParityGimp();
  ASSERT_TRUE(gimp.ok());
  const GimpConstruction& g = gimp->construction;

  Instance d_prime(g.tau_prime());
  d_prime.AddFact("U", Tuple{Value(1)});
  d_prime.AddFact("U", Tuple{Value(2)});
  d_prime.AddFact("Ord", Tuple{Value(1), Value(2)});
  d_prime.AddFact("Alt", Tuple{Value(1)});
  d_prime.GetMutable("T").SetBool(true);  // |U| = 2 even

  Instance complete = g.CompleteInstance(d_prime);
  Instance image = g.views().Apply(complete);

  std::set<Value> adom = complete.ActiveDomain();
  for (const View& v : g.views().views()) {
    const Relation& answer = image.Get(v.name);
    if (v.name.rfind("Vint", 0) == 0) {
      EXPECT_TRUE(answer.empty()) << v.name;
    } else if (v.name.rfind("Vuni", 0) == 0 ||
               v.name.rfind("Vexu", 0) == 0) {
      std::size_t expected = 1;
      for (int i = 0; i < answer.arity(); ++i) expected *= adom.size();
      EXPECT_EQ(answer.size(), expected) << v.name;
    } else if (v.name.rfind("Vand", 0) == 0 || v.name.rfind("Vex", 0) == 0) {
      EXPECT_TRUE(answer.empty()) << v.name;
    }
  }
  // The root bit equals φ's value (true here).
  EXPECT_TRUE(image.Get("Vphi").AsBool());
}

TEST_F(ReductionsFixture, GimpQvComputesParityThroughViews) {
  // Q_V demonstration: two correctly-completed instances over the same U
  // but different orders have the same view image and the same Q — the
  // views determine parity without revealing the order.
  auto gimp = BuildParityGimp();
  ASSERT_TRUE(gimp.ok());
  const GimpConstruction& g = gimp->construction;

  auto build = [&](const std::vector<int>& order) {
    Instance d_prime(g.tau_prime());
    int n = static_cast<int>(order.size());
    for (int i = 1; i <= n; ++i) d_prime.AddFact("U", Tuple{Value(i)});
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        d_prime.AddFact("Ord", Tuple{Value(order[i]), Value(order[j])});
      }
      if (i % 2 == 0) d_prime.AddFact("Alt", Tuple{Value(order[i])});
    }
    d_prime.GetMutable("T").SetBool(n % 2 == 0);
    return g.CompleteInstance(d_prime);
  };

  Instance c1 = build({1, 2, 3});
  Instance c2 = build({3, 1, 2});
  EXPECT_EQ(g.views().Apply(c1), g.views().Apply(c2));
  EXPECT_EQ(g.query().Eval(c1), g.query().Eval(c2));
  EXPECT_FALSE(g.query().Eval(c1).AsBool());  // |U| = 3 odd
}

TEST_F(ReductionsFixture, GimpIdentityQueryConstruction) {
  // A second GIMP instance: the identity query T = U, implicitly defined
  // by φ = ∀x (T(x) ↔ U(x)) with no auxiliary S̄ at all. Exercises unary T
  // and the equality-free path of the builder.
  FoPtr phi = ParseFo("forall x . (T(x) <-> U(x))", pool_).value();
  auto construction = GimpConstruction::Build(
      phi, Schema{{"U", 1}}, RelationDecl{"T", 1}, {});
  ASSERT_TRUE(construction.ok()) << construction.status().message();
  const GimpConstruction& g = construction.value();

  Instance d_prime(g.tau_prime());
  d_prime.AddFact("U", Tuple{Value(1)});
  d_prime.AddFact("U", Tuple{Value(2)});
  d_prime.AddFact("T", Tuple{Value(1)});
  d_prime.AddFact("T", Tuple{Value(2)});
  Instance complete = g.CompleteInstance(d_prime);
  EXPECT_TRUE(FoSentenceHolds(g.psi(), complete));
  Relation answer = g.query().Eval(complete);
  EXPECT_EQ(answer, complete.Get("U"));

  // A wrong T falsifies φ: empty answer.
  Instance wrong = d_prime;
  wrong.GetMutable("T").Erase(Tuple{Value(2)});
  EXPECT_TRUE(g.query().Eval(g.CompleteInstance(wrong)).empty());
}

TEST_F(ReductionsFixture, GimpBuildRejectsBadInput) {
  // Free variables in φ.
  FoPtr open_phi = ParseFo("T(x)", pool_).value();
  EXPECT_FALSE(GimpConstruction::Build(open_phi, Schema{{"U", 1}},
                                       RelationDecl{"T", 1}, {})
                   .ok());
  // Unknown relation.
  FoPtr unknown = ParseFo("forall x . (T(x) <-> W(x))", pool_).value();
  EXPECT_FALSE(GimpConstruction::Build(unknown, Schema{{"U", 1}},
                                       RelationDecl{"T", 1}, {})
                   .ok());
}

TEST_F(ReductionsFixture, GimpViewSchemasAreUcqOnly) {
  auto gimp = BuildParityGimp();
  ASSERT_TRUE(gimp.ok());
  for (const View& v : gimp->construction.views().views()) {
    EXPECT_TRUE(v.query.language() == Query::Language::kCq ||
                v.query.language() == Query::Language::kUcq)
        << v.name;
    EXPECT_TRUE(v.query.IsSyntacticallyMonotone()) << v.name;
  }
  // The query is FO (not weaker): the lower bound needs ψ's universals.
  EXPECT_EQ(gimp->construction.query().language(), Query::Language::kFo);
  EXPECT_FALSE(gimp->construction.query().IsExistential());
}

}  // namespace
}  // namespace vqdr
