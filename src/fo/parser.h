#ifndef VQDR_FO_PARSER_H_
#define VQDR_FO_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "data/value.h"
#include "fo/formula.h"

namespace vqdr {

/// Parses a first-order formula. Grammar (loosest to tightest binding):
///
///   iff     := implies ('<->' implies)*
///   implies := or ('->' or)*            (right-associative)
///   or      := and ('|' and)*
///   and     := unary ('&' unary)*
///   unary   := '!' unary
///            | ('forall'|'exists') var (',' var)* '.' iff
///            | '(' iff ')'
///            | 'true' | 'false'
///            | Pred '(' terms ')'
///            | term ('='|'!=') term
///
/// Variables are bare identifiers; constants are 'quoted' and interned
/// through `pool`. `t1 != t2` is sugar for `!(t1 = t2)`.
StatusOr<FoPtr> ParseFo(std::string_view text, NamePool& pool);

/// Parses an FO query "Q(x, y) := <formula>". The formula's free variables
/// must all appear in the head.
StatusOr<FoQuery> ParseFoQuery(std::string_view text, NamePool& pool);

}  // namespace vqdr

#endif  // VQDR_FO_PARSER_H_
