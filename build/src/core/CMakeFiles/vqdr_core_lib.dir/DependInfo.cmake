
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/boolean_views.cc" "src/core/CMakeFiles/vqdr_core_lib.dir/boolean_views.cc.o" "gcc" "src/core/CMakeFiles/vqdr_core_lib.dir/boolean_views.cc.o.d"
  "/root/repo/src/core/determinacy.cc" "src/core/CMakeFiles/vqdr_core_lib.dir/determinacy.cc.o" "gcc" "src/core/CMakeFiles/vqdr_core_lib.dir/determinacy.cc.o.d"
  "/root/repo/src/core/finite_search.cc" "src/core/CMakeFiles/vqdr_core_lib.dir/finite_search.cc.o" "gcc" "src/core/CMakeFiles/vqdr_core_lib.dir/finite_search.cc.o.d"
  "/root/repo/src/core/genericity.cc" "src/core/CMakeFiles/vqdr_core_lib.dir/genericity.cc.o" "gcc" "src/core/CMakeFiles/vqdr_core_lib.dir/genericity.cc.o.d"
  "/root/repo/src/core/query_answering.cc" "src/core/CMakeFiles/vqdr_core_lib.dir/query_answering.cc.o" "gcc" "src/core/CMakeFiles/vqdr_core_lib.dir/query_answering.cc.o.d"
  "/root/repo/src/core/reference_rewriter.cc" "src/core/CMakeFiles/vqdr_core_lib.dir/reference_rewriter.cc.o" "gcc" "src/core/CMakeFiles/vqdr_core_lib.dir/reference_rewriter.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/vqdr_core_lib.dir/report.cc.o" "gcc" "src/core/CMakeFiles/vqdr_core_lib.dir/report.cc.o.d"
  "/root/repo/src/core/rewriting.cc" "src/core/CMakeFiles/vqdr_core_lib.dir/rewriting.cc.o" "gcc" "src/core/CMakeFiles/vqdr_core_lib.dir/rewriting.cc.o.d"
  "/root/repo/src/core/twin_encoding.cc" "src/core/CMakeFiles/vqdr_core_lib.dir/twin_encoding.cc.o" "gcc" "src/core/CMakeFiles/vqdr_core_lib.dir/twin_encoding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chase/CMakeFiles/vqdr_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/vqdr_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/views/CMakeFiles/vqdr_views.dir/DependInfo.cmake"
  "/root/repo/build/src/so/CMakeFiles/vqdr_so.dir/DependInfo.cmake"
  "/root/repo/build/src/fo/CMakeFiles/vqdr_fo.dir/DependInfo.cmake"
  "/root/repo/build/src/cq/CMakeFiles/vqdr_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vqdr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/vqdr_base.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/vqdr_datalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
