#include "core/genericity.h"

#include "data/isomorphism.h"

namespace vqdr {

bool CheckAnswerDomainContained(const ViewSet& views, const Query& q,
                                const Instance& d) {
  Instance image = views.Apply(d);
  std::set<Value> view_adom = image.ActiveDomain();
  Relation answer = q.Eval(d);
  for (const Tuple& t : answer.tuples()) {
    for (Value v : t) {
      if (view_adom.count(v) == 0) return false;
    }
  }
  return true;
}

bool CheckAutomorphismsPreserved(const ViewSet& views, const Query& q,
                                 const Instance& d) {
  Instance image = views.Apply(d);
  Relation answer = q.Eval(d);

  for (const ValueBijection& pi : Automorphisms(image)) {
    Relation mapped = answer.Apply([&pi](Value v) {
      auto it = pi.find(v);
      return it != pi.end() ? it->second : v;
    });
    if (mapped != answer) return false;
  }
  return true;
}

}  // namespace vqdr
