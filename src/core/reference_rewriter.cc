#include "core/reference_rewriter.h"

#include <functional>
#include <vector>

#include "base/check.h"
#include "core/rewriting.h"
#include "cq/containment.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace vqdr {

ReferenceRewritingResult FindCqRewritingByEnumeration(
    const ViewSet& views, const ConjunctiveQuery& q,
    const ReferenceRewritingOptions& options) {
  VQDR_TRACE_SPAN("rewrite.enumerate");
  VQDR_CHECK(views.AllPureCq());
  VQDR_CHECK(q.IsPureCq() && q.IsSafe());

  ReferenceRewritingResult result;

  // candidates_examined is the delta of the shared obs counter across this
  // call rather than a private tally (searches are single-threaded).
  obs::Counter& candidates = obs::GetCounter("rewrite.candidates");
  const std::uint64_t candidates_before = candidates.value();
  obs::ProgressTicker ticker("rewrite.candidates", /*stride=*/1024,
                             options.max_candidates);

  // Head: fresh variables h1..hk; body variables drawn from the heads plus
  // a pool b1..bp.
  std::vector<Term> head_terms;
  std::vector<Term> term_pool;
  for (int i = 0; i < q.head_arity(); ++i) {
    head_terms.push_back(Term::Var("h" + std::to_string(i + 1)));
    term_pool.push_back(head_terms.back());
  }
  for (int i = 0; i < options.variable_pool; ++i) {
    term_pool.push_back(Term::Var("b" + std::to_string(i + 1)));
  }
  Schema view_schema = views.OutputSchema();

  // Enumerate candidates with 1..max_atoms view atoms; argument tuples
  // range over the term pool.
  std::vector<Atom> atoms;
  std::function<bool()> test_candidate = [&]() -> bool {
    candidates.Increment();
    if (candidates.value() - candidates_before > options.max_candidates) {
      result.exhaustive = false;
      return true;  // stop everything
    }
    if (!ticker.Tick()) {
      result.exhaustive = false;
      return true;  // progress callback requested a stop
    }
    ConjunctiveQuery candidate(q.head_name(), head_terms);
    for (const Atom& a : atoms) candidate.AddAtom(a);
    if (!candidate.IsSafe()) return false;
    ConjunctiveQuery expansion = ExpandRewriting(candidate, views);
    if (expansion.atoms().empty()) return false;
    if (CqEquivalent(expansion, q)) {
      result.exists = true;
      result.rewriting = candidate;
      return true;  // stop
    }
    return false;
  };

  std::function<bool(int)> build = [&](int remaining) -> bool {
    if (test_candidate()) return true;
    if (remaining == 0) return false;
    for (const RelationDecl& decl : view_schema.decls()) {
      Atom atom;
      atom.predicate = decl.name;
      atom.args.assign(decl.arity, term_pool.front());
      std::function<bool(int)> fill = [&](int pos) -> bool {
        if (pos == decl.arity) {
          atoms.push_back(atom);
          bool done = build(remaining - 1);
          atoms.pop_back();
          return done;
        }
        for (const Term& t : term_pool) {
          atom.args[pos] = t;
          if (fill(pos + 1)) return true;
        }
        return false;
      };
      if (decl.arity == 0) {
        atoms.push_back(atom);
        bool done = build(remaining - 1);
        atoms.pop_back();
        if (done) return true;
        continue;
      }
      if (fill(0)) return true;
    }
    return false;
  };

  build(options.max_atoms);
  result.candidates_examined = candidates.value() - candidates_before;
  if (result.exists) VQDR_COUNTER_INC("rewrite.found");
  return result;
}

}  // namespace vqdr
