// E-4.5: the Theorem 4.5 reduction — construction size of V and Q_{H,F}
// as |H| grows, view application on monoidal graphs, and the bounded
// monoidal-function search (the undecidability boundary made tangible:
// the search explodes in the element bound).

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "cq/matcher.h"
#include "reductions/monoid.h"

namespace vqdr {
namespace {

WordProblem ChainProblem(int n) {
  // a1*a1 = a2, a2*a2 = a3, …  F: a1 = an.
  WordProblem p;
  for (int i = 1; i < n; ++i) {
    p.hypotheses.push_back({"a" + std::to_string(i), "a" + std::to_string(i),
                            "a" + std::to_string(i + 1)});
  }
  p.lhs = "a1";
  p.rhs = "a" + std::to_string(n);
  return p;
}

void BM_MonoidQueryConstruction(benchmark::State& state) {
  WordProblem problem = ChainProblem(static_cast<int>(state.range(0)));
  std::size_t atoms = 0;
  for (auto _ : state) {
    UnionQuery q = MonoidQuery(problem, /*use_equality=*/false);
    atoms = 0;
    for (const ConjunctiveQuery& d : q.disjuncts()) atoms += d.atoms().size();
    benchmark::DoNotOptimize(q);
  }
  state.counters["H"] = static_cast<double>(state.range(0) - 1);
  state.counters["query_atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_MonoidQueryConstruction)->DenseRange(2, 10)
    ->Unit(benchmark::kMicrosecond);

void BM_MonoidViewApplication(benchmark::State& state) {
  // Apply the fixed view set to the graph of Z_n (cyclic group).
  int n = static_cast<int>(state.range(0));
  Instance d(MonoidSchema());
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      d.AddFact("R", Tuple{Value(a + 1), Value(b + 1),
                           Value((a + b) % n + 1)});
    }
  }
  d.GetMutable("p1").SetBool(true);
  for (bool use_equality : {false}) {
    ViewSet views = MonoidViews(use_equality);
    for (auto _ : state) {
      benchmark::DoNotOptimize(views.Apply(d));
    }
  }
  state.counters["group_order"] = static_cast<double>(n);
}
BENCHMARK(BM_MonoidViewApplication)->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond);

void BM_MonoidalFunctionSearch(benchmark::State& state) {
  // Bounded search on a non-implication: counterexample found quickly at
  // size 2, but the table space is |X|^(|X|²).
  WordProblem commutativity;
  commutativity.hypotheses = {{"a", "b", "c"}, {"b", "a", "d"}};
  commutativity.lhs = "c";
  commutativity.rhs = "d";
  int bound = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SearchMonoidalCounterexample(commutativity, bound));
  }
}
BENCHMARK(BM_MonoidalFunctionSearch)->DenseRange(1, 3)
    ->Unit(benchmark::kMicrosecond);

void BM_MonoidalFunctionSearchExhaustive(benchmark::State& state) {
  // An implication that HOLDS: the search must sweep the entire space —
  // the exponential face of the word problem.
  WordProblem functional;
  functional.hypotheses = {{"a", "b", "c"}, {"a", "b", "d"}};
  functional.lhs = "c";
  functional.rhs = "d";
  int bound = static_cast<int>(state.range(0));
  std::uint64_t monoidal = 0;
  for (auto _ : state) {
    MonoidalSearchResult result =
        SearchMonoidalCounterexample(functional, bound);
    monoidal = result.monoidal_functions;
    benchmark::DoNotOptimize(result);
  }
  state.counters["monoidal_functions"] = static_cast<double>(monoidal);
}
BENCHMARK(BM_MonoidalFunctionSearchExhaustive)->DenseRange(1, 3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("monoid");
