file(REMOVE_RECURSE
  "CMakeFiles/vqdr_base.dir/check.cc.o"
  "CMakeFiles/vqdr_base.dir/check.cc.o.d"
  "CMakeFiles/vqdr_base.dir/string_util.cc.o"
  "CMakeFiles/vqdr_base.dir/string_util.cc.o.d"
  "libvqdr_base.a"
  "libvqdr_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqdr_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
