#ifndef VQDR_MEMO_STORE_H_
#define VQDR_MEMO_STORE_H_

#ifdef VQDR_MEMO_DISABLED
#error "memo/store.h must not be included when VQDR_MEMO is OFF; \
include memo/memo.h and guard call sites with #ifndef VQDR_MEMO_DISABLED."
#endif

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <typeinfo>
#include <unordered_map>
#include <utility>
#include <vector>

#include "memo/memo.h"

namespace vqdr::memo {

/// Sharded, thread-safe, size-bounded (per-shard LRU) map from string keys to
/// immutable type-erased values.
///
/// Design notes:
///  - Values are stored as shared_ptr<const void> plus their type_info, so one
///    store serves heterogeneous result types; Get<T> with the wrong T is a
///    miss, never a reinterpretation.
///  - Entries are immutable once installed and handed out by shared_ptr, so a
///    hit stays valid even if the entry is evicted concurrently.
///  - Put is first-install-wins for the same type: concurrent computations of
///    the same key are deterministic (all callers computed the same value from
///    the same key), so whichever install lands first is kept and the rest are
///    dropped. A Put under an existing key with a *different* type replaces
///    the entry — leaving it would poison the slot forever (every Get of
///    either type misses while every Put is dropped).
///  - Capacity is accounted globally (effective capacity >= requested, never
///    floored away by sharding); eviction is least-recently-used within the
///    inserting shard. Concurrent inserts into distinct shards may transiently
///    overshoot the bound by at most shard_count - 1 entries.
class Store {
 public:
  static constexpr std::size_t kDefaultShards = 8;

  explicit Store(std::size_t capacity, std::size_t shards = kDefaultShards);

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Returns the cached value for `key` if present with type T, else nullptr.
  /// A present-but-differently-typed entry counts as a miss.
  template <typename T>
  std::shared_ptr<const T> Get(const std::string& key) {
    std::shared_ptr<const void> erased = GetErased(key, typeid(T));
    return std::static_pointer_cast<const T>(erased);
  }

  /// Installs `value` under `key` unless the key is already present with the
  /// same type; a differently-typed occupant is replaced.
  template <typename T>
  void Put(const std::string& key, T value) {
    PutErased(key, std::make_shared<const T>(std::move(value)), typeid(T));
  }

  StatsSnapshot Stats() const;
  void Clear();
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;

  /// One type-erased entry, as exported for snapshotting (DESIGN.md §14).
  struct ErasedEntry {
    std::string key;
    std::shared_ptr<const void> value;
    const std::type_info* type = nullptr;
  };

  /// A consistent-per-shard copy of every entry, ordered least-recently-used
  /// first within each shard — re-installing in this order reproduces the
  /// recency order, so a restored store evicts the same victims.
  std::vector<ErasedEntry> ExportEntries() const;

  /// Snapshot-restore entry point: same semantics as Put (first install wins
  /// within a type, cross-type replaces), without needing the concrete T.
  void InstallErased(const std::string& key,
                     std::shared_ptr<const void> value,
                     const std::type_info& type) {
    PutErased(key, std::move(value), type);
  }

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    const std::type_info* type = nullptr;
    std::list<std::string>::iterator lru_it;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
    // Front = most recently used; holds the same keys as `map`.
    std::list<std::string> lru;
  };

  std::shared_ptr<const void> GetErased(const std::string& key,
                                        const std::type_info& type);
  void PutErased(const std::string& key, std::shared_ptr<const void> value,
                 const std::type_info& type);
  Shard& ShardFor(const std::string& key);

  std::size_t capacity_;
  std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;

  // Global entry count for the capacity bound; relaxed is fine because every
  // mutation happens under some shard lock and the bound tolerates the
  // documented transient overshoot.
  std::atomic<std::size_t> total_entries_{0};

  // Global monotone counters, relaxed: Stats() is a diagnostic snapshot.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> installs_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// Parses a VQDR_MEMO_CAPACITY-style value. Returns 0 for anything invalid —
/// empty, trailing garbage, zero, or an out-of-range magnitude (strtoull
/// clamps overflow to ULLONG_MAX with ERANGE; accepting that would make the
/// store effectively unbounded). Exposed for the regression tests.
std::size_t ParseCapacityEnvValue(const char* raw);

}  // namespace vqdr::memo

#endif  // VQDR_MEMO_STORE_H_
