// Regression battery for the canonicalization seam — the code that moves
// between queries, frozen instances, and back (Freeze, InstanceToQuery, the
// V-inverse chase) plus MinimizeCq's order-(in)dependence. The memo
// subsystem keys on these functions, so a naming collision or a
// constant/fresh-value alias here would silently conflate distinct cache
// entries; each test pins one such hazard.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "base/rng.h"
#include "chase/chain.h"
#include "chase/view_inverse.h"
#include "cq/canonical.h"
#include "cq/containment.h"
#include "cq/fingerprint.h"
#include "cq/matcher.h"
#include "cq/minimize.h"
#include "cq/parser.h"
#include "gen/random_query.h"
#include "gen/workloads.h"
#include "views/view_set.h"

namespace vqdr {
namespace {

ConjunctiveQuery Cq(const std::string& text, NamePool& pool) {
  auto q = ParseCq(text, pool);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return q.value();
}

// Rebuilds q with its atoms in a seeded-random order.
ConjunctiveQuery ShuffleAtoms(const ConjunctiveQuery& q, Rng& rng) {
  std::vector<Atom> atoms = q.atoms();
  for (std::size_t i = atoms.size(); i > 1; --i) {
    std::swap(atoms[i - 1], atoms[rng.Below(i)]);
  }
  ConjunctiveQuery out(q.head_name(), q.head_terms());
  for (const Atom& a : atoms) out.AddAtom(a);
  for (const Atom& a : q.negated_atoms()) out.AddNegatedAtom(a);
  for (const TermComparison& c : q.equalities()) {
    out.AddEquality(c.lhs, c.rhs);
  }
  for (const TermComparison& c : q.disequalities()) {
    out.AddDisequality(c.lhs, c.rhs);
  }
  return out;
}

// --- S1: InstanceToQuery variable naming ----------------------------------

TEST(InstanceToQuery, NegativeAndPositiveIdsGetDistinctVariables) {
  // Value ids -3 and 2 must not land on the same variable name (and neither
  // may clash with ids 3 / -2). The naming scheme is "v<id>" for ids >= 0
  // and "vn<-(id+1)>" for ids < 0.
  Instance db(Schema{{"E", 2}});
  db.AddFact("E", {Value(-3), Value(2)});
  db.AddFact("E", {Value(3), Value(-2)});
  ConjunctiveQuery q =
      InstanceToQuery(db, /*head=*/{Value(2)}, /*constants=*/{});

  std::set<std::string> vars;
  for (const Atom& a : q.atoms()) {
    for (const Term& t : a.args) {
      ASSERT_TRUE(t.is_var());
      vars.insert(t.var());
    }
  }
  // Four distinct values → four distinct variables.
  EXPECT_EQ(vars.size(), 4u) << q.ToString();
  EXPECT_TRUE(vars.count("v2") > 0);
  EXPECT_TRUE(vars.count("v3") > 0);
  EXPECT_TRUE(vars.count("vn1") > 0);  // id -2
  EXPECT_TRUE(vars.count("vn2") > 0);  // id -3

  // The identity assignment satisfies the query on db: the head value 2 is
  // among the answers.
  Relation answers = EvaluateCq(q, db);
  EXPECT_TRUE(answers.Contains({Value(2)})) << q.ToString();
}

TEST(InstanceToQuery, GeneratedVariableCannotCaptureAConstantNamedV1) {
  // A parser constant whose *interned name* is "v1" is a Value like any
  // other; InstanceToQuery emits constants as Term::Const (compared by
  // value id, never by name), so a generated variable "v1" next to it is a
  // different term entirely.
  NamePool pool;
  pool.Intern("padding");          // shifts the next id to 2
  Value c = pool.Intern("v1");
  ASSERT_EQ(c.id, 2);

  Instance db(Schema{{"E", 2}});
  db.AddFact("E", {Value(1), c});  // Value(1) free → variable named "v1"
  ConjunctiveQuery q = InstanceToQuery(db, /*head=*/{Value(1)},
                                       /*constants=*/{c});
  ASSERT_EQ(q.atoms().size(), 1u);
  const Atom& atom = q.atoms()[0];
  ASSERT_TRUE(atom.args[0].is_var());
  EXPECT_EQ(atom.args[0].var(), "v1");  // same spelling as c's pool name...
  ASSERT_TRUE(atom.args[1].is_const());
  EXPECT_EQ(atom.args[1].constant(), c);  // ...but c stays a constant term

  // Semantics: Q(x) :- E(x, 2). On a database where E = {(5, 2), (6, 3)}
  // only 5 answers — the constant constrains, the variable binds.
  Instance other(Schema{{"E", 2}});
  other.AddFact("E", {Value(5), c});
  other.AddFact("E", {Value(6), Value(3)});
  Relation answers = EvaluateCq(q, other);
  EXPECT_TRUE(answers.Contains({Value(5)}));
  EXPECT_FALSE(answers.Contains({Value(6)}));
}

TEST(InstanceToQuery, RoundTripThroughFreezeIsEquivalent) {
  // Freeze then InstanceToQuery recovers a query equivalent to the original
  // (the canonical-instance correspondence the memo fingerprints rely on).
  ConjunctiveQuery q = ChainQuery(3);
  ValueFactory factory;
  FrozenQuery frozen = Freeze(q, factory);
  ConjunctiveQuery back = InstanceToQuery(frozen.instance, frozen.frozen_head,
                                          /*constants=*/{}, q.head_name());
  EXPECT_TRUE(CqEquivalent(q, back))
      << q.ToString() << " vs " << back.ToString();
  EXPECT_EQ(CanonicalCqFingerprint(q), CanonicalCqFingerprint(back));
}

// --- S2: constants vs fresh values across Freeze / the chase --------------

TEST(Freeze, AdvancesFactoryPastHeadOnlyConstants) {
  // The constant 7 appears *only* in the head. Freeze must still advance the
  // factory past it, or the first frozen variable would alias it.
  ConjunctiveQuery q("Q", {Term::Const(Value(7)), Term::Var("x")});
  Atom body;
  body.predicate = "R";
  body.args = {Term::Var("x")};
  q.AddAtom(body);

  ValueFactory factory;
  FrozenQuery frozen = Freeze(q, factory);
  for (const auto& [var, value] : frozen.var_to_value) {
    EXPECT_NE(value, Value(7)) << "frozen " << var << " aliases the constant";
  }
  ASSERT_EQ(frozen.frozen_head.size(), 2u);
  EXPECT_EQ(frozen.frozen_head[0], Value(7));
  EXPECT_NE(frozen.frozen_head[1], Value(7));
}

TEST(ViewInverse, FreshValuesNeverCollideWithViewDefinitionConstants) {
  // V2's body mentions the constant 15, which appears nowhere in `base` or
  // `s_prime`. Chasing ten V1 tuples mints at least ten fresh values; if the
  // factory were advanced only past adom(base) ∪ adom(s_prime), value 15
  // would be minted as a "fresh" null and silently alias the constant.
  ConjunctiveQuery v1("V1", {Term::Var("x")});
  Atom r;
  r.predicate = "R";
  r.args = {Term::Var("x"), Term::Var("y")};
  v1.AddAtom(r);
  ConjunctiveQuery v2("V2", {Term::Var("x")});
  Atom s;
  s.predicate = "S";
  s.args = {Term::Var("x"), Term::Const(Value(15))};
  v2.AddAtom(s);
  ViewSet views;
  views.Add("V1", Query::FromCq(v1));
  views.Add("V2", Query::FromCq(v2));

  Instance base(Schema{{"R", 2}, {"S", 2}});
  Instance s_prime(views.OutputSchema());
  for (int i = 1; i <= 10; ++i) s_prime.AddFact("V1", {Value(i)});

  ValueFactory factory;
  Instance result = ViewInverse(views, base, s_prime, factory);

  // Every R-fact is (head value, fresh null); no null may equal 15.
  for (const Tuple& fact : result.Get("R").tuples()) {
    ASSERT_EQ(fact.size(), 2u);
    EXPECT_NE(fact[1], Value(15))
        << "fresh chase value aliases the view constant 15";
  }
  EXPECT_EQ(result.Get("R").size(), 10u);
}

TEST(ChaseChain, LevelZeroFreshValuesAvoidViewConstants) {
  // The query has no constants; the view body carries the constant 2. At
  // level 0 the chain freezes Q — those frozen values must already steer
  // clear of every view constant, or [Q]'s nulls alias a domain constant in
  // the very instances the determinacy verdict is computed from.
  ConjunctiveQuery view("V", {Term::Var("x")});
  Atom e;
  e.predicate = "E";
  e.args = {Term::Var("x"), Term::Const(Value(2))};
  view.AddAtom(e);
  ViewSet views;
  views.Add("V", Query::FromCq(view));

  NamePool pool;
  ConjunctiveQuery q = Cq("Q(x) :- E(x, y)", pool);
  ValueFactory factory;
  ChaseChain chain = BuildChaseChain(views, q, /*levels=*/1, factory);
  ASSERT_EQ(chain.outcome, guard::Outcome::kComplete);
  for (const auto& [var, value] : chain.frozen_query.var_to_value) {
    EXPECT_NE(value, Value(2))
        << "level-0 frozen " << var << " aliases the view constant";
  }
}

// --- S3: MinimizeCq order-independence up to isomorphism ------------------

TEST(MinimizeCq, ShuffledAndRenamedInputsYieldIsomorphicCores) {
  // Cores are unique up to isomorphism, so whatever order MinimizeCq tries
  // removals in, two isomorphic presentations of the same query must land on
  // cores of equal size that are equivalent and share a canonical
  // fingerprint. ~60 seeds of random CQs, each against a shuffled+renamed
  // copy of itself.
  RandomCqOptions opts;
  opts.max_atoms = 5;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed);
    ConjunctiveQuery q = RandomCq(rng, opts);
    ConjunctiveQuery variant = ShuffleAtoms(q, rng).RenameVariables(
        [](const std::string& v) { return "s3_" + v; });

    ConjunctiveQuery core_a = MinimizeCq(q);
    ConjunctiveQuery core_b = MinimizeCq(variant);
    EXPECT_EQ(core_a.atoms().size(), core_b.atoms().size())
        << "seed " << seed << ": " << core_a.ToString() << " vs "
        << core_b.ToString();
    EXPECT_TRUE(CqEquivalent(core_a, core_b)) << "seed " << seed;
    EXPECT_TRUE(CqEquivalent(core_a, q)) << "seed " << seed;
    EXPECT_EQ(CanonicalCqFingerprint(core_a), CanonicalCqFingerprint(core_b))
        << "seed " << seed << ": cores not isomorphic: " << core_a.ToString()
        << " vs " << core_b.ToString();
  }
}

TEST(MinimizeCq, CoreOfStarIsSingleAtomRegardlessOfPresentation) {
  ConjunctiveQuery star = StarQuery(4);
  Rng rng(99);
  for (int round = 0; round < 5; ++round) {
    ConjunctiveQuery shuffled = ShuffleAtoms(star, rng);
    ConjunctiveQuery core = MinimizeCq(shuffled);
    EXPECT_EQ(core.atoms().size(), 1u) << core.ToString();
    EXPECT_TRUE(CqEquivalent(core, star));
  }
}

}  // namespace
}  // namespace vqdr
