// Service-layer request latency: the full vqdr-serve path (parse → admit →
// pool dispatch → engine → serialize) through Service::HandleLine, measured
// in-process so the socket transport is out of the picture. The headline
// counter `overhead_vs_direct` on the determinacy benchmark is served wall
// time over a direct engine call on the same inputs through the same result
// builders — the price of admission control, budget wiring, and dispatch.
// Memoization is off here so both sides pay the real engine cost and the
// ratio is apples-to-apples. The rejection benchmarks bound the fast-path
// latency of backpressure: an overloaded client learns its fate in
// microseconds, not after queueing.

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <string>

#include "bench_json.h"

#include "core/determinacy.h"
#include "guard/budget.h"
#include "svc/proto.h"
#include "svc/service.h"

namespace vqdr::svc {
namespace {

constexpr const char* kDeterminacyLine =
    "{\"op\":\"determinacy\",\"schema\":\"E/2\","
    "\"views\":[\"V(x,z) :- E(x,y), E(y,z)\"],"
    "\"query\":\"Q(x,z) :- E(x,y), E(y,z)\"}";

constexpr const char* kContainmentLine =
    "{\"op\":\"containment\","
    "\"q1\":\"Q(x,z) :- E(x,y), E(y,z), E(z,w)\","
    "\"q2\":\"Q(x,z) :- E(x,y), E(y,z)\"}";

double SecondsPerRun(const std::function<void()>& run) {
  auto start = std::chrono::steady_clock::now();
  run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

ServiceOptions BenchOptions() {
  ServiceOptions options;
  options.threads = 1;
  options.enable_memo = false;  // both sides pay full engine cost
  return options;
}

void BM_SvcParseRequest(benchmark::State& state) {
  for (auto _ : state) {
    StatusOr<Request> req = ParseRequest(kDeterminacyLine);
    benchmark::DoNotOptimize(req);
  }
}
BENCHMARK(BM_SvcParseRequest)->Unit(benchmark::kMicrosecond);

void BM_SvcHandleHealth(benchmark::State& state) {
  // Inline control op: the dispatch floor with no admission or pool hop.
  Service service(BenchOptions());
  for (auto _ : state) {
    std::string r = service.HandleLine("{\"op\":\"health\"}");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SvcHandleHealth)->Unit(benchmark::kMicrosecond);

void BM_SvcHandleDeterminacy(benchmark::State& state) {
  Service service(BenchOptions());

  // Direct engine reference on the same inputs through the same builders.
  Scenario sc;
  Status built = BuildScenario(
      "E/2", {"V(x,z) :- E(x,y), E(y,z)"}, "Q(x,z) :- E(x,y), E(y,z)", &sc);
  if (!built.ok()) {
    state.SkipWithError("scenario build failed");
    return;
  }
  // Warm both paths before calibrating — the first calls pay one-time
  // allocator and pool costs that would skew whichever side runs first.
  constexpr int kCalibrationRuns = 50;
  auto direct_run = [&] {
    for (int i = 0; i < kCalibrationRuns; ++i) {
      guard::Budget budget;
      UnrestrictedDeterminacyResult r =
          DecideUnrestrictedDeterminacy(sc.views, *sc.query, &budget);
      benchmark::DoNotOptimize(r);
    }
  };
  direct_run();
  for (int i = 0; i < kCalibrationRuns; ++i) {
    std::string r = service.HandleLine(kDeterminacyLine);
    benchmark::DoNotOptimize(r);
  }
  double direct_seconds = SecondsPerRun(direct_run);

  for (auto _ : state) {
    std::string r = service.HandleLine(kDeterminacyLine);
    benchmark::DoNotOptimize(r);
  }

  double served_seconds = SecondsPerRun([&] {
    for (int i = 0; i < kCalibrationRuns; ++i) {
      std::string r = service.HandleLine(kDeterminacyLine);
      benchmark::DoNotOptimize(r);
    }
  });
  state.counters["overhead_vs_direct"] =
      direct_seconds > 0 ? served_seconds / direct_seconds : 0.0;
}
BENCHMARK(BM_SvcHandleDeterminacy)->Unit(benchmark::kMicrosecond);

void BM_SvcHandleContainment(benchmark::State& state) {
  Service service(BenchOptions());
  for (auto _ : state) {
    std::string r = service.HandleLine(kContainmentLine);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SvcHandleContainment)->Unit(benchmark::kMicrosecond);

void BM_SvcHandleBatch(benchmark::State& state) {
  // One envelope, n determinacy items: amortizes admission across items.
  int n = static_cast<int>(state.range(0));
  std::string line =
      "{\"op\":\"batch\",\"schema\":\"E/2\",\"items\":[";
  for (int i = 0; i < n; ++i) {
    if (i > 0) line.push_back(',');
    line +=
        "{\"views\":[\"V(x,z) :- E(x,y), E(y,z)\"],"
        "\"query\":\"Q(x,z) :- E(x,y), E(y,z)\"}";
  }
  line += "]}";
  Service service(BenchOptions());
  for (auto _ : state) {
    std::string r = service.HandleLine(line);
    benchmark::DoNotOptimize(r);
  }
  state.counters["items"] = static_cast<double>(n);
}
BENCHMARK(BM_SvcHandleBatch)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_SvcOverloadRejection(benchmark::State& state) {
  // queue_limit 0: every engine request takes the structured-rejection fast
  // path. This is the latency a client sees under saturation.
  ServiceOptions options = BenchOptions();
  options.queue_limit = 0;
  Service service(options);
  for (auto _ : state) {
    std::string r = service.HandleLine(kDeterminacyLine);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SvcOverloadRejection)->Unit(benchmark::kMicrosecond);

void BM_SvcBadRequestRejection(benchmark::State& state) {
  // Malformed frame: parse failure to structured bad_request, no admission.
  Service service(BenchOptions());
  for (auto _ : state) {
    std::string r = service.HandleLine("{\"op\":");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SvcBadRequestRejection)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vqdr::svc

VQDR_BENCH_MAIN("svc");
