#include "cq/minimize.h"

#include "base/check.h"
#include "cq/containment.h"

#ifndef VQDR_MEMO_DISABLED
#include <memory>
#include <string>

#include "cq/fingerprint.h"
#include "cq/serialize.h"
#include "memo/snapshot.h"
#include "memo/store.h"
#endif

namespace vqdr {

namespace {

#ifndef VQDR_MEMO_DISABLED
// Snapshot codecs for the minimized-query caches (DESIGN.md §14). Bump the
// tag version if the CQ wire encoding ever changes.
std::string EncodeCqPayload(const ConjunctiveQuery& q) {
  wire::Encoder enc;
  EncodeCq(q, enc);
  return enc.Take();
}

std::shared_ptr<const ConjunctiveQuery> DecodeCqPayload(
    std::string_view payload) {
  wire::Decoder dec(payload);
  auto q = std::make_shared<ConjunctiveQuery>();
  if (!DecodeCq(dec, q.get()) || !dec.AtEnd()) return nullptr;
  return q;
}

std::string EncodeUcqPayload(const UnionQuery& q) {
  wire::Encoder enc;
  EncodeUcq(q, enc);
  return enc.Take();
}

std::shared_ptr<const UnionQuery> DecodeUcqPayload(std::string_view payload) {
  wire::Decoder dec(payload);
  auto q = std::make_shared<UnionQuery>();
  // A cached minimized UCQ is never empty (MinimizeUcq checks), and an
  // empty one would abort head_name() on a later hit; reject it here.
  if (!DecodeUcq(dec, q.get()) || !dec.AtEnd() || q->empty()) return nullptr;
  return q;
}

[[maybe_unused]] const bool kCqCodecRegistered =
    memo::RegisterSnapshotType<ConjunctiveQuery>("cq.v1", EncodeCqPayload,
                                                 DecodeCqPayload);
[[maybe_unused]] const bool kUcqCodecRegistered =
    memo::RegisterSnapshotType<UnionQuery>("ucq.v1", EncodeUcqPayload,
                                           DecodeUcqPayload);
#endif

// Greedy atom removal. Order-independent up to isomorphism: every
// equivalence-preserving removal sequence terminates in a core of q, and
// cores are unique up to isomorphism (Chandra–Merlin). The IsSafe skip
// cannot change that — an unsafe candidate drops a head variable's last
// positive occurrence and is never equivalent to q, so no removal sequence
// could take it anyway. canonical_seam_test.cc checks this property on
// random shuffled queries.
ConjunctiveQuery MinimizeCqImpl(const ConjunctiveQuery& q) {
  ConjunctiveQuery current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < current.atoms().size(); ++i) {
      ConjunctiveQuery candidate(current.head_name(), current.head_terms());
      for (std::size_t j = 0; j < current.atoms().size(); ++j) {
        if (j != i) candidate.AddAtom(current.atoms()[j]);
      }
      if (!candidate.IsSafe()) continue;
      // Removing an atom weakens the query (current ⊆ candidate always);
      // equivalence needs candidate ⊆ current.
      if (CqContainedIn(candidate, current)) {
        current = candidate;
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace

ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& q) {
  VQDR_CHECK(q.IsPureCq()) << "MinimizeCq requires a pure CQ";
#ifndef VQDR_MEMO_DISABLED
  if (memo::Enabled()) {
    // Exact key, not the canonical fingerprint: the minimized query keeps
    // q's concrete variable names and atom order, so isomorphic-but-distinct
    // inputs must not share an entry (byte-identical replay). Isomorphic
    // inputs still share work through the memoized containment calls inside
    // the greedy loop.
    std::string key = "cq.min|" + ExactCqKey(q);
    memo::Store& store = memo::GlobalStore();
    if (auto hit = store.Get<ConjunctiveQuery>(key)) return *hit;
    ConjunctiveQuery core = MinimizeCqImpl(q);
    store.Put(key, core);
    return core;
  }
#endif
  return MinimizeCqImpl(q);
}

namespace {

UnionQuery MinimizeUcqImpl(const UnionQuery& q) {
  // Drop disjuncts subsumed by another disjunct, keeping earlier ones.
  std::vector<ConjunctiveQuery> kept;
  for (std::size_t i = 0; i < q.disjuncts().size(); ++i) {
    const ConjunctiveQuery& candidate = q.disjuncts()[i];
    bool subsumed = false;
    for (std::size_t j = 0; j < q.disjuncts().size(); ++j) {
      if (i == j) continue;
      // Candidate is subsumed by a disjunct that is not itself dropped in
      // favour of candidate: break ties by index.
      if (CqContainedIn(candidate, q.disjuncts()[j])) {
        bool reverse = CqContainedIn(q.disjuncts()[j], candidate);
        if (!reverse || j < i) {
          subsumed = true;
          break;
        }
      }
    }
    if (!subsumed) kept.push_back(MinimizeCq(candidate));
  }
  UnionQuery result;
  for (ConjunctiveQuery& d : kept) result.AddDisjunct(std::move(d));
  VQDR_CHECK(!result.empty());
  return result;
}

}  // namespace

UnionQuery MinimizeUcq(const UnionQuery& q) {
  VQDR_CHECK(q.IsPureUcq()) << "MinimizeUcq requires a pure UCQ";
#ifndef VQDR_MEMO_DISABLED
  if (memo::Enabled()) {
    std::string key = "ucq.min|" + ExactUcqKey(q);
    memo::Store& store = memo::GlobalStore();
    if (auto hit = store.Get<UnionQuery>(key)) return *hit;
    UnionQuery minimized = MinimizeUcqImpl(q);
    store.Put(key, minimized);
    return minimized;
  }
#endif
  return MinimizeUcqImpl(q);
}

}  // namespace vqdr
