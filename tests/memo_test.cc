// Unit battery for the memo subsystem: the sharded LRU store itself, the
// canonical CQ/UCQ fingerprints it keys on, and the engine wiring — every
// memoized entry point must return byte-identical results to a cold run,
// hit the cache on the second call, and replay factory state exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "chase/chain.h"
#include "core/determinacy.h"
#include "core/report.h"
#include "cq/containment.h"
#include "cq/fingerprint.h"
#include "cq/minimize.h"
#include "cq/parser.h"
#include "gen/random_query.h"
#include "gen/workloads.h"
#include "memo/memo.h"
#include "memo/store.h"

namespace vqdr {
namespace {

ConjunctiveQuery Cq(const std::string& text, NamePool& pool) {
  auto q = ParseCq(text, pool);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return q.value();
}

// Rebuilds q with its atoms in a seeded-random order.
ConjunctiveQuery ShuffleAtoms(const ConjunctiveQuery& q, Rng& rng) {
  std::vector<Atom> atoms = q.atoms();
  for (std::size_t i = atoms.size(); i > 1; --i) {
    std::swap(atoms[i - 1], atoms[rng.Below(i)]);
  }
  ConjunctiveQuery out(q.head_name(), q.head_terms());
  for (const Atom& a : atoms) out.AddAtom(a);
  for (const Atom& a : q.negated_atoms()) out.AddNegatedAtom(a);
  for (const TermComparison& c : q.equalities()) {
    out.AddEquality(c.lhs, c.rhs);
  }
  for (const TermComparison& c : q.disequalities()) {
    out.AddDisequality(c.lhs, c.rhs);
  }
  return out;
}

// --- the store -------------------------------------------------------------

TEST(MemoStore, GetMissThenPutThenHit) {
  memo::Store store(16);
  EXPECT_EQ(store.Get<int>("k"), nullptr);
  store.Put<int>("k", 42);
  auto hit = store.Get<int>("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42);
  memo::StatsSnapshot s = store.Stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.installs, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(MemoStore, WrongTypeIsAMissNeverAReinterpretation) {
  memo::Store store(16);
  store.Put<int>("k", 7);
  EXPECT_EQ(store.Get<double>("k"), nullptr);
  auto still_there = store.Get<int>("k");
  ASSERT_NE(still_there, nullptr);
  EXPECT_EQ(*still_there, 7);
}

TEST(MemoStore, FirstInstallWins) {
  memo::Store store(16);
  store.Put<int>("k", 1);
  store.Put<int>("k", 2);
  auto hit = store.Get<int>("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  EXPECT_EQ(store.Stats().installs, 1u);
}

TEST(MemoStore, LruEvictsLeastRecentlyUsed) {
  // One shard so the LRU order is global and observable.
  memo::Store store(/*capacity=*/2, /*shards=*/1);
  store.Put<int>("a", 1);
  store.Put<int>("b", 2);
  ASSERT_NE(store.Get<int>("a"), nullptr);  // "a" becomes most-recent
  store.Put<int>("c", 3);                   // evicts "b"
  EXPECT_EQ(store.Get<int>("b"), nullptr);
  EXPECT_NE(store.Get<int>("a"), nullptr);
  EXPECT_NE(store.Get<int>("c"), nullptr);
  EXPECT_EQ(store.Stats().evictions, 1u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(MemoStore, EvictedEntriesStayValidThroughSharedPtr) {
  memo::Store store(/*capacity=*/1, /*shards=*/1);
  store.Put<std::string>("a", std::string("payload"));
  auto held = store.Get<std::string>("a");
  store.Put<std::string>("b", std::string("other"));  // evicts "a"
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, "payload");
}

TEST(MemoStore, ClearEmptiesEveryShard) {
  memo::Store store(64);
  for (int i = 0; i < 20; ++i) store.Put<int>("k" + std::to_string(i), i);
  EXPECT_EQ(store.size(), 20u);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.Get<int>("k3"), nullptr);
}

TEST(MemoStore, StatsDeltaSubtractsMonotoneFields) {
  memo::Store store(16);
  store.Put<int>("a", 1);
  memo::StatsSnapshot before = store.Stats();
  store.Get<int>("a");
  store.Get<int>("zzz");
  memo::StatsSnapshot delta = store.Stats().Delta(before);
  EXPECT_EQ(delta.hits, 1u);
  EXPECT_EQ(delta.misses, 1u);
  EXPECT_EQ(delta.installs, 0u);
  EXPECT_TRUE(delta.any());
  EXPECT_NE(delta.ToString().find("hits=1"), std::string::npos);
}

TEST(MemoEnable, ScopedEnableRestores) {
  bool was = memo::Enabled();
  {
    memo::ScopedEnable on(true);
    EXPECT_TRUE(memo::Enabled());
    EXPECT_TRUE(memo::ResolveUse(memo::MemoOptions{}));
    EXPECT_FALSE(
        memo::ResolveUse(memo::MemoOptions{memo::Use::kOff, nullptr}));
  }
  EXPECT_EQ(memo::Enabled(), was);
  memo::ScopedEnable off(false);
  EXPECT_FALSE(memo::ResolveUse(memo::MemoOptions{}));
  EXPECT_TRUE(memo::ResolveUse(memo::MemoOptions{memo::Use::kOn, nullptr}));
}

// --- canonical fingerprints ------------------------------------------------

TEST(Fingerprint, InvariantUnderRenamingShufflingAndHeadName) {
  NamePool pool;
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, z), E(z, w), E(w, y), P(z)", pool);
  auto fp = CanonicalCqFingerprint(q);
  ASSERT_TRUE(fp.has_value());

  ConjunctiveQuery renamed =
      q.RenameVariables([](const std::string& v) { return "fresh_" + v; });
  renamed.set_head_name("SomethingElse");
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    ConjunctiveQuery variant = ShuffleAtoms(renamed, rng);
    EXPECT_EQ(CanonicalCqFingerprint(variant), fp) << variant.ToString();
  }
}

TEST(Fingerprint, SeededRandomIsomorphismInvariance) {
  RandomCqOptions opts;
  opts.max_atoms = 5;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed);
    ConjunctiveQuery q = RandomCq(rng, opts);
    auto fp = CanonicalCqFingerprint(q);
    ASSERT_TRUE(fp.has_value()) << q.ToString();
    ConjunctiveQuery iso =
        ShuffleAtoms(q, rng).RenameVariables(
            [](const std::string& v) { return v + "_r"; });
    EXPECT_EQ(CanonicalCqFingerprint(iso), fp)
        << "seed " << seed << ": " << q.ToString() << " vs "
        << iso.ToString();
  }
}

TEST(Fingerprint, DistinguishesNonIsomorphicQueries) {
  EXPECT_NE(CanonicalCqFingerprint(ChainQuery(3)),
            CanonicalCqFingerprint(ChainQuery(4)));
  EXPECT_NE(CanonicalCqFingerprint(ChainQuery(3)),
            CanonicalCqFingerprint(CycleQuery(3)));
  NamePool pool;
  // Same shape, different constants.
  ConjunctiveQuery a = Cq("Q(x) :- E(x, 'alice')", pool);
  ConjunctiveQuery b = Cq("Q(x) :- E(x, 'bob')", pool);
  EXPECT_NE(CanonicalCqFingerprint(a), CanonicalCqFingerprint(b));
  EXPECT_EQ(CanonicalCqFingerprint(a), CanonicalCqFingerprint(a));
}

TEST(Fingerprint, EqualityPropagationAndDisequalityNormalization) {
  NamePool pool;
  ConjunctiveQuery direct = Cq("Q(x) :- E(x, y), P(y)", pool);
  ConjunctiveQuery via_eq = Cq("Q(x) :- E(x, z), P(y), y = z", pool);
  EXPECT_EQ(CanonicalCqFingerprint(direct), CanonicalCqFingerprint(via_eq));

  ConjunctiveQuery d1 = Cq("Q(x) :- E(x, y), x != y", pool);
  ConjunctiveQuery d2 = Cq("Q(a) :- E(a, b), b != a", pool);
  EXPECT_EQ(CanonicalCqFingerprint(d1), CanonicalCqFingerprint(d2));
  EXPECT_NE(CanonicalCqFingerprint(d1),
            CanonicalCqFingerprint(Cq("Q(x) :- E(x, y)", pool)));
}

TEST(Fingerprint, UnsatisfiableQueriesCollapsePerArity) {
  NamePool pool;
  ConjunctiveQuery u1 = Cq("Q(x) :- E(x, y), x = y, x != y", pool);
  ConjunctiveQuery u2 = Cq("Q(a) :- P(a), a != a", pool);
  auto f1 = CanonicalCqFingerprint(u1);
  auto f2 = CanonicalCqFingerprint(u2);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(*f1, "UNSAT|a1");
}

TEST(Fingerprint, NegationHasNoFingerprint) {
  NamePool pool;
  ConjunctiveQuery q = Cq("Q(x) :- E(x, y), not P(y)", pool);
  EXPECT_FALSE(CanonicalCqFingerprint(q).has_value());
}

TEST(Fingerprint, SymmetricQueriesStayDiscrete) {
  // A 6-cycle is vertex-transitive: refinement alone cannot split it, so
  // this exercises the individualization search.
  ConjunctiveQuery c6 = CycleQuery(6);
  auto fp = CanonicalCqFingerprint(c6);
  ASSERT_TRUE(fp.has_value());
  Rng rng(11);
  ConjunctiveQuery iso = ShuffleAtoms(c6, rng).RenameVariables(
      [](const std::string& v) { return "cyc" + v; });
  EXPECT_EQ(CanonicalCqFingerprint(iso), fp);
}

TEST(Fingerprint, CoreFingerprintQuotientsByEquivalence) {
  // A 3-armed star is equivalent to its 1-atom core; the plain canonical
  // fingerprints differ, the core fingerprints agree.
  ConjunctiveQuery star = StarQuery(3);
  ConjunctiveQuery one = StarQuery(1);
  EXPECT_NE(CanonicalCqFingerprint(star), CanonicalCqFingerprint(one));
  EXPECT_EQ(CoreCqFingerprint(star), CoreCqFingerprint(one));
}

TEST(Fingerprint, UcqInvariantUnderDisjunctOrderAndFalseDisjuncts) {
  NamePool pool;
  UnionQuery u1;
  u1.AddDisjunct(Cq("Q(x) :- E(x, y)", pool));
  u1.AddDisjunct(Cq("Q(x) :- P(x)", pool));
  UnionQuery u2;
  u2.AddDisjunct(Cq("Q(a) :- P(a)", pool));
  u2.AddDisjunct(Cq("Q(a) :- E(a, b)", pool));
  u2.AddDisjunct(Cq("Q(a) :- P(a), a != a", pool));  // false disjunct
  EXPECT_EQ(CanonicalUcqFingerprint(u1), CanonicalUcqFingerprint(u2));
  ASSERT_TRUE(CanonicalUcqFingerprint(u1).has_value());
}

// --- engine wiring ---------------------------------------------------------

TEST(MemoWiring, ContainmentHitsAndMatchesColdVerdict) {
  memo::Store store(256);
  CqContainmentOptions memoized;
  memoized.memo = {memo::Use::kOn, &store};

  ConjunctiveQuery q1 = ChainQuery(4);
  ConjunctiveQuery q2 = ChainQuery(3);
  bool cold12 = CqContainedIn(q1, q2);
  bool cold21 = CqContainedIn(q2, q1);

  EXPECT_EQ(CqContainedIn(q1, q2, memoized), cold12);
  EXPECT_EQ(CqContainedIn(q2, q1, memoized), cold21);
  memo::StatsSnapshot after_first = store.Stats();
  EXPECT_GE(after_first.installs, 2u);

  // Second round: same verdicts, served from the cache.
  EXPECT_EQ(CqContainedIn(q1, q2, memoized), cold12);
  EXPECT_EQ(CqContainedIn(q2, q1, memoized), cold21);
  memo::StatsSnapshot delta = store.Stats().Delta(after_first);
  EXPECT_GE(delta.hits, 2u);
  EXPECT_EQ(delta.installs, 0u);

  // Isomorphic copies hit the same entries.
  Rng rng(3);
  ConjunctiveQuery iso = ShuffleAtoms(q1, rng).RenameVariables(
      [](const std::string& v) { return v + "x"; });
  memo::StatsSnapshot before_iso = store.Stats();
  EXPECT_EQ(CqContainedIn(iso, q2, memoized), cold12);
  EXPECT_GE(store.Stats().Delta(before_iso).hits, 1u);
}

TEST(MemoWiring, GovernedContainmentCachedVerdictIsComplete) {
  memo::Store store(64);
  CqContainmentOptions options;
  options.memo = {memo::Use::kOn, &store};
  ContainmentResult cold = CqContainedInGoverned(ChainQuery(3), ChainQuery(5),
                                                 options);
  ContainmentResult warm = CqContainedInGoverned(ChainQuery(3), ChainQuery(5),
                                                 options);
  EXPECT_EQ(warm.contained, cold.contained);
  EXPECT_EQ(warm.outcome, guard::Outcome::kComplete);
}

TEST(MemoWiring, UcqContainmentHitsAcrossDisjunctOrder) {
  NamePool pool;
  memo::Store store(64);
  CqContainmentOptions options;
  options.memo = {memo::Use::kOn, &store};

  UnionQuery u1;
  u1.AddDisjunct(Cq("Q(x) :- E(x, y)", pool));
  u1.AddDisjunct(Cq("Q(x) :- P(x)", pool));
  UnionQuery u2;
  u2.AddDisjunct(Cq("Q(x) :- P(x)", pool));
  u2.AddDisjunct(Cq("Q(x) :- E(x, y)", pool));

  bool cold = UcqContainedIn(u1, u2);
  EXPECT_EQ(UcqContainedIn(u1, u2, options), cold);
  memo::StatsSnapshot before = store.Stats();
  // Same test with both sides' disjuncts reordered: same canonical key.
  EXPECT_EQ(UcqContainedIn(u2, u1, options), UcqContainedIn(u2, u1));
  EXPECT_EQ(UcqContainedIn(u1, u2, options), cold);
  EXPECT_GE(store.Stats().Delta(before).hits, 1u);
}

TEST(MemoWiring, MinimizeCqReplaysExactResult) {
  memo::ScopedEnable on(true);
  ConjunctiveQuery star = StarQuery(4);
  ConjunctiveQuery first = MinimizeCq(star);
  ConjunctiveQuery second = MinimizeCq(star);
  EXPECT_EQ(first.ToString(), second.ToString());
  memo::ScopedEnable off(false);
  ConjunctiveQuery cold = MinimizeCq(star);
  EXPECT_EQ(first.ToString(), cold.ToString());
}

TEST(MemoWiring, ChaseChainHitReplaysChainAndFactoryState) {
  ViewSet views = PathViews(2);
  ConjunctiveQuery q = ChainQuery(4);
  memo::Store store(64);

  ChaseChainOptions cold_opts;
  cold_opts.levels = 2;
  ValueFactory cold_factory;
  ChaseChain cold = BuildChaseChain(views, q, cold_opts, cold_factory);

  ChaseChainOptions memo_opts;
  memo_opts.levels = 2;
  memo_opts.memo = {memo::Use::kOn, &store};
  ValueFactory f1;
  ChaseChain warm1 = BuildChaseChain(views, q, memo_opts, f1);
  EXPECT_EQ(store.Stats().installs, 1u);
  ValueFactory f2;
  ChaseChain warm2 = BuildChaseChain(views, q, memo_opts, f2);
  EXPECT_GE(store.Stats().hits, 1u);

  for (const ChaseChain* chain : {&cold, &warm1, &warm2}) {
    ASSERT_EQ(chain->d.size(), cold.d.size());
    for (std::size_t k = 0; k < cold.d.size(); ++k) {
      EXPECT_EQ(chain->d[k], cold.d[k]);
      EXPECT_EQ(chain->s[k], cold.s[k]);
      EXPECT_EQ(chain->s_prime[k], cold.s_prime[k]);
      EXPECT_EQ(chain->d_prime[k], cold.d_prime[k]);
    }
    EXPECT_EQ(chain->frozen_query.frozen_head, cold.frozen_query.frozen_head);
    EXPECT_EQ(chain->outcome, guard::Outcome::kComplete);
  }
  // The hit advanced f2 exactly as far as the computation advanced f1.
  EXPECT_EQ(f1.next_id(), f2.next_id());
  EXPECT_EQ(f1.next_id(), cold_factory.next_id());
}

TEST(MemoWiring, DeterminacyResultReplaysByteIdentically) {
  ViewSet views = PathViews(2);
  ConjunctiveQuery q = ChainQuery(2);
  UnrestrictedDeterminacyResult cold = DecideUnrestrictedDeterminacy(views, q);

  memo::Store store(64);
  memo::MemoOptions options{memo::Use::kOn, &store};
  UnrestrictedDeterminacyResult warm1 =
      DecideUnrestrictedDeterminacy(views, q, nullptr, options);
  UnrestrictedDeterminacyResult warm2 =
      DecideUnrestrictedDeterminacy(views, q, nullptr, options);
  EXPECT_GE(store.Stats().hits, 1u);

  for (const UnrestrictedDeterminacyResult* r : {&warm1, &warm2}) {
    EXPECT_EQ(r->determined, cold.determined);
    EXPECT_EQ(r->outcome, cold.outcome);
    EXPECT_EQ(r->canonical_view_image, cold.canonical_view_image);
    EXPECT_EQ(r->chase_inverse, cold.chase_inverse);
    EXPECT_EQ(r->frozen_head, cold.frozen_head);
    ASSERT_EQ(r->canonical_rewriting.has_value(),
              cold.canonical_rewriting.has_value());
    if (cold.canonical_rewriting.has_value()) {
      EXPECT_EQ(r->canonical_rewriting->ToString(),
                cold.canonical_rewriting->ToString());
    }
  }
}

TEST(MemoWiring, ReportCarriesMemoActivityBlock) {
  memo::ScopedEnable on(true);
  ViewSet views = PathViews(2);
  ConjunctiveQuery q = ChainQuery(2);
  DeterminacyAnalysisOptions opts;
  opts.search.domain_size = 2;
  // Two runs: the second must observe cache hits and say so in the summary.
  AnalyzeDeterminacy(views, q, Schema{{"E", 2}}, opts);
  DeterminacyReport report = AnalyzeDeterminacy(views, q, Schema{{"E", 2}}, opts);
  EXPECT_TRUE(report.memo.any());
  EXPECT_GE(report.memo.hits, 1u);
  EXPECT_NE(report.Summary().find("[memo]"), std::string::npos);
}

TEST(MemoWiring, RuntimeOffMeansNoStoreTraffic) {
  memo::ScopedEnable off(false);
  memo::StatsSnapshot before = memo::GlobalStats();
  CqContainedIn(ChainQuery(3), ChainQuery(2));
  ValueFactory factory;
  BuildChaseChain(PathViews(2), ChainQuery(3), 1, factory);
  DecideUnrestrictedDeterminacy(PathViews(2), ChainQuery(2));
  memo::StatsSnapshot delta = memo::GlobalStats().Delta(before);
  EXPECT_FALSE(delta.any());
}

}  // namespace
}  // namespace vqdr
