#ifndef VQDR_SO_SO_QUERY_H_
#define VQDR_SO_SO_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "fo/formula.h"

namespace vqdr {

/// A second-order query with a single block of quantified relation
/// variables: ∃SO (existential=true) or ∀SO (existential=false) of Figure 1.
/// The matrix is first-order over the base schema plus the quantified
/// relation symbols.
struct SoQuery {
  bool existential = true;
  std::vector<RelationDecl> relation_vars;
  FoQuery matrix;

  int head_arity() const { return matrix.head_arity(); }
  std::string ToString() const;
};

/// Budget for SO evaluation: enumerating relation assignments is
/// exponential (2^(n^k) per relation variable), so the evaluator refuses
/// instances beyond the budget instead of running forever.
struct SoBudget {
  /// Max number of candidate tuples per quantified relation (n^k must not
  /// exceed this).
  std::size_t max_tuples_per_relation = 24;

  /// Max total relation assignments examined per free-variable binding.
  std::uint64_t max_assignments = 1u << 22;
};

/// Evaluates an SO query on a finite instance by enumerating relation
/// assignments over the active domain (Fagin-style semantics: quantified
/// relations range over adom(D) ∪ constants). Returns an error if the
/// budget is exceeded.
StatusOr<Relation> EvaluateSo(const SoQuery& q, const Instance& db,
                              const SoBudget& budget = SoBudget());

/// Truth of a Boolean SO query.
StatusOr<bool> SoSentenceHolds(const SoQuery& q, const Instance& db,
                               const SoBudget& budget = SoBudget());

}  // namespace vqdr

#endif  // VQDR_SO_SO_QUERY_H_
