// The pre-rewrite naive backtracking matcher, preserved verbatim as the
// differential-testing oracle for the indexed engine (DESIGN.md §12). Only
// compiled under -DVQDR_MATCHER_LEGACY=ON; release builds carry no trace of
// it. Behavioural contract: the indexed engine must reproduce this engine's
// on_match sequence byte for byte.

#ifdef VQDR_MATCHER_LEGACY

#include <string>
#include <utility>
#include <vector>

#include "cq/matcher_impl.h"

namespace vqdr::matcher_internal {

namespace {

// Counts how many argument positions of `atom` are already determined by
// `binding` (constants count as bound).
int BoundPositions(const Atom& atom, const Binding& binding) {
  int bound = 0;
  for (const Term& t : atom.args) {
    if (t.is_const() || binding.count(t.var()) > 0) ++bound;
  }
  return bound;
}

// Recursive backtracking join. `remaining` holds indices of atoms not yet
// matched.
bool MatchRec(const std::vector<Atom>& atoms, const Instance& db,
              std::vector<int>& remaining, Binding& binding,
              const std::function<bool(const Binding&)>& on_match,
              MatchStats& stats, guard::Budget* budget) {
  // One budget step per backtracking node: each node's own work is bounded
  // by the relation size, so this polls often enough for deadlines without
  // per-tuple overhead.
  if (!guard::IsComplete(guard::Check(budget))) return false;
  if (remaining.empty()) {
    ++stats.matches;
    return on_match(binding);
  }

  // Pick the most-constrained atom: maximal bound positions, then smaller
  // relation. This keeps the search close to a worst-case-optimal join on
  // the small instances the library processes.
  std::size_t best_i = 0;
  int best_bound = -1;
  std::size_t best_size = 0;
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    const Atom& atom = atoms[remaining[i]];
    int bound = BoundPositions(atom, binding);
    std::size_t size = db.Get(atom.predicate).size();
    if (bound > best_bound || (bound == best_bound && size < best_size)) {
      best_bound = bound;
      best_size = size;
      best_i = i;
    }
  }
  int atom_index = remaining[best_i];
  remaining.erase(remaining.begin() + best_i);
  const Atom& atom = atoms[atom_index];
  const Relation& rel = db.Get(atom.predicate);

  bool keep_going = true;
  // Tallied in a register-local and folded into `stats` once per level so
  // the per-tuple loop stays store-free.
  std::uint64_t attempts = 0;
  for (const Tuple& tuple : rel.tuples()) {
    ++attempts;
    // Try to extend the binding so that atom maps to this tuple.
    std::vector<std::pair<std::string, Value>> added;
    bool consistent = true;
    for (std::size_t pos = 0; pos < atom.args.size(); ++pos) {
      const Term& t = atom.args[pos];
      Value v = tuple[pos];
      if (t.is_const()) {
        if (t.constant() != v) {
          consistent = false;
          break;
        }
        continue;
      }
      auto it = binding.find(t.var());
      if (it != binding.end()) {
        if (it->second != v) {
          consistent = false;
          break;
        }
      } else {
        binding.emplace(t.var(), v);
        added.emplace_back(t.var(), v);
      }
    }
    if (consistent) {
      keep_going =
          MatchRec(atoms, db, remaining, binding, on_match, stats, budget);
    }
    for (const auto& [var, value] : added) binding.erase(var);
    if (!keep_going) break;
  }
  stats.attempts += attempts;

  remaining.insert(remaining.begin() + best_i, atom_index);
  return keep_going;
}

}  // namespace

bool LegacyMatch(const std::vector<Atom>& atoms, const Instance& db,
                 const Binding& initial,
                 const std::function<bool(const Binding&)>& on_match,
                 MatchStats& stats, guard::Budget* budget) {
  std::vector<int> remaining(atoms.size());
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    remaining[i] = static_cast<int>(i);
  }
  Binding binding = initial;
  return MatchRec(atoms, db, remaining, binding, on_match, stats, budget);
}

}  // namespace vqdr::matcher_internal

#endif  // VQDR_MATCHER_LEGACY
