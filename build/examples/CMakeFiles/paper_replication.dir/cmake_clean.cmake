file(REMOVE_RECURSE
  "CMakeFiles/paper_replication.dir/paper_replication.cpp.o"
  "CMakeFiles/paper_replication.dir/paper_replication.cpp.o.d"
  "paper_replication"
  "paper_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
