#ifndef VQDR_CQ_MATCHER_H_
#define VQDR_CQ_MATCHER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cq/conjunctive_query.h"
#include "cq/ucq.h"
#include "data/instance.h"
#include "guard/budget.h"

namespace vqdr {

/// A variable assignment (a homomorphism from query variables to dom).
using Binding = std::map<std::string, Value>;

/// Enumerates every assignment of the variables of `atoms` extending
/// `initial` under which each atom's image is a fact of `db` (i.e. every
/// homomorphism from the atom set into `db`). Invokes `on_match` per match;
/// a false return stops the enumeration. Returns true if the enumeration ran
/// to completion, false if stopped early.
///
/// This single routine powers CQ evaluation, homomorphism search between
/// instances, containment tests, and the chase.
///
/// `budget`, when non-null, is polled once per backtracking node (one step
/// per node), so a deadline or cancellation lands promptly even when the
/// join is exponential. A stopped budget aborts the enumeration with a
/// false return; callers must treat that as "no answer", not "no match".
bool ForEachMatch(const std::vector<Atom>& atoms, const Instance& db,
                  const Binding& initial,
                  const std::function<bool(const Binding&)>& on_match,
                  guard::Budget* budget = nullptr);

/// Q(D) for a safe conjunctive query (handles =, ≠ and safe negation).
/// Aborts on unsafe queries; unsatisfiable queries evaluate to empty.
Relation EvaluateCq(const ConjunctiveQuery& q, const Instance& db);

/// Q(D) for a safe UCQ: union of the disjuncts' answers.
Relation EvaluateUcq(const UnionQuery& q, const Instance& db);

/// True iff `tuple` ∈ Q(D). For Boolean queries pass the empty tuple.
/// With a non-null `budget` that stops mid-match, the return value is
/// meaningless — check budget->Stopped() before trusting it.
bool CqAnswerContains(const ConjunctiveQuery& q, const Instance& db,
                      const Tuple& tuple, guard::Budget* budget = nullptr);

/// Witness-returning variant: on a true return, `*witness` holds the full
/// homomorphism (over the variables of q.PropagateEqualities()) that maps
/// the query into db with head image `tuple` — the certificate the explain
/// layer records and replays. Untouched on a false return.
bool CqAnswerContains(const ConjunctiveQuery& q, const Instance& db,
                      const Tuple& tuple, guard::Budget* budget,
                      Binding* witness);

/// True iff the Boolean query is satisfied (head arity must be 0).
bool CqHolds(const ConjunctiveQuery& q, const Instance& db);

}  // namespace vqdr

#endif  // VQDR_CQ_MATCHER_H_
