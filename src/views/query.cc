#include "views/query.h"

#include "base/check.h"
#include "cq/matcher.h"
#include "fo/evaluator.h"

namespace vqdr {

Query Query::FromDatalog(DatalogProgram program, std::string output) {
  int arity = -1;
  for (const DatalogRule& r : program.rules()) {
    if (r.head.predicate == output) arity = r.head.arity();
  }
  VQDR_CHECK_GE(arity, 0) << "datalog output predicate " << output
                          << " has no rules";
  DatalogQuery dq;
  dq.program = std::move(program);
  dq.output = std::move(output);
  dq.arity = arity;
  return Query(std::move(dq));
}

Query Query::FromFunction(int arity,
                          std::function<Relation(const Instance&)> fn,
                          std::string description) {
  VQDR_CHECK_GE(arity, 0);
  VQDR_CHECK(fn != nullptr);
  ComputableQuery cq;
  cq.arity = arity;
  cq.fn = std::move(fn);
  cq.description = std::move(description);
  return Query(std::move(cq));
}

Query::Language Query::language() const {
  if (std::holds_alternative<ConjunctiveQuery>(impl_)) return Language::kCq;
  if (std::holds_alternative<UnionQuery>(impl_)) return Language::kUcq;
  if (std::holds_alternative<FoQuery>(impl_)) return Language::kFo;
  if (std::holds_alternative<ComputableQuery>(impl_)) {
    return Language::kComputable;
  }
  return Language::kDatalog;
}

int Query::arity() const {
  if (const auto* cq = std::get_if<ConjunctiveQuery>(&impl_)) {
    return cq->head_arity();
  }
  if (const auto* ucq = std::get_if<UnionQuery>(&impl_)) {
    return ucq->head_arity();
  }
  if (const auto* fo = std::get_if<FoQuery>(&impl_)) return fo->head_arity();
  if (const auto* c = std::get_if<ComputableQuery>(&impl_)) return c->arity;
  return std::get<DatalogQuery>(impl_).arity;
}

Relation Query::Eval(const Instance& db) const {
  if (const auto* cq = std::get_if<ConjunctiveQuery>(&impl_)) {
    return EvaluateCq(*cq, db);
  }
  if (const auto* ucq = std::get_if<UnionQuery>(&impl_)) {
    return EvaluateUcq(*ucq, db);
  }
  if (const auto* fo = std::get_if<FoQuery>(&impl_)) {
    return EvaluateFo(*fo, db);
  }
  if (const auto* c = std::get_if<ComputableQuery>(&impl_)) {
    Relation answer = c->fn(db);
    VQDR_CHECK_EQ(answer.arity(), c->arity)
        << "computable query returned wrong arity";
    return answer;
  }
  const DatalogQuery& dq = std::get<DatalogQuery>(impl_);
  StatusOr<Relation> result = dq.program.Query(db, dq.output);
  VQDR_CHECK(result.ok()) << "datalog evaluation failed: "
                          << result.status().message();
  return std::move(result).value();
}

namespace {

std::string CqFlavour(const ConjunctiveQuery& q, const std::string& base) {
  std::string f = base;
  if (q.UsesEquality()) f += "=";
  if (q.UsesDisequality()) f += "!=";
  if (q.UsesNegation()) f += "not";
  return f;
}

}  // namespace

std::string Query::Flavour() const {
  if (const auto* cq = std::get_if<ConjunctiveQuery>(&impl_)) {
    return CqFlavour(*cq, "CQ");
  }
  if (const auto* ucq = std::get_if<UnionQuery>(&impl_)) {
    std::string worst = "UCQ";
    for (const ConjunctiveQuery& d : ucq->disjuncts()) {
      std::string f = CqFlavour(d, "UCQ");
      if (f.size() > worst.size()) worst = f;
    }
    return worst;
  }
  if (const auto* fo = std::get_if<FoQuery>(&impl_)) {
    return fo->formula->IsExistential() ? "existFO" : "FO";
  }
  if (std::holds_alternative<ComputableQuery>(impl_)) return "computable";
  const DatalogQuery& dq = std::get<DatalogQuery>(impl_);
  return dq.program.IsPositive() ? "Datalog" : "DatalogNot";
}

bool Query::IsSyntacticallyMonotone() const {
  if (const auto* cq = std::get_if<ConjunctiveQuery>(&impl_)) {
    return !cq->UsesNegation() && !cq->UsesDisequality();
  }
  if (const auto* ucq = std::get_if<UnionQuery>(&impl_)) {
    for (const ConjunctiveQuery& d : ucq->disjuncts()) {
      if (d.UsesNegation() || d.UsesDisequality()) return false;
    }
    return true;
  }
  if (std::holds_alternative<FoQuery>(impl_)) return false;  // conservative
  if (std::holds_alternative<ComputableQuery>(impl_)) return false;
  const DatalogQuery& dq = std::get<DatalogQuery>(impl_);
  if (!dq.program.IsPositive()) return false;
  for (const DatalogRule& r : dq.program.rules()) {
    if (!r.disequalities.empty()) return false;
  }
  return true;
}

bool Query::IsExistential() const {
  if (const auto* cq = std::get_if<ConjunctiveQuery>(&impl_)) {
    return !cq->UsesNegation();
  }
  if (const auto* ucq = std::get_if<UnionQuery>(&impl_)) {
    for (const ConjunctiveQuery& d : ucq->disjuncts()) {
      if (d.UsesNegation()) return false;
    }
    return true;
  }
  if (const auto* fo = std::get_if<FoQuery>(&impl_)) {
    return fo->formula->IsExistential();
  }
  return false;  // Datalog / computable: conservative
}

const ConjunctiveQuery& Query::AsCq() const {
  const auto* cq = std::get_if<ConjunctiveQuery>(&impl_);
  VQDR_CHECK(cq != nullptr) << "query is not a CQ";
  return *cq;
}

const UnionQuery& Query::AsUcq() const {
  const auto* ucq = std::get_if<UnionQuery>(&impl_);
  VQDR_CHECK(ucq != nullptr) << "query is not a UCQ";
  return *ucq;
}

const FoQuery& Query::AsFo() const {
  const auto* fo = std::get_if<FoQuery>(&impl_);
  VQDR_CHECK(fo != nullptr) << "query is not FO";
  return *fo;
}

const DatalogProgram& Query::AsDatalog() const {
  const auto* dq = std::get_if<DatalogQuery>(&impl_);
  VQDR_CHECK(dq != nullptr) << "query is not Datalog";
  return dq->program;
}

const std::string& Query::DatalogOutput() const {
  const auto* dq = std::get_if<DatalogQuery>(&impl_);
  VQDR_CHECK(dq != nullptr) << "query is not Datalog";
  return dq->output;
}

std::string Query::ToString() const {
  if (const auto* cq = std::get_if<ConjunctiveQuery>(&impl_)) {
    return cq->ToString();
  }
  if (const auto* ucq = std::get_if<UnionQuery>(&impl_)) {
    return ucq->ToString();
  }
  if (const auto* fo = std::get_if<FoQuery>(&impl_)) return fo->ToString();
  if (const auto* c = std::get_if<ComputableQuery>(&impl_)) {
    return "computable[" + c->description + "]";
  }
  const DatalogQuery& dq = std::get<DatalogQuery>(impl_);
  return "datalog[" + dq.output + "]:\n" + dq.program.ToString();
}

}  // namespace vqdr
