file(REMOVE_RECURSE
  "CMakeFiles/test_reference_rewriter.dir/reference_rewriter_test.cc.o"
  "CMakeFiles/test_reference_rewriter.dir/reference_rewriter_test.cc.o.d"
  "test_reference_rewriter"
  "test_reference_rewriter.pdb"
  "test_reference_rewriter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference_rewriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
