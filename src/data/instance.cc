#include "data/instance.h"

#include <algorithm>
#include <sstream>

#include "base/check.h"

namespace vqdr {

namespace {

// Shared empty relations per arity, so Get() can return a reference for
// unpopulated symbols without mutating the instance.
const Relation& EmptyRelationOfArity(int arity) {
  static const auto* cache = new std::map<int, Relation>();
  auto* mutable_cache = const_cast<std::map<int, Relation>*>(cache);
  auto it = mutable_cache->find(arity);
  if (it == mutable_cache->end()) {
    it = mutable_cache->emplace(arity, Relation(arity)).first;
  }
  return it->second;
}

}  // namespace

Instance::Instance(Schema schema) : schema_(std::move(schema)) {}

const Relation& Instance::Get(const std::string& name) const {
  auto arity = schema_.ArityOf(name);
  VQDR_CHECK(arity.has_value()) << "unknown relation " << name;
  auto it = relations_.find(name);
  if (it == relations_.end()) return EmptyRelationOfArity(*arity);
  return it->second;
}

Relation& Instance::GetMutable(const std::string& name) {
  auto arity = schema_.ArityOf(name);
  VQDR_CHECK(arity.has_value()) << "unknown relation " << name;
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    it = relations_.emplace(name, Relation(*arity)).first;
  }
  return it->second;
}

void Instance::Set(const std::string& name, Relation relation) {
  auto arity = schema_.ArityOf(name);
  VQDR_CHECK(arity.has_value()) << "unknown relation " << name;
  VQDR_CHECK_EQ(*arity, relation.arity())
      << "arity mismatch setting relation " << name;
  relations_[name] = std::move(relation);
}

bool Instance::AddFact(const std::string& name, const Tuple& t) {
  return GetMutable(name).Insert(t);
}

bool Instance::HasFact(const std::string& name, const Tuple& t) const {
  return Get(name).Contains(t);
}

std::set<Value> Instance::ActiveDomain() const {
  std::set<Value> adom;
  for (const auto& [name, rel] : relations_) rel.CollectActiveDomain(adom);
  return adom;
}

std::int64_t Instance::MaxValueId() const {
  std::int64_t max_id = 0;
  for (const auto& [name, rel] : relations_) {
    for (const Tuple& t : rel.tuples()) {
      for (Value v : t) max_id = std::max(max_id, v.id);
    }
  }
  return max_id;
}

std::size_t Instance::TupleCount() const {
  std::size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel.size();
  return n;
}

bool Instance::Empty() const { return TupleCount() == 0; }

Instance Instance::Apply(const std::function<Value(Value)>& map) const {
  Instance result(schema_);
  for (const auto& [name, rel] : relations_) {
    result.Set(name, rel.Apply(map));
  }
  return result;
}

Instance Instance::UnionWith(const Instance& other) const {
  Instance result(schema_.UnionWith(other.schema_));
  for (const auto& [name, rel] : relations_) result.Set(name, rel);
  for (const auto& [name, rel] : other.relations_) {
    Relation& target = result.GetMutable(name);
    target = target.Union(rel);
  }
  return result;
}

bool Instance::IsSubInstanceOf(const Instance& other) const {
  for (const RelationDecl& d : schema_.decls()) {
    if (!other.schema_.Contains(d.name)) {
      if (!Get(d.name).empty()) return false;
      continue;
    }
    if (!Get(d.name).IsSubsetOf(other.Get(d.name))) return false;
  }
  return true;
}

bool Instance::IsExtendedBy(const Instance& other) const {
  if (!IsSubInstanceOf(other)) return false;
  Instance restricted = other.RestrictTo(ActiveDomain());
  // Compare over this schema (the extension may populate extra symbols only
  // with tuples using new values).
  for (const RelationDecl& d : schema_.decls()) {
    if (restricted.schema_.Contains(d.name)) {
      if (Get(d.name) != restricted.Get(d.name)) return false;
    } else if (!Get(d.name).empty()) {
      return false;
    }
  }
  return true;
}

Instance Instance::RestrictTo(const std::set<Value>& universe) const {
  Instance result(schema_);
  for (const auto& [name, rel] : relations_) {
    Relation filtered(rel.arity());
    for (const Tuple& t : rel.tuples()) {
      bool inside = true;
      for (Value v : t) {
        if (universe.find(v) == universe.end()) {
          inside = false;
          break;
        }
      }
      if (inside) filtered.Insert(t);
    }
    result.Set(name, filtered);
  }
  return result;
}

bool operator==(const Instance& a, const Instance& b) {
  Schema all = a.schema_.UnionWith(b.schema_);
  for (const RelationDecl& d : all.decls()) {
    const Relation& ra =
        a.schema_.Contains(d.name) ? a.Get(d.name) : Relation(d.arity);
    const Relation& rb =
        b.schema_.Contains(d.name) ? b.Get(d.name) : Relation(d.arity);
    if (ra != rb) return false;
  }
  return true;
}

bool operator<(const Instance& a, const Instance& b) {
  return a.ToKey() < b.ToKey();
}

std::string Instance::ToKey() const {
  std::ostringstream out;
  for (const RelationDecl& d : schema_.decls()) {
    const Relation& rel = Get(d.name);
    if (rel.empty()) continue;
    out << d.name << "=";
    for (const Tuple& t : rel.tuples()) {
      out << "(";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out << ",";
        out << t[i].id;
      }
      out << ")";
    }
    out << ";";
  }
  return out.str();
}

std::string Instance::ToString() const {
  std::ostringstream out;
  for (const RelationDecl& d : schema_.decls()) {
    out << "  " << d.name << " = " << Get(d.name).ToString() << "\n";
  }
  return out.str();
}

}  // namespace vqdr
