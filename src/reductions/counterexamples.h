#ifndef VQDR_REDUCTIONS_COUNTEREXAMPLES_H_
#define VQDR_REDUCTIONS_COUNTEREXAMPLES_H_

#include "core/finite_search.h"
#include "views/view_set.h"

namespace vqdr {

/// The paper's two explicit non-monotonicity families, packaged with their
/// witness pairs: Proposition 5.8 (UCQ views, unary everything) and
/// Proposition 5.12 (CQ≠ views). They show that no monotonic language —
/// in particular UCQ, CQ, Datalog≠ — is complete for the corresponding
/// rewritings.

struct NonMonotonicityFamily {
  Schema base;
  ViewSet views;
  Query query = Query::FromCq(ConjunctiveQuery("Q", {}));
  /// A witness pair: view images satisfy V(d1) ⊆ V(d2) while
  /// Q(d1) ⊄ Q(d2).
  MonotonicityViolation witness;
};

/// Proposition 5.8: σ = {R/1, P/1}; V1(x) = P(x) ∧ ∃y R(y),
/// V2(x) = P(x) ∨ R(x), V3(x) = R(x); Q(x) = P(x). V determines Q, yet
/// Q_V is non-monotonic: D1 = ⟨P={a,b}, R=∅⟩, D2 = ⟨P={a}, R={b}⟩.
NonMonotonicityFamily Prop58Family(NamePool& pool);

/// Proposition 5.12: σ = {R/2}; V1(x) = ∃y R(x,y)∧R(y,x),
/// V2(x) = ∃y R(x,y)∧R(y,x)∧x≠y, V3(x) = ∃y R(x,x)∧R(x,y)∧R(y,x)∧x≠y;
/// Q(x) = R(x,x). Witness: D = {(a,a)}, D' = {(a,b),(b,a)}.
NonMonotonicityFamily Prop512Family(NamePool& pool);

}  // namespace vqdr

#endif  // VQDR_REDUCTIONS_COUNTEREXAMPLES_H_
