#ifndef VQDR_CQ_CONJUNCTIVE_QUERY_H_
#define VQDR_CQ_CONJUNCTIVE_QUERY_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "cq/atom.h"
#include "data/schema.h"

namespace vqdr {

/// A conjunctive query with optional extensions:
///
///   head(x̄) :- R₁(…), …, Rₙ(…)            — CQ (Figure 1)
///   … , s = t                               — CQ=  (equality)
///   … , s != t                              — CQ≠  (disequality)
///   … , not R(…)                            — CQ¬  (safe negation)
///
/// The plain-CQ algorithms of the paper (chase, frozen bodies, unrestricted
/// determinacy) require IsPureCq(); the extended classes appear in the
/// paper's counterexamples (Theorem 4.5, Propositions 5.7/5.12).
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  /// Builds a query; `head_terms` are typically variables (constants are
  /// allowed, as in the paper's languages with access to dom values).
  ConjunctiveQuery(std::string head_name, std::vector<Term> head_terms)
      : head_name_(std::move(head_name)), head_terms_(std::move(head_terms)) {}

  const std::string& head_name() const { return head_name_; }
  void set_head_name(std::string name) { head_name_ = std::move(name); }

  const std::vector<Term>& head_terms() const { return head_terms_; }
  std::vector<Term>& mutable_head_terms() { return head_terms_; }
  int head_arity() const { return static_cast<int>(head_terms_.size()); }

  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<Atom>& negated_atoms() const { return negated_atoms_; }
  const std::vector<TermComparison>& equalities() const { return equalities_; }
  const std::vector<TermComparison>& disequalities() const {
    return disequalities_;
  }

  void AddAtom(Atom atom) { atoms_.push_back(std::move(atom)); }
  void AddNegatedAtom(Atom atom) { negated_atoms_.push_back(std::move(atom)); }
  void AddEquality(Term lhs, Term rhs) {
    equalities_.push_back({std::move(lhs), std::move(rhs)});
  }
  void AddDisequality(Term lhs, Term rhs) {
    disequalities_.push_back({std::move(lhs), std::move(rhs)});
  }

  // --- Language classification (Figure 1) ---

  /// True for plain CQ: no =, ≠, ¬.
  bool IsPureCq() const {
    return negated_atoms_.empty() && equalities_.empty() &&
           disequalities_.empty();
  }
  bool UsesEquality() const { return !equalities_.empty(); }
  bool UsesDisequality() const { return !disequalities_.empty(); }
  bool UsesNegation() const { return !negated_atoms_.empty(); }

  /// True if the query mentions constants from dom.
  bool UsesConstants() const;

  // --- Structure ---

  /// All variables, in first-occurrence order (head first, then body).
  std::vector<std::string> AllVariables() const;

  /// Variables occurring in positive body atoms.
  std::set<std::string> PositiveBodyVariables() const;

  /// All constants mentioned anywhere.
  std::set<Value> Constants() const;

  /// Safety (range restriction): every head variable, every variable of a
  /// negated atom, and every variable of a dis/equality occurs in some
  /// positive atom. Unsafe queries are rejected by the evaluator.
  bool IsSafe() const;

  /// The schema induced by the positive and negative body atoms.
  Schema BodySchema() const;

  /// A copy with every variable renamed by `rename`. Renaming must be
  /// injective on the query's variables to preserve meaning.
  ConjunctiveQuery RenameVariables(
      const std::function<std::string(const std::string&)>& rename) const;

  /// Normalizes away equalities: computes the union-find closure of the
  /// equality atoms (constants win over variables), substitutes everywhere,
  /// and drops the equalities. If two distinct constants are equated, the
  /// query is unsatisfiable; `*satisfiable` is set accordingly. Disequalities
  /// s != s make the query unsatisfiable too.
  ConjunctiveQuery PropagateEqualities(bool* satisfiable) const;

  /// "Q(x, y) :- R(x, z), not S(z), x != y".
  std::string ToString() const;

  friend bool operator==(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

 private:
  std::string head_name_ = "Q";
  std::vector<Term> head_terms_;
  std::vector<Atom> atoms_;
  std::vector<Atom> negated_atoms_;
  std::vector<TermComparison> equalities_;
  std::vector<TermComparison> disequalities_;
};

}  // namespace vqdr

#endif  // VQDR_CQ_CONJUNCTIVE_QUERY_H_
