#ifndef VQDR_DATA_INSTANCE_H_
#define VQDR_DATA_INSTANCE_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "data/relation.h"
#include "data/schema.h"

namespace vqdr {

/// A (finite) database instance over a schema: one relation per relation
/// symbol. Missing symbols read as empty relations of the schema arity, so
/// instances compare by content, not by which symbols were explicitly
/// populated.
class Instance {
 public:
  /// An empty instance over the given schema.
  explicit Instance(Schema schema = Schema());

  const Schema& schema() const { return schema_; }

  /// Read access; returns an empty relation for unpopulated symbols.
  /// The symbol must be in the schema.
  const Relation& Get(const std::string& name) const;

  /// Mutable access; creates the relation if unpopulated. The symbol must be
  /// in the schema.
  Relation& GetMutable(const std::string& name);

  /// Replaces the contents of `name` (arity-checked against the schema).
  void Set(const std::string& name, Relation relation);

  /// Inserts a fact; shorthand for GetMutable(name).Insert(t).
  bool AddFact(const std::string& name, const Tuple& t);

  /// True if the fact is present.
  bool HasFact(const std::string& name, const Tuple& t) const;

  /// The active domain adom(D): every value occurring in some tuple.
  std::set<Value> ActiveDomain() const;

  /// Largest value id occurring (0 if the instance has no values).
  std::int64_t MaxValueId() const;

  /// Total number of tuples across all relations.
  std::size_t TupleCount() const;

  /// True if every relation is empty.
  bool Empty() const;

  /// Instance with `map` applied to every value (a database homomorphism
  /// image when `map` is a homomorphism).
  Instance Apply(const std::function<Value(Value)>& map) const;

  /// Per-relation union. Schemas are unioned too.
  Instance UnionWith(const Instance& other) const;

  /// True if every fact of this instance is a fact of `other` and `other`'s
  /// schema contains this schema. (The paper's D' ⊇ D.)
  bool IsSubInstanceOf(const Instance& other) const;

  /// True if `other` is an *extension* of this instance in the paper's
  /// sense: this ⊆ other and other restricted to adom(this) equals this.
  bool IsExtendedBy(const Instance& other) const;

  /// The restriction of this instance to the given set of values: keeps only
  /// tuples whose values all lie in `universe`.
  Instance RestrictTo(const std::set<Value>& universe) const;

  /// Content equality over the union of the two schemas.
  friend bool operator==(const Instance& a, const Instance& b);
  friend bool operator!=(const Instance& a, const Instance& b) {
    return !(a == b);
  }
  friend bool operator<(const Instance& a, const Instance& b);

  /// Deterministic serialization (used for hashing view images).
  std::string ToKey() const;

  /// Multi-line human-readable rendering.
  std::string ToString() const;

 private:
  Schema schema_;
  std::map<std::string, Relation> relations_;
};

}  // namespace vqdr

#endif  // VQDR_DATA_INSTANCE_H_
