#include "fo/evaluator.h"

#include <vector>

#include "base/check.h"

namespace vqdr {

namespace {

// The quantification range: active domain plus the formula's constants.
std::vector<Value> QuantificationRange(const FoPtr& formula,
                                       const Instance& db) {
  std::set<Value> range = db.ActiveDomain();
  for (Value c : formula->Constants()) range.insert(c);
  return std::vector<Value>(range.begin(), range.end());
}

Value Resolve(const Term& t, const std::map<std::string, Value>& binding) {
  if (t.is_const()) return t.constant();
  auto it = binding.find(t.var());
  VQDR_CHECK(it != binding.end())
      << "unbound variable " << t.var() << " in FO evaluation";
  return it->second;
}

bool EvalRec(const FoFormula& f, const Instance& db,
             std::map<std::string, Value>& binding,
             const std::vector<Value>& range) {
  using Kind = FoFormula::Kind;
  switch (f.kind()) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom: {
      const Atom& atom = f.atom();
      if (!db.schema().Contains(atom.predicate)) return false;
      Tuple ground;
      ground.reserve(atom.args.size());
      for (const Term& t : atom.args) ground.push_back(Resolve(t, binding));
      return db.HasFact(atom.predicate, ground);
    }
    case Kind::kEquals:
      return Resolve(f.lhs(), binding) == Resolve(f.rhs(), binding);
    case Kind::kNot:
      return !EvalRec(*f.children()[0], db, binding, range);
    case Kind::kAnd: {
      for (const FoPtr& c : f.children()) {
        if (!EvalRec(*c, db, binding, range)) return false;
      }
      return true;
    }
    case Kind::kOr: {
      for (const FoPtr& c : f.children()) {
        if (EvalRec(*c, db, binding, range)) return true;
      }
      return false;
    }
    case Kind::kImplies:
      return !EvalRec(*f.children()[0], db, binding, range) ||
             EvalRec(*f.children()[1], db, binding, range);
    case Kind::kIff:
      return EvalRec(*f.children()[0], db, binding, range) ==
             EvalRec(*f.children()[1], db, binding, range);
    case Kind::kExists:
    case Kind::kForall: {
      bool exists = f.kind() == Kind::kExists;
      // Assign the quantified variables one at a time, recursing on the
      // remaining list via an explicit stack of positions.
      const std::vector<std::string>& vars = f.quantified_vars();
      std::function<bool(std::size_t)> loop = [&](std::size_t i) -> bool {
        if (i == vars.size()) {
          return EvalRec(*f.children()[0], db, binding, range);
        }
        // Save any outer binding of the same name.
        auto saved = binding.find(vars[i]);
        bool had = saved != binding.end();
        Value old = had ? saved->second : Value();
        for (Value v : range) {
          binding[vars[i]] = v;
          bool result = loop(i + 1);
          if (result == exists) {
            if (had) {
              binding[vars[i]] = old;
            } else {
              binding.erase(vars[i]);
            }
            return exists;
          }
        }
        if (had) {
          binding[vars[i]] = old;
        } else {
          binding.erase(vars[i]);
        }
        return !exists;
      };
      if (range.empty()) {
        // Empty range: ∃ is false, ∀ is vacuously true (unless no vars).
        if (vars.empty()) return EvalRec(*f.children()[0], db, binding, range);
        return !exists;
      }
      return loop(0);
    }
  }
  VQDR_CHECK(false) << "unreachable";
  return false;
}

}  // namespace

bool EvalFo(const FoPtr& formula, const Instance& db,
            const std::map<std::string, Value>& binding) {
  VQDR_CHECK(formula != nullptr);
  std::vector<Value> range = QuantificationRange(formula, db);
  std::map<std::string, Value> mutable_binding = binding;
  return EvalRec(*formula, db, mutable_binding, range);
}

bool FoSentenceHolds(const FoPtr& sentence, const Instance& db) {
  VQDR_CHECK(sentence->FreeVariables().empty())
      << "FoSentenceHolds on open formula " << sentence->ToString();
  return EvalFo(sentence, db, {});
}

Relation EvaluateFo(const FoQuery& q, const Instance& db) {
  VQDR_CHECK(q.formula != nullptr);
  // Every free variable of the formula must be an output variable.
  for (const std::string& v : q.formula->FreeVariables()) {
    bool found = false;
    for (const std::string& fv : q.free_vars) {
      if (fv == v) found = true;
    }
    VQDR_CHECK(found) << "free variable " << v << " not in query head";
  }

  std::vector<Value> range = QuantificationRange(q.formula, db);
  Relation result(q.head_arity());
  if (q.free_vars.empty()) {
    if (FoSentenceHolds(q.formula, db)) result.Insert(Tuple{});
    return result;
  }
  if (range.empty()) return result;

  std::map<std::string, Value> binding;
  std::function<void(std::size_t)> loop = [&](std::size_t i) {
    if (i == q.free_vars.size()) {
      std::map<std::string, Value> local = binding;
      if (EvalRec(*q.formula, db, local, range)) {
        Tuple answer;
        answer.reserve(q.free_vars.size());
        for (const std::string& v : q.free_vars) {
          answer.push_back(binding.at(v));
        }
        result.Insert(answer);
      }
      return;
    }
    for (Value v : range) {
      binding[q.free_vars[i]] = v;
      loop(i + 1);
    }
    binding.erase(q.free_vars[i]);
  };
  loop(0);
  return result;
}

}  // namespace vqdr
