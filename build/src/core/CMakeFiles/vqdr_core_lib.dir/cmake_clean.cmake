file(REMOVE_RECURSE
  "CMakeFiles/vqdr_core_lib.dir/boolean_views.cc.o"
  "CMakeFiles/vqdr_core_lib.dir/boolean_views.cc.o.d"
  "CMakeFiles/vqdr_core_lib.dir/determinacy.cc.o"
  "CMakeFiles/vqdr_core_lib.dir/determinacy.cc.o.d"
  "CMakeFiles/vqdr_core_lib.dir/finite_search.cc.o"
  "CMakeFiles/vqdr_core_lib.dir/finite_search.cc.o.d"
  "CMakeFiles/vqdr_core_lib.dir/genericity.cc.o"
  "CMakeFiles/vqdr_core_lib.dir/genericity.cc.o.d"
  "CMakeFiles/vqdr_core_lib.dir/query_answering.cc.o"
  "CMakeFiles/vqdr_core_lib.dir/query_answering.cc.o.d"
  "CMakeFiles/vqdr_core_lib.dir/reference_rewriter.cc.o"
  "CMakeFiles/vqdr_core_lib.dir/reference_rewriter.cc.o.d"
  "CMakeFiles/vqdr_core_lib.dir/report.cc.o"
  "CMakeFiles/vqdr_core_lib.dir/report.cc.o.d"
  "CMakeFiles/vqdr_core_lib.dir/rewriting.cc.o"
  "CMakeFiles/vqdr_core_lib.dir/rewriting.cc.o.d"
  "CMakeFiles/vqdr_core_lib.dir/twin_encoding.cc.o"
  "CMakeFiles/vqdr_core_lib.dir/twin_encoding.cc.o.d"
  "libvqdr_core_lib.a"
  "libvqdr_core_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqdr_core_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
