#include "fo/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace vqdr {

namespace {

enum class Tok {
  kId,
  kConst,
  kLparen,
  kRparen,
  kComma,
  kDot,
  kBang,
  kAmp,
  kPipe,
  kArrow,    // ->
  kDarrow,   // <->
  kEq,
  kNeq,
  kDefine,   // :=
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
};

StatusOr<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        ++i;
      }
      tokens.push_back({Tok::kId, std::string(text.substr(start, i - start))});
      continue;
    }
    if (c == '\'') {
      std::size_t start = ++i;
      while (i < text.size() && text[i] != '\'') ++i;
      if (i >= text.size()) return Status::Error("unterminated constant");
      tokens.push_back(
          {Tok::kConst, std::string(text.substr(start, i - start))});
      ++i;
      continue;
    }
    auto two = [&](char a, char b) {
      return i + 1 < text.size() && text[i] == a && text[i + 1] == b;
    };
    if (i + 2 < text.size() && text[i] == '<' && text[i + 1] == '-' &&
        text[i + 2] == '>') {
      tokens.push_back({Tok::kDarrow, "<->"});
      i += 3;
      continue;
    }
    if (two('-', '>')) {
      tokens.push_back({Tok::kArrow, "->"});
      i += 2;
      continue;
    }
    if (two('!', '=')) {
      tokens.push_back({Tok::kNeq, "!="});
      i += 2;
      continue;
    }
    if (two(':', '=')) {
      tokens.push_back({Tok::kDefine, ":="});
      i += 2;
      continue;
    }
    switch (c) {
      case '(':
        tokens.push_back({Tok::kLparen, "("});
        break;
      case ')':
        tokens.push_back({Tok::kRparen, ")"});
        break;
      case ',':
        tokens.push_back({Tok::kComma, ","});
        break;
      case '.':
        tokens.push_back({Tok::kDot, "."});
        break;
      case '!':
        tokens.push_back({Tok::kBang, "!"});
        break;
      case '&':
        tokens.push_back({Tok::kAmp, "&"});
        break;
      case '|':
        tokens.push_back({Tok::kPipe, "|"});
        break;
      case '=':
        tokens.push_back({Tok::kEq, "="});
        break;
      default:
        return Status::Error(std::string("unexpected character '") + c +
                             "' in formula");
    }
    ++i;
  }
  tokens.push_back({Tok::kEnd, ""});
  return tokens;
}

class FoParser {
 public:
  FoParser(std::vector<Token> tokens, NamePool& pool)
      : tokens_(std::move(tokens)), pool_(pool) {}

  StatusOr<FoPtr> ParseFormula() {
    StatusOr<FoPtr> f = ParseIff();
    if (!f.ok()) return f;
    if (Peek().kind != Tok::kEnd) {
      return Status::Error("trailing input after formula: '" + Peek().text +
                           "'");
    }
    return f;
  }

  StatusOr<FoQuery> ParseQuery() {
    if (Peek().kind != Tok::kId) return Status::Error("expected head name");
    FoQuery q;
    q.head_name = Advance().text;
    if (!Consume(Tok::kLparen)) return Status::Error("expected '('");
    if (!Consume(Tok::kRparen)) {
      while (true) {
        if (Peek().kind != Tok::kId) {
          return Status::Error("expected head variable");
        }
        q.free_vars.push_back(Advance().text);
        if (Consume(Tok::kComma)) continue;
        if (Consume(Tok::kRparen)) break;
        return Status::Error("expected ',' or ')' in head");
      }
    }
    if (!Consume(Tok::kDefine)) return Status::Error("expected ':='");
    StatusOr<FoPtr> f = ParseIff();
    if (!f.ok()) return f.status();
    if (Peek().kind != Tok::kEnd) {
      return Status::Error("trailing input after formula");
    }
    q.formula = std::move(f).value();
    // Free variables must be covered by the head.
    for (const std::string& v : q.formula->FreeVariables()) {
      bool found = false;
      for (const std::string& fv : q.free_vars) {
        if (fv == v) found = true;
      }
      if (!found) {
        return Status::Error("free variable " + v + " not in query head");
      }
    }
    return q;
  }

 private:
  // Hostile input ("!!!!..." or "((((...") drives the descent as deep as the
  // input is long; cap it well before the thread stack gives out. Every
  // recursion cycle passes through ParseUnary, so guarding there bounds the
  // whole parse.
  static constexpr int kMaxDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(int& d) : depth(d) { ++depth; }
    ~DepthGuard() { --depth; }
    int& depth;
  };

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Consume(Tok kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<FoPtr> ParseIff() {
    StatusOr<FoPtr> lhs = ParseImplies();
    if (!lhs.ok()) return lhs;
    FoPtr result = std::move(lhs).value();
    while (Consume(Tok::kDarrow)) {
      StatusOr<FoPtr> rhs = ParseImplies();
      if (!rhs.ok()) return rhs;
      result = FoFormula::Iff(result, std::move(rhs).value());
    }
    return result;
  }

  StatusOr<FoPtr> ParseImplies() {
    StatusOr<FoPtr> lhs = ParseOr();
    if (!lhs.ok()) return lhs;
    if (Consume(Tok::kArrow)) {
      StatusOr<FoPtr> rhs = ParseImplies();  // right-associative
      if (!rhs.ok()) return rhs;
      return FoFormula::Implies(std::move(lhs).value(),
                                std::move(rhs).value());
    }
    return lhs;
  }

  StatusOr<FoPtr> ParseOr() {
    StatusOr<FoPtr> first = ParseAnd();
    if (!first.ok()) return first;
    std::vector<FoPtr> parts{std::move(first).value()};
    while (Consume(Tok::kPipe)) {
      StatusOr<FoPtr> next = ParseAnd();
      if (!next.ok()) return next;
      parts.push_back(std::move(next).value());
    }
    return FoFormula::Or(std::move(parts));
  }

  StatusOr<FoPtr> ParseAnd() {
    StatusOr<FoPtr> first = ParseUnary();
    if (!first.ok()) return first;
    std::vector<FoPtr> parts{std::move(first).value()};
    while (Consume(Tok::kAmp)) {
      StatusOr<FoPtr> next = ParseUnary();
      if (!next.ok()) return next;
      parts.push_back(std::move(next).value());
    }
    return FoFormula::And(std::move(parts));
  }

  StatusOr<Term> ParseTerm() {
    const Token& t = Peek();
    if (t.kind == Tok::kId) {
      Advance();
      return Term::Var(t.text);
    }
    if (t.kind == Tok::kConst) {
      Advance();
      return Term::Const(pool_.Intern(t.text));
    }
    return Status::Error("expected term, got '" + t.text + "'");
  }

  StatusOr<FoPtr> ParseUnary() {
    DepthGuard guard(depth_);
    if (depth_ > kMaxDepth) {
      return Status::InvalidArgument(
          "formula nesting exceeds the depth limit (" +
          std::to_string(kMaxDepth) + ")");
    }
    const Token& t = Peek();
    if (t.kind == Tok::kBang) {
      Advance();
      StatusOr<FoPtr> child = ParseUnary();
      if (!child.ok()) return child;
      return FoFormula::Not(std::move(child).value());
    }
    if (t.kind == Tok::kId && (t.text == "forall" || t.text == "exists")) {
      bool universal = t.text == "forall";
      Advance();
      std::vector<std::string> vars;
      while (true) {
        if (Peek().kind != Tok::kId) {
          return Status::Error("expected quantified variable");
        }
        vars.push_back(Advance().text);
        if (Consume(Tok::kComma)) continue;
        break;
      }
      if (!Consume(Tok::kDot)) {
        return Status::Error("expected '.' after quantifier variables");
      }
      StatusOr<FoPtr> body = ParseIff();
      if (!body.ok()) return body;
      return universal ? FoFormula::Forall(vars, std::move(body).value())
                       : FoFormula::Exists(vars, std::move(body).value());
    }
    if (t.kind == Tok::kLparen) {
      Advance();
      StatusOr<FoPtr> inner = ParseIff();
      if (!inner.ok()) return inner;
      if (!Consume(Tok::kRparen)) return Status::Error("expected ')'");
      return inner;
    }
    if (t.kind == Tok::kId && t.text == "true") {
      Advance();
      return FoFormula::True();
    }
    if (t.kind == Tok::kId && t.text == "false") {
      Advance();
      return FoFormula::False();
    }
    // Atom or comparison.
    if (t.kind == Tok::kId && tokens_[pos_ + 1].kind == Tok::kLparen) {
      std::string pred = Advance().text;
      Advance();  // '('
      std::vector<Term> args;
      if (!Consume(Tok::kRparen)) {
        while (true) {
          StatusOr<Term> term = ParseTerm();
          if (!term.ok()) return term.status();
          args.push_back(std::move(term).value());
          if (Consume(Tok::kComma)) continue;
          if (Consume(Tok::kRparen)) break;
          return Status::Error("expected ',' or ')' in atom");
        }
      }
      return FoFormula::MakeAtom(Atom(pred, std::move(args)));
    }
    StatusOr<Term> lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    if (Consume(Tok::kEq)) {
      StatusOr<Term> rhs = ParseTerm();
      if (!rhs.ok()) return rhs.status();
      return FoFormula::Eq(std::move(lhs).value(), std::move(rhs).value());
    }
    if (Consume(Tok::kNeq)) {
      StatusOr<Term> rhs = ParseTerm();
      if (!rhs.ok()) return rhs.status();
      return FoFormula::Not(
          FoFormula::Eq(std::move(lhs).value(), std::move(rhs).value()));
    }
    return Status::Error("expected '=' or '!=' after term");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  NamePool& pool_;
};

}  // namespace

StatusOr<FoPtr> ParseFo(std::string_view text, NamePool& pool) {
  StatusOr<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  FoParser parser(std::move(tokens).value(), pool);
  return parser.ParseFormula();
}

StatusOr<FoQuery> ParseFoQuery(std::string_view text, NamePool& pool) {
  StatusOr<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  FoParser parser(std::move(tokens).value(), pool);
  return parser.ParseQuery();
}

}  // namespace vqdr
