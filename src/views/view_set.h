#ifndef VQDR_VIEWS_VIEW_SET_H_
#define VQDR_VIEWS_VIEW_SET_H_

#include <string>
#include <vector>

#include "views/query.h"

namespace vqdr {

/// One view: a named query V ∈ σ_V with definition Q_V.
struct View {
  std::string name;
  Query query;
};

/// A view set **V** from I(σ) to I(σ_V) (Section 2 of the paper): one query
/// per output relation symbol.
class ViewSet {
 public:
  ViewSet() = default;

  /// Adds a view; names must be unique.
  void Add(std::string name, Query query);

  const std::vector<View>& views() const { return views_; }
  std::size_t size() const { return views_.size(); }
  bool empty() const { return views_.empty(); }

  /// The view by name; aborts if absent.
  const View& Get(const std::string& name) const;

  /// The output schema σ_V.
  Schema OutputSchema() const;

  /// Applies the view set: V(D), an instance over σ_V.
  Instance Apply(const Instance& db) const;

  /// True if every view definition is a pure CQ.
  bool AllPureCq() const;

  /// True if every view definition is a pure UCQ (pure CQs count).
  bool AllPureUcq() const;

  /// True if every view definition is existential (∃FO or below).
  bool AllExistential() const;

  /// True if every view is Boolean (arity 0).
  bool AllBoolean() const;

  std::string ToString() const;

 private:
  std::vector<View> views_;
};

}  // namespace vqdr

#endif  // VQDR_VIEWS_VIEW_SET_H_
