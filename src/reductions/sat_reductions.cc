#include "reductions/sat_reductions.h"

#include "base/check.h"

namespace vqdr {

namespace {

constexpr char kMarker[] = "Rmark";

// φ ∧ R(x) as a computable query (φ may be in any language).
Query GuardedMarker(const Query& phi, const std::string& name) {
  VQDR_CHECK_EQ(phi.arity(), 0) << "reduction requires a Boolean sentence";
  return Query::FromFunction(
      1,
      [phi](const Instance& d) {
        if (phi.Eval(d).AsBool()) return d.Get(kMarker);
        return Relation(1);
      },
      name);
}

}  // namespace

DeterminacyInstance FromSatisfiability(const Query& phi, const Schema& sigma) {
  DeterminacyInstance result{sigma, ViewSet(),
                             GuardedMarker(phi, "phi & R(x)")};
  result.base.Add(kMarker, 1);
  return result;
}

DeterminacyInstance FromValidity(const Query& phi, const Schema& sigma) {
  Schema base = sigma;
  base.Add(kMarker, 1);

  ViewSet views;
  views.Add("V1", GuardedMarker(phi, "phi & R(x)"));

  ConjunctiveQuery q("Q", {Term::Var("x")});
  q.AddAtom(Atom(kMarker, {Term::Var("x")}));

  return DeterminacyInstance{base, std::move(views), Query::FromCq(q)};
}

}  // namespace vqdr
