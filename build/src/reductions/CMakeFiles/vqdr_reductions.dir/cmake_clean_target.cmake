file(REMOVE_RECURSE
  "libvqdr_reductions.a"
)
