// Determinism regressions for the parallel search: repeated parallel runs
// must be byte-identical to each other and to the serial sweep, and the
// instances_examined field must carry the exact serial-order prefix length —
// pinned here against hand-computed values on the {E/2} space.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/finite_search.h"
#include "cq/conjunctive_query.h"
#include "obs/metrics.h"
#include "views/view_set.h"

namespace vqdr {
namespace {

ConjunctiveQuery EdgeQuery(const std::string& name,
                           std::vector<Term> head_terms) {
  ConjunctiveQuery q(name, std::move(head_terms));
  Atom a;
  a.predicate = "E";
  a.args = {Term::Var("x"), Term::Var("y")};
  q.AddAtom(a);
  return q;
}

// V(x) :- E(x, y): the paper's basic non-determined projection.
ViewSet ProjectionView() {
  ViewSet views;
  views.Add("V", Query::FromCq(EdgeQuery("V", {Term::Var("x")})));
  return views;
}

// V(x, y) :- E(x, y): the identity view, which determines everything.
ViewSet IdentityView() {
  ViewSet views;
  views.Add("V",
            Query::FromCq(EdgeQuery("V", {Term::Var("x"), Term::Var("y")})));
  return views;
}

Query FullQuery() {
  return Query::FromCq(EdgeQuery("Q", {Term::Var("x"), Term::Var("y")}));
}

void ExpectIdentical(const DeterminacySearchResult& a,
                     const DeterminacySearchResult& b) {
  ASSERT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.instances_examined, b.instances_examined);
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value());
  if (a.counterexample) {
    EXPECT_EQ(a.counterexample->d1, b.counterexample->d1);
    EXPECT_EQ(a.counterexample->d2, b.counterexample->d2);
  }
}

TEST(ParDeterminism, FiveParallelRunsAreByteIdenticalOnFoundWorkload) {
  Schema base{{"E", 2}};
  EnumerationOptions options;
  options.domain_size = 3;  // 512 instances, conflict early
  options.threads = 8;
  DeterminacySearchResult first =
      SearchDeterminacyCounterexample(ProjectionView(), FullQuery(), base,
                                      options);
  ASSERT_EQ(first.verdict, SearchVerdict::kCounterexampleFound);
  for (int run = 1; run < 5; ++run) {
    DeterminacySearchResult again = SearchDeterminacyCounterexample(
        ProjectionView(), FullQuery(), base, options);
    SCOPED_TRACE(::testing::Message() << "run " << run);
    ExpectIdentical(first, again);
  }
}

TEST(ParDeterminism, FiveParallelRunsAreByteIdenticalOnCleanWorkload) {
  Schema base{{"E", 2}};
  EnumerationOptions options;
  options.domain_size = 3;  // 512 instances, no conflict under identity
  options.threads = 8;
  DeterminacySearchResult first = SearchDeterminacyCounterexample(
      IdentityView(), FullQuery(), base, options);
  ASSERT_EQ(first.verdict, SearchVerdict::kNoneWithinBound);
  EXPECT_EQ(first.instances_examined, 512u);
  for (int run = 1; run < 5; ++run) {
    DeterminacySearchResult again = SearchDeterminacyCounterexample(
        IdentityView(), FullQuery(), base, options);
    SCOPED_TRACE(::testing::Message() << "run " << run);
    ExpectIdentical(first, again);
  }
}

// The {E/2} domain-2 space enumerates 16 instances; tuple pool order is
// (1,1), (1,2), (2,1), (2,2) with subset masks ascending, so index 1 is
// {E(1,1)} and index 2 is {E(1,2)}. Under V(x) :- E(x,y) both map to view
// image {V(1)}, and Q = E tells them apart: the serial sweep stops on index
// 2 having examined exactly 3 instances. Every thread count must report the
// same pair and the same count.
TEST(ParDeterminism, ExaminedCountPinnedOnConflictWorkload) {
  Schema base{{"E", 2}};
  for (int threads : {1, 2, 8}) {
    EnumerationOptions options;
    options.domain_size = 2;
    options.threads = threads;
    DeterminacySearchResult result = SearchDeterminacyCounterexample(
        ProjectionView(), FullQuery(), base, options);
    SCOPED_TRACE(::testing::Message() << "threads " << threads);
    ASSERT_EQ(result.verdict, SearchVerdict::kCounterexampleFound);
    EXPECT_EQ(result.instances_examined, 3u);
    ASSERT_TRUE(result.counterexample.has_value());
    // d1 = {E(1,1)}, d2 = {E(1,2)}.
    Instance d1(base);
    Relation r1(2);
    r1.Insert({Value(1), Value(1)});
    d1.Set("E", r1);
    Instance d2(base);
    Relation r2(2);
    r2.Insert({Value(1), Value(2)});
    d2.Set("E", r2);
    EXPECT_EQ(result.counterexample->d1, d1);
    EXPECT_EQ(result.counterexample->d2, d2);
  }
}

TEST(ParDeterminism, ExaminedCountPinnedOnCompleteSweep) {
  Schema base{{"E", 2}};
  for (int threads : {1, 2, 8}) {
    EnumerationOptions options;
    options.domain_size = 2;
    options.threads = threads;
    DeterminacySearchResult result = SearchDeterminacyCounterexample(
        IdentityView(), FullQuery(), base, options);
    SCOPED_TRACE(::testing::Message() << "threads " << threads);
    ASSERT_EQ(result.verdict, SearchVerdict::kNoneWithinBound);
    EXPECT_EQ(result.instances_examined, 16u);
  }
}

TEST(ParDeterminism, ExaminedCountPinnedOnTruncatedSweep) {
  Schema base{{"E", 2}};
  for (int threads : {1, 2, 8}) {
    EnumerationOptions options;
    options.domain_size = 2;
    options.max_instances = 5;  // below the 16-instance space
    options.threads = threads;
    DeterminacySearchResult result = SearchDeterminacyCounterexample(
        IdentityView(), FullQuery(), base, options);
    SCOPED_TRACE(::testing::Message() << "threads " << threads);
    ASSERT_EQ(result.verdict, SearchVerdict::kBudgetExhausted);
    EXPECT_EQ(result.instances_examined, 5u);
  }
}

// instances_examined is computed from the merged per-worker records; the
// obs counter separately sums the *actual* per-worker work. Serially the two
// coincide exactly; in a parallel run workers may race past the earliest
// conflict before the pruning hint lands, so the counter only dominates.
TEST(ParDeterminism, ObsCounterSumsActualWorkAcrossWorkers) {
  Schema base{{"E", 2}};
  obs::Counter& counter = obs::GetCounter("search.instances");

  EnumerationOptions serial_options;
  serial_options.domain_size = 2;
  std::uint64_t before = counter.value();
  DeterminacySearchResult serial = SearchDeterminacyCounterexample(
      ProjectionView(), FullQuery(), base, serial_options);
  EXPECT_EQ(counter.value() - before, serial.instances_examined);

  EnumerationOptions par_options;
  par_options.domain_size = 2;
  par_options.threads = 8;
  before = counter.value();
  DeterminacySearchResult par = SearchDeterminacyCounterexample(
      ProjectionView(), FullQuery(), base, par_options);
  EXPECT_EQ(par.instances_examined, serial.instances_examined);
  EXPECT_GE(counter.value() - before, par.instances_examined);
}

TEST(ParDeterminism, MonotonicityParallelRunsAreByteIdentical) {
  Schema base{{"E", 2}};
  EnumerationOptions options;
  options.domain_size = 2;
  options.threads = 8;
  MonotonicitySearchResult first = SearchMonotonicityViolation(
      ProjectionView(), FullQuery(), base, options);
  for (int run = 1; run < 5; ++run) {
    MonotonicitySearchResult again = SearchMonotonicityViolation(
        ProjectionView(), FullQuery(), base, options);
    SCOPED_TRACE(::testing::Message() << "run " << run);
    ASSERT_EQ(first.verdict, again.verdict);
    EXPECT_EQ(first.instances_examined, again.instances_examined);
    ASSERT_EQ(first.violation.has_value(), again.violation.has_value());
    if (first.violation) {
      EXPECT_EQ(first.violation->d1, again.violation->d1);
      EXPECT_EQ(first.violation->d2, again.violation->d2);
    }
  }
}

}  // namespace
}  // namespace vqdr
