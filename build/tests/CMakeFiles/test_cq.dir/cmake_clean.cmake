file(REMOVE_RECURSE
  "CMakeFiles/test_cq.dir/cq_test.cc.o"
  "CMakeFiles/test_cq.dir/cq_test.cc.o.d"
  "test_cq"
  "test_cq.pdb"
  "test_cq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
