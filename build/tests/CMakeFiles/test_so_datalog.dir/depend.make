# Empty dependencies file for test_so_datalog.
# This may be replaced when dependencies are built.
