file(REMOVE_RECURSE
  "CMakeFiles/determinacy_tool.dir/determinacy_tool.cpp.o"
  "CMakeFiles/determinacy_tool.dir/determinacy_tool.cpp.o.d"
  "determinacy_tool"
  "determinacy_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinacy_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
