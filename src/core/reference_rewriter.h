#ifndef VQDR_CORE_REFERENCE_REWRITER_H_
#define VQDR_CORE_REFERENCE_REWRITER_H_

#include <optional>

#include "cq/conjunctive_query.h"
#include "views/view_set.h"

namespace vqdr {

/// A brute-force *reference* implementation of equivalent-rewriting search
/// ([22]): enumerate every candidate CQ over the view schema up to the
/// given size bounds and test equivalence of its expansion with Q. By the
/// LMSS bound, a rewriting exists iff one exists with at most |body(Q)|
/// atoms, so with large enough bounds this is complete — but it is
/// exponential and exists purely to cross-validate the chase-based
/// synthesiser (core/rewriting.h), which is the production path.
struct ReferenceRewritingOptions {
  /// Max view atoms in a candidate.
  int max_atoms = 2;

  /// Candidate variables are drawn from a pool of this size (plus the head
  /// variables).
  int variable_pool = 3;

  /// Cap on candidates examined.
  std::uint64_t max_candidates = 1ull << 22;
};

struct ReferenceRewritingResult {
  bool exists = false;
  std::optional<ConjunctiveQuery> rewriting;
  /// Whether the candidate space was fully covered (a negative answer is
  /// only meaningful when true).
  bool exhaustive = true;
  std::uint64_t candidates_examined = 0;
};

/// Requires pure CQ views and query.
ReferenceRewritingResult FindCqRewritingByEnumeration(
    const ViewSet& views, const ConjunctiveQuery& q,
    const ReferenceRewritingOptions& options);

}  // namespace vqdr

#endif  // VQDR_CORE_REFERENCE_REWRITER_H_
