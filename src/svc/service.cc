#include "svc/service.h"

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <utility>

#include "base/string_util.h"
#include "chase/chain.h"
#include "core/determinacy.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "guard/fault.h"
#include "memo/memo.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/watchdog.h"

#ifndef VQDR_MEMO_DISABLED
#include "memo/snapshot.h"
#include "memo/store.h"
#endif

namespace vqdr::svc {

namespace {

Response OkResponse(guard::Outcome outcome, std::string result_json) {
  Response r;
  r.has_outcome = true;
  r.outcome = outcome;
  r.result_json = std::move(result_json);
  return r;
}

}  // namespace

Status BuildScenario(const std::string& schema,
                     const std::vector<std::string>& views,
                     const std::string& query, Scenario* out) {
  for (const std::string& piece : Split(schema, ' ')) {
    std::string_view decl = StripWhitespace(piece);
    if (decl.empty()) continue;
    std::size_t slash = decl.find('/');
    if (slash == std::string_view::npos || slash == 0) {
      return Status::InvalidArgument(
          "schema entries look like Name/arity: " + std::string(decl));
    }
    int arity = std::atoi(std::string(decl.substr(slash + 1)).c_str());
    if (arity < 0 || arity > 32) {
      return Status::InvalidArgument("schema arity out of range: " +
                                     std::string(decl));
    }
    std::string name(decl.substr(0, slash));
    if (out->schema.Contains(name)) {
      return Status::InvalidArgument("duplicate schema relation: " + name);
    }
    out->schema.Add(std::move(name), arity);
  }
  for (const std::string& text : views) {
    StatusOr<ConjunctiveQuery> v = ParseCq(text, out->pool);
    if (!v.ok()) {
      return Status::InvalidArgument("view: " + v.status().message());
    }
    if (!v->IsPureCq()) {
      return Status::InvalidArgument("views must be pure CQs: " + text);
    }
    std::string name = v->head_name();
    out->views.Add(std::move(name), Query::FromCq(std::move(v).value()));
  }
  if (!query.empty()) {
    StatusOr<ConjunctiveQuery> q = ParseCq(query, out->pool);
    if (!q.ok()) {
      return Status::InvalidArgument("query: " + q.status().message());
    }
    if (!q->IsPureCq()) {
      return Status::InvalidArgument("the query must be a pure CQ");
    }
    out->query = std::move(q).value();
    if (out->schema.decls().empty()) out->schema = out->query->BodySchema();
  }
  return Status::Ok();
}

std::string DeterminacyResultJson(const UnrestrictedDeterminacyResult& result,
                                  const NamePool& pool) {
  std::string out;
  out.push_back('{');
  // The verdict appears only when it is trustworthy — a stopped decision
  // reports its prefix, never a fabricated answer.
  if (guard::IsComplete(result.outcome)) {
    out.append("\"determined\":");
    out.append(result.determined ? "true" : "false");
    out.push_back(',');
  }
  out.append("\"view_image_atoms\":");
  std::size_t image_atoms = 0;
  for (const RelationDecl& d : result.canonical_view_image.schema().decls()) {
    image_atoms += result.canonical_view_image.Get(d.name).tuples().size();
  }
  out.append(std::to_string(image_atoms));
  std::size_t inverse_atoms = 0;
  for (const RelationDecl& d : result.chase_inverse.schema().decls()) {
    inverse_atoms += result.chase_inverse.Get(d.name).tuples().size();
  }
  out.append(",\"chase_inverse_atoms\":");
  out.append(std::to_string(inverse_atoms));
  if (result.canonical_rewriting.has_value()) {
    out.append(",\"rewriting\":");
    AppendJson(CqToString(*result.canonical_rewriting, pool), &out);
  }
  out.push_back('}');
  return out;
}

std::string ContainmentResultJson(const ContainmentResult& result) {
  std::string out;
  out.push_back('{');
  // contained==false is definitive under any outcome (a witness of
  // non-containment was found); contained==true needs a complete sweep.
  // patterns_checked is deliberately absent: it is work telemetry, not a
  // semantic field, and a memo hit replays it as 0 — including it would
  // break the cold-vs-warm byte-identity of served results.
  if (guard::IsComplete(result.outcome) || !result.contained) {
    out.append("\"contained\":");
    out.append(result.contained ? "true" : "false");
  }
  out.push_back('}');
  return out;
}

std::string ChaseResultJson(const ChaseChain& chain, const NamePool& pool) {
  std::string out;
  out.push_back('{');
  out.append("\"levels_built\":");
  out.append(std::to_string(chain.d.size()));
  out.append(",\"levels\":[");
  for (std::size_t k = 0; k < chain.d.size(); ++k) {
    if (k > 0) out.push_back(',');
    auto atoms = [](const Instance& inst) {
      std::size_t n = 0;
      for (const RelationDecl& d : inst.schema().decls()) {
        n += inst.Get(d.name).tuples().size();
      }
      return n;
    };
    out.append("{\"d\":");
    out.append(std::to_string(atoms(chain.d[k])));
    out.append(",\"s\":");
    out.append(std::to_string(atoms(chain.s[k])));
    out.append(",\"s_prime\":");
    out.append(std::to_string(atoms(chain.s_prime[k])));
    out.append(",\"d_prime\":");
    out.append(std::to_string(atoms(chain.d_prime[k])));
    out.push_back('}');
  }
  out.push_back(']');
  if (!chain.d_prime.empty()) {
    // Final D'_k in the re-parseable fact-list format (round-trips through
    // ParseInstance; chase-minted nulls print as quoted '#id' constants).
    out.append(",\"d_prime_final\":");
    AppendJson(InstanceToString(chain.d_prime.back(), pool), &out);
  }
  out.push_back('}');
  return out;
}

namespace {

// ---- queued (engine) handlers -------------------------------------------

Response HandleParse(const Request& req, guard::Budget& budget) {
  if (budget.Checkpoint() != guard::Outcome::kComplete) {
    return OkResponse(budget.stop_reason(), "{}");
  }
  NamePool pool;
  std::string kind = req.kind.empty() ? "cq" : req.kind;
  std::string canonical;
  if (kind == "cq") {
    StatusOr<ConjunctiveQuery> q = ParseCq(req.text, pool);
    if (!q.ok()) return ErrorResponse("parse_error", q.status().message());
    canonical = CqToString(q.value(), pool);
  } else if (kind == "ucq") {
    StatusOr<UnionQuery> q = ParseUcq(req.text, pool);
    if (!q.ok()) return ErrorResponse("parse_error", q.status().message());
    canonical = UcqToString(q.value(), pool);
  } else if (kind == "instance") {
    Scenario sc;
    if (Status s = BuildScenario(req.schema, {}, "", &sc); !s.ok()) {
      return ErrorResponse("bad_request", s.message());
    }
    StatusOr<Instance> inst = ParseInstance(req.text, sc.schema, pool);
    if (!inst.ok()) {
      return ErrorResponse("parse_error", inst.status().message());
    }
    canonical = InstanceToString(inst.value(), pool);
  } else {
    return ErrorResponse("bad_request",
                         "\"kind\" must be \"cq\", \"ucq\" or \"instance\"");
  }
  std::string result;
  result.append("{\"canonical\":");
  AppendJson(canonical, &result);
  result.push_back('}');
  return OkResponse(guard::Outcome::kComplete, std::move(result));
}

Response HandleContainment(const Request& req, guard::Budget& budget) {
  if (req.q1.empty() || req.q2.empty()) {
    return ErrorResponse("bad_request",
                         "containment requires \"q1\" and \"q2\"");
  }
  NamePool pool;
  CqContainmentOptions options;
  options.budget = &budget;
  ContainmentResult result;
  if (req.kind == "ucq") {
    StatusOr<UnionQuery> q1 = ParseUcq(req.q1, pool);
    if (!q1.ok()) return ErrorResponse("parse_error", q1.status().message());
    StatusOr<UnionQuery> q2 = ParseUcq(req.q2, pool);
    if (!q2.ok()) return ErrorResponse("parse_error", q2.status().message());
    result = UcqContainedInGoverned(q1.value(), q2.value(), options);
  } else if (req.kind.empty() || req.kind == "cq") {
    StatusOr<ConjunctiveQuery> q1 = ParseCq(req.q1, pool);
    if (!q1.ok()) return ErrorResponse("parse_error", q1.status().message());
    StatusOr<ConjunctiveQuery> q2 = ParseCq(req.q2, pool);
    if (!q2.ok()) return ErrorResponse("parse_error", q2.status().message());
    result = CqContainedInGoverned(q1.value(), q2.value(), options);
  } else {
    return ErrorResponse("bad_request",
                         "\"kind\" must be \"cq\" or \"ucq\"");
  }
  return OkResponse(result.outcome, ContainmentResultJson(result));
}

Response HandleChase(const Request& req, guard::Budget& budget) {
  Scenario sc;
  if (Status s = BuildScenario(req.schema, req.views, req.query, &sc);
      !s.ok()) {
    return ErrorResponse("bad_request", s.message());
  }
  if (!sc.query.has_value() || sc.views.empty()) {
    return ErrorResponse("bad_request",
                         "chase requires \"views\" and \"query\"");
  }
  ChaseChainOptions options;
  options.levels = req.levels;
  options.budget = &budget;
  ValueFactory factory(sc.pool.MaxId());
  ChaseChain chain = BuildChaseChain(sc.views, *sc.query, options, factory);
  return OkResponse(chain.outcome, ChaseResultJson(chain, sc.pool));
}

Response HandleDeterminacy(const Request& req, guard::Budget& budget) {
  Scenario sc;
  if (Status s = BuildScenario(req.schema, req.views, req.query, &sc);
      !s.ok()) {
    return ErrorResponse("bad_request", s.message());
  }
  if (!sc.query.has_value() || sc.views.empty()) {
    return ErrorResponse("bad_request",
                         "determinacy requires \"views\" and \"query\"");
  }
  UnrestrictedDeterminacyResult result =
      DecideUnrestrictedDeterminacy(sc.views, *sc.query, &budget);
  return OkResponse(result.outcome, DeterminacyResultJson(result, sc.pool));
}

// The batch handler is the budget-composition showcase: the request budget
// is the shared envelope, each item runs under a child budget (per-item caps
// tightened, envelope charged through the parent link), and once the
// envelope trips the remaining items are skipped with its stop reason — an
// exact prefix, per item, never a guess.
Response HandleBatch(const Request& req, guard::Budget& envelope) {
  if (req.items.empty()) {
    return ErrorResponse("bad_request", "batch requires \"items\"");
  }
  std::string result;
  result.append("{\"items\":[");
  guard::Outcome merged = guard::Outcome::kComplete;
  std::size_t completed = 0;
  for (std::size_t i = 0; i < req.items.size(); ++i) {
    if (i > 0) result.push_back(',');
    const BatchItem& item = req.items[i];
    if (envelope.Stopped()) {
      guard::Outcome o = envelope.stop_reason();
      merged = guard::MergeOutcome(merged, o);
      result.append("{\"outcome\":");
      AppendJson(guard::OutcomeName(o), &result);
      result.append(",\"skipped\":true}");
      continue;
    }
    Scenario sc;
    Status s = BuildScenario("", item.views, item.query, &sc);
    if (s.ok() && (!sc.query.has_value() || sc.views.empty())) {
      s = Status::InvalidArgument("item requires \"views\" and \"query\"");
    }
    if (!s.ok()) {
      merged = guard::MergeOutcome(merged, guard::Outcome::kInternalError);
      result.append("{\"error\":");
      AppendJson(s.message(), &result);
      result.push_back('}');
      continue;
    }
    guard::Budget child(item.budget, &envelope);
    UnrestrictedDeterminacyResult r =
        DecideUnrestrictedDeterminacy(sc.views, *sc.query, &child);
    merged = guard::MergeOutcome(merged, r.outcome);
    if (guard::IsComplete(r.outcome)) ++completed;
    result.append("{\"outcome\":");
    AppendJson(guard::OutcomeName(r.outcome), &result);
    result.push_back(',');
    // Splice the per-item object fields after the outcome.
    std::string item_json = DeterminacyResultJson(r, sc.pool);
    result.append(item_json, 1, item_json.size() - 1);
  }
  result.append("],\"items_completed\":");
  result.append(std::to_string(completed));
  result.push_back('}');
  return OkResponse(merged, std::move(result));
}

}  // namespace

// ---- service core --------------------------------------------------------

struct Service::Job {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Response response;
  std::shared_ptr<guard::Budget> budget;
};

Service::Service(ServiceOptions options) : options_(std::move(options)) {
  if (options_.threads <= 0) options_.threads = par::DefaultThreads();
  pool_ = std::make_unique<par::ThreadPool>(options_.threads);
  if (options_.enable_memo) memo::SetEnabled(true);
  metrics_baseline_ = obs::SnapshotMetrics();
#ifndef VQDR_MEMO_DISABLED
  if (options_.enable_memo) {
    const char* env = std::getenv("VQDR_MEMO_SNAPSHOT");
    memo_snapshot_path_ = options_.memo_snapshot_path;
    if (memo_snapshot_path_.empty() && env != nullptr) {
      memo_snapshot_path_ = env;
    }
    if (!memo_snapshot_path_.empty()) {
      // The first GlobalStore() touch runs the VQDR_MEMO_SNAPSHOT boot load;
      // an explicit option path that differs is loaded on top of it.
      memo::Store& store = memo::GlobalStore();
      if (env == nullptr || memo_snapshot_path_ != env) {
        memo::LoadSnapshot(store, memo_snapshot_path_);
      }
      memo_flusher_ = std::make_unique<memo::SnapshotFlusher>(
          store, memo_snapshot_path_, options_.memo_flush_ms);
    }
  }
#endif
  RegisterBuiltinOps();
  if (options_.cancel_stalled) {
    // The hook fires on the watchdog thread with the stalled op's identity;
    // cancelling that request's budget makes the handler stop at its next
    // checkpoint, which completes the response and frees the slot. The
    // watchdog emits exactly one report per stall; we keep its JSON line.
    obs::SetStallCallback([this](const obs::StallReport& report) {
      std::shared_ptr<guard::Budget> budget;
      {
        std::lock_guard<std::mutex> lock(live_mu_);
        auto it = live_ops_.find(report.op.id);
        if (it != live_ops_.end()) budget = it->second;
      }
      std::string line = report.ToJson();
      line.push_back('\n');
      std::fwrite(line.data(), 1, line.size(), stderr);
      if (budget != nullptr) {
        budget->Cancel();
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.watchdog_cancels;
      }
    });
    stall_hook_installed_ = true;
  }
}

Service::~Service() {
  BeginDrain();
  pool_->Wait();
  if (stall_hook_installed_) obs::SetStallCallback(nullptr);
#ifndef VQDR_MEMO_DISABLED
  // After the pool drained: the final snapshot flush sees every install the
  // in-flight requests made. This is the SIGTERM drain-then-exit write.
  memo_flusher_.reset();
#endif
  pool_.reset();
}

Status Service::FlushMemoSnapshot(std::string* result_json) {
#ifndef VQDR_MEMO_DISABLED
  if (memo_flusher_ == nullptr) {
    return Status::InvalidArgument(
        "no memo snapshot configured (--memo-snapshot or "
        "VQDR_MEMO_SNAPSHOT)");
  }
  memo::SnapshotIoStats io;
  Status s = memo_flusher_->FlushNow(&io);
  if (!s.ok()) return s;
  if (result_json != nullptr) {
    std::string out;
    out.append("{\"path\":");
    AppendJson(memo_snapshot_path_, &out);
    out.append(",\"entries\":");
    out.append(std::to_string(io.entries));
    out.append(",\"skipped\":");
    out.append(std::to_string(io.skipped));
    out.append(",\"bytes\":");
    out.append(std::to_string(io.bytes));
    out.push_back('}');
    *result_json = std::move(out);
  }
  return Status::Ok();
#else
  (void)result_json;
  return Status::InvalidArgument("memo subsystem compiled out");
#endif
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::string Service::HandleLine(std::string_view line) {
  StatusOr<Request> req = ParseRequest(line);
  Response response;
  if (!req.ok()) {
    response = ErrorResponse(line.size() > kMaxRequestBytes
                                 ? "frame_too_large"
                                 : "bad_request",
                             req.status().message());
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.bad_requests;
  } else {
    response = Handle(req.value());
  }
  return SerializeResponse(response);
}

Response Service::Reject(const char* code, const Request& req,
                         std::uint64_t retry_after_ms) {
  Response r = ErrorResponse(code, std::string("request rejected: ") + code);
  r.id = req.id;
  r.has_retry = true;
  r.retry_after_ms = retry_after_ms;
  VQDR_COUNTER_INC("svc.rejected");
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (std::string_view(code) == "draining") {
    ++stats_.rejected_draining;
  } else {
    ++stats_.rejected_overloaded;
  }
  return r;
}

Response Service::Handle(const Request& req) {
  const OpRegistry::Entry* entry = registry_.Find(req.op);
  if (entry == nullptr) {
    Response r = ErrorResponse("unknown_op", "unknown op \"" + req.op + "\"");
    r.id = req.id;
    return r;
  }
  if (entry->dispatch == Dispatch::kInline) {
    // Control plane: no admission, no queue — responsive under overload.
    guard::Budget unlimited;
    Response r = entry->handler(req, unlimited);
    r.id = req.id;
    return r;
  }
  if (draining()) {
    return Reject("draining", req, options_.retry_after_ms);
  }
  guard::BudgetClass& cls = classes_.Resolve(req.tenant);
  if (!cls.TryAcquire()) {
    return Reject("overloaded", req, cls.spec().retry_after_ms);
  }
  std::size_t now = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (now > options_.queue_limit) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    cls.Release();
    return Reject("overloaded", req, options_.retry_after_ms);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
  }
  VQDR_COUNTER_INC("svc.accepted");
  Response r = RunQueued(*entry, req, cls);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  cls.Release();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.completed;
    if (!r.ok && r.code == "internal") ++stats_.internal_errors;
  }
  r.id = req.id;
  return r;
}

Response Service::RunQueued(const OpRegistry::Entry& entry, const Request& req,
                            guard::BudgetClass& cls) {
  std::uint64_t seq =
      next_request_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto job = std::make_shared<Job>();
  // Built at admission: the deadline is armed before the task is queued, so
  // the client's deadline_ms covers queue wait too.
  job->budget =
      std::make_shared<guard::Budget>(cls.Grant(req.budget));
  std::uint64_t start_us = obs::TelemetryNowUs();
  std::string label = "svc." + req.op + "#" + std::to_string(seq);

  pool_->Submit([this, job, &entry, &req, label] {
    // Per-request op identity: a dynamic label under OpKind::kService, with
    // the request budget attached so heartbeats flow from its checkpoints
    // and the registry/watchdog can see its state.
    obs::OpScope op(obs::OpKind::kService, label, job->budget.get());
    if (op.id() != 0) {
      std::lock_guard<std::mutex> lock(live_mu_);
      live_ops_[op.id()] = job->budget;
    }
    Response response;
    try {
      VQDR_FAULT_TASK("svc.request");
      response = entry.handler(req, *job->budget);
    } catch (const std::exception& e) {
      response = ErrorResponse("internal", e.what());
      response.has_outcome = true;
      response.outcome = guard::Outcome::kInternalError;
    } catch (...) {
      response = ErrorResponse("internal", "unknown handler exception");
      response.has_outcome = true;
      response.outcome = guard::Outcome::kInternalError;
    }
    if (op.id() != 0) {
      std::lock_guard<std::mutex> lock(live_mu_);
      live_ops_.erase(op.id());
    }
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->response = std::move(response);
      job->done = true;
    }
    job->cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(job->mu);
  job->cv.wait(lock, [&] { return job->done; });
  Response r = std::move(job->response);
  r.has_elapsed = true;
  r.elapsed_us = obs::TelemetryNowUs() - start_us;
  VQDR_HISTOGRAM_RECORD("svc.request.us", r.elapsed_us);
  return r;
}

void Service::RegisterBuiltinOps() {
  registry_.Register("parse", Dispatch::kQueued, HandleParse);
  registry_.Register("containment", Dispatch::kQueued, HandleContainment);
  registry_.Register("chase", Dispatch::kQueued, HandleChase);
  registry_.Register("determinacy", Dispatch::kQueued, HandleDeterminacy);
  registry_.Register("batch", Dispatch::kQueued, HandleBatch);

  registry_.Register(
      "health", Dispatch::kInline,
      [this](const Request&, guard::Budget&) {
        std::string result;
        result.append("{\"status\":");
        AppendJson(draining() ? "draining" : "ok", &result);
        result.append(",\"in_flight\":");
        result.append(std::to_string(in_flight()));
        result.push_back('}');
        Response r;
        r.result_json = std::move(result);
        return r;
      });

  registry_.Register(
      "metrics", Dispatch::kInline,
      [this](const Request&, guard::Budget&) {
        // The Prometheus exposition is plain text; the JSON response wraps
        // it so line framing survives (vqdr-client --raw unwraps it).
        std::string body =
            obs::ExportPrometheusText(obs::SnapshotDelta(metrics_baseline_));
        std::string result;
        result.append("{\"content_type\":\"text/plain; version=0.0.4\",");
        result.append("\"body\":");
        AppendJson(body, &result);
        result.push_back('}');
        Response r;
        r.result_json = std::move(result);
        return r;
      });

  registry_.Register(
      "snapshot", Dispatch::kInline,
      [this](const Request&, guard::Budget&) {
        // Control plane (kInline): works during drain, so an operator can
        // force a flush right before stopping the process.
        std::string result;
        Status s = FlushMemoSnapshot(&result);
        if (!s.ok()) return ErrorResponse("no_snapshot", s.message());
        Response r;
        r.result_json = std::move(result);
        return r;
      });

  registry_.Register(
      "ops", Dispatch::kInline, [](const Request&, guard::Budget&) {
        std::string result;
        result.append("{\"ops\":");
        result.append(obs::OpsToJson(obs::SnapshotOps()));
        result.push_back('}');
        Response r;
        r.result_json = std::move(result);
        return r;
      });

  registry_.Register(
      "stats", Dispatch::kInline, [this](const Request&, guard::Budget&) {
        ServiceStats s = stats();
        std::string result;
        result.append("{\"accepted\":");
        result.append(std::to_string(s.accepted));
        result.append(",\"completed\":");
        result.append(std::to_string(s.completed));
        result.append(",\"rejected_overloaded\":");
        result.append(std::to_string(s.rejected_overloaded));
        result.append(",\"rejected_draining\":");
        result.append(std::to_string(s.rejected_draining));
        result.append(",\"internal_errors\":");
        result.append(std::to_string(s.internal_errors));
        result.append(",\"watchdog_cancels\":");
        result.append(std::to_string(s.watchdog_cancels));
        result.append(",\"bad_requests\":");
        result.append(std::to_string(s.bad_requests));
        result.append(",\"in_flight\":");
        result.append(std::to_string(in_flight()));
        result.append(",\"classes\":[");
        bool first = true;
        for (const std::string& name : classes_.Names()) {
          guard::BudgetClass* cls = classes_.Find(name);
          if (cls == nullptr) continue;
          if (!first) result.push_back(',');
          first = false;
          result.append("{\"name\":");
          AppendJson(name, &result);
          result.append(",\"in_flight\":");
          result.append(std::to_string(cls->in_flight()));
          result.append(",\"admitted\":");
          result.append(std::to_string(cls->admitted()));
          result.append(",\"rejected\":");
          result.append(std::to_string(cls->rejected()));
          result.push_back('}');
        }
        result.append("]}");
        Response r;
        r.result_json = std::move(result);
        return r;
      });
}

}  // namespace vqdr::svc
