#ifndef VQDR_CQ_MATCHER_H_
#define VQDR_CQ_MATCHER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cq/conjunctive_query.h"
#include "cq/ucq.h"
#include "data/instance.h"
#include "guard/budget.h"

namespace vqdr {

/// A variable assignment (a homomorphism from query variables to dom).
using Binding = std::map<std::string, Value>;

/// Which homomorphism-search engine ForEachMatch runs (DESIGN.md §12).
///
/// Both engines enumerate exactly the same homomorphisms in exactly the
/// same order — the indexed engine only skips subtrees it can prove contain
/// no match — so verdicts, witnesses, and first-found enumeration prefixes
/// are byte-identical between them. The legacy engine is the pre-rewrite
/// matcher, kept compilable behind -DVQDR_MATCHER_LEGACY=ON as the
/// differential-testing oracle.
enum class MatcherEngine {
  /// Resolve to the process default at call time (build flag, then the
  /// VQDR_MATCHER environment variable, then SetDefaultMatcherEngine).
  kDefault,
  /// Indexed join: per-relation argument-position indexes, bitset candidate
  /// domains, forward checking, conflict-directed backjumping, and
  /// WL-color-class symmetry breaking.
  kIndexed,
  /// The original naive backtracking matcher (scan every tuple of the
  /// selected atom's relation at every node). Only callable when compiled
  /// in (-DVQDR_MATCHER_LEGACY=ON); selecting it otherwise aborts.
  kLegacy,
};

/// True if the legacy oracle is compiled into this binary.
bool MatcherLegacyCompiled();

/// The engine MatcherEngine::kDefault resolves to. Initialised once per
/// process: VQDR_MATCHER=indexed|legacy when set (and compiled in),
/// otherwise legacy under -DVQDR_MATCHER_LEGACY=ON builds (so the whole
/// suite routes through the oracle there), otherwise indexed.
MatcherEngine DefaultMatcherEngine();

/// Overrides the process default (test seam). Returns the previous default.
MatcherEngine SetDefaultMatcherEngine(MatcherEngine engine);

/// Per-call knobs for the homomorphism search. The pruning toggles exist
/// for differential testing and benchmarks; all of them are solution-set-
/// and order-preserving, so flipping them never changes observable results.
struct MatcherOptions {
  MatcherEngine engine = MatcherEngine::kDefault;
  /// Prune a candidate when some unmatched atom's candidate domain becomes
  /// empty under the extended binding.
  bool forward_checking = true;
  /// On a failed level whose conflict set excludes the current level, skip
  /// the remaining candidates at this level (they fail identically).
  bool conflict_backjumping = true;
  /// Skip a candidate tuple when a symmetric tuple (equal up to an
  /// interchange-class automorphism of the target instance, seeded from the
  /// WL value coloring) already failed at this level.
  bool symmetry_breaking = true;
};

/// Enumerates every assignment of the variables of `atoms` extending
/// `initial` under which each atom's image is a fact of `db` (i.e. every
/// homomorphism from the atom set into `db`). Invokes `on_match` per match;
/// a false return stops the enumeration. Returns true if the enumeration ran
/// to completion, false if stopped early.
///
/// This single routine powers CQ evaluation, homomorphism search between
/// instances, containment tests, and the chase.
///
/// `budget`, when non-null, is polled once per backtracking node (one step
/// per node), so a deadline or cancellation lands promptly even when the
/// join is exponential. A stopped budget aborts the enumeration with a
/// false return; callers must treat that as "no answer", not "no match".
bool ForEachMatch(const std::vector<Atom>& atoms, const Instance& db,
                  const Binding& initial,
                  const std::function<bool(const Binding&)>& on_match,
                  guard::Budget* budget = nullptr);

/// Engine-selecting overload; the default-argument form above routes here
/// with MatcherOptions{}.
bool ForEachMatch(const std::vector<Atom>& atoms, const Instance& db,
                  const Binding& initial,
                  const std::function<bool(const Binding&)>& on_match,
                  guard::Budget* budget, const MatcherOptions& options);

/// Q(D) for a safe conjunctive query (handles =, ≠ and safe negation).
/// Aborts on unsafe queries; unsatisfiable queries evaluate to empty.
Relation EvaluateCq(const ConjunctiveQuery& q, const Instance& db);
Relation EvaluateCq(const ConjunctiveQuery& q, const Instance& db,
                    const MatcherOptions& options);

/// Q(D) for a safe UCQ: union of the disjuncts' answers.
Relation EvaluateUcq(const UnionQuery& q, const Instance& db);
Relation EvaluateUcq(const UnionQuery& q, const Instance& db,
                     const MatcherOptions& options);

/// True iff `tuple` ∈ Q(D). For Boolean queries pass the empty tuple.
/// With a non-null `budget` that stops mid-match, the return value is
/// meaningless — check budget->Stopped() before trusting it.
bool CqAnswerContains(const ConjunctiveQuery& q, const Instance& db,
                      const Tuple& tuple, guard::Budget* budget = nullptr);

/// Witness-returning variant: on a true return, `*witness` holds the full
/// homomorphism (over the variables of q.PropagateEqualities()) that maps
/// the query into db with head image `tuple` — the certificate the explain
/// layer records and replays. Untouched on a false return.
bool CqAnswerContains(const ConjunctiveQuery& q, const Instance& db,
                      const Tuple& tuple, guard::Budget* budget,
                      Binding* witness);
bool CqAnswerContains(const ConjunctiveQuery& q, const Instance& db,
                      const Tuple& tuple, guard::Budget* budget,
                      Binding* witness, const MatcherOptions& options);

/// True iff the Boolean query is satisfied (head arity must be 0).
bool CqHolds(const ConjunctiveQuery& q, const Instance& db);

}  // namespace vqdr

#endif  // VQDR_CQ_MATCHER_H_
