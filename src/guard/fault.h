#ifndef VQDR_GUARD_FAULT_H_
#define VQDR_GUARD_FAULT_H_

#include <cstdint>
#include <new>
#include <stdexcept>

// Deterministic fault injection for the chaos battery. A test arms exactly
// one fault — a kind, an optional site filter, and a 1-based hit ordinal —
// and the corresponding fault point fires at exactly that probe:
//
//   guard::ArmFault(guard::FaultKind::kAllocFailure, "chase.view_inverse", 7);
//   ChaseChain chain = BuildChaseChain(...);   // 7th chased tuple throws
//   EXPECT_EQ(chain.outcome, guard::Outcome::kInternalError);
//   guard::DisarmFaults();
//
// Arm/Disarm must not race live engine calls: arm before the call under
// test, disarm after it returns (the probes themselves are thread-safe and
// run concurrently inside parallel engines).
//
// The whole seam compiles out under -DVQDR_GUARD_FAULTS=OFF
// (VQDR_GUARD_FAULTS_DISABLED): fault points become ((void)0) and the
// control functions become inline no-ops.

namespace vqdr::guard {

/// The failure modes the injector can force.
enum class FaultKind {
  /// The fault point throws InjectedAllocFailure (an std::bad_alloc),
  /// simulating memory exhaustion mid-materialization.
  kAllocFailure,
  /// The fault point throws InjectedTaskError inside a par::ThreadPool
  /// worker; the pool must capture it, keep draining, and report it.
  kTaskThrow,
  /// Budget::Checkpoint trips kCancelled once the governed call's step
  /// counter reaches the armed ordinal — cancellation at exactly step N.
  kCancel,
  /// Budget::Checkpoint SLEEPS once (for the armed duration) when the step
  /// counter reaches the ordinal, then continues normally: a result-neutral
  /// injected hang for exercising the obs::Watchdog stall detector.
  kStall,
};

class InjectedAllocFailure : public std::bad_alloc {
 public:
  const char* what() const noexcept override {
    return "vqdr::guard injected allocation failure";
  }
};

class InjectedTaskError : public std::runtime_error {
 public:
  InjectedTaskError() : std::runtime_error("vqdr::guard injected task error") {}
};

#ifndef VQDR_GUARD_FAULTS_DISABLED

/// Arms one fault (replacing any previous one). `site` filters which fault
/// points count probes; nullptr or "" matches every site of the kind.
/// `at_hit` is 1-based: the at_hit-th matching probe fires. For kCancel the
/// ordinal is a *step number*: the first Budget::Checkpoint at or past it
/// trips. Must not be called while a governed call is running.
void ArmFault(FaultKind kind, const char* site, std::uint64_t at_hit);

/// Disarms; subsequent probes are a single relaxed atomic load.
void DisarmFaults();

bool FaultsArmed();

/// Probes of the armed (kind, site) observed so far.
std::uint64_t FaultProbes();

/// True once the armed fault has fired.
bool FaultFired();

/// Probe for throwing fault kinds; throws when the armed fault fires here.
/// Called by the VQDR_FAULT_* macros — engines do not call it directly.
void MaybeInjectThrow(FaultKind kind, const char* site);

/// Probe for the kCancel kind, consulted by Budget::Checkpoint with the
/// call's cumulative step count. Fires (returns true) exactly once.
bool CancelFaultDue(std::uint64_t steps_reached);

/// Arms a kStall fault: the first Budget::Checkpoint at or past `at_step`
/// sleeps for `sleep_ms` and then proceeds unchanged. Same discipline as
/// ArmFault: never while a governed call is running.
void ArmStallFault(std::uint64_t at_step, std::uint64_t sleep_ms);

/// Probe for the kStall kind; returns the sleep duration in ms when this
/// checkpoint is the one that stalls (exactly once), else 0.
std::uint64_t StallFaultDue(std::uint64_t steps_reached);

#else  // VQDR_GUARD_FAULTS_DISABLED

inline void ArmFault(FaultKind, const char*, std::uint64_t) {}
inline void DisarmFaults() {}
inline bool FaultsArmed() { return false; }
inline std::uint64_t FaultProbes() { return 0; }
inline bool FaultFired() { return false; }
inline void MaybeInjectThrow(FaultKind, const char*) {}
inline bool CancelFaultDue(std::uint64_t) { return false; }
inline void ArmStallFault(std::uint64_t, std::uint64_t) {}
inline std::uint64_t StallFaultDue(std::uint64_t) { return 0; }

#endif  // VQDR_GUARD_FAULTS_DISABLED

}  // namespace vqdr::guard

// Fault points on the engine hot paths. Site names are stable identifiers
// ("search.instances", "chase.view_inverse", "cq.pattern", "pool.task").
#ifndef VQDR_GUARD_FAULTS_DISABLED
#define VQDR_FAULT_ALLOC(site) \
  ::vqdr::guard::MaybeInjectThrow(::vqdr::guard::FaultKind::kAllocFailure, site)
#define VQDR_FAULT_TASK(site) \
  ::vqdr::guard::MaybeInjectThrow(::vqdr::guard::FaultKind::kTaskThrow, site)
#else
#define VQDR_FAULT_ALLOC(site) ((void)0)
#define VQDR_FAULT_TASK(site) ((void)0)
#endif

#endif  // VQDR_GUARD_FAULT_H_
