#ifndef VQDR_OBS_PROGRESS_H_
#define VQDR_OBS_PROGRESS_H_

#include <cstdint>
#include <functional>

#include "obs/context.h"

// Liveness reporting for the long-running calls (the bounded counterexample
// search, deep chase chains). Install a callback once:
//
//   obs::SetProgressCallback([](const obs::ProgressEvent& e) {
//     std::cerr << e.phase << ": " << e.current << "/" << e.total << "\n";
//     return true;  // keep going; false requests cancellation
//   });
//
// Instrumented loops report through a ProgressTicker, which throttles to one
// callback invocation per `stride` ticks; with no callback installed a tick
// is a branch on a cached bool.

namespace vqdr::obs {

struct ProgressEvent {
  /// Dotted phase name, e.g. "search.instances", "chase.level".
  const char* phase = "";
  std::uint64_t current = 0;
  /// 0 when the total is unknown (open-ended enumeration).
  std::uint64_t total = 0;
};

/// Return false to ask the instrumented call to stop early. Callers see the
/// cancellation as a budget-exhausted verdict, never a wrong answer.
using ProgressCallback = std::function<bool(const ProgressEvent&)>;

/// Installs the process-wide callback (replacing any previous one).
void SetProgressCallback(ProgressCallback callback);

/// Removes the callback; subsequent ticks are near-free again.
void ClearProgressCallback();

/// True when a callback is installed.
bool ProgressEnabled();

/// Invokes the callback, if any. Returns false only when the callback
/// requested cancellation.
bool ReportProgress(const char* phase, std::uint64_t current,
                    std::uint64_t total);

/// Per-loop throttle: reports every `stride` ticks. Captures whether a
/// callback existed at construction, so a loop pays one branch per tick.
class ProgressTicker {
 public:
  ProgressTicker(const char* phase, std::uint64_t stride,
                 std::uint64_t total = 0);

  /// Counts one unit of work. Returns false when the callback asked to stop.
  /// Cancellation is latched: once the callback returns false, every later
  /// Tick() keeps returning false without re-asking the callback.
  bool Tick() {
    if (cancelled_) return false;
    ++count_;
    if (count_ % stride_ != 0) return true;
    // Stride boundaries double as liveness heartbeats for the op registry
    // and stall watchdog — ungoverned loops stay visible too.
    OpHeartbeat();
    if (!enabled_) return true;
    if (!Report()) cancelled_ = true;
    return !cancelled_;
  }

  std::uint64_t count() const { return count_; }

  /// True once the callback has requested cancellation.
  bool cancelled() const { return cancelled_; }

 private:
  bool Report();

  const char* phase_;
  std::uint64_t stride_;
  std::uint64_t total_;
  std::uint64_t count_ = 0;
  bool enabled_;
  bool cancelled_ = false;
};

}  // namespace vqdr::obs

#endif  // VQDR_OBS_PROGRESS_H_
