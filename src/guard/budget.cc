#include "guard/budget.h"

#ifndef VQDR_GUARD_DISABLED

#include <thread>

#include "guard/fault.h"

namespace vqdr::guard {

namespace {
// The (at most one) installed checkpoint observer. constinit so the probe
// is safe from any thread at any time, including before main.
constinit std::atomic<CheckpointObserver> g_checkpoint_observer{nullptr};
}  // namespace

void SetCheckpointObserver(CheckpointObserver observer) {
  g_checkpoint_observer.store(observer, std::memory_order_release);
}

Budget::Budget(const BudgetSpec& spec, Budget* parent)
    : parent_(parent), spec_(spec) {
  if (spec_.wall_ms >= 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(spec_.wall_ms);
  }
}

Outcome Budget::Trip(Outcome o) {
  int expected = 0;
  int desired = static_cast<int>(o);
  if (stop_.compare_exchange_strong(expected, desired,
                                    std::memory_order_acq_rel)) {
    return o;
  }
  // Already stopped. An internal error still takes over a softer reason so
  // captured faults are never masked by a concurrent budget trip.
  if (o == Outcome::kInternalError) {
    stop_.store(desired, std::memory_order_release);
    return o;
  }
  return static_cast<Outcome>(expected);
}

Outcome Budget::Checkpoint(std::uint64_t steps) {
  int stopped = stop_.load(std::memory_order_relaxed);
  if (stopped != 0) return static_cast<Outcome>(stopped);

  std::uint64_t used =
      steps_.fetch_add(steps, std::memory_order_relaxed) + steps;

  if (CheckpointObserver observer =
          g_checkpoint_observer.load(std::memory_order_acquire)) {
    observer(steps);
  }

  if (spec_.max_steps != 0 && used > spec_.max_steps) {
    return Trip(Outcome::kStepBudgetExhausted);
  }

#ifndef VQDR_GUARD_FAULTS_DISABLED
  if (CancelFaultDue(used)) return Trip(Outcome::kCancelled);
  // A stall fault sleeps this thread once, right here, and changes nothing
  // else — the injected hang the watchdog tests detect.
  if (std::uint64_t stall_ms = StallFaultDue(used); stall_ms != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
#endif

  if (has_deadline_) {
    // Amortized deadline check: decrement a shared countdown and read the
    // clock only when it crosses zero. The reset races benignly across
    // workers — at worst the clock is read a little more often.
    std::uint64_t left =
        until_clock_check_.fetch_sub(steps, std::memory_order_relaxed);
    if (left <= steps) {
      until_clock_check_.store(kClockStride, std::memory_order_relaxed);
      if (std::chrono::steady_clock::now() >= deadline_) {
        return Trip(Outcome::kDeadlineExceeded);
      }
    }
  }

  // Charge the shared envelope last so a child trip above never double-trips
  // it; a stopped parent (its own limits, or a sibling-visible Cancel)
  // propagates into this budget sticky — the tightest limit wins.
  if (parent_ != nullptr) {
    Outcome up = parent_->Checkpoint(steps);
    if (up != Outcome::kComplete) return Trip(up);
  }
  return Outcome::kComplete;
}

Outcome Budget::NoteAtoms(std::uint64_t atoms) {
  int stopped = stop_.load(std::memory_order_relaxed);
  if (stopped != 0) return static_cast<Outcome>(stopped);
  std::uint64_t used =
      atoms_.fetch_add(atoms, std::memory_order_relaxed) + atoms;
  if (spec_.max_atoms != 0 && used > spec_.max_atoms) {
    return Trip(Outcome::kMemoryBudgetExhausted);
  }
  if (parent_ != nullptr) {
    Outcome up = parent_->NoteAtoms(atoms);
    if (up != Outcome::kComplete) return Trip(up);
  }
  return Outcome::kComplete;
}

}  // namespace vqdr::guard

#endif  // VQDR_GUARD_DISABLED
