// E-5.2 / E-5.3 / E-CERT: query answering through existential views — the
// paper's NP (guess a pre-image) and co-NP (check all pre-images)
// algorithms made deterministic, plus certain answers. The shape to
// observe: cost explodes with extent size and with the fresh-value budget
// (the Lemma 5.3 bound) — the practical face of NP ∩ co-NP.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "core/query_answering.h"
#include "cq/parser.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

void BM_AnswerViaPreimage(benchmark::State& state) {
  Schema base{{"E", 2}};
  ViewSet views = PathViews(1);  // E exposed: the unique pre-image is E
  Query q = Query::FromCq(ChainQuery(2));
  Instance s = views.Apply(PathInstance(static_cast<int>(state.range(0))));
  QueryAnsweringOptions opts;
  opts.extra_values = 0;
  for (auto _ : state) {
    auto result = AnswerViaPreimage(views, q, base, s, opts);
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      state.counters["instances"] =
          static_cast<double>(result->instances_examined);
    }
  }
}
BENCHMARK(BM_AnswerViaPreimage)->DenseRange(2, 4)
    ->Unit(benchmark::kMillisecond);

void BM_AnswerViaAllPreimages(benchmark::State& state) {
  Schema base{{"E", 2}};
  ViewSet views = PathViews(1);
  Query q = Query::FromCq(ChainQuery(2));
  Instance s = views.Apply(PathInstance(static_cast<int>(state.range(0))));
  QueryAnsweringOptions opts;
  opts.extra_values = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnswerViaAllPreimages(views, q, base, s, opts));
  }
}
BENCHMARK(BM_AnswerViaAllPreimages)->DenseRange(2, 4)
    ->Unit(benchmark::kMillisecond);

void BM_FreshValueBudget(benchmark::State& state) {
  // Lemma 5.3's polynomial pre-image bound, felt: each extra fresh value
  // multiplies the candidate-tuple pool.
  Schema base{{"E", 2}};
  ViewSet views = PathViews(2);
  Query q = Query::FromCq(ChainQuery(2));
  Instance s = views.Apply(PathInstance(3));
  QueryAnsweringOptions opts;
  opts.extra_values = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnswerViaPreimage(views, q, base, s, opts));
  }
  state.counters["extra_values"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FreshValueBudget)->DenseRange(0, 1)
    ->Unit(benchmark::kMillisecond);

void BM_CertainAnswers(benchmark::State& state) {
  Schema base{{"E", 2}};
  NamePool pool;
  ViewSet views;
  views.Add("V", Query::FromCq(ParseCq("V(x) :- E(x, y)", pool).value()));
  Query q = Query::FromCq(ParseCq("Q(x) :- E(x, y)", pool).value());
  Instance d = PathInstance(static_cast<int>(state.range(0)));
  Instance s = views.Apply(d);
  QueryAnsweringOptions opts;
  opts.extra_values = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeCertainAnswers(views, q, base, s, opts));
  }
}
BENCHMARK(BM_CertainAnswers)->DenseRange(2, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("query_answering");
