#ifndef VQDR_FO_FROM_CQ_H_
#define VQDR_FO_FROM_CQ_H_

#include "cq/conjunctive_query.h"
#include "cq/ucq.h"
#include "fo/formula.h"

namespace vqdr {

/// Converts a (safe) conjunctive query into an equivalent FO formula whose
/// free variables are fresh head placeholders h1..hk:
///
///   ∃ body-vars . ⋀ atoms ∧ ⋀ ¬negated ∧ ⋀ eqs ∧ ⋀ ¬diseqs ∧ ⋀ hᵢ = headᵢ
///
/// Body variables are renamed apart from the placeholders. On safe queries
/// the active-domain FO evaluation coincides with CQ evaluation.
FoQuery CqToFoQuery(const ConjunctiveQuery& q);

/// UCQ version: disjunction of the per-disjunct formulas over shared
/// placeholders.
FoQuery UcqToFoQuery(const UnionQuery& q);

}  // namespace vqdr

#endif  // VQDR_FO_FROM_CQ_H_
