// Tests for conjunctive-query syntax, parsing, evaluation, freezing and
// homomorphisms.

#include <gtest/gtest.h>

#include "cq/canonical.h"
#include "cq/matcher.h"
#include "cq/parser.h"

namespace vqdr {
namespace {

class CqFixture : public ::testing::Test {
 protected:
  ConjunctiveQuery Cq(const std::string& text) {
    auto q = ParseCq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message() << " in: " << text;
    return q.value();
  }

  UnionQuery Ucq(const std::string& text) {
    auto q = ParseUcq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message() << " in: " << text;
    return q.value();
  }

  Instance Db(const std::string& text, const Schema& schema) {
    auto d = ParseInstance(text, schema, pool_);
    EXPECT_TRUE(d.ok()) << d.status().message() << " in: " << text;
    return d.value();
  }

  Value C(const std::string& name) { return pool_.Intern(name); }

  NamePool pool_;
};

TEST_F(CqFixture, ParseBasicCq) {
  ConjunctiveQuery q = Cq("Q(x, y) :- R(x, z), S(z, y)");
  EXPECT_EQ(q.head_name(), "Q");
  EXPECT_EQ(q.head_arity(), 2);
  EXPECT_EQ(q.atoms().size(), 2u);
  EXPECT_TRUE(q.IsPureCq());
  EXPECT_TRUE(q.IsSafe());
}

TEST_F(CqFixture, ParseExtensions) {
  ConjunctiveQuery q =
      Cq("Q(x) :- R(x, y), not T(y), x != y, y = 'alice'");
  EXPECT_FALSE(q.IsPureCq());
  EXPECT_TRUE(q.UsesNegation());
  EXPECT_TRUE(q.UsesDisequality());
  EXPECT_TRUE(q.UsesEquality());
  EXPECT_TRUE(q.UsesConstants());
  EXPECT_TRUE(q.IsSafe());
}

TEST_F(CqFixture, ParseErrors) {
  EXPECT_FALSE(ParseCq("Q(x) :- R(x", pool_).ok());
  EXPECT_FALSE(ParseCq("Q(x) R(x)", pool_).ok());
  EXPECT_FALSE(ParseCq("Q(x) :- R(x) extra!", pool_).ok());
  EXPECT_FALSE(ParseCq("", pool_).ok());
}

TEST_F(CqFixture, ParseBooleanQueryWithEmptyBodyKeyword) {
  ConjunctiveQuery q = Cq("Q() :- true");
  EXPECT_EQ(q.head_arity(), 0);
  EXPECT_TRUE(q.atoms().empty());
  Instance d(Schema{});
  EXPECT_TRUE(CqHolds(q, d));
}

TEST_F(CqFixture, SafetyDetection) {
  ConjunctiveQuery unsafe_head = Cq("Q(x, w) :- R(x, y)");
  EXPECT_FALSE(unsafe_head.IsSafe());
  ConjunctiveQuery unsafe_neg = Cq("Q(x) :- R(x, y), not T(w)");
  EXPECT_FALSE(unsafe_neg.IsSafe());
  ConjunctiveQuery unsafe_diseq = Cq("Q(x) :- R(x, y), x != w");
  EXPECT_FALSE(unsafe_diseq.IsSafe());
}

TEST_F(CqFixture, EvaluatePathJoin) {
  Schema schema{{"R", 2}, {"S", 2}};
  Instance d = Db("R(a, b), R(a, c), S(b, e), S(c, e)", schema);
  ConjunctiveQuery q = Cq("Q(x, y) :- R(x, z), S(z, y)");
  Relation answer = EvaluateCq(q, d);
  EXPECT_EQ(answer.size(), 1u);
  EXPECT_TRUE(answer.Contains(Tuple{C("a"), C("e")}));
}

TEST_F(CqFixture, EvaluateWithRepeatedVariable) {
  Schema schema{{"R", 2}};
  Instance d = Db("R(a, a), R(a, b)", schema);
  ConjunctiveQuery q = Cq("Q(x) :- R(x, x)");
  Relation answer = EvaluateCq(q, d);
  EXPECT_EQ(answer.size(), 1u);
  EXPECT_TRUE(answer.Contains(Tuple{C("a")}));
}

TEST_F(CqFixture, EvaluateWithConstant) {
  Schema schema{{"R", 2}};
  Instance d = Db("R(a, b), R(c, b)", schema);
  ConjunctiveQuery q = Cq("Q(y) :- R('a', y)");
  Relation answer = EvaluateCq(q, d);
  EXPECT_EQ(answer.size(), 1u);
  EXPECT_TRUE(answer.Contains(Tuple{C("b")}));
}

TEST_F(CqFixture, EvaluateNegationAndDisequality) {
  Schema schema{{"R", 2}, {"T", 1}};
  Instance d = Db("R(a, b), R(b, b), T(a)", schema);
  ConjunctiveQuery q = Cq("Q(x, y) :- R(x, y), not T(x), x != y");
  Relation answer = EvaluateCq(q, d);
  // R(a,b) fails not T(a); R(b,b) fails b != b.
  EXPECT_TRUE(answer.empty());
}

TEST_F(CqFixture, EvaluateEqualityPropagation) {
  Schema schema{{"R", 2}};
  Instance d = Db("R(a, a), R(a, b)", schema);
  ConjunctiveQuery q = Cq("Q(x, y) :- R(x, y), x = y");
  Relation answer = EvaluateCq(q, d);
  EXPECT_EQ(answer.size(), 1u);
  EXPECT_TRUE(answer.Contains(Tuple{C("a"), C("a")}));
}

TEST_F(CqFixture, EvaluateUnsatisfiableEquality) {
  Schema schema{{"R", 1}};
  Instance d = Db("R(a)", schema);
  ConjunctiveQuery q = Cq("Q(x) :- R(x), 'a' = 'b'");
  EXPECT_TRUE(EvaluateCq(q, d).empty());
}

TEST_F(CqFixture, EvaluateUcqIsUnionOfDisjuncts) {
  Schema schema{{"A", 1}, {"B", 1}};
  Instance d = Db("A(a), B(b)", schema);
  UnionQuery q = Ucq("Q(x) :- A(x) | Q(x) :- B(x)");
  Relation answer = EvaluateUcq(q, d);
  EXPECT_EQ(answer.size(), 2u);
}

TEST_F(CqFixture, EvaluateOnMissingRelationIsEmpty) {
  // The query mentions S which the database schema lacks.
  Schema schema{{"R", 2}};
  Instance d = Db("R(a, b)", schema);
  ConjunctiveQuery q = Cq("Q(x) :- R(x, y), S(y)");
  EXPECT_TRUE(EvaluateCq(q, d).empty());
}

TEST_F(CqFixture, CqAnswerContainsStopsEarly) {
  Schema schema{{"R", 2}};
  Instance d = Db("R(a, b), R(b, c)", schema);
  ConjunctiveQuery q = Cq("Q(x) :- R(x, y)");
  EXPECT_TRUE(CqAnswerContains(q, d, Tuple{C("a")}));
  EXPECT_FALSE(CqAnswerContains(q, d, Tuple{C("c")}));
}

TEST_F(CqFixture, FreezeBuildsCanonicalInstance) {
  ConjunctiveQuery q = Cq("Q(x, y) :- R(x, z), S(z, y)");
  ValueFactory factory;
  FrozenQuery frozen = Freeze(q, factory);
  EXPECT_EQ(frozen.instance.Get("R").size(), 1u);
  EXPECT_EQ(frozen.instance.Get("S").size(), 1u);
  EXPECT_EQ(frozen.frozen_head.size(), 2u);
  EXPECT_EQ(frozen.var_to_value.size(), 3u);
  // Distinct variables freeze to distinct values.
  EXPECT_NE(frozen.var_to_value.at("x"), frozen.var_to_value.at("y"));
  EXPECT_NE(frozen.var_to_value.at("x"), frozen.var_to_value.at("z"));
}

TEST_F(CqFixture, FreezeKeepsConstants) {
  ConjunctiveQuery q = Cq("Q(x) :- R(x, 'a')");
  ValueFactory factory;
  FrozenQuery frozen = Freeze(q, factory);
  ASSERT_EQ(frozen.instance.Get("R").size(), 1u);
  const Tuple& fact = frozen.instance.Get("R").tuples()[0];
  EXPECT_EQ(fact[1], C("a"));
  EXPECT_NE(fact[0], C("a"));  // variable frozen to a fresh value
}

TEST_F(CqFixture, InstanceToQueryRoundTrip) {
  ConjunctiveQuery q = Cq("Q(x, y) :- R(x, z), S(z, y)");
  ValueFactory factory;
  FrozenQuery frozen = Freeze(q, factory);
  ConjunctiveQuery back =
      InstanceToQuery(frozen.instance, frozen.frozen_head, /*constants=*/{});
  EXPECT_EQ(back.atoms().size(), 2u);
  EXPECT_EQ(back.head_arity(), 2);
  // The round-tripped query evaluates identically on a sample database.
  Schema schema{{"R", 2}, {"S", 2}};
  Instance d = Db("R(a, b), S(b, c), R(c, c), S(c, a)", schema);
  EXPECT_EQ(EvaluateCq(q, d), EvaluateCq(back, d));
}

TEST_F(CqFixture, HomomorphismPathIntoTriangle) {
  // A directed 4-path maps homomorphically into a directed triangle.
  Instance path(Schema{{"E", 2}});
  path.AddFact("E", MakeTuple({11, 12}));
  path.AddFact("E", MakeTuple({12, 13}));
  path.AddFact("E", MakeTuple({13, 14}));
  Instance triangle(Schema{{"E", 2}});
  triangle.AddFact("E", MakeTuple({1, 2}));
  triangle.AddFact("E", MakeTuple({2, 3}));
  triangle.AddFact("E", MakeTuple({3, 1}));
  auto hom = FindInstanceHomomorphism(path, triangle);
  ASSERT_TRUE(hom.has_value());
  // Verify it is a homomorphism.
  Instance image = path.Apply([&](Value v) { return hom->at(v); });
  EXPECT_TRUE(image.IsSubInstanceOf(triangle));
}

TEST_F(CqFixture, NoHomomorphismTriangleIntoPath) {
  Instance triangle(Schema{{"E", 2}});
  triangle.AddFact("E", MakeTuple({1, 2}));
  triangle.AddFact("E", MakeTuple({2, 3}));
  triangle.AddFact("E", MakeTuple({3, 1}));
  Instance path(Schema{{"E", 2}});
  path.AddFact("E", MakeTuple({11, 12}));
  path.AddFact("E", MakeTuple({12, 13}));
  EXPECT_FALSE(FindInstanceHomomorphism(triangle, path).has_value());
}

TEST_F(CqFixture, HomomorphismRespectsFixedValues) {
  Instance a(Schema{{"E", 2}});
  a.AddFact("E", MakeTuple({1, 2}));
  Instance b(Schema{{"E", 2}});
  b.AddFact("E", MakeTuple({10, 20}));
  b.AddFact("E", MakeTuple({30, 40}));
  auto hom = FindInstanceHomomorphism(a, b, {{Value(1), Value(30)}});
  ASSERT_TRUE(hom.has_value());
  EXPECT_EQ(hom->at(Value(2)), Value(40));
  EXPECT_FALSE(FindInstanceHomomorphism(a, b, {{Value(1), Value(20)}})
                   .has_value());
}

TEST_F(CqFixture, HomomorphismRespectsConstants) {
  Instance a(Schema{{"E", 2}});
  a.AddFact("E", MakeTuple({1, 2}));
  Instance b(Schema{{"E", 2}});
  b.AddFact("E", MakeTuple({2, 1}));
  // Without constants a maps onto b by swapping.
  EXPECT_TRUE(FindInstanceHomomorphism(a, b).has_value());
  // Forcing both values constant leaves no homomorphism.
  EXPECT_FALSE(
      FindInstanceHomomorphism(a, b, {}, {Value(1), Value(2)}).has_value());
}

TEST_F(CqFixture, PropagateEqualitiesUnsatisfiableDisequality) {
  ConjunctiveQuery q = Cq("Q(x) :- R(x, y), x = y, x != y");
  bool sat = true;
  q.PropagateEqualities(&sat);
  EXPECT_FALSE(sat);
}

TEST_F(CqFixture, RenameVariablesPreservesStructure) {
  ConjunctiveQuery q = Cq("Q(x) :- R(x, y), x != y");
  ConjunctiveQuery renamed =
      q.RenameVariables([](const std::string& v) { return v + "_1"; });
  EXPECT_EQ(renamed.head_terms()[0].var(), "x_1");
  EXPECT_EQ(renamed.atoms()[0].args[1].var(), "y_1");
  EXPECT_EQ(renamed.disequalities()[0].rhs.var(), "y_1");
}

TEST_F(CqFixture, DeeplyNestedParensAreRejectedNotOverflowed) {
  // The rule grammar is flat, but the lexer still caps hostile "((((..."
  // input explicitly instead of leaving the bound to downstream behavior.
  std::string text = "Q(x) :- R";
  text += std::string(10'000, '(');
  auto q = ParseCq(text, pool_);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CqFixture, MalformedQueryCorpusErrorsCleanly) {
  const char* corpus[] = {
      "",
      "Q",
      "Q(x)",
      "Q(x) :-",
      "Q(x) :- R(x,",
      "Q(x) :- R(x))",
      "Q(x) : R(x)",
      "Q(x) :- not",
      "Q(x) :- x =",
      "Q(x) :- 'unterminated",
      "Q(x) :- R(x) !",
      "Q(x) :- R(x) | S(x)",  // pipe only valid in ParseUcq
  };
  for (const char* text : corpus) {
    auto q = ParseCq(text, pool_);
    EXPECT_FALSE(q.ok()) << "accepted malformed: " << text;
  }
}

TEST_F(CqFixture, ParseInstanceErrors) {
  Schema schema{{"R", 2}};
  EXPECT_FALSE(ParseInstance("S(a)", schema, pool_).ok());
  EXPECT_FALSE(ParseInstance("R(a)", schema, pool_).ok());
  EXPECT_FALSE(ParseInstance("R(a, b", schema, pool_).ok());
  EXPECT_TRUE(ParseInstance("", schema, pool_).ok());
}

// InstanceToString prints the fact-list format ParseInstance accepts back:
// serialize -> parse -> serialize is a string fixpoint. Covers bare
// identifier-shaped constants, quoted constants with spaces/digits-first
// names, zero-ary facts, and elided empty relations.
TEST_F(CqFixture, InstanceToStringRoundTrips) {
  Schema schema{{"R", 2}, {"P", 1}, {"Flag", 0}, {"Empty", 1}};
  const char* corpus[] = {
      "R(a, b), R(b, c), P(a)",
      "R('some const', b), P('123')",
      "Flag(), R(x1, _under), P('quoted name')",
      "",
      "P(a), P(b), P(a)",  // duplicate facts collapse to set semantics
  };
  for (const char* text : corpus) {
    Instance first = Db(text, schema);
    std::string printed = InstanceToString(first, pool_);
    auto reparsed = ParseInstance(printed, schema, pool_);
    ASSERT_TRUE(reparsed.ok())
        << reparsed.status().message() << " in printed form: " << printed;
    EXPECT_EQ(InstanceToString(reparsed.value(), pool_), printed)
        << "not a fixpoint for: " << text;
  }
}

}  // namespace
}  // namespace vqdr
