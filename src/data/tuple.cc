#include "data/tuple.h"

#include <sstream>

namespace vqdr {

Tuple MakeTuple(std::initializer_list<std::int64_t> ids) {
  Tuple t;
  t.reserve(ids.size());
  for (std::int64_t id : ids) t.push_back(Value(id));
  return t;
}

std::string TupleToString(const Tuple& t) {
  std::ostringstream out;
  out << "(";
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out << ", ";
    out << t[i];
  }
  out << ")";
  return out.str();
}

}  // namespace vqdr
