#include "cq/containment.h"

#include <atomic>
#include <functional>
#include <map>
#include <vector>

#include "base/check.h"
#include "cq/canonical.h"
#include "cq/explain_bridge.h"
#include "cq/matcher.h"
#include "guard/fault.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef VQDR_PAR_DISABLED
#include "par/pool.h"
#endif

#ifndef VQDR_MEMO_DISABLED
#include <optional>
#include <string>

#include "cq/fingerprint.h"
#include "memo/store.h"
#endif

namespace vqdr {

namespace {

#ifndef VQDR_MEMO_DISABLED
// Joins two canonical fingerprints into a containment key; nullopt (either
// side has no fingerprint) means "bypass the cache". Sound because the
// contained/not-contained verdict is invariant under isomorphism of either
// side, which is exactly what the fingerprints quotient by.
std::optional<std::string> ContainmentKey(const char* tag,
                                          std::optional<std::string> k1,
                                          std::optional<std::string> k2) {
  if (!k1.has_value() || !k2.has_value()) return std::nullopt;
  return std::string(tag) + "|" + *k1 + "|" + *k2;
}
#endif

// Applies a term substitution (variables → terms) to a query.
ConjunctiveQuery SubstituteTerms(const ConjunctiveQuery& q,
                                 const std::map<std::string, Term>& subst) {
  auto map_term = [&subst](const Term& t) -> Term {
    if (t.is_const()) return t;
    auto it = subst.find(t.var());
    return it != subst.end() ? it->second : t;
  };
  ConjunctiveQuery result(q.head_name(), {});
  for (const Term& t : q.head_terms()) {
    result.mutable_head_terms().push_back(map_term(t));
  }
  for (const Atom& a : q.atoms()) {
    Atom mapped;
    mapped.predicate = a.predicate;
    for (const Term& t : a.args) mapped.args.push_back(map_term(t));
    result.AddAtom(std::move(mapped));
  }
  for (const Atom& a : q.negated_atoms()) {
    Atom mapped;
    mapped.predicate = a.predicate;
    for (const Term& t : a.args) mapped.args.push_back(map_term(t));
    result.AddNegatedAtom(std::move(mapped));
  }
  for (const TermComparison& c : q.equalities()) {
    result.AddEquality(map_term(c.lhs), map_term(c.rhs));
  }
  for (const TermComparison& c : q.disequalities()) {
    result.AddDisequality(map_term(c.lhs), map_term(c.rhs));
  }
  return result;
}

// A collapsed canonical database of q1 under one identification pattern.
struct PatternInstance {
  Instance instance{Schema{}};
  Tuple frozen_head;
};

// Records one pattern check into the explain log: a replayable witness when
// the pattern passed (q2 maps into the canonical database hitting the frozen
// head), the refuting canonical database when it failed. `q2` is the query
// the witness binding is over (a CQ, or the witnessing UCQ disjunct).
void RecordPatternCheck(obs::ExplainLog* log, const char* label,
                        const ConjunctiveQuery& q2,
                        const PatternInstance& pattern, bool pass,
                        const Binding& witness_binding,
                        std::int64_t disjunct = -1) {
  obs::ExplainEvent e;
  e.label = label;
  e.stats["instance_facts"] =
      static_cast<std::int64_t>(pattern.instance.TupleCount());
  if (disjunct >= 0) e.stats["disjunct"] = disjunct;
  if (pass) {
    e.kind = obs::ExplainKind::kWitness;
    e.witness = MakeContainmentWitness(q2, pattern.instance,
                                       pattern.frozen_head, witness_binding);
  } else {
    e.kind = obs::ExplainKind::kRefutation;
    e.instance = ToExplainFacts(pattern.instance);
    std::string head;
    for (Value v : pattern.frozen_head) {
      if (!head.empty()) head += ",";
      head += std::to_string(v.id);
    }
    e.detail = "frozen head (" + head + ") has no preimage under the right query";
  }
  log->Append(std::move(e));
}

// Records a memo probe (hit or miss) for a containment subproblem.
void RecordMemoProbe(obs::ExplainLog* log, const char* label, bool hit) {
  if (!obs::Wants(log)) return;
  obs::ExplainEvent e;
  e.kind = obs::ExplainKind::kMemo;
  e.label = label;
  e.detail = hit ? "hit" : "miss";
  e.stats["hit"] = hit ? 1 : 0;
  log->Append(std::move(e));
}

// Checks one canonical database against a UCQ disjunct by disjunct so the
// witnessing disjunct — and its homomorphism — can be recorded. Equivalent
// to EvaluateUcq + Contains for the negation-free disjuncts containment
// admits (CqAnswerContains normalizes and filters the same way EvaluateCq
// does). Skips recording when the budget stopped mid-check, mirroring the
// governed sweep's "report pass so a stop cannot masquerade as a witness".
bool ExplainedUcqCheck(obs::ExplainLog* log, const UnionQuery& q2,
                       const PatternInstance& pattern, guard::Budget* budget,
                       const MatcherOptions& matcher) {
  for (std::size_t i = 0; i < q2.disjuncts().size(); ++i) {
    Binding witness;
    bool pass = CqAnswerContains(q2.disjuncts()[i], pattern.instance,
                                 pattern.frozen_head, budget, &witness,
                                 matcher);
    if (budget != nullptr && budget->Stopped()) return true;
    if (pass) {
      RecordPatternCheck(log, "ucq.sub", q2.disjuncts()[i], pattern, true,
                         witness, static_cast<std::int64_t>(i));
      return true;
    }
  }
  RecordPatternCheck(log, "ucq.sub", q2.disjuncts().front(), pattern, false,
                     Binding{});
  return false;
}

// Enumerates the collapsed queries of every identification pattern of q1's
// variables: every partition of the variables (restricted growth strings),
// with each block optionally identified with one of the constants in play
// (at most one block per constant — two blocks on the same constant is a
// coarser partition handled elsewhere). Calls `body` per collapsed query; a
// false return stops early. Returns true if every invocation returned true.
bool ForEachIdentificationPattern(
    const ConjunctiveQuery& q1, const std::set<Value>& all_constants,
    const std::function<bool(const ConjunctiveQuery&)>& body) {
  std::vector<std::string> vars = q1.AllVariables();
  std::vector<Value> constants(all_constants.begin(), all_constants.end());

  std::vector<int> blocks(vars.size(), 0);
  std::function<bool(std::size_t, int)> enumerate_partitions;
  auto run_with_assignment = [&](int block_count) -> bool {
    // choice[b] = -1 for fresh, else index into `constants`.
    std::vector<int> choice(block_count, -1);
    std::function<bool(int)> assign = [&](int b) -> bool {
      if (b == block_count) {
        // Build substitution: representative term per block.
        std::vector<Term> rep(block_count);
        std::vector<std::string> block_var(block_count);
        for (std::size_t j = 0; j < vars.size(); ++j) {
          if (block_var[blocks[j]].empty()) block_var[blocks[j]] = vars[j];
        }
        for (int k = 0; k < block_count; ++k) {
          rep[k] = choice[k] >= 0 ? Term::Const(constants[choice[k]])
                                  : Term::Var(block_var[k]);
        }
        std::map<std::string, Term> subst;
        for (std::size_t j = 0; j < vars.size(); ++j) {
          subst[vars[j]] = rep[blocks[j]];
        }
        return body(SubstituteTerms(q1, subst));
      }
      if (!assign(b + 1)) return false;  // fresh
      for (std::size_t ci = 0; ci < constants.size(); ++ci) {
        bool taken = false;
        for (int prev = 0; prev < b; ++prev) {
          if (choice[prev] == static_cast<int>(ci)) taken = true;
        }
        if (taken) continue;
        choice[b] = static_cast<int>(ci);
        bool keep = assign(b + 1);
        choice[b] = -1;
        if (!keep) return false;
      }
      return true;
    };
    return assign(0);
  };
  enumerate_partitions = [&](std::size_t i, int max_block) -> bool {
    if (i == vars.size()) return run_with_assignment(max_block);
    for (int b = 0; b <= max_block; ++b) {
      blocks[i] = b;
      int next_max = b == max_block ? max_block + 1 : max_block;
      if (!enumerate_partitions(i + 1, next_max)) return false;
    }
    return true;
  };
  if (vars.empty()) return run_with_assignment(0);
  return enumerate_partitions(0, 0);
}

// Freezes one collapsed query and applies `check` to the resulting canonical
// database. Patterns inconsistent with the collapsed disequalities are
// vacuously satisfied. Pure (thread-safe given a thread-safe `check`):
// everything it touches is local or const.
bool CheckPattern(const ConjunctiveQuery& collapsed,
                  const ValueFactory& base_factory,
                  const std::function<bool(const PatternInstance&)>& check) {
  VQDR_FAULT_ALLOC("cq.pattern");
  VQDR_COUNTER_INC("cq.containment.canonical_dbs");
  for (const TermComparison& c : collapsed.disequalities()) {
    if (c.lhs == c.rhs) return true;
  }
  ConjunctiveQuery positive(collapsed.head_name(), collapsed.head_terms());
  for (const Atom& a : collapsed.atoms()) positive.AddAtom(a);
  ValueFactory factory = base_factory;
  FrozenQuery frozen = Freeze(positive, factory);
  PatternInstance pattern;
  pattern.instance = std::move(frozen.instance);
  pattern.frozen_head = std::move(frozen.frozen_head);
  return check(pattern);
}

// Aggregate state of one canonical-database sweep.
struct SweepOutcome {
  /// Conjunction over the patterns that were checked. Definitive-false once
  /// any pattern failed (a witness of non-containment); "true so far"
  /// otherwise.
  bool all_passed = true;
  /// A pattern check threw (real or injected allocation failure); the
  /// exception was captured and the sweep stopped.
  bool internal_error = false;
  /// Pattern checks that ran to completion (including a failing one).
  std::uint64_t patterns = 0;
};

// Tests `body` on every canonical database of `q1` sufficient for deciding
// q1 ⊆ q2: for pure q1/q2 the single all-distinct freezing is complete
// (Chandra–Merlin); with disequalities on either side, completeness needs
// every identification pattern (van der Meyden's classical test for CQ≠
// containment).
//
// threads > 1 fans the identification-pattern sweep across a work-stealing
// pool in bounded batches with early exit on the first failing pattern (the
// witness of non-containment); `body` then runs concurrently and must be
// thread-safe. The verdict is the same conjunction either way.
//
// `budget`, when non-null, is charged one step per pattern; a trip stops
// the sweep (check budget->Stopped() to distinguish from completion).
// Exceptions from pattern checks are captured into internal_error — in the
// parallel sweep by the pool, serially right here — and never propagate.
SweepOutcome SweepCanonicalDbs(
    const ConjunctiveQuery& q1, const std::set<Value>& all_constants,
    bool need_patterns, int threads, guard::Budget* budget,
    const std::function<bool(const PatternInstance&)>& body) {
  ValueFactory base_factory;
  for (Value c : all_constants) base_factory.NoteUsed(c);
  SweepOutcome out;

  // The all-distinct freezing is one pattern; nothing to fan out.
  if (!need_patterns) {
    if (!guard::IsComplete(guard::Check(budget))) return out;
    try {
      out.all_passed = CheckPattern(q1, base_factory, body);
      ++out.patterns;
    } catch (...) {
      if (budget != nullptr) budget->MarkInternalError();
      out.internal_error = true;
    }
    return out;
  }

#ifndef VQDR_PAR_DISABLED
  if (threads > 1) {
    const std::size_t batch_size =
        static_cast<std::size_t>(threads) * 16;
    std::vector<ConjunctiveQuery> batch;
    batch.reserve(batch_size);
    std::atomic<bool> witness_found{false};
    std::atomic<std::uint64_t> patterns{0};
    par::ThreadPool pool(threads);
    auto flush = [&]() -> bool {
      for (ConjunctiveQuery& collapsed : batch) {
        pool.Submit(
            [&witness_found, &patterns, &base_factory, &body, &collapsed,
             budget] {
              if (witness_found.load(std::memory_order_relaxed)) return;
              if (!guard::IsComplete(guard::Check(budget))) return;
              bool pass = CheckPattern(collapsed, base_factory, body);
              patterns.fetch_add(1, std::memory_order_relaxed);
              if (pass) return;
              if (budget != nullptr && budget->Stopped()) return;
              witness_found.store(true, std::memory_order_relaxed);
            });
      }
      pool.Wait();
      batch.clear();
      if (pool.error_count() > 0) {
        // A pattern check threw inside a worker; the pool captured it and
        // drained the rest of the batch.
        pool.TakeFirstError();
        if (budget != nullptr) budget->MarkInternalError();
        out.internal_error = true;
      }
      return !witness_found.load(std::memory_order_relaxed) &&
             !out.internal_error &&
             !(budget != nullptr && budget->Stopped());
    };
    ForEachIdentificationPattern(
        q1, all_constants, [&](const ConjunctiveQuery& collapsed) {
          batch.push_back(collapsed);
          if (batch.size() >= batch_size) return flush();
          return true;
        });
    if (!out.internal_error) flush();
    out.patterns = patterns.load(std::memory_order_relaxed);
    out.all_passed = !witness_found.load(std::memory_order_relaxed);
    return out;
  }
#else
  (void)threads;
#endif

  try {
    ForEachIdentificationPattern(
        q1, all_constants, [&](const ConjunctiveQuery& collapsed) {
          if (!guard::IsComplete(guard::Check(budget))) return false;
          bool pass = CheckPattern(collapsed, base_factory, body);
          ++out.patterns;
          if (!pass && !(budget != nullptr && budget->Stopped())) {
            out.all_passed = false;
          }
          return out.all_passed &&
                 !(budget != nullptr && budget->Stopped());
        });
  } catch (...) {
    if (budget != nullptr) budget->MarkInternalError();
    out.internal_error = true;
  }
  return out;
}

// Legacy ungoverned sweep: requires completion, returns the conjunction.
bool ForEachCanonicalDb(
    const ConjunctiveQuery& q1, const std::set<Value>& all_constants,
    bool need_patterns, int threads,
    const std::function<bool(const PatternInstance&)>& body) {
  SweepOutcome out = SweepCanonicalDbs(q1, all_constants, need_patterns,
                                       threads, nullptr, body);
  VQDR_CHECK(!out.internal_error)
      << "canonical-database sweep failed internally";
  return out.all_passed;
}

std::set<Value> UnionConstants(const ConjunctiveQuery& a,
                               const ConjunctiveQuery& b) {
  std::set<Value> constants = a.Constants();
  for (Value c : b.Constants()) constants.insert(c);
  return constants;
}

// Maps the options' thread request to an effective worker count: 0 means
// "ask the machine", and a disabled par subsystem always means serial.
int ResolveThreads(const CqContainmentOptions& options) {
#ifdef VQDR_PAR_DISABLED
  return 1;
#else
  if (options.threads == 0) return par::DefaultThreads();
  return options.threads < 1 ? 1 : options.threads;
#endif
}

}  // namespace

bool CqContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                   const CqContainmentOptions& options) {
  obs::OpScope op(obs::OpKind::kContainment, "cq.containment",
                  options.budget);
  VQDR_COUNTER_INC("cq.containment.checks");
  VQDR_TRACE_SPAN("cq.containment");
  VQDR_CHECK(!q1.UsesNegation() && !q2.UsesNegation())
      << "containment is not supported for CQ¬";
  VQDR_CHECK_EQ(q1.head_arity(), q2.head_arity())
      << "containment between different arities";

  auto compute = [&]() -> bool {
    bool sat1 = true;
    ConjunctiveQuery n1 = q1.PropagateEqualities(&sat1);
    if (!sat1) return true;  // empty query contained in anything
    bool sat2 = true;
    ConjunctiveQuery n2 = q2.PropagateEqualities(&sat2);
    if (!sat2) return !CqSatisfiable(n1);

    bool need_patterns = n1.UsesDisequality() || n2.UsesDisequality();
    return ForEachCanonicalDb(
        n1, UnionConstants(n1, n2), need_patterns, ResolveThreads(options),
        [&](const PatternInstance& pattern) {
          if (obs::Wants(options.explain)) {
            Binding witness;
            bool pass = CqAnswerContains(n2, pattern.instance,
                                         pattern.frozen_head, nullptr,
                                         &witness, options.matcher);
            RecordPatternCheck(options.explain, "cq.sub", n2, pattern, pass,
                               witness);
            return pass;
          }
          return CqAnswerContains(n2, pattern.instance, pattern.frozen_head,
                                  nullptr, nullptr, options.matcher);
        });
  };

#ifndef VQDR_MEMO_DISABLED
  if (memo::ResolveUse(options.memo)) {
    VQDR_TRACE_SPAN("memo.containment");
    std::optional<std::string> key =
        ContainmentKey("cq.sub", CanonicalCqFingerprint(q1),
                       CanonicalCqFingerprint(q2));
    if (key.has_value()) {
      memo::Store& store = memo::ResolveStore(options.memo);
      if (auto hit = store.Get<bool>(*key)) {
        RecordMemoProbe(options.explain, "cq.sub", /*hit=*/true);
        return *hit;
      }
      RecordMemoProbe(options.explain, "cq.sub", /*hit=*/false);
      bool contained = compute();
      store.Put(*key, contained);
      return contained;
    }
  }
#endif
  return compute();
}

bool CqContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return CqContainedIn(q1, q2, CqContainmentOptions{});
}

namespace {

// Folds a finished sweep into the public result shape. A witness is
// definitive regardless of how the sweep ended; otherwise the outcome is
// the budget's stop reason (kComplete when the sweep covered everything).
ContainmentResult ResolveSweep(const SweepOutcome& sweep,
                               guard::Budget* budget) {
  ContainmentResult result;
  result.patterns_checked = sweep.patterns;
  if (!sweep.all_passed) {
    result.contained = false;
    return result;
  }
  if (sweep.internal_error) {
    result.outcome = guard::Outcome::kInternalError;
    return result;
  }
  result.outcome = guard::StopReason(budget);
  return result;
}

}  // namespace

ContainmentResult CqContainedInGoverned(const ConjunctiveQuery& q1,
                                        const ConjunctiveQuery& q2,
                                        const CqContainmentOptions& options) {
  obs::OpScope op(obs::OpKind::kContainment, "cq.containment",
                  options.budget);
  VQDR_COUNTER_INC("cq.containment.checks");
  VQDR_TRACE_SPAN("cq.containment");
  VQDR_CHECK(!q1.UsesNegation() && !q2.UsesNegation())
      << "containment is not supported for CQ¬";
  VQDR_CHECK_EQ(q1.head_arity(), q2.head_arity())
      << "containment between different arities";
  guard::Budget* budget = options.budget;

  auto compute = [&]() -> ContainmentResult {
    ContainmentResult result;
    bool sat1 = true;
    ConjunctiveQuery n1 = q1.PropagateEqualities(&sat1);
    if (!sat1) return result;  // empty query contained in anything
    bool sat2 = true;
    ConjunctiveQuery n2 = q2.PropagateEqualities(&sat2);
    if (!sat2) {
      result.contained = !CqSatisfiable(n1);
      return result;
    }

    bool need_patterns = n1.UsesDisequality() || n2.UsesDisequality();
    SweepOutcome sweep = SweepCanonicalDbs(
        n1, UnionConstants(n1, n2), need_patterns, ResolveThreads(options),
        budget, [&](const PatternInstance& pattern) {
          bool want_explain = obs::Wants(options.explain);
          Binding witness;
          bool pass = CqAnswerContains(n2, pattern.instance,
                                       pattern.frozen_head, budget,
                                       want_explain ? &witness : nullptr,
                                       options.matcher);
          // A budget stop mid-match makes the answer meaningless; report
          // "pass" so it cannot masquerade as a witness — the sweep records
          // the stop separately.
          if (budget != nullptr && budget->Stopped()) return true;
          if (want_explain) {
            RecordPatternCheck(options.explain, "cq.sub", n2, pattern, pass,
                               witness);
          }
          return pass;
        });
    return ResolveSweep(sweep, budget);
  };

#ifndef VQDR_MEMO_DISABLED
  if (memo::ResolveUse(options.memo)) {
    VQDR_TRACE_SPAN("memo.containment");
    std::optional<std::string> key =
        ContainmentKey("cq.sub", CanonicalCqFingerprint(q1),
                       CanonicalCqFingerprint(q2));
    if (key.has_value()) {
      memo::Store& store = memo::ResolveStore(options.memo);
      if (auto hit = store.Get<bool>(*key)) {
        RecordMemoProbe(options.explain, "cq.sub", /*hit=*/true);
        ContainmentResult cached;
        cached.contained = *hit;
        return cached;  // A cached verdict is complete by construction.
      }
      RecordMemoProbe(options.explain, "cq.sub", /*hit=*/false);
      ContainmentResult result = compute();
      // Cache only definitive verdicts. ResolveSweep reports every witness
      // with outcome kComplete, so this single check also admits
      // budget-stopped runs that still found a witness.
      if (guard::IsComplete(result.outcome)) {
        store.Put(*key, result.contained);
      }
      return result;
    }
  }
#endif
  return compute();
}

bool CqEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return CqContainedIn(q1, q2) && CqContainedIn(q2, q1);
}

bool UcqContainedIn(const UnionQuery& q1, const UnionQuery& q2,
                    const CqContainmentOptions& options) {
  obs::OpScope op(obs::OpKind::kContainment, "cq.containment.ucq",
                  options.budget);
  VQDR_COUNTER_INC("cq.containment.ucq_checks");
  VQDR_TRACE_SPAN("cq.containment.ucq");
  VQDR_CHECK(!q1.empty() && !q2.empty()) << "containment with empty UCQ";
  VQDR_CHECK_EQ(q1.head_arity(), q2.head_arity());

  auto compute = [&]() -> bool {
    bool q2_uses_diseq = false;
    std::set<Value> q2_constants;
    for (const ConjunctiveQuery& d2 : q2.disjuncts()) {
      VQDR_CHECK(!d2.UsesNegation()) << "containment not supported for ¬";
      if (d2.UsesDisequality()) q2_uses_diseq = true;
      for (Value c : d2.Constants()) q2_constants.insert(c);
    }

    for (const ConjunctiveQuery& disjunct : q1.disjuncts()) {
      VQDR_CHECK(!disjunct.UsesNegation())
          << "containment not supported for ¬";
      bool sat = true;
      ConjunctiveQuery normalized = disjunct.PropagateEqualities(&sat);
      if (!sat) continue;
      if (!CqSatisfiable(normalized)) continue;

      std::set<Value> constants = q2_constants;
      for (Value c : normalized.Constants()) constants.insert(c);
      bool need_patterns = normalized.UsesDisequality() || q2_uses_diseq;

      bool contained = ForEachCanonicalDb(
          normalized, constants, need_patterns, ResolveThreads(options),
          [&](const PatternInstance& pattern) {
            if (obs::Wants(options.explain)) {
              return ExplainedUcqCheck(options.explain, q2, pattern, nullptr,
                                       options.matcher);
            }
            Relation answer = EvaluateUcq(q2, pattern.instance,
                                          options.matcher);
            return answer.Contains(pattern.frozen_head);
          });
      if (!contained) return false;
    }
    return true;
  };

#ifndef VQDR_MEMO_DISABLED
  if (memo::ResolveUse(options.memo)) {
    VQDR_TRACE_SPAN("memo.containment.ucq");
    std::optional<std::string> key =
        ContainmentKey("ucq.sub", CanonicalUcqFingerprint(q1),
                       CanonicalUcqFingerprint(q2));
    if (key.has_value()) {
      memo::Store& store = memo::ResolveStore(options.memo);
      if (auto hit = store.Get<bool>(*key)) {
        RecordMemoProbe(options.explain, "ucq.sub", /*hit=*/true);
        return *hit;
      }
      RecordMemoProbe(options.explain, "ucq.sub", /*hit=*/false);
      bool contained = compute();
      store.Put(*key, contained);
      return contained;
    }
  }
#endif
  return compute();
}

bool UcqContainedIn(const UnionQuery& q1, const UnionQuery& q2) {
  return UcqContainedIn(q1, q2, CqContainmentOptions{});
}

ContainmentResult UcqContainedInGoverned(const UnionQuery& q1,
                                         const UnionQuery& q2,
                                         const CqContainmentOptions& options) {
  obs::OpScope op(obs::OpKind::kContainment, "cq.containment.ucq",
                  options.budget);
  VQDR_COUNTER_INC("cq.containment.ucq_checks");
  VQDR_TRACE_SPAN("cq.containment.ucq");
  VQDR_CHECK(!q1.empty() && !q2.empty()) << "containment with empty UCQ";
  VQDR_CHECK_EQ(q1.head_arity(), q2.head_arity());
  guard::Budget* budget = options.budget;

  auto compute = [&]() -> ContainmentResult {
    bool q2_uses_diseq = false;
    std::set<Value> q2_constants;
    for (const ConjunctiveQuery& d2 : q2.disjuncts()) {
      VQDR_CHECK(!d2.UsesNegation()) << "containment not supported for ¬";
      if (d2.UsesDisequality()) q2_uses_diseq = true;
      for (Value c : d2.Constants()) q2_constants.insert(c);
    }

    ContainmentResult result;
    for (const ConjunctiveQuery& disjunct : q1.disjuncts()) {
      VQDR_CHECK(!disjunct.UsesNegation())
          << "containment not supported for ¬";
      bool sat = true;
      ConjunctiveQuery normalized = disjunct.PropagateEqualities(&sat);
      if (!sat) continue;
      if (!CqSatisfiable(normalized)) continue;

      std::set<Value> constants = q2_constants;
      for (Value c : normalized.Constants()) constants.insert(c);
      bool need_patterns = normalized.UsesDisequality() || q2_uses_diseq;

      SweepOutcome sweep = SweepCanonicalDbs(
          normalized, constants, need_patterns, ResolveThreads(options),
          budget, [&](const PatternInstance& pattern) {
            if (obs::Wants(options.explain)) {
              return ExplainedUcqCheck(options.explain, q2, pattern, budget,
                                       options.matcher);
            }
            Relation answer = EvaluateUcq(q2, pattern.instance,
                                          options.matcher);
            if (budget != nullptr && budget->Stopped()) return true;
            return answer.Contains(pattern.frozen_head);
          });
      ContainmentResult disjunct_result = ResolveSweep(sweep, budget);
      result.patterns_checked += disjunct_result.patterns_checked;
      if (!disjunct_result.contained) {
        result.contained = false;
        result.outcome = guard::Outcome::kComplete;
        return result;
      }
      result.outcome =
          guard::MergeOutcome(result.outcome, disjunct_result.outcome);
      if (!guard::IsComplete(result.outcome)) return result;
    }
    return result;
  };

#ifndef VQDR_MEMO_DISABLED
  if (memo::ResolveUse(options.memo)) {
    VQDR_TRACE_SPAN("memo.containment.ucq");
    std::optional<std::string> key =
        ContainmentKey("ucq.sub", CanonicalUcqFingerprint(q1),
                       CanonicalUcqFingerprint(q2));
    if (key.has_value()) {
      memo::Store& store = memo::ResolveStore(options.memo);
      if (auto hit = store.Get<bool>(*key)) {
        RecordMemoProbe(options.explain, "ucq.sub", /*hit=*/true);
        ContainmentResult cached;
        cached.contained = *hit;
        return cached;
      }
      RecordMemoProbe(options.explain, "ucq.sub", /*hit=*/false);
      ContainmentResult result = compute();
      if (guard::IsComplete(result.outcome)) {
        store.Put(*key, result.contained);
      }
      return result;
    }
  }
#endif
  return compute();
}

bool UcqEquivalent(const UnionQuery& q1, const UnionQuery& q2) {
  return UcqContainedIn(q1, q2) && UcqContainedIn(q2, q1);
}

bool CqSatisfiable(const ConjunctiveQuery& q) {
  VQDR_CHECK(!q.UsesNegation()) << "satisfiability not supported for CQ¬";
  bool sat = true;
  ConjunctiveQuery normalized = q.PropagateEqualities(&sat);
  if (!sat) return false;
  // The frozen body with all-distinct variables satisfies every remaining
  // disequality between distinct terms; only x != x (already caught) fails.
  for (const TermComparison& c : normalized.disequalities()) {
    if (c.lhs == c.rhs) return false;
  }
  return true;
}

}  // namespace vqdr
