// Snapshot battery (DESIGN.md §14): the wire primitives, the exact
// serialization of engine result types, the versioned on-disk store image
// with its corruption matrix, the crash-safe save path, the background
// flusher, and the three store bugfix regressions this PR pins (cross-type
// slot poisoning, ERANGE capacity overflow, per-shard capacity floors).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <sys/stat.h>

#include "base/wire.h"
#include "chase/chain.h"
#include "core/determinacy.h"
#include "cq/parser.h"
#include "cq/serialize.h"
#include "data/serialize.h"
#include "gen/workloads.h"
#include "memo/memo.h"
#include "memo/snapshot.h"
#include "memo/store.h"

namespace vqdr {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "vqdr_snap_" + name;
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

// --- wire primitives -------------------------------------------------------

TEST(Wire, RoundTripsFixedWidthAndStrings) {
  wire::Encoder enc;
  enc.U8(0xab);
  enc.U32(0xdeadbeefu);
  enc.U64(0x0123456789abcdefull);
  enc.I64(-42);
  enc.Str("hello");
  enc.Str("");  // empty strings round-trip too
  std::string bytes = enc.Take();

  wire::Decoder dec(bytes);
  EXPECT_EQ(dec.U8(), 0xab);
  EXPECT_EQ(dec.U32(), 0xdeadbeefu);
  EXPECT_EQ(dec.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(dec.I64(), -42);
  EXPECT_EQ(dec.Str(), "hello");
  EXPECT_EQ(dec.Str(), "");
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.AtEnd());
}

TEST(Wire, TruncationFlipsOkInsteadOfThrowing) {
  wire::Encoder enc;
  enc.U64(7);
  std::string bytes = enc.Take();
  wire::Decoder dec(std::string_view(bytes).substr(0, 5));
  EXPECT_EQ(dec.U64(), 0u);
  EXPECT_FALSE(dec.ok());
  // Once bad, always bad — later reads stay zero.
  EXPECT_EQ(dec.U8(), 0u);
  EXPECT_FALSE(dec.ok());
}

TEST(Wire, StrRejectsLengthBeyondInput) {
  wire::Encoder enc;
  enc.U64(1u << 30);  // claims a gigabyte follows
  enc.Raw("xy");
  std::string bytes = enc.Take();
  wire::Decoder dec(bytes);
  EXPECT_EQ(dec.Str(), "");
  EXPECT_FALSE(dec.ok());
}

TEST(Wire, CheckCountRejectsForgedCounts) {
  std::string small(16, 'a');
  wire::Decoder dec(small);
  EXPECT_TRUE(dec.CheckCount(4, 4));
  EXPECT_TRUE(dec.ok());
  wire::Decoder dec2(small);
  EXPECT_FALSE(dec2.CheckCount(1u << 20, 8));
  EXPECT_FALSE(dec2.ok());
}

// --- engine-type serialization --------------------------------------------

TEST(SnapshotCodecs, InstanceRoundTripsExactly) {
  NamePool pool;
  Schema schema;
  schema.Add("E", 2);
  schema.Add("Unary", 1);
  schema.Add("Empty", 3);  // never populated; must survive the round trip
  Instance inst(schema);
  inst.AddFact("E", Tuple{Value(1), Value(2)});
  inst.AddFact("E", Tuple{Value(2), Value(3)});
  inst.AddFact("Unary", Tuple{Value(-7)});

  wire::Encoder enc;
  EncodeInstance(inst, enc);
  std::string bytes = enc.Take();

  wire::Decoder dec(bytes);
  Instance out;
  ASSERT_TRUE(DecodeInstance(dec, &out));
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_EQ(out.ToKey(), inst.ToKey());
  EXPECT_TRUE(out.schema().Contains("Empty"));
  EXPECT_EQ(out.schema().ArityOf("Empty"), 3);
}

TEST(SnapshotCodecs, CqAndUcqRoundTripExactly) {
  NamePool pool;
  auto q = ParseCq("Q(x, y) :- E(x, z), E(z, y), x != y", pool);
  ASSERT_TRUE(q.ok()) << q.status().message();

  wire::Encoder enc;
  EncodeCq(q.value(), enc);
  std::string bytes = enc.Take();
  wire::Decoder dec(bytes);
  ConjunctiveQuery out;
  ASSERT_TRUE(DecodeCq(dec, &out));
  EXPECT_TRUE(dec.AtEnd());
  // Name ids are preserved exactly, so the id-level rendering matches.
  EXPECT_EQ(out.ToString(), q->ToString());

  auto u = ParseUcq("Q(x) :- A(x) | Q(x) :- B(x, x)", pool);
  ASSERT_TRUE(u.ok()) << u.status().message();
  wire::Encoder enc2;
  EncodeUcq(u.value(), enc2);
  std::string bytes2 = enc2.Take();
  wire::Decoder dec2(bytes2);
  UnionQuery uout;
  ASSERT_TRUE(DecodeUcq(dec2, &uout));
  EXPECT_TRUE(dec2.AtEnd());
  ASSERT_EQ(uout.disjuncts().size(), 2u);
  EXPECT_EQ(uout.ToString(), u->ToString());
}

TEST(SnapshotCodecs, DecodersRejectDamageWithoutAborting) {
  NamePool pool;
  auto q = ParseCq("Q(x) :- E(x, y)", pool);
  ASSERT_TRUE(q.ok());
  wire::Encoder enc;
  EncodeCq(q.value(), enc);
  std::string bytes = enc.Take();
  // Every strict prefix must decode to failure, not to a crash or an abort
  // (decoders validate before touching aborting builders).
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    wire::Decoder dec(std::string_view(bytes).substr(0, cut));
    ConjunctiveQuery out;
    bool okd = DecodeCq(dec, &out);
    EXPECT_TRUE(!okd || !dec.AtEnd());
  }
}

TEST(SnapshotCodecs, BuiltinTagsAreRegistered) {
  EXPECT_TRUE(memo::HasSnapshotCodec("bool.v1"));
  EXPECT_TRUE(memo::HasSnapshotCodec("cq.v1"));
  EXPECT_TRUE(memo::HasSnapshotCodec("ucq.v1"));
  EXPECT_TRUE(memo::HasSnapshotCodec("chase.vinv.v1"));
  EXPECT_TRUE(memo::HasSnapshotCodec("chase.chain.v1"));
  EXPECT_TRUE(memo::HasSnapshotCodec("det.v1"));
  EXPECT_FALSE(memo::HasSnapshotCodec("nosuch.v1"));
}

// --- bugfix regressions ----------------------------------------------------

// Pre-PR, PutErased early-returned on any existing key while GetErased
// treated a type mismatch as a miss: one Put<int> under a key poisoned the
// slot — every later Get<double> missed and every later Put<double> was
// dropped, forever. Now a differently-typed Put replaces the occupant.
TEST(StoreRegression, CrossTypePutReplacesPoisonedSlot) {
  memo::Store store(16);
  store.Put<int>("k", 7);
  ASSERT_EQ(store.Get<double>("k"), nullptr);  // miss, as documented
  store.Put<double>("k", 2.5);                 // pre-PR: silently dropped
  auto d = store.Get<double>("k");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(*d, 2.5);
  // The old occupant is gone (replace, not shadow) and the store never
  // counted two entries for one key.
  EXPECT_EQ(store.Get<int>("k"), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

// Pre-PR, CapacityFromEnv accepted strtoull's ERANGE result (ULLONG_MAX
// clamped), making the store effectively unbounded on a fat-fingered env
// var. ParseCapacityEnvValue is the extracted, testable core: 0 = invalid.
TEST(StoreRegression, CapacityEnvOverflowIsRejected) {
  EXPECT_EQ(memo::ParseCapacityEnvValue("99999999999999999999999"), 0u);
  EXPECT_EQ(memo::ParseCapacityEnvValue("18446744073709551616"), 0u);  // 2^64
  EXPECT_EQ(memo::ParseCapacityEnvValue("-1"), 0u);
  EXPECT_EQ(memo::ParseCapacityEnvValue("12x"), 0u);
  EXPECT_EQ(memo::ParseCapacityEnvValue(""), 0u);
  EXPECT_EQ(memo::ParseCapacityEnvValue("0"), 0u);
  EXPECT_EQ(memo::ParseCapacityEnvValue("8"), 8u);
  EXPECT_EQ(memo::ParseCapacityEnvValue("8192"), 8192u);
}

// Pre-PR, capacity was split per shard with a floor of one: Store(10) with
// the default 8 shards held at most 8 entries and could evict after the
// second insert into one shard. Capacity is now accounted globally.
TEST(StoreRegression, SmallCapacityIsNotFlooredAwayBySharding) {
  memo::Store store(10);  // default 8 shards
  for (int i = 0; i < 10; ++i) {
    store.Put<int>("key-" + std::to_string(i), i);
  }
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.Stats().evictions, 0u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(store.Get<int>("key-" + std::to_string(i)), nullptr) << i;
  }
  // The bound still holds globally: an 11th entry evicts somebody.
  store.Put<int>("key-10", 10);
  EXPECT_LE(store.size(), 10u);
  EXPECT_EQ(store.Stats().evictions, 1u);
}

// --- snapshot round trips --------------------------------------------------

TEST(Snapshot, EmptyStoreRoundTrips) {
  memo::Store store(16);
  memo::SnapshotIoStats wstats;
  std::string image = memo::SerializeSnapshot(store, &wstats);
  EXPECT_EQ(wstats.entries, 0u);

  memo::Store fresh(16);
  memo::SnapshotIoStats rstats = memo::DeserializeSnapshot(image, fresh);
  EXPECT_FALSE(rstats.corrupt) << rstats.error;
  EXPECT_EQ(rstats.entries, 0u);
  EXPECT_EQ(fresh.size(), 0u);
}

TEST(Snapshot, BoolEntriesRoundTrip) {
  memo::Store store(16);
  store.Put<bool>("yes", true);
  store.Put<bool>("no", false);
  std::string image = memo::SerializeSnapshot(store, nullptr);

  memo::Store fresh(16);
  memo::SnapshotIoStats stats = memo::DeserializeSnapshot(image, fresh);
  EXPECT_FALSE(stats.corrupt) << stats.error;
  EXPECT_EQ(stats.entries, 2u);
  auto yes = fresh.Get<bool>("yes");
  auto no = fresh.Get<bool>("no");
  ASSERT_NE(yes, nullptr);
  ASSERT_NE(no, nullptr);
  EXPECT_TRUE(*yes);
  EXPECT_FALSE(*no);
}

TEST(Snapshot, CodecLessTypesAreSkippedOnWrite) {
  memo::Store store(16);
  store.Put<bool>("b", true);
  store.Put<int>("i", 42);  // no codec registered for int
  memo::SnapshotIoStats stats;
  std::string image = memo::SerializeSnapshot(store, &stats);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.skipped, 1u);

  memo::Store fresh(16);
  memo::SnapshotIoStats rstats = memo::DeserializeSnapshot(image, fresh);
  EXPECT_FALSE(rstats.corrupt);
  EXPECT_EQ(rstats.entries, 1u);
  EXPECT_EQ(fresh.size(), 1u);
}

// The warm-boot story end to end, in process: run the real determinacy
// engine against a private store, snapshot it, restore into a fresh store,
// and verify the re-run is a pure hit with an identical result.
TEST(Snapshot, DeterminacyWorkloadSurvivesRoundTrip) {
  ViewSet views = PathViews(2);
  ConjunctiveQuery q = ChainQuery(2);

  memo::Store cold(64);
  memo::MemoOptions cold_opts{memo::Use::kOn, &cold};
  UnrestrictedDeterminacyResult first =
      DecideUnrestrictedDeterminacy(views, q, nullptr, cold_opts);
  ASSERT_TRUE(guard::IsComplete(first.outcome));
  ASSERT_GE(cold.size(), 1u);

  memo::SnapshotIoStats wstats;
  std::string image = memo::SerializeSnapshot(cold, &wstats);
  EXPECT_GE(wstats.entries, 1u);
  EXPECT_EQ(wstats.skipped, 0u) << "an engine type lost its codec";

  memo::Store warm(64);
  memo::SnapshotIoStats rstats = memo::DeserializeSnapshot(image, warm);
  ASSERT_FALSE(rstats.corrupt) << rstats.error;
  EXPECT_EQ(rstats.entries, wstats.entries);

  std::uint64_t misses_before = warm.Stats().misses;
  memo::MemoOptions warm_opts{memo::Use::kOn, &warm};
  UnrestrictedDeterminacyResult replay =
      DecideUnrestrictedDeterminacy(views, q, nullptr, warm_opts);
  EXPECT_EQ(warm.Stats().misses, misses_before) << "restored entry missed";
  EXPECT_GE(warm.Stats().hits, 1u);
  EXPECT_EQ(replay.determined, first.determined);
  EXPECT_EQ(replay.canonical_view_image.ToKey(),
            first.canonical_view_image.ToKey());
  EXPECT_EQ(replay.chase_inverse.ToKey(), first.chase_inverse.ToKey());
  EXPECT_EQ(replay.frozen_head, first.frozen_head);
  ASSERT_EQ(replay.canonical_rewriting.has_value(),
            first.canonical_rewriting.has_value());
  if (replay.canonical_rewriting.has_value()) {
    EXPECT_EQ(replay.canonical_rewriting->ToString(),
              first.canonical_rewriting->ToString());
  }
}

// The chase chain rides through its own codec, including minted-null
// factory state: the warm run must keep producing fresh ids above the
// snapshot's, not collide with restored ones.
TEST(Snapshot, ChaseChainWorkloadSurvivesRoundTrip) {
  ViewSet views = PathViews(2);
  ConjunctiveQuery q = ChainQuery(3);
  ChaseChainOptions options;
  options.levels = 2;

  memo::Store cold(64);
  memo::MemoOptions cold_opts{memo::Use::kOn, &cold};
  options.memo = cold_opts;
  ValueFactory f1;
  ChaseChain first = BuildChaseChain(views, q, options, f1);
  ASSERT_GE(cold.size(), 1u);

  std::string image = memo::SerializeSnapshot(cold, nullptr);
  memo::Store warm(64);
  ASSERT_FALSE(memo::DeserializeSnapshot(image, warm).corrupt);

  memo::MemoOptions warm_opts{memo::Use::kOn, &warm};
  options.memo = warm_opts;
  ValueFactory f2;
  ChaseChain replay = BuildChaseChain(views, q, options, f2);
  EXPECT_GE(warm.Stats().hits, 1u);
  ASSERT_EQ(replay.d_prime.size(), first.d_prime.size());
  for (std::size_t k = 0; k < replay.d_prime.size(); ++k) {
    EXPECT_EQ(replay.d_prime[k].ToKey(), first.d_prime[k].ToKey()) << k;
  }
  // Factory replay: both runs end at the same next id.
  EXPECT_EQ(f2.next_id(), f1.next_id());
}

TEST(Snapshot, RestorePreservesLruOrder) {
  memo::Store cold(/*capacity=*/3, /*shards=*/1);
  cold.Put<bool>("a", true);
  cold.Put<bool>("b", true);
  cold.Put<bool>("c", true);
  ASSERT_NE(cold.Get<bool>("a"), nullptr);  // "a" becomes most-recent

  std::string image = memo::SerializeSnapshot(cold, nullptr);
  memo::Store warm(/*capacity=*/3, /*shards=*/1);
  ASSERT_FALSE(memo::DeserializeSnapshot(image, warm).corrupt);

  // The restored recency order must match: inserting one more evicts "b"
  // (the least-recently-used), exactly as it would have in `cold`.
  warm.Put<bool>("d", true);
  EXPECT_EQ(warm.Get<bool>("b"), nullptr);
  EXPECT_NE(warm.Get<bool>("a"), nullptr);
  EXPECT_NE(warm.Get<bool>("c"), nullptr);
  EXPECT_NE(warm.Get<bool>("d"), nullptr);
}

// --- the corruption matrix -------------------------------------------------

// A valid two-entry image to damage.
std::string ValidImage() {
  memo::Store store(16);
  store.Put<bool>("alpha", true);
  store.Put<bool>("beta", false);
  return memo::SerializeSnapshot(store, nullptr);
}

// Every damaged load must leave the store exactly as it was (empty), set
// corrupt, and never crash — the cold-boot-on-corruption contract.
void ExpectWholeFileReject(const std::string& image, const char* what) {
  memo::Store store(16);
  memo::SnapshotIoStats stats = memo::DeserializeSnapshot(image, store);
  EXPECT_TRUE(stats.corrupt) << what;
  EXPECT_EQ(stats.entries, 0u) << what;
  EXPECT_EQ(store.size(), 0u) << what << ": store must stay untouched";
}

TEST(SnapshotCorruption, ZeroLengthFile) {
  ExpectWholeFileReject("", "zero-length");
}

TEST(SnapshotCorruption, BadMagic) {
  std::string image = ValidImage();
  image[0] = 'X';
  ExpectWholeFileReject(image, "bad magic");
}

TEST(SnapshotCorruption, VersionSkew) {
  std::string image = ValidImage();
  image[8] = static_cast<char>(memo::kSnapshotVersion + 1);
  ExpectWholeFileReject(image, "future version");
}

TEST(SnapshotCorruption, TruncatedAnywhere) {
  std::string image = ValidImage();
  // Chop at every prefix length: header cuts, mid-entry cuts, CRC cuts.
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    ExpectWholeFileReject(image.substr(0, cut),
                          ("truncated at " + std::to_string(cut)).c_str());
  }
}

TEST(SnapshotCorruption, TrailingGarbage) {
  std::string image = ValidImage() + "junk";
  ExpectWholeFileReject(image, "trailing bytes");
}

TEST(SnapshotCorruption, FlippedPayloadByteFailsCrc) {
  std::string image = ValidImage();
  // Flip one byte inside the first entry body (past magic+version+count =
  // 8 + 4 + 8 = 20, plus the 4-byte body length).
  image[26] = static_cast<char>(image[26] ^ 0x40);
  ExpectWholeFileReject(image, "flipped body byte");
}

TEST(SnapshotCorruption, UndecodablePayloadOfKnownTagRejectsFile) {
  // Forge an entry with the registered bool.v1 tag but a 3-byte payload the
  // codec rejects — structural damage, so the whole file goes.
  wire::Encoder body;
  body.Str("bool.v1");
  body.Str("key");
  body.Str("zzz");
  std::string b = body.Take();
  wire::Encoder enc;
  enc.Raw("VQDRSNAP");
  enc.U32(memo::kSnapshotVersion);
  enc.U64(1);
  enc.U32(static_cast<std::uint32_t>(b.size()));
  enc.Raw(b);
  enc.U32(memo::SnapshotCrc32(b));
  ExpectWholeFileReject(enc.Take(), "undecodable known-tag payload");
}

TEST(SnapshotCorruption, UnknownTagWithValidCrcIsSkippedNotFatal) {
  // An unregistered tag with an intact CRC is a snapshot from a newer
  // build: skip that entry, keep the rest.
  wire::Encoder unknown_body;
  unknown_body.Str("future.type.v9");
  unknown_body.Str("their-key");
  unknown_body.Str("\x01\x02\x03");
  std::string ub = unknown_body.Take();

  wire::Encoder known_body;
  known_body.Str("bool.v1");
  known_body.Str("our-key");
  known_body.Str("\x01");
  std::string kb = known_body.Take();

  wire::Encoder enc;
  enc.Raw("VQDRSNAP");
  enc.U32(memo::kSnapshotVersion);
  enc.U64(2);
  enc.U32(static_cast<std::uint32_t>(ub.size()));
  enc.Raw(ub);
  enc.U32(memo::SnapshotCrc32(ub));
  enc.U32(static_cast<std::uint32_t>(kb.size()));
  enc.Raw(kb);
  enc.U32(memo::SnapshotCrc32(kb));

  memo::Store store(16);
  memo::SnapshotIoStats stats =
      memo::DeserializeSnapshot(enc.Take(), store);
  EXPECT_FALSE(stats.corrupt) << stats.error;
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.skipped, 1u);
  auto hit = store.Get<bool>("our-key");
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(*hit);
}

TEST(SnapshotCorruption, ForgedEntryCountIsRejected) {
  wire::Encoder enc;
  enc.Raw("VQDRSNAP");
  enc.U32(memo::kSnapshotVersion);
  enc.U64(~std::uint64_t{0});  // claims 2^64-1 entries in a 20-byte file
  ExpectWholeFileReject(enc.Take(), "forged entry count");
}

// --- the file path ---------------------------------------------------------

TEST(SnapshotFile, SaveLoadRoundTripAndMissingFileIsCleanColdBoot) {
  std::string path = TempPath("roundtrip.bin");
  std::remove(path.c_str());

  memo::Store missing_target(16);
  memo::SnapshotIoStats miss = memo::LoadSnapshot(missing_target, path);
  EXPECT_FALSE(miss.corrupt);
  EXPECT_EQ(miss.entries, 0u);

  memo::Store store(16);
  store.Put<bool>("k", true);
  memo::SnapshotIoStats wstats;
  ASSERT_TRUE(memo::SaveSnapshot(store, path, &wstats).ok());
  EXPECT_EQ(wstats.entries, 1u);
  EXPECT_GT(wstats.bytes, 0u);
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp")) << "temp file must not survive";

  memo::Store fresh(16);
  memo::SnapshotIoStats rstats = memo::LoadSnapshot(fresh, path);
  EXPECT_FALSE(rstats.corrupt) << rstats.error;
  EXPECT_EQ(rstats.entries, 1u);
  ASSERT_NE(fresh.Get<bool>("k"), nullptr);

  // Overwrite is atomic-rename, not append: a second save with more
  // entries fully replaces the image.
  store.Put<bool>("k2", false);
  ASSERT_TRUE(memo::SaveSnapshot(store, path).ok());
  memo::Store fresh2(16);
  EXPECT_EQ(memo::LoadSnapshot(fresh2, path).entries, 2u);
  std::remove(path.c_str());
}

TEST(SnapshotFile, SaveIntoMissingDirectoryFailsCleanly) {
  memo::Store store(16);
  store.Put<bool>("k", true);
  Status s = memo::SaveSnapshot(store, TempPath("no/such/dir/snap.bin"));
  EXPECT_FALSE(s.ok());
}

TEST(SnapshotFile, CorruptFileOnDiskColdBootsCleanly) {
  std::string path = TempPath("corrupt.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a snapshot at all", f);
  std::fclose(f);

  memo::Store store(16);
  memo::SnapshotIoStats stats = memo::LoadSnapshot(store, path);
  EXPECT_TRUE(stats.corrupt);
  EXPECT_EQ(store.size(), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotFile, LoadSnapshotFromEnvUsesTheVariable) {
  std::string path = TempPath("env.bin");
  memo::Store source(16);
  source.Put<bool>("env-key", true);
  ASSERT_TRUE(memo::SaveSnapshot(source, path).ok());

  ::setenv("VQDR_MEMO_SNAPSHOT", path.c_str(), 1);
  memo::Store target(16);
  EXPECT_TRUE(memo::LoadSnapshotFromEnv(target));
  EXPECT_NE(target.Get<bool>("env-key"), nullptr);
  ::unsetenv("VQDR_MEMO_SNAPSHOT");

  memo::Store untouched(16);
  EXPECT_FALSE(memo::LoadSnapshotFromEnv(untouched));
  EXPECT_EQ(untouched.size(), 0u);
  std::remove(path.c_str());
}

// --- the background flusher ------------------------------------------------

TEST(SnapshotFlusher, ManualFlushWritesAndCleanSkipsWhenUnchanged) {
  std::string path = TempPath("flusher_manual.bin");
  std::remove(path.c_str());
  memo::Store store(16);
  memo::SnapshotFlusher flusher(store, path, /*interval_ms=*/0);

  store.Put<bool>("k", true);
  memo::SnapshotIoStats stats;
  ASSERT_TRUE(flusher.FlushNow(&stats).ok());
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_TRUE(FileExists(path));

  // Stop with final_flush: nothing changed, so the final write may be a
  // clean skip — either way the file stays valid.
  flusher.Stop(/*final_flush=*/true);
  memo::Store fresh(16);
  EXPECT_EQ(memo::LoadSnapshot(fresh, path).entries, 1u);
  std::remove(path.c_str());
}

TEST(SnapshotFlusher, PeriodicFlushPicksUpNewEntries) {
  std::string path = TempPath("flusher_periodic.bin");
  std::remove(path.c_str());
  memo::Store store(16);
  {
    memo::SnapshotFlusher flusher(store, path, /*interval_ms=*/10);
    store.Put<bool>("k", true);
    // Wait (bounded) for a background flush to land.
    for (int i = 0; i < 300 && !FileExists(path); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(FileExists(path));
  }  // destructor: stop + final flush
  memo::Store fresh(16);
  memo::SnapshotIoStats stats = memo::LoadSnapshot(fresh, path);
  EXPECT_FALSE(stats.corrupt) << stats.error;
  EXPECT_EQ(stats.entries, 1u);
  std::remove(path.c_str());
}

// tsan coverage: writers install entries while the flusher serializes and
// a reader loads the written file — no torn state, every written image is
// structurally valid.
TEST(SnapshotFlusher, ConcurrentInstallsAndFlushesStayConsistent) {
  std::string path = TempPath("flusher_concurrent.bin");
  std::remove(path.c_str());
  memo::Store store(2048);
  memo::SnapshotFlusher flusher(store, path, /*interval_ms=*/1);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&store, &stop, t] {
      for (int i = 0; !stop.load(std::memory_order_relaxed) && i < 400;
           ++i) {
        store.Put<bool>("w" + std::to_string(t) + "-" + std::to_string(i),
                        (i & 1) != 0);
      }
    });
  }
  // Meanwhile, every image that appears on disk must load cleanly.
  for (int round = 0; round < 20; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    if (!FileExists(path)) continue;
    memo::Store probe(2048);
    memo::SnapshotIoStats stats = memo::LoadSnapshot(probe, path);
    EXPECT_FALSE(stats.corrupt) << stats.error;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) w.join();
  flusher.Stop(/*final_flush=*/true);

  memo::Store final_probe(2048);
  memo::SnapshotIoStats stats = memo::LoadSnapshot(final_probe, path);
  EXPECT_FALSE(stats.corrupt) << stats.error;
  EXPECT_EQ(stats.entries, 3u * 400u)
      << "final flush runs after all writers joined";
  std::remove(path.c_str());
}

// --- observability ---------------------------------------------------------

TEST(SnapshotActivity, CountersAdvanceAndRenderInReportFormat) {
  memo::SnapshotActivity before = memo::GlobalSnapshotActivity();

  memo::Store store(16);
  store.Put<bool>("k", true);
  std::string path = TempPath("activity.bin");
  ASSERT_TRUE(memo::SaveSnapshot(store, path).ok());
  memo::Store fresh(16);
  ASSERT_FALSE(memo::LoadSnapshot(fresh, path).corrupt);
  memo::Store reject(16);
  memo::DeserializeSnapshot("garbage-image", reject);

  memo::SnapshotActivity after = memo::GlobalSnapshotActivity();
  EXPECT_GE(after.flushes, before.flushes + 1);
  EXPECT_GE(after.flushed_entries, before.flushed_entries + 1);
  EXPECT_GE(after.loads, before.loads + 1);
  EXPECT_GE(after.loaded_entries, before.loaded_entries + 1);
  EXPECT_GE(after.corrupt, before.corrupt + 1);
  EXPECT_TRUE(after.any());

  memo::SnapshotActivity sample;
  sample.loads = 1;
  sample.loaded_entries = 12;
  sample.flushes = 3;
  sample.flushed_entries = 12;
  sample.clean_skips = 1;
  EXPECT_EQ(sample.ToString(),
            "loads=1/12 skipped=0 corrupt=0 flushes=3/12 clean_skips=1");
  EXPECT_FALSE(memo::SnapshotActivity{}.any());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vqdr
