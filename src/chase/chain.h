#ifndef VQDR_CHASE_CHAIN_H_
#define VQDR_CHASE_CHAIN_H_

#include <vector>

#include "cq/canonical.h"
#include "cq/conjunctive_query.h"
#include "guard/budget.h"
#include "memo/memo.h"
#include "obs/explain.h"
#include "views/view_set.h"

namespace vqdr {

/// The chase chain {D_k, S_k, S'_k, D'_k} from the proof of Theorem 3.3.
///
///   D_0  = [Q]              S_0  = V([Q])
///   S'_0 = ∅                D'_0 = V_∅^{-1}(S_0)
///   S'_{k+1} = V(D'_k)      D_{k+1} = V_{D_k}^{-1}(S'_{k+1})
///   S_{k+1}  = V(D_{k+1})   D'_{k+1} = V_{D'_k}^{-1}(S_{k+1})
///
/// (The last step reads S'_{k+1} in the paper's text, which is a typo: with
/// S'_{k+1} = V(D'_k) the chase would add nothing and the chain would not
/// interleave; Proposition 3.6's properties 2/4/5 pin down the recurrence
/// used here, and the tests verify those properties hold level by level.)
///
/// D_∞ = ∪D_k and D'_∞ = ∪D'_k have equal view images but, when Q is not
/// determined, different query answers — the paper's separating pair.
struct ChaseChain {
  /// The frozen query [Q] and its head (level-0 data).
  FrozenQuery frozen_query;

  /// Levels 0..n of each sequence.
  std::vector<Instance> d;        // D_k
  std::vector<Instance> s;        // S_k
  std::vector<Instance> s_prime;  // S'_k
  std::vector<Instance> d_prime;  // D'_k

  /// Why the build ended. kComplete when all requested levels were built;
  /// otherwise the budget's stop reason (or kCancelled for a progress-
  /// callback stop, kInternalError for a captured allocation failure).
  /// Levels are only appended whole: whatever the outcome, every level
  /// present is exact.
  guard::Outcome outcome = guard::Outcome::kComplete;
};

/// Knobs for BuildChaseChain.
struct ChaseChainOptions {
  /// Builds levels 0..levels (levels+1 in total).
  int levels = 0;

  /// Optional resource budget: checkpointed per chased view tuple and
  /// charged per materialized atom; spec().max_chase_levels additionally
  /// caps the chain depth. A trip truncates the chain at a level boundary —
  /// the partially-built level is discarded. nullptr = ungoverned.
  guard::Budget* budget = nullptr;

  /// Result memoization policy. Chase results are cached under an exact key
  /// (views + query serialization + levels + factory state) and only when
  /// the build ran to kComplete; a hit replays the factory advance so the
  /// caller observes byte-identical state. See DESIGN.md §9.
  memo::MemoOptions memo;

  /// Optional decision-provenance sink (DESIGN.md §10): one kChaseLevel
  /// event per completed level carrying the four instance sizes (|D_k|,
  /// |S_k|, |S'_k|, |D'_k|) and the count of fresh nulls the level minted,
  /// plus kMemo events for cache probes. nullptr (the default) records
  /// nothing.
  obs::ExplainLog* explain = nullptr;
};

/// Builds `levels`+1 levels of the chain for pure CQ views and query.
/// Reports each completed level through obs::ReportProgress ("chase.level");
/// a progress callback returning false truncates the chain at that level
/// (every level present is still exact).
ChaseChain BuildChaseChain(const ViewSet& views, const ConjunctiveQuery& q,
                           int levels, ValueFactory& factory);

/// Governed variant: same chain, bounded by options.budget.
ChaseChain BuildChaseChain(const ViewSet& views, const ConjunctiveQuery& q,
                           const ChaseChainOptions& options,
                           ValueFactory& factory);

}  // namespace vqdr

#endif  // VQDR_CHASE_CHAIN_H_
