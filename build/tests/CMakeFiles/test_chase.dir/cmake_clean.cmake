file(REMOVE_RECURSE
  "CMakeFiles/test_chase.dir/chase_test.cc.o"
  "CMakeFiles/test_chase.dir/chase_test.cc.o.d"
  "test_chase"
  "test_chase.pdb"
  "test_chase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
