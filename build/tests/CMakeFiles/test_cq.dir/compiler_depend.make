# Empty compiler generated dependencies file for test_cq.
# This may be replaced when dependencies are built.
