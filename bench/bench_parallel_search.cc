// Parallel engine scaling: the sharded determinacy search, monotonicity
// scan, CQ(≠) pattern sweep, and determinacy batch at thread counts 1–8
// against the serial baseline. Each threaded variant reports a
// `speedup_vs_serial` counter (serial wall time measured once per workload
// divided by the variant's mean iteration time), so the emitted
// BENCH_parallel_search.json carries the scaling curve wherever it runs.
// The verdicts are scheduling-independent, so every variant computes the
// same answer — only the wall clock moves.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_json.h"

#include "core/determinacy.h"
#include "core/determinacy_batch.h"
#include "core/finite_search.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "gen/random_query.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

// The no-counterexample workload forces full sweeps (512 instances at
// domain 3 over {E/2}): parallel speedups only show on work that cannot
// early-exit.
struct SearchWorkload {
  Schema base{{"E", 2}};
  ViewSet views;
  Query q{Query::FromCq(ConjunctiveQuery{"Q", {}})};
  EnumerationOptions options;
};

SearchWorkload FullSweepWorkload() {
  NamePool pool;
  SearchWorkload w;
  w.views = PathViews(2);
  w.q = Query::FromCq(ChainQuery(3));
  w.options.domain_size = 3;
  return w;
}

double SecondsPerRun(const std::function<void()>& run) {
  auto start = std::chrono::steady_clock::now();
  run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void BM_ParallelDeterminacySearch(benchmark::State& state) {
  SearchWorkload w = FullSweepWorkload();
  EnumerationOptions serial = w.options;
  serial.threads = 1;
  double serial_seconds = SecondsPerRun([&] {
    auto r = SearchDeterminacyCounterexample(w.views, w.q, w.base, serial);
    benchmark::DoNotOptimize(r);
  });
  EnumerationOptions options = w.options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = SearchDeterminacyCounterexample(w.views, w.q, w.base,
                                                  options);
    benchmark::DoNotOptimize(result);
    state.counters["instances"] =
        static_cast<double>(result.instances_examined);
  }
  state.counters["threads"] = static_cast<double>(options.threads);
  double per_iter =
      state.iterations() > 0
          ? SecondsPerRun([&] {
              auto r = SearchDeterminacyCounterexample(w.views, w.q, w.base,
                                                       options);
              benchmark::DoNotOptimize(r);
            })
          : serial_seconds;
  state.counters["speedup_vs_serial"] =
      per_iter > 0 ? serial_seconds / per_iter : 0.0;
}
BENCHMARK(BM_ParallelDeterminacySearch)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelMonotonicitySearch(benchmark::State& state) {
  SearchWorkload w = FullSweepWorkload();
  EnumerationOptions serial = w.options;
  serial.threads = 1;
  double serial_seconds = SecondsPerRun([&] {
    auto r = SearchMonotonicityViolation(w.views, w.q, w.base, serial);
    benchmark::DoNotOptimize(r);
  });
  EnumerationOptions options = w.options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = SearchMonotonicityViolation(w.views, w.q, w.base, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(options.threads);
  double per_iter = SecondsPerRun([&] {
    auto r = SearchMonotonicityViolation(w.views, w.q, w.base, options);
    benchmark::DoNotOptimize(r);
  });
  state.counters["speedup_vs_serial"] =
      per_iter > 0 ? serial_seconds / per_iter : 0.0;
}
BENCHMARK(BM_ParallelMonotonicitySearch)
    ->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelContainmentSweep(benchmark::State& state) {
  // A ≠-laden pair with enough variables that the identification-pattern
  // sweep dominates.
  NamePool pool;
  ConjunctiveQuery q1 =
      ParseCq("Q(x) :- E(x, y), E(y, z), E(z, w), P(w)", pool).value();
  q1.AddDisequality(Term::Var("x"), Term::Var("w"));
  ConjunctiveQuery q2 = ParseCq("Q(x) :- E(x, y), E(y, z)", pool).value();
  q2.AddDisequality(Term::Var("x"), Term::Var("z"));

  CqContainmentOptions serial;
  double serial_seconds = SecondsPerRun([&] {
    bool r = CqContainedIn(q1, q2, serial);
    benchmark::DoNotOptimize(r);
  });
  CqContainmentOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    bool contained = CqContainedIn(q1, q2, options);
    benchmark::DoNotOptimize(contained);
  }
  state.counters["threads"] = static_cast<double>(options.threads);
  double per_iter = SecondsPerRun([&] {
    bool r = CqContainedIn(q1, q2, options);
    benchmark::DoNotOptimize(r);
  });
  state.counters["speedup_vs_serial"] =
      per_iter > 0 ? serial_seconds / per_iter : 0.0;
}
BENCHMARK(BM_ParallelContainmentSweep)
    ->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_DeterminacyBatch(benchmark::State& state) {
  std::vector<DeterminacyBatchItem> items;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    Rng rng(seed);
    RandomCqOptions copts;
    copts.max_atoms = 4;
    DeterminacyBatchItem item;
    item.views = RandomCqViews(rng, copts, 2);
    item.query = RandomCq(rng, copts);
    items.push_back(std::move(item));
  }
  double serial_seconds = SecondsPerRun([&] {
    auto r = DecideUnrestrictedDeterminacyBatch(items, 1);
    benchmark::DoNotOptimize(r);
  });
  int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto results = DecideUnrestrictedDeterminacyBatch(items, threads);
    benchmark::DoNotOptimize(results);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["items"] = static_cast<double>(items.size());
  double per_iter = SecondsPerRun([&] {
    auto r = DecideUnrestrictedDeterminacyBatch(items, threads);
    benchmark::DoNotOptimize(r);
  });
  state.counters["speedup_vs_serial"] =
      per_iter > 0 ? serial_seconds / per_iter : 0.0;
}
BENCHMARK(BM_DeterminacyBatch)
    ->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("parallel_search");
