# Validates a BENCH_<name>.json produced by bench/bench_json.h: it must
# parse, name the bench, carry a wall time, and report >= MIN_OBS_COUNTERS
# obs counters (default 3; the bench fixtures pass 0 for -DVQDR_OBS=OFF
# builds, where the macro layer is compiled out and an empty obs block is
# the correct output).
# Usage: cmake -DJSON_FILE=path/to/BENCH_x.json -P check_bench_json.cmake
#
# Optionally pass -DREQUIRE_BENCH_COUNTERS=a,b,c (comma-separated): each
# named user counter must appear in at least one benchmark record. The memo
# fixture uses this to pin hit_rate and speedup_vs_cold into BENCH_memo.json.
if(NOT DEFINED MIN_OBS_COUNTERS)
  set(MIN_OBS_COUNTERS 3)
endif()
file(READ "${JSON_FILE}" content)
string(JSON bench_name GET "${content}" bench)
string(JSON wall_time GET "${content}" wall_time_s)
string(JSON n_counters LENGTH "${content}" obs counters)
if(n_counters LESS MIN_OBS_COUNTERS)
  message(FATAL_ERROR
    "${JSON_FILE}: expected >= ${MIN_OBS_COUNTERS} obs counters, got ${n_counters}")
endif()

# Every histogram in the obs block must carry the fixed 32-entry log2
# buckets array (obs/metrics.h kHistogramBuckets) — the field downstream
# consumers (ExportPrometheusText, bench dashboards) key on.
string(JSON n_histograms ERROR_VARIABLE hist_error LENGTH "${content}" obs histograms)
if(NOT hist_error AND n_histograms GREATER 0)
  math(EXPR last_hist "${n_histograms} - 1")
  foreach(i RANGE ${last_hist})
    string(JSON hist_name MEMBER "${content}" obs histograms ${i})
    string(JSON n_buckets ERROR_VARIABLE bucket_error
           LENGTH "${content}" obs histograms "${hist_name}" buckets)
    if(bucket_error OR NOT n_buckets EQUAL 32)
      message(FATAL_ERROR
        "${JSON_FILE}: histogram '${hist_name}' lacks a 32-entry buckets array"
        " (got '${n_buckets}${bucket_error}')")
    endif()
  endforeach()
  message(STATUS "${JSON_FILE}: ${n_histograms} histograms carry 32-entry buckets")
endif()

if(DEFINED REQUIRE_BENCH_COUNTERS)
  string(REPLACE "," ";" required_counters "${REQUIRE_BENCH_COUNTERS}")
  string(JSON n_benchmarks LENGTH "${content}" benchmarks)
  if(n_benchmarks LESS 1)
    message(FATAL_ERROR "${JSON_FILE}: no benchmark records")
  endif()
  math(EXPR last_record "${n_benchmarks} - 1")
  foreach(counter IN LISTS required_counters)
    set(counter_found FALSE)
    foreach(i RANGE ${last_record})
      string(JSON value ERROR_VARIABLE json_error
             GET "${content}" benchmarks ${i} counters ${counter})
      if(NOT json_error)
        set(counter_found TRUE)
        message(STATUS "${JSON_FILE}: counter ${counter}=${value} (record ${i})")
        break()
      endif()
    endforeach()
    if(NOT counter_found)
      message(FATAL_ERROR
        "${JSON_FILE}: required counter '${counter}' missing from every benchmark record")
    endif()
  endforeach()
endif()

message(STATUS "${JSON_FILE} ok: bench=${bench_name} wall_time_s=${wall_time} obs_counters=${n_counters}")
