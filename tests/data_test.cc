// Tests for the data substrate: relations, instances, schemas, isomorphism.

#include <gtest/gtest.h>

#include "data/instance.h"
#include "data/isomorphism.h"
#include "data/relation.h"
#include "data/schema.h"

namespace vqdr {
namespace {

TEST(RelationTest, InsertDeduplicatesAndSorts) {
  Relation r(2);
  EXPECT_TRUE(r.Insert(MakeTuple({2, 1})));
  EXPECT_TRUE(r.Insert(MakeTuple({1, 2})));
  EXPECT_FALSE(r.Insert(MakeTuple({2, 1})));
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuples()[0], MakeTuple({1, 2}));
  EXPECT_EQ(r.tuples()[1], MakeTuple({2, 1}));
}

TEST(RelationTest, ContainsAndErase) {
  Relation r(1);
  r.Insert(MakeTuple({5}));
  EXPECT_TRUE(r.Contains(MakeTuple({5})));
  EXPECT_FALSE(r.Contains(MakeTuple({6})));
  EXPECT_TRUE(r.Erase(MakeTuple({5})));
  EXPECT_FALSE(r.Erase(MakeTuple({5})));
  EXPECT_TRUE(r.empty());
}

TEST(RelationTest, PropositionTruth) {
  Relation p(0);
  EXPECT_FALSE(p.AsBool());
  p.SetBool(true);
  EXPECT_TRUE(p.AsBool());
  p.SetBool(false);
  EXPECT_FALSE(p.AsBool());
}

TEST(RelationTest, SetOperations) {
  Relation a(1, {MakeTuple({1}), MakeTuple({2})});
  Relation b(1, {MakeTuple({2}), MakeTuple({3})});
  EXPECT_EQ(a.Union(b).size(), 3u);
  EXPECT_EQ(a.Intersect(b).size(), 1u);
  EXPECT_EQ(a.Difference(b).size(), 1u);
  EXPECT_TRUE(a.Intersect(b).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(RelationTest, ApplyMergesCollisions) {
  Relation r(2, {MakeTuple({1, 2}), MakeTuple({3, 2})});
  Relation image = r.Apply([](Value v) {
    return v.id == 3 ? Value(1) : v;  // merge 3 into 1
  });
  EXPECT_EQ(image.size(), 1u);
  EXPECT_TRUE(image.Contains(MakeTuple({1, 2})));
}

TEST(SchemaTest, ArityLookupAndUnion) {
  Schema s{{"R", 2}, {"P", 0}};
  EXPECT_EQ(s.ArityOf("R"), 2);
  EXPECT_EQ(s.ArityOf("P"), 0);
  EXPECT_FALSE(s.ArityOf("S").has_value());
  Schema t{{"S", 1}};
  Schema u = s.UnionWith(t);
  EXPECT_EQ(u.size(), 3u);
  EXPECT_EQ(u.ArityOf("S"), 1);
}

TEST(SchemaTest, WithPrefixRenamesAll) {
  Schema s{{"R", 2}, {"P", 0}};
  Schema p = s.WithPrefix("one_");
  EXPECT_TRUE(p.Contains("one_R"));
  EXPECT_TRUE(p.Contains("one_P"));
  EXPECT_FALSE(p.Contains("R"));
}

TEST(InstanceTest, GetOnUnpopulatedIsEmpty) {
  Instance d(Schema{{"R", 2}});
  EXPECT_TRUE(d.Get("R").empty());
  EXPECT_EQ(d.Get("R").arity(), 2);
}

TEST(InstanceTest, AddFactAndActiveDomain) {
  Instance d(Schema{{"R", 2}, {"P", 1}});
  d.AddFact("R", MakeTuple({1, 2}));
  d.AddFact("P", MakeTuple({7}));
  auto adom = d.ActiveDomain();
  EXPECT_EQ(adom.size(), 3u);
  EXPECT_TRUE(adom.count(Value(7)));
  EXPECT_EQ(d.MaxValueId(), 7);
  EXPECT_EQ(d.TupleCount(), 2u);
}

TEST(InstanceTest, EqualityIgnoresUnpopulatedRelations) {
  Instance a(Schema{{"R", 1}, {"S", 1}});
  Instance b(Schema{{"R", 1}});
  a.AddFact("R", MakeTuple({1}));
  b.AddFact("R", MakeTuple({1}));
  EXPECT_EQ(a, b);
  a.AddFact("S", MakeTuple({2}));
  EXPECT_NE(a, b);
}

TEST(InstanceTest, UnionWithMergesFacts) {
  Instance a(Schema{{"R", 1}});
  Instance b(Schema{{"R", 1}, {"S", 1}});
  a.AddFact("R", MakeTuple({1}));
  b.AddFact("R", MakeTuple({2}));
  b.AddFact("S", MakeTuple({3}));
  Instance u = a.UnionWith(b);
  EXPECT_EQ(u.Get("R").size(), 2u);
  EXPECT_EQ(u.Get("S").size(), 1u);
}

TEST(InstanceTest, SubInstanceAndExtension) {
  Instance d(Schema{{"R", 2}});
  d.AddFact("R", MakeTuple({1, 2}));

  // d2 adds a tuple touching a new value only: a paper-style extension.
  Instance d2(Schema{{"R", 2}});
  d2.AddFact("R", MakeTuple({1, 2}));
  d2.AddFact("R", MakeTuple({2, 3}));
  EXPECT_TRUE(d.IsSubInstanceOf(d2));
  EXPECT_TRUE(d.IsExtendedBy(d2));

  // d3 adds a tuple entirely inside adom(d): a superset but NOT an
  // extension (the restriction to adom(d) differs from d).
  Instance d3(Schema{{"R", 2}});
  d3.AddFact("R", MakeTuple({1, 2}));
  d3.AddFact("R", MakeTuple({2, 1}));
  EXPECT_TRUE(d.IsSubInstanceOf(d3));
  EXPECT_FALSE(d.IsExtendedBy(d3));
}

TEST(InstanceTest, RestrictToFiltersTuples) {
  Instance d(Schema{{"R", 2}});
  d.AddFact("R", MakeTuple({1, 2}));
  d.AddFact("R", MakeTuple({2, 3}));
  Instance r = d.RestrictTo({Value(1), Value(2)});
  EXPECT_EQ(r.Get("R").size(), 1u);
  EXPECT_TRUE(r.HasFact("R", MakeTuple({1, 2})));
}

TEST(IsomorphismTest, DirectedPathsOfEqualLengthAreIsomorphic) {
  Instance a(Schema{{"E", 2}});
  a.AddFact("E", MakeTuple({1, 2}));
  a.AddFact("E", MakeTuple({2, 3}));
  Instance b(Schema{{"E", 2}});
  b.AddFact("E", MakeTuple({10, 20}));
  b.AddFact("E", MakeTuple({20, 30}));
  EXPECT_TRUE(AreIsomorphic(a, b));

  auto iso = FindIsomorphism(a, b);
  ASSERT_TRUE(iso.has_value());
  EXPECT_EQ((*iso)[Value(1)], Value(10));
  EXPECT_EQ((*iso)[Value(2)], Value(20));
  EXPECT_EQ((*iso)[Value(3)], Value(30));
}

TEST(IsomorphismTest, PathVsTriangleNotIsomorphic) {
  Instance path(Schema{{"E", 2}});
  path.AddFact("E", MakeTuple({1, 2}));
  path.AddFact("E", MakeTuple({2, 3}));
  path.AddFact("E", MakeTuple({3, 4}));
  Instance cycle(Schema{{"E", 2}});
  cycle.AddFact("E", MakeTuple({1, 2}));
  cycle.AddFact("E", MakeTuple({2, 3}));
  cycle.AddFact("E", MakeTuple({3, 1}));
  EXPECT_FALSE(AreIsomorphic(path, cycle));
}

TEST(IsomorphismTest, AutomorphismsOfSymmetricEdge) {
  Instance d(Schema{{"E", 2}});
  d.AddFact("E", MakeTuple({1, 2}));
  d.AddFact("E", MakeTuple({2, 1}));
  // Identity and the swap.
  EXPECT_EQ(Automorphisms(d).size(), 2u);
}

TEST(IsomorphismTest, CanonicalKeyEqualIffIsomorphic) {
  Instance a(Schema{{"E", 2}});
  a.AddFact("E", MakeTuple({5, 9}));
  Instance b(Schema{{"E", 2}});
  b.AddFact("E", MakeTuple({3, 1}));
  Instance c(Schema{{"E", 2}});
  c.AddFact("E", MakeTuple({4, 4}));
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
  EXPECT_NE(CanonicalKey(a), CanonicalKey(c));
}

}  // namespace
}  // namespace vqdr
