#include "views/view_set.h"

#include <sstream>

#include "base/check.h"

namespace vqdr {

void ViewSet::Add(std::string name, Query query) {
  for (const View& v : views_) {
    VQDR_CHECK_NE(v.name, name) << "duplicate view name " << name;
  }
  views_.push_back(View{std::move(name), std::move(query)});
}

const View& ViewSet::Get(const std::string& name) const {
  for (const View& v : views_) {
    if (v.name == name) return v;
  }
  VQDR_CHECK(false) << "unknown view " << name;
  __builtin_unreachable();
}

Schema ViewSet::OutputSchema() const {
  Schema schema;
  for (const View& v : views_) schema.Add(v.name, v.query.arity());
  return schema;
}

Instance ViewSet::Apply(const Instance& db) const {
  Instance result(OutputSchema());
  for (const View& v : views_) {
    result.Set(v.name, v.query.Eval(db));
  }
  return result;
}

bool ViewSet::AllPureCq() const {
  for (const View& v : views_) {
    if (v.query.language() != Query::Language::kCq ||
        !v.query.AsCq().IsPureCq()) {
      return false;
    }
  }
  return true;
}

bool ViewSet::AllPureUcq() const {
  for (const View& v : views_) {
    if (v.query.language() == Query::Language::kCq) {
      if (!v.query.AsCq().IsPureCq()) return false;
    } else if (v.query.language() == Query::Language::kUcq) {
      if (!v.query.AsUcq().IsPureUcq()) return false;
    } else {
      return false;
    }
  }
  return true;
}

bool ViewSet::AllExistential() const {
  for (const View& v : views_) {
    if (!v.query.IsExistential()) return false;
  }
  return true;
}

bool ViewSet::AllBoolean() const {
  for (const View& v : views_) {
    if (v.query.arity() != 0) return false;
  }
  return true;
}

std::string ViewSet::ToString() const {
  std::ostringstream out;
  for (const View& v : views_) {
    out << v.name << ": " << v.query.ToString() << "\n";
  }
  return out.str();
}

}  // namespace vqdr
