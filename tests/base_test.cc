// Tests for the base substrate: Status/StatusOr, Rng determinism, string
// utilities, Value/NamePool/ValueFactory.

#include <gtest/gtest.h>

#include <set>

#include "base/rng.h"
#include "base/status.h"
#include "base/string_util.h"
#include "data/value.h"

namespace vqdr {
namespace {

TEST(StatusTest, OkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(ok.message().empty());

  Status err = Status::Error("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "boom");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42);
  EXPECT_EQ(*value, 42);

  StatusOr<int> error = Status::Error("nope");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().message(), "nope");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> s = std::string("hello");
  std::string moved = std::move(s).value();
  EXPECT_EQ(moved, "hello");
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 10; ++i) {
    std::uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    // Different seeds diverge almost surely.
  }
  EXPECT_NE(Rng(7).Next(), c.Next());
}

TEST(RngTest, BelowAndRangeBounds) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(7), 7u);
    std::int64_t r = rng.Range(-3, 3);
    EXPECT_GE(r, -3);
    EXPECT_LE(r, 3);
  }
}

TEST(RngTest, ChanceIsRoughlyCalibrated) {
  Rng rng(99);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(1, 4)) ++hits;
  }
  EXPECT_GT(hits, 2000);
  EXPECT_LT(hits, 3000);
}

TEST(StringUtilTest, Split) {
  auto pieces = Split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(Split("", ';').size(), 1u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, StartsWithAndJoin) {
  EXPECT_TRUE(StartsWith("schema E/2", "schema "));
  EXPECT_FALSE(StartsWith("sch", "schema"));
  std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
}

TEST(NamePoolTest, InternIsIdempotent) {
  NamePool pool;
  Value a1 = pool.Intern("alice");
  Value a2 = pool.Intern("alice");
  Value b = pool.Intern("bob");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(pool.NameOf(a1), "alice");
  EXPECT_EQ(pool.NameOf(Value(999)), "#999");
  EXPECT_EQ(pool.MaxId(), b.id);
}

TEST(StatusTest, NamedConstructorsCarryCodes) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ResourceExhausted("out").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Cancelled("stop").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Internal("broke").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Error("plain").code(), StatusCode::kUnknown);
  EXPECT_EQ(Status::Ok().code(), StatusCode::kOk);
  for (Status s : {Status::InvalidArgument("a"), Status::ResourceExhausted("b"),
                   Status::Cancelled("c"), Status::Internal("d")}) {
    EXPECT_FALSE(s.ok());
  }
}

TEST(StatusTest, ErrorWithOkCodeIsCoercedToUnknown) {
  // An "error" cannot claim to be OK; the constructor rejects the lie.
  Status s = Status::Error("oops", StatusCode::kOk);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnknown);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnknown), "UNKNOWN");
}

TEST(ValueFactoryTest, FreshNeverCollides) {
  ValueFactory factory;
  factory.NoteUsed(Value(10));
  std::set<Value> seen{Value(10)};
  for (int i = 0; i < 100; ++i) {
    Value v = factory.Fresh();
    EXPECT_TRUE(seen.insert(v).second);
    EXPECT_GT(v.id, 10);
  }
  // Noting a used value mid-stream raises the floor.
  factory.NoteUsed(Value(10'000));
  EXPECT_GT(factory.Fresh().id, 10'000);
}

}  // namespace
}  // namespace vqdr
