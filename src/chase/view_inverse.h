#ifndef VQDR_CHASE_VIEW_INVERSE_H_
#define VQDR_CHASE_VIEW_INVERSE_H_

#include "data/instance.h"
#include "guard/budget.h"
#include "views/view_set.h"

namespace vqdr {

/// The V-inverse chase of Section 3 of the paper.
///
/// Given CQ views **V**, a base instance D with S = V(D), and an extension
/// S' of S, the V-inverse V_D^{-1}(S') extends D with a frozen copy of the
/// view body for every tuple of S' not already witnessed: for ȳ ∈ S'(V)
/// with ȳ ∉ S(V), add α_ȳ([Q_V]) where α_ȳ maps the head variables to ȳ
/// and every other variable to a fresh value from `factory`.
///
/// (The paper skips tuples whose values all lie in adom(S); skipping exactly
/// the tuples already in S is equivalent on the chase chains the paper
/// builds — every S'-tuple over old values is already in S there — and in
/// addition handles Boolean views, whose empty tuple never contains a new
/// value.)
///
/// Requires views.AllPureCq(). If a tuple cannot be produced by its view's
/// head pattern (repeated head variables disagreeing, or a head constant
/// mismatch), the function aborts — such tuples cannot arise from actual
/// view images.
///
/// `budget`, when non-null, is checkpointed once per chased tuple and
/// charged the materialized atoms; a trip stops the chase mid-inverse and
/// returns the partial extension. Callers that need exact levels (the chase
/// chain) must check budget->Stopped() afterwards and discard the partial
/// result.
Instance ViewInverse(const ViewSet& views, const Instance& base,
                     const Instance& s_prime, ValueFactory& factory,
                     guard::Budget* budget = nullptr);

/// Schema for chase results: the base schema joined with every view's body
/// schema.
Schema ChaseSchema(const ViewSet& views, const Schema& base);

}  // namespace vqdr

#endif  // VQDR_CHASE_VIEW_INVERSE_H_
