#include "core/determinacy_batch.h"

#include <atomic>
#include <cstdint>

#include "obs/context.h"
#include "obs/progress.h"
#include "obs/trace.h"

#ifndef VQDR_PAR_DISABLED
#include "par/pool.h"
#endif

namespace vqdr {

std::vector<UnrestrictedDeterminacyResult> DecideUnrestrictedDeterminacyBatch(
    const std::vector<DeterminacyBatchItem>& items, int threads,
    const memo::MemoOptions& memo) {
  return DecideUnrestrictedDeterminacyBatchGoverned(items, threads, nullptr,
                                                    memo)
      .results;
}

DeterminacyBatchResult DecideUnrestrictedDeterminacyBatchGoverned(
    const std::vector<DeterminacyBatchItem>& items, int threads,
    guard::Budget* budget, const memo::MemoOptions& memo) {
  obs::OpScope op(obs::OpKind::kBatch, "determinacy.batch", budget);
  VQDR_TRACE_SPAN("determinacy.batch");
  DeterminacyBatchResult batch;
  batch.results.resize(items.size());
  const std::uint64_t total = items.size();

  // Decides item i in place; returns false once the budget has stopped (the
  // item is then marked skipped instead of decided).
  auto decide_one = [&items, &batch, budget, &memo](std::size_t i) -> bool {
    if (budget != nullptr && budget->Stopped()) {
      batch.results[i].outcome = budget->stop_reason();
      return false;
    }
    batch.results[i] = DecideUnrestrictedDeterminacy(items[i].views,
                                                     items[i].query, budget,
                                                     memo);
    // One step per decided item, so step budgets and cancel-at-step-N
    // faults see batch granularity too.
    guard::Check(budget);
    return true;
  };

#ifndef VQDR_PAR_DISABLED
  if (threads == 0) threads = par::DefaultThreads();
  if (threads > 1 && items.size() > 1) {
    std::atomic<std::uint64_t> done{0};
    std::uint64_t pool_errors = 0;
    // Pre-mark every slot: a task killed before it runs (captured pool
    // exception) leaves the sentinel behind instead of a default result
    // that would read as a completed "not determined" verdict. decide_one
    // overwrites the sentinel on every path it reaches.
    for (UnrestrictedDeterminacyResult& r : batch.results) {
      r.outcome = guard::Outcome::kInternalError;
    }
    {
      par::ThreadPool pool(threads);
      for (std::size_t i = 0; i < items.size(); ++i) {
        pool.Submit([&decide_one, &done, total, i] {
          if (!decide_one(i)) return;
          std::uint64_t completed =
              done.fetch_add(1, std::memory_order_acq_rel) + 1;
          // Progress only: a half-decided batch has no sound meaning, so a
          // false (cancel-requesting) return is deliberately ignored — the
          // budget is the sanctioned way to stop a batch early.
          obs::ReportProgress("determinacy.batch", completed, total);
        });
      }
      pool.Wait();
      pool_errors = pool.error_count();
      if (pool_errors > 0) pool.TakeFirstError();
    }
    if (pool_errors > 0 && budget != nullptr) budget->MarkInternalError();
    for (const UnrestrictedDeterminacyResult& r : batch.results) {
      batch.outcome = guard::MergeOutcome(batch.outcome, r.outcome);
      if (guard::IsComplete(r.outcome)) ++batch.items_completed;
    }
    if (pool_errors > 0) {
      batch.outcome = guard::Outcome::kInternalError;
    }
    return batch;
  }
#endif

  for (std::size_t i = 0; i < items.size(); ++i) {
    if (decide_one(i)) {
      obs::ReportProgress("determinacy.batch", i + 1, total);
    }
  }
  for (const UnrestrictedDeterminacyResult& r : batch.results) {
    batch.outcome = guard::MergeOutcome(batch.outcome, r.outcome);
    if (guard::IsComplete(r.outcome)) ++batch.items_completed;
  }
  return batch;
}

}  // namespace vqdr
