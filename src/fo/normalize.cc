#include "fo/normalize.h"

#include <vector>

#include "base/check.h"

namespace vqdr {

FoPtr ToAndNotExists(const FoPtr& formula) {
  using F = FoFormula;
  using Kind = FoFormula::Kind;
  switch (formula->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kAtom:
    case Kind::kEquals:
      return formula;
    case Kind::kNot:
      return F::Not(ToAndNotExists(formula->children()[0]));
    case Kind::kAnd: {
      std::vector<FoPtr> kids;
      for (const FoPtr& c : formula->children()) {
        kids.push_back(ToAndNotExists(c));
      }
      return F::And(std::move(kids));
    }
    case Kind::kOr: {
      // ψ ∨ χ ⇒ ¬(¬ψ ∧ ¬χ)
      std::vector<FoPtr> kids;
      for (const FoPtr& c : formula->children()) {
        kids.push_back(F::Not(ToAndNotExists(c)));
      }
      return F::Not(F::And(std::move(kids)));
    }
    case Kind::kImplies:
      return F::Not(F::And({ToAndNotExists(formula->children()[0]),
                            F::Not(ToAndNotExists(formula->children()[1]))}));
    case Kind::kIff: {
      FoPtr a = formula->children()[0];
      FoPtr b = formula->children()[1];
      return F::And({ToAndNotExists(F::Implies(a, b)),
                     ToAndNotExists(F::Implies(b, a))});
    }
    case Kind::kExists: {
      FoPtr body = ToAndNotExists(formula->children()[0]);
      // Split multi-variable quantifiers into nested single ones.
      const std::vector<std::string>& vars = formula->quantified_vars();
      for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
        body = F::Exists({*it}, body);
      }
      return body;
    }
    case Kind::kForall: {
      FoPtr body = F::Not(ToAndNotExists(formula->children()[0]));
      const std::vector<std::string>& vars = formula->quantified_vars();
      for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
        body = F::Exists({*it}, body);
      }
      return F::Not(body);
    }
  }
  VQDR_CHECK(false) << "unreachable";
  return nullptr;
}

FoPtr SimplifyDoubleNegation(const FoPtr& formula) {
  using F = FoFormula;
  using Kind = FoFormula::Kind;
  switch (formula->kind()) {
    case Kind::kNot: {
      const FoPtr& child = formula->children()[0];
      if (child->kind() == Kind::kNot) {
        return SimplifyDoubleNegation(child->children()[0]);
      }
      return F::Not(SimplifyDoubleNegation(child));
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FoPtr> kids;
      for (const FoPtr& c : formula->children()) {
        kids.push_back(SimplifyDoubleNegation(c));
      }
      return formula->kind() == Kind::kAnd ? F::And(std::move(kids))
                                           : F::Or(std::move(kids));
    }
    case Kind::kImplies:
      return F::Implies(SimplifyDoubleNegation(formula->children()[0]),
                        SimplifyDoubleNegation(formula->children()[1]));
    case Kind::kIff:
      return F::Iff(SimplifyDoubleNegation(formula->children()[0]),
                    SimplifyDoubleNegation(formula->children()[1]));
    case Kind::kExists:
      return F::Exists(formula->quantified_vars(),
                       SimplifyDoubleNegation(formula->children()[0]));
    case Kind::kForall:
      return F::Forall(formula->quantified_vars(),
                       SimplifyDoubleNegation(formula->children()[0]));
    default:
      return formula;
  }
}

}  // namespace vqdr
