#ifndef VQDR_DATA_VALUE_H_
#define VQDR_DATA_VALUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/check.h"

namespace vqdr {

/// A domain element. The paper's domain **dom** is a fixed infinite set; we
/// model its elements as 64-bit integers. Values carry no other structure —
/// queries are generic (commute with permutations of **dom**), and the tests
/// exercise that property directly.
struct Value {
  std::int64_t id = 0;

  constexpr Value() = default;
  constexpr explicit Value(std::int64_t id) : id(id) {}

  friend constexpr bool operator==(Value a, Value b) { return a.id == b.id; }
  friend constexpr bool operator!=(Value a, Value b) { return a.id != b.id; }
  friend constexpr bool operator<(Value a, Value b) { return a.id < b.id; }
  friend constexpr bool operator<=(Value a, Value b) { return a.id <= b.id; }
  friend constexpr bool operator>(Value a, Value b) { return a.id > b.id; }
  friend constexpr bool operator>=(Value a, Value b) { return a.id >= b.id; }
};

std::ostream& operator<<(std::ostream& os, Value v);

/// Produces values guaranteed fresh relative to everything seen so far. The
/// chase (Section 3 of the paper) uses this to mint the "new distinct values"
/// of the V-inverse construction.
class ValueFactory {
 public:
  /// Starts minting above `floor` (exclusive).
  explicit ValueFactory(std::int64_t floor = 0) : next_(floor + 1) {}

  /// Returns a value never returned before and greater than the floor.
  Value Fresh() { return Value(next_++); }

  /// Raises the floor so future values exceed `v`.
  void NoteUsed(Value v) {
    if (v.id >= next_) next_ = v.id + 1;
  }

  /// The id the next Fresh() call would return. Part of the memo keys for
  /// chase results: a cached chain is only replayable when the factory is in
  /// the same state, and a hit advances the factory to the recorded end
  /// state (memo layer, DESIGN.md §9).
  std::int64_t next_id() const { return next_; }

 private:
  std::int64_t next_;
};

/// Bidirectional mapping between human-readable constant names and values.
/// Only the parsers and printers use this; the algorithms treat values as
/// opaque, as genericity requires.
class NamePool {
 public:
  /// Interns `name`, assigning a new value on first use.
  Value Intern(const std::string& name);

  /// The name for `v`, or a synthesized "#<id>" if v was never interned.
  std::string NameOf(Value v) const;

  /// Largest value handed out so far (0 if none).
  std::int64_t MaxId() const { return next_ - 1; }

 private:
  std::map<std::string, Value> by_name_;
  std::map<std::int64_t, std::string> by_id_;
  std::int64_t next_ = 1;
};

}  // namespace vqdr

template <>
struct std::hash<vqdr::Value> {
  std::size_t operator()(vqdr::Value v) const noexcept {
    return std::hash<std::int64_t>()(v.id);
  }
};

#endif  // VQDR_DATA_VALUE_H_
