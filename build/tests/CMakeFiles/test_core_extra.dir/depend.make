# Empty dependencies file for test_core_extra.
# This may be replaced when dependencies are built.
