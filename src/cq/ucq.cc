#include "cq/ucq.h"

#include <sstream>

#include "base/check.h"

namespace vqdr {

void UnionQuery::AddDisjunct(ConjunctiveQuery disjunct) {
  if (!disjuncts_.empty()) {
    VQDR_CHECK_EQ(disjuncts_.front().head_arity(), disjunct.head_arity())
        << "UCQ disjunct arity mismatch";
    VQDR_CHECK_EQ(disjuncts_.front().head_name(), disjunct.head_name())
        << "UCQ disjunct head-name mismatch";
  }
  disjuncts_.push_back(std::move(disjunct));
}

const std::string& UnionQuery::head_name() const {
  VQDR_CHECK(!disjuncts_.empty()) << "head_name of empty UCQ";
  return disjuncts_.front().head_name();
}

int UnionQuery::head_arity() const {
  VQDR_CHECK(!disjuncts_.empty()) << "head_arity of empty UCQ";
  return disjuncts_.front().head_arity();
}

bool UnionQuery::IsPureUcq() const {
  for (const ConjunctiveQuery& q : disjuncts_) {
    if (!q.IsPureCq()) return false;
  }
  return true;
}

Schema UnionQuery::BodySchema() const {
  Schema schema;
  for (const ConjunctiveQuery& q : disjuncts_) {
    schema = schema.UnionWith(q.BodySchema());
  }
  return schema;
}

bool UnionQuery::IsSafe() const {
  for (const ConjunctiveQuery& q : disjuncts_) {
    if (!q.IsSafe()) return false;
  }
  return true;
}

std::string UnionQuery::ToString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out << " | ";
    out << disjuncts_[i].ToString();
  }
  return out.str();
}

}  // namespace vqdr
