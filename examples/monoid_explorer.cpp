// Theorem 4.5 explorer: the reduction from the word problem for finite
// monoids to UCQ determinacy, run end to end on concrete word problems.
// For each problem the tool builds the paper's fixed views V and query
// Q_{H,F}, searches for a monoidal-function counterexample, and when one
// exists converts it into a pair of databases with equal view images and
// different query answers — a concrete determinacy refutation.
//
// Build & run:  ./build/examples/monoid_explorer

#include <iostream>
#include <vector>

#include "cq/matcher.h"
#include "reductions/monoid.h"

using namespace vqdr;

namespace {

void Explore(const std::string& title, const WordProblem& problem) {
  std::cout << "== " << title << " ==\n";
  std::cout << "H: ";
  for (const MonoidEquation& eq : problem.hypotheses) {
    std::cout << eq.x << "*" << eq.y << "=" << eq.z << "  ";
  }
  std::cout << "\nF: " << problem.lhs << " = " << problem.rhs << "\n";

  MonoidalSearchResult search = SearchMonoidalCounterexample(problem, 3);
  std::cout << "monoidal functions examined: " << search.monoidal_functions
            << " (of " << search.functions_examined << " tables)\n";

  if (search.implies_up_to_bound) {
    std::cout << "H implies F over all monoidal functions with <= 3 "
                 "elements;\n"
              << "the views plausibly determine Q_{H,F} (the word problem "
                 "is undecidable, so no bound settles it).\n\n";
    return;
  }

  const MonoidalCounterexample& ce = *search.counterexample;
  std::cout << "counterexample function on " << ce.size << " elements:\n";
  for (int a = 0; a < ce.size; ++a) {
    std::cout << "  ";
    for (int b = 0; b < ce.size; ++b) {
      std::cout << ce.table[a * ce.size + b] << " ";
    }
    std::cout << "\n";
  }
  std::cout << "assignment: ";
  for (const auto& [sym, val] : ce.assignment) {
    std::cout << sym << "->" << val << " ";
  }
  std::cout << "\n";

  // Convert to the paper's database pair and verify the refutation with
  // both the UCQ= and the equality-free view variants.
  DeterminacyCounterexample pair = MonoidCounterexampleToInstances(ce);
  for (bool use_equality : {true, false}) {
    ViewSet views = MonoidViews(use_equality);
    UnionQuery q = MonoidQuery(problem, use_equality);
    bool views_equal =
        views.Apply(pair.d1).ToKey() == views.Apply(pair.d2).ToKey();
    bool answers_differ =
        EvaluateUcq(q, pair.d1) != EvaluateUcq(q, pair.d2);
    std::cout << (use_equality ? "UCQ= variant:        "
                               : "equality-free variant: ")
              << "V(D1) == V(D2): " << (views_equal ? "yes" : "NO")
              << ",  Q(D1) != Q(D2): " << (answers_differ ? "yes" : "NO")
              << "  => determinacy refuted\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Theorem 4.5: UCQ determinacy is undecidable via the word\n"
               "problem for finite monoids. Fixed schema {R/3, p1, p2}.\n\n";

  // Commutativity does not follow from one product pair.
  WordProblem commutativity;
  commutativity.hypotheses = {{"a", "b", "c"}, {"b", "a", "d"}};
  commutativity.lhs = "c";
  commutativity.rhs = "d";
  Explore("does ab=c, ba=d imply c=d?", commutativity);

  // Functionality forces equal products.
  WordProblem functional;
  functional.hypotheses = {{"a", "b", "c"}, {"a", "b", "d"}};
  functional.lhs = "c";
  functional.rhs = "d";
  Explore("does ab=c, ab=d imply c=d?", functional);

  // Idempotency is not implied by squaring to a common element.
  WordProblem idempotent;
  idempotent.hypotheses = {{"a", "a", "b"}};
  idempotent.lhs = "a";
  idempotent.rhs = "b";
  Explore("does aa=b imply a=b?", idempotent);

  // Associativity chains: (ab)c = a(bc) is built into monoidal functions.
  WordProblem assoc;
  assoc.hypotheses = {{"a", "b", "u"}, {"u", "c", "v"},
                      {"b", "c", "w"}, {"a", "w", "t"}};
  assoc.lhs = "v";
  assoc.rhs = "t";
  Explore("does ab=u, uc=v, bc=w, aw=t imply v=t?", assoc);

  return 0;
}
