// Stall-watchdog battery (DESIGN.md §11): a kStall fault injected into
// guard::Budget::Checkpoint freezes an op's heartbeats without changing its
// computation; the watchdog must emit exactly one structured report per
// stall and the governed call's verdict and examined prefix must be
// byte-identical to an unstalled run.

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/finite_search.h"
#include "cq/parser.h"
#include "guard/budget.h"
#include "guard/fault.h"
#include "obs/context.h"
#include "obs/registry.h"
#include "obs/watchdog.h"

namespace vqdr {
namespace {

#if !defined(VQDR_OBS_DISABLED) && !defined(VQDR_GUARD_DISABLED) && \
    !defined(VQDR_GUARD_FAULTS_DISABLED)

// Collects reports from the watchdog thread; install with Install(), always
// paired with Reset() before the test ends.
class ReportTrap {
 public:
  void Install() {
    obs::SetStallCallback([this](const obs::StallReport& r) {
      std::lock_guard<std::mutex> lock(mu_);
      reports_.push_back(r);
    });
  }
  void Reset() { obs::SetStallCallback(nullptr); }
  std::vector<obs::StallReport> Reports() {
    std::lock_guard<std::mutex> lock(mu_);
    return reports_;
  }

 private:
  std::mutex mu_;
  std::vector<obs::StallReport> reports_;
};

class WatchdogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    guard::DisarmFaults();
    obs::StopWatchdog();
    trap_.Reset();
  }
  ReportTrap trap_;
};

TEST_F(WatchdogTest, EmitsExactlyOneReportForOneStall) {
  trap_.Install();
  ASSERT_TRUE(obs::StartWatchdog(/*stall_ms=*/100, /*poll_ms=*/20));
  ASSERT_TRUE(obs::WatchdogRunning());

  // The checkpoint at step 50 sleeps 600ms: six watchdog thresholds deep,
  // but still ONE stall.
  guard::ArmStallFault(/*at_step=*/50, /*sleep_ms=*/600);

  guard::Budget budget(guard::BudgetSpec{.max_steps = 100000});
  obs::OpId id = 0;
  {
    // Close the scope before settling: an op left idle-but-registered past
    // the threshold would legitimately re-trip the (re-armed) trigger.
    obs::OpScope op(obs::OpKind::kSearch, "test.watchdog.loop", &budget);
    id = op.id();
    ASSERT_NE(id, 0u);
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(budget.Checkpoint(), guard::Outcome::kComplete);
    }
  }
  EXPECT_TRUE(guard::FaultFired());

  // The stall happened mid-loop; the watchdog saw it live. Give one poll
  // period of slack for a report already in flight, then assert the count
  // is exactly one — not zero, not re-fired.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<obs::StallReport> reports = trap_.Reports();
  ASSERT_EQ(reports.size(), 1u);

  const obs::StallReport& r = reports.front();
  EXPECT_EQ(r.op.id, id);
  EXPECT_EQ(r.op.label, "test.watchdog.loop");
  EXPECT_EQ(r.stall_ms, 100u);
  EXPECT_GE(r.quiet_ms, 100u);
  EXPECT_FALSE(r.all_ops.empty());
  // The stalled op's budget state rode along in the report.
  ASSERT_TRUE(r.op.budget.present);
  EXPECT_FALSE(r.op.budget.stopped);

  // Observation only: the computation itself is untouched.
  EXPECT_FALSE(budget.Stopped());
  EXPECT_EQ(budget.steps_used(), 200u);
}

TEST_F(WatchdogTest, ReArmsAndReportsASecondDistinctStall) {
  trap_.Install();
  ASSERT_TRUE(obs::StartWatchdog(/*stall_ms=*/80, /*poll_ms=*/20));

  guard::Budget budget(guard::BudgetSpec{});
  {
    obs::OpScope op(obs::OpKind::kOther, "test.watchdog.rearm");
    auto stall_once = [&] {
      guard::ArmStallFault(/*at_step=*/1, /*sleep_ms=*/250);
      // A fresh progress burst, then the injected freeze.
      for (int i = 0; i < 5; ++i) budget.Checkpoint();
      guard::DisarmFaults();
    };
    stall_once();
    // Progress resumes (re-arming the trigger), then a second stall.
    for (int i = 0; i < 5; ++i) {
      budget.Checkpoint();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stall_once();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  EXPECT_EQ(trap_.Reports().size(), 2u);
}

TEST_F(WatchdogTest, StaysSilentWhileProgressFlows) {
  trap_.Install();
  ASSERT_TRUE(obs::StartWatchdog(/*stall_ms=*/100, /*poll_ms=*/20));

  guard::Budget budget(guard::BudgetSpec{});
  {
    obs::OpScope op(obs::OpKind::kOther, "test.watchdog.lively");
    // 300ms of wall clock — three thresholds — but heartbeats never pause.
    for (int i = 0; i < 30; ++i) {
      budget.Checkpoint();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(trap_.Reports().empty());
}

TEST_F(WatchdogTest, StallLeavesEngineVerdictAndPrefixUntouched) {
  NamePool pool;
  ViewSet views;
  auto v = ParseCq("V(x) :- E(x, y)", pool);
  ASSERT_TRUE(v.ok());
  views.Add(v.value().head_name(), Query::FromCq(v.value()));
  auto q = ParseCq("Q(x, y) :- E(x, y)", pool);
  ASSERT_TRUE(q.ok());
  Schema base{{"E", 2}};

  EnumerationOptions options;
  options.domain_size = 2;
  options.threads = 1;

  // Clean governed run first: the reference verdict and prefix.
  guard::Budget clean_budget(guard::BudgetSpec{.max_steps = 100000});
  options.budget = &clean_budget;
  DeterminacySearchResult clean = SearchDeterminacyCounterexample(
      views, Query::FromCq(q.value()), base, options);

  // Same call with a 300ms stall injected at the 2nd enumeration checkpoint
  // (the sweep finds its counterexample at the 3rd instance, so the stall
  // must land before that) and the watchdog armed tight enough to trip
  // during it.
  trap_.Install();
  ASSERT_TRUE(obs::StartWatchdog(/*stall_ms=*/80, /*poll_ms=*/20));
  guard::ArmStallFault(/*at_step=*/2, /*sleep_ms=*/300);
  guard::Budget stalled_budget(guard::BudgetSpec{.max_steps = 100000});
  options.budget = &stalled_budget;
  DeterminacySearchResult stalled = SearchDeterminacyCounterexample(
      views, Query::FromCq(q.value()), base, options);
  EXPECT_TRUE(guard::FaultFired());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Byte-identical decision surface: verdict, prefix, outcome, pair.
  EXPECT_EQ(stalled.verdict, clean.verdict);
  EXPECT_EQ(stalled.instances_examined, clean.instances_examined);
  EXPECT_EQ(stalled.outcome, clean.outcome);
  ASSERT_EQ(stalled.counterexample.has_value(), clean.counterexample.has_value());
  if (clean.counterexample.has_value()) {
    EXPECT_EQ(stalled.counterexample->d1.ToKey(),
              clean.counterexample->d1.ToKey());
    EXPECT_EQ(stalled.counterexample->d2.ToKey(),
              clean.counterexample->d2.ToKey());
  }
  EXPECT_EQ(stalled_budget.steps_used(), clean_budget.steps_used());

  // And exactly one report, attributed to the search op.
  std::vector<obs::StallReport> reports = trap_.Reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports.front().op.label, "search.determinacy");
  EXPECT_EQ(reports.front().op.kind, obs::OpKind::kSearch);
}

TEST_F(WatchdogTest, ReportSerializesAsOneStallEvent) {
  trap_.Install();
  ASSERT_TRUE(obs::StartWatchdog(/*stall_ms=*/80, /*poll_ms=*/20));
  guard::ArmStallFault(/*at_step=*/10, /*sleep_ms=*/250);

  guard::Budget budget(guard::BudgetSpec{.max_steps = 1000});
  {
    obs::OpScope op(obs::OpKind::kChase, "test.watchdog.json", &budget);
    for (int i = 0; i < 20; ++i) budget.Checkpoint();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::vector<obs::StallReport> reports = trap_.Reports();
  ASSERT_EQ(reports.size(), 1u);
  std::string json = reports.front().ToJson();
  EXPECT_EQ(json.find("{\"event\":\"stall\",\"unix_ms\":"), 0u);
  EXPECT_NE(json.find("\"stall_ms\":80"), std::string::npos);
  EXPECT_NE(json.find("\"op\":{"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"test.watchdog.json\""), std::string::npos);
  EXPECT_NE(json.find("\"all_ops\":["), std::string::npos);
  EXPECT_NE(json.find("\"threads\":["), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST_F(WatchdogTest, StartIsIdempotentAndRejectsZeroThreshold) {
  EXPECT_FALSE(obs::StartWatchdog(0));
  ASSERT_TRUE(obs::StartWatchdog(100));
  EXPECT_FALSE(obs::StartWatchdog(100));  // already running
  obs::StopWatchdog();
  EXPECT_FALSE(obs::WatchdogRunning());
}

#else

// Watchdog scenarios need obs + guard + fault injection compiled in; with
// any of them off, assert the stubs stay inert.
TEST(WatchdogDisabled, StubsAreInert) {
  EXPECT_FALSE(obs::WatchdogRunning());
  EXPECT_EQ(obs::WatchdogStallReports(), 0u);
  obs::StopWatchdog();
}

#endif

}  // namespace
}  // namespace vqdr
