file(REMOVE_RECURSE
  "CMakeFiles/vqdr_chase.dir/chain.cc.o"
  "CMakeFiles/vqdr_chase.dir/chain.cc.o.d"
  "CMakeFiles/vqdr_chase.dir/view_inverse.cc.o"
  "CMakeFiles/vqdr_chase.dir/view_inverse.cc.o.d"
  "libvqdr_chase.a"
  "libvqdr_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqdr_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
