// Concurrency battery for the observability surfaces (run under
// ThreadSanitizer by the CI tsan job via the PAR label): drains the trace
// ring, snapshots metrics, and exports Prometheus text WHILE the parallel
// engines hammer the same structures from worker threads, at thread counts
// 2 and 8. The assertions are deliberately weak — the verdicts must stay
// correct and the drained events well-formed — because the point is the
// data-race-freedom tsan checks, not the values.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/finite_search.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "obs/explain.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace vqdr {
namespace {

class ObsStressFixture : public ::testing::TestWithParam<int> {
 protected:
  ConjunctiveQuery Cq(const std::string& text) {
    auto q = ParseCq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message();
    return q.value();
  }

  ViewSet CqViews(const std::vector<std::string>& defs) {
    ViewSet views;
    for (const std::string& def : defs) {
      ConjunctiveQuery q = Cq(def);
      views.Add(q.head_name(), Query::FromCq(q));
    }
    return views;
  }

  NamePool pool_;
};

TEST_P(ObsStressFixture, DrainingTracesWhileParallelSearchRuns) {
  const int threads = GetParam();
  obs::EnableTracing();
  obs::DrainTraceEvents();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> drained{0};
  std::thread reader([&] {
    // Continuously drain the ring and fold whatever lands into a profile;
    // under tsan this races against every worker's span completion unless
    // the ring is properly synchronized.
    while (!done.load(std::memory_order_acquire)) {
      std::vector<obs::TraceEvent> events = obs::DrainTraceEvents();
      drained.fetch_add(events.size(), std::memory_order_relaxed);
      obs::Profile profile = obs::BuildProfile(events);
      ASSERT_EQ(profile.span_count, events.size());
      std::this_thread::yield();
    }
    drained.fetch_add(obs::DrainTraceEvents().size(),
                      std::memory_order_relaxed);
  });

  // Projection views lose the edge target, so a refuting pair exists at
  // domain size 2 (same test case FiniteSearchRefutesNonDeterminedCase pins).
  ViewSet views = CqViews({"V(x) :- E(x, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, y)");
  EnumerationOptions options;
  options.domain_size = 2;
  options.threads = threads;
  DeterminacySearchResult result = SearchDeterminacyCounterexample(
      views, Query::FromCq(q), Schema{{"E", 2}}, options);

  done.store(true, std::memory_order_release);
  reader.join();
  obs::DisableTracing();
  obs::DrainTraceEvents();

  // The verdict must be untouched by the concurrent drains.
  EXPECT_EQ(result.verdict, SearchVerdict::kCounterexampleFound);
}

TEST_P(ObsStressFixture, SnapshottingMetricsWhileParallelSweepRecords) {
  const int threads = GetParam();
  std::atomic<bool> done{false};
  std::thread reader([&] {
    obs::MetricsSnapshot base = obs::SnapshotMetrics();
    while (!done.load(std::memory_order_acquire)) {
      obs::MetricsSnapshot delta = obs::SnapshotDelta(base);
      std::string text = obs::ExportPrometheusText(delta);
      // Histogram invariant under concurrent Record(): the windowed bucket
      // sum never exceeds the windowed count... but relaxed per-bucket
      // increments can lag the count load, so only sanity-check the shape.
      for (const auto& [name, hs] : delta.histograms) {
        std::uint64_t bucket_sum = 0;
        for (std::uint64_t b : hs.buckets) bucket_sum += b;
        EXPECT_LE(hs.min, hs.max) << name;
        (void)bucket_sum;
      }
      std::this_thread::yield();
    }
  });

  ConjunctiveQuery left = Cq("Q(x, y) :- E(x, y), x != y");
  ConjunctiveQuery right = Cq("Q(x, y) :- E(x, y)");
  CqContainmentOptions options;
  options.threads = threads;
  for (int i = 0; i < 3; ++i) {
    VQDR_HISTOGRAM_RECORD("test.stress.hist", 1u << (i % 20));
    EXPECT_TRUE(CqContainedIn(left, right, options));
  }

  done.store(true, std::memory_order_release);
  reader.join();
}

TEST_P(ObsStressFixture, SharedExplainLogSurvivesParallelSweep) {
  const int threads = GetParam();
  // One ExplainLog shared by every worker of the pattern sweep: appends must
  // be internally synchronized, and every recorded witness must replay.
  ConjunctiveQuery left = Cq("Q(x, y, z) :- E(x, y), E(y, z), x != z");
  ConjunctiveQuery right = Cq("Q(x, y, z) :- E(x, y), E(y, z)");

  obs::ExplainLog log;
  CqContainmentOptions options;
  options.threads = threads;
  options.explain = &log;
  EXPECT_TRUE(CqContainedIn(left, right, options));

  if (!obs::kExplainEnabled) return;
  int witnesses = 0;
  for (const obs::ExplainEvent& e : log.events()) {
    if (e.kind != obs::ExplainKind::kWitness) continue;
    ++witnesses;
    std::string error;
    EXPECT_TRUE(e.witness.has_value() && e.witness->Verify(&error)) << error;
  }
  EXPECT_GE(witnesses, 1);
}

INSTANTIATE_TEST_SUITE_P(Threads, ObsStressFixture, ::testing::Values(2, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace vqdr
