#ifndef VQDR_OBS_REGISTRY_H_
#define VQDR_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/context.h"

// The in-flight operation registry: the answer to "what is this process
// doing right now?" (DESIGN.md §11). Every obs::OpScope registers itself
// here for its lifetime; SnapshotOps() reads the table without stopping the
// work — one short mutex hold plus relaxed atomic reads of each op's
// counters, heartbeats, phase, and budget state.
//
// Surfaces:
//   - determinacy_tool --ops       renders the table after each scenario
//   - VQDR_OPS_DUMP_MS=<n>         background thread dumps JSON to stderr
//   - obs::Watchdog                embeds a snapshot in stall reports
//
// Compiled out with the rest of the obs layer under -DVQDR_OBS=OFF.

namespace vqdr::obs {

/// Budget state of an op at snapshot time (zeroes when the op is ungoverned).
struct OpBudgetSnapshot {
  bool present = false;
  bool stopped = false;
  std::uint64_t steps = 0;
  std::uint64_t max_steps = 0;  // 0 = unlimited
};

/// One operation as seen at snapshot time.
struct OpSnapshot {
  OpId id = 0;
  OpKind kind = OpKind::kOther;
  std::string label;
  /// Innermost live span name anywhere in the op ("" before the first span).
  std::string phase;
  std::uint64_t start_us = 0;  // telemetry-epoch microseconds
  std::uint64_t age_us = 0;    // snapshot time minus start
  std::uint64_t heartbeats = 0;
  std::uint64_t tasks = 0;
  bool done = false;  // only in RecentCompletedOps results
  OpBudgetSnapshot budget;
  /// Per-op counter deltas, name -> count, zero entries dropped.
  std::map<std::string, std::uint64_t> counters;
};

/// One thread's live span stack at snapshot time.
struct ThreadStackSnapshot {
  std::uint32_t tid = 0;
  OpId op_id = 0;
  std::vector<std::string> spans;  // outermost first
};

#ifndef VQDR_OBS_DISABLED

/// All in-flight operations, ordered by id (registration order).
std::vector<OpSnapshot> SnapshotOps();

/// The single in-flight op `id`, or an all-defaults snapshot (id 0) when no
/// such op is live.
OpSnapshot SnapshotOp(OpId id);

/// Live span stacks of every thread that ever opened a span or bound an op,
/// ordered by dense trace tid. Threads currently outside any span report an
/// empty stack.
std::vector<ThreadStackSnapshot> SnapshotThreadStacks();

/// Keep the most recent `n` completed ops for RecentCompletedOps (default 0:
/// completed ops vanish at scope exit). Thread-safe; trimming is immediate.
void SetKeepCompletedOps(std::size_t n);

/// Most recently completed ops, newest first, up to the configured keep
/// count. Each has done=true and age_us frozen at completion.
std::vector<OpSnapshot> RecentCompletedOps();

/// Renders op snapshots as a JSON array (one object per op, stable field
/// order). `unix_ms` stamps the snapshot; pass 0 to omit the wrapper and
/// emit the bare array.
std::string OpsToJson(const std::vector<OpSnapshot>& ops,
                      std::uint64_t unix_ms = 0);

/// Human-readable multi-line table of op snapshots for --ops.
std::string RenderOpsText(const std::vector<OpSnapshot>& ops);

/// Starts (idempotently) a background thread that writes an ops snapshot as
/// one JSON line to stderr every `interval_ms`. Returns false when a dumper
/// is already running or interval_ms is 0.
bool StartOpsDump(std::uint64_t interval_ms);

/// Stops the periodic dumper if one is running.
void StopOpsDump();

/// Reads VQDR_OPS_DUMP_MS and starts the dumper when it names a positive
/// integer. Called once from the first OpScope; exposed for tools/tests.
void InitOpsDumpFromEnv();

/// Microseconds since the telemetry epoch (process-stable monotonic base).
std::uint64_t TelemetryNowUs();

namespace internal {
/// OpScope registration seam (context.cc only). The const char* variant
/// requires a string literal; the std::string variant copies the label into
/// the slot for dynamically named ops.
std::shared_ptr<OpSlot> RegisterOp(OpKind kind, const char* label,
                                   vqdr::guard::Budget* budget);
std::shared_ptr<OpSlot> RegisterOp(OpKind kind, std::string label,
                                   vqdr::guard::Budget* budget);
void UnregisterOp(const std::shared_ptr<OpSlot>& op);
/// Appends one op as a JSON object (shared with the watchdog's reports).
void AppendOpJson(const OpSnapshot& op, std::string* out);
}  // namespace internal

#else  // VQDR_OBS_DISABLED

inline std::vector<OpSnapshot> SnapshotOps() { return {}; }
inline OpSnapshot SnapshotOp(OpId) { return {}; }
inline std::vector<ThreadStackSnapshot> SnapshotThreadStacks() { return {}; }
inline void SetKeepCompletedOps(std::size_t) {}
inline std::vector<OpSnapshot> RecentCompletedOps() { return {}; }
inline std::string OpsToJson(const std::vector<OpSnapshot>&,
                             std::uint64_t = 0) {
  return "[]";
}
inline std::string RenderOpsText(const std::vector<OpSnapshot>&) {
  return "ops: (observability disabled)\n";
}
inline bool StartOpsDump(std::uint64_t) { return false; }
inline void StopOpsDump() {}
inline void InitOpsDumpFromEnv() {}
inline std::uint64_t TelemetryNowUs() { return 0; }

#endif  // VQDR_OBS_DISABLED

}  // namespace vqdr::obs

#endif  // VQDR_OBS_REGISTRY_H_
