#include "cq/minimize.h"

#include "base/check.h"
#include "cq/containment.h"

namespace vqdr {

ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& q) {
  VQDR_CHECK(q.IsPureCq()) << "MinimizeCq requires a pure CQ";
  ConjunctiveQuery current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < current.atoms().size(); ++i) {
      ConjunctiveQuery candidate(current.head_name(), current.head_terms());
      for (std::size_t j = 0; j < current.atoms().size(); ++j) {
        if (j != i) candidate.AddAtom(current.atoms()[j]);
      }
      if (!candidate.IsSafe()) continue;
      // Removing an atom weakens the query (current ⊆ candidate always);
      // equivalence needs candidate ⊆ current.
      if (CqContainedIn(candidate, current)) {
        current = candidate;
        changed = true;
        break;
      }
    }
  }
  return current;
}

UnionQuery MinimizeUcq(const UnionQuery& q) {
  VQDR_CHECK(q.IsPureUcq()) << "MinimizeUcq requires a pure UCQ";
  // Drop disjuncts subsumed by another disjunct, keeping earlier ones.
  std::vector<ConjunctiveQuery> kept;
  for (std::size_t i = 0; i < q.disjuncts().size(); ++i) {
    const ConjunctiveQuery& candidate = q.disjuncts()[i];
    bool subsumed = false;
    for (std::size_t j = 0; j < q.disjuncts().size(); ++j) {
      if (i == j) continue;
      // Candidate is subsumed by a disjunct that is not itself dropped in
      // favour of candidate: break ties by index.
      if (CqContainedIn(candidate, q.disjuncts()[j])) {
        bool reverse = CqContainedIn(q.disjuncts()[j], candidate);
        if (!reverse || j < i) {
          subsumed = true;
          break;
        }
      }
    }
    if (!subsumed) kept.push_back(MinimizeCq(candidate));
  }
  UnionQuery result;
  for (ConjunctiveQuery& d : kept) result.AddDisjunct(std::move(d));
  VQDR_CHECK(!result.empty());
  return result;
}

}  // namespace vqdr
