#ifndef VQDR_PAR_POOL_H_
#define VQDR_PAR_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

// Work-stealing thread pool for the combinatorial engines (the bounded
// counterexample searches, the CQ(≠) identification-pattern sweep, the
// determinacy batch runner). Design constraints, in order:
//
//  1. *Deterministic results*: the pool only schedules; every parallel
//     algorithm built on it (par/shard.h) merges worker output in a fixed
//     order, so verdicts and counterexamples never depend on scheduling.
//  2. *TSAN-clean*: per-worker deques are mutex-guarded (owner pushes/pops
//     at the back, thieves steal from the front); no lock-free cleverness.
//  3. *Bounded lifecycle*: pools are created per parallel call and joined on
//     destruction — no process-global threads to leak into tests.

namespace vqdr::par {

/// The default worker count for `threads = 0` requests: the VQDR_THREADS
/// environment variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency(). Always >= 1.
int DefaultThreads();

/// A fixed-size work-stealing pool. Tasks submitted from outside the pool
/// are distributed round-robin across worker deques; tasks submitted from
/// inside a worker go to that worker's own deque (LIFO for the owner, FIFO
/// for thieves — the classic work-stealing discipline). Destruction drains
/// every remaining task and joins the workers.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Thread-safe; callable from worker threads (nested
  /// submission is how recursive splits would land).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by tasks)
  /// has finished. Callable only from outside the pool.
  void Wait();

  /// Tasks that threw. A throwing task never takes the pool down: the worker
  /// captures the exception, the pool keeps draining, and the caller checks
  /// here after Wait() to surface a structured internal-error outcome.
  std::uint64_t error_count() const {
    return error_count_.load(std::memory_order_acquire);
  }

  /// The first captured exception (null when error_count() == 0), clearing
  /// the error state. Call after Wait(); rethrow or inspect as needed.
  std::exception_ptr TakeFirstError();

 private:
  struct Deque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  /// Pops from own back, then steals from the front of the others, starting
  /// after `self` and wrapping. Returns false when every deque was empty.
  bool TryRunOne(int self);
  void WorkerLoop(int self);

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  /// Tasks sitting in some deque, not yet claimed.
  std::atomic<std::uint64_t> queued_{0};
  /// Tasks submitted and not yet finished (queued + running).
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> next_deque_{0};

  std::mutex error_mu_;
  std::exception_ptr first_error_;
  std::atomic<std::uint64_t> error_count_{0};
};

/// Submits one task per chunk id in [0, num_chunks) and waits for all of
/// them. The body must be safe to invoke concurrently for distinct ids.
void ParallelForChunks(ThreadPool& pool, std::uint64_t num_chunks,
                       const std::function<void(std::uint64_t)>& body);

}  // namespace vqdr::par

#endif  // VQDR_PAR_POOL_H_
