#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <map>
#include <memory>
#include <sstream>

#include "obs/json.h"

namespace vqdr::obs {

namespace {

// Aggregation tree under construction: children keyed by name so identical
// name-paths fold together across occurrences and threads.
struct Agg {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::map<std::string, std::unique_ptr<Agg>> children;

  Agg* Child(const std::string& name) {
    std::unique_ptr<Agg>& slot = children[name];
    if (!slot) slot = std::make_unique<Agg>();
    return slot.get();
  }
};

ProfileNode Finalize(const std::string& name, const Agg& agg) {
  ProfileNode node;
  node.name = name;
  node.count = agg.count;
  node.total_us = agg.total_us;
  std::uint64_t child_total = 0;
  for (const auto& [child_name, child] : agg.children) {
    node.children.push_back(Finalize(child_name, *child));
    child_total += child->total_us;
  }
  // Clock granularity can make children's sum exceed the parent; clamp.
  node.self_us = agg.total_us > child_total ? agg.total_us - child_total : 0;
  std::sort(node.children.begin(), node.children.end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
  return node;
}

void RenderNode(const ProfileNode& node, int indent, std::string* out) {
  std::string label(static_cast<std::size_t>(indent) * 2, ' ');
  label += node.name;
  if (label.size() < 44) label.resize(44, ' ');
  char line[128];
  std::snprintf(line, sizeof(line), " %10llu %12llu %12llu\n",
                static_cast<unsigned long long>(node.count),
                static_cast<unsigned long long>(node.total_us),
                static_cast<unsigned long long>(node.self_us));
  *out += label;
  *out += line;
  for (const ProfileNode& child : node.children) {
    RenderNode(child, indent + 1, out);
  }
}

}  // namespace

Profile BuildProfile(const std::vector<TraceEvent>& events) {
  Profile profile;
  profile.span_count = events.size();

  // Split by thread: depth is a per-thread notion, so nesting can only be
  // reconstructed within one tid.
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& e : events) by_tid[e.tid].push_back(&e);

  Agg root;
  for (auto& [tid, spans] : by_tid) {
    // Parents start no later than their children; at equal start the
    // shallower span opened first. This ordering makes a single stack scan
    // sufficient regardless of how completion order scrambled the input.
    std::sort(spans.begin(), spans.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                if (a->start_us != b->start_us) {
                  return a->start_us < b->start_us;
                }
                return a->depth < b->depth;
              });

    struct Open {
      Agg* node;
      std::uint64_t end_us;
      int depth;
    };
    std::vector<Open> stack;
    for (const TraceEvent* e : spans) {
      std::uint64_t end_us = e->start_us + e->dur_us;
      while (!stack.empty() && (stack.back().depth >= e->depth ||
                                stack.back().end_us < e->start_us)) {
        stack.pop_back();
      }
      Agg* parent;
      if (!stack.empty() && stack.back().depth == e->depth - 1) {
        parent = stack.back().node;
      } else {
        // Top-level span, or the parent is missing from the stream (ring
        // overflow, truncated sink): re-root rather than drop.
        parent = &root;
        if (e->depth != 0) ++profile.orphans;
      }
      Agg* node = parent->Child(e->name);
      node->count += 1;
      node->total_us += e->dur_us;
      stack.push_back(Open{node, end_us, e->depth});
    }
  }

  for (const auto& [name, agg] : root.children) {
    profile.roots.push_back(Finalize(name, *agg));
    profile.total_us += agg->total_us;
  }
  std::sort(profile.roots.begin(), profile.roots.end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
  return profile;
}

std::string RenderProfileText(const Profile& profile) {
  std::string out =
      "span                                              count     total_us"
      "      self_us\n";
  for (const ProfileNode& node : profile.roots) {
    RenderNode(node, 0, &out);
  }
  std::ostringstream footer;
  footer << "-- " << profile.span_count << " spans, " << profile.total_us
         << " us total";
  if (profile.orphans > 0) {
    footer << ", " << profile.orphans << " orphaned (re-rooted)";
  }
  footer << "\n";
  out += footer.str();
  return out;
}

std::optional<std::vector<TraceEvent>> ParseTraceJsonl(std::istream& in,
                                                       std::string* error) {
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string parse_error;
    std::optional<json::Value> v = json::Parse(line, &parse_error);
    if (!v.has_value() || !v->IsObject()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": " +
                 (parse_error.empty() ? "not a JSON object" : parse_error);
      }
      return std::nullopt;
    }
    TraceEvent e;
    e.name = v->StringOr("name", "");
    if (const json::Value* arg = v->Find("arg");
        arg != nullptr && arg->IsNumber()) {
      e.arg = arg->int_value;
      e.has_arg = true;
    }
    e.start_us = static_cast<std::uint64_t>(v->IntOr("start_us", 0));
    e.dur_us = static_cast<std::uint64_t>(v->IntOr("dur_us", 0));
    e.tid = static_cast<std::uint32_t>(v->IntOr("tid", 0));
    e.depth = static_cast<int>(v->IntOr("depth", 0));
    events.push_back(std::move(e));
  }
  return events;
}

}  // namespace vqdr::obs
