#ifndef VQDR_CQ_PARSER_H_
#define VQDR_CQ_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "cq/conjunctive_query.h"
#include "cq/ucq.h"
#include "data/instance.h"

namespace vqdr {

/// Parses a conjunctive query in rule syntax:
///
///   Q(x, y) :- R(x, z), S(z, y), x != y, not T(x), z = 'alice'
///
/// Variables are bare identifiers; constants are quoted ('alice') and are
/// interned through `pool` so the same name always denotes the same domain
/// value. A body of just `true` denotes the empty body (for Boolean heads).
StatusOr<ConjunctiveQuery> ParseCq(std::string_view text, NamePool& pool);

/// Parses a UCQ: disjuncts separated by `|`, each a full rule with the same
/// head, e.g. "Q(x) :- A(x) | Q(x) :- B(x)".
StatusOr<UnionQuery> ParseUcq(std::string_view text, NamePool& pool);

/// Parses a database instance as a fact list over `schema`:
///
///   R(a, b), R(b, c), P(a), Flag()
///
/// Every argument is a constant name interned through `pool` (no quotes
/// needed in fact lists). Facts may be separated by `,` or `;`. An empty
/// string yields the empty instance.
StatusOr<Instance> ParseInstance(std::string_view text, const Schema& schema,
                                 NamePool& pool);

/// Pretty-prints with constant names resolved through `pool`.
std::string CqToString(const ConjunctiveQuery& q, const NamePool& pool);
std::string UcqToString(const UnionQuery& q, const NamePool& pool);

/// Prints `instance` as a fact list ParseInstance accepts back — one line
/// per nonempty relation, constants bare when identifier-shaped and
/// 'quoted' otherwise — so serialize/parse round-trips (empty relations are
/// elided; instances over the same schema compare by content).
std::string InstanceToString(const Instance& instance, const NamePool& pool);

}  // namespace vqdr

#endif  // VQDR_CQ_PARSER_H_
