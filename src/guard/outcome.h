#ifndef VQDR_GUARD_OUTCOME_H_
#define VQDR_GUARD_OUTCOME_H_

#include <string>

#include "base/status.h"

namespace vqdr::guard {

/// How a governed engine call ended. Everything the paper makes the library
/// compute is worst-case explosive or undecidable, so every long-running
/// entry point carries one of these instead of pretending it always runs to
/// completion. kComplete is the only value under which a boolean verdict
/// (determined / contained / none-within-bound) may be trusted; every other
/// value means "here is the prefix of work that finished, and why it
/// stopped".
enum class Outcome {
  kComplete = 0,
  /// The wall-clock deadline of the governing Budget passed.
  kDeadlineExceeded,
  /// The step allowance (instances examined, patterns checked, tuples
  /// chased, chase levels built) ran out.
  kStepBudgetExhausted,
  /// The materialized-atom allowance (the memory proxy) ran out.
  kMemoryBudgetExhausted,
  /// Budget::Cancel() was called or a progress callback returned false.
  kCancelled,
  /// A task exception, allocation failure, or injected fault was captured;
  /// the engine unwound cleanly but computed no verdict.
  kInternalError,
};

constexpr bool IsComplete(Outcome o) { return o == Outcome::kComplete; }

/// Stable short name ("COMPLETE", "DEADLINE_EXCEEDED", ...).
const char* OutcomeName(Outcome o);

/// Join in the outcome lattice: kComplete is bottom, kInternalError is top,
/// and between them severity follows declaration order (deadline < steps <
/// memory < cancelled < internal). Used to fold per-item and per-phase
/// outcomes into one verdict for a batch or a report.
Outcome MergeOutcome(Outcome a, Outcome b);

/// Maps an outcome to a Status for fallible APIs: kComplete -> OK;
/// deadline/step/memory exhaustion -> kResourceExhausted; kCancelled ->
/// kCancelled; kInternalError -> kInternal. `context` names the call that
/// stopped ("chase chain", "determinacy batch", ...).
Status OutcomeToStatus(Outcome o, const std::string& context);

}  // namespace vqdr::guard

#endif  // VQDR_GUARD_OUTCOME_H_
