#include "gen/random_query.h"

#include "base/check.h"

namespace vqdr {

namespace {

std::string PoolVar(std::uint64_t i) { return "v" + std::to_string(i); }

// Random query over an arbitrary schema with the given variable pool.
ConjunctiveQuery RandomCqOver(Rng& rng, const Schema& schema, int min_atoms,
                              int max_atoms, int variable_pool,
                              int head_arity, const std::string& head_name) {
  VQDR_CHECK(!schema.decls().empty());
  VQDR_CHECK_GE(min_atoms, 1);
  VQDR_CHECK_GE(max_atoms, min_atoms);
  VQDR_CHECK_GE(variable_pool, 1);

  ConjunctiveQuery q(head_name, {});
  int atoms = static_cast<int>(
      rng.Range(min_atoms, max_atoms));
  std::vector<std::string> used;
  for (int i = 0; i < atoms; ++i) {
    const RelationDecl& decl =
        schema.decls()[rng.Below(schema.decls().size())];
    Atom atom;
    atom.predicate = decl.name;
    for (int j = 0; j < decl.arity; ++j) {
      std::string var = PoolVar(rng.Below(variable_pool));
      atom.args.push_back(Term::Var(var));
      used.push_back(var);
    }
    q.AddAtom(std::move(atom));
  }
  // Propositions only: fall back to Boolean heads.
  if (used.empty()) return ConjunctiveQuery(head_name, {});

  std::vector<Term> head;
  for (int i = 0; i < head_arity; ++i) {
    head.push_back(Term::Var(used[rng.Below(used.size())]));
  }
  ConjunctiveQuery result(head_name, head);
  for (const Atom& a : q.atoms()) result.AddAtom(a);
  VQDR_CHECK(result.IsSafe());
  return result;
}

}  // namespace

ConjunctiveQuery RandomCq(Rng& rng, const RandomCqOptions& options,
                          const std::string& head_name) {
  return RandomCqOver(rng, options.schema, options.min_atoms,
                      options.max_atoms, options.variable_pool,
                      options.head_arity, head_name);
}

ViewSet RandomCqViews(Rng& rng, const RandomCqOptions& options, int count) {
  ViewSet views;
  for (int i = 0; i < count; ++i) {
    std::string name = "V" + std::to_string(i + 1);
    int arity = 1 + static_cast<int>(rng.Below(2));
    ConjunctiveQuery def =
        RandomCqOver(rng, options.schema, options.min_atoms,
                     options.max_atoms, options.variable_pool, arity, name);
    views.Add(name, Query::FromCq(def));
  }
  return views;
}

ConjunctiveQuery RandomRewriting(Rng& rng, const ViewSet& views,
                                 int max_atoms, int head_arity,
                                 const std::string& head_name) {
  return RandomCqOver(rng, views.OutputSchema(), 1, max_atoms,
                      /*variable_pool=*/4, head_arity, head_name);
}

}  // namespace vqdr
