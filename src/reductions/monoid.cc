#include "reductions/monoid.h"

#include <functional>
#include <map>
#include <set>

#include "base/check.h"

namespace vqdr {

namespace {

Term V(const std::string& name) { return Term::Var(name); }

Atom RAtom(const std::string& a, const std::string& b, const std::string& c) {
  return Atom("R", {V(a), V(b), V(c)});
}

Atom P1() { return Atom("p1", {}); }
Atom P2() { return Atom("p2", {}); }

// Atom placing variable `v` at position `pos` of R, with fresh padding.
Atom AdomAtom(const std::string& v, int pos, const std::string& pad) {
  std::vector<Term> args = {V(pad + "1"), V(pad + "2"), V(pad + "3")};
  args[pos] = V(v);
  return Atom("R", std::move(args));
}

// The (p1 ∧ S) ∨ (p2 ∧ T) view for one equation S = T, where S and T are
// given as lists of disjunct bodies (each a list of atoms) over the shared
// head variables.
UnionQuery EquationView(const std::string& name,
                        const std::vector<std::string>& head_vars,
                        const std::vector<std::vector<Atom>>& s_bodies,
                        const std::vector<std::vector<Atom>>& t_bodies) {
  std::vector<Term> head;
  head.reserve(head_vars.size());
  for (const std::string& v : head_vars) head.push_back(V(v));

  UnionQuery view;
  for (const std::vector<Atom>& body : s_bodies) {
    ConjunctiveQuery d(name, head);
    d.AddAtom(P1());
    for (const Atom& a : body) d.AddAtom(a);
    view.AddDisjunct(std::move(d));
  }
  for (const std::vector<Atom>& body : t_bodies) {
    ConjunctiveQuery d(name, head);
    d.AddAtom(P2());
    for (const Atom& a : body) d.AddAtom(a);
    view.AddDisjunct(std::move(d));
  }
  return view;
}

// T-side bodies for "the diagonal {(z,z) | z ∈ adom(R)}": three bodies, one
// per R position, with the head's second variable equated to the first via
// repetition. The caller's head must be (z, z2); these bodies force z2 = z
// by *reusing z* — we express that by returning bodies over heads (z, z)
// instead, so the helper below builds separate disjuncts.
UnionQuery DiagonalEquationView(const std::string& name,
                                const std::vector<std::vector<Atom>>& s_bodies) {
  UnionQuery view;
  // S side: heads (z, zp).
  for (const std::vector<Atom>& body : s_bodies) {
    ConjunctiveQuery d(name, {V("z"), V("zp")});
    d.AddAtom(P1());
    for (const Atom& a : body) d.AddAtom(a);
    view.AddDisjunct(std::move(d));
  }
  // T side: heads (z, z), one disjunct per adom position.
  for (int pos = 0; pos < 3; ++pos) {
    ConjunctiveQuery d(name, {V("z"), V("z")});
    d.AddAtom(P2());
    d.AddAtom(AdomAtom("z", pos, "w"));
    view.AddDisjunct(std::move(d));
  }
  return view;
}

}  // namespace

Schema MonoidSchema() { return Schema{{"R", 3}, {"p1", 0}, {"p2", 0}}; }

ViewSet MonoidViews(bool use_equality) {
  ViewSet views;

  // V1: R itself.
  {
    ConjunctiveQuery v1("V1", {V("x"), V("y"), V("z")});
    v1.AddAtom(RAtom("x", "y", "z"));
    views.Add("V1", Query::FromCq(v1));
  }
  // V2: p1 ∨ p2.
  {
    ConjunctiveQuery a("V2", {});
    a.AddAtom(P1());
    ConjunctiveQuery b("V2", {});
    b.AddAtom(P2());
    UnionQuery v2;
    v2.AddDisjunct(a);
    v2.AddDisjunct(b);
    views.Add("V2", Query::FromUcq(v2));
  }
  // V3: p1 ∧ p2.
  {
    ConjunctiveQuery v3("V3", {});
    v3.AddAtom(P1());
    v3.AddAtom(P2());
    views.Add("V3", Query::FromCq(v3));
  }

  // (i) The three projections of R coincide: two equations.
  views.Add("Vproj12",
            Query::FromUcq(EquationView(
                "Vproj12", {"w"},
                {{AdomAtom("w", 0, "a")}},     // S: w in position 1
                {{AdomAtom("w", 1, "b")}})));  // T: w in position 2
  views.Add("Vproj23",
            Query::FromUcq(EquationView("Vproj23", {"w"},
                                        {{AdomAtom("w", 1, "a")}},
                                        {{AdomAtom("w", 2, "b")}})));

  if (use_equality) {
    // (ii) Functionality: {(z,z') | ∃x,y R(x,y,z) ∧ R(x,y,z')} = diagonal.
    views.Add("Vfunc",
              Query::FromUcq(DiagonalEquationView(
                  "Vfunc", {{RAtom("x", "y", "z"), RAtom("x", "y", "zp")}})));
  } else {
    // Pseudo-monoidal congruence equations replacing (ii): for each
    // position p of R, the two sides differ by using z vs z' at p.
    struct Side {
      int pos;
    };
    for (int pos = 0; pos < 3; ++pos) {
      auto body_with = [pos](const std::string& zvar) {
        std::vector<Term> args = {V("u"), V("v"), V("")};
        // Position layout per the paper: R(z,u,v), R(u,z,v), R(u,v,z).
        std::vector<Term> rargs;
        if (pos == 0) {
          rargs = {V(zvar), V("u"), V("v")};
        } else if (pos == 1) {
          rargs = {V("u"), V(zvar), V("v")};
        } else {
          rargs = {V("u"), V("v"), V(zvar)};
        }
        return std::vector<Atom>{RAtom("x", "y", "z"), RAtom("x", "y", "zp"),
                                 Atom("R", rargs)};
      };
      std::string name = "Vcong" + std::to_string(pos + 1);
      views.Add(name, Query::FromUcq(EquationView(name, {"u", "v", "z", "zp"},
                                                  {body_with("z")},
                                                  {body_with("zp")})));
    }
  }

  // (iii) Associativity: S(w,w') = ∃x,y,z,u,v R(x,y,u) ∧ R(u,z,w) ∧
  // R(y,z,v) ∧ R(x,v,w'), compared against the diagonal (equality
  // version) or against ≈ (equality-free version).
  std::vector<Atom> assoc_body = {RAtom("x", "y", "u"), RAtom("u", "z", "w"),
                                  RAtom("y", "z", "v"), RAtom("x", "v", "wp")};
  if (use_equality) {
    UnionQuery vassoc;
    {
      ConjunctiveQuery d("Vassoc", {V("w"), V("wp")});
      d.AddAtom(P1());
      for (const Atom& a : assoc_body) d.AddAtom(a);
      vassoc.AddDisjunct(std::move(d));
    }
    for (int pos = 0; pos < 3; ++pos) {
      ConjunctiveQuery d("Vassoc", {V("w"), V("w")});
      d.AddAtom(P2());
      d.AddAtom(AdomAtom("w", pos, "q"));
      vassoc.AddDisjunct(std::move(d));
    }
    views.Add("Vassoc", Query::FromUcq(vassoc));
  } else {
    // T: {(w,w') | ∃u,v R(u,v,w) ∧ R(u,v,w')}.
    views.Add("Vassoc",
              Query::FromUcq(EquationView(
                  "Vassoc", {"w", "wp"}, {assoc_body},
                  {{RAtom("c1", "c2", "w"), RAtom("c1", "c2", "wp")}})));
  }
  return views;
}

UnionQuery MonoidQuery(const WordProblem& problem, bool use_equality) {
  // Symbols of F must occur in H (safety of ψ).
  std::set<std::string> h_symbols;
  for (const MonoidEquation& eq : problem.hypotheses) {
    h_symbols.insert(eq.x);
    h_symbols.insert(eq.y);
    h_symbols.insert(eq.z);
  }
  VQDR_CHECK(h_symbols.count(problem.lhs) > 0 &&
             h_symbols.count(problem.rhs) > 0)
      << "F's symbols must occur in H";

  auto sym_var = [](const std::string& s) { return "s_" + s; };
  auto psi_atoms = [&]() {
    std::vector<Atom> atoms;
    for (const MonoidEquation& eq : problem.hypotheses) {
      atoms.push_back(RAtom(sym_var(eq.x), sym_var(eq.y), sym_var(eq.z)));
    }
    return atoms;
  };
  std::string xv = sym_var(problem.lhs);
  std::string yv = sym_var(problem.rhs);

  UnionQuery q;
  // (p1 ∧ p2) branch: answer adom(R)²; 9 safe disjuncts over positions.
  for (int px = 0; px < 3; ++px) {
    for (int py = 0; py < 3; ++py) {
      ConjunctiveQuery d("Q", {V("qx"), V("qy")});
      d.AddAtom(P1());
      d.AddAtom(P2());
      d.AddAtom(AdomAtom("qx", px, "m"));
      d.AddAtom(AdomAtom("qy", py, "n"));
      q.AddDisjunct(std::move(d));
    }
  }
  // (p1 ∧ ψ ∧ x = y) branch.
  {
    ConjunctiveQuery d("Q", {V(xv), V(yv)});
    d.AddAtom(P1());
    for (const Atom& a : psi_atoms()) d.AddAtom(a);
    if (use_equality) {
      d.AddEquality(V(xv), V(yv));
    } else {
      d.AddAtom(RAtom("e1", "e2", xv));
      d.AddAtom(RAtom("e1", "e2", yv));
    }
    q.AddDisjunct(std::move(d));
  }
  // (p2 ∧ ψ) branch.
  {
    ConjunctiveQuery d("Q", {V(xv), V(yv)});
    d.AddAtom(P2());
    for (const Atom& a : psi_atoms()) d.AddAtom(a);
    q.AddDisjunct(std::move(d));
  }
  return q;
}

MonoidalSearchResult SearchMonoidalCounterexample(const WordProblem& problem,
                                                  int max_size) {
  MonoidalSearchResult result;

  std::vector<std::string> symbols;
  {
    std::set<std::string> seen;
    for (const MonoidEquation& eq : problem.hypotheses) {
      for (const std::string* s : {&eq.x, &eq.y, &eq.z}) {
        if (seen.insert(*s).second) symbols.push_back(*s);
      }
    }
  }

  for (int n = 1; n <= max_size; ++n) {
    std::vector<int> table(n * n, 0);
    std::function<bool(int)> fill = [&](int cell) -> bool {
      if (cell == n * n) {
        ++result.functions_examined;
        // Onto?
        std::vector<bool> hit(n, false);
        for (int v : table) hit[v] = true;
        for (bool h : hit) {
          if (!h) return false;
        }
        // Associative?
        for (int a = 0; a < n; ++a) {
          for (int b = 0; b < n; ++b) {
            for (int c = 0; c < n; ++c) {
              if (table[table[a * n + b] * n + c] !=
                  table[a * n + table[b * n + c]]) {
                return false;
              }
            }
          }
        }
        ++result.monoidal_functions;
        // Assignments of H's symbols.
        std::map<std::string, int> assign;
        std::function<bool(std::size_t)> try_assign =
            [&](std::size_t i) -> bool {
          if (i == symbols.size()) {
            for (const MonoidEquation& eq : problem.hypotheses) {
              if (table[assign[eq.x] * n + assign[eq.y]] != assign[eq.z]) {
                return false;
              }
            }
            return assign[problem.lhs] != assign[problem.rhs];
          }
          for (int v = 0; v < n; ++v) {
            assign[symbols[i]] = v;
            if (try_assign(i + 1)) return true;
          }
          return false;
        };
        if (try_assign(0)) {
          MonoidalCounterexample ce;
          ce.size = n;
          ce.table = table;
          for (const std::string& s : symbols) {
            ce.assignment.emplace_back(s, assign[s]);
          }
          result.counterexample = std::move(ce);
          result.implies_up_to_bound = false;
          return true;  // stop
        }
        return false;
      }
      for (int v = 0; v < n; ++v) {
        table[cell] = v;
        if (fill(cell + 1)) return true;
      }
      return false;
    };
    if (fill(0)) return result;
  }
  return result;
}

DeterminacyCounterexample MonoidCounterexampleToInstances(
    const MonoidalCounterexample& ce) {
  Instance graph(MonoidSchema());
  int n = ce.size;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      graph.AddFact("R", Tuple{Value(a + 1), Value(b + 1),
                               Value(ce.table[a * n + b] + 1)});
    }
  }
  DeterminacyCounterexample pair;
  pair.d1 = graph;
  pair.d1.GetMutable("p1").SetBool(true);
  pair.d2 = graph;
  pair.d2.GetMutable("p2").SetBool(true);
  return pair;
}

}  // namespace vqdr
