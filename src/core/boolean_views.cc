#include "core/boolean_views.h"

#include <functional>
#include <vector>

#include "base/check.h"
#include "chase/view_inverse.h"
#include "cq/canonical.h"
#include "cq/matcher.h"

namespace vqdr {

namespace {

// Shifts every non-constant value of `d` by `delta` (a generic renaming
// fixing constants; Boolean view images are invariant under it).
Instance ShiftValues(const Instance& d, const std::set<Value>& constants,
                     std::int64_t delta) {
  return d.Apply([&constants, delta](Value v) {
    if (constants.count(v) > 0) return v;
    return Value(v.id + delta);
  });
}

}  // namespace

BooleanDeterminacyResult DecideBooleanViewDeterminacy(
    const ViewSet& views, const ConjunctiveQuery& q) {
  VQDR_CHECK(views.AllPureCq() && views.AllBoolean())
      << "DecideBooleanViewDeterminacy requires Boolean pure-CQ views";
  VQDR_CHECK(q.IsPureCq() && q.IsSafe())
      << "DecideBooleanViewDeterminacy requires a safe pure-CQ query";

  BooleanDeterminacyResult result;
  result.determined = true;

  // Constants in play: freezing fixes them and merges must fix them.
  std::set<Value> constants = q.Constants();
  for (const View& v : views.views()) {
    for (Value c : v.query.AsCq().Constants()) constants.insert(c);
  }

  // Freeze the query once; θ below re-maps its frozen variable values.
  ValueFactory factory;
  for (Value c : constants) factory.NoteUsed(c);
  FrozenQuery frozen_q = Freeze(q, factory);

  const std::size_t m = views.size();
  Schema full_schema = ChaseSchema(views, frozen_q.instance.schema());

  for (std::uint64_t mask = 0; mask < (1ull << m); ++mask) {
    // D_T: union of the frozen bodies of the views in T — the hom-minimal
    // member of class T, if the class is realizable.
    Instance d_t(full_schema);
    ValueFactory local = factory;
    local.NoteUsed(Value(frozen_q.instance.MaxValueId()));
    for (std::size_t i = 0; i < m; ++i) {
      if (!(mask & (1ull << i))) continue;
      FrozenQuery body = Freeze(views.views()[i].query.AsCq(), local);
      d_t = d_t.UnionWith(body.instance);
    }

    // Realizability: every view outside T must be false on D_T. (If some
    // outside view holds on the minimal member it holds on every member, so
    // the class is empty.)
    bool realizable = true;
    for (std::size_t j = 0; j < m; ++j) {
      if (mask & (1ull << j)) continue;
      if (CqHolds(views.views()[j].query.AsCq(), d_t)) {
        realizable = false;
        break;
      }
    }
    if (!realizable) continue;
    ++result.realizable_classes;

    Relation q_on_min = EvaluateCq(q, d_t);

    // Refutation (i): an answer with a non-constant value is moved by a
    // value-shift, which Boolean views cannot see.
    bool has_nonconstant_answer = false;
    for (const Tuple& t : q_on_min.tuples()) {
      for (Value v : t) {
        if (constants.count(v) == 0) has_nonconstant_answer = true;
      }
    }
    if (has_nonconstant_answer) {
      Instance shifted =
          ShiftValues(d_t, constants, d_t.MaxValueId() + 1000);
      result.determined = false;
      result.counterexample = DeterminacyCounterexample{d_t, shifted};
      return result;
    }

    // Refutation (ii): a merge W = D_T ∪ θ([Q]) that stays inside class T
    // while contributing an answer θ(x̄) outside Q(D_T). θ maps each frozen
    // variable of [Q] into adom(D_T) or into a merged fresh block;
    // exhaustively enumerated. If no such merge exists, every member's
    // answer equals Q(D_T) (all-constant tuples are fixed by the
    // homomorphisms from D_T), so the class is Q-constant.
    std::set<Value> dt_adom = d_t.ActiveDomain();
    std::vector<Value> frozen_vars;
    for (const auto& [var, value] : frozen_q.var_to_value) {
      frozen_vars.push_back(value);
    }
    std::vector<Value> dt_values(dt_adom.begin(), dt_adom.end());
    std::int64_t fresh_base =
        std::max(d_t.MaxValueId(), frozen_q.instance.MaxValueId()) + 1;

    std::map<Value, Value> theta;
    std::optional<Instance> witness;
    std::function<bool(std::size_t, int)> search = [&](std::size_t i,
                                                       int fresh_used) -> bool {
      if (i == frozen_vars.size()) {
        auto apply_theta = [&](Value v) {
          auto it = theta.find(v);
          return it != theta.end() ? it->second : v;  // constants fixed
        };
        // The contributed answer must be new.
        Tuple contributed;
        contributed.reserve(frozen_q.frozen_head.size());
        for (Value v : frozen_q.frozen_head) {
          contributed.push_back(apply_theta(v));
        }
        if (q_on_min.Contains(contributed)) return false;

        Instance merged = frozen_q.instance.Apply(apply_theta);
        Instance w = d_t.UnionWith(merged);
        for (std::size_t j = 0; j < m; ++j) {
          if (mask & (1ull << j)) continue;
          if (CqHolds(views.views()[j].query.AsCq(), w)) return false;
        }
        witness = std::move(w);
        return true;
      }
      for (Value target : dt_values) {
        theta[frozen_vars[i]] = target;
        if (search(i + 1, fresh_used)) return true;
      }
      // Fresh blocks f0..f_{fresh_used}: reusing an existing block merges
      // variables; opening exactly the next block keeps enumeration
      // canonical (no symmetric duplicates).
      for (int f = 0; f <= fresh_used; ++f) {
        theta[frozen_vars[i]] = Value(fresh_base + f);
        bool found = search(i + 1, std::max(fresh_used, f + 1));
        if (found) return true;
      }
      theta.erase(frozen_vars[i]);
      return false;
    };

    if (search(0, 0)) {
      result.determined = false;
      result.counterexample = DeterminacyCounterexample{d_t, *witness};
      return result;
    }
  }
  return result;
}

}  // namespace vqdr
