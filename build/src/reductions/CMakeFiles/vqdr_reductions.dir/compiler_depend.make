# Empty compiler generated dependencies file for vqdr_reductions.
# This may be replaced when dependencies are built.
