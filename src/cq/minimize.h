#ifndef VQDR_CQ_MINIMIZE_H_
#define VQDR_CQ_MINIMIZE_H_

#include "cq/conjunctive_query.h"
#include "cq/ucq.h"

namespace vqdr {

/// Minimizes a pure CQ to its core (Chandra–Merlin): greedily removes body
/// atoms while the query stays equivalent. The result is unique up to
/// isomorphism and has no redundant atoms.
ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& q);

/// Minimizes a pure UCQ: drops disjuncts contained in the union of the
/// others, then minimizes each surviving disjunct.
UnionQuery MinimizeUcq(const UnionQuery& q);

}  // namespace vqdr

#endif  // VQDR_CQ_MINIMIZE_H_
