#include "memo/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/wire.h"
#include "obs/metrics.h"
#include "obs/obs_macros.h"

namespace vqdr::memo {

namespace {

constexpr char kMagic[8] = {'V', 'Q', 'D', 'R', 'S', 'N', 'A', 'P'};
// An entry body larger than this is rejected as structural damage; real
// bodies are orders of magnitude smaller and a forged u32 length must not
// drive a giant allocation.
constexpr std::uint32_t kMaxEntryBytes = 64u << 20;

struct Codec {
  std::string tag;
  const std::type_info* type = nullptr;
  std::function<std::string(const void*)> encode;
  std::function<std::shared_ptr<const void>(std::string_view)> decode;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::type_index, Codec> by_type;
  std::unordered_map<std::string, const Codec*> by_tag;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// Monotone process-wide activity, mirrored into obs counters. Plain atomics
// so the [memo] report line works even with VQDR_OBS compiled out.
struct Activity {
  std::atomic<std::uint64_t> loads{0};
  std::atomic<std::uint64_t> loaded_entries{0};
  std::atomic<std::uint64_t> skipped_entries{0};
  std::atomic<std::uint64_t> corrupt{0};
  std::atomic<std::uint64_t> flushes{0};
  std::atomic<std::uint64_t> flushed_entries{0};
  std::atomic<std::uint64_t> clean_skips{0};
};

Activity& GlobalActivity() {
  static Activity* activity = new Activity();
  return *activity;
}

const std::uint32_t* Crc32Table() {
  static const std::uint32_t* table = [] {
    auto* t = new std::uint32_t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// ---- built-in codec: bool (the containment verdict cache) ----------------

std::string EncodeBool(const bool& value) {
  return std::string(1, value ? '\x01' : '\x00');
}

std::shared_ptr<const bool> DecodeBool(std::string_view payload) {
  if (payload.size() != 1 || (payload[0] != '\x00' && payload[0] != '\x01')) {
    return nullptr;
  }
  return std::make_shared<const bool>(payload[0] == '\x01');
}

[[maybe_unused]] const bool kBoolCodecRegistered =
    RegisterSnapshotType<bool>("bool.v1", EncodeBool, DecodeBool);

}  // namespace

std::uint32_t SnapshotCrc32(std::string_view bytes) {
  const std::uint32_t* table = Crc32Table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void RegisterSnapshotCodec(
    const std::type_info& type, std::string tag,
    std::function<std::string(const void*)> encode,
    std::function<std::shared_ptr<const void>(std::string_view)> decode) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  Codec& codec = registry.by_type[std::type_index(type)];
  codec.tag = std::move(tag);
  codec.type = &type;
  codec.encode = std::move(encode);
  codec.decode = std::move(decode);
  registry.by_tag[codec.tag] = &codec;
}

bool HasSnapshotCodec(const std::string& tag) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.by_tag.find(tag) != registry.by_tag.end();
}

std::string SerializeSnapshot(const Store& store, SnapshotIoStats* stats) {
  SnapshotIoStats local;
  std::vector<Store::ErasedEntry> entries = store.ExportEntries();
  Registry& registry = GlobalRegistry();

  std::string body;
  std::uint64_t written = 0;
  for (const Store::ErasedEntry& entry : entries) {
    std::string tag;
    std::string payload;
    {
      std::lock_guard<std::mutex> lock(registry.mu);
      auto it = registry.by_type.find(std::type_index(*entry.type));
      if (it == registry.by_type.end()) {
        ++local.skipped;
        continue;
      }
      tag = it->second.tag;
      payload = it->second.encode(entry.value.get());
    }
    wire::Encoder entry_enc;
    entry_enc.Str(tag);
    entry_enc.Str(entry.key);
    entry_enc.Str(payload);
    std::string entry_body = entry_enc.Take();
    wire::Encoder framed;
    framed.U32(static_cast<std::uint32_t>(entry_body.size()));
    framed.Raw(entry_body);
    framed.U32(SnapshotCrc32(entry_body));
    body.append(framed.str());
    ++written;
  }

  wire::Encoder header;
  header.Raw(std::string_view(kMagic, sizeof(kMagic)));
  header.U32(kSnapshotVersion);
  header.U64(written);
  std::string out = header.Take();
  out.append(body);

  local.entries = written;
  local.bytes = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

SnapshotIoStats DeserializeSnapshot(std::string_view bytes, Store& store) {
  SnapshotIoStats stats;
  auto corrupt = [&stats](const std::string& why) {
    stats.corrupt = true;
    stats.entries = 0;
    stats.error = why;
    GlobalActivity().corrupt.fetch_add(1, std::memory_order_relaxed);
    VQDR_COUNTER_INC("memo.snapshot.corrupt");
    return stats;
  };

  stats.bytes = bytes.size();
  if (bytes.size() < sizeof(kMagic) + 4 + 8) {
    return corrupt("file shorter than the header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return corrupt("bad magic");
  }
  wire::Decoder dec(bytes.substr(sizeof(kMagic)));
  std::uint32_t version = dec.U32();
  if (version != kSnapshotVersion) {
    return corrupt("version skew: file v" + std::to_string(version) +
                   ", reader v" + std::to_string(kSnapshotVersion));
  }
  std::uint64_t count = dec.U64();
  if (!dec.CheckCount(count, 8)) {
    return corrupt("entry count exceeds file size");
  }

  // Stage everything first: a failure anywhere must leave `store` untouched.
  struct Staged {
    std::string key;
    std::shared_ptr<const void> value;
    const std::type_info* type;
  };
  std::vector<Staged> staged;
  staged.reserve(static_cast<std::size_t>(count));
  Registry& registry = GlobalRegistry();

  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t body_len = dec.U32();
    if (!dec.ok() || body_len > kMaxEntryBytes || body_len > dec.remaining()) {
      return corrupt("truncated entry " + std::to_string(i));
    }
    std::string body = dec.Bytes(body_len);
    std::uint32_t crc = dec.U32();
    if (!dec.ok()) return corrupt("truncated entry " + std::to_string(i));
    if (crc != SnapshotCrc32(body)) {
      return corrupt("CRC mismatch on entry " + std::to_string(i));
    }
    wire::Decoder entry(body);
    std::string tag = entry.Str();
    std::string key = entry.Str();
    std::string payload = entry.Str();
    if (!entry.ok() || !entry.AtEnd()) {
      return corrupt("malformed entry body " + std::to_string(i));
    }
    std::function<std::shared_ptr<const void>(std::string_view)> decode;
    const std::type_info* type = nullptr;
    {
      std::lock_guard<std::mutex> lock(registry.mu);
      auto it = registry.by_tag.find(tag);
      if (it != registry.by_tag.end()) {
        decode = it->second->decode;
        type = it->second->type;
      }
    }
    if (!decode) {
      // Unknown tag with a valid CRC: a snapshot from a newer build. Skip
      // just this entry — forward compatibility, not corruption.
      ++stats.skipped;
      continue;
    }
    std::shared_ptr<const void> value = decode(payload);
    if (value == nullptr) {
      return corrupt("undecodable payload for tag \"" + tag + "\" (entry " +
                     std::to_string(i) + ")");
    }
    staged.push_back({std::move(key), std::move(value), type});
  }
  if (!dec.AtEnd()) return corrupt("trailing bytes after the last entry");

  for (Staged& entry : staged) {
    store.InstallErased(entry.key, std::move(entry.value), *entry.type);
  }
  stats.entries = staged.size();

  Activity& activity = GlobalActivity();
  activity.loads.fetch_add(1, std::memory_order_relaxed);
  activity.loaded_entries.fetch_add(stats.entries, std::memory_order_relaxed);
  activity.skipped_entries.fetch_add(stats.skipped,
                                     std::memory_order_relaxed);
  VQDR_COUNTER_INC("memo.snapshot.loads");
  VQDR_COUNTER_ADD("memo.snapshot.load.entries", stats.entries);
  VQDR_COUNTER_ADD("memo.snapshot.load.skipped", stats.skipped);
  return stats;
}

Status SaveSnapshot(const Store& store, const std::string& path,
                    SnapshotIoStats* stats) {
  SnapshotIoStats local;
  std::string bytes = SerializeSnapshot(store, &local);
  const std::string tmp = path + ".tmp";

  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("snapshot: open(" + tmp +
                            ") failed: " + std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("snapshot: write failed: " +
                              std::string(std::strerror(err)));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) < 0) {
    int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("snapshot: fsync failed: " +
                            std::string(std::strerror(err)));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) < 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    return Status::Internal("snapshot: rename to " + path +
                            " failed: " + std::strerror(err));
  }
  // Make the rename itself durable. Best-effort: some filesystems refuse
  // O_RDONLY on directories, and the data is already safe on disk.
  std::string dir = path;
  std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }

  Activity& activity = GlobalActivity();
  activity.flushes.fetch_add(1, std::memory_order_relaxed);
  activity.flushed_entries.fetch_add(local.entries,
                                     std::memory_order_relaxed);
  VQDR_COUNTER_INC("memo.snapshot.flushes");
  VQDR_COUNTER_ADD("memo.snapshot.flush.entries", local.entries);
  VQDR_HISTOGRAM_RECORD("memo.snapshot.bytes", local.bytes);
  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

SnapshotIoStats LoadSnapshot(Store& store, const std::string& path) {
  SnapshotIoStats stats;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    // Absent snapshot = first boot; anything else (EACCES...) is still a
    // clean cold boot, but leave a breadcrumb in the error field.
    if (errno != ENOENT) {
      stats.error = "snapshot: open(" + path +
                    ") failed: " + std::strerror(errno);
    }
    return stats;
  }
  std::string bytes;
  char chunk[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      stats.error = "snapshot: read failed: " +
                    std::string(std::strerror(errno));
      ::close(fd);
      return stats;
    }
    if (n == 0) break;
    bytes.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return DeserializeSnapshot(bytes, store);
}

bool LoadSnapshotFromEnv(Store& store) {
  const char* path = std::getenv("VQDR_MEMO_SNAPSHOT");
  if (path == nullptr || *path == '\0') return false;
  LoadSnapshot(store, path);
  return true;
}

SnapshotActivity GlobalSnapshotActivity() {
  const Activity& a = GlobalActivity();
  SnapshotActivity out;
  out.loads = a.loads.load(std::memory_order_relaxed);
  out.loaded_entries = a.loaded_entries.load(std::memory_order_relaxed);
  out.skipped_entries = a.skipped_entries.load(std::memory_order_relaxed);
  out.corrupt = a.corrupt.load(std::memory_order_relaxed);
  out.flushes = a.flushes.load(std::memory_order_relaxed);
  out.flushed_entries = a.flushed_entries.load(std::memory_order_relaxed);
  out.clean_skips = a.clean_skips.load(std::memory_order_relaxed);
  return out;
}

// ---- SnapshotFlusher ------------------------------------------------------

SnapshotFlusher::SnapshotFlusher(Store& store, std::string path,
                                 std::uint64_t interval_ms)
    : store_(store), path_(std::move(path)), interval_ms_(interval_ms) {
  if (interval_ms_ > 0) {
    thread_ = std::thread([this] { Loop(); });
  }
}

SnapshotFlusher::~SnapshotFlusher() { Stop(/*final_flush=*/true); }

bool SnapshotFlusher::Dirty() {
  // Content changes are exactly installs + evictions (hits only reorder).
  StatsSnapshot s = store_.Stats();
  std::uint64_t marker = s.installs + s.evictions;
  if (marker == last_change_marker_) {
    GlobalActivity().clean_skips.fetch_add(1, std::memory_order_relaxed);
    VQDR_COUNTER_INC("memo.snapshot.flush.clean_skips");
    return false;
  }
  last_change_marker_ = marker;
  return true;
}

Status SnapshotFlusher::FlushNow(SnapshotIoStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot s = store_.Stats();
  last_change_marker_ = s.installs + s.evictions;
  return SaveSnapshot(store_, path_, stats);
}

void SnapshotFlusher::Stop(bool final_flush) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    if (final_flush) (void)SaveSnapshot(store_, path_, nullptr);
  }
}

void SnapshotFlusher::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_; });
    if (stop_) break;
    if (!Dirty()) continue;
    Status s = SaveSnapshot(store_, path_, nullptr);
    if (!s.ok()) {
      std::fprintf(stderr, "memo: %s\n", s.message().c_str());
    }
  }
}

}  // namespace vqdr::memo
