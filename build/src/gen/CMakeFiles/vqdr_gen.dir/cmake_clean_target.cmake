file(REMOVE_RECURSE
  "libvqdr_gen.a"
)
