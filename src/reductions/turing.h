#ifndef VQDR_REDUCTIONS_TURING_H_
#define VQDR_REDUCTIONS_TURING_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "views/view_set.h"

namespace vqdr {

/// The Theorem 5.1 construction: FO-to-FO rewriting is Turing-complete.
/// Over σ = {R1/2, R2/2, Le/2, T/3}, the sentence φ_M states that Le is a
/// total order with adom(R1) as initial elements and that T encodes a
/// halting computation of machine M on enc_≤(R1) with output enc_≤(R2).
/// The views are V = {Q_{R1} = φ_M ∧ R1(x,y)} and the query is
/// Q = φ_M ∧ R2(x,y); then V ↠ Q and Q_V is exactly the query computed by
/// M.
///
/// Substitution note (see DESIGN.md): φ_M exists as an FO sentence by the
/// standard configuration-encoding technique; evaluating that sentence on a
/// finite instance amounts to running the checks below, so the library
/// implements φ_M's *semantics* directly (VerifyComputationInstance) and
/// wraps view and query as computable queries. Everything downstream
/// (determinacy, Q_V behaviour) is exercised unchanged.

/// A single-tape deterministic Turing machine over a char alphabet.
class SimpleTm {
 public:
  struct Transition {
    int next_state = 0;
    char write = '_';
    int move = 0;  // -1, 0, +1
  };

  /// A configuration: control state, head position, tape contents.
  struct Config {
    int state = 0;
    int head = 0;
    std::string tape;
  };

  SimpleTm(int start_state, std::set<int> halt_states, char blank = '_')
      : start_state_(start_state),
        halt_states_(std::move(halt_states)),
        blank_(blank) {}

  /// Adds δ(state, read) = (next, write, move).
  void AddTransition(int state, char read, Transition t) {
    delta_[{state, read}] = t;
  }

  int start_state() const { return start_state_; }
  bool IsHalting(int state) const { return halt_states_.count(state) > 0; }
  char blank() const { return blank_; }

  /// The transition for (state, read), if any (none ⇒ the machine hangs,
  /// i.e. no halting computation exists).
  std::optional<Transition> Delta(int state, char read) const;

  /// Runs the machine, returning every configuration from the initial one
  /// to the halting one. Errors if step or tape budgets are exceeded or the
  /// machine hangs.
  StatusOr<std::vector<Config>> Run(const std::string& input, int max_steps,
                                    int max_tape) const;

 private:
  int start_state_;
  std::set<int> halt_states_;
  char blank_;
  std::map<std::pair<int, char>, Transition> delta_;
};

/// The machine used in the runnable demonstration: flips every bit of the
/// input ('0' ↔ '1'), halting at the first blank. It computes the graph
/// complement query (within the active domain) through the encoding.
SimpleTm ComplementTm();

/// A machine that halts immediately: computes the identity query.
SimpleTm IdentityTm();

/// enc_≤(G): the |ranked|²-bit adjacency string of `edges` under the order
/// given by `ranked` (rank i, j → position i·n + j).
std::string EncodeGraph(const Relation& edges, const std::vector<Value>& ranked);

/// Inverse of EncodeGraph.
Relation DecodeGraph(const std::string& enc, const std::vector<Value>& ranked);

/// σ = {R1/2, R2/2, Le/2, T/3}.
Schema TuringSchema();

/// Builds a database instance D over TuringSchema() containing the input
/// graph R1, a linear order Le whose initial elements are adom(R1), the
/// full computation trace T of `tm` on enc(R1), and the decoded output R2.
/// `extra_elements` pads the order domain (it must cover max(#configs,
/// tape cells used)); the function sizes automatically when it is -1.
StatusOr<Instance> BuildComputationInstance(const SimpleTm& tm,
                                            const Relation& input_graph,
                                            int extra_elements = -1);

/// The semantics of φ_M: true iff Le is a linear order with adom(R1) as an
/// initial segment, T encodes a halting computation of `tm` on enc(R1), and
/// R2 is the decoded output.
bool VerifyComputationInstance(const SimpleTm& tm, const Instance& d);

/// V = {VR1 = φ_M ∧ R1(x,y)} — a single binary view.
ViewSet TuringViews(const SimpleTm& tm);

/// Q = φ_M ∧ R2(x,y).
Query TuringQuery(const SimpleTm& tm);

/// The graph query computed by ComplementTm() through the encoding:
/// complement of `edges` within its active domain.
Relation ComplementWithinAdom(const Relation& edges);

}  // namespace vqdr

#endif  // VQDR_REDUCTIONS_TURING_H_
