#ifndef VQDR_REDUCTIONS_ORDER_VIEWS_H_
#define VQDR_REDUCTIONS_ORDER_VIEWS_H_

#include <string>

#include "fo/formula.h"
#include "views/view_set.h"

namespace vqdr {

/// The order-invariance constructions of Example 3.2 and Proposition 5.7:
/// views over σ ∪ {<} that determine an order-invariant query
/// Q_φ = ψ ∧ φ(<) without exposing the order — the paper's witnesses that
/// FO is not complete for finite rewritings.
///
/// Implementation note. The paper's sketch leaves implicit what happens to
/// elements that occur *only* in the order relation: they are invisible to
/// the views yet would influence ψ and φ. We therefore relativize the whole
/// construction to the σ-active domain: ψ says "< restricted to adom(σ) is
/// a strict total order on adom(σ)", and φ is relativized so its
/// quantifiers range over adom(σ). On instances whose order lives exactly
/// on adom(σ) — the intended ones — this coincides with the paper's
/// statement, and determinacy holds on *all* instances.

/// inσ(var): the FO formula "var occurs in some σ-relation".
FoPtr InSigmaFormula(const Schema& sigma, const std::string& var);

/// Relativizes quantifiers to inσ and guards the free variables.
FoPtr RelativizeToSigma(const FoPtr& formula, const Schema& sigma);

/// ψ̂: "< ∩ adom(σ)² is a strict total order on adom(σ)".
FoPtr StrictTotalOrderOnSigma(const Schema& sigma,
                              const std::string& order_rel);

/// Example 3.2 views: identity on each σ-relation plus the Boolean FO view
/// R_ψ = ψ̂.
ViewSet Example32Views(const Schema& sigma, const std::string& order_rel);

/// Q_φ = ψ̂ ∧ relativize(φ): the order-guarded query. For order-invariant
/// φ, the views above (and Prop57Views below) determine Q_φ.
Query OrderGuardedQuery(const FoQuery& phi, const Schema& sigma,
                        const std::string& order_rel);

/// Proposition 5.7: the same determinacy achieved with UCQ¬ views —
/// views (1)–(4) are nonempty exactly when `<` fails to be a strict total
/// order on adom(σ) (symmetry, transitivity, totality), each anchored to
/// σ-membership, and views (5) expose σ.
ViewSet Prop57Views(const Schema& sigma, const std::string& order_rel);

}  // namespace vqdr

#endif  // VQDR_REDUCTIONS_ORDER_VIEWS_H_
