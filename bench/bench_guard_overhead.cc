// Guard-seam overhead benchmark: the governance checkpoints must be free
// when no budget is attached and near-free with an unlimited one. Each hot
// path runs three ways — ungoverned (nullptr budget, what a -DVQDR_GUARD=OFF
// build also measures since the stub inlines to nothing), with an unlimited
// Budget (a relaxed fetch_add per checkpoint, a clock read every
// kClockStride steps), and the raw legacy entry point where one exists.
// The overhead budget, like the obs seam's, is <= 2%: compare the
// `*_unbudgeted` variants of this file's BENCH_guard_overhead.json between
// a default build and a -DVQDR_GUARD=OFF build (the `guard_enabled` counter
// on every benchmark says which build produced the file).
//
// Workloads mirror the substrate benches: the finite counterexample search
// (tightest checkpoint loop — one per instance plus one per matcher node),
// the CQ(≠) identification-pattern sweep, and the chase chain (checkpoint
// per chased tuple, atom accounting per materialized fact).

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "chase/chain.h"
#include "core/finite_search.h"
#include "cq/containment.h"
#include "gen/workloads.h"
#include "guard/budget.h"

namespace vqdr {
namespace {

#ifndef VQDR_GUARD_DISABLED
constexpr double kGuardEnabled = 1.0;
#else
constexpr double kGuardEnabled = 0.0;
#endif

// --- finite counterexample search ------------------------------------------

void BM_SearchUnbudgeted(benchmark::State& state) {
  ViewSet views = PathViews(2);
  Query q = Query::FromCq(ChainQuery(3));
  Schema schema{{"E", 2}};
  EnumerationOptions options;
  options.domain_size = static_cast<int>(state.range(0));
  options.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SearchDeterminacyCounterexample(views, q, schema, options));
  }
  state.counters["guard_enabled"] = kGuardEnabled;
}
BENCHMARK(BM_SearchUnbudgeted)->DenseRange(2, 3)
    ->Unit(benchmark::kMicrosecond);

void BM_SearchUnlimitedBudget(benchmark::State& state) {
  ViewSet views = PathViews(2);
  Query q = Query::FromCq(ChainQuery(3));
  Schema schema{{"E", 2}};
  for (auto _ : state) {
    guard::Budget budget;  // unlimited: every checkpoint taken, none trips
    EnumerationOptions options;
    options.domain_size = static_cast<int>(state.range(0));
    options.threads = 1;
    options.budget = &budget;
    benchmark::DoNotOptimize(
        SearchDeterminacyCounterexample(views, q, schema, options));
  }
  state.counters["guard_enabled"] = kGuardEnabled;
}
BENCHMARK(BM_SearchUnlimitedBudget)->DenseRange(2, 3)
    ->Unit(benchmark::kMicrosecond);

// --- CQ(!=) containment sweep ----------------------------------------------

ConjunctiveQuery DisequalityChain(int n) {
  ConjunctiveQuery q = ChainQuery(n);
  q.AddDisequality(Term::Var("x0"), Term::Var("x" + std::to_string(n)));
  return q;
}

void BM_ContainmentUnbudgeted(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ConjunctiveQuery q1 = ChainQuery(n);
  ConjunctiveQuery q2 = DisequalityChain(n);
  CqContainmentOptions options;
  options.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CqContainedInGoverned(q1, q2, options));
  }
  state.counters["guard_enabled"] = kGuardEnabled;
}
BENCHMARK(BM_ContainmentUnbudgeted)->DenseRange(3, 5)
    ->Unit(benchmark::kMicrosecond);

void BM_ContainmentUnlimitedBudget(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ConjunctiveQuery q1 = ChainQuery(n);
  ConjunctiveQuery q2 = DisequalityChain(n);
  for (auto _ : state) {
    guard::Budget budget;
    CqContainmentOptions options;
    options.threads = 1;
    options.budget = &budget;
    benchmark::DoNotOptimize(CqContainedInGoverned(q1, q2, options));
  }
  state.counters["guard_enabled"] = kGuardEnabled;
}
BENCHMARK(BM_ContainmentUnlimitedBudget)->DenseRange(3, 5)
    ->Unit(benchmark::kMicrosecond);

// --- chase chain -----------------------------------------------------------

void BM_ChaseChainUnbudgeted(benchmark::State& state) {
  ViewSet views = PathViews(3);
  ConjunctiveQuery q = ChainQuery(4);
  int levels = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ValueFactory factory;
    ChaseChainOptions options;
    options.levels = levels;
    benchmark::DoNotOptimize(BuildChaseChain(views, q, options, factory));
  }
  state.counters["guard_enabled"] = kGuardEnabled;
}
BENCHMARK(BM_ChaseChainUnbudgeted)->DenseRange(1, 3)
    ->Unit(benchmark::kMicrosecond);

void BM_ChaseChainUnlimitedBudget(benchmark::State& state) {
  ViewSet views = PathViews(3);
  ConjunctiveQuery q = ChainQuery(4);
  int levels = static_cast<int>(state.range(0));
  for (auto _ : state) {
    guard::Budget budget;
    ValueFactory factory;
    ChaseChainOptions options;
    options.levels = levels;
    options.budget = &budget;
    benchmark::DoNotOptimize(BuildChaseChain(views, q, options, factory));
  }
  state.counters["guard_enabled"] = kGuardEnabled;
}
BENCHMARK(BM_ChaseChainUnlimitedBudget)->DenseRange(1, 3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("guard_overhead");
