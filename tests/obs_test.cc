// Tests for the observability layer: counter registry and snapshot/delta
// semantics, histogram extremes, the trace ring buffer and JSONL sink
// (including span nesting order), the progress hook, and the
// VQDR_OBS_DISABLED macro seam — both modes compiled into this one file by
// re-including obs/obs_macros.h.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/finite_search.h"
#include "gen/workloads.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace vqdr {
namespace {

// --- counters and snapshots ------------------------------------------------

TEST(ObsMetrics, CounterRegistryHandsOutStableReferences) {
  obs::Counter& a = obs::GetCounter("test.obs.stable");
  obs::Counter& b = obs::GetCounter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  std::uint64_t before = a.value();
  b.Add(3);
  EXPECT_EQ(a.value(), before + 3);
}

TEST(ObsMetrics, SnapshotDeltaReportsOnlyMovement) {
  obs::Counter& moved = obs::GetCounter("test.obs.delta.moved");
  obs::GetCounter("test.obs.delta.idle");  // registered but untouched

  obs::MetricsSnapshot before = obs::SnapshotMetrics();
  moved.Add(7);
  obs::MetricsSnapshot delta = obs::SnapshotDelta(before);

  EXPECT_EQ(delta.counters.count("test.obs.delta.idle"), 0u);
  ASSERT_EQ(delta.counters.count("test.obs.delta.moved"), 1u);
  EXPECT_EQ(delta.counters.at("test.obs.delta.moved"), 7u);
}

TEST(ObsMetrics, ResetZeroesButKeepsRegistration) {
  obs::Counter& c = obs::GetCounter("test.obs.reset");
  c.Add(5);
  obs::ResetMetrics();
  EXPECT_EQ(c.value(), 0u);
  // The registry entry survives the reset and still snapshots.
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  ASSERT_EQ(snap.counters.count("test.obs.reset"), 1u);
  EXPECT_EQ(snap.counters.at("test.obs.reset"), 0u);
  c.Increment();
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsMetrics, HistogramTracksCountSumMinMax) {
  obs::Histogram& h = obs::GetHistogram("test.obs.hist");
  h.Reset();
  h.Record(10);
  h.Record(2);
  h.Record(40);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 52u);
  EXPECT_EQ(h.min(), 2u);
  EXPECT_EQ(h.max(), 40u);

  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  ASSERT_EQ(snap.histograms.count("test.obs.hist"), 1u);
  EXPECT_EQ(snap.histograms.at("test.obs.hist").max, 40u);
}

TEST(ObsMetrics, SnapshotRendersToStringAndJson) {
  obs::GetCounter("test.obs.render").Add(1);
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  EXPECT_NE(snap.ToString().find("test.obs.render="), std::string::npos);
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.render\":"), std::string::npos);
}

// --- macros (enabled mode) -------------------------------------------------
// Compiled out under a -DVQDR_OBS=OFF build, where the macros are no-ops
// from the first include on.
#ifndef VQDR_OBS_DISABLED

TEST(ObsMacros, EnabledMacrosBumpTheNamedCounter) {
  std::uint64_t before = obs::GetCounter("test.obs.macro.live").value();
  for (int i = 0; i < 4; ++i) {
    VQDR_COUNTER_INC("test.obs.macro.live");
  }
  VQDR_COUNTER_ADD("test.obs.macro.live", 6);
  EXPECT_EQ(obs::GetCounter("test.obs.macro.live").value(), before + 10);

  VQDR_HISTOGRAM_RECORD("test.obs.macro.hist", 17);
  EXPECT_GE(obs::GetHistogram("test.obs.macro.hist").count(), 1u);
}

#endif  // VQDR_OBS_DISABLED

// --- tracing ---------------------------------------------------------------

TEST(ObsTrace, RingBufferRecordsNestedSpansInnerFirst) {
  obs::EnableTracing();
  obs::DrainTraceEvents();  // discard anything earlier tests left behind
  {
    obs::TraceSpan outer("test.outer", 1);
    { obs::TraceSpan inner("test.inner"); }
  }
  obs::DisableTracing();

  std::vector<obs::TraceEvent> events = obs::DrainTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded on completion: the inner span lands first, one level
  // deeper, and its lifetime nests inside the outer's.
  EXPECT_EQ(events[0].name, "test.inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_FALSE(events[0].has_arg);
  EXPECT_EQ(events[1].name, "test.outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_TRUE(events[1].has_arg);
  EXPECT_EQ(events[1].arg, 1);
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].start_us + events[0].dur_us,
            events[1].start_us + events[1].dur_us);
}

TEST(ObsTrace, JsonlSinkWritesOneWellFormedLinePerSpan) {
  std::string path = ::testing::TempDir() + "/vqdr_obs_trace_test.jsonl";
  ASSERT_TRUE(obs::SetTraceSinkPath(path));
  {
    obs::TraceSpan outer("sink.outer");
    { obs::TraceSpan inner("sink.inner", 42); }
  }
  obs::DisableTracing();
  obs::DrainTraceEvents();

  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  // Inner completes (and is written) before outer; depth disambiguates.
  EXPECT_EQ(lines[0].find("{\"name\":\"sink.inner\",\"arg\":42,"), 0u);
  EXPECT_NE(lines[0].find("\"depth\":1}"), std::string::npos);
  EXPECT_EQ(lines[1].find("{\"name\":\"sink.outer\","), 0u);
  EXPECT_NE(lines[1].find("\"depth\":0}"), std::string::npos);
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_NE(l.find("\"start_us\":"), std::string::npos);
    EXPECT_NE(l.find("\"dur_us\":"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  obs::DisableTracing();
  obs::DrainTraceEvents();
  { VQDR_TRACE_SPAN("test.disabled"); }
  EXPECT_TRUE(obs::DrainTraceEvents().empty());
}

// --- progress --------------------------------------------------------------

TEST(ObsProgress, TickerThrottlesAndReportsPhase) {
  std::vector<std::uint64_t> reported;
  obs::SetProgressCallback([&](const obs::ProgressEvent& e) {
    EXPECT_STREQ(e.phase, "test.progress");
    EXPECT_EQ(e.total, 100u);
    reported.push_back(e.current);
    return true;
  });
  obs::ProgressTicker ticker("test.progress", /*stride=*/10, /*total=*/100);
  for (int i = 0; i < 35; ++i) EXPECT_TRUE(ticker.Tick());
  obs::ClearProgressCallback();
  EXPECT_EQ(reported, (std::vector<std::uint64_t>{10, 20, 30}));
  EXPECT_EQ(ticker.count(), 35u);
}

TEST(ObsProgress, TickerLatchesCancellation) {
  // Once the callback returns false, every later Tick() must keep
  // returning false without re-asking (and possibly re-granting) on the
  // next stride boundary.
  int calls = 0;
  obs::SetProgressCallback([&](const obs::ProgressEvent&) {
    ++calls;
    return false;
  });
  obs::ProgressTicker ticker("test.progress.latch", /*stride=*/4);
  EXPECT_TRUE(ticker.Tick());   // 1
  EXPECT_TRUE(ticker.Tick());   // 2
  EXPECT_TRUE(ticker.Tick());   // 3
  EXPECT_FALSE(ticker.Tick());  // 4: callback fires, cancels
  EXPECT_TRUE(ticker.cancelled());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(ticker.Tick());
  obs::ClearProgressCallback();
  EXPECT_EQ(calls, 1);  // never re-asked after the latch
  EXPECT_EQ(ticker.count(), 4u);  // cancelled ticks are not counted as work
}

TEST(ObsProgress, CallbackCancellationStopsFiniteSearch) {
  // A callback that cancels immediately turns the (huge) search into a
  // budget-exhausted verdict after at most one stride of instances.
  obs::SetProgressCallback(
      [](const obs::ProgressEvent&) { return false; });
  ViewSet views = PathViews(2);
  EnumerationOptions options;
  options.domain_size = 4;  // 2^16 instances; cancellation must cut it short
  DeterminacySearchResult result = SearchDeterminacyCounterexample(
      views, Query::FromCq(ChainQuery(3)), Schema{{"E", 2}}, options);
  obs::ClearProgressCallback();
  EXPECT_EQ(result.verdict, SearchVerdict::kBudgetExhausted);
  EXPECT_LE(result.instances_examined, 1024u);
}

TEST(ObsProgress, SearchTallyIsFedFromObsCounter) {
  std::uint64_t before = obs::GetCounter("search.instances").value();
  ViewSet views = PathViews(2);
  EnumerationOptions options;
  options.domain_size = 1;
  DeterminacySearchResult result = SearchDeterminacyCounterexample(
      views, Query::FromCq(ChainQuery(2)), Schema{{"E", 2}}, options);
  std::uint64_t after = obs::GetCounter("search.instances").value();
  EXPECT_GT(result.instances_examined, 0u);
  EXPECT_EQ(after - before, result.instances_examined);
}

}  // namespace
}  // namespace vqdr

// --- the macro seam: disabled mode in the same translation unit ------------

#define VQDR_OBS_DISABLED
#include "obs/obs_macros.h"  // macros are now no-ops

namespace vqdr {
namespace {

TEST(ObsMacros, DisabledMacrosAreNoOps) {
  std::uint64_t counter_before = obs::GetCounter("test.obs.macro.dead").value();
  std::uint64_t hist_before = obs::GetHistogram("test.obs.macro.hist").count();
  obs::EnableTracing();
  obs::DrainTraceEvents();

  VQDR_COUNTER_INC("test.obs.macro.dead");
  VQDR_COUNTER_ADD("test.obs.macro.dead", 100);
  VQDR_HISTOGRAM_RECORD("test.obs.macro.hist", 5);
  { VQDR_TRACE_SPAN("test.obs.macro.dead.span"); }

  EXPECT_EQ(obs::GetCounter("test.obs.macro.dead").value(), counter_before);
  EXPECT_EQ(obs::GetHistogram("test.obs.macro.hist").count(), hist_before);
  EXPECT_TRUE(obs::DrainTraceEvents().empty());
  obs::DisableTracing();
}

}  // namespace
}  // namespace vqdr

#undef VQDR_OBS_DISABLED
#include "obs/obs_macros.h"  // restore for anything below

namespace vqdr {
namespace {

TEST(ObsMacros, ReincludeRestoresLiveMacros) {
  std::uint64_t before = obs::GetCounter("test.obs.macro.restored").value();
  VQDR_COUNTER_INC("test.obs.macro.restored");
  EXPECT_EQ(obs::GetCounter("test.obs.macro.restored").value(), before + 1);
}

}  // namespace
}  // namespace vqdr
