// One-binary paper replication: walks through every machine-checkable
// claim of Segoufin & Vianu (PODS 2005) and prints a verdict table.
// Each row re-derives the claim from scratch with the library's machinery
// (no canned answers); the expected column states what the paper proves.
//
// Build & run:  ./build/examples/paper_replication

#include <iomanip>
#include <iostream>
#include <vector>

#include "chase/chain.h"
#include "core/boolean_views.h"
#include "core/determinacy.h"
#include "core/finite_search.h"
#include "core/query_answering.h"
#include "core/rewriting.h"
#include "core/twin_encoding.h"
#include "cq/containment.h"
#include "cq/matcher.h"
#include "cq/parser.h"
#include "fo/evaluator.h"
#include "fo/parser.h"
#include "gen/workloads.h"
#include "reductions/counterexamples.h"
#include "reductions/gimp.h"
#include "reductions/monoid.h"
#include "reductions/order_views.h"
#include "reductions/turing.h"

using namespace vqdr;

namespace {

int passed = 0, failed = 0;

void Row(const std::string& id, const std::string& claim, bool ok) {
  std::cout << std::left << std::setw(10) << id << std::setw(62) << claim
            << (ok ? "PASS" : "FAIL") << "\n";
  (ok ? passed : failed) += 1;
}

}  // namespace

int main() {
  NamePool pool;
  std::cout << "Replicating: Segoufin & Vianu, 'Views and Queries: "
               "Determinacy and Rewriting' (PODS 2005)\n\n";
  std::cout << std::left << std::setw(10) << "result" << std::setw(62)
            << "machine-checked claim" << "verdict\n";
  std::cout << std::string(80, '-') << "\n";

  // --- Theorem 3.3 / 3.7: chase decision + canonical rewriting ---
  {
    ViewSet views = PathViews(2);
    ConjunctiveQuery q = ChainQuery(4);
    auto det = DecideUnrestrictedDeterminacy(views, q);
    auto rewriting = FindCqRewriting(views, q);
    bool ok = det.determined && rewriting.exists &&
              CqEquivalent(ExpandRewriting(*rewriting.rewriting, views), q);
    Row("Thm 3.3/7", "chase decides {P1,P2} |= chain-4 and yields Q_V", ok);

    ViewSet p2only;
    p2only.Add("P2", Query::FromCq(ChainQuery(2, "E", "P2")));
    bool neg = !DecideUnrestrictedDeterminacy(p2only, ChainQuery(3)).determined;
    Row("Thm 3.3/7", "chase refutes {P2} |= chain-3 (parity lost)", neg);
  }

  // --- Proposition 3.6: chain properties ---
  {
    ViewSet views;
    views.Add("P1", Query::FromCq(ChainQuery(1, "E", "P1")));
    views.Add("P3", Query::FromCq(ChainQuery(3, "E", "P3")));
    ValueFactory factory;
    ChaseChain chain = BuildChaseChain(views, ChainQuery(2), 2, factory);
    bool ok = true;
    for (int k = 1; k <= 2; ++k) {
      ok = ok && chain.s[k - 1].IsExtendedBy(chain.s_prime[k]) &&
           chain.s_prime[k].IsExtendedBy(chain.s[k]) &&
           chain.d[k - 1].IsExtendedBy(chain.d[k]) &&
           chain.d_prime[k - 1].IsExtendedBy(chain.d_prime[k]);
    }
    Row("Prop 3.6", "chase-chain extension properties hold level by level",
        ok);
  }

  // --- Example 3.2 / Prop 5.7: order views determine order-invariant Q ---
  {
    Schema sigma{{"P", 1}};
    FoQuery phi;
    phi.formula = ParseFo("exists x, y . Lt(x, y)", pool).value();
    Query q = OrderGuardedQuery(phi, sigma, "Lt");
    Schema full = sigma;
    full.Add("Lt", 2);
    EnumerationOptions opts;
    opts.domain_size = 2;
    bool ex32 = SearchDeterminacyCounterexample(Example32Views(sigma, "Lt"),
                                                q, full, opts)
                    .verdict == SearchVerdict::kNoneWithinBound;
    bool p57 = SearchDeterminacyCounterexample(Prop57Views(sigma, "Lt"), q,
                                               full, opts)
                   .verdict == SearchVerdict::kNoneWithinBound;
    Row("Ex 3.2", "FO order views determine Q_phi (no refutation, n<=2)",
        ex32);
    Row("Prop 5.7", "CQ-not order views determine Q_phi likewise", p57);
  }

  // --- Theorem 4.5: monoid reduction, both directions ---
  {
    WordProblem comm{{{"a", "b", "c"}, {"b", "a", "d"}}, "c", "d"};
    auto search = SearchMonoidalCounterexample(comm, 3);
    bool ok = !search.implies_up_to_bound;
    if (ok) {
      auto pair = MonoidCounterexampleToInstances(*search.counterexample);
      for (bool eq : {true, false}) {
        ViewSet views = MonoidViews(eq);
        UnionQuery q = MonoidQuery(comm, eq);
        ok = ok &&
             views.Apply(pair.d1).ToKey() == views.Apply(pair.d2).ToKey() &&
             EvaluateUcq(q, pair.d1) != EvaluateUcq(q, pair.d2);
      }
    }
    Row("Thm 4.5", "word-problem counterexample refutes UCQ determinacy",
        ok);

    WordProblem func{{{"a", "b", "c"}, {"a", "b", "d"}}, "c", "d"};
    Row("Thm 4.5", "implied F: no monoidal counterexample up to size 3",
        SearchMonoidalCounterexample(func, 3).implies_up_to_bound);
  }

  // --- Theorem 4.6: Boolean views decided exactly ---
  {
    ViewSet v1;
    v1.Add("V", Query::FromCq(ParseCq("V() :- E(x, x)", pool).value()));
    bool pos = DecideBooleanViewDeterminacy(
                   v1, ParseCq("Q() :- E(y, y)", pool).value())
                   .determined;
    ViewSet v2;
    v2.Add("V", Query::FromCq(ParseCq("V() :- E(x, y)", pool).value()));
    auto refuted = DecideBooleanViewDeterminacy(
        v2, ParseCq("Q() :- E(x, x)", pool).value());
    bool neg = !refuted.determined && refuted.counterexample.has_value() &&
               v2.Apply(refuted.counterexample->d1) ==
                   v2.Apply(refuted.counterexample->d2);
    Row("Thm 4.6", "Boolean-view decision: positive case", pos);
    Row("Thm 4.6", "Boolean-view decision: refutation with witness pair",
        neg);
  }

  // --- Theorem 5.1: Turing construction ---
  {
    SimpleTm tm = ComplementTm();
    Relation graph(2, {MakeTuple({1, 2}), MakeTuple({2, 1})});
    auto d1 = BuildComputationInstance(tm, graph);
    auto d2 = BuildComputationInstance(tm, graph, /*extra_elements=*/9);
    ViewSet views = TuringViews(tm);
    Query q = TuringQuery(tm);
    bool ok = d1.ok() && d2.ok() &&
              views.Apply(d1.value()) == views.Apply(d2.value()) &&
              q.Eval(d1.value()) == q.Eval(d2.value()) &&
              q.Eval(d1.value()) ==
                  ComplementWithinAdom(views.Apply(d1.value()).Get("VR1"));
    Row("Thm 5.1", "Q = q o V on computation instances (q = complement)",
        ok);
  }

  // --- Theorem 5.2 / Lemma 5.3: query answering through views ---
  {
    Schema base{{"E", 2}};
    ViewSet views = PathViews(1);
    Query q = Query::FromCq(ChainQuery(2));
    Instance d = PathInstance(3);
    QueryAnsweringOptions opts;
    opts.extra_values = 0;
    auto answer = AnswerViaPreimage(views, q, base, views.Apply(d), opts);
    Row("Lem 5.3", "NP-style pre-image answering reproduces Q_V",
        answer.ok() && answer->answer == q.Eval(d));
  }

  // --- Theorem 5.4: GIMP / parity through views ---
  {
    auto gimp = BuildParityGimp();
    bool ok = gimp.ok();
    if (ok) {
      const GimpConstruction& g = gimp->construction;
      auto build = [&](const std::vector<int>& order) {
        Instance dp(g.tau_prime());
        int n = static_cast<int>(order.size());
        for (int i = 1; i <= n; ++i) dp.AddFact("U", Tuple{Value(i)});
        for (int i = 0; i < n; ++i) {
          for (int j = i + 1; j < n; ++j) {
            dp.AddFact("Ord", Tuple{Value(order[i]), Value(order[j])});
          }
          if (i % 2 == 0) dp.AddFact("Alt", Tuple{Value(order[i])});
        }
        dp.GetMutable("T").SetBool(n % 2 == 0);
        return g.CompleteInstance(dp);
      };
      Instance c1 = build({1, 2, 3});
      Instance c2 = build({3, 1, 2});
      ok = g.views().Apply(c1) == g.views().Apply(c2) &&
           g.query().Eval(c1) == g.query().Eval(c2) &&
           !g.query().Eval(c1).AsBool();
    }
    Row("Thm 5.4", "GIMP views compute EVEN without revealing the order",
        ok);
  }

  // --- Propositions 5.8 / 5.12: non-monotone Q_V ---
  {
    NonMonotonicityFamily f58 = Prop58Family(pool);
    bool ok58 =
        f58.witness.view_image1.IsSubInstanceOf(f58.witness.view_image2) &&
        !f58.query.Eval(f58.witness.d1)
             .IsSubsetOf(f58.query.Eval(f58.witness.d2));
    EnumerationOptions opts;
    opts.domain_size = 2;
    ok58 = ok58 && SearchDeterminacyCounterexample(
                       f58.views, f58.query, f58.base, opts)
                           .verdict == SearchVerdict::kNoneWithinBound;
    Row("Prop 5.8", "UCQ views: determined yet Q_V non-monotonic", ok58);

    NonMonotonicityFamily f512 = Prop512Family(pool);
    bool ok512 =
        f512.witness.view_image1.IsSubInstanceOf(f512.witness.view_image2) &&
        !f512.query.Eval(f512.witness.d1)
             .IsSubsetOf(f512.query.Eval(f512.witness.d2));
    Row("Prop 5.12", "CQ!= views: determined yet Q_V non-monotonic", ok512);
  }

  // --- Section 4: twin-schema encoding agrees with direct search ---
  {
    Schema base{{"E", 2}};
    ViewSet views;
    views.Add("V", Query::FromCq(ParseCq("V(x) :- E(x, y)", pool).value()));
    Query q = Query::FromCq(ParseCq("Q(x, y) :- E(x, y)", pool).value());
    EnumerationOptions opts;
    opts.domain_size = 2;
    auto twin = BoundedTwinSearch(BuildTwinEncoding(views, q, base), base,
                                  opts);
    auto direct = SearchDeterminacyCounterexample(views, q, base, opts);
    Row("Sec 4",
        "twin-schema FO encoding finds the same refutation as search",
        twin.verdict == SearchVerdict::kCounterexampleFound &&
            direct.verdict == SearchVerdict::kCounterexampleFound);
  }

  std::cout << std::string(80, '-') << "\n";
  std::cout << passed << " claims replicated, " << failed << " failed\n";
  return failed == 0 ? 0 : 1;
}
