#ifndef VQDR_BASE_WIRE_H_
#define VQDR_BASE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

// Minimal bounds-checked binary wire format for the memo snapshot codecs
// (DESIGN.md §14): fixed-width little-endian integers and length-prefixed
// byte strings. The Decoder never throws and never reads past its input —
// any malformed read flips ok() to false and subsequent reads return zero
// values, so codecs can decode unconditionally and check ok() once at the
// end. Deliberately header-only and dependency-free so every layer (data,
// cq, chase, core, memo, fuzz harnesses) can use it.

namespace vqdr::wire {

class Encoder {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void I64(std::int64_t v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));  // two's complement pass-through
    U64(u);
  }

  void Str(std::string_view s) {
    U64(s.size());
    out_.append(s.data(), s.size());
  }

  void Raw(std::string_view s) { out_.append(s.data(), s.size()); }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class Decoder {
 public:
  explicit Decoder(std::string_view in) : in_(in) {}

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<std::uint8_t>(in_[pos_++]);
  }

  std::uint32_t U32() {
    if (!Need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(in_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t U64() {
    if (!Need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(in_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int64_t I64() {
    std::uint64_t u = U64();
    std::int64_t v;
    std::memcpy(&v, &u, sizeof(v));
    return v;
  }

  std::string Str() {
    std::uint64_t len = U64();
    if (!ok_ || len > remaining()) {
      ok_ = false;
      return std::string();
    }
    return Bytes(static_cast<std::size_t>(len));
  }

  std::string Bytes(std::size_t n) {
    if (!Need(n)) return std::string();
    std::string s(in_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// Guards element-count loops: a claimed count whose elements (at
  /// `min_elem_bytes` apiece, floored at 1) cannot fit in the remaining
  /// input is a lie, so fail fast instead of looping.
  bool CheckCount(std::uint64_t count, std::size_t min_elem_bytes = 1) {
    if (min_elem_bytes == 0) min_elem_bytes = 1;
    if (count > remaining() / min_elem_bytes + 1) ok_ = false;
    return ok_;
  }

  std::size_t remaining() const { return in_.size() - pos_; }
  bool AtEnd() const { return pos_ == in_.size(); }
  bool ok() const { return ok_; }
  void MarkBad() { ok_ = false; }

 private:
  bool Need(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace vqdr::wire

#endif  // VQDR_BASE_WIRE_H_
