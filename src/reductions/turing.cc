#include "reductions/turing.h"

#include <algorithm>

#include "base/check.h"

namespace vqdr {

namespace {

// Tape symbols and head markers are domain constants, kept disjoint from
// order-domain values by a large offset.
constexpr std::int64_t kSymbolBase = 1'000'000;
constexpr std::int64_t kHeadBase = 2'000'000;

Value SymbolValue(char c) {
  return Value(kSymbolBase + static_cast<unsigned char>(c));
}

Value HeadValue(int state, char c) {
  return Value(kHeadBase + state * 256 + static_cast<unsigned char>(c));
}

bool IsSymbolValue(Value v) {
  return v.id >= kSymbolBase && v.id < kHeadBase;
}
bool IsHeadValue(Value v) { return v.id >= kHeadBase; }

char SymbolChar(Value v) {
  return static_cast<char>((v.id - kSymbolBase) & 0xff);
}
int HeadState(Value v) {
  return static_cast<int>((v.id - kHeadBase) / 256);
}
char HeadChar(Value v) {
  return static_cast<char>((v.id - kHeadBase) % 256);
}

}  // namespace

std::optional<SimpleTm::Transition> SimpleTm::Delta(int state,
                                                    char read) const {
  auto it = delta_.find({state, read});
  if (it == delta_.end()) return std::nullopt;
  return it->second;
}

StatusOr<std::vector<SimpleTm::Config>> SimpleTm::Run(const std::string& input,
                                                      int max_steps,
                                                      int max_tape) const {
  std::vector<Config> configs;
  Config current;
  current.state = start_state_;
  current.head = 0;
  current.tape = input;
  if (current.tape.empty()) current.tape.push_back(blank_);
  configs.push_back(current);

  for (int step = 0; step < max_steps; ++step) {
    if (IsHalting(current.state)) return configs;
    char read = current.tape[current.head];
    std::optional<Transition> t = Delta(current.state, read);
    if (!t.has_value()) {
      return Status::Error("machine hangs: no transition for state " +
                           std::to_string(current.state) + " reading '" +
                           std::string(1, read) + "'");
    }
    current.tape[current.head] = t->write;
    current.state = t->next_state;
    current.head += t->move;
    if (current.head < 0) {
      return Status::Error("head moved off the left end of the tape");
    }
    if (current.head >= static_cast<int>(current.tape.size())) {
      if (static_cast<int>(current.tape.size()) >= max_tape) {
        return Status::Error("tape budget exceeded");
      }
      current.tape.push_back(blank_);
    }
    configs.push_back(current);
  }
  if (IsHalting(current.state)) return configs;
  return Status::Error("step budget exceeded before halting");
}

SimpleTm ComplementTm() {
  // State 0: scan right, flipping bits; halt (state 1) on blank.
  SimpleTm tm(/*start_state=*/0, /*halt_states=*/{1});
  tm.AddTransition(0, '0', {0, '1', +1});
  tm.AddTransition(0, '1', {0, '0', +1});
  tm.AddTransition(0, '_', {1, '_', 0});
  return tm;
}

SimpleTm IdentityTm() {
  SimpleTm tm(/*start_state=*/0, /*halt_states=*/{0});
  return tm;
}

std::string EncodeGraph(const Relation& edges,
                        const std::vector<Value>& ranked) {
  VQDR_CHECK_EQ(edges.arity(), 2);
  std::map<Value, int> rank;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    rank[ranked[i]] = static_cast<int>(i);
  }
  std::size_t n = ranked.size();
  std::string enc(n * n, '0');
  for (const Tuple& e : edges.tuples()) {
    auto i = rank.find(e[0]);
    auto j = rank.find(e[1]);
    VQDR_CHECK(i != rank.end() && j != rank.end())
        << "edge endpoint missing from ranking";
    enc[i->second * n + j->second] = '1';
  }
  return enc;
}

Relation DecodeGraph(const std::string& enc,
                     const std::vector<Value>& ranked) {
  std::size_t n = ranked.size();
  VQDR_CHECK_EQ(enc.size(), n * n);
  Relation edges(2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (enc[i * n + j] == '1') {
        edges.Insert(Tuple{ranked[i], ranked[j]});
      }
    }
  }
  return edges;
}

Schema TuringSchema() {
  return Schema{{"R1", 2}, {"R2", 2}, {"Le", 2}, {"T", 3}};
}

StatusOr<Instance> BuildComputationInstance(const SimpleTm& tm,
                                            const Relation& input_graph,
                                            int extra_elements) {
  // Ranked domain: adom(R1) first (sorted), then padding elements.
  std::set<Value> adom_set;
  input_graph.CollectActiveDomain(adom_set);
  std::vector<Value> ranked(adom_set.begin(), adom_set.end());
  std::size_t n0 = ranked.size();

  std::string input = EncodeGraph(input_graph, ranked);
  StatusOr<std::vector<SimpleTm::Config>> run =
      tm.Run(input, /*max_steps=*/static_cast<int>(4 * n0 * n0 + 64),
             /*max_tape=*/static_cast<int>(4 * n0 * n0 + 64));
  if (!run.ok()) return run.status();
  const std::vector<SimpleTm::Config>& configs = run.value();

  std::size_t tape_len = 0;
  for (const SimpleTm::Config& c : configs) {
    tape_len = std::max(tape_len, c.tape.size());
  }
  std::size_t needed = std::max(configs.size(), std::max(tape_len, n0));
  if (extra_elements >= 0) {
    if (n0 + extra_elements < needed) {
      return Status::Error("extra_elements too small for the computation");
    }
    needed = n0 + extra_elements;
  }
  // Padding values above every graph value.
  std::int64_t pad = ranked.empty() ? 1 : ranked.back().id + 1;
  while (ranked.size() < needed) ranked.push_back(Value(pad++));

  Instance d(TuringSchema());
  d.Set("R1", input_graph);

  Relation le(2);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    for (std::size_t j = i; j < ranked.size(); ++j) {
      le.Insert(Tuple{ranked[i], ranked[j]});
    }
  }
  d.Set("Le", le);

  Relation trace(3);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const SimpleTm::Config& c = configs[i];
    for (std::size_t j = 0; j < ranked.size(); ++j) {
      char ch = j < c.tape.size() ? c.tape[j] : tm.blank();
      Value cell = (static_cast<int>(j) == c.head) ? HeadValue(c.state, ch)
                                                   : SymbolValue(ch);
      trace.Insert(Tuple{ranked[i], ranked[j], cell});
    }
  }
  d.Set("T", trace);

  // Output: the final tape's first n0² cells decode to R2.
  const SimpleTm::Config& last = configs.back();
  std::string out = last.tape;
  out.resize(n0 * n0, tm.blank());
  d.Set("R2", DecodeGraph(out.substr(0, n0 * n0),
                          std::vector<Value>(ranked.begin(),
                                             ranked.begin() + n0)));
  return d;
}

bool VerifyComputationInstance(const SimpleTm& tm, const Instance& d) {
  const Relation& le = d.Get("Le");
  const Relation& r1 = d.Get("R1");
  const Relation& trace = d.Get("T");

  // -- Le is a linear order on its domain.
  std::set<Value> order_dom_set;
  le.CollectActiveDomain(order_dom_set);
  for (Value v : order_dom_set) {
    if (IsSymbolValue(v) || IsHeadValue(v)) return false;
    if (!le.Contains(Tuple{v, v})) return false;  // reflexive
  }
  std::vector<Value> order_dom(order_dom_set.begin(), order_dom_set.end());
  for (Value a : order_dom) {
    for (Value b : order_dom) {
      bool ab = le.Contains(Tuple{a, b});
      bool ba = le.Contains(Tuple{b, a});
      if (!ab && !ba) return false;                  // total
      if (ab && ba && a != b) return false;          // antisymmetric
      for (Value c : order_dom) {
        if (ab && le.Contains(Tuple{b, c}) && !le.Contains(Tuple{a, c})) {
          return false;  // transitive
        }
      }
    }
  }
  // Ranked order.
  std::vector<Value> ranked = order_dom;
  std::sort(ranked.begin(), ranked.end(), [&](Value a, Value b) {
    return a != b && le.Contains(Tuple{a, b});
  });

  // -- adom(R1) is an initial segment of the order.
  std::set<Value> graph_adom;
  r1.CollectActiveDomain(graph_adom);
  std::size_t n0 = graph_adom.size();
  if (n0 > ranked.size()) return false;
  for (std::size_t i = 0; i < n0; ++i) {
    if (graph_adom.count(ranked[i]) == 0) return false;
  }

  // -- T decodes to a sequence of configurations.
  std::map<Value, int> rank;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    rank[ranked[i]] = static_cast<int>(i);
  }
  std::size_t n = ranked.size();
  // grid[i][j]: the cell value, if present.
  std::vector<std::vector<std::optional<Value>>> grid(
      n, std::vector<std::optional<Value>>(n));
  for (const Tuple& t : trace.tuples()) {
    auto i = rank.find(t[0]);
    auto j = rank.find(t[1]);
    if (i == rank.end() || j == rank.end()) return false;
    if (!IsSymbolValue(t[2]) && !IsHeadValue(t[2])) return false;
    if (grid[i->second][j->second].has_value()) return false;  // ambiguous
    grid[i->second][j->second] = t[2];
  }

  // Rows 0..m are fully populated configurations; rows past m must be
  // empty (the computation halted at row m).
  std::vector<SimpleTm::Config> configs;
  std::size_t row = 0;
  for (; row < n; ++row) {
    bool any = false, all = true;
    for (std::size_t j = 0; j < n; ++j) {
      if (grid[row][j].has_value()) {
        any = true;
      } else {
        all = false;
      }
    }
    if (!any) break;
    if (!all) return false;
    SimpleTm::Config c;
    c.head = -1;
    c.tape.resize(n, tm.blank());
    for (std::size_t j = 0; j < n; ++j) {
      Value cell = *grid[row][j];
      if (IsHeadValue(cell)) {
        if (c.head != -1) return false;  // two heads
        c.head = static_cast<int>(j);
        c.state = HeadState(cell);
        c.tape[j] = HeadChar(cell);
      } else {
        c.tape[j] = SymbolChar(cell);
      }
    }
    if (c.head == -1) return false;  // no head
    configs.push_back(std::move(c));
  }
  for (std::size_t r = row; r < n; ++r) {
    for (std::size_t j = 0; j < n; ++j) {
      if (grid[r][j].has_value()) return false;  // gap in the trace
    }
  }
  if (configs.empty()) return false;

  // -- Initial configuration: enc(R1) padded with blanks, head at cell 0,
  // start state.
  std::string enc =
      EncodeGraph(r1, std::vector<Value>(ranked.begin(), ranked.begin() + n0));
  {
    const SimpleTm::Config& c0 = configs.front();
    if (c0.state != tm.start_state() || c0.head != 0) return false;
    std::string expected = enc;
    expected.resize(n, tm.blank());
    if (expected.empty()) return false;
    if (c0.tape != expected) return false;
  }

  // -- Each successive configuration follows by one transition; the last
  // one is halting.
  for (std::size_t i = 0; i + 1 < configs.size(); ++i) {
    const SimpleTm::Config& cur = configs[i];
    const SimpleTm::Config& next = configs[i + 1];
    if (tm.IsHalting(cur.state)) return false;  // halted early but continued
    std::optional<SimpleTm::Transition> t =
        tm.Delta(cur.state, cur.tape[cur.head]);
    if (!t.has_value()) return false;
    SimpleTm::Config expect = cur;
    expect.tape[cur.head] = t->write;
    expect.state = t->next_state;
    expect.head = cur.head + t->move;
    if (expect.head < 0 || expect.head >= static_cast<int>(n)) return false;
    if (next.state != expect.state || next.head != expect.head ||
        next.tape != expect.tape) {
      return false;
    }
  }
  if (!tm.IsHalting(configs.back().state)) return false;

  // -- R2 decodes from the final tape's first n0² cells.
  std::string out = configs.back().tape.substr(0, n0 * n0);
  if (out.size() < n0 * n0) return false;
  Relation expected_r2 = DecodeGraph(
      out, std::vector<Value>(ranked.begin(), ranked.begin() + n0));
  return d.Get("R2") == expected_r2;
}

ViewSet TuringViews(const SimpleTm& tm) {
  ViewSet views;
  views.Add("VR1",
            Query::FromFunction(
                2,
                [tm](const Instance& d) {
                  if (VerifyComputationInstance(tm, d)) return d.Get("R1");
                  return Relation(2);
                },
                "phi_M & R1(x,y)"));
  return views;
}

Query TuringQuery(const SimpleTm& tm) {
  return Query::FromFunction(
      2,
      [tm](const Instance& d) {
        if (VerifyComputationInstance(tm, d)) return d.Get("R2");
        return Relation(2);
      },
      "phi_M & R2(x,y)");
}

Relation ComplementWithinAdom(const Relation& edges) {
  std::set<Value> adom;
  edges.CollectActiveDomain(adom);
  Relation result(2);
  for (Value a : adom) {
    for (Value b : adom) {
      Tuple e{a, b};
      if (!edges.Contains(e)) result.Insert(e);
    }
  }
  return result;
}

}  // namespace vqdr
