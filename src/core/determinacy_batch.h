#ifndef VQDR_CORE_DETERMINACY_BATCH_H_
#define VQDR_CORE_DETERMINACY_BATCH_H_

#include <vector>

#include "core/determinacy.h"
#include "cq/conjunctive_query.h"
#include "views/view_set.h"

namespace vqdr {

/// One (V, Q) pair submitted to the batch decider.
struct DeterminacyBatchItem {
  ViewSet views;
  ConjunctiveQuery query{"Q", {}};
};

/// Decides unrestricted determinacy for every item, concurrently.
///
/// results[i] is exactly DecideUnrestrictedDeterminacy(items[i].views,
/// items[i].query) — each decision is a pure function of its item, so the
/// output is independent of scheduling and of `threads`. threads follows the
/// usual convention: 1 = a plain serial loop, 0 = par::DefaultThreads(),
/// N > 1 = one pool task per item. Progress is reported per completed item
/// on the "determinacy.batch" phase; the batch always processes every item
/// (a partially-decided batch has no sound meaning, so progress callbacks
/// cannot cancel it mid-flight).
std::vector<UnrestrictedDeterminacyResult> DecideUnrestrictedDeterminacyBatch(
    const std::vector<DeterminacyBatchItem>& items, int threads = 0);

}  // namespace vqdr

#endif  // VQDR_CORE_DETERMINACY_BATCH_H_
