file(REMOVE_RECURSE
  "libvqdr_fo.a"
)
