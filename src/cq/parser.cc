#include "cq/parser.h"

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "base/string_util.h"

namespace vqdr {

namespace {

enum class TokenKind {
  kIdentifier,  // variable / predicate / keyword
  kConstant,    // 'quoted'
  kLparen,
  kRparen,
  kComma,
  kSemicolon,
  kTurnstile,  // :-
  kEquals,
  kNotEquals,
  kPipe,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  // The rule grammar itself is non-recursive, but an explicit nesting cap at
  // the lexer keeps hostile "((((..." input bounded by policy rather than by
  // whatever the downstream parser happens to tolerate (mirrors the FO
  // parser's recursion-depth limit).
  static constexpr int kMaxNesting = 256;

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    int depth = 0;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kIdentifier,
                          std::string(text_.substr(start, pos_ - start))});
        continue;
      }
      if (c == '\'') {
        std::size_t start = ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
        if (pos_ >= text_.size()) {
          return Status::Error("unterminated quoted constant");
        }
        tokens.push_back({TokenKind::kConstant,
                          std::string(text_.substr(start, pos_ - start))});
        ++pos_;
        continue;
      }
      switch (c) {
        case '(':
          if (++depth > kMaxNesting) {
            return Status::InvalidArgument(
                "parenthesis nesting exceeds the depth limit (" +
                std::to_string(kMaxNesting) + ")");
          }
          tokens.push_back({TokenKind::kLparen, "("});
          ++pos_;
          break;
        case ')':
          if (depth > 0) --depth;
          tokens.push_back({TokenKind::kRparen, ")"});
          ++pos_;
          break;
        case ',':
          tokens.push_back({TokenKind::kComma, ","});
          ++pos_;
          break;
        case ';':
          tokens.push_back({TokenKind::kSemicolon, ";"});
          ++pos_;
          break;
        case '|':
          tokens.push_back({TokenKind::kPipe, "|"});
          ++pos_;
          break;
        case '=':
          tokens.push_back({TokenKind::kEquals, "="});
          ++pos_;
          break;
        case '!':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            tokens.push_back({TokenKind::kNotEquals, "!="});
            pos_ += 2;
          } else {
            return Status::Error("stray '!' in query text");
          }
          break;
        case ':':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
            tokens.push_back({TokenKind::kTurnstile, ":-"});
            pos_ += 2;
          } else {
            return Status::Error("stray ':' in query text");
          }
          break;
        default:
          return Status::Error(std::string("unexpected character '") + c +
                               "' in query text");
      }
    }
    tokens.push_back({TokenKind::kEnd, ""});
    return tokens;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, NamePool& pool)
      : tokens_(std::move(tokens)), pool_(pool) {}

  StatusOr<ConjunctiveQuery> ParseRule() {
    StatusOr<ConjunctiveQuery> q = ParseOneRule();
    if (!q.ok()) return q;
    if (Peek().kind != TokenKind::kEnd) {
      return Status::Error("trailing input after rule");
    }
    return q;
  }

  StatusOr<UnionQuery> ParseUnion() {
    UnionQuery result;
    while (true) {
      StatusOr<ConjunctiveQuery> q = ParseOneRule();
      if (!q.ok()) return q.status();
      if (!result.empty() &&
          (result.head_name() != q->head_name() ||
           result.head_arity() != q->head_arity())) {
        return Status::Error("UCQ disjuncts must share head name and arity");
      }
      result.AddDisjunct(std::move(q).value());
      if (Peek().kind == TokenKind::kPipe) {
        Advance();
        continue;
      }
      break;
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Status::Error("trailing input after UCQ");
    }
    return result;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Consume(TokenKind kind) {
    if (Peek().kind == kind) {
      Advance();
      return true;
    }
    return false;
  }

  // Parses a term: identifier (variable) or quoted constant.
  StatusOr<Term> ParseTerm() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kIdentifier) {
      Advance();
      return Term::Var(t.text);
    }
    if (t.kind == TokenKind::kConstant) {
      Advance();
      return Term::Const(pool_.Intern(t.text));
    }
    return Status::Error("expected term, got '" + t.text + "'");
  }

  // Parses "Name(t1, …, tk)" with Name already consumed.
  StatusOr<std::vector<Term>> ParseArgList() {
    if (!Consume(TokenKind::kLparen)) {
      return Status::Error("expected '('");
    }
    std::vector<Term> args;
    if (Consume(TokenKind::kRparen)) return args;
    while (true) {
      StatusOr<Term> term = ParseTerm();
      if (!term.ok()) return term.status();
      args.push_back(std::move(term).value());
      if (Consume(TokenKind::kComma)) continue;
      if (Consume(TokenKind::kRparen)) return args;
      return Status::Error("expected ',' or ')' in argument list");
    }
  }

  StatusOr<ConjunctiveQuery> ParseOneRule() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::Error("expected head predicate name");
    }
    std::string head_name = Advance().text;
    StatusOr<std::vector<Term>> head = ParseArgList();
    if (!head.ok()) return head.status();
    ConjunctiveQuery q(head_name, std::move(head).value());
    if (!Consume(TokenKind::kTurnstile)) {
      return Status::Error("expected ':-' after head");
    }
    // Body: comma-separated literals.
    while (true) {
      Status literal = ParseLiteral(q);
      if (!literal.ok()) return literal;
      if (Consume(TokenKind::kComma)) continue;
      break;
    }
    return q;
  }

  // Parses one body literal into `q`: atom, "not" atom, "true", s = t,
  // s != t. Returns OK status on success.
  Status ParseLiteral(ConjunctiveQuery& q) {
    const Token& t = Peek();
    if (t.kind == TokenKind::kIdentifier && t.text == "true") {
      Advance();
      return Status::Ok();
    }
    if (t.kind == TokenKind::kIdentifier && t.text == "not") {
      Advance();
      if (Peek().kind != TokenKind::kIdentifier) {
        return Status::Error("expected predicate after 'not'");
      }
      std::string pred = Advance().text;
      StatusOr<std::vector<Term>> args = ParseArgList();
      if (!args.ok()) return args.status();
      q.AddNegatedAtom(Atom(pred, std::move(args).value()));
      return Status::Ok();
    }
    // Either an atom "P(...)" or a comparison "term (=|!=) term".
    if (t.kind == TokenKind::kIdentifier &&
        tokens_[pos_ + 1].kind == TokenKind::kLparen) {
      std::string pred = Advance().text;
      StatusOr<std::vector<Term>> args = ParseArgList();
      if (!args.ok()) return args.status();
      q.AddAtom(Atom(pred, std::move(args).value()));
      return Status::Ok();
    }
    StatusOr<Term> lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    if (Consume(TokenKind::kEquals)) {
      StatusOr<Term> rhs = ParseTerm();
      if (!rhs.ok()) return rhs.status();
      q.AddEquality(std::move(lhs).value(), std::move(rhs).value());
      return Status::Ok();
    }
    if (Consume(TokenKind::kNotEquals)) {
      StatusOr<Term> rhs = ParseTerm();
      if (!rhs.ok()) return rhs.status();
      q.AddDisequality(std::move(lhs).value(), std::move(rhs).value());
      return Status::Ok();
    }
    return Status::Error("expected '=' or '!=' after term");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  NamePool& pool_;
};

std::string TermToString(const Term& t, const NamePool& pool) {
  if (t.is_var()) return t.var();
  return "'" + pool.NameOf(t.constant()) + "'";
}

std::string AtomToString(const Atom& a, const NamePool& pool) {
  std::ostringstream out;
  out << a.predicate << "(";
  for (std::size_t i = 0; i < a.args.size(); ++i) {
    if (i > 0) out << ", ";
    out << TermToString(a.args[i], pool);
  }
  out << ")";
  return out.str();
}

}  // namespace

StatusOr<ConjunctiveQuery> ParseCq(std::string_view text, NamePool& pool) {
  Lexer lexer(text);
  StatusOr<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), pool);
  return parser.ParseRule();
}

StatusOr<UnionQuery> ParseUcq(std::string_view text, NamePool& pool) {
  Lexer lexer(text);
  StatusOr<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), pool);
  return parser.ParseUnion();
}

StatusOr<Instance> ParseInstance(std::string_view text, const Schema& schema,
                                 NamePool& pool) {
  Lexer lexer(text);
  StatusOr<std::vector<Token>> tokens_or = lexer.Tokenize();
  if (!tokens_or.ok()) return tokens_or.status();
  const std::vector<Token>& tokens = tokens_or.value();

  Instance instance(schema);
  std::size_t pos = 0;
  while (tokens[pos].kind != TokenKind::kEnd) {
    // Skip separators.
    if (tokens[pos].kind == TokenKind::kComma ||
        tokens[pos].kind == TokenKind::kSemicolon) {
      ++pos;
      continue;
    }
    if (tokens[pos].kind != TokenKind::kIdentifier) {
      return Status::Error("expected fact predicate name");
    }
    std::string pred = tokens[pos++].text;
    auto arity = schema.ArityOf(pred);
    if (!arity.has_value()) {
      return Status::Error("fact over relation not in schema: " + pred);
    }
    if (tokens[pos].kind != TokenKind::kLparen) {
      return Status::Error("expected '(' after fact predicate");
    }
    ++pos;
    Tuple fact;
    if (tokens[pos].kind == TokenKind::kRparen) {
      ++pos;
    } else {
      while (true) {
        if (tokens[pos].kind != TokenKind::kIdentifier &&
            tokens[pos].kind != TokenKind::kConstant) {
          return Status::Error("expected constant in fact");
        }
        fact.push_back(pool.Intern(tokens[pos++].text));
        if (tokens[pos].kind == TokenKind::kComma) {
          ++pos;
          continue;
        }
        if (tokens[pos].kind == TokenKind::kRparen) {
          ++pos;
          break;
        }
        return Status::Error("expected ',' or ')' in fact");
      }
    }
    if (static_cast<int>(fact.size()) != *arity) {
      return Status::Error("fact arity mismatch for " + pred);
    }
    instance.AddFact(pred, fact);
  }
  return instance;
}

std::string CqToString(const ConjunctiveQuery& q, const NamePool& pool) {
  std::ostringstream out;
  out << q.head_name() << "(";
  for (std::size_t i = 0; i < q.head_terms().size(); ++i) {
    if (i > 0) out << ", ";
    out << TermToString(q.head_terms()[i], pool);
  }
  out << ") :- ";
  bool first = true;
  auto sep = [&]() {
    if (!first) out << ", ";
    first = false;
  };
  for (const Atom& a : q.atoms()) {
    sep();
    out << AtomToString(a, pool);
  }
  for (const Atom& a : q.negated_atoms()) {
    sep();
    out << "not " << AtomToString(a, pool);
  }
  for (const TermComparison& c : q.equalities()) {
    sep();
    out << TermToString(c.lhs, pool) << " = " << TermToString(c.rhs, pool);
  }
  for (const TermComparison& c : q.disequalities()) {
    sep();
    out << TermToString(c.lhs, pool) << " != " << TermToString(c.rhs, pool);
  }
  if (first) out << "true";
  return out.str();
}

std::string UcqToString(const UnionQuery& q, const NamePool& pool) {
  std::ostringstream out;
  for (std::size_t i = 0; i < q.disjuncts().size(); ++i) {
    if (i > 0) out << " | ";
    out << CqToString(q.disjuncts()[i], pool);
  }
  return out.str();
}

namespace {

// Whether `name` lexes back as a single identifier token (bare constant).
bool IdentifierShaped(const std::string& name) {
  if (name.empty()) return false;
  char c0 = name[0];
  if (!std::isalpha(static_cast<unsigned char>(c0)) && c0 != '_') return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

}  // namespace

std::string InstanceToString(const Instance& instance, const NamePool& pool) {
  std::ostringstream out;
  for (const RelationDecl& d : instance.schema().decls()) {
    const Relation& rel = instance.Get(d.name);
    if (rel.tuples().empty()) continue;
    out << "  ";
    bool first = true;
    for (const Tuple& t : rel.tuples()) {
      if (!first) out << ", ";
      first = false;
      out << d.name << "(";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out << ", ";
        // Bare when it lexes as one identifier, quoted otherwise; the quoted
        // form has no escape, which is safe because no parser-reachable name
        // contains a quote (the lexer stops a constant at the first ').
        std::string name = pool.NameOf(t[i]);
        if (IdentifierShaped(name)) {
          out << name;
        } else {
          out << "'" << name << "'";
        }
      }
      out << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace vqdr
