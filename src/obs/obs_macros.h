// The macro seam of the observability layer. Deliberately NOT include-guarded:
// every inclusion first #undefs and then redefines the macros according to the
// current setting of VQDR_OBS_DISABLED, so a translation unit (typically a
// test) can flip the seam mid-file:
//
//   #define VQDR_OBS_DISABLED
//   #include "obs/obs_macros.h"   // macros are now no-ops
//   ...
//   #undef VQDR_OBS_DISABLED
//   #include "obs/obs_macros.h"   // macros are live again
//
// With VQDR_OBS_DISABLED defined the macros expand to ((void)0): no atomic
// traffic, no registry lookup, no clock reads — the zero-overhead escape
// hatch for builds that want the solver stack uninstrumented.
//
// The enabled expansions cache a registry reference in a function-local
// static, so each call site pays one registry lookup ever and one relaxed
// atomic add per hit.

#undef VQDR_COUNTER_INC
#undef VQDR_COUNTER_ADD
#undef VQDR_HISTOGRAM_RECORD
#undef VQDR_TRACE_SPAN
#undef VQDR_OBS_CONCAT_INNER
#undef VQDR_OBS_CONCAT

#define VQDR_OBS_CONCAT_INNER(a, b) a##b
#define VQDR_OBS_CONCAT(a, b) VQDR_OBS_CONCAT_INNER(a, b)

#if defined(VQDR_OBS_DISABLED)

#define VQDR_COUNTER_INC(name) ((void)0)
#define VQDR_COUNTER_ADD(name, n) ((void)0)
#define VQDR_HISTOGRAM_RECORD(name, value) ((void)0)
#define VQDR_TRACE_SPAN(...) ((void)0)

#else

#define VQDR_COUNTER_INC(name) VQDR_COUNTER_ADD(name, 1)

#define VQDR_COUNTER_ADD(name, n)                                       \
  do {                                                                  \
    static ::vqdr::obs::CounterSite vqdr_obs_counter_at_site =          \
        ::vqdr::obs::GetCounterSite(name);                              \
    vqdr_obs_counter_at_site.Add(static_cast<std::uint64_t>(n));        \
  } while (0)

#define VQDR_HISTOGRAM_RECORD(name, value)                              \
  do {                                                                  \
    static ::vqdr::obs::Histogram& vqdr_obs_histogram_at_site =         \
        ::vqdr::obs::GetHistogram(name);                                \
    vqdr_obs_histogram_at_site.Record(static_cast<std::uint64_t>(value)); \
  } while (0)

// VQDR_TRACE_SPAN("chase.level") or VQDR_TRACE_SPAN("chase.level", k):
// an RAII span covering the rest of the enclosing scope.
#define VQDR_TRACE_SPAN(...) \
  ::vqdr::obs::TraceSpan VQDR_OBS_CONCAT(vqdr_trace_span_, __LINE__)(__VA_ARGS__)

#endif  // VQDR_OBS_DISABLED
