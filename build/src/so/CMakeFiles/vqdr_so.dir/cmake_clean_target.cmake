file(REMOVE_RECURSE
  "libvqdr_so.a"
)
