#include "core/report.h"

#include <sstream>

#include "core/query_answering.h"
#include "core/rewriting.h"
#include "obs/context.h"
#include "obs/trace.h"

namespace vqdr {

std::string DeterminacyReport::Summary() const {
  std::ostringstream out;
  switch (verdict) {
    case DeterminacyVerdict::kDeterminedWithRewriting:
      out << "DETERMINED (unrestricted chase test): the views determine the "
             "query on all instances, finite ones included. Rewriting: "
          << (rewriting.has_value() ? rewriting->ToString() : "<none>")
          << ".";
      if (monotonicity_violation.has_value()) {
        out << " NOTE: Q_V is non-monotonic on the searched fragment, so no "
               "monotonic rewriting language suffices.";
      }
      break;
    case DeterminacyVerdict::kRefuted:
      out << "REFUTED: two instances with equal view images disagree on the "
             "query (finite determinacy fails, hence also unrestricted).";
      break;
    case DeterminacyVerdict::kOpenWithinBound:
      out << "OPEN within the search bound: not determined in the "
             "unrestricted sense, and no finite counterexample with up to "
             "the configured domain size"
          << (searches_exhaustive ? "" : " (search budget exhausted)")
          << ". For CQs this is exactly the open territory of the paper's "
             "Theorem 5.11.";
      break;
  }
  if (!guard::IsComplete(outcome)) {
    out << " [stopped: " << guard::OutcomeName(outcome) << "]";
  }
  if (!metrics.empty()) out << "\n[metrics] " << metrics.ToString();
  if (memo.any()) out << "\n[memo] " << memo.ToString();
  // Snapshot load/flush/skip/corrupt events are process-lifetime facts, not
  // per-battery deltas; surface them whenever any happened.
  memo::SnapshotActivity snapshot = memo::GlobalSnapshotActivity();
  if (snapshot.any()) out << "\n[memo] snapshot " << snapshot.ToString();
  return out.str();
}

namespace {

DeterminacyReport AnalyzeDeterminacyImpl(
    const ViewSet& views, const ConjunctiveQuery& q, const Schema& base,
    const DeterminacyAnalysisOptions& opts, obs::ExplainLog* log) {
  guard::Budget* budget =
      opts.budget != nullptr ? opts.budget : opts.search.budget;
  EnumerationOptions search_opts = opts.search;
  search_opts.budget = budget;
  search_opts.explain = log;

  DeterminacyReport report;
  report.unrestricted =
      DecideUnrestrictedDeterminacy(views, q, budget, {}, log);
  if (!guard::IsComplete(report.unrestricted.outcome)) {
    // The exact decision could not finish inside the budget: no fabricated
    // verdict. Everything the chase computed so far rides along in
    // report.unrestricted.
    report.verdict = DeterminacyVerdict::kOpenWithinBound;
    report.searches_exhaustive = false;
    report.outcome = report.unrestricted.outcome;
    return report;
  }

  if (report.unrestricted.determined) {
    report.verdict = DeterminacyVerdict::kDeterminedWithRewriting;
    CqRewritingResult rewriting = FindCqRewriting(views, q);
    if (rewriting.exists) report.rewriting = rewriting.rewriting;
    if (opts.probe_monotonicity) {
      MonotonicitySearchResult probe = SearchMonotonicityViolation(
          views, Query::FromCq(q), base, search_opts);
      if (probe.verdict == SearchVerdict::kCounterexampleFound) {
        report.monotonicity_violation = probe.violation;
      }
      if (probe.verdict == SearchVerdict::kBudgetExhausted) {
        report.searches_exhaustive = false;
        report.outcome = guard::MergeOutcome(report.outcome, probe.outcome);
      }
    }
    return report;
  }

  DeterminacySearchResult search = SearchDeterminacyCounterexample(
      views, Query::FromCq(q), base, search_opts);
  if (search.verdict == SearchVerdict::kCounterexampleFound) {
    report.verdict = DeterminacyVerdict::kRefuted;
    report.counterexample = search.counterexample;
    return report;
  }
  report.verdict = DeterminacyVerdict::kOpenWithinBound;
  report.searches_exhaustive =
      search.verdict == SearchVerdict::kNoneWithinBound;
  report.outcome = guard::MergeOutcome(report.outcome, search.outcome);
  return report;
}

}  // namespace

DeterminacyReport AnalyzeDeterminacy(const ViewSet& views,
                                     const ConjunctiveQuery& q,
                                     const Schema& base,
                                     const DeterminacyAnalysisOptions& opts) {
  // The whole battery is one in-flight operation: every sub-call (decision,
  // searches, probes) attributes to it in the live registry.
  obs::OpScope op(obs::OpKind::kAnalyze, "report.analyze",
                  opts.budget != nullptr ? opts.budget : opts.search.budget);
  // Attribute all counter/histogram movement during the battery to this
  // report (single-threaded analysis, so the delta is exactly ours).
  obs::MetricsSnapshot before = obs::SnapshotMetrics();
  memo::StatsSnapshot memo_before = memo::GlobalStats();
  // The provenance log lives in a local and is spliced into the report at
  // the end: the battery's sub-calls write through a stable pointer even
  // though the report object itself is move-assigned below.
  obs::ExplainLog log;
  obs::ExplainLog* log_ptr = opts.explain ? &log : nullptr;
  DeterminacyReport report;
  {
    VQDR_TRACE_SPAN("report.analyze");
    report = AnalyzeDeterminacyImpl(views, q, base, opts, log_ptr);
  }
  if (obs::Wants(log_ptr)) {
    obs::ExplainEvent closing;
    closing.kind = obs::ExplainKind::kDecision;
    closing.label = "report.verdict";
    switch (report.verdict) {
      case DeterminacyVerdict::kDeterminedWithRewriting:
        closing.detail = "determined (with rewriting)";
        break;
      case DeterminacyVerdict::kRefuted:
        closing.detail = "refuted";
        break;
      case DeterminacyVerdict::kOpenWithinBound:
        closing.detail = "open within bound";
        break;
    }
    closing.stats["searches_exhaustive"] = report.searches_exhaustive ? 1 : 0;
    log.Append(std::move(closing));
    report.explain = std::move(log);
  }
  report.metrics = obs::SnapshotDelta(before);
  report.memo = memo::GlobalStats().Delta(memo_before);
  return report;
}

InstanceDeterminacyResult DecideInstanceDeterminacy(
    const ViewSet& views, const Query& q, const Schema& base,
    const Instance& extent, int extra_values, std::uint64_t max_instances) {
  QueryAnsweringOptions opts;
  opts.extra_values = extra_values;
  opts.max_instances = max_instances;
  PreimageAgreement agreement =
      AnswerViaAllPreimages(views, q, base, extent, opts);

  InstanceDeterminacyResult result;
  result.any_preimage = agreement.any_preimage;
  result.determined_on_instance = agreement.all_agree;
  result.exhaustive = agreement.exhaustive;
  result.answer = agreement.answer;
  result.disagreement = agreement.disagreement;
  return result;
}

}  // namespace vqdr
