#ifndef VQDR_GUARD_BUDGET_H_
#define VQDR_GUARD_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "guard/outcome.h"

// Resource governance for the long-running engines. A caller builds one
// Budget per governed call (or shares one across a batch so the whole batch
// lives inside one envelope) and passes its address through the engine's
// options; the engine checkpoints at step granularity and stops cleanly —
// returning everything computed so far, never a fabricated verdict — when a
// limit trips:
//
//   guard::Budget budget(guard::BudgetSpec{.wall_ms = 2000});
//   EnumerationOptions opts;
//   opts.budget = &budget;
//   DeterminacySearchResult r = SearchDeterminacyCounterexample(v, q, s, opts);
//   if (!guard::IsComplete(r.outcome)) { /* partial prefix, honest stop */ }
//
// Budgets are thread-safe: the parallel engines checkpoint the same Budget
// from every worker. Once a limit trips the stop reason is sticky; every
// later Checkpoint returns it immediately.
//
// Budgets compose: a Budget constructed with a parent charges every step and
// atom against the parent as well, so a shared envelope (one batch, one
// tenant, one service request) bounds the sum of its children while each
// child keeps its own tighter per-item limits. The tightest limit wins —
// whichever budget trips first stops the work — and a parent's sticky stop
// propagates into the child at its next checkpoint (the reverse never
// happens: one exhausted child does not stop its siblings).
//
// Under -DVQDR_GUARD=OFF (VQDR_GUARD_DISABLED) the class collapses to an
// inline always-kComplete stub: the engine signatures keep compiling, the
// checkpoints cost nothing, and budgets are documented as ignored.

namespace vqdr::guard {

/// Observer invoked (when installed) with the step count of every
/// Budget::Checkpoint. This is how the obs layer, which sits ABOVE guard in
/// the link order, hears engine liveness without guard depending on it:
/// obs/context.cc installs a hook that turns checkpoints into per-operation
/// heartbeats for the registry and the stall watchdog. Install-once at
/// startup; the probe is a single relaxed load when no observer is set.
using CheckpointObserver = void (*)(std::uint64_t steps);

/// Declarative limits for one governed call. Zero / negative fields mean
/// "unlimited"; a default BudgetSpec imposes nothing.
struct BudgetSpec {
  /// Wall-clock allowance in milliseconds, armed when the Budget is
  /// constructed. < 0 = no deadline.
  std::int64_t wall_ms = -1;

  /// Maximum work steps. A step is the engine's natural unit: an instance
  /// examined (searches), an identification pattern checked (containment),
  /// a view tuple chased (chase/determinacy), an item decided (batch).
  /// 0 = unlimited.
  std::uint64_t max_steps = 0;

  /// Maximum materialized atoms across the call — the memory proxy for the
  /// chase, whose instances are the only unbounded allocations in the
  /// library. 0 = unlimited.
  std::uint64_t max_atoms = 0;

  /// Maximum chase-chain levels to build. < 0 = unlimited.
  int max_chase_levels = -1;
};

#ifndef VQDR_GUARD_DISABLED

/// Installs (or, with nullptr, removes) the process-wide checkpoint
/// observer. Not for per-call use: the slot is a single atomic pointer.
void SetCheckpointObserver(CheckpointObserver observer);

class Budget {
 public:
  /// An unlimited budget (still cancellable).
  Budget() : Budget(BudgetSpec{}) {}

  /// Arms the wall-clock deadline now. `parent`, when non-null, is a shared
  /// envelope also charged by every Checkpoint/NoteAtoms on this budget; it
  /// must outlive this budget. A stopped parent stops this budget too.
  explicit Budget(const BudgetSpec& spec, Budget* parent = nullptr);

  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Records `steps` completed work units and re-checks the limits. The
  /// deadline is checked amortized (once per kClockStride recorded steps),
  /// so a checkpointing loop pays a relaxed fetch_add per call and a clock
  /// read every few dozen steps. Returns kComplete while within budget;
  /// otherwise the sticky stop reason.
  Outcome Checkpoint(std::uint64_t steps = 1);

  /// Records `atoms` newly materialized atoms against max_atoms.
  Outcome NoteAtoms(std::uint64_t atoms);

  /// External cancellation; sticky like any other stop.
  void Cancel() { Trip(Outcome::kCancelled); }

  /// Records a captured engine-internal failure (task exception, allocation
  /// failure). kInternalError outranks every other stop reason.
  void MarkInternalError() { Trip(Outcome::kInternalError); }

  bool Stopped() const {
    return stop_.load(std::memory_order_relaxed) != 0;
  }

  /// The sticky stop reason; kComplete while the budget still allows work.
  Outcome stop_reason() const {
    return static_cast<Outcome>(stop_.load(std::memory_order_relaxed));
  }

  std::uint64_t steps_used() const {
    return steps_.load(std::memory_order_relaxed);
  }

  std::uint64_t atoms_used() const {
    return atoms_.load(std::memory_order_relaxed);
  }

  /// Whether the spec admits building chase level `level` (1-based).
  bool AllowsChaseLevel(int level) const {
    return spec_.max_chase_levels < 0 || level <= spec_.max_chase_levels;
  }

  const BudgetSpec& spec() const { return spec_; }

  /// The shared envelope this budget charges, or nullptr.
  Budget* parent() const { return parent_; }

  /// Steps between amortized deadline checks.
  static constexpr std::uint64_t kClockStride = 64;

 private:
  /// Latches the first stop reason (kInternalError may still overwrite a
  /// softer reason); returns the latched value.
  Outcome Trip(Outcome o);

  Budget* parent_ = nullptr;
  BudgetSpec spec_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> atoms_{0};
  std::atomic<std::uint64_t> until_clock_check_{kClockStride};
  std::atomic<int> stop_{0};
};

#else  // VQDR_GUARD_DISABLED

inline void SetCheckpointObserver(CheckpointObserver) {}

/// Stub: governance compiled out. Budgets are accepted and ignored.
class Budget {
 public:
  Budget() = default;
  explicit Budget(const BudgetSpec& spec, Budget* parent = nullptr)
      : spec_(spec) {
    (void)parent;
  }

  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  Outcome Checkpoint(std::uint64_t = 1) { return Outcome::kComplete; }
  Outcome NoteAtoms(std::uint64_t) { return Outcome::kComplete; }
  void Cancel() {}
  void MarkInternalError() {}
  bool Stopped() const { return false; }
  Outcome stop_reason() const { return Outcome::kComplete; }
  std::uint64_t steps_used() const { return 0; }
  std::uint64_t atoms_used() const { return 0; }
  bool AllowsChaseLevel(int) const { return true; }
  const BudgetSpec& spec() const { return spec_; }
  Budget* parent() const { return nullptr; }

  static constexpr std::uint64_t kClockStride = 64;

 private:
  BudgetSpec spec_;
};

#endif  // VQDR_GUARD_DISABLED

/// Null-tolerant checkpoint for engine hot paths: no budget, no cost beyond
/// the null test.
inline Outcome Check(Budget* budget, std::uint64_t steps = 1) {
  return budget == nullptr ? Outcome::kComplete : budget->Checkpoint(steps);
}

/// Null-tolerant atom accounting.
inline Outcome CheckAtoms(Budget* budget, std::uint64_t atoms) {
  return budget == nullptr ? Outcome::kComplete : budget->NoteAtoms(atoms);
}

/// Null-tolerant sticky-stop query.
inline Outcome StopReason(const Budget* budget) {
  return budget == nullptr ? Outcome::kComplete : budget->stop_reason();
}

}  // namespace vqdr::guard

#endif  // VQDR_GUARD_BUDGET_H_
