// Chaos battery for the service layer (svc/service.h + guard/fault.h):
// every injected fault must surface as a structured, Outcome-tagged
// response — a worker throw becomes ok=false/"internal", a cancellation
// becomes an ok CANCELLED prefix, an injected stall is detected by the obs
// watchdog whose cancel hook frees the admission slot. The worker pool and
// subsequent requests survive every scenario.

#include <gtest/gtest.h>

#include <string>

#include "guard/fault.h"
#include "guard/outcome.h"
#include "obs/watchdog.h"
#include "svc/proto.h"
#include "svc/service.h"

namespace vqdr::svc {
namespace {

// Enough chase work for several budget checkpoints.
constexpr const char* kJoinRequest =
    "{\"op\":\"determinacy\",\"schema\":\"R/2 S/2\","
    "\"views\":[\"V1(x,y) :- R(x,y)\",\"V2(x,y) :- S(x,y)\"],"
    "\"query\":\"Q(x,z) :- R(x,y), S(y,z)\"}";

Request MustParse(const std::string& line) {
  StatusOr<Request> req = ParseRequest(line);
  EXPECT_TRUE(req.ok()) << req.status().message();
  return std::move(req).value();
}

class SvcChaosTest : public ::testing::Test {
 protected:
  void TearDown() override {
    guard::DisarmFaults();
    obs::StopWatchdog();
  }
};

TEST_F(SvcChaosTest, InjectedTaskThrowBecomesStructuredInternal) {
  Service service;
  guard::ArmFault(guard::FaultKind::kTaskThrow, "svc.request", 1);
  Response r = service.Handle(MustParse(kJoinRequest));
  EXPECT_TRUE(guard::FaultFired());
  guard::DisarmFaults();

  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "internal");
  ASSERT_TRUE(r.has_outcome);
  EXPECT_EQ(r.outcome, guard::Outcome::kInternalError);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.internal_errors, 1u);
  EXPECT_EQ(stats.completed, 1u);  // the request finished, structurally
  EXPECT_EQ(service.in_flight(), 0u);  // slot freed

  // The worker survived the throw: the next request is served normally.
  Response again = service.Handle(MustParse(kJoinRequest));
  EXPECT_TRUE(again.ok);
  EXPECT_EQ(again.outcome, guard::Outcome::kComplete);
}

TEST_F(SvcChaosTest, CancelAtStepDegradesToHonestPrefix) {
  Service service;
  guard::ArmFault(guard::FaultKind::kCancel, nullptr, 2);
  Response r = service.Handle(MustParse(kJoinRequest));
  EXPECT_TRUE(guard::FaultFired());
  guard::DisarmFaults();

  ASSERT_TRUE(r.ok);  // cancellation degrades, it does not fail
  ASSERT_TRUE(r.has_outcome);
  EXPECT_EQ(r.outcome, guard::Outcome::kCancelled);
  // Never a fabricated verdict on a cancelled run.
  EXPECT_EQ(r.result_json.find("\"determined\""), std::string::npos);
  EXPECT_EQ(service.stats().internal_errors, 0u);
}

TEST_F(SvcChaosTest, InjectedStallIsDetectedCancelledAndReported) {
  Service service;  // installs the stall-cancel hook
  ASSERT_TRUE(obs::StartWatchdog(/*stall_ms=*/100, /*poll_ms=*/20));
  std::uint64_t reports_before = obs::WatchdogStallReports();

  // The first checkpoint sleeps 2s — far past the 100ms stall threshold.
  // The watchdog must report exactly once, and the service's hook must
  // cancel the stalled request's budget so the handler stops at its next
  // checkpoint with an honest CANCELLED prefix.
  guard::ArmStallFault(/*at_step=*/1, /*sleep_ms=*/2000);
  Response r = service.Handle(MustParse(kJoinRequest));
  guard::DisarmFaults();

  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.has_outcome);
  EXPECT_EQ(r.outcome, guard::Outcome::kCancelled);
  EXPECT_EQ(r.result_json.find("\"determined\""), std::string::npos);

  // Exactly one structured report per stall, and the cancel hook fired.
  EXPECT_EQ(obs::WatchdogStallReports() - reports_before, 1u);
  EXPECT_EQ(service.stats().watchdog_cancels, 1u);
  EXPECT_EQ(service.in_flight(), 0u);  // the stalled slot was freed

  obs::StopWatchdog();

  // The service keeps serving after the stall.
  Response again = service.Handle(MustParse(kJoinRequest));
  EXPECT_TRUE(again.ok);
  EXPECT_EQ(again.outcome, guard::Outcome::kComplete);
}

TEST_F(SvcChaosTest, FaultedBatchItemDoesNotPoisonTheBatch) {
  Service service;
  // The throw fires inside the first determinacy item (chase probes under
  // way); the batch handler's caller converts it into a structured internal
  // response, and a fresh batch afterwards is clean.
  guard::ArmFault(guard::FaultKind::kTaskThrow, "svc.request", 1);
  Response r = service.Handle(MustParse(
      "{\"op\":\"batch\",\"items\":["
      "{\"views\":[\"V(x,y) :- R(x,y)\"],\"query\":\"Q(x) :- R(x,y)\"}]}"));
  guard::DisarmFaults();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "internal");

  Response again = service.Handle(MustParse(
      "{\"op\":\"batch\",\"items\":["
      "{\"views\":[\"V(x,y) :- R(x,y)\"],\"query\":\"Q(x) :- R(x,y)\"}]}"));
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.outcome, guard::Outcome::kComplete);
}

}  // namespace
}  // namespace vqdr::svc
