// Unit tests for the work-stealing pool and the deterministic sharding
// primitives (src/par), plus the indexed instance space they shard
// (gen/enumerate.h InstanceSpace) — the pieces every parallel engine in the
// library is built from.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "gen/enumerate.h"
#include "obs/progress.h"
#include "par/pool.h"
#include "par/shard.h"

namespace vqdr {
namespace {

// ---- ThreadPool ----

TEST(ThreadPool, RunsEverySubmittedTask) {
  par::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitCoversNestedSubmissions) {
  par::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &count] {
      for (int j = 0; j < 4; ++j) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ReusableAcrossWaitRounds) {
  par::ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    par::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No Wait: destruction itself must drain and join.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SizeAndDefaultThreads) {
  par::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
  EXPECT_GE(par::DefaultThreads(), 1);
}

TEST(ThreadPool, ParallelForChunksCoversEveryIdOnce) {
  par::ThreadPool pool(4);
  constexpr std::uint64_t kChunks = 97;
  std::vector<std::atomic<int>> seen(kChunks);
  par::ParallelForChunks(pool, kChunks,
                         [&seen](std::uint64_t c) { seen[c].fetch_add(1); });
  for (std::uint64_t c = 0; c < kChunks; ++c) {
    EXPECT_EQ(seen[c].load(), 1) << "chunk " << c;
  }
}

// ---- PlanShards ----

TEST(PlanShards, PartitionsTheIndexSpaceExactly) {
  for (std::uint64_t total : {0ull, 1ull, 15ull, 16ull, 17ull, 1000ull,
                              4096ull, 100000ull}) {
    for (int threads : {1, 2, 8}) {
      par::ShardPlan plan = par::PlanShards(total, threads);
      std::uint64_t covered = 0;
      for (std::uint64_t c = 0; c < plan.num_chunks; ++c) {
        EXPECT_EQ(plan.Begin(c), covered);
        EXPECT_GT(plan.End(c), plan.Begin(c));
        covered = plan.End(c);
      }
      EXPECT_EQ(covered, total) << total << " across " << threads;
    }
  }
}

TEST(PlanShards, DeterministicInTotalAndThreads) {
  par::ShardPlan a = par::PlanShards(12345, 8);
  par::ShardPlan b = par::PlanShards(12345, 8);
  EXPECT_EQ(a.chunk, b.chunk);
  EXPECT_EQ(a.num_chunks, b.num_chunks);
}

TEST(PlanShards, RespectsChunkClamp) {
  // Tiny total: chunk clamps up to min_chunk.
  EXPECT_EQ(par::PlanShards(100, 8, 16, 4096).chunk, 16u);
  // Huge total: chunk clamps down to max_chunk.
  EXPECT_EQ(par::PlanShards(1u << 20, 1, 16, 4096).chunk, 4096u);
}

// ---- FirstHit ----

TEST(FirstHit, ConcurrentImprovementsConvergeToMinimum) {
  par::FirstHit hit;
  EXPECT_EQ(hit.best(), par::FirstHit::kNone);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&hit, t] {
      for (std::uint64_t i = 1000; i-- > 0;) {
        hit.TryImprove(i * 8 + static_cast<std::uint64_t>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hit.best(), 0u);
}

TEST(FirstHit, TryImproveReportsOnlyGenuineImprovements) {
  par::FirstHit hit;
  EXPECT_TRUE(hit.TryImprove(10));
  EXPECT_FALSE(hit.TryImprove(10));
  EXPECT_FALSE(hit.TryImprove(11));
  EXPECT_TRUE(hit.TryImprove(3));
}

// ---- OpContext ----

TEST(OpContext, AggregatesProgressAcrossWorkers) {
  std::mutex mu;
  std::vector<std::uint64_t> reported;
  obs::SetProgressCallback([&](const obs::ProgressEvent& e) {
    std::lock_guard<std::mutex> lock(mu);
    reported.push_back(e.current);
    return true;
  });
  {
    par::OpContext op("par.test", 1000, 10);
    par::ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&op] { op.AddProgress(10); });
    }
    pool.Wait();
    EXPECT_EQ(op.done(), 1000u);
    EXPECT_FALSE(op.cancelled());
  }
  obs::ClearProgressCallback();
  // Aggregated counts are monotone and at least one report fired.
  ASSERT_FALSE(reported.empty());
  for (std::size_t i = 1; i < reported.size(); ++i) {
    EXPECT_GT(reported[i], reported[i - 1]);
  }
}

TEST(OpContext, CallbackRefusalCancels) {
  obs::SetProgressCallback([](const obs::ProgressEvent&) { return false; });
  par::OpContext op("par.test", 100, 1);
  EXPECT_FALSE(op.AddProgress(1));
  EXPECT_TRUE(op.cancelled());
  obs::ClearProgressCallback();
}

TEST(OpContext, NoCallbackMeansNoCancellation) {
  par::OpContext op("par.test", 100, 1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(op.AddProgress(1));
  EXPECT_FALSE(op.cancelled());
}

// ---- InstanceSpace vs the serial enumeration ----

TEST(InstanceSpace, MatchesSerialEnumerationOrder) {
  Schema schema{{"E", 2}, {"P", 1}};
  std::vector<Value> universe{Value(1), Value(2)};
  InstanceSpace space(schema, universe);
  ASSERT_TRUE(space.indexable());

  std::vector<Instance> serial;
  ForEachInstanceOver(schema, universe, 1ull << 22, [&](const Instance& d) {
    serial.push_back(d);
    return true;
  });
  ASSERT_EQ(space.total(), serial.size());

  for (std::uint64_t k = 0; k < space.total(); ++k) {
    EXPECT_EQ(space.At(k), serial[k]) << "index " << k;
  }
}

TEST(InstanceSpace, ForRangeMatchesAtOnArbitraryWindows) {
  Schema schema{{"E", 2}};
  std::vector<Value> universe{Value(1), Value(2)};
  InstanceSpace space(schema, universe);
  ASSERT_TRUE(space.indexable());
  ASSERT_EQ(space.total(), 16u);

  for (std::uint64_t begin : {0ull, 3ull, 7ull, 15ull}) {
    for (std::uint64_t end : {0ull, 1ull, 8ull, 16ull}) {
      if (begin > end) continue;
      std::uint64_t expect = begin;
      space.ForRange(begin, end, [&](std::uint64_t idx, const Instance& d) {
        EXPECT_EQ(idx, expect);
        EXPECT_EQ(d, space.At(idx));
        ++expect;
        return true;
      });
      EXPECT_EQ(expect, end);
    }
  }
}

TEST(InstanceSpace, EarlyExitStopsForRange) {
  Schema schema{{"E", 2}};
  InstanceSpace space(schema, {Value(1), Value(2)});
  int visits = 0;
  space.ForRange(0, 16, [&](std::uint64_t, const Instance&) {
    ++visits;
    return visits < 5;
  });
  EXPECT_EQ(visits, 5);
}

TEST(InstanceSpace, RefusesOversizedSpaces) {
  // Arity 3 over 4 values: 64 tuples in the pool → 2^64 subsets.
  Schema schema{{"T", 3}};
  std::vector<Value> universe;
  for (int v = 1; v <= 4; ++v) universe.push_back(Value(v));
  InstanceSpace space(schema, universe);
  EXPECT_FALSE(space.indexable());
}

}  // namespace
}  // namespace vqdr
