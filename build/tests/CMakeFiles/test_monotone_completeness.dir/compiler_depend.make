# Empty compiler generated dependencies file for test_monotone_completeness.
# This may be replaced when dependencies are built.
