file(REMOVE_RECURSE
  "CMakeFiles/test_monotone_completeness.dir/monotone_completeness_test.cc.o"
  "CMakeFiles/test_monotone_completeness.dir/monotone_completeness_test.cc.o.d"
  "test_monotone_completeness"
  "test_monotone_completeness.pdb"
  "test_monotone_completeness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monotone_completeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
