# Empty dependencies file for vqdr_base.
# This may be replaced when dependencies are built.
