// Semantic caching (the paper's second motivating scenario): answers to a
// set of queries against a source are cached; when a new query arrives,
// decide whether it can be answered from the cache alone — and if not,
// what the certain answers are.
//
// Build & run:  ./build/examples/semantic_caching

#include <iostream>
#include <vector>

#include "core/determinacy.h"
#include "core/query_answering.h"
#include "core/rewriting.h"
#include "cq/matcher.h"
#include "cq/parser.h"

using namespace vqdr;

int main() {
  NamePool pool;

  // Source schema: Orders(customer, item) and Vip(customer).
  Schema base{{"Orders", 2}, {"Vip", 1}};

  // The cache holds two query results.
  ViewSet cache;
  cache.Add("CachedVipOrders",
            Query::FromCq(
                ParseCq("CachedVipOrders(c, i) :- Orders(c, i), Vip(c)", pool)
                    .value()));
  cache.Add("CachedVip",
            Query::FromCq(ParseCq("CachedVip(c) :- Vip(c)", pool).value()));

  std::cout << "Cached views:\n" << cache.ToString() << "\n";

  // The actual source data (the cache was filled from it).
  Instance source =
      ParseInstance("Orders(ann, laptop), Orders(bob, phone), "
                    "Orders(ann, phone), Vip(ann)",
                    base, pool)
          .value();
  Instance cached = cache.Apply(source);

  std::vector<std::string> incoming = {
      // Answerable from the cache: items ordered by VIPs.
      "Q(i) :- Orders(c, i), Vip(c)",
      // Answerable: VIP customers who ordered something.
      "Q(c) :- Vip(c), Orders(c, i)",
      // Not answerable: all orders (the cache only covers VIPs).
      "Q(c, i) :- Orders(c, i)",
  };

  for (const std::string& text : incoming) {
    ConjunctiveQuery q = ParseCq(text, pool).value();
    std::cout << "Incoming query: " << CqToString(q, pool) << "\n";

    CqRewritingResult rewriting = FindCqRewriting(cache, q);
    if (rewriting.exists) {
      std::cout << "  -> answerable from cache via "
                << CqToString(*rewriting.rewriting, pool) << "\n";
      Relation answer = EvaluateCq(*rewriting.rewriting, cached);
      std::cout << "  -> answer (no source access): ";
      bool first = true;
      std::cout << "{";
      for (const Tuple& t : answer.tuples()) {
        if (!first) std::cout << ", ";
        first = false;
        std::cout << "(";
        for (std::size_t i = 0; i < t.size(); ++i) {
          if (i > 0) std::cout << ", ";
          std::cout << pool.NameOf(t[i]);
        }
        std::cout << ")";
      }
      std::cout << "}\n";
      // Cross-check against the source.
      Relation truth = EvaluateCq(q, source);
      std::cout << "  -> matches source: "
                << (answer == truth ? "yes" : "NO") << "\n";
    } else {
      std::cout << "  -> NOT answerable exactly from the cache "
                << "(cache does not determine it)\n";
      // Fall back to certain answers: tuples guaranteed regardless of what
      // the un-cached part of the source contains.
      QueryAnsweringOptions opts;
      opts.extra_values = 1;
      CertainAnswers certain =
          ComputeCertainAnswers(cache, Query::FromCq(q), base, cached, opts);
      std::cout << "  -> certain answers from cache: "
                << certain.answer.ToString()
                << (certain.exhaustive ? "" : " (search truncated)") << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
