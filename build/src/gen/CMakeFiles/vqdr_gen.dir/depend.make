# Empty dependencies file for vqdr_gen.
# This may be replaced when dependencies are built.
