// E-3.7 / E-5.11: scaling of the unrestricted determinacy decision
// (Theorem 3.7) — freeze, view-apply, inverse-chase, containment test —
// across chain-query length and path-view vocabulary size.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "core/determinacy.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

// Decision cost as the query grows, with a fixed view vocabulary {P1, P2}.
void BM_DeterminacyVsQueryLength(benchmark::State& state) {
  ViewSet views = PathViews(2);
  ConjunctiveQuery q = ChainQuery(static_cast<int>(state.range(0)));
  bool determined = false;
  for (auto _ : state) {
    determined = DecideUnrestrictedDeterminacy(views, q).determined;
    benchmark::DoNotOptimize(determined);
  }
  state.counters["determined"] = determined ? 1 : 0;
  state.counters["query_atoms"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DeterminacyVsQueryLength)->DenseRange(1, 8)
    ->Unit(benchmark::kMicrosecond);

// Decision cost as the view vocabulary grows, fixed query chain-5.
void BM_DeterminacyVsViewCount(benchmark::State& state) {
  ViewSet views = PathViews(static_cast<int>(state.range(0)));
  ConjunctiveQuery q = ChainQuery(5);
  bool determined = false;
  for (auto _ : state) {
    determined = DecideUnrestrictedDeterminacy(views, q).determined;
    benchmark::DoNotOptimize(determined);
  }
  state.counters["determined"] = determined ? 1 : 0;
  state.counters["views"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DeterminacyVsViewCount)->DenseRange(1, 5)
    ->Unit(benchmark::kMicrosecond);

// The non-determined side: only even-length path views, odd query. The
// chase still runs fully; the final containment test fails.
void BM_DeterminacyNegativeCase(benchmark::State& state) {
  ViewSet views;
  views.Add("P2", Query::FromCq(ChainQuery(2, "E", "P2")));
  ConjunctiveQuery q = ChainQuery(static_cast<int>(state.range(0)));
  bool determined = true;
  for (auto _ : state) {
    determined = DecideUnrestrictedDeterminacy(views, q).determined;
    benchmark::DoNotOptimize(determined);
  }
  state.counters["determined"] = determined ? 1 : 0;
}
BENCHMARK(BM_DeterminacyNegativeCase)->Arg(3)->Arg(5)->Arg(7)
    ->Unit(benchmark::kMicrosecond);

// Star queries: minimisation-heavy shape (all arms redundant).
void BM_DeterminacyStarQuery(benchmark::State& state) {
  ViewSet views = PathViews(1);
  ConjunctiveQuery q = StarQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideUnrestrictedDeterminacy(views, q));
  }
}
BENCHMARK(BM_DeterminacyStarQuery)->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("determinacy");
