# Empty dependencies file for bench_query_answering.
# This may be replaced when dependencies are built.
