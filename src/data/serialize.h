#ifndef VQDR_DATA_SERIALIZE_H_
#define VQDR_DATA_SERIALIZE_H_

#include "base/wire.h"
#include "data/instance.h"
#include "data/schema.h"
#include "data/tuple.h"

// Binary codecs for the data layer, used by the memo snapshot (DESIGN.md
// §14). Values are encoded as their raw int64 ids — exactness matters more
// than readability here: the memo keys embed the same ids, so a restored
// entry replays byte-identically or (if the environment interned values
// differently) misses harmlessly.
//
// Every Decode* validates before mutating: counts are bounded by the input
// size, relation names must exist in the schema, and tuple widths must match
// the declared arity, so no malformed payload can reach an aborting
// VQDR_CHECK. Decoders return false (leaving *out unspecified) on damage.

namespace vqdr {

void EncodeSchema(const Schema& schema, wire::Encoder& enc);
bool DecodeSchema(wire::Decoder& dec, Schema* out);

void EncodeTuple(const Tuple& tuple, wire::Encoder& enc);
bool DecodeTuple(wire::Decoder& dec, Tuple* out);

void EncodeInstance(const Instance& instance, wire::Encoder& enc);
bool DecodeInstance(wire::Decoder& dec, Instance* out);

}  // namespace vqdr

#endif  // VQDR_DATA_SERIALIZE_H_
