// Second property-sweep suite: parser round-trips, SO duality, Datalog
// cross-checks, enumeration counting, chase Lemma 3.4 on random view sets,
// Turing construction sweeps, and twin-vs-direct search agreement.

#include <gtest/gtest.h>

#include "chase/view_inverse.h"
#include "core/determinacy.h"
#include "core/rewriting.h"
#include "data/isomorphism.h"
#include "core/finite_search.h"
#include "core/twin_encoding.h"
#include "cq/canonical.h"
#include "cq/matcher.h"
#include "cq/parser.h"
#include "datalog/program.h"
#include "fo/evaluator.h"
#include "fo/parser.h"
#include "gen/enumerate.h"
#include "gen/random_instance.h"
#include "gen/random_query.h"
#include "gen/workloads.h"
#include "reductions/turing.h"
#include "so/so_query.h"

namespace vqdr {
namespace {

class SeededProperty2 : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty2,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- Parser round trips ---

TEST_P(SeededProperty2, CqParserRoundTrip) {
  Rng rng(GetParam());
  NamePool pool;
  RandomCqOptions options;
  ConjunctiveQuery q = RandomCq(rng, options);
  std::string rendered = CqToString(q, pool);
  auto reparsed = ParseCq(rendered, pool);
  ASSERT_TRUE(reparsed.ok()) << rendered;
  EXPECT_EQ(q, reparsed.value()) << rendered;
}

TEST_P(SeededProperty2, InstanceParserRoundTrip) {
  Rng rng(GetParam());
  NamePool pool;
  // Give the values names first so rendering uses them.
  for (int i = 1; i <= 6; ++i) pool.Intern("n" + std::to_string(i));
  Schema schema{{"E", 2}, {"P", 1}};
  RandomInstanceOptions iopts;
  iopts.domain_size = 6;
  Instance d = RandomInstance(schema, rng, iopts);

  // Render as a fact list and reparse.
  std::ostringstream facts;
  bool first = true;
  for (const RelationDecl& decl : schema.decls()) {
    for (const Tuple& t : d.Get(decl.name).tuples()) {
      if (!first) facts << ", ";
      first = false;
      facts << decl.name << "(";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) facts << ", ";
        facts << pool.NameOf(t[i]);
      }
      facts << ")";
    }
  }
  auto reparsed = ParseInstance(facts.str(), schema, pool);
  ASSERT_TRUE(reparsed.ok()) << facts.str();
  EXPECT_EQ(d, reparsed.value());
}

// --- SO duality: ∃S.φ ≡ ¬∀S.¬φ ---

TEST_P(SeededProperty2, SecondOrderDuality) {
  Rng rng(GetParam());
  NamePool pool;
  FoPtr matrix = ParseFo("forall x, y . (E(x, y) -> S(x) | S(y))", pool)
                     .value();
  SoQuery exists_q;
  exists_q.existential = true;
  exists_q.relation_vars = {{"S", 1}};
  exists_q.matrix.formula = matrix;

  SoQuery forall_not;
  forall_not.existential = false;
  forall_not.relation_vars = {{"S", 1}};
  forall_not.matrix.formula = FoFormula::Not(matrix);

  Instance d = RandomGraph(4, 5, GetParam());
  auto lhs = SoSentenceHolds(exists_q, d);
  auto rhs = SoSentenceHolds(forall_not, d);
  ASSERT_TRUE(lhs.ok() && rhs.ok());
  EXPECT_EQ(lhs.value(), !rhs.value());
}

// --- Datalog transitive closure vs CQ chain powers on DAGs ---

TEST_P(SeededProperty2, DatalogTcMatchesChainUnion) {
  NamePool pool;
  DatalogProgram tc =
      ParseDatalog("T(x, y) :- E(x, y); T(x, y) :- E(x, z), T(z, y)", pool)
          .value();
  // A random DAG (edges i -> j only for i < j) with <= 5 nodes: paths have
  // length <= 4, so TC = ∪ chains 1..4.
  Rng rng(GetParam());
  Instance d(Schema{{"E", 2}});
  for (int i = 1; i <= 5; ++i) {
    for (int j = i + 1; j <= 5; ++j) {
      if (rng.Chance(1, 2)) d.AddFact("E", Tuple{Value(i), Value(j)});
    }
  }
  Relation tc_answer = tc.Query(d, "T").value();
  Relation chain_union(2);
  for (int len = 1; len <= 4; ++len) {
    chain_union = chain_union.Union(EvaluateCq(ChainQuery(len), d));
  }
  EXPECT_EQ(tc_answer, chain_union);
}

// --- Enumeration counts ---

TEST(EnumerationCounting, ExactCounts) {
  // One unary relation over {1,2}: 2^2 = 4 instances.
  EnumerationOptions options;
  options.domain_size = 2;
  std::uint64_t count = 0;
  ForEachInstance(Schema{{"P", 1}}, options, [&](const Instance&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 4u);

  // P/1 and E/2 over {1,2}: 2^2 * 2^4 = 64.
  count = 0;
  ForEachInstance(Schema{{"P", 1}, {"E", 2}}, options,
                  [&](const Instance&) {
                    ++count;
                    return true;
                  });
  EXPECT_EQ(count, 64u);
}

TEST(EnumerationCounting, IsoReductionShrinks) {
  EnumerationOptions options;
  options.domain_size = 2;
  std::uint64_t all = 0, reduced = 0;
  ForEachInstance(Schema{{"E", 2}}, options, [&](const Instance&) {
    ++all;
    return true;
  });
  ForEachInstanceUpToIso(Schema{{"E", 2}}, options, [&](const Instance&) {
    ++reduced;
    return true;
  });
  EXPECT_EQ(all, 16u);
  EXPECT_LT(reduced, all);
  EXPECT_EQ(reduced, 10u);  // 16 digraphs on 2 labelled nodes → 10 classes
}

TEST(EnumerationCounting, BudgetTruncates) {
  EnumerationOptions options;
  options.domain_size = 2;
  options.max_instances = 5;
  EnumerationOutcome outcome = ForEachInstance(
      Schema{{"E", 2}}, options, [&](const Instance&) { return true; });
  EXPECT_FALSE(outcome.complete);
}

TEST(EnumerationCounting, OversizedRelationDegradesGracefully) {
  std::vector<Value> universe;
  for (int i = 1; i <= 8; ++i) universe.push_back(Value(i));
  // 8^3 = 512 candidate tuples: unenumerable; must report incomplete.
  EnumerationOutcome outcome = ForEachInstanceOver(
      Schema{{"T", 3}}, universe, 100, [&](const Instance&) { return true; });
  EXPECT_FALSE(outcome.complete);
  EXPECT_EQ(outcome.visited, 0u);
}

// --- Lemma 3.4 on random view sets ---

TEST_P(SeededProperty2, Lemma34OnRandomViews) {
  Rng rng(GetParam());
  RandomCqOptions options;
  options.max_atoms = 2;
  ViewSet views = RandomCqViews(rng, options, 2);
  RandomInstanceOptions iopts;
  iopts.domain_size = 3;
  iopts.tuples_per_relation = 4;
  Instance d(ChaseSchema(views, options.schema));
  Instance random_part = RandomInstance(options.schema, rng, iopts);
  for (const RelationDecl& decl : options.schema.decls()) {
    d.Set(decl.name, random_part.Get(decl.name));
  }

  Instance s = views.Apply(d);
  ValueFactory factory;
  Instance empty(d.schema());
  Instance d_prime = ViewInverse(views, empty, s, factory);

  // Lemma 3.4: hom from D' to D fixing adom(D)∩adom(D') values that came
  // from S (all S-values appear in D).
  std::map<Value, Value> fixed;
  for (Value v : s.ActiveDomain()) fixed[v] = v;
  EXPECT_TRUE(FindInstanceHomomorphism(d_prime, d, fixed).has_value())
      << views.ToString();
  // And V(D') ⊇ S.
  EXPECT_TRUE(s.IsSubInstanceOf(views.Apply(d_prime)));
}

// --- Theorem 5.1 sweep over random graphs ---

TEST_P(SeededProperty2, TuringConstructionSweep) {
  SimpleTm tm = ComplementTm();
  Instance g = RandomGraph(3, 4, GetParam());
  Relation graph = g.Get("E");
  auto instance = BuildComputationInstance(tm, graph);
  ASSERT_TRUE(instance.ok()) << instance.status().message();
  EXPECT_TRUE(VerifyComputationInstance(tm, instance.value()));
  Query q = TuringQuery(tm);
  EXPECT_EQ(q.Eval(instance.value()), ComplementWithinAdom(graph));
}

// --- Twin encoding vs direct search on random pairs ---

TEST_P(SeededProperty2, TwinAndDirectSearchAgreeOnRandomPairs) {
  Rng rng(GetParam());
  RandomCqOptions options;
  options.schema = Schema{{"E", 2}};
  options.max_atoms = 2;
  options.variable_pool = 3;
  ViewSet views = RandomCqViews(rng, options, 1);
  ConjunctiveQuery q = RandomCq(rng, options);
  if (!q.IsSafe() || q.atoms().empty()) GTEST_SKIP();

  EnumerationOptions eopts;
  eopts.domain_size = 2;
  auto direct = SearchDeterminacyCounterexample(views, Query::FromCq(q),
                                                options.schema, eopts);
  auto twin =
      BoundedTwinSearch(BuildTwinEncoding(views, Query::FromCq(q),
                                          options.schema),
                        options.schema, eopts);
  EXPECT_EQ(direct.verdict == SearchVerdict::kCounterexampleFound,
            twin.verdict == SearchVerdict::kCounterexampleFound)
      << views.ToString() << q.ToString();
}

// --- Canonical rewriting's frozen body is the view image ---

TEST_P(SeededProperty2, CanonicalRewritingFreezesBackToViewImage) {
  Rng rng(GetParam());
  RandomCqOptions options;
  options.max_atoms = 2;
  ViewSet views = RandomCqViews(rng, options, 2);
  ConjunctiveQuery r = RandomRewriting(rng, views, 2, 1);
  ConjunctiveQuery q = ExpandRewriting(r, views);
  if (!q.IsPureCq() || !q.IsSafe() || q.atoms().empty()) GTEST_SKIP();

  auto det = DecideUnrestrictedDeterminacy(views, q);
  if (!det.determined) GTEST_SKIP();
  ASSERT_TRUE(det.canonical_rewriting.has_value());
  // [Q_V] (re-frozen) is isomorphic to S = V([Q]) by construction.
  ValueFactory factory;
  factory.NoteUsed(Value(det.canonical_view_image.MaxValueId()));
  FrozenQuery frozen = Freeze(*det.canonical_rewriting, factory);
  EXPECT_TRUE(AreIsomorphic(frozen.instance, det.canonical_view_image));
}

// --- Homomorphism laws through the matcher seam (DESIGN.md §12) ---

// Composition: a hom b : Q1 → [Q2] and a hom h : [Q2] → I compose to a hom
// h∘b : Q1 → I. Checked two ways: atom-by-atom membership of the composed
// image, and the matcher finding a hom Q1 → I on its own.
TEST_P(SeededProperty2, HomomorphismCompositionLaw) {
  Rng rng(GetParam());
  RandomCqOptions options;
  options.min_atoms = 2;
  options.max_atoms = 4;
  options.variable_pool = 3;
  ConjunctiveQuery q2 = RandomCq(rng, options);
  // Draw Q1 smaller than Q2 so a hom Q1 -> [Q2] usually exists.
  options.min_atoms = 1;
  options.max_atoms = 2;
  options.variable_pool = 2;
  ConjunctiveQuery q1 = RandomCq(rng, options);

  ValueFactory factory;
  FrozenQuery frozen = Freeze(q2, factory);

  std::optional<Binding> b;
  ForEachMatch(q1.atoms(), frozen.instance, Binding{},
               [&b](const Binding& found) {
                 b = found;
                 return false;
               });
  if (!b.has_value()) GTEST_SKIP() << "no hom Q1 -> [Q2]";

  // Dense target so a hom [Q2] -> I usually exists (tiny domain ⇒ most
  // tuples present); retry a few densities before giving up.
  std::optional<std::map<Value, Value>> h;
  Instance i{frozen.instance.schema()};
  for (int tuples = 8; tuples <= 32 && !h.has_value(); tuples *= 2) {
    RandomInstanceOptions iopts;
    iopts.domain_size = 2;
    iopts.tuples_per_relation = tuples;
    i = RandomInstance(frozen.instance.schema(), rng, iopts);
    h = FindInstanceHomomorphism(frozen.instance, i);
  }
  if (!h.has_value()) GTEST_SKIP() << "no hom [Q2] -> I";

  for (const Atom& atom : q1.atoms()) {
    Tuple image;
    for (const Term& t : atom.args) {
      Value via_b = t.is_const() ? t.constant() : b->at(t.var());
      auto hv = h->find(via_b);
      image.push_back(hv != h->end() ? hv->second : via_b);
    }
    EXPECT_TRUE(i.Get(atom.predicate).Contains(image))
        << atom.ToString() << " under h∘b, seed " << GetParam();
  }

  bool direct = false;
  ForEachMatch(q1.atoms(), i, Binding{}, [&direct](const Binding&) {
    direct = true;
    return false;
  });
  EXPECT_TRUE(direct) << "composition exists but matcher found no Q1 -> I";
}

// Canonical-instance identity: Q maps into its own frozen body, and the
// freezing assignment itself is the (unique, once pre-bound) witness with
// head image frozen_head.
TEST_P(SeededProperty2, CanonicalInstanceIdentity) {
  Rng rng(GetParam());
  RandomCqOptions options;
  options.max_atoms = 3;
  options.variable_pool = 4;
  ConjunctiveQuery q = RandomCq(rng, options);

  ValueFactory factory;
  FrozenQuery frozen = Freeze(q, factory);

  ASSERT_TRUE(
      CqAnswerContains(q, frozen.instance, frozen.frozen_head))
      << q.ToString();
  // Pre-binding the full freezing assignment must yield exactly the
  // identity match: the frozen assignment IS a hom Q -> [Q].
  std::vector<Binding> matches;
  ForEachMatch(q.atoms(), frozen.instance, frozen.var_to_value,
               [&matches](const Binding& found) {
                 matches.push_back(found);
                 return true;
               });
  ASSERT_FALSE(matches.empty()) << q.ToString();
  EXPECT_EQ(matches.front(), frozen.var_to_value) << q.ToString();
}

// Fingerprint invariance: an injective renaming of the instance's values
// yields identical match verdicts and the renamed answer set.
TEST_P(SeededProperty2, MatchVerdictsInvariantUnderIsomorphicRenaming) {
  Rng rng(GetParam());
  RandomCqOptions options;
  options.max_atoms = 3;
  options.variable_pool = 3;
  ConjunctiveQuery q = RandomCq(rng, options);

  RandomInstanceOptions iopts;
  iopts.domain_size = 4;
  iopts.tuples_per_relation = 8;
  Instance d = RandomInstance(options.schema, rng, iopts);

  auto rename = [](Value v) { return Value(v.id + 1000); };
  Instance renamed(d.schema());
  for (const RelationDecl& decl : d.schema().decls()) {
    for (const Tuple& t : d.Get(decl.name).tuples()) {
      Tuple image;
      for (Value v : t) image.push_back(rename(v));
      renamed.AddFact(decl.name, image);
    }
  }

  Relation original = EvaluateCq(q, d);
  Relation mapped = EvaluateCq(q, renamed);
  ASSERT_EQ(original.tuples().size(), mapped.tuples().size());
  Relation expected(original.arity());
  for (const Tuple& t : original.tuples()) {
    Tuple image;
    for (Value v : t) image.push_back(rename(v));
    expected.Insert(image);
  }
  EXPECT_EQ(expected, mapped) << q.ToString();
}

}  // namespace
}  // namespace vqdr
