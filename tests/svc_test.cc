// The vqdr-serve request engine, transport-free (svc/proto.h +
// svc/service.h): protocol parsing and serialization, admission control and
// backpressure rejection shapes, graceful degradation under tripped
// budgets, and the byte-identity contract — a served result_json equals the
// JSON built from a direct engine call through the same shared builders.

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>

#include <sys/stat.h>

#include "core/determinacy.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "guard/budget.h"
#include "guard/outcome.h"
#include "memo/memo.h"
#include "obs/json.h"
#include "svc/proto.h"
#include "svc/service.h"

#ifndef VQDR_MEMO_DISABLED
#include "memo/store.h"
#endif

namespace vqdr::svc {
namespace {

constexpr const char* kDeterminedRequest =
    "{\"op\":\"determinacy\",\"id\":1,\"schema\":\"R/2\","
    "\"views\":[\"V(x,y) :- R(x,y)\"],\"query\":\"Q(x) :- R(x,y)\"}";

// A scenario with enough chase work that a 1-step budget trips mid-run.
constexpr const char* kJoinScenario =
    "\"schema\":\"R/2 S/2\","
    "\"views\":[\"V1(x,y) :- R(x,y)\",\"V2(x,y) :- S(x,y)\"],"
    "\"query\":\"Q(x,z) :- R(x,y), S(y,z)\"";

Request MustParse(const std::string& line) {
  StatusOr<Request> req = ParseRequest(line);
  EXPECT_TRUE(req.ok()) << req.status().message();
  return std::move(req).value();
}

std::optional<obs::json::Value> MustJson(const std::string& text) {
  std::string error;
  std::optional<obs::json::Value> v = obs::json::Parse(text, &error);
  EXPECT_TRUE(v.has_value()) << error << " in: " << text;
  return v;
}

TEST(SvcProto, ParseRequestMapsEveryField) {
  Request req = MustParse(
      "{\"op\":\"determinacy\",\"id\":\"req-9\",\"tenant\":\"gold\","
      "\"deadline_ms\":500,\"max_steps\":100,\"max_atoms\":200,"
      "\"max_chase_levels\":4,\"schema\":\"R/2 S/1\","
      "\"views\":[\"V(x) :- R(x,y)\"],\"query\":\"Q(x) :- R(x,x)\","
      "\"q1\":\"A() :- R(x,y)\",\"q2\":\"B() :- R(x,x)\",\"levels\":3}");
  EXPECT_EQ(req.op, "determinacy");
  EXPECT_EQ(req.id, "\"req-9\"");  // pre-serialized for verbatim echo
  EXPECT_EQ(req.tenant, "gold");
  EXPECT_EQ(req.budget.wall_ms, 500);
  EXPECT_EQ(req.budget.max_steps, 100u);
  EXPECT_EQ(req.budget.max_atoms, 200u);
  EXPECT_EQ(req.budget.max_chase_levels, 4);
  EXPECT_EQ(req.schema, "R/2 S/1");
  ASSERT_EQ(req.views.size(), 1u);
  EXPECT_EQ(req.views[0], "V(x) :- R(x,y)");
  EXPECT_EQ(req.query, "Q(x) :- R(x,x)");
  EXPECT_EQ(req.q1, "A() :- R(x,y)");
  EXPECT_EQ(req.q2, "B() :- R(x,x)");
  EXPECT_EQ(req.levels, 3);

  Request numeric_id = MustParse("{\"op\":\"health\",\"id\":42}");
  EXPECT_EQ(numeric_id.id, "42");
  Request no_id = MustParse("{\"op\":\"health\"}");
  EXPECT_EQ(no_id.id, "");

  // A default request imposes no budget.
  EXPECT_EQ(no_id.budget.wall_ms, -1);
  EXPECT_EQ(no_id.budget.max_steps, 0u);
}

TEST(SvcProto, ParseRequestBatchItems) {
  Request req = MustParse(
      "{\"op\":\"batch\",\"max_steps\":1000,\"items\":["
      "{\"views\":[\"V(x,y) :- R(x,y)\"],\"query\":\"Q(x) :- R(x,y)\","
      "\"budget\":{\"max_steps\":10}},"
      "{\"views\":[\"W(x) :- S(x)\"],\"query\":\"Q(x) :- S(x)\"}]}");
  EXPECT_EQ(req.budget.max_steps, 1000u);
  ASSERT_EQ(req.items.size(), 2u);
  EXPECT_EQ(req.items[0].budget.max_steps, 10u);
  EXPECT_EQ(req.items[1].budget.max_steps, 0u);
  EXPECT_EQ(req.items[1].views[0], "W(x) :- S(x)");
}

TEST(SvcProto, ParseRequestRejectsBadShapes) {
  const char* bad[] = {
      "",                                  // empty
      "not json",                          // malformed
      "[1,2,3]",                           // not an object
      "{}",                                // missing op
      "{\"op\":7}",                        // op not a string
      "{\"op\":\"x\",\"views\":\"V\"}",    // views not an array
      "{\"op\":\"x\",\"views\":[7]}",      // view element not a string
      "{\"op\":\"x\",\"deadline_ms\":-5}", // negative budget field
      "{\"op\":\"x\",\"levels\":99}",      // levels out of range
      "{\"op\":\"x\",\"levels\":-1}",
      "{\"op\":\"x\",\"items\":[7]}",      // item not an object
      "{\"op\":\"x\",\"id\":[1]}",         // id not a scalar
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseRequest(line).ok()) << "accepted: " << line;
  }
  // Oversized frames fail before JSON parsing.
  std::string big(kMaxRequestBytes + 1, ' ');
  EXPECT_FALSE(ParseRequest(big).ok());
}

TEST(SvcProto, SerializeResponseShapes) {
  Response ok;
  ok.id = "7";
  ok.has_outcome = true;
  ok.outcome = guard::Outcome::kComplete;
  ok.result_json = "{\"x\":1}";
  ok.has_elapsed = true;
  ok.elapsed_us = 123;
  EXPECT_EQ(SerializeResponse(ok),
            "{\"id\":7,\"ok\":true,\"outcome\":\"COMPLETE\","
            "\"result\":{\"x\":1},\"elapsed_us\":123}");

  Response rejected = ErrorResponse("overloaded", "request rejected");
  rejected.has_retry = true;
  rejected.retry_after_ms = 25;
  EXPECT_EQ(SerializeResponse(rejected),
            "{\"ok\":false,\"code\":\"overloaded\","
            "\"error\":\"request rejected\",\"retry_after_ms\":25}");

  // Degraded: ok with a non-complete outcome tag.
  Response degraded;
  degraded.has_outcome = true;
  degraded.outcome = guard::Outcome::kStepBudgetExhausted;
  degraded.result_json = "{}";
  EXPECT_EQ(SerializeResponse(degraded),
            "{\"ok\":true,\"outcome\":\"STEP_BUDGET_EXHAUSTED\","
            "\"result\":{}}");
}

TEST(SvcProto, AppendJsonEscapesRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
  std::string out;
  AppendJson(nasty, &out);
  std::optional<obs::json::Value> v = MustJson(out);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string_value, nasty);
}

TEST(SvcService, DeterminacyByteIdenticalToDirectCall) {
  Service service;
  Response r = service.Handle(MustParse(kDeterminedRequest));
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.has_outcome);
  EXPECT_EQ(r.outcome, guard::Outcome::kComplete);
  EXPECT_EQ(r.id, "1");
  EXPECT_TRUE(r.has_elapsed);

  // The same strings through the same parse order and the same result
  // builder must yield the same bytes.
  Scenario sc;
  ASSERT_TRUE(
      BuildScenario("R/2", {"V(x,y) :- R(x,y)"}, "Q(x) :- R(x,y)", &sc).ok());
  guard::Budget budget;
  UnrestrictedDeterminacyResult direct =
      DecideUnrestrictedDeterminacy(sc.views, *sc.query, &budget);
  EXPECT_TRUE(direct.determined);
  EXPECT_EQ(r.result_json, DeterminacyResultJson(direct, sc.pool));
}

TEST(SvcService, ContainmentByteIdenticalToDirectCall) {
  Service service;
  Response r = service.Handle(MustParse(
      "{\"op\":\"containment\",\"q1\":\"Q(x) :- R(x,x)\","
      "\"q2\":\"Q(x) :- R(x,y)\"}"));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.outcome, guard::Outcome::kComplete);

  NamePool pool;
  auto q1 = ParseCq("Q(x) :- R(x,x)", pool);
  auto q2 = ParseCq("Q(x) :- R(x,y)", pool);
  ASSERT_TRUE(q1.ok() && q2.ok());
  CqContainmentOptions options;
  guard::Budget budget;
  options.budget = &budget;
  ContainmentResult direct =
      CqContainedInGoverned(q1.value(), q2.value(), options);
  EXPECT_TRUE(direct.contained);
  EXPECT_EQ(r.result_json, ContainmentResultJson(direct));
}

TEST(SvcService, UnknownOpAndBadRequestAreStructured) {
  Service service;
  Response r = service.Handle(MustParse("{\"op\":\"nope\",\"id\":3}"));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "unknown_op");
  EXPECT_EQ(r.id, "3");

  std::string line = service.HandleLine("this is not json");
  std::optional<obs::json::Value> v = MustJson(line);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->StringOr("code", ""), "bad_request");
  EXPECT_EQ(service.stats().bad_requests, 1u);
}

TEST(SvcService, PerTenantAdmissionRejectsWithClassHint) {
  Service service;
  guard::BudgetClassSpec gold;
  gold.name = "gold";
  gold.max_concurrent = 1;
  gold.retry_after_ms = 7;
  service.classes().Define(std::move(gold));

  // Occupy the tenant's only slot, as a concurrent request would.
  guard::BudgetClass& cls = service.classes().Resolve("gold");
  ASSERT_TRUE(cls.TryAcquire());

  Request req = MustParse(kDeterminedRequest);
  req.tenant = "gold";
  Response r = service.Handle(req);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "overloaded");
  ASSERT_TRUE(r.has_retry);
  EXPECT_EQ(r.retry_after_ms, 7u);  // the class's own hint
  EXPECT_EQ(service.stats().rejected_overloaded, 1u);

  cls.Release();
  Response again = service.Handle(req);
  EXPECT_TRUE(again.ok);
}

TEST(SvcService, GlobalQueueLimitBackpressure) {
  ServiceOptions options;
  options.queue_limit = 0;  // every queued request overflows
  options.retry_after_ms = 13;
  Service service(options);

  Response r = service.Handle(MustParse(kDeterminedRequest));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "overloaded");
  ASSERT_TRUE(r.has_retry);
  EXPECT_EQ(r.retry_after_ms, 13u);
  EXPECT_EQ(service.stats().rejected_overloaded, 1u);
  EXPECT_EQ(service.in_flight(), 0u);  // the slot was rolled back

  // Control operations bypass admission and still answer.
  Response health = service.Handle(MustParse("{\"op\":\"health\"}"));
  EXPECT_TRUE(health.ok);
}

TEST(SvcService, DrainingRejectsQueuedServesControl) {
  Service service;
  service.BeginDrain();

  Response r = service.Handle(MustParse(kDeterminedRequest));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "draining");
  EXPECT_TRUE(r.has_retry);
  EXPECT_EQ(service.stats().rejected_draining, 1u);

  Response health = service.Handle(MustParse("{\"op\":\"health\"}"));
  ASSERT_TRUE(health.ok);
  EXPECT_NE(health.result_json.find("\"draining\""), std::string::npos);
}

TEST(SvcService, TrippedBudgetDegradesWithoutVerdict) {
  Service service;
  Response r = service.Handle(MustParse(
      std::string("{\"op\":\"determinacy\",\"max_steps\":1,") +
      kJoinScenario + "}"));
  ASSERT_TRUE(r.ok);  // degradation is not an error
  ASSERT_TRUE(r.has_outcome);
  EXPECT_EQ(r.outcome, guard::Outcome::kStepBudgetExhausted);
  // No fabricated verdict: the prefix fields appear, "determined" does not.
  EXPECT_EQ(r.result_json.find("\"determined\""), std::string::npos);
  EXPECT_NE(r.result_json.find("\"view_image_atoms\""), std::string::npos);
}

TEST(SvcService, TenantClassCapGovernsRequestBudget) {
  Service service;
  guard::BudgetClassSpec bronze;
  bronze.name = "bronze";
  bronze.cap.max_steps = 1;  // the class cap, not the request, trips
  service.classes().Define(std::move(bronze));

  Request req = MustParse(
      std::string("{\"op\":\"determinacy\",\"tenant\":\"bronze\",") +
      kJoinScenario + "}");
  Response r = service.Handle(req);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.outcome, guard::Outcome::kStepBudgetExhausted);
  EXPECT_EQ(r.result_json.find("\"determined\""), std::string::npos);
}

TEST(SvcService, BatchEnvelopeSkipsAfterTrip) {
  Service service;
  // Three items under a 2-step envelope: the first trips it mid-run, the
  // rest are skipped with the envelope's stop reason — an exact prefix.
  Response r = service.Handle(MustParse(
      "{\"op\":\"batch\",\"max_steps\":2,\"items\":["
      "{\"views\":[\"V1(x,y) :- R(x,y)\",\"V2(x,y) :- S(x,y)\"],"
      "\"query\":\"Q(x,z) :- R(x,y), S(y,z)\"},"
      "{\"views\":[\"V(x,y) :- R(x,y)\"],\"query\":\"Q(x) :- R(x,y)\"},"
      "{\"views\":[\"V(x,y) :- R(x,y)\"],\"query\":\"Q(x) :- R(x,y)\"}]}"));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.outcome, guard::Outcome::kStepBudgetExhausted);
  EXPECT_NE(r.result_json.find("\"skipped\":true"), std::string::npos);
  EXPECT_NE(r.result_json.find("\"items_completed\":0"), std::string::npos);
  std::optional<obs::json::Value> v = MustJson(SerializeResponse(r));
  ASSERT_TRUE(v.has_value());
}

TEST(SvcService, BatchCompleteMatchesDirectPerItemResults) {
  Service service;
  Response r = service.Handle(MustParse(
      "{\"op\":\"batch\",\"items\":["
      "{\"views\":[\"V(x,y) :- R(x,y)\"],\"query\":\"Q(x) :- R(x,y)\"},"
      "{\"views\":[\"V(x) :- R(x,y)\"],\"query\":\"Q(x,y) :- R(x,y)\"}]}"));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.outcome, guard::Outcome::kComplete);

  // Rebuild the expected payload through the same builders the handler uses.
  std::string expected = "{\"items\":[";
  const char* views[] = {"V(x,y) :- R(x,y)", "V(x) :- R(x,y)"};
  const char* queries[] = {"Q(x) :- R(x,y)", "Q(x,y) :- R(x,y)"};
  for (int i = 0; i < 2; ++i) {
    if (i > 0) expected.push_back(',');
    Scenario sc;
    ASSERT_TRUE(BuildScenario("", {views[i]}, queries[i], &sc).ok());
    guard::Budget budget;
    UnrestrictedDeterminacyResult direct =
        DecideUnrestrictedDeterminacy(sc.views, *sc.query, &budget);
    std::string item = DeterminacyResultJson(direct, sc.pool);
    expected.append("{\"outcome\":\"COMPLETE\",");
    expected.append(item, 1, item.size() - 1);
  }
  expected.append("],\"items_completed\":2}");
  EXPECT_EQ(r.result_json, expected);
}

TEST(SvcService, StatsOperationReportsClasses) {
  Service service;
  (void)service.Handle(MustParse(kDeterminedRequest));
  Response r = service.Handle(MustParse("{\"op\":\"stats\"}"));
  ASSERT_TRUE(r.ok);
  std::optional<obs::json::Value> v = MustJson(r.result_json);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->IntOr("accepted", -1), 1);
  EXPECT_EQ(v->IntOr("completed", -1), 1);
  EXPECT_EQ(v->IntOr("in_flight", -1), 0);
  const obs::json::Value* classes = v->Find("classes");
  ASSERT_NE(classes, nullptr);
  ASSERT_TRUE(classes->IsArray());
  ASSERT_FALSE(classes->array.empty());
  EXPECT_EQ(classes->array[0].StringOr("name", ""), "default");
}

TEST(SvcService, MetricsOperationExportsPrometheusDelta) {
  Service service;
  (void)service.Handle(MustParse(kDeterminedRequest));
  Response r = service.Handle(MustParse("{\"op\":\"metrics\"}"));
  ASSERT_TRUE(r.ok);
  std::optional<obs::json::Value> v = MustJson(r.result_json);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->StringOr("content_type", ""), "text/plain; version=0.0.4");
  // The body is a Prometheus text exposition; under -DVQDR_OBS=OFF the
  // macro layer records nothing and the body is legitimately empty.
  const obs::json::Value* body = v->Find("body");
  ASSERT_NE(body, nullptr);
  EXPECT_TRUE(body->IsString());
}

TEST(SvcService, SnapshotOpWithoutPathIsStructuredError) {
  Service service;  // no memo_snapshot_path, no VQDR_MEMO_SNAPSHOT
  Response r = service.Handle(MustParse("{\"op\":\"snapshot\"}"));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "no_snapshot");
}

#ifndef VQDR_MEMO_DISABLED

TEST(SvcService, SnapshotOpWritesTheConfiguredFile) {
  std::string path = ::testing::TempDir() + "vqdr_svc_snapshot_op.bin";
  std::remove(path.c_str());
  memo::GlobalStore().Clear();

  ServiceOptions options;
  options.memo_snapshot_path = path;
  Service service(options);
  EXPECT_EQ(service.memo_snapshot_path(), path);
  (void)service.Handle(MustParse(kDeterminedRequest));

  Response r = service.Handle(MustParse("{\"op\":\"snapshot\",\"id\":7}"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.id, "7");
  std::optional<obs::json::Value> v = MustJson(r.result_json);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->StringOr("path", ""), path);
  EXPECT_GE(v->IntOr("entries", 0), 1);
  EXPECT_GT(v->IntOr("bytes", 0), 0);

  struct stat st{};
  EXPECT_EQ(::stat(path.c_str(), &st), 0);
  std::remove(path.c_str());
}

// The warm-restart contract in process: service A computes and flushes at
// destruction (the SIGTERM drain path), service B boots from the snapshot
// and serves the same request byte-identically from a memo hit, never
// re-running the engine.
TEST(SvcService, WarmRestartServesByteIdenticalFromSnapshot) {
  std::string path = ::testing::TempDir() + "vqdr_svc_warm_restart.bin";
  std::remove(path.c_str());
  memo::GlobalStore().Clear();

  ServiceOptions options;
  options.memo_snapshot_path = path;
  std::string cold_result;
  {
    Service a(options);
    Response r = a.Handle(MustParse(kDeterminedRequest));
    ASSERT_TRUE(r.ok);
    cold_result = r.result_json;
  }  // destructor drain writes the final snapshot

  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0) << "drain must have flushed";

  // "Restart": the process-wide store is emptied, then service B's
  // constructor loads the snapshot back.
  memo::GlobalStore().Clear();
  ASSERT_EQ(memo::GlobalStore().size(), 0u);
  Service b(options);
  ASSERT_GE(memo::GlobalStore().size(), 1u) << "boot load restored nothing";

  memo::StatsSnapshot before = memo::GlobalStats();
  Response warm = b.Handle(MustParse(kDeterminedRequest));
  ASSERT_TRUE(warm.ok);
  memo::StatsSnapshot delta = memo::GlobalStats().Delta(before);
  EXPECT_GE(delta.hits, 1u) << "warm boot must serve from the snapshot";
  EXPECT_EQ(warm.result_json, cold_result);
  std::remove(path.c_str());
}

#endif  // VQDR_MEMO_DISABLED

}  // namespace
}  // namespace vqdr::svc
