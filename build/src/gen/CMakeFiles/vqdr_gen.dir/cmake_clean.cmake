file(REMOVE_RECURSE
  "CMakeFiles/vqdr_gen.dir/enumerate.cc.o"
  "CMakeFiles/vqdr_gen.dir/enumerate.cc.o.d"
  "CMakeFiles/vqdr_gen.dir/random_instance.cc.o"
  "CMakeFiles/vqdr_gen.dir/random_instance.cc.o.d"
  "CMakeFiles/vqdr_gen.dir/random_query.cc.o"
  "CMakeFiles/vqdr_gen.dir/random_query.cc.o.d"
  "CMakeFiles/vqdr_gen.dir/workloads.cc.o"
  "CMakeFiles/vqdr_gen.dir/workloads.cc.o.d"
  "libvqdr_gen.a"
  "libvqdr_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqdr_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
