file(REMOVE_RECURSE
  "CMakeFiles/semantic_caching.dir/semantic_caching.cpp.o"
  "CMakeFiles/semantic_caching.dir/semantic_caching.cpp.o.d"
  "semantic_caching"
  "semantic_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
