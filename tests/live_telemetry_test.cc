// Live-telemetry battery (DESIGN.md §11): per-operation context propagation,
// the in-flight op registry, exact per-op counter attribution, and the
// structured logger. Serial scenarios here; the threaded registry/logger
// battery lives in obs_stress_test.cc, and the stall watchdog scenarios in
// watchdog_test.cc.

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "core/finite_search.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "guard/budget.h"
#include "obs/context.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace vqdr {
namespace {

#ifndef VQDR_OBS_DISABLED

ConjunctiveQuery Cq(const std::string& text, NamePool& pool) {
  auto q = ParseCq(text, pool);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return q.value();
}

TEST(OpContext, ScopeBindsAndUnbindsTheThread) {
  EXPECT_EQ(obs::CurrentOpId(), 0u);
  obs::OpId seen = 0;
  {
    obs::OpScope op(obs::OpKind::kOther, "test.scope");
    seen = op.id();
    EXPECT_NE(seen, 0u);
    EXPECT_EQ(obs::CurrentOpId(), seen);
  }
  EXPECT_EQ(obs::CurrentOpId(), 0u);
  // The op is gone from the live table once the scope closes.
  EXPECT_EQ(obs::SnapshotOp(seen).id, 0u);
}

TEST(OpContext, NestedScopeIsAPassthrough) {
  obs::OpScope outer(obs::OpKind::kAnalyze, "test.outer");
  ASSERT_NE(outer.id(), 0u);
  {
    obs::OpScope inner(obs::OpKind::kSearch, "test.inner");
    // Nested engine calls do not open a second operation: attribution stays
    // with the op the caller sees.
    EXPECT_EQ(inner.id(), 0u);
    EXPECT_EQ(obs::CurrentOpId(), outer.id());
  }
  EXPECT_EQ(obs::CurrentOpId(), outer.id());
}

TEST(OpContext, OpIdsAreUniqueAndMonotone) {
  obs::OpId first = 0;
  {
    obs::OpScope a(obs::OpKind::kOther, "test.first");
    first = a.id();
  }
  obs::OpScope b(obs::OpKind::kOther, "test.second");
  EXPECT_GT(b.id(), first);
}

TEST(OpRegistry, SnapshotShowsKindLabelAndPhase) {
  obs::OpScope op(obs::OpKind::kContainment, "test.snapshot");
  obs::OpSnapshot snap = obs::SnapshotOp(op.id());
  EXPECT_EQ(snap.id, op.id());
  EXPECT_EQ(snap.kind, obs::OpKind::kContainment);
  EXPECT_EQ(snap.label, "test.snapshot");
  // Before any span, the phase is the op label itself.
  EXPECT_EQ(snap.phase, "test.snapshot");
  {
    VQDR_TRACE_SPAN("test.snapshot.phase");
    EXPECT_EQ(obs::SnapshotOp(op.id()).phase, "test.snapshot.phase");
  }
  // Span closed: phase falls back to the op label.
  EXPECT_EQ(obs::SnapshotOp(op.id()).phase, "test.snapshot");
}

TEST(OpRegistry, ThreadStacksTrackLiveSpans) {
  obs::OpScope op(obs::OpKind::kOther, "test.stacks");
  VQDR_TRACE_SPAN("test.stacks.outer");
  VQDR_TRACE_SPAN("test.stacks.inner");
  bool found = false;
  for (const obs::ThreadStackSnapshot& t : obs::SnapshotThreadStacks()) {
    if (t.op_id != op.id()) continue;
    found = true;
    ASSERT_GE(t.spans.size(), 2u);
    EXPECT_EQ(t.spans[t.spans.size() - 2], "test.stacks.outer");
    EXPECT_EQ(t.spans.back(), "test.stacks.inner");
  }
  EXPECT_TRUE(found);
}

TEST(OpRegistry, CounterDeltasAttributeToTheBoundOp) {
  obs::OpScope op(obs::OpKind::kOther, "test.attribution");
  VQDR_COUNTER_ADD("test.attr.counter", 7);
  VQDR_COUNTER_INC("test.attr.counter");
  obs::OpSnapshot snap = obs::SnapshotOp(op.id());
  auto it = snap.counters.find("test.attr.counter");
  ASSERT_NE(it, snap.counters.end());
  EXPECT_EQ(it->second, 8u);
}

TEST(OpRegistry, CounterMovementOutsideAnyOpIsNotAttributed) {
  // Move the counter with no op bound...
  VQDR_COUNTER_ADD("test.attr.unbound", 5);
  // ...then open an op: its cells must start clean.
  obs::OpScope op(obs::OpKind::kOther, "test.unbound");
  obs::OpSnapshot snap = obs::SnapshotOp(op.id());
  EXPECT_EQ(snap.counters.count("test.attr.unbound"), 0u);
}

TEST(OpRegistry, BudgetStateIsVisibleWhileInFlight) {
  guard::Budget budget(guard::BudgetSpec{.max_steps = 1000});
  obs::OpScope op(obs::OpKind::kSearch, "test.budget", &budget);
  budget.Checkpoint(12);
  obs::OpSnapshot snap = obs::SnapshotOp(op.id());
#ifndef VQDR_GUARD_DISABLED
  ASSERT_TRUE(snap.budget.present);
  EXPECT_EQ(snap.budget.steps, 12u);
  EXPECT_EQ(snap.budget.max_steps, 1000u);
  EXPECT_FALSE(snap.budget.stopped);
  // Checkpoints heartbeat the op through the guard observer seam.
  EXPECT_GE(snap.heartbeats, 12u);
#else
  EXPECT_TRUE(snap.budget.present);
#endif
}

TEST(OpRegistry, CompletedOpsAreKeptWhenAsked) {
  obs::SetKeepCompletedOps(4);
  obs::OpId id = 0;
  {
    obs::OpScope op(obs::OpKind::kChase, "test.completed");
    id = op.id();
    VQDR_COUNTER_INC("test.completed.counter");
  }
  std::vector<obs::OpSnapshot> done = obs::RecentCompletedOps();
  ASSERT_FALSE(done.empty());
  EXPECT_EQ(done.front().id, id);
  EXPECT_TRUE(done.front().done);
  EXPECT_EQ(done.front().counters.at("test.completed.counter"), 1u);
  obs::SetKeepCompletedOps(0);
  EXPECT_TRUE(obs::RecentCompletedOps().empty());
}

TEST(OpRegistry, JsonAndTextRendersCoverTheTable) {
  obs::OpScope op(obs::OpKind::kBatch, "test.render");
  VQDR_COUNTER_INC("test.render.counter");
  std::vector<obs::OpSnapshot> ops = obs::SnapshotOps();
  std::string json = obs::OpsToJson(ops);
  EXPECT_NE(json.find("\"label\":\"test.render\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"batch\""), std::string::npos);
  EXPECT_NE(json.find("\"test.render.counter\":1"), std::string::npos);
  std::string stamped = obs::OpsToJson(ops, 1754650000000ull);
  EXPECT_EQ(stamped.find("{\"event\":\"ops\",\"unix_ms\":1754650000000,"), 0u);
  std::string text = obs::RenderOpsText(ops);
  EXPECT_NE(text.find("test.render"), std::string::npos);
  EXPECT_NE(text.find("[batch]"), std::string::npos);
  EXPECT_EQ(obs::RenderOpsText({}), "ops: none in flight\n");
}

TEST(OpRegistry, TraceEventsCarryTheOpId) {
  obs::EnableTracing();
  obs::DrainTraceEvents();
  obs::OpId id = 0;
  {
    obs::OpScope op(obs::OpKind::kOther, "test.trace.op");
    id = op.id();
    VQDR_TRACE_SPAN("test.trace.span");
  }
  { VQDR_TRACE_SPAN("test.trace.outside"); }
  obs::DisableTracing();
  bool inside = false, outside = false;
  for (const obs::TraceEvent& e : obs::DrainTraceEvents()) {
    if (e.name == "test.trace.span") {
      inside = true;
      EXPECT_EQ(e.op, id);
    }
    if (e.name == "test.trace.outside") {
      outside = true;
      EXPECT_EQ(e.op, 0u);
    }
  }
  EXPECT_TRUE(inside);
  EXPECT_TRUE(outside);
}

// The deterministic end-to-end attribution identity: a serial engine call's
// per-op "search.instances" cell equals the result's own instances_examined
// tally, exactly.
TEST(OpRegistry, SerialSearchAttributesItsExactInstanceCount) {
  NamePool pool;
  ViewSet views;
  ConjunctiveQuery v = Cq("V(x) :- E(x, y)", pool);
  views.Add(v.head_name(), Query::FromCq(v));
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, y)", pool);

  obs::SetKeepCompletedOps(4);
  EnumerationOptions options;
  options.domain_size = 2;
  options.threads = 1;
  DeterminacySearchResult result = SearchDeterminacyCounterexample(
      views, Query::FromCq(q), Schema{{"E", 2}}, options);

  std::vector<obs::OpSnapshot> done = obs::RecentCompletedOps();
  obs::SetKeepCompletedOps(0);
  ASSERT_FALSE(done.empty());
  const obs::OpSnapshot& op = done.front();
  EXPECT_EQ(op.kind, obs::OpKind::kSearch);
  EXPECT_EQ(op.label, "search.determinacy");
  ASSERT_GT(result.instances_examined, 0u);
  EXPECT_EQ(op.counters.at("search.instances"), result.instances_examined);
}

TEST(ObsLog, RecordsCarryOpIdAndFields) {
  std::mutex mu;
  std::vector<std::string> lines;
  obs::SetLogCapture([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  obs::SetLogLevel(obs::LogLevel::kInfo);

  obs::OpId id = 0;
  {
    obs::OpScope op(obs::OpKind::kOther, "test.log");
    id = op.id();
    obs::LogRecord(obs::LogLevel::kInfo, "test.event")
        .Str("note", "hello \"quoted\"")
        .Num("count", 42)
        .Bool("flag", true);
    obs::LogRecord(obs::LogLevel::kDebug, "test.below.level");
  }
  obs::LogRecord(obs::LogLevel::kWarn, "test.outside");

  obs::SetLogLevel(obs::LogLevel::kOff);
  obs::SetLogCapture(nullptr);

  // The scope close also emits a built-in op.done lifecycle record — keep
  // only this test's own events (plus assert the lifecycle record showed
  // up and carried the op id).
  std::vector<std::string> done;
  std::erase_if(lines, [&](const std::string& l) {
    if (l.find("\"event\":\"op.done\"") == std::string::npos) return false;
    done.push_back(l);
    return true;
  });
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NE(done[0].find("\"op\":" + std::to_string(id) + ","),
            std::string::npos);
  EXPECT_NE(done[0].find("\"label\":\"test.log\""), std::string::npos);

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].find("{\"ts_ms\":"), 0u);
  EXPECT_NE(lines[0].find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"event\":\"test.event\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"op\":" + std::to_string(id) + ","),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"note\":\"hello \\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"count\":42"), std::string::npos);
  EXPECT_NE(lines[0].find("\"flag\":true"), std::string::npos);
  EXPECT_EQ(lines[0].back(), '}');
  // The record outside any op joins against op 0.
  EXPECT_NE(lines[1].find("\"op\":0"), std::string::npos);
}

TEST(ObsLog, RateLimitShedsAndReportsDrops) {
  std::mutex mu;
  std::vector<std::string> lines;
  obs::SetLogCapture([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  obs::SetLogLevel(obs::LogLevel::kInfo);
  obs::SetLogRateLimit(1);

  std::uint64_t dropped_before = obs::LogDroppedCount();
  for (int i = 0; i < 50; ++i) {
    obs::LogRecord(obs::LogLevel::kInfo, "test.storm").Num("i", i);
  }

  obs::SetLogRateLimit(0);  // unlimited: the next record must be admitted
  obs::LogRecord(obs::LogLevel::kInfo, "test.after.storm");
  obs::SetLogLevel(obs::LogLevel::kOff);
  obs::SetLogCapture(nullptr);
  obs::SetLogRateLimit(1000);

  // At 1 record/second the 50-record burst is almost entirely shed (the
  // whole storm, when earlier records already filled this second's window);
  // the unlimited after-storm record is always admitted.
  ASSERT_GE(lines.size(), 1u);
  EXPECT_LE(lines.size(), 5u);
  EXPECT_GT(obs::LogDroppedCount(), dropped_before);
  // The first record admitted after the storm reports what was shed.
  EXPECT_NE(lines.back().find("\"dropped\":"), std::string::npos);
}

TEST(ObsLog, DisabledLevelIsFreeAndEmitsNothing) {
  std::mutex mu;
  std::vector<std::string> lines;
  obs::SetLogCapture([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  obs::SetLogLevel(obs::LogLevel::kOff);
  obs::LogRecord(obs::LogLevel::kError, "test.never").Num("x", 1);
  obs::SetLogCapture(nullptr);
  EXPECT_TRUE(lines.empty());
}

#else  // VQDR_OBS_DISABLED

// With the obs layer compiled out the whole surface is inert stubs; assert
// the contract the engines rely on.
TEST(LiveTelemetryDisabled, StubsAreInert) {
  obs::OpScope op(obs::OpKind::kSearch, "test.disabled");
  EXPECT_EQ(op.id(), 0u);
  EXPECT_EQ(obs::CurrentOpId(), 0u);
  EXPECT_FALSE(obs::CurrentOpHandle());
  EXPECT_TRUE(obs::SnapshotOps().empty());
  EXPECT_EQ(obs::OpsToJson({}), "[]");
  EXPECT_FALSE(obs::LogEnabled(obs::LogLevel::kError));
  obs::LogRecord(obs::LogLevel::kError, "test.noop").Num("x", 1);
}

#endif  // VQDR_OBS_DISABLED

}  // namespace
}  // namespace vqdr
