#include "svc/registry.h"

namespace vqdr::svc {

void OpRegistry::Register(std::string name, Dispatch dispatch,
                          Handler handler) {
  entries_[std::move(name)] = Entry{dispatch, std::move(handler)};
}

const OpRegistry::Entry* OpRegistry::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> OpRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

}  // namespace vqdr::svc
