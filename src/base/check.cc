#include "base/check.h"

namespace vqdr::internal {

void CheckFailed(const char* file, int line, const char* cond,
                 const std::string& message) {
  std::cerr << "[vqdr] CHECK failed at " << file << ":" << line << ": " << cond;
  if (!message.empty()) {
    std::cerr << " — " << message;
  }
  std::cerr << std::endl;
  std::abort();
}

}  // namespace vqdr::internal
