# Compares two BENCH_<name>.json files (bench/bench_json.h format) and fails
# when any benchmark slowed down beyond a relative tolerance — the diff step
# behind the CI bench-baseline artifacts.
#
# Usage:
#   cmake -DBASELINE=old/BENCH_chase.json -DCURRENT=new/BENCH_chase.json \
#         [-DTOLERANCE=0.30] [-DREPORT_ONLY=ON] -P cmake/bench_compare.cmake
#
# Benchmarks are matched by name on real_time (already unit-adjusted by the
# emitter; both files must use the same units, which VQDR_BENCH_MAIN
# guarantees per bench). Names present on only one side are reported and
# skipped — adding or retiring a benchmark is not a regression. TOLERANCE is
# the allowed relative slowdown (default 0.30 = +30%, generous because CI
# machines are noisy). REPORT_ONLY=ON turns the regression verdict into a
# warning for trend-watching jobs that only archive the numbers.

cmake_minimum_required(VERSION 3.19)  # string(JSON)

if(NOT DEFINED BASELINE OR NOT DEFINED CURRENT)
  message(FATAL_ERROR "bench_compare: pass -DBASELINE=... and -DCURRENT=...")
endif()
if(NOT DEFINED TOLERANCE)
  set(TOLERANCE 0.30)
endif()

# math(EXPR) is integer-only, so times (doubles printed with %.9g, possibly
# in exponent notation) are compared as integers scaled by 1000. Returns
# trunc(value * 1000), or -1 when the string is unparsable or the scaled
# value would overflow the 64-bit cross-products below.
function(bc_millis value out_var)
  set(mantissa "${value}")
  set(exponent 0)
  if(value MATCHES "^([0-9.]+)[eE]([+-]?)0*([0-9]+)$")
    set(mantissa "${CMAKE_MATCH_1}")
    set(sign "${CMAKE_MATCH_2}")
    if(sign STREQUAL "+")
      set(sign "")
    endif()
    set(exponent "${sign}${CMAKE_MATCH_3}")
  endif()
  if(NOT mantissa MATCHES "^([0-9]+)(\\.([0-9]+))?$")
    set(${out_var} -1 PARENT_SCOPE)
    return()
  endif()
  set(digits "${CMAKE_MATCH_1}${CMAKE_MATCH_3}")
  string(LENGTH "${CMAKE_MATCH_3}" frac_len)
  # value * 1000 = digits * 10^(exponent + 3 - frac_len)
  math(EXPR shift "${exponent} + 3 - ${frac_len}")
  if(shift GREATER 0)
    string(REPEAT "0" ${shift} zeros)
    set(digits "${digits}${zeros}")
  elseif(shift LESS 0)
    string(LENGTH "${digits}" len)
    math(EXPR keep "${len} + ${shift}")
    if(keep LESS_EQUAL 0)
      set(${out_var} 0 PARENT_SCOPE)
      return()
    endif()
    string(SUBSTRING "${digits}" 0 ${keep} digits)
  endif()
  # Strip leading zeros by hand: REGEX REPLACE with a ^ anchor re-matches at
  # every scan position (pre-CMP0186 behaviour) and would mangle "0300".
  while(digits MATCHES "^0[0-9]")
    string(SUBSTRING "${digits}" 1 -1 digits)
  endwhile()
  string(LENGTH "${digits}" len)
  if(len GREATER 15)
    set(${out_var} -1 PARENT_SCOPE)
    return()
  endif()
  set(${out_var} "${digits}" PARENT_SCOPE)
endfunction()

bc_millis("${TOLERANCE}" tol_millis)
if(tol_millis LESS 0)
  message(FATAL_ERROR "bench_compare: unparsable TOLERANCE '${TOLERANCE}'")
endif()

file(READ "${BASELINE}" baseline_content)
file(READ "${CURRENT}" current_content)

string(JSON baseline_bench GET "${baseline_content}" bench)
string(JSON current_bench GET "${current_content}" bench)
if(NOT baseline_bench STREQUAL current_bench)
  message(FATAL_ERROR
    "bench_compare: comparing different benches "
    "('${baseline_bench}' vs '${current_bench}')")
endif()

# Index the baseline records by benchmark name.
string(JSON n_baseline LENGTH "${baseline_content}" benchmarks)
set(baseline_names "")
if(n_baseline GREATER 0)
  math(EXPR last "${n_baseline} - 1")
  foreach(i RANGE ${last})
    string(JSON name GET "${baseline_content}" benchmarks ${i} name)
    string(JSON rt GET "${baseline_content}" benchmarks ${i} real_time)
    string(MAKE_C_IDENTIFIER "${name}" key)
    set(baseline_rt_${key} "${rt}")
    list(APPEND baseline_names "${name}")
  endforeach()
endif()

set(regressions 0)
set(compared 0)
string(JSON n_current LENGTH "${current_content}" benchmarks)
if(n_current GREATER 0)
  math(EXPR last "${n_current} - 1")
  foreach(i RANGE ${last})
    string(JSON name GET "${current_content}" benchmarks ${i} name)
    string(JSON current_rt GET "${current_content}" benchmarks ${i} real_time)
    string(MAKE_C_IDENTIFIER "${name}" key)
    if(NOT DEFINED baseline_rt_${key})
      message(STATUS "bench_compare: ${name}: new benchmark, skipped")
      continue()
    endif()
    set(baseline_rt "${baseline_rt_${key}}")
    list(REMOVE_ITEM baseline_names "${name}")

    bc_millis("${current_rt}" current_millis)
    bc_millis("${baseline_rt}" baseline_millis)
    if(current_millis LESS 0 OR baseline_millis LESS_EQUAL 0)
      message(STATUS "bench_compare: ${name}: unusable time, skipped")
      continue()
    endif()
    math(EXPR compared "${compared} + 1")

    # Regression iff current/baseline > 1 + TOLERANCE, cross-multiplied so
    # everything stays in integers:
    #   current * 1000 > baseline * (1000 + tol_millis)
    math(EXPR lhs "${current_millis} * 1000")
    math(EXPR rhs "${baseline_millis} * (1000 + ${tol_millis})")
    if(lhs GREATER rhs)
      math(EXPR pct "(100 * ${current_millis}) / ${baseline_millis} - 100")
      math(EXPR tol_pct "${tol_millis} / 10")
      message(WARNING
        "bench_compare: ${name}: ${baseline_rt} -> ${current_rt} "
        "(+${pct}%, tolerance +${tol_pct}%)")
      math(EXPR regressions "${regressions} + 1")
    else()
      message(STATUS "bench_compare: ${name}: ${baseline_rt} -> ${current_rt} ok")
    endif()
  endforeach()
endif()

foreach(name IN LISTS baseline_names)
  message(STATUS "bench_compare: ${name}: missing from current run")
endforeach()

message(STATUS
  "bench_compare: ${compared} benchmarks compared, ${regressions} regressions")
if(regressions GREATER 0 AND NOT REPORT_ONLY)
  message(FATAL_ERROR "bench_compare: performance regression detected")
endif()
