
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/test_data.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/test_data.dir/data_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reductions/CMakeFiles/vqdr_reductions.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vqdr_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/vqdr_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/vqdr_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/views/CMakeFiles/vqdr_views.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/vqdr_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/so/CMakeFiles/vqdr_so.dir/DependInfo.cmake"
  "/root/repo/build/src/fo/CMakeFiles/vqdr_fo.dir/DependInfo.cmake"
  "/root/repo/build/src/cq/CMakeFiles/vqdr_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vqdr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/vqdr_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
