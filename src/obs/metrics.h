#ifndef VQDR_OBS_METRICS_H_
#define VQDR_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

// Process-wide counters and histograms for the solver stack.
//
// Counters are named with a dotted scheme grouping them by subsystem:
//   cq.hom.*      homomorphism search (attempts, matches)
//   cq.*          evaluation / containment machinery
//   chase.*       view-inverse chase and Theorem 3.3 chains
//   search.*      bounded finite-counterexample searches
//   rewrite.*     rewriting synthesis and the LMSS-style reference rewriter
//
// Hot paths report through the VQDR_COUNTER_* / VQDR_HISTOGRAM_RECORD macros
// (see obs/obs_macros.h), which compile to nothing under VQDR_OBS_DISABLED.
// Code whose *results* depend on a tally (e.g. instances_examined fields)
// uses the GetCounter API directly so the numbers survive a disabled build.

namespace vqdr::obs {

/// A monotone process-wide counter. Cheap: one relaxed atomic add.
class Counter {
 public:
  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Number of fixed log2 histogram buckets. Bucket 0 holds the value 0,
/// bucket i (1..30) holds values in [2^(i-1), 2^i - 1], bucket 31 is the
/// overflow tail (v >= 2^30). Fixed power-of-two boundaries keep Record at
/// one extra relaxed add (no per-histogram configuration) while covering
/// every tally the engines emit — instance sizes, chase levels, durations.
inline constexpr std::size_t kHistogramBuckets = 32;

/// Maps a recorded value to its log2 bucket index.
inline std::size_t HistogramBucketIndex(std::uint64_t v) {
  if (v == 0) return 0;
  std::size_t width = static_cast<std::size_t>(std::bit_width(v));
  return width < kHistogramBuckets - 1 ? width : kHistogramBuckets - 1;
}

/// Inclusive upper bound of bucket `i` (2^i - 1), with the overflow bucket
/// reported as UINT64_MAX. Matches the Prometheus `le` boundary per bucket.
inline std::uint64_t HistogramBucketUpperBound(std::size_t i) {
  if (i >= kHistogramBuckets - 1) return UINT64_MAX;
  return (std::uint64_t{1} << i) - 1;
}

/// A size/duration distribution: count, sum, min, max, and a fixed array of
/// log2 buckets for quantile export. Everything on the record path is a
/// relaxed atomic; bucket selection is one bit_width.
class Histogram {
 public:
  void Record(std::uint64_t v);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const { return min_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
};

/// Returns the process-wide counter registered under `name`, creating it on
/// first use. The reference stays valid for the process lifetime; call sites
/// should cache it (the VQDR_COUNTER_* macros do so in a static).
Counter& GetCounter(std::string_view name);

/// Same, for histograms.
Histogram& GetHistogram(std::string_view name);

// ---------------------------------------------------------------------------
// Per-operation attribution (the live-telemetry layer, DESIGN.md §11).
//
// Every counter also carries a small dense id. While a thread is bound to an
// in-flight operation (obs/context.h), counter movement is mirrored into
// that operation's private cell array, so the op registry can report exact
// per-op counter deltas even when many engine calls run concurrently. With
// no operation bound the mirror is one thread-local load and a branch.

/// Capacity of the per-op cell array. Counters registered beyond this many
/// distinct names still work globally but stop being attributed per-op (the
/// engines register ~30 names; 64 leaves headroom).
inline constexpr std::size_t kMaxOpCounters = 64;

/// Sentinel id for counters past the attribution capacity.
inline constexpr std::uint32_t kOpCounterUnattributed =
    static_cast<std::uint32_t>(kMaxOpCounters);

/// One operation's private counter cells, indexed by dense counter id.
struct OpMetricCells {
  std::array<std::atomic<std::uint64_t>, kMaxOpCounters> cells{};
};

namespace internal {
/// Cells of the operation the calling thread is currently bound to, or null.
/// Managed exclusively by obs/context.h scopes; everyone else reads it
/// implicitly through OpCounterAdd.
extern thread_local OpMetricCells* t_op_cells;
}  // namespace internal

/// Mirrors `n` into the bound operation's cell for counter id `id` (no-op
/// with no bound operation or an unattributed id).
inline void OpCounterAdd(std::uint32_t id, std::uint64_t n) {
  OpMetricCells* cells = internal::t_op_cells;
  if (cells != nullptr && id < kMaxOpCounters) {
    cells->cells[id].fetch_add(n, std::memory_order_relaxed);
  }
}

/// A registered counter plus its dense attribution id: Add() moves the
/// process-wide counter AND the bound operation's cell. This is what the
/// VQDR_COUNTER_* macros cache per call site; engines whose *results* read
/// tallies use it directly so per-op attribution covers those too.
class CounterSite {
 public:
  CounterSite(Counter* counter, std::uint32_t id)
      : counter_(counter), id_(id) {}

  void Add(std::uint64_t n) {
    counter_->Add(n);
    OpCounterAdd(id_, n);
  }
  void Increment() { Add(1); }

  Counter& counter() const { return *counter_; }
  std::uint32_t id() const { return id_; }

 private:
  Counter* counter_;
  std::uint32_t id_;
};

/// Registers (or finds) `name` and returns its counter + dense id.
CounterSite GetCounterSite(std::string_view name);

/// Counter names by dense id, index-aligned with OpMetricCells::cells.
/// Grows as counters register; entries never move or change.
std::vector<std::string> OpCounterNames();

/// A histogram's values at snapshot time. min is 0 when count is 0.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Upper bound of the smallest bucket whose cumulative count reaches
  /// quantile `q` (clamped to [0,1]) — a power-of-two-granular estimate,
  /// exact enough to read tail behaviour. Returns 0 when count is 0; the
  /// overflow bucket reports max rather than UINT64_MAX.
  std::uint64_t ApproxQuantile(double q) const;
};

/// A point-in-time copy of every registered metric, or (via SnapshotDelta) a
/// window of activity between two points. Attached to DeterminacyReport and
/// embedded in BENCH_*.json.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const { return counters.empty() && histograms.empty(); }

  /// "name=value name=value ..." with histograms rendered as
  /// "name{count,sum,min,max,p50,p95}" (quantiles from the log2 buckets).
  /// Deterministic (map order).
  std::string ToString() const;

  /// {"counters":{...},"histograms":{"name":{"count":..,..,"buckets":[..]},..}}
  std::string ToJson() const;
};

/// Snapshots every registered counter and histogram. Zero-valued counters
/// are included (they were touched at least once to be registered).
MetricsSnapshot SnapshotMetrics();

/// Current metrics minus `before`, dropping entries that did not move.
/// The natural way to attribute activity to one call: snapshot, run, delta.
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before);

/// Resets every registered metric to zero. Registration (and outstanding
/// references) stay valid. Intended for tests and bench warm-up isolation.
void ResetMetrics();

namespace internal {
/// Appends `s` to `out` as a double-quoted JSON string (escapes ", \, and
/// control characters). Shared by metrics, the trace sink, and the bench
/// report writer.
void AppendJsonString(std::string_view s, std::string* out);
}  // namespace internal

}  // namespace vqdr::obs

#include "obs/obs_macros.h"

#endif  // VQDR_OBS_METRICS_H_
