#ifndef VQDR_CORE_QUERY_ANSWERING_H_
#define VQDR_CORE_QUERY_ANSWERING_H_

#include <optional>
#include <utility>

#include "base/status.h"
#include "data/instance.h"
#include "views/view_set.h"

namespace vqdr {

/// The *query answering* problem of Section 5: given a view extent S in the
/// image of V, compute Q_V(S) = Q(D) for any D with V(D) = S. When views
/// are ∃FO, Lemma 5.3 bounds some pre-image by |adom(D)| ≤ k·|adom(S)|^k,
/// which puts the problem in NP ∩ co-NP (Theorem 5.2, via Fagin's theorem).
///
/// This header makes both of the paper's algorithms executable,
/// deterministically: the NP guess becomes an exhaustive pre-image search
/// over instances whose values are drawn from adom(S) plus a budgeted
/// number of fresh values.
struct QueryAnsweringOptions {
  /// Fresh values allowed beyond adom(S) in candidate pre-images. Lemma 5.3
  /// justifies k·|adom(S)|^k; callers usually know a tighter bound.
  int extra_values = 1;

  /// Cap on candidate instances examined.
  std::uint64_t max_instances = 1ull << 22;
};

/// The NP algorithm: searches for any D with V(D) = S and returns Q(D).
/// Sound for Q_V whenever V determines Q (all pre-images then agree).
/// Errors if no pre-image exists within the budget.
struct PreimageAnswer {
  Relation answer{0};
  Instance preimage{Schema{}};
  std::uint64_t instances_examined = 0;
};
StatusOr<PreimageAnswer> AnswerViaPreimage(const ViewSet& views,
                                           const Query& q, const Schema& base,
                                           const Instance& s,
                                           const QueryAnsweringOptions& opts);

/// The co-NP side: checks that *all* pre-images within the budget agree on
/// Q. A disagreement is a concrete witness that V does not determine Q.
struct PreimageAgreement {
  bool any_preimage = false;
  bool all_agree = true;
  bool exhaustive = true;
  Relation answer{0};
  std::optional<std::pair<Instance, Instance>> disagreement;
  std::uint64_t instances_examined = 0;
};
PreimageAgreement AnswerViaAllPreimages(const ViewSet& views, const Query& q,
                                        const Schema& base, const Instance& s,
                                        const QueryAnsweringOptions& opts);

/// Certain answers cert_Q(E) = ∩ { Q(D) | V(D) = E } over the budgeted
/// space (the related-work notion; equals Q_V(E) when V ↠ Q).
struct CertainAnswers {
  bool any_preimage = false;
  bool exhaustive = true;
  Relation answer{0};
  std::uint64_t instances_examined = 0;
};
CertainAnswers ComputeCertainAnswers(const ViewSet& views, const Query& q,
                                     const Schema& base, const Instance& s,
                                     const QueryAnsweringOptions& opts);

}  // namespace vqdr

#endif  // VQDR_CORE_QUERY_ANSWERING_H_
