// Coverage for the remaining public surface: Query wrapper semantics,
// ViewSet classification, twin-instance splitting, normalization
// simplifier, SO assignment budgets, UCQ minimisation corners, and search
// budget verdicts.

#include <gtest/gtest.h>

#include "core/finite_search.h"
#include "core/twin_encoding.h"
#include "cq/minimize.h"
#include "cq/parser.h"
#include "fo/normalize.h"
#include "fo/parser.h"
#include "gen/workloads.h"
#include "so/so_query.h"

namespace vqdr {
namespace {

class MiscFixture : public ::testing::Test {
 protected:
  ConjunctiveQuery Cq(const std::string& text) {
    auto q = ParseCq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message();
    return q.value();
  }
  NamePool pool_;
};

TEST_F(MiscFixture, QueryFlavourStrings) {
  EXPECT_EQ(Query::FromCq(Cq("Q(x) :- R(x)")).Flavour(), "CQ");
  EXPECT_EQ(Query::FromCq(Cq("Q(x) :- R(x), x != x")).Flavour(), "CQ!=");
  EXPECT_EQ(Query::FromCq(Cq("Q(x) :- R(x), not S(x)")).Flavour(), "CQnot");
  EXPECT_EQ(Query::FromCq(Cq("Q(x) :- R(x), x = x")).Flavour(), "CQ=");

  auto ucq = ParseUcq("Q(x) :- R(x) | Q(x) :- S(x)", pool_).value();
  EXPECT_EQ(Query::FromUcq(ucq).Flavour(), "UCQ");

  FoQuery fo;
  fo.formula = ParseFo("exists x . R(x)", pool_).value();
  EXPECT_EQ(Query::FromFo(fo).Flavour(), "existFO");
  FoQuery fo2;
  fo2.formula = ParseFo("forall x . R(x)", pool_).value();
  EXPECT_EQ(Query::FromFo(fo2).Flavour(), "FO");
}

TEST_F(MiscFixture, QueryFromFunctionEvaluates) {
  Query q = Query::FromFunction(
      0,
      [](const Instance& d) {
        Relation r(0);
        r.SetBool(d.TupleCount() % 2 == 0);
        return r;
      },
      "even tuple count");
  EXPECT_EQ(q.language(), Query::Language::kComputable);
  EXPECT_EQ(q.Flavour(), "computable");
  EXPECT_FALSE(q.IsSyntacticallyMonotone());
  Instance d(Schema{{"E", 2}});
  EXPECT_TRUE(q.Eval(d).AsBool());
  d.AddFact("E", MakeTuple({1, 2}));
  EXPECT_FALSE(q.Eval(d).AsBool());
}

TEST_F(MiscFixture, ViewSetClassification) {
  ViewSet mixed;
  mixed.Add("A", Query::FromCq(Cq("A() :- R(x)")));
  EXPECT_TRUE(mixed.AllPureCq());
  EXPECT_TRUE(mixed.AllPureUcq());
  EXPECT_TRUE(mixed.AllBoolean());
  EXPECT_TRUE(mixed.AllExistential());

  mixed.Add("B", Query::FromCq(Cq("B(x) :- R(x), x != x")));
  EXPECT_FALSE(mixed.AllPureCq());
  EXPECT_FALSE(mixed.AllBoolean());

  FoQuery univ;
  univ.formula = ParseFo("forall x . R(x)", pool_).value();
  mixed.Add("C", Query::FromFo(univ));
  EXPECT_FALSE(mixed.AllExistential());
  EXPECT_EQ(mixed.OutputSchema().ToString(), "{A/0, B/1, C/0}");
}

TEST_F(MiscFixture, SplitTwinInstanceRoundTrip) {
  Schema base{{"E", 2}};
  ViewSet views;
  views.Add("V", Query::FromCq(Cq("V(x, y) :- E(x, y)")));
  TwinEncoding encoding =
      BuildTwinEncoding(views, Query::FromCq(Cq("Q(x) :- E(x, x)")), base);

  Instance twin(encoding.twin_schema);
  twin.AddFact("one_E", MakeTuple({1, 2}));
  twin.AddFact("two_E", MakeTuple({3, 4}));
  auto [d1, d2] = SplitTwinInstance(encoding, base, twin);
  EXPECT_TRUE(d1.HasFact("E", MakeTuple({1, 2})));
  EXPECT_TRUE(d2.HasFact("E", MakeTuple({3, 4})));
  EXPECT_EQ(d1.TupleCount(), 1u);
  EXPECT_EQ(d2.TupleCount(), 1u);
}

TEST_F(MiscFixture, SimplifyDoubleNegation) {
  FoPtr f = ParseFo("!(!(R(x)))", pool_).value();
  EXPECT_EQ(SimplifyDoubleNegation(f)->ToString(), "R(x)");
  FoPtr g = ParseFo("!(!(!(R(x))))", pool_).value();
  EXPECT_EQ(SimplifyDoubleNegation(g)->ToString(), "!(R(x))");
}

TEST_F(MiscFixture, SoAssignmentBudgetEnforced) {
  // Small tuple pools but many relation variables: the product crosses
  // max_assignments.
  SoQuery q;
  q.existential = true;
  for (int i = 0; i < 4; ++i) {
    q.relation_vars.push_back({"S" + std::to_string(i), 1});
  }
  q.matrix.formula = ParseFo("exists x . S0(x)", pool_).value();
  Instance d(Schema{{"P", 1}});
  for (int i = 1; i <= 6; ++i) d.AddFact("P", Tuple{Value(i)});
  SoBudget budget;
  budget.max_assignments = 100;  // 2^6 per variable, 2^24 total
  EXPECT_FALSE(EvaluateSo(q, d, budget).ok());
}

TEST_F(MiscFixture, MinimizeUcqSingleDisjunct) {
  auto q = ParseUcq("Q(x) :- A(x), A(x)", pool_).value();
  UnionQuery min = MinimizeUcq(q);
  ASSERT_EQ(min.disjuncts().size(), 1u);
  EXPECT_EQ(min.disjuncts()[0].atoms().size(), 1u);
}

TEST_F(MiscFixture, SearchBudgetExhaustedVerdict) {
  Schema base{{"E", 2}};
  ViewSet views;
  views.Add("V", Query::FromCq(Cq("V(x, y) :- E(x, y)")));
  Query q = Query::FromCq(Cq("Q(x) :- E(x, x)"));
  EnumerationOptions options;
  options.domain_size = 2;
  options.max_instances = 3;  // cannot cover 16 instances
  auto search = SearchDeterminacyCounterexample(views, q, base, options);
  EXPECT_EQ(search.verdict, SearchVerdict::kBudgetExhausted);
}

TEST_F(MiscFixture, ChainAndStarAndCycleGenerators) {
  EXPECT_EQ(ChainQuery(3).atoms().size(), 3u);
  EXPECT_EQ(ChainQuery(3).head_arity(), 2);
  EXPECT_EQ(StarQuery(4).atoms().size(), 4u);
  EXPECT_EQ(CycleQuery(5).atoms().size(), 5u);
  EXPECT_EQ(CycleQuery(5).head_arity(), 0);
  EXPECT_EQ(PathInstance(6).Get("E").size(), 5u);
  EXPECT_EQ(PathViews(3).size(), 3u);
}

TEST_F(MiscFixture, UcqParserRejectsMixedHeads) {
  EXPECT_FALSE(ParseUcq("Q(x) :- A(x) | R(x) :- B(x)", pool_).ok());
  EXPECT_FALSE(ParseUcq("Q(x) :- A(x) | Q(x, y) :- B(x, y)", pool_).ok());
}

TEST_F(MiscFixture, PropositionViewsInViewImages) {
  ViewSet views;
  views.Add("Flag", Query::FromCq(Cq("Flag() :- E(x, y)")));
  Instance d(Schema{{"E", 2}});
  EXPECT_FALSE(views.Apply(d).Get("Flag").AsBool());
  d.AddFact("E", MakeTuple({1, 2}));
  EXPECT_TRUE(views.Apply(d).Get("Flag").AsBool());
}

}  // namespace
}  // namespace vqdr
