# Empty compiler generated dependencies file for bench_monoid.
# This may be replaced when dependencies are built.
