// E-4.6: the exact Boolean-view determinacy decision — exponential in the
// number of views (2^|V| truth patterns) and in the query's variable count
// (merge enumeration), but exact where the general problem is undecidable.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "core/boolean_views.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

ViewSet CycleViews(int count) {
  // V_i = "a directed cycle of length i exists".
  ViewSet views;
  for (int i = 1; i <= count; ++i) {
    std::string name = "V" + std::to_string(i);
    views.Add(name, Query::FromCq(CycleQuery(i, "E", name)));
  }
  return views;
}

void BM_BooleanDecisionVsViewCount(benchmark::State& state) {
  ViewSet views = CycleViews(static_cast<int>(state.range(0)));
  ConjunctiveQuery q = CycleQuery(2, "E", "Q");
  bool determined = false;
  for (auto _ : state) {
    auto result = DecideBooleanViewDeterminacy(views, q);
    determined = result.determined;
    benchmark::DoNotOptimize(result);
  }
  state.counters["views"] = static_cast<double>(state.range(0));
  state.counters["determined"] = determined ? 1 : 0;
}
BENCHMARK(BM_BooleanDecisionVsViewCount)->DenseRange(1, 4)
    ->Unit(benchmark::kMicrosecond);

void BM_BooleanDecisionVsQuerySize(benchmark::State& state) {
  ViewSet views = CycleViews(2);
  ConjunctiveQuery q = CycleQuery(static_cast<int>(state.range(0)), "E", "Q");
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideBooleanViewDeterminacy(views, q));
  }
  state.counters["query_vars"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BooleanDecisionVsQuerySize)->DenseRange(1, 4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("boolean_views");
