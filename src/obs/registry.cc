#include "obs/registry.h"

#ifndef VQDR_OBS_DISABLED

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

#include "guard/budget.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vqdr::obs {

namespace {

// Registry state, leaked so in-flight ops and thread slots stay valid
// through static destruction. Lock order where both are needed: this mutex
// first, then the metrics registry mutex (via OpCounterNames) — nothing in
// obs/metrics calls back into here.
struct RegState {
  std::mutex mu;
  OpId next_id = 1;
  // Live ops as an intrusive doubly-linked list in id (registration) order:
  // head oldest, tail newest. No per-op allocation on the register path —
  // OpScope keeps every linked slot alive until it is unlinked.
  internal::OpSlot* head = nullptr;
  internal::OpSlot* tail = nullptr;
  std::deque<OpSnapshot> completed;  // newest at front
  std::size_t keep_completed = 0;
  std::vector<internal::ThreadSlot*> threads;  // leaked, append-only

  static RegState& Get() {
    static RegState* s = new RegState;
    return *s;
  }
};

// Periodic stderr dumper. Separate mutex: Start/Stop must not contend with
// the snapshot path.
struct DumpState {
  std::mutex mu;
  std::condition_variable cv;
  std::thread worker;
  bool running = false;
  bool stop = false;

  static DumpState& Get() {
    static DumpState* s = new DumpState;
    return *s;
  }
};

std::uint64_t UnixNowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// Builds the externally visible snapshot of one live slot. Caller holds the
// registry mutex (which is what keeps slot->budget from dangling).
OpSnapshot SnapshotSlot(const internal::OpSlot& slot, std::uint64_t now_us,
                        const std::vector<std::string>& counter_names) {
  OpSnapshot s;
  s.id = slot.id;
  s.kind = slot.kind;
  s.label = slot.label;
  const char* phase = slot.phase.load(std::memory_order_relaxed);
  s.phase = phase != nullptr ? phase : "";
  s.start_us = slot.start_us;
  s.age_us = now_us >= slot.start_us ? now_us - slot.start_us : 0;
  s.heartbeats = slot.heartbeats.load(std::memory_order_relaxed);
  s.tasks = slot.tasks.load(std::memory_order_relaxed);
  if (vqdr::guard::Budget* b = slot.budget.load(std::memory_order_relaxed)) {
    s.budget.present = true;
    s.budget.stopped = b->Stopped();
    s.budget.steps = b->steps_used();
    s.budget.max_steps = b->spec().max_steps;
  }
  std::size_t n = counter_names.size();
  if (n > kMaxOpCounters) n = kMaxOpCounters;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = slot.cells.cells[i].load(std::memory_order_relaxed);
    if (v != 0) s.counters.emplace(counter_names[i], v);
  }
  return s;
}

}  // namespace

namespace internal {

void AppendOpJson(const OpSnapshot& op, std::string* out) {
  out->append("{\"op\":");
  out->append(std::to_string(op.id));
  out->append(",\"kind\":");
  internal::AppendJsonString(OpKindName(op.kind), out);
  out->append(",\"label\":");
  internal::AppendJsonString(op.label, out);
  out->append(",\"phase\":");
  internal::AppendJsonString(op.phase, out);
  out->append(",\"age_us\":");
  out->append(std::to_string(op.age_us));
  out->append(",\"heartbeats\":");
  out->append(std::to_string(op.heartbeats));
  out->append(",\"tasks\":");
  out->append(std::to_string(op.tasks));
  if (op.done) out->append(",\"done\":true");
  if (op.budget.present) {
    out->append(",\"budget\":{\"stopped\":");
    out->append(op.budget.stopped ? "true" : "false");
    out->append(",\"steps\":");
    out->append(std::to_string(op.budget.steps));
    out->append(",\"max_steps\":");
    out->append(std::to_string(op.budget.max_steps));
    out->append("}");
  }
  out->append(",\"counters\":{");
  bool first = true;
  for (const auto& [name, v] : op.counters) {
    if (!first) out->push_back(',');
    first = false;
    internal::AppendJsonString(name, out);
    out->push_back(':');
    out->append(std::to_string(v));
  }
  out->append("}}");
}

}  // namespace internal

namespace {

void EmitOpsDumpLine() {
  std::string line = OpsToJson(SnapshotOps(), UnixNowMs());
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

void DumpLoop(std::uint64_t interval_ms) {
  DumpState& d = DumpState::Get();
  std::unique_lock<std::mutex> lock(d.mu);
  while (!d.stop) {
    // Emit before waiting so even a short-lived process dumps its table at
    // least once.
    lock.unlock();
    EmitOpsDumpLine();
    lock.lock();
    d.cv.wait_for(lock, std::chrono::milliseconds(interval_ms),
                  [&] { return d.stop; });
  }
}

}  // namespace

std::uint64_t TelemetryNowUs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

namespace internal {

ThreadSlot* EnsureThreadSlot() {
  thread_local ThreadSlot* slot = nullptr;
  if (slot != nullptr) return slot;
  ThreadSlot* fresh = new ThreadSlot;  // leaked: watchdog reads after exit
  fresh->tid = CurrentTraceTid();
  RegState& r = RegState::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  r.threads.push_back(fresh);
  slot = fresh;
  return slot;
}

// One cached slot per thread so the common serial pattern — one top-level
// engine call after another on the same thread — reuses a single OpSlot
// instead of allocating per call. Reuse is only safe when nothing else still
// references the slot (use_count()==1: just this cache); pool-task handles
// or a watchdog holding the old op force a fresh allocation.
thread_local std::shared_ptr<OpSlot> t_slot_cache;

namespace {

// Fetches (or cache-reuses) a zeroed slot; the caller sets kind/label and
// finishes registration via LinkOp.
std::shared_ptr<OpSlot> AcquireOpSlot() {
  std::shared_ptr<OpSlot> slot;
  if (t_slot_cache != nullptr && t_slot_cache.use_count() == 1) {
    slot = t_slot_cache;
    slot->heartbeats.store(0, std::memory_order_relaxed);
    slot->tasks.store(0, std::memory_order_relaxed);
    for (auto& cell : slot->cells.cells) {
      cell.store(0, std::memory_order_relaxed);
    }
  } else {
    slot = std::make_shared<OpSlot>();
    t_slot_cache = slot;
  }
  return slot;
}

void LinkOp(const std::shared_ptr<OpSlot>& slot, OpKind kind,
            vqdr::guard::Budget* budget) {
  slot->kind = kind;
  slot->start_us = TelemetryNowUs();
  slot->phase.store(slot->label, std::memory_order_relaxed);
  slot->budget.store(budget, std::memory_order_relaxed);
  slot->reg_prev = nullptr;
  slot->reg_next = nullptr;
  RegState& r = RegState::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  slot->id = r.next_id++;
  slot->reg_prev = r.tail;
  if (r.tail != nullptr) {
    r.tail->reg_next = slot.get();
  } else {
    r.head = slot.get();
  }
  r.tail = slot.get();
}

}  // namespace

std::shared_ptr<OpSlot> RegisterOp(OpKind kind, const char* label,
                                   vqdr::guard::Budget* budget) {
  std::shared_ptr<OpSlot> slot = AcquireOpSlot();
  slot->owned_label.clear();
  slot->label = label != nullptr ? label : "";
  LinkOp(slot, kind, budget);
  return slot;
}

std::shared_ptr<OpSlot> RegisterOp(OpKind kind, std::string label,
                                   vqdr::guard::Budget* budget) {
  std::shared_ptr<OpSlot> slot = AcquireOpSlot();
  // The owned string backs both label and the initial phase pointer; it is
  // written only here, before the slot is linked and becomes visible to
  // snapshot readers.
  slot->owned_label = std::move(label);
  slot->label = slot->owned_label.c_str();
  LinkOp(slot, kind, budget);
  return slot;
}

void UnregisterOp(const std::shared_ptr<OpSlot>& op) {
  if (op == nullptr) return;
  RegState& r = RegState::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.keep_completed > 0) {
    // Counter names are only needed when a completed snapshot is kept;
    // fetching them here (r.mu then metrics mutex) follows the lock order
    // documented on RegState.
    OpSnapshot s = SnapshotSlot(*op, TelemetryNowUs(), OpCounterNames());
    s.done = true;
    r.completed.push_front(std::move(s));
    while (r.completed.size() > r.keep_completed) r.completed.pop_back();
  }
  // Null the caller-owned budget under the mutex: snapshots read it under
  // the same mutex, so none can observe it after the scope returns.
  op->budget.store(nullptr, std::memory_order_relaxed);
  OpSlot* slot = op.get();
  if (slot->reg_prev != nullptr) {
    slot->reg_prev->reg_next = slot->reg_next;
  } else {
    r.head = slot->reg_next;
  }
  if (slot->reg_next != nullptr) {
    slot->reg_next->reg_prev = slot->reg_prev;
  } else {
    r.tail = slot->reg_prev;
  }
  slot->reg_prev = nullptr;
  slot->reg_next = nullptr;
}

}  // namespace internal

std::vector<OpSnapshot> SnapshotOps() {
  std::vector<std::string> names = OpCounterNames();
  std::uint64_t now_us = TelemetryNowUs();
  RegState& r = RegState::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<OpSnapshot> out;
  for (internal::OpSlot* slot = r.head; slot != nullptr;
       slot = slot->reg_next) {
    out.push_back(SnapshotSlot(*slot, now_us, names));
  }
  return out;
}

OpSnapshot SnapshotOp(OpId id) {
  std::vector<std::string> names = OpCounterNames();
  std::uint64_t now_us = TelemetryNowUs();
  RegState& r = RegState::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  for (internal::OpSlot* slot = r.head; slot != nullptr;
       slot = slot->reg_next) {
    if (slot->id == id) return SnapshotSlot(*slot, now_us, names);
  }
  return {};
}

std::vector<ThreadStackSnapshot> SnapshotThreadStacks() {
  RegState& r = RegState::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<ThreadStackSnapshot> out;
  out.reserve(r.threads.size());
  for (internal::ThreadSlot* t : r.threads) {
    ThreadStackSnapshot s;
    s.tid = t->tid;
    s.op_id = t->op_id.load(std::memory_order_relaxed);
    int depth = t->depth.load(std::memory_order_acquire);
    if (depth > kThreadStackDepth) depth = kThreadStackDepth;
    for (int i = 0; i < depth; ++i) {
      const char* name = t->names[i].load(std::memory_order_relaxed);
      s.spans.emplace_back(name != nullptr ? name : "");
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadStackSnapshot& a, const ThreadStackSnapshot& b) {
              return a.tid < b.tid;
            });
  return out;
}

void SetKeepCompletedOps(std::size_t n) {
  RegState& r = RegState::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  r.keep_completed = n;
  while (r.completed.size() > n) r.completed.pop_back();
}

std::vector<OpSnapshot> RecentCompletedOps() {
  RegState& r = RegState::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  return std::vector<OpSnapshot>(r.completed.begin(), r.completed.end());
}

std::string OpsToJson(const std::vector<OpSnapshot>& ops,
                      std::uint64_t unix_ms) {
  std::string out;
  if (unix_ms != 0) {
    out.append("{\"event\":\"ops\",\"unix_ms\":");
    out.append(std::to_string(unix_ms));
    out.append(",\"ops\":");
  }
  out.push_back('[');
  bool first = true;
  for (const OpSnapshot& op : ops) {
    if (!first) out.push_back(',');
    first = false;
    internal::AppendOpJson(op, &out);
  }
  out.push_back(']');
  if (unix_ms != 0) out.push_back('}');
  return out;
}

std::string RenderOpsText(const std::vector<OpSnapshot>& ops) {
  std::string out;
  if (ops.empty()) return "ops: none in flight\n";
  char buf[256];
  for (const OpSnapshot& op : ops) {
    std::snprintf(buf, sizeof(buf),
                  "op %llu %s [%s] phase=%s age=%.1fms heartbeats=%llu",
                  static_cast<unsigned long long>(op.id), op.label.c_str(),
                  OpKindName(op.kind), op.phase.c_str(),
                  static_cast<double>(op.age_us) / 1000.0,
                  static_cast<unsigned long long>(op.heartbeats));
    out.append(buf);
    if (op.tasks != 0) {
      std::snprintf(buf, sizeof(buf), " tasks=%llu",
                    static_cast<unsigned long long>(op.tasks));
      out.append(buf);
    }
    if (op.budget.present) {
      std::snprintf(buf, sizeof(buf), " budget=%llu/%llu%s",
                    static_cast<unsigned long long>(op.budget.steps),
                    static_cast<unsigned long long>(op.budget.max_steps),
                    op.budget.stopped ? " STOPPED" : "");
      out.append(buf);
    }
    if (op.done) out.append(" done");
    out.push_back('\n');
    for (const auto& [name, v] : op.counters) {
      std::snprintf(buf, sizeof(buf), "  %s=%llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
      out.append(buf);
    }
  }
  return out;
}

bool StartOpsDump(std::uint64_t interval_ms) {
  if (interval_ms == 0) return false;
  DumpState& d = DumpState::Get();
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.running) return false;
  d.running = true;
  d.stop = false;
  d.worker = std::thread(DumpLoop, interval_ms);
  // A process can finish between the worker's ticks (or before its first
  // schedule); a final main-thread dump guarantees every dump-enabled run
  // emits at least one complete table.
  static const bool at_exit = [] {
    std::atexit([] {
      std::lock_guard<std::mutex> lock(DumpState::Get().mu);
      if (DumpState::Get().running) EmitOpsDumpLine();
    });
    return true;
  }();
  (void)at_exit;
  return true;
}

void StopOpsDump() {
  DumpState& d = DumpState::Get();
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(d.mu);
    if (!d.running) return;
    d.stop = true;
    d.cv.notify_all();
    joinable = std::move(d.worker);
    d.running = false;
  }
  joinable.join();
}

void InitOpsDumpFromEnv() {
  static const bool initialized = [] {
    const char* env = std::getenv("VQDR_OPS_DUMP_MS");
    if (env != nullptr && env[0] != '\0') {
      char* end = nullptr;
      unsigned long long ms = std::strtoull(env, &end, 10);
      if (end != nullptr && *end == '\0' && ms > 0) {
        StartOpsDump(static_cast<std::uint64_t>(ms));
      }
    }
    return true;
  }();
  (void)initialized;
}

}  // namespace vqdr::obs

#endif  // VQDR_OBS_DISABLED
