# Empty dependencies file for vqdr_fo.
# This may be replaced when dependencies are built.
