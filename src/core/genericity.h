#ifndef VQDR_CORE_GENERICITY_H_
#define VQDR_CORE_GENERICITY_H_

#include "data/instance.h"
#include "views/view_set.h"

namespace vqdr {

/// Executable checks for Proposition 4.3: when V ↠ Q, the induced mapping
/// Q_V is generic; in particular, on every instance D,
///   (i)  adom(Q(D)) ⊆ adom(V(D)), and
///   (ii) every permutation of dom that is an automorphism of V(D) is an
///        automorphism of Q(D).
/// These are necessary conditions on concrete instances — violations refute
/// determinacy outright, and the property tests sweep them across instance
/// families.

/// Check (i) on one instance.
bool CheckAnswerDomainContained(const ViewSet& views, const Query& q,
                                const Instance& d);

/// Check (ii) on one instance: enumerates the automorphisms of V(D)
/// (restricted to adom(V(D)) ∪ adom(Q(D))) and verifies each fixes Q(D)
/// setwise. Exhaustive; small instances only.
bool CheckAutomorphismsPreserved(const ViewSet& views, const Query& q,
                                 const Instance& d);

}  // namespace vqdr

#endif  // VQDR_CORE_GENERICITY_H_
