file(REMOVE_RECURSE
  "CMakeFiles/test_containment.dir/containment_test.cc.o"
  "CMakeFiles/test_containment.dir/containment_test.cc.o.d"
  "test_containment"
  "test_containment.pdb"
  "test_containment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
