# Empty dependencies file for monoid_explorer.
# This may be replaced when dependencies are built.
