// Differential battery for the parallel engines: on seeded random
// (views, query, bound) triples, every parallel code path must return
// *exactly* the serial answer — same verdict, same first counterexample,
// same examined count — at every thread count. 200 search triples plus
// containment/monotonicity/batch sweeps.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "base/rng.h"
#include "core/determinacy.h"
#include "core/determinacy_batch.h"
#include "core/finite_search.h"
#include "cq/containment.h"
#include "gen/random_query.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

// One random (V, Q, bound) triple, deterministic in the seed.
struct SearchTriple {
  ViewSet views;
  Query q{Query::FromCq(ConjunctiveQuery{"Q", {}})};
  Schema base{{"E", 2}, {"P", 1}};
  EnumerationOptions options;
};

SearchTriple MakeTriple(std::uint64_t seed) {
  Rng rng(seed);
  RandomCqOptions copts;  // schema {E/2, P/1}
  SearchTriple t;
  t.base = copts.schema;
  t.views = RandomCqViews(rng, copts, 1 + static_cast<int>(seed % 2));
  t.q = Query::FromCq(RandomCq(rng, copts));
  t.options.domain_size = 2;  // 64 instances over {E/2, P/1}
  // A third of the triples truncate the sweep, exercising the budget-merge
  // path; bounds straddle the 64-instance space on both sides.
  if (seed % 3 == 0) {
    t.options.max_instances = 1 + seed % 80;
  }
  return t;
}

void ExpectSameSearch(const DeterminacySearchResult& serial,
                      const DeterminacySearchResult& par, int threads,
                      std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message()
               << "seed " << seed << " threads " << threads);
  ASSERT_EQ(serial.verdict, par.verdict);
  EXPECT_EQ(serial.instances_examined, par.instances_examined);
  ASSERT_EQ(serial.counterexample.has_value(), par.counterexample.has_value());
  if (serial.counterexample) {
    EXPECT_EQ(serial.counterexample->d1, par.counterexample->d1);
    EXPECT_EQ(serial.counterexample->d2, par.counterexample->d2);
  }
}

class SearchDifferential : public ::testing::TestWithParam<std::uint64_t> {};

// 200 seeded triples, the battery the parallel determinacy search is
// accepted on.
INSTANTIATE_TEST_SUITE_P(Seeds, SearchDifferential,
                         ::testing::Range<std::uint64_t>(1, 201));

TEST_P(SearchDifferential, ParallelSearchMatchesSerialAtAllThreadCounts) {
  SearchTriple t = MakeTriple(GetParam());
  DeterminacySearchResult serial =
      SearchDeterminacyCounterexample(t.views, t.q, t.base, t.options);
  for (int threads : {1, 2, 8}) {
    EnumerationOptions options = t.options;
    options.threads = threads;
    DeterminacySearchResult par =
        SearchDeterminacyCounterexample(t.views, t.q, t.base, options);
    ExpectSameSearch(serial, par, threads, GetParam());
  }
}

class MonotonicityDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityDifferential,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST_P(MonotonicityDifferential, ParallelScanMatchesSerial) {
  SearchTriple t = MakeTriple(GetParam());
  MonotonicitySearchResult serial =
      SearchMonotonicityViolation(t.views, t.q, t.base, t.options);
  for (int threads : {1, 2, 8}) {
    EnumerationOptions options = t.options;
    options.threads = threads;
    MonotonicitySearchResult par =
        SearchMonotonicityViolation(t.views, t.q, t.base, options);
    SCOPED_TRACE(::testing::Message()
                 << "seed " << GetParam() << " threads " << threads);
    ASSERT_EQ(serial.verdict, par.verdict);
    EXPECT_EQ(serial.instances_examined, par.instances_examined);
    ASSERT_EQ(serial.violation.has_value(), par.violation.has_value());
    if (serial.violation) {
      EXPECT_EQ(serial.violation->d1, par.violation->d1);
      EXPECT_EQ(serial.violation->d2, par.violation->d2);
      EXPECT_EQ(serial.violation->view_image1, par.violation->view_image1);
      EXPECT_EQ(serial.violation->view_image2, par.violation->view_image2);
    }
  }
}

class ContainmentDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentDifferential,
                         ::testing::Range<std::uint64_t>(1, 81));

// Random CQ pairs with injected disequalities (forcing the
// identification-pattern sweep that actually fans out): the parallel sweep's
// verdict must equal the serial one in both directions.
TEST_P(ContainmentDifferential, ParallelSweepMatchesSerialVerdict) {
  Rng rng(GetParam() + 1000);
  RandomCqOptions copts;
  copts.max_atoms = 3;
  ConjunctiveQuery q1 = RandomCq(rng, copts);
  ConjunctiveQuery q2 = RandomCq(rng, copts);
  // Add a disequality between two drawn variables on each side (when the
  // query has at least two); identical draws make x != x, also a valid case.
  auto add_diseq = [&rng](ConjunctiveQuery& q) {
    std::vector<std::string> vars = q.AllVariables();
    if (vars.size() < 2) return;
    const std::string& a = vars[rng.Below(vars.size())];
    const std::string& b = vars[rng.Below(vars.size())];
    q.AddDisequality(Term::Var(a), Term::Var(b));
  };
  add_diseq(q1);
  if (GetParam() % 2 == 0) add_diseq(q2);

  bool serial12 = CqContainedIn(q1, q2);
  bool serial21 = CqContainedIn(q2, q1);
  for (int threads : {1, 2, 8}) {
    CqContainmentOptions options;
    options.threads = threads;
    EXPECT_EQ(CqContainedIn(q1, q2, options), serial12)
        << "seed " << GetParam() << " threads " << threads;
    EXPECT_EQ(CqContainedIn(q2, q1, options), serial21)
        << "seed " << GetParam() << " threads " << threads;
  }
}

void ExpectSameDeterminacy(const UnrestrictedDeterminacyResult& a,
                           const UnrestrictedDeterminacyResult& b) {
  EXPECT_EQ(a.determined, b.determined);
  EXPECT_EQ(a.canonical_view_image, b.canonical_view_image);
  EXPECT_EQ(a.frozen_head, b.frozen_head);
  EXPECT_EQ(a.chase_inverse, b.chase_inverse);
  ASSERT_EQ(a.canonical_rewriting.has_value(),
            b.canonical_rewriting.has_value());
  if (a.canonical_rewriting) {
    EXPECT_EQ(a.canonical_rewriting->ToString(),
              b.canonical_rewriting->ToString());
  }
}

TEST(BatchDifferential, BatchMatchesItemwiseDecisionsInOrder) {
  std::vector<DeterminacyBatchItem> items;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed);
    RandomCqOptions copts;
    DeterminacyBatchItem item;
    item.views = RandomCqViews(rng, copts, 2);
    item.query = RandomCq(rng, copts);
    items.push_back(std::move(item));
  }

  std::vector<UnrestrictedDeterminacyResult> expected;
  for (const DeterminacyBatchItem& item : items) {
    expected.push_back(DecideUnrestrictedDeterminacy(item.views, item.query));
  }

  for (int threads : {1, 2, 8}) {
    std::vector<UnrestrictedDeterminacyResult> got =
        DecideUnrestrictedDeterminacyBatch(items, threads);
    ASSERT_EQ(got.size(), expected.size()) << "threads " << threads;
    for (std::size_t i = 0; i < got.size(); ++i) {
      SCOPED_TRACE(::testing::Message()
                   << "item " << i << " threads " << threads);
      ExpectSameDeterminacy(expected[i], got[i]);
    }
  }
}

TEST(BatchDifferential, EmptyAndSingletonBatches) {
  EXPECT_TRUE(DecideUnrestrictedDeterminacyBatch({}, 8).empty());

  Rng rng(7);
  RandomCqOptions copts;
  DeterminacyBatchItem item;
  item.views = RandomCqViews(rng, copts, 1);
  item.query = RandomCq(rng, copts);
  std::vector<UnrestrictedDeterminacyResult> got =
      DecideUnrestrictedDeterminacyBatch({item}, 8);
  ASSERT_EQ(got.size(), 1u);
  ExpectSameDeterminacy(
      DecideUnrestrictedDeterminacy(item.views, item.query), got[0]);
}

// A workload with a *known* counterexample: the projection view family.
// Both engines must report the same first refuting pair on it.
TEST(SearchDifferentialFixed, ProjectionViewFirstCounterexampleAgrees) {
  Schema base{{"E", 2}};
  ViewSet views;
  {
    ConjunctiveQuery v("V", {Term::Var("x")});
    Atom a;
    a.predicate = "E";
    a.args = {Term::Var("x"), Term::Var("y")};
    v.AddAtom(a);
    views.Add("V", Query::FromCq(v));
  }
  ConjunctiveQuery q("Q", {Term::Var("x"), Term::Var("y")});
  Atom a;
  a.predicate = "E";
  a.args = {Term::Var("x"), Term::Var("y")};
  q.AddAtom(a);

  EnumerationOptions options;
  options.domain_size = 3;  // 512 instances
  DeterminacySearchResult serial = SearchDeterminacyCounterexample(
      views, Query::FromCq(q), base, options);
  ASSERT_EQ(serial.verdict, SearchVerdict::kCounterexampleFound);
  for (int threads : {2, 8}) {
    EnumerationOptions par_options = options;
    par_options.threads = threads;
    DeterminacySearchResult par = SearchDeterminacyCounterexample(
        views, Query::FromCq(q), base, par_options);
    ExpectSameSearch(serial, par, threads, 0);
  }
}

}  // namespace
}  // namespace vqdr
