#ifndef VQDR_SVC_PROTO_H_
#define VQDR_SVC_PROTO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "guard/budget.h"
#include "guard/outcome.h"

// The vqdr-serve wire protocol (DESIGN.md §13): line-delimited JSON over a
// local stream socket. One request object per line in, one response object
// per line out, same order. A request names an operation from the service's
// registry plus its payload and (optionally) its governance envelope:
//
//   {"op":"determinacy","id":1,"tenant":"gold","deadline_ms":500,
//    "views":["V1(x) :- R(x, y)"],"query":"Q(x) :- R(x, y)"}
//
// Responses always carry "ok"; successful engine responses carry the
// guard::Outcome that governed the run ("outcome") and an engine-derived
// "result" object, rejections carry a stable "code" plus, for backpressure
// ("overloaded"/"draining"), a "retry_after_ms" hint. A stopped budget is
// not an error: ok stays true, the outcome tags the exact computed prefix,
// and verdict fields appear only where they are trustworthy.

namespace vqdr::svc {

/// Hard cap on one request frame. Longer lines are rejected with code
/// "frame_too_large" and the connection resyncs at the next newline.
inline constexpr std::size_t kMaxRequestBytes = 1 << 20;

/// One (views, query) pair of a batch request, with optional per-item
/// sub-budget caps (tightened under the batch envelope).
struct BatchItem {
  std::vector<std::string> views;
  std::string query;
  guard::BudgetSpec budget;
};

/// A parsed request frame. ParseRequest validates shape (types, caps), not
/// per-operation field presence — handlers own that.
struct Request {
  /// Registry key: "parse", "containment", "chase", "determinacy", "batch",
  /// or a control operation ("health", "metrics", "ops", "stats").
  std::string op;

  /// Client correlation id, echoed verbatim: the original JSON scalar
  /// re-serialized ("" = absent).
  std::string id;

  /// Budget-class name for admission control ("" = the "default" class).
  std::string tenant;

  /// Requested governance envelope, from "deadline_ms" / "max_steps" /
  /// "max_atoms" / "max_chase_levels". Tightened against the tenant class
  /// cap at admission; the deadline is armed at admission, so queue wait
  /// counts against it (that is the point of client deadline propagation).
  guard::BudgetSpec budget;

  // Operation payloads (strings are engine-surface text, parsed by the
  // handler with a per-request NamePool so results replay byte-identically).
  std::string kind;                 // parse/containment: "cq"|"ucq"|"instance"
  std::string text;                 // parse: the text to parse
  std::string schema;               // "R/2 P/1" (chase, parse kind=instance)
  std::vector<std::string> views;   // chase/determinacy: CQ rules
  std::string query;                // chase/determinacy: CQ rule
  std::string q1, q2;               // containment operands
  int levels = 0;                   // chase: levels to build
  std::vector<BatchItem> items;     // batch
};

/// Parses one request line. Errors carry a message suitable for the
/// "bad_request" response; oversized frames fail before JSON parsing.
StatusOr<Request> ParseRequest(std::string_view line);

/// One response frame, serialized by SerializeResponse.
struct Response {
  std::string id;  // echoed request id (pre-serialized JSON, "" = omit)
  bool ok = true;

  /// Rejection code when !ok: "bad_request", "unknown_op", "overloaded",
  /// "draining", "frame_too_large", "internal".
  std::string code;
  std::string error;

  bool has_outcome = false;
  guard::Outcome outcome = guard::Outcome::kComplete;

  /// Backpressure hint for "overloaded"/"draining" rejections.
  bool has_retry = false;
  std::uint64_t retry_after_ms = 0;

  /// Serialized JSON object holding only engine-derived content — the
  /// byte-identity surface the soak test compares against direct calls.
  std::string result_json;

  /// Service-side wall time (admission to completion); outside result_json
  /// so byte-identity is not broken by timing.
  bool has_elapsed = false;
  std::uint64_t elapsed_us = 0;
};

/// Renders the response as one JSON object (no trailing newline). Field
/// order is fixed: id?, ok, code?, error?, outcome?, retry_after_ms?,
/// result?, elapsed_us?.
std::string SerializeResponse(const Response& r);

/// A !ok response with the given code/message (no retry hint).
Response ErrorResponse(std::string code, std::string message);

/// Appends `s` as a double-quoted JSON string (escapes ", \, control).
void AppendJson(std::string_view s, std::string* out);

}  // namespace vqdr::svc

#endif  // VQDR_SVC_PROTO_H_
