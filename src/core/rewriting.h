#ifndef VQDR_CORE_REWRITING_H_
#define VQDR_CORE_REWRITING_H_

#include <optional>

#include "cq/conjunctive_query.h"
#include "cq/ucq.h"
#include "gen/enumerate.h"
#include "views/view_set.h"

namespace vqdr {

/// The *expansion* of a rewriting R (a CQ over the view schema σ_V) with
/// respect to CQ views: the CQ over the base schema σ obtained by replacing
/// every view atom with a fresh copy of the view body, unifying the view
/// head with the atom's arguments. R ∘ V ≡ expansion(R) on all instances.
ConjunctiveQuery ExpandRewriting(const ConjunctiveQuery& r,
                                 const ViewSet& views);

/// Expansion of a UCQ rewriting: union of the disjuncts' expansions.
UnionQuery ExpandUcqRewriting(const UnionQuery& r, const ViewSet& views);

/// Existence and synthesis of an *equivalent* CQ rewriting — the problem of
/// Levy–Mendelzon–Sagiv–Srivastava [22], solved here via the paper's chase
/// test: an equivalent CQ rewriting exists iff the canonical rewriting Q_V
/// of Proposition 3.5 is one (any rewriting's expansion factors through
/// V_∅^{-1}(S), so Q_V works whenever anything does). Since finite and
/// unrestricted CQ equivalence coincide, the result serves both settings —
/// and by Theorem 3.3, existence is *equivalent* to unrestricted
/// determinacy.
struct CqRewritingResult {
  bool exists = false;
  /// A minimised equivalent rewriting (present iff exists).
  std::optional<ConjunctiveQuery> rewriting;
};
CqRewritingResult FindCqRewriting(const ViewSet& views,
                                  const ConjunctiveQuery& q,
                                  bool minimize = true);

/// Equivalent UCQ rewriting of a UCQ query over CQ views ([22], Thm 3.9):
/// the canonical per-disjunct rewritings work iff any UCQ rewriting does.
struct UcqRewritingResult {
  bool exists = false;
  std::optional<UnionQuery> rewriting;
};
UcqRewritingResult FindUcqRewriting(const ViewSet& views, const UnionQuery& q);

/// Semantic validation of a claimed rewriting: checks Q(D) = R(V(D)) over
/// every instance enumerated within `options`. Returns the first violating
/// D if any. This is the library's language-agnostic rewriting oracle (used
/// where the paper's arguments are non-constructive, e.g. Theorem 3.1).
struct RewritingValidation {
  bool valid = true;
  bool exhaustive = false;  // search space fully covered
  std::optional<Instance> counterexample;
};
RewritingValidation ValidateRewriting(const ViewSet& views, const Query& q,
                                      const Query& r, const Schema& base,
                                      const EnumerationOptions& options);

}  // namespace vqdr

#endif  // VQDR_CORE_REWRITING_H_
