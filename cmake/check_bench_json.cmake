# Validates a BENCH_<name>.json produced by bench/bench_json.h: it must
# parse, name the bench, carry a wall time, and report >= 3 obs counters.
# Usage: cmake -DJSON_FILE=path/to/BENCH_x.json -P check_bench_json.cmake
file(READ "${JSON_FILE}" content)
string(JSON bench_name GET "${content}" bench)
string(JSON wall_time GET "${content}" wall_time_s)
string(JSON n_counters LENGTH "${content}" obs counters)
if(n_counters LESS 3)
  message(FATAL_ERROR "${JSON_FILE}: expected >= 3 obs counters, got ${n_counters}")
endif()
message(STATUS "${JSON_FILE} ok: bench=${bench_name} wall_time_s=${wall_time} obs_counters=${n_counters}")
