file(REMOVE_RECURSE
  "CMakeFiles/bench_boolean_views.dir/bench_boolean_views.cc.o"
  "CMakeFiles/bench_boolean_views.dir/bench_boolean_views.cc.o.d"
  "bench_boolean_views"
  "bench_boolean_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_boolean_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
