file(REMOVE_RECURSE
  "CMakeFiles/vqdr_cq.dir/canonical.cc.o"
  "CMakeFiles/vqdr_cq.dir/canonical.cc.o.d"
  "CMakeFiles/vqdr_cq.dir/conjunctive_query.cc.o"
  "CMakeFiles/vqdr_cq.dir/conjunctive_query.cc.o.d"
  "CMakeFiles/vqdr_cq.dir/containment.cc.o"
  "CMakeFiles/vqdr_cq.dir/containment.cc.o.d"
  "CMakeFiles/vqdr_cq.dir/matcher.cc.o"
  "CMakeFiles/vqdr_cq.dir/matcher.cc.o.d"
  "CMakeFiles/vqdr_cq.dir/minimize.cc.o"
  "CMakeFiles/vqdr_cq.dir/minimize.cc.o.d"
  "CMakeFiles/vqdr_cq.dir/parser.cc.o"
  "CMakeFiles/vqdr_cq.dir/parser.cc.o.d"
  "CMakeFiles/vqdr_cq.dir/ucq.cc.o"
  "CMakeFiles/vqdr_cq.dir/ucq.cc.o.d"
  "libvqdr_cq.a"
  "libvqdr_cq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqdr_cq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
