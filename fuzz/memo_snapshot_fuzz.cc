// libFuzzer harness for the memo snapshot loader (memo/snapshot.h):
// DeserializeSnapshot must never crash, hang, over-allocate, or trip UB on
// ANY byte string — hostile images are the load path's daily bread, since a
// snapshot file survives process versions and disk corruption. Invariants
// checked per input:
//
//  * a rejected image (corrupt) leaves the target store EXACTLY as it was
//    (all-or-nothing install, never a partial load);
//  * an accepted image re-serializes and re-loads cleanly with the same
//    entry count (round-trip stability of everything we accepted);
//  * accepted-entry count never exceeds the image's declared count.
//
// The engine codecs (cq.v1, ucq.v1, chase.*, det.v1) register from static
// initializers in their own TUs; the reference table below forces those TUs
// out of the static archives so the fuzzer exercises the real decoders, not
// just the built-in bool codec.
//
// Built two ways by fuzz/CMakeLists.txt:
//   * fuzz_memo_snapshot (Clang + -fsanitize=fuzzer): coverage-guided;
//   * fuzz_memo_snapshot_replay (any compiler, replay_main.cc):
//     deterministic corpus replay for CI,
//     `fuzz_memo_snapshot_replay fuzz/corpus/memo_snapshot`.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "base/wire.h"
#include "chase/chain.h"
#include "chase/view_inverse.h"
#include "core/determinacy.h"
#include "cq/minimize.h"
#include "memo/snapshot.h"
#include "memo/store.h"

namespace {

// Snapshot images carry a 64 MiB per-entry cap; the interesting structure
// lives in the first few hundred bytes, so keep fuzz inputs small.
constexpr std::size_t kMaxInput = 1 << 16;

// Forces the codec-owning TUs (minimize.cc, chain.cc, view_inverse.cc,
// determinacy.cc) out of their static archives, running their registration
// initializers. Volatile so the compiler cannot drop the table.
[[maybe_unused]] void* const volatile kForceCodecRegistration[] = {
    reinterpret_cast<void*>(&vqdr::MinimizeCq),
    reinterpret_cast<void*>(
        static_cast<vqdr::ChaseChain (*)(
            const vqdr::ViewSet&, const vqdr::ConjunctiveQuery&,
            const vqdr::ChaseChainOptions&, vqdr::ValueFactory&)>(
            &vqdr::BuildChaseChain)),
    reinterpret_cast<void*>(&vqdr::ViewInverse),
    reinterpret_cast<void*>(&vqdr::DecideUnrestrictedDeterminacy),
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > kMaxInput) return 0;
  std::string_view image(reinterpret_cast<const char*>(data), size);

  // Roomy enough that a 64 KiB image (>= ~40 bytes per installable entry)
  // can never force evictions — evictions would make the size checks below
  // meaningless.
  vqdr::memo::Store store(4096);
  vqdr::memo::SnapshotIoStats stats =
      vqdr::memo::DeserializeSnapshot(image, store);

  if (stats.corrupt) {
    // All-or-nothing: a rejected image installs nothing.
    if (store.size() != 0) __builtin_trap();
    if (stats.entries != 0) __builtin_trap();
    return 0;
  }

  // Duplicate keys collapse (first install wins), so size is bounded by —
  // not equal to — the accepted-entry count.
  if (store.size() > stats.entries) __builtin_trap();

  // Whatever we accepted must survive its own round trip: serialize the
  // restored store and load that image into a second store.
  vqdr::memo::SnapshotIoStats wstats;
  std::string reimage = vqdr::memo::SerializeSnapshot(store, &wstats);
  if (wstats.entries != store.size()) __builtin_trap();
  if (wstats.skipped != 0) __builtin_trap();  // only codec'd types loaded

  vqdr::memo::Store second(4096);
  vqdr::memo::SnapshotIoStats rstats =
      vqdr::memo::DeserializeSnapshot(reimage, second);
  if (rstats.corrupt) __builtin_trap();  // we wrote a corrupt image
  if (rstats.entries != wstats.entries) __builtin_trap();
  if (rstats.skipped != 0) __builtin_trap();  // every codec round-trips
  if (second.size() != store.size()) __builtin_trap();
  return 0;
}
