#include "data/schema.h"

#include <sstream>

#include "base/check.h"

namespace vqdr {

Schema::Schema(std::initializer_list<RelationDecl> decls) {
  for (const RelationDecl& d : decls) Add(d.name, d.arity);
}

void Schema::Add(const std::string& name, int arity) {
  VQDR_CHECK_GE(arity, 0);
  for (const RelationDecl& d : decls_) {
    if (d.name == name) {
      VQDR_CHECK_EQ(d.arity, arity)
          << "relation " << name << " redeclared with different arity";
      return;
    }
  }
  decls_.push_back(RelationDecl{name, arity});
}

std::optional<int> Schema::ArityOf(const std::string& name) const {
  for (const RelationDecl& d : decls_) {
    if (d.name == name) return d.arity;
  }
  return std::nullopt;
}

Schema Schema::UnionWith(const Schema& other) const {
  Schema result = *this;
  for (const RelationDecl& d : other.decls_) result.Add(d.name, d.arity);
  return result;
}

Schema Schema::WithPrefix(const std::string& prefix) const {
  Schema result;
  for (const RelationDecl& d : decls_) result.Add(prefix + d.name, d.arity);
  return result;
}

std::string Schema::ToString() const {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    if (i > 0) out << ", ";
    out << decls_[i].name << "/" << decls_[i].arity;
  }
  out << "}";
  return out.str();
}

}  // namespace vqdr
