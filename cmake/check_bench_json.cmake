# Validates a BENCH_<name>.json produced by bench/bench_json.h: it must
# parse, name the bench, carry a wall time, and report >= 3 obs counters.
# Usage: cmake -DJSON_FILE=path/to/BENCH_x.json -P check_bench_json.cmake
#
# Optionally pass -DREQUIRE_BENCH_COUNTERS=a,b,c (comma-separated): each
# named user counter must appear in at least one benchmark record. The memo
# fixture uses this to pin hit_rate and speedup_vs_cold into BENCH_memo.json.
file(READ "${JSON_FILE}" content)
string(JSON bench_name GET "${content}" bench)
string(JSON wall_time GET "${content}" wall_time_s)
string(JSON n_counters LENGTH "${content}" obs counters)
if(n_counters LESS 3)
  message(FATAL_ERROR "${JSON_FILE}: expected >= 3 obs counters, got ${n_counters}")
endif()

if(DEFINED REQUIRE_BENCH_COUNTERS)
  string(REPLACE "," ";" required_counters "${REQUIRE_BENCH_COUNTERS}")
  string(JSON n_benchmarks LENGTH "${content}" benchmarks)
  if(n_benchmarks LESS 1)
    message(FATAL_ERROR "${JSON_FILE}: no benchmark records")
  endif()
  math(EXPR last_record "${n_benchmarks} - 1")
  foreach(counter IN LISTS required_counters)
    set(counter_found FALSE)
    foreach(i RANGE ${last_record})
      string(JSON value ERROR_VARIABLE json_error
             GET "${content}" benchmarks ${i} counters ${counter})
      if(NOT json_error)
        set(counter_found TRUE)
        message(STATUS "${JSON_FILE}: counter ${counter}=${value} (record ${i})")
        break()
      endif()
    endforeach()
    if(NOT counter_found)
      message(FATAL_ERROR
        "${JSON_FILE}: required counter '${counter}' missing from every benchmark record")
    endif()
  endforeach()
endif()

message(STATUS "${JSON_FILE} ok: bench=${bench_name} wall_time_s=${wall_time} obs_counters=${n_counters}")
