#include "cq/serialize.h"

#include <string>
#include <utility>
#include <vector>

#include "data/serialize.h"

namespace vqdr {

namespace {

constexpr std::uint8_t kTermVar = 0;
constexpr std::uint8_t kTermConst = 1;

void EncodeAtom(const Atom& atom, wire::Encoder& enc) {
  enc.Str(atom.predicate);
  enc.U64(atom.args.size());
  for (const Term& t : atom.args) EncodeTerm(t, enc);
}

bool DecodeAtom(wire::Decoder& dec, Atom* out) {
  Atom atom;
  atom.predicate = dec.Str();
  std::uint64_t args = dec.U64();
  if (!dec.ok() || atom.predicate.empty() || !dec.CheckCount(args, 2)) {
    return false;
  }
  for (std::uint64_t i = 0; i < args; ++i) {
    Term t;
    if (!DecodeTerm(dec, &t)) return false;
    atom.args.push_back(std::move(t));
  }
  *out = std::move(atom);
  return true;
}

void EncodeComparison(const TermComparison& cmp, wire::Encoder& enc) {
  EncodeTerm(cmp.lhs, enc);
  EncodeTerm(cmp.rhs, enc);
}

bool DecodeComparison(wire::Decoder& dec, TermComparison* out) {
  return DecodeTerm(dec, &out->lhs) && DecodeTerm(dec, &out->rhs);
}

}  // namespace

void EncodeTerm(const Term& term, wire::Encoder& enc) {
  if (term.is_var()) {
    enc.U8(kTermVar);
    enc.Str(term.var());
  } else {
    enc.U8(kTermConst);
    enc.I64(term.constant().id);
  }
}

bool DecodeTerm(wire::Decoder& dec, Term* out) {
  std::uint8_t kind = dec.U8();
  if (kind == kTermVar) {
    std::string name = dec.Str();
    if (!dec.ok() || name.empty()) return false;
    *out = Term::Var(std::move(name));
    return true;
  }
  if (kind == kTermConst) {
    Value v(dec.I64());
    if (!dec.ok()) return false;
    *out = Term::Const(v);
    return true;
  }
  return false;
}

void EncodeCq(const ConjunctiveQuery& q, wire::Encoder& enc) {
  enc.Str(q.head_name());
  enc.U64(q.head_terms().size());
  for (const Term& t : q.head_terms()) EncodeTerm(t, enc);
  enc.U64(q.atoms().size());
  for (const Atom& a : q.atoms()) EncodeAtom(a, enc);
  enc.U64(q.negated_atoms().size());
  for (const Atom& a : q.negated_atoms()) EncodeAtom(a, enc);
  enc.U64(q.equalities().size());
  for (const TermComparison& c : q.equalities()) EncodeComparison(c, enc);
  enc.U64(q.disequalities().size());
  for (const TermComparison& c : q.disequalities()) EncodeComparison(c, enc);
}

bool DecodeCq(wire::Decoder& dec, ConjunctiveQuery* out) {
  std::string head_name = dec.Str();
  std::uint64_t head_terms = dec.U64();
  if (!dec.ok() || head_name.empty() || !dec.CheckCount(head_terms, 2)) {
    return false;
  }
  std::vector<Term> head;
  for (std::uint64_t i = 0; i < head_terms; ++i) {
    Term t;
    if (!DecodeTerm(dec, &t)) return false;
    head.push_back(std::move(t));
  }
  ConjunctiveQuery q(std::move(head_name), std::move(head));
  std::uint64_t atoms = dec.U64();
  if (!dec.CheckCount(atoms, 10)) return false;
  for (std::uint64_t i = 0; i < atoms; ++i) {
    Atom a;
    if (!DecodeAtom(dec, &a)) return false;
    q.AddAtom(std::move(a));
  }
  std::uint64_t negated = dec.U64();
  if (!dec.CheckCount(negated, 10)) return false;
  for (std::uint64_t i = 0; i < negated; ++i) {
    Atom a;
    if (!DecodeAtom(dec, &a)) return false;
    q.AddNegatedAtom(std::move(a));
  }
  std::uint64_t equalities = dec.U64();
  if (!dec.CheckCount(equalities, 4)) return false;
  for (std::uint64_t i = 0; i < equalities; ++i) {
    TermComparison c;
    if (!DecodeComparison(dec, &c)) return false;
    q.AddEquality(std::move(c.lhs), std::move(c.rhs));
  }
  std::uint64_t disequalities = dec.U64();
  if (!dec.CheckCount(disequalities, 4)) return false;
  for (std::uint64_t i = 0; i < disequalities; ++i) {
    TermComparison c;
    if (!DecodeComparison(dec, &c)) return false;
    q.AddDisequality(std::move(c.lhs), std::move(c.rhs));
  }
  *out = std::move(q);
  return true;
}

void EncodeUcq(const UnionQuery& q, wire::Encoder& enc) {
  enc.U64(q.disjuncts().size());
  for (const ConjunctiveQuery& d : q.disjuncts()) EncodeCq(d, enc);
}

bool DecodeUcq(wire::Decoder& dec, UnionQuery* out) {
  std::uint64_t disjuncts = dec.U64();
  if (!dec.CheckCount(disjuncts, 16)) return false;
  UnionQuery q;
  for (std::uint64_t i = 0; i < disjuncts; ++i) {
    ConjunctiveQuery d;
    if (!DecodeCq(dec, &d)) return false;
    // AddDisjunct aborts on head mismatch; a forged payload must fail the
    // decode instead.
    if (!q.empty() &&
        (d.head_name() != q.head_name() ||
         d.head_arity() != q.head_arity())) {
      return false;
    }
    q.AddDisjunct(std::move(d));
  }
  *out = std::move(q);
  return true;
}

void EncodeFrozenQuery(const FrozenQuery& frozen, wire::Encoder& enc) {
  EncodeInstance(frozen.instance, enc);
  EncodeTuple(frozen.frozen_head, enc);
  enc.U64(frozen.var_to_value.size());
  for (const auto& [var, value] : frozen.var_to_value) {
    enc.Str(var);
    enc.I64(value.id);
  }
}

bool DecodeFrozenQuery(wire::Decoder& dec, FrozenQuery* out) {
  FrozenQuery frozen;
  if (!DecodeInstance(dec, &frozen.instance)) return false;
  if (!DecodeTuple(dec, &frozen.frozen_head)) return false;
  std::uint64_t vars = dec.U64();
  if (!dec.CheckCount(vars, 17)) return false;
  for (std::uint64_t i = 0; i < vars; ++i) {
    std::string var = dec.Str();
    Value value(dec.I64());
    if (!dec.ok() || var.empty()) return false;
    frozen.var_to_value[var] = value;
  }
  *out = std::move(frozen);
  return true;
}

}  // namespace vqdr
