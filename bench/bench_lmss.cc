// E-LMSS / E-5.10: the baseline equivalent-rewriting problem of
// Levy–Mendelzon–Sagiv–Srivastava [22] — NP-complete; here solved through
// the canonical-rewriting test plus greedy minimisation. The shape to
// observe: synthesis cost grows with query size and with minimisation.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "core/rewriting.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

void BM_CqRewritingSynthesis(benchmark::State& state) {
  ViewSet views = PathViews(2);
  ConjunctiveQuery q = ChainQuery(static_cast<int>(state.range(0)));
  bool exists = false;
  for (auto _ : state) {
    CqRewritingResult result = FindCqRewriting(views, q, /*minimize=*/true);
    exists = result.exists;
    benchmark::DoNotOptimize(result);
  }
  state.counters["exists"] = exists ? 1 : 0;
}
BENCHMARK(BM_CqRewritingSynthesis)->DenseRange(1, 7)
    ->Unit(benchmark::kMicrosecond);

// Existence test only (no minimisation): the decision core of [22].
void BM_CqRewritingDecisionOnly(benchmark::State& state) {
  ViewSet views = PathViews(2);
  ConjunctiveQuery q = ChainQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindCqRewriting(views, q, /*minimize=*/false));
  }
}
BENCHMARK(BM_CqRewritingDecisionOnly)->DenseRange(1, 7)
    ->Unit(benchmark::kMicrosecond);

// UCQ rewriting of a UCQ query ([22] Theorem 3.9 setting): per-disjunct
// canonical rewritings + UCQ containment.
void BM_UcqRewriting(benchmark::State& state) {
  ViewSet views = PathViews(2);
  UnionQuery q;
  for (int len = 1; len <= state.range(0); ++len) {
    q.AddDisjunct(ChainQuery(len, "E", "Q"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindUcqRewriting(views, q));
  }
  state.counters["disjuncts"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_UcqRewriting)->DenseRange(1, 5)->Unit(benchmark::kMicrosecond);

// Expansion of a rewriting: the unfolding used everywhere downstream.
void BM_ExpandRewriting(benchmark::State& state) {
  ViewSet views = PathViews(3);
  // R = P3 ∘ P3 ∘ … (range copies).
  ConjunctiveQuery r("Q", {Term::Var("x0"),
                           Term::Var("x" + std::to_string(state.range(0)))});
  for (int i = 0; i < state.range(0); ++i) {
    r.AddAtom(Atom("P3", {Term::Var("x" + std::to_string(i)),
                          Term::Var("x" + std::to_string(i + 1))}));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpandRewriting(r, views));
  }
  state.counters["view_atoms"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ExpandRewriting)->DenseRange(1, 8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("lmss");
