#ifndef VQDR_BASE_CHECK_H_
#define VQDR_BASE_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

// Internal-invariant checking macros. A failed check prints the location and
// the failing condition and aborts; they are enabled in all build modes since
// the library's correctness claims (decision procedures, reductions) rest on
// these invariants holding.

namespace vqdr::internal {

// Streams the failure message and aborts. Out-of-line so that the macro
// expansion stays small.
[[noreturn]] void CheckFailed(const char* file, int line, const char* cond,
                              const std::string& message);

// Accumulates an optional human-readable message for VQDR_CHECK << "...".
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* cond)
      : file_(file), line_(line), cond_(cond) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, cond_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* cond_;
  std::ostringstream stream_;
};

}  // namespace vqdr::internal

// VQDR_CHECK(cond) << "extra context";
#define VQDR_CHECK(cond)                                               \
  while (!(cond))                                                      \
  ::vqdr::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define VQDR_CHECK_EQ(a, b) VQDR_CHECK((a) == (b))
#define VQDR_CHECK_NE(a, b) VQDR_CHECK((a) != (b))
#define VQDR_CHECK_LT(a, b) VQDR_CHECK((a) < (b))
#define VQDR_CHECK_LE(a, b) VQDR_CHECK((a) <= (b))
#define VQDR_CHECK_GT(a, b) VQDR_CHECK((a) > (b))
#define VQDR_CHECK_GE(a, b) VQDR_CHECK((a) >= (b))

#endif  // VQDR_BASE_CHECK_H_
