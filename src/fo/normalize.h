#ifndef VQDR_FO_NORMALIZE_H_
#define VQDR_FO_NORMALIZE_H_

#include "fo/formula.h"

namespace vqdr {

/// Rewrites a formula into the {∧, ¬, ∃} fragment (plus atoms/equality/
/// true/false), eliminating ∀, ∨, →, ↔:
///
///   ∀x.ψ ⇒ ¬∃x.¬ψ      ψ∨χ ⇒ ¬(¬ψ ∧ ¬χ)
///   ψ→χ ⇒ ¬(ψ ∧ ¬χ)    ψ↔χ ⇒ (ψ→χ) ∧ (χ→ψ), then recurse
///
/// Multi-variable quantifiers are split into nested single-variable ones.
/// Used by the Theorem 5.4 construction, which is defined by structural
/// induction over this fragment.
FoPtr ToAndNotExists(const FoPtr& formula);

/// Eliminates double negations ¬¬ψ ⇒ ψ (keeps the fragment).
FoPtr SimplifyDoubleNegation(const FoPtr& formula);

}  // namespace vqdr

#endif  // VQDR_FO_NORMALIZE_H_
