# Empty compiler generated dependencies file for vqdr_chase.
# This may be replaced when dependencies are built.
