#include "guard/fault.h"

#ifndef VQDR_GUARD_FAULTS_DISABLED

#include <atomic>
#include <cstring>
#include <string>

namespace vqdr::guard {

namespace {

// One armed fault at a time. The config fields (kind/site/at_hit) are
// written only while disarmed and published by the release store of
// `armed`; probes read them after an acquire load, so the seam is
// TSAN-clean without a lock on the probe path.
struct Injector {
  std::atomic<bool> armed{false};
  FaultKind kind{FaultKind::kAllocFailure};
  std::string site;
  std::uint64_t at_hit = 0;
  std::uint64_t stall_ms = 0;  // kStall only: how long the hit sleeps
  std::atomic<std::uint64_t> probes{0};
  std::atomic<bool> fired{false};
};

Injector g_injector;

// Returns true when this probe is the armed fault's firing hit.
bool ShouldFire(FaultKind kind, const char* site) {
  Injector& g = g_injector;
  if (!g.armed.load(std::memory_order_acquire)) return false;
  if (g.kind != kind) return false;
  if (!g.site.empty() &&
      (site == nullptr || std::strcmp(site, g.site.c_str()) != 0)) {
    return false;
  }
  std::uint64_t hit = g.probes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (hit != g.at_hit) return false;
  g.fired.store(true, std::memory_order_relaxed);
  return true;
}

}  // namespace

void ArmFault(FaultKind kind, const char* site, std::uint64_t at_hit) {
  Injector& g = g_injector;
  g.armed.store(false, std::memory_order_release);
  g.kind = kind;
  g.site = site == nullptr ? "" : site;
  g.at_hit = at_hit == 0 ? 1 : at_hit;
  g.probes.store(0, std::memory_order_relaxed);
  g.fired.store(false, std::memory_order_relaxed);
  g.armed.store(true, std::memory_order_release);
}

void DisarmFaults() {
  g_injector.armed.store(false, std::memory_order_release);
}

bool FaultsArmed() {
  return g_injector.armed.load(std::memory_order_acquire);
}

std::uint64_t FaultProbes() {
  return g_injector.probes.load(std::memory_order_relaxed);
}

bool FaultFired() {
  return g_injector.fired.load(std::memory_order_relaxed);
}

void MaybeInjectThrow(FaultKind kind, const char* site) {
  if (!ShouldFire(kind, site)) return;
  if (kind == FaultKind::kAllocFailure) throw InjectedAllocFailure();
  throw InjectedTaskError();
}

bool CancelFaultDue(std::uint64_t steps_reached) {
  Injector& g = g_injector;
  if (!g.armed.load(std::memory_order_acquire)) return false;
  if (g.kind != FaultKind::kCancel) return false;
  if (steps_reached < g.at_hit) return false;
  bool expected = false;
  return g.fired.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel);
}

void ArmStallFault(std::uint64_t at_step, std::uint64_t sleep_ms) {
  ArmFault(FaultKind::kStall, nullptr, at_step);
  g_injector.stall_ms = sleep_ms;
}

std::uint64_t StallFaultDue(std::uint64_t steps_reached) {
  Injector& g = g_injector;
  if (!g.armed.load(std::memory_order_acquire)) return 0;
  if (g.kind != FaultKind::kStall) return 0;
  if (steps_reached < g.at_hit) return 0;
  bool expected = false;
  if (!g.fired.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    return 0;
  }
  return g.stall_ms;
}

}  // namespace vqdr::guard

#endif  // VQDR_GUARD_FAULTS_DISABLED
