#include "obs/explain.h"

#include <algorithm>

#include "obs/json.h"
#include "obs/metrics.h"

namespace vqdr::obs {

namespace {

// Resolves a term under the binding. Returns false (with *error) when a
// variable has no binding entry.
bool ResolveTerm(const ExplainTerm& term,
                 const std::map<std::string, std::int64_t>& binding,
                 std::int64_t* out, std::string* error) {
  if (!term.is_var) {
    *out = term.value;
    return true;
  }
  auto it = binding.find(term.var);
  if (it == binding.end()) {
    if (error != nullptr) *error = "unbound variable '" + term.var + "'";
    return false;
  }
  *out = it->second;
  return true;
}

void AppendTermJson(const ExplainTerm& term, std::string* out) {
  if (term.is_var) {
    *out += "{\"v\":";
    internal::AppendJsonString(term.var, out);
    *out += "}";
  } else {
    *out += "{\"c\":";
    *out += std::to_string(term.value);
    *out += "}";
  }
}

void AppendFactJson(const ExplainFact& fact, std::string* out) {
  *out += "{\"r\":";
  internal::AppendJsonString(fact.relation, out);
  *out += ",\"t\":[";
  for (std::size_t i = 0; i < fact.tuple.size(); ++i) {
    if (i != 0) out->push_back(',');
    *out += std::to_string(fact.tuple[i]);
  }
  *out += "]}";
}

void AppendFactsJson(const std::vector<ExplainFact>& facts, std::string* out) {
  out->push_back('[');
  for (std::size_t i = 0; i < facts.size(); ++i) {
    if (i != 0) out->push_back(',');
    AppendFactJson(facts[i], out);
  }
  out->push_back(']');
}

void AppendWitnessJson(const ExplainWitness& w, std::string* out) {
  *out += "{\"atoms\":[";
  for (std::size_t i = 0; i < w.atoms.size(); ++i) {
    if (i != 0) out->push_back(',');
    *out += "{\"p\":";
    internal::AppendJsonString(w.atoms[i].relation, out);
    *out += ",\"args\":[";
    for (std::size_t j = 0; j < w.atoms[i].args.size(); ++j) {
      if (j != 0) out->push_back(',');
      AppendTermJson(w.atoms[i].args[j], out);
    }
    *out += "]}";
  }
  *out += "],\"head\":[";
  for (std::size_t i = 0; i < w.head.size(); ++i) {
    if (i != 0) out->push_back(',');
    AppendTermJson(w.head[i], out);
  }
  *out += "]";
  if (!w.disequalities.empty()) {
    *out += ",\"diseq\":[";
    for (std::size_t i = 0; i < w.disequalities.size(); ++i) {
      if (i != 0) out->push_back(',');
      out->push_back('[');
      AppendTermJson(w.disequalities[i].first, out);
      out->push_back(',');
      AppendTermJson(w.disequalities[i].second, out);
      out->push_back(']');
    }
    *out += "]";
  }
  *out += ",\"binding\":{";
  bool first = true;
  for (const auto& [var, value] : w.binding) {
    if (!first) out->push_back(',');
    first = false;
    internal::AppendJsonString(var, out);
    out->push_back(':');
    *out += std::to_string(value);
  }
  *out += "},\"expected_head\":[";
  for (std::size_t i = 0; i < w.expected_head.size(); ++i) {
    if (i != 0) out->push_back(',');
    *out += std::to_string(w.expected_head[i]);
  }
  *out += "],\"instance\":";
  AppendFactsJson(w.instance, out);
  *out += "}";
}

void AppendEventJson(const ExplainEvent& e, std::string* out) {
  *out += "{\"kind\":";
  internal::AppendJsonString(ExplainKindName(e.kind), out);
  *out += ",\"label\":";
  internal::AppendJsonString(e.label, out);
  if (!e.detail.empty()) {
    *out += ",\"detail\":";
    internal::AppendJsonString(e.detail, out);
  }
  if (!e.stats.empty()) {
    *out += ",\"stats\":{";
    bool first = true;
    for (const auto& [name, value] : e.stats) {
      if (!first) out->push_back(',');
      first = false;
      internal::AppendJsonString(name, out);
      out->push_back(':');
      *out += std::to_string(value);
    }
    *out += "}";
  }
  if (e.witness.has_value()) {
    *out += ",\"witness\":";
    AppendWitnessJson(*e.witness, out);
  }
  if (!e.instance.empty()) {
    *out += ",\"instance\":";
    AppendFactsJson(e.instance, out);
  }
  if (!e.instance2.empty()) {
    *out += ",\"instance2\":";
    AppendFactsJson(e.instance2, out);
  }
  *out += "}";
}

// --- parsing (ToJson round trip) -------------------------------------------

bool ParseTerm(const json::Value& v, ExplainTerm* out, std::string* error) {
  if (!v.IsObject()) {
    if (error != nullptr) *error = "term is not an object";
    return false;
  }
  if (const json::Value* var = v.Find("v"); var != nullptr && var->IsString()) {
    *out = ExplainTerm::Var(var->string_value);
    return true;
  }
  if (const json::Value* c = v.Find("c"); c != nullptr && c->IsNumber()) {
    *out = ExplainTerm::Const(c->int_value);
    return true;
  }
  if (error != nullptr) *error = "term has neither \"v\" nor \"c\"";
  return false;
}

bool ParseFacts(const json::Value& v, std::vector<ExplainFact>* out,
                std::string* error) {
  if (!v.IsArray()) {
    if (error != nullptr) *error = "facts payload is not an array";
    return false;
  }
  for (const json::Value& f : v.array) {
    ExplainFact fact;
    fact.relation = f.StringOr("r", "");
    const json::Value* tuple = f.Find("t");
    if (!f.IsObject() || tuple == nullptr || !tuple->IsArray()) {
      if (error != nullptr) *error = "fact missing \"r\"/\"t\"";
      return false;
    }
    for (const json::Value& x : tuple->array) fact.tuple.push_back(x.int_value);
    out->push_back(std::move(fact));
  }
  return true;
}

bool ParseWitness(const json::Value& v, ExplainWitness* out,
                  std::string* error) {
  if (!v.IsObject()) {
    if (error != nullptr) *error = "witness is not an object";
    return false;
  }
  if (const json::Value* atoms = v.Find("atoms");
      atoms != nullptr && atoms->IsArray()) {
    for (const json::Value& a : atoms->array) {
      ExplainAtom atom;
      atom.relation = a.StringOr("p", "");
      if (const json::Value* args = a.Find("args");
          args != nullptr && args->IsArray()) {
        for (const json::Value& t : args->array) {
          ExplainTerm term;
          if (!ParseTerm(t, &term, error)) return false;
          atom.args.push_back(std::move(term));
        }
      }
      out->atoms.push_back(std::move(atom));
    }
  }
  if (const json::Value* head = v.Find("head");
      head != nullptr && head->IsArray()) {
    for (const json::Value& t : head->array) {
      ExplainTerm term;
      if (!ParseTerm(t, &term, error)) return false;
      out->head.push_back(std::move(term));
    }
  }
  if (const json::Value* diseq = v.Find("diseq");
      diseq != nullptr && diseq->IsArray()) {
    for (const json::Value& pair : diseq->array) {
      if (!pair.IsArray() || pair.array.size() != 2) {
        if (error != nullptr) *error = "diseq entry is not a pair";
        return false;
      }
      ExplainTerm a, b;
      if (!ParseTerm(pair.array[0], &a, error)) return false;
      if (!ParseTerm(pair.array[1], &b, error)) return false;
      out->disequalities.emplace_back(std::move(a), std::move(b));
    }
  }
  if (const json::Value* binding = v.Find("binding");
      binding != nullptr && binding->IsObject()) {
    for (const auto& [var, value] : binding->object) {
      out->binding[var] = value.int_value;
    }
  }
  if (const json::Value* expected = v.Find("expected_head");
      expected != nullptr && expected->IsArray()) {
    for (const json::Value& x : expected->array) {
      out->expected_head.push_back(x.int_value);
    }
  }
  if (const json::Value* instance = v.Find("instance"); instance != nullptr) {
    if (!ParseFacts(*instance, &out->instance, error)) return false;
  }
  return true;
}

}  // namespace

bool ExplainWitness::Verify(std::string* error) const {
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const ExplainAtom& atom = atoms[i];
    ExplainFact image;
    image.relation = atom.relation;
    for (const ExplainTerm& term : atom.args) {
      std::int64_t v = 0;
      if (!ResolveTerm(term, binding, &v, error)) return false;
      image.tuple.push_back(v);
    }
    if (std::find(instance.begin(), instance.end(), image) == instance.end()) {
      if (error != nullptr) {
        std::string tuple;
        for (std::int64_t v : image.tuple) {
          if (!tuple.empty()) tuple += ",";
          tuple += std::to_string(v);
        }
        *error = "atom " + std::to_string(i) + " image " + image.relation +
                 "(" + tuple + ") is not a fact of the instance";
      }
      return false;
    }
  }
  if (head.size() != expected_head.size()) {
    if (error != nullptr) *error = "head arity mismatch";
    return false;
  }
  for (std::size_t i = 0; i < head.size(); ++i) {
    std::int64_t v = 0;
    if (!ResolveTerm(head[i], binding, &v, error)) return false;
    if (v != expected_head[i]) {
      if (error != nullptr) {
        *error = "head position " + std::to_string(i) + " resolves to " +
                 std::to_string(v) + ", expected " +
                 std::to_string(expected_head[i]);
      }
      return false;
    }
  }
  for (std::size_t i = 0; i < disequalities.size(); ++i) {
    std::int64_t a = 0, b = 0;
    if (!ResolveTerm(disequalities[i].first, binding, &a, error)) return false;
    if (!ResolveTerm(disequalities[i].second, binding, &b, error)) return false;
    if (a == b) {
      if (error != nullptr) {
        *error = "disequality " + std::to_string(i) +
                 " violated: both sides resolve to " + std::to_string(a);
      }
      return false;
    }
  }
  return true;
}

const char* ExplainKindName(ExplainKind kind) {
  switch (kind) {
    case ExplainKind::kNote: return "note";
    case ExplainKind::kChaseLevel: return "chase_level";
    case ExplainKind::kDecision: return "decision";
    case ExplainKind::kWitness: return "witness";
    case ExplainKind::kRefutation: return "refutation";
    case ExplainKind::kCounterexample: return "counterexample";
    case ExplainKind::kMemo: return "memo";
    case ExplainKind::kGuard: return "guard";
  }
  return "note";
}

std::optional<ExplainKind> ExplainKindFromName(std::string_view name) {
  for (ExplainKind k :
       {ExplainKind::kNote, ExplainKind::kChaseLevel, ExplainKind::kDecision,
        ExplainKind::kWitness, ExplainKind::kRefutation,
        ExplainKind::kCounterexample, ExplainKind::kMemo,
        ExplainKind::kGuard}) {
    if (name == ExplainKindName(k)) return k;
  }
  return std::nullopt;
}

ExplainLog::ExplainLog(const ExplainLog& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  events_ = other.events_;
}

ExplainLog& ExplainLog::operator=(const ExplainLog& other) {
  if (this == &other) return *this;
  std::vector<ExplainEvent> copy;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    copy = other.events_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  events_ = std::move(copy);
  return *this;
}

ExplainLog::ExplainLog(ExplainLog&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  events_ = std::move(other.events_);
}

ExplainLog& ExplainLog::operator=(ExplainLog&& other) noexcept {
  if (this == &other) return *this;
  std::vector<ExplainEvent> moved;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    moved = std::move(other.events_);
  }
  std::lock_guard<std::mutex> lock(mu_);
  events_ = std::move(moved);
  return *this;
}

void ExplainLog::Append(ExplainEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void ExplainLog::Note(std::string label, std::string detail) {
  ExplainEvent e;
  e.kind = ExplainKind::kNote;
  e.label = std::move(label);
  e.detail = std::move(detail);
  Append(std::move(e));
}

std::size_t ExplainLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void ExplainLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::vector<ExplainEvent> ExplainLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string ExplainLog::ToJson() const {
  std::vector<ExplainEvent> snapshot = events();
  std::string out = "{\"explain\":1,\"events\":[";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (i != 0) out.push_back(',');
    AppendEventJson(snapshot[i], &out);
  }
  out += "]}";
  return out;
}

std::optional<ExplainLog> ExplainLog::FromJson(std::string_view text,
                                               std::string* error) {
  std::optional<json::Value> doc = json::Parse(text, error);
  if (!doc.has_value()) return std::nullopt;
  if (!doc->IsObject() || doc->IntOr("explain", 0) != 1) {
    if (error != nullptr) *error = "not an explain document (\"explain\":1)";
    return std::nullopt;
  }
  const json::Value* events = doc->Find("events");
  if (events == nullptr || !events->IsArray()) {
    if (error != nullptr) *error = "missing \"events\" array";
    return std::nullopt;
  }
  ExplainLog log;
  for (const json::Value& ev : events->array) {
    if (!ev.IsObject()) {
      if (error != nullptr) *error = "event is not an object";
      return std::nullopt;
    }
    ExplainEvent e;
    std::optional<ExplainKind> kind =
        ExplainKindFromName(ev.StringOr("kind", ""));
    if (!kind.has_value()) {
      if (error != nullptr) *error = "unknown event kind";
      return std::nullopt;
    }
    e.kind = *kind;
    e.label = ev.StringOr("label", "");
    e.detail = ev.StringOr("detail", "");
    if (const json::Value* stats = ev.Find("stats");
        stats != nullptr && stats->IsObject()) {
      for (const auto& [name, value] : stats->object) {
        e.stats[name] = value.int_value;
      }
    }
    if (const json::Value* witness = ev.Find("witness"); witness != nullptr) {
      ExplainWitness w;
      if (!ParseWitness(*witness, &w, error)) return std::nullopt;
      e.witness = std::move(w);
    }
    if (const json::Value* instance = ev.Find("instance");
        instance != nullptr) {
      if (!ParseFacts(*instance, &e.instance, error)) return std::nullopt;
    }
    if (const json::Value* instance2 = ev.Find("instance2");
        instance2 != nullptr) {
      if (!ParseFacts(*instance2, &e.instance2, error)) return std::nullopt;
    }
    log.Append(std::move(e));
  }
  return log;
}

}  // namespace vqdr::obs
