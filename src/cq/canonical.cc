#include "cq/canonical.h"

#include "base/check.h"
#include "cq/matcher.h"

namespace vqdr {

FrozenQuery Freeze(const ConjunctiveQuery& q, ValueFactory& factory) {
  VQDR_CHECK(q.IsPureCq()) << "Freeze requires a pure CQ: " << q.ToString();
  // Advance the factory past every constant of the query before minting
  // frozen values. Constants() deliberately scans the head and the =/≠ side
  // conditions as well as the body atoms, so a constant that appears *only*
  // in the head (legal: languages with access to dom values) can never
  // collide with a fresh frozen value either. Callers that freeze q against
  // other objects carrying constants (view definitions, partner queries)
  // must note those constants themselves — see BuildChaseChain and
  // SweepCanonicalDbs.
  for (Value c : q.Constants()) factory.NoteUsed(c);

  FrozenQuery result;
  result.instance = Instance(q.BodySchema());

  auto freeze_term = [&](const Term& t) -> Value {
    if (t.is_const()) return t.constant();
    auto it = result.var_to_value.find(t.var());
    if (it != result.var_to_value.end()) return it->second;
    Value fresh = factory.Fresh();
    result.var_to_value.emplace(t.var(), fresh);
    return fresh;
  };

  for (const Atom& atom : q.atoms()) {
    Tuple fact;
    fact.reserve(atom.args.size());
    for (const Term& t : atom.args) fact.push_back(freeze_term(t));
    result.instance.AddFact(atom.predicate, fact);
  }
  for (const Term& t : q.head_terms()) {
    // Head variables must occur in the body for safe CQs; freeze_term would
    // otherwise mint a value not present in [Q], which breaks the chase
    // machinery, so we insist on safety here.
    if (t.is_var()) {
      VQDR_CHECK(result.var_to_value.count(t.var()) > 0)
          << "unsafe head variable " << t.var();
    }
    result.frozen_head.push_back(freeze_term(t));
  }
  return result;
}

ConjunctiveQuery InstanceToQuery(const Instance& instance, const Tuple& head,
                                 const std::set<Value>& constants,
                                 const std::string& head_name) {
  // Variable naming, and why it cannot collide (the memo fingerprints key on
  // this query, so collisions would silently conflate distinct values):
  //  - Distinct non-constant values get distinct names: ids >= 0 map to
  //    "v<id>" and ids < 0 map to "vn<-(id+1)>", both injective, and the two
  //    ranges are disjoint because no decimal rendering starts with 'n'.
  //  - A generated name can never capture a constant: constants are emitted
  //    as Term::Const and compared by value id, never by name. A constant
  //    whose *interned parser name* happens to be "v7" is unrelated to the
  //    generated variable "v7" — names of parser constants live in NamePool,
  //    not in Term.
  //  - Collisions with variables of other queries are impossible because the
  //    result is a standalone query; any later combination goes through
  //    RenameVariables (e.g. ExpandRewriting renames apart with "@<copy>").
  auto to_term = [&constants](Value v) -> Term {
    if (constants.count(v) > 0) return Term::Const(v);
    if (v.id < 0) return Term::Var("vn" + std::to_string(-(v.id + 1)));
    return Term::Var("v" + std::to_string(v.id));
  };

  std::vector<Term> head_terms;
  head_terms.reserve(head.size());
  for (Value v : head) head_terms.push_back(to_term(v));

  ConjunctiveQuery q(head_name, std::move(head_terms));
  for (const RelationDecl& decl : instance.schema().decls()) {
    for (const Tuple& fact : instance.Get(decl.name).tuples()) {
      Atom atom;
      atom.predicate = decl.name;
      atom.args.reserve(fact.size());
      for (Value v : fact) atom.args.push_back(to_term(v));
      q.AddAtom(std::move(atom));
    }
  }
  return q;
}

std::optional<std::map<Value, Value>> FindInstanceHomomorphism(
    const Instance& from, const Instance& to,
    const std::map<Value, Value>& fixed, const std::set<Value>& constants,
    const MatcherOptions& matcher) {
  // Convert `from` into a set of atoms: non-constant values become variables
  // named after their id, then reuse the query matcher.
  auto var_name = [](Value v) { return "h" + std::to_string(v.id); };
  std::vector<Atom> atoms;
  for (const RelationDecl& decl : from.schema().decls()) {
    for (const Tuple& fact : from.Get(decl.name).tuples()) {
      Atom atom;
      atom.predicate = decl.name;
      for (Value v : fact) {
        if (constants.count(v) > 0) {
          atom.args.push_back(Term::Const(v));
        } else {
          atom.args.push_back(Term::Var(var_name(v)));
        }
      }
      atoms.push_back(std::move(atom));
    }
  }

  Binding initial;
  for (const auto& [source, target] : fixed) {
    if (constants.count(source) > 0) {
      // A fixed constant must map to itself; anything else is unsatisfiable.
      if (source != target) return std::nullopt;
      continue;
    }
    initial.emplace(var_name(source), target);
  }

  std::optional<Binding> found;
  ForEachMatch(
      atoms, to, initial,
      [&found](const Binding& binding) {
        found = binding;
        return false;  // first match suffices
      },
      nullptr, matcher);
  if (!found.has_value()) return std::nullopt;

  std::map<Value, Value> hom;
  for (Value v : from.ActiveDomain()) {
    if (constants.count(v) > 0) {
      hom[v] = v;
      continue;
    }
    auto it = found->find(var_name(v));
    if (it != found->end()) {
      hom[v] = it->second;
    } else {
      // Value fixed by `fixed` but not occurring in any fact.
      auto fx = fixed.find(v);
      hom[v] = fx != fixed.end() ? fx->second : v;
    }
  }
  return hom;
}

}  // namespace vqdr
