#ifndef VQDR_GEN_ENUMERATE_H_
#define VQDR_GEN_ENUMERATE_H_

#include <cstdint>
#include <functional>

#include "data/instance.h"
#include "guard/budget.h"
#include "obs/explain.h"

namespace vqdr {

/// Options bounding exhaustive instance enumeration. Enumeration over a
/// schema with relations of arities a₁..aₘ and domain size n visits
/// 2^(n^a₁ + … + n^aₘ) instances — keep n small.
struct EnumerationOptions {
  /// Values range over {1..domain_size}.
  int domain_size = 2;

  /// Hard cap on the number of instances visited; enumeration stops (and
  /// reports truncation) beyond it.
  std::uint64_t max_instances = 1ull << 22;

  /// Worker count for the bounded searches built on this enumeration
  /// (core/finite_search): 1 = the original serial code path, 0 =
  /// par::DefaultThreads(), N > 1 = shard the instance space across a
  /// work-stealing pool of N workers with a deterministic lowest-index-wins
  /// merge. Plain ForEachInstance* enumeration ignores this field.
  int threads = 1;

  /// Optional resource budget. When set, enumeration (and every search
  /// built on it) checkpoints once per instance and stops cleanly on
  /// deadline, step, memory, or cancellation; the sweep reports the stop
  /// reason instead of a covered space. nullptr = ungoverned.
  guard::Budget* budget = nullptr;

  /// Optional decision-provenance sink (DESIGN.md §10). Plain enumeration
  /// ignores it; the bounded searches in core/finite_search record a
  /// kCounterexample event (carrying both instances of the refuting pair)
  /// when a search finds one, and a kNote summarizing a clean sweep.
  obs::ExplainLog* explain = nullptr;
};

/// Result flag: did the enumeration cover the whole space?
struct EnumerationOutcome {
  bool complete = true;
  std::uint64_t visited = 0;

  /// Why the sweep ended: kComplete for a covered space or an early body
  /// stop; otherwise the budget's stop reason (max_instances truncation
  /// reports kStepBudgetExhausted).
  guard::Outcome outcome = guard::Outcome::kComplete;
};

/// Calls `body` for every instance over `schema` with active domain
/// contained in {1..domain_size}. A false return from `body` stops early
/// (outcome.complete stays true in that case — the search found what it
/// wanted). Hitting max_instances sets complete=false.
EnumerationOutcome ForEachInstance(
    const Schema& schema, const EnumerationOptions& options,
    const std::function<bool(const Instance&)>& body);

/// Same, but visits only one representative per isomorphism class
/// (deduplicated via canonical keys; costs |adom|! per instance).
EnumerationOutcome ForEachInstanceUpToIso(
    const Schema& schema, const EnumerationOptions& options,
    const std::function<bool(const Instance&)>& body);

/// Enumerates instances whose values are drawn from an explicit `universe`
/// (used by pre-image search, where view-extent values must be available).
/// `budget`, when non-null, is checkpointed once per instance.
EnumerationOutcome ForEachInstanceOver(
    const Schema& schema, const std::vector<Value>& universe,
    std::uint64_t max_instances,
    const std::function<bool(const Instance&)>& body,
    guard::Budget* budget = nullptr);

/// Random access into the instance space ForEachInstanceOver walks: the
/// cross product of per-relation tuple-subset choices, with relation 0 the
/// most significant digit and subset masks ascending. `At(k)` (and
/// `ForRange`, which visits a contiguous index window) produce exactly the
/// k-th instance ForEachInstanceOver would pass to its body — the property
/// the parallel searches rely on to shard the space across workers while
/// returning the same first counterexample as the serial sweep.
class InstanceSpace {
 public:
  InstanceSpace(const Schema& schema, const std::vector<Value>& universe);

  /// False when some relation's tuple pool has 2^63+ subsets or the total
  /// index range overflows 2^62 — the same spaces the serial enumeration
  /// refuses or can never finish. Indexed access is then unavailable and
  /// callers must fall back to the serial sweep.
  bool indexable() const { return indexable_; }

  /// Number of instances in the space. Valid only when indexable().
  std::uint64_t total() const { return total_; }

  const Schema& schema() const { return schema_; }

  /// The instance at `index` in enumeration order. Requires indexable() and
  /// index < total().
  Instance At(std::uint64_t index) const;

  /// Visits indices [begin, end) in ascending order; a false return from
  /// `body` stops early. Amortizes decoding: only relations whose subset
  /// mask changed between neighbours are rebuilt.
  void ForRange(
      std::uint64_t begin, std::uint64_t end,
      const std::function<bool(std::uint64_t, const Instance&)>& body) const;

 private:
  void DecodeMasks(std::uint64_t index, std::vector<std::uint64_t>* masks) const;
  Relation RelationForMask(std::size_t i, std::uint64_t mask) const;

  Schema schema_;
  std::vector<std::vector<Tuple>> pools_;
  bool indexable_ = true;
  std::uint64_t total_ = 1;
};

}  // namespace vqdr

#endif  // VQDR_GEN_ENUMERATE_H_
