// Differential battery for the memo subsystem: warm (cached) runs must be
// byte-identical to cold runs across thread counts, repeated warming must be
// stable, and injected faults must never leave a poisoned cache entry
// behind. One shared store serves every warm configuration, so a divergence
// anywhere — a wrong canonical key, a torn install, a replayed factory off
// by one — shows up as a field mismatch against the cold baseline.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "chase/chain.h"
#include "core/determinacy.h"
#include "core/determinacy_batch.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "gen/random_query.h"
#include "gen/workloads.h"
#include "guard/budget.h"
#include "guard/fault.h"
#include "memo/memo.h"
#include "memo/store.h"

namespace vqdr {
namespace {

// Field-by-field equality against the cold baseline; `what` labels the
// failing configuration.
void ExpectSameResult(const UnrestrictedDeterminacyResult& got,
                      const UnrestrictedDeterminacyResult& want,
                      const std::string& what) {
  EXPECT_EQ(got.determined, want.determined) << what;
  EXPECT_EQ(got.outcome, want.outcome) << what;
  EXPECT_EQ(got.canonical_view_image, want.canonical_view_image) << what;
  EXPECT_EQ(got.chase_inverse, want.chase_inverse) << what;
  EXPECT_EQ(got.frozen_head, want.frozen_head) << what;
  ASSERT_EQ(got.canonical_rewriting.has_value(),
            want.canonical_rewriting.has_value())
      << what;
  if (want.canonical_rewriting.has_value()) {
    EXPECT_EQ(got.canonical_rewriting->ToString(),
              want.canonical_rewriting->ToString())
        << what;
  }
}

std::vector<DeterminacyBatchItem> SeededItems() {
  std::vector<DeterminacyBatchItem> items;
  RandomCqOptions opts;
  opts.max_atoms = 3;
  opts.variable_pool = 3;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    DeterminacyBatchItem item;
    item.views = RandomCqViews(rng, opts, /*count=*/2);
    item.query = RandomCq(rng, opts);
    items.push_back(item);
  }
  // Duplicate the whole slate so warm runs are guaranteed repeat work: the
  // second half must be pure cache hits of the first.
  std::vector<DeterminacyBatchItem> doubled = items;
  doubled.insert(doubled.end(), items.begin(), items.end());
  return doubled;
}

TEST(MemoDifferential, BatchDeterminacyColdVsWarmAcrossThreadCounts) {
  std::vector<DeterminacyBatchItem> items = SeededItems();

  // Cold baseline: serial, memo forced off.
  memo::MemoOptions off{memo::Use::kOff, nullptr};
  std::vector<UnrestrictedDeterminacyResult> cold =
      DecideUnrestrictedDeterminacyBatch(items, /*threads=*/1, off);
  ASSERT_EQ(cold.size(), items.size());

  // Warm runs share one store across every thread count: entries installed
  // by the serial pass must replay identically under contention.
  memo::Store store(4096);
  memo::MemoOptions on{memo::Use::kOn, &store};
  for (int threads : {1, 2, 8}) {
    std::vector<UnrestrictedDeterminacyResult> warm =
        DecideUnrestrictedDeterminacyBatch(items, threads, on);
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
      ExpectSameResult(warm[i], cold[i],
                       "threads=" + std::to_string(threads) + " item " +
                           std::to_string(i));
    }
  }
  // Every item was decided or served complete; the duplicated half plus the
  // repeated thread sweeps guarantee real hit traffic.
  EXPECT_GE(store.Stats().hits, items.size());
  EXPECT_GE(store.Stats().installs, 1u);
}

TEST(MemoDifferential, ContainmentMatrixColdVsWarm) {
  // All-pairs containment over a seeded query slate, cold vs warm vs
  // double-warm. The matrix re-checks each ordered pair three times against
  // the same store, so any key collision between non-isomorphic queries
  // would flip at least one warm verdict.
  std::vector<ConjunctiveQuery> slate;
  RandomCqOptions opts;
  opts.max_atoms = 4;
  for (std::uint64_t seed = 41; seed <= 52; ++seed) {
    Rng rng(seed);
    slate.push_back(RandomCq(rng, opts));
  }
  slate.push_back(ChainQuery(2));
  slate.push_back(ChainQuery(3));
  slate.push_back(StarQuery(3));

  memo::Store store(4096);
  CqContainmentOptions warm_opts;
  warm_opts.memo = {memo::Use::kOn, &store};
  std::size_t compared = 0;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < slate.size(); ++i) {
      for (std::size_t j = 0; j < slate.size(); ++j) {
        // Containment is only defined between equal head arities.
        if (slate[i].head_arity() != slate[j].head_arity()) continue;
        bool cold = CqContainedIn(slate[i], slate[j]);
        bool warm = CqContainedIn(slate[i], slate[j], warm_opts);
        EXPECT_EQ(warm, cold)
            << "round " << round << " pair (" << i << "," << j << "): "
            << slate[i].ToString() << " ⊆? " << slate[j].ToString();
        if (round == 1) ++compared;
      }
    }
  }
  EXPECT_GE(store.Stats().hits, compared);  // round 2 is all hits
}

TEST(MemoDifferential, UcqContainmentColdVsWarm) {
  NamePool pool;
  std::vector<UnionQuery> slate;
  RandomCqOptions opts;
  opts.max_atoms = 3;
  for (std::uint64_t seed = 61; seed <= 68; ++seed) {
    Rng rng(seed);
    UnionQuery u;
    u.AddDisjunct(RandomCq(rng, opts));
    u.AddDisjunct(RandomCq(rng, opts));
    slate.push_back(u);
  }

  memo::Store store(1024);
  CqContainmentOptions warm_opts;
  warm_opts.memo = {memo::Use::kOn, &store};
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < slate.size(); ++i) {
      for (std::size_t j = 0; j < slate.size(); ++j) {
        bool cold = UcqContainedIn(slate[i], slate[j]);
        bool warm = UcqContainedIn(slate[i], slate[j], warm_opts);
        EXPECT_EQ(warm, cold) << "pair (" << i << "," << j << ")";
      }
    }
  }
  EXPECT_GE(store.Stats().hits, slate.size() * slate.size());
}

TEST(MemoDifferential, TinyCapacityThrashStillMatchesCold) {
  // A two-entry store evicts constantly; correctness must not depend on
  // entries surviving. (Perf does — that's the bench's business.)
  std::vector<ConjunctiveQuery> slate = {ChainQuery(2), ChainQuery(3),
                                         ChainQuery(4), StarQuery(2),
                                         CycleQuery(3)};
  memo::Store store(/*capacity=*/2, /*shards=*/1);
  CqContainmentOptions warm_opts;
  warm_opts.memo = {memo::Use::kOn, &store};
  for (int round = 0; round < 3; ++round) {
    for (const ConjunctiveQuery& a : slate) {
      for (const ConjunctiveQuery& b : slate) {
        if (a.head_arity() != b.head_arity()) continue;
        EXPECT_EQ(CqContainedIn(a, b, warm_opts), CqContainedIn(a, b))
            << a.ToString() << " ⊆? " << b.ToString();
      }
    }
  }
  EXPECT_GT(store.Stats().evictions, 0u);
}

#ifndef VQDR_GUARD_FAULTS_DISABLED

TEST(MemoChaos, InjectedContainmentFaultInstallsNothing) {
  // The very first pattern check throws (injected allocation failure). The
  // sweep captures it and reports kInternalError — and the memo layer must
  // refuse to install the meaningless verdict.
  ConjunctiveQuery q1 = ChainQuery(3);
  ConjunctiveQuery q2 = ChainQuery(2);

  memo::Store store(64);
  CqContainmentOptions options;
  options.memo = {memo::Use::kOn, &store};

  guard::ArmFault(guard::FaultKind::kAllocFailure, "cq.pattern", 1);
  ContainmentResult faulted = CqContainedInGoverned(q1, q2, options);
  guard::DisarmFaults();
  EXPECT_EQ(faulted.outcome, guard::Outcome::kInternalError);
  EXPECT_EQ(store.Stats().installs, 0u);
  EXPECT_EQ(store.size(), 0u);

  // With the fault disarmed the same call computes, installs, and matches
  // the ungoverned cold verdict.
  ContainmentResult clean = CqContainedInGoverned(q1, q2, options);
  EXPECT_EQ(clean.outcome, guard::Outcome::kComplete);
  EXPECT_EQ(clean.contained, CqContainedIn(q1, q2));
  EXPECT_EQ(store.Stats().installs, 1u);

  // And the cached entry serves the true verdict, not the faulted run's.
  ContainmentResult warm = CqContainedInGoverned(q1, q2, options);
  EXPECT_EQ(warm.contained, clean.contained);
  EXPECT_GE(store.Stats().hits, 1u);
}

TEST(MemoChaos, InjectedChaseFaultInstallsNothing) {
  ViewSet views = PathViews(2);
  NamePool pool;
  auto parsed = ParseCq("Q(x) :- E(x, y), E(y, z)", pool);
  ASSERT_TRUE(parsed.ok());
  ConjunctiveQuery q = parsed.value();

  memo::Store store(64);
  ChaseChainOptions options;
  options.levels = 2;
  options.memo = {memo::Use::kOn, &store};

  guard::ArmFault(guard::FaultKind::kAllocFailure, "chase.view_inverse", 2);
  ValueFactory faulted_factory;
  ChaseChain faulted = BuildChaseChain(views, q, options, faulted_factory);
  guard::DisarmFaults();
  EXPECT_NE(faulted.outcome, guard::Outcome::kComplete);
  EXPECT_EQ(store.Stats().installs, 0u);
  EXPECT_EQ(store.size(), 0u);

  // Clean replay: computes and installs; a second run hits and replays the
  // factory to the same end state.
  ValueFactory f1;
  ChaseChain clean = BuildChaseChain(views, q, options, f1);
  EXPECT_EQ(clean.outcome, guard::Outcome::kComplete);
  EXPECT_EQ(store.Stats().installs, 1u);
  ValueFactory f2;
  ChaseChain warm = BuildChaseChain(views, q, options, f2);
  EXPECT_GE(store.Stats().hits, 1u);
  EXPECT_EQ(f1.next_id(), f2.next_id());
  ASSERT_EQ(warm.d.size(), clean.d.size());
  for (std::size_t k = 0; k < clean.d.size(); ++k) {
    EXPECT_EQ(warm.d[k], clean.d[k]);
    EXPECT_EQ(warm.d_prime[k], clean.d_prime[k]);
  }
}

TEST(MemoChaos, BudgetStoppedDeterminacyInstallsNothing) {
  ViewSet views = PathViews(3);
  NamePool pool;
  auto parsed = ParseCq("Q(x, z) :- E(x, y), E(y, z)", pool);
  ASSERT_TRUE(parsed.ok());
  ConjunctiveQuery q = parsed.value();

  memo::Store store(64);
  memo::MemoOptions on{memo::Use::kOn, &store};

  // A one-step budget trips almost immediately; the stopped result must not
  // be cached.
  guard::BudgetSpec spec;
  spec.max_steps = 1;
  guard::Budget budget(spec);
  UnrestrictedDeterminacyResult stopped =
      DecideUnrestrictedDeterminacy(views, q, &budget, on);
  EXPECT_FALSE(guard::IsComplete(stopped.outcome));
  EXPECT_EQ(store.Stats().installs, 0u);

  // Ungoverned run installs the real result; a warm call replays it.
  UnrestrictedDeterminacyResult clean =
      DecideUnrestrictedDeterminacy(views, q, nullptr, on);
  EXPECT_EQ(clean.outcome, guard::Outcome::kComplete);
  EXPECT_EQ(store.Stats().installs, 1u);
  UnrestrictedDeterminacyResult warm =
      DecideUnrestrictedDeterminacy(views, q, nullptr, on);
  ExpectSameResult(warm, clean, "warm determinacy after budget-stopped run");
}

#endif  // VQDR_GUARD_FAULTS_DISABLED

}  // namespace
}  // namespace vqdr
