#include "chase/chain.h"

#include "base/check.h"
#include "chase/view_inverse.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace vqdr {

ChaseChain BuildChaseChain(const ViewSet& views, const ConjunctiveQuery& q,
                           int levels, ValueFactory& factory) {
  VQDR_COUNTER_INC("chase.chain.builds");
  VQDR_TRACE_SPAN("chase.chain", levels);
  VQDR_CHECK(views.AllPureCq()) << "chase chain requires pure CQ views";
  VQDR_CHECK(q.IsPureCq()) << "chase chain requires a pure CQ query";
  VQDR_CHECK_GE(levels, 0);

  ChaseChain chain;
  chain.frozen_query = Freeze(q, factory);

  // Level 0.
  Schema chase_schema = ChaseSchema(views, chain.frozen_query.instance.schema());
  Instance d0(chase_schema);
  for (const RelationDecl& decl : chain.frozen_query.instance.schema().decls()) {
    d0.Set(decl.name, chain.frozen_query.instance.Get(decl.name));
  }
  chain.d.push_back(d0);
  chain.s.push_back(views.Apply(d0));
  chain.s_prime.push_back(Instance(views.OutputSchema()));  // S'_0 = ∅
  Instance empty(chase_schema);
  chain.d_prime.push_back(ViewInverse(views, empty, chain.s[0], factory));

  for (int k = 0; k < levels; ++k) {
    VQDR_COUNTER_INC("chase.chain.levels");
    VQDR_TRACE_SPAN("chase.level", k + 1);
    // S'_{k+1} = V(D'_k)
    chain.s_prime.push_back(views.Apply(chain.d_prime[k]));
    // D_{k+1} = V_{D_k}^{-1}(S'_{k+1})
    chain.d.push_back(
        ViewInverse(views, chain.d[k], chain.s_prime[k + 1], factory));
    // S_{k+1} = V(D_{k+1})
    chain.s.push_back(views.Apply(chain.d[k + 1]));
    // D'_{k+1} = V_{D'_k}^{-1}(S_{k+1})
    chain.d_prime.push_back(
        ViewInverse(views, chain.d_prime[k], chain.s[k + 1], factory));
    VQDR_HISTOGRAM_RECORD("chase.chain.level_size",
                          chain.d[k + 1].TupleCount());
    // Chain levels grow doubly fast; report each one so a deep build stays
    // visibly alive. A false return asks us to stop at the level boundary.
    if (!obs::ReportProgress("chase.level", static_cast<std::uint64_t>(k + 1),
                             static_cast<std::uint64_t>(levels))) {
      break;
    }
  }
  return chain;
}

}  // namespace vqdr
