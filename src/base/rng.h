#ifndef VQDR_BASE_RNG_H_
#define VQDR_BASE_RNG_H_

#include <cstdint>

namespace vqdr {

/// Deterministic, seedable pseudo-random generator (splitmix64). Used by the
/// random-instance generators and property tests; deterministic seeds keep
/// every test and benchmark reproducible across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability numerator/denominator.
  bool Chance(std::uint64_t numerator, std::uint64_t denominator) {
    return Below(denominator) < numerator;
  }

 private:
  std::uint64_t state_;
};

}  // namespace vqdr

#endif  // VQDR_BASE_RNG_H_
