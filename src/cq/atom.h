#ifndef VQDR_CQ_ATOM_H_
#define VQDR_CQ_ATOM_H_

#include <string>
#include <vector>

#include "cq/term.h"

namespace vqdr {

/// A relational atom R(t1, …, tk).
struct Atom {
  std::string predicate;
  std::vector<Term> args;

  Atom() = default;
  Atom(std::string predicate, std::vector<Term> args)
      : predicate(std::move(predicate)), args(std::move(args)) {}

  int arity() const { return static_cast<int>(args.size()); }

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate == b.predicate && a.args == b.args;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    return a.args < b.args;
  }

  /// "R(x, 'c')".
  std::string ToString() const;
};

/// An equality or disequality between two terms (for CQ= / CQ≠).
struct TermComparison {
  Term lhs;
  Term rhs;

  friend bool operator==(const TermComparison& a, const TermComparison& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
};

}  // namespace vqdr

#endif  // VQDR_CQ_ATOM_H_
