#include "core/determinacy_batch.h"

#include <atomic>
#include <cstdint>

#include "obs/progress.h"
#include "obs/trace.h"

#ifndef VQDR_PAR_DISABLED
#include "par/pool.h"
#endif

namespace vqdr {

std::vector<UnrestrictedDeterminacyResult> DecideUnrestrictedDeterminacyBatch(
    const std::vector<DeterminacyBatchItem>& items, int threads) {
  VQDR_TRACE_SPAN("determinacy.batch");
  std::vector<UnrestrictedDeterminacyResult> results(items.size());
  const std::uint64_t total = items.size();

#ifndef VQDR_PAR_DISABLED
  if (threads == 0) threads = par::DefaultThreads();
  if (threads > 1 && items.size() > 1) {
    std::atomic<std::uint64_t> done{0};
    par::ThreadPool pool(threads);
    for (std::size_t i = 0; i < items.size(); ++i) {
      pool.Submit([&items, &results, &done, total, i] {
        results[i] =
            DecideUnrestrictedDeterminacy(items[i].views, items[i].query);
        std::uint64_t completed =
            done.fetch_add(1, std::memory_order_acq_rel) + 1;
        // Progress only: a half-decided batch has no sound meaning, so a
        // false (cancel-requesting) return is deliberately ignored.
        obs::ReportProgress("determinacy.batch", completed, total);
      });
    }
    pool.Wait();
    return results;
  }
#endif

  for (std::size_t i = 0; i < items.size(); ++i) {
    results[i] = DecideUnrestrictedDeterminacy(items[i].views, items[i].query);
    obs::ReportProgress("determinacy.batch", i + 1, total);
  }
  return results;
}

}  // namespace vqdr
