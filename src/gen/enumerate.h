#ifndef VQDR_GEN_ENUMERATE_H_
#define VQDR_GEN_ENUMERATE_H_

#include <cstdint>
#include <functional>

#include "data/instance.h"

namespace vqdr {

/// Options bounding exhaustive instance enumeration. Enumeration over a
/// schema with relations of arities a₁..aₘ and domain size n visits
/// 2^(n^a₁ + … + n^aₘ) instances — keep n small.
struct EnumerationOptions {
  /// Values range over {1..domain_size}.
  int domain_size = 2;

  /// Hard cap on the number of instances visited; enumeration stops (and
  /// reports truncation) beyond it.
  std::uint64_t max_instances = 1ull << 22;
};

/// Result flag: did the enumeration cover the whole space?
struct EnumerationOutcome {
  bool complete = true;
  std::uint64_t visited = 0;
};

/// Calls `body` for every instance over `schema` with active domain
/// contained in {1..domain_size}. A false return from `body` stops early
/// (outcome.complete stays true in that case — the search found what it
/// wanted). Hitting max_instances sets complete=false.
EnumerationOutcome ForEachInstance(
    const Schema& schema, const EnumerationOptions& options,
    const std::function<bool(const Instance&)>& body);

/// Same, but visits only one representative per isomorphism class
/// (deduplicated via canonical keys; costs |adom|! per instance).
EnumerationOutcome ForEachInstanceUpToIso(
    const Schema& schema, const EnumerationOptions& options,
    const std::function<bool(const Instance&)>& body);

/// Enumerates instances whose values are drawn from an explicit `universe`
/// (used by pre-image search, where view-extent values must be available).
EnumerationOutcome ForEachInstanceOver(
    const Schema& schema, const std::vector<Value>& universe,
    std::uint64_t max_instances,
    const std::function<bool(const Instance&)>& body);

}  // namespace vqdr

#endif  // VQDR_GEN_ENUMERATE_H_
