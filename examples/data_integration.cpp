// Local-as-view data integration (the paper's first motivating scenario):
// data sources are described as views over a virtual global schema; a user
// query against the global schema is answered by rewriting it over the
// sources — exactly when the sources determine it.
//
// Build & run:  ./build/examples/data_integration

#include <iostream>
#include <vector>

#include "core/determinacy.h"
#include "core/query_answering.h"
#include "core/rewriting.h"
#include "cq/matcher.h"
#include "cq/parser.h"

using namespace vqdr;

int main() {
  NamePool pool;

  // Global (virtual) schema: Flight(from, to), Airline(from, to, carrier).
  Schema global{{"Flight", 2}, {"Airline", 3}};

  // Three autonomous sources, described as exact views (LAV).
  ViewSet sources;
  sources.Add("S_direct", Query::FromCq(
                              ParseCq("S_direct(x, y) :- Flight(x, y)", pool)
                                  .value()));
  sources.Add(
      "S_hops",
      Query::FromCq(
          ParseCq("S_hops(x, y) :- Flight(x, z), Flight(z, y)", pool)
              .value()));
  sources.Add(
      "S_carriers",
      Query::FromCq(
          ParseCq("S_carriers(c) :- Airline(x, y, c)", pool).value()));

  std::cout << "Source descriptions (LAV):\n" << sources.ToString() << "\n";

  // The sources' actual contents come from some global database the
  // mediator never sees.
  Instance hidden_global =
      ParseInstance("Flight(lis, cdg), Flight(cdg, sfo), Flight(sfo, nrt), "
                    "Airline(lis, cdg, tap), Airline(cdg, sfo, afr)",
                    global, pool)
          .value();
  Instance source_extents = sources.Apply(hidden_global);

  std::vector<std::string> user_queries = {
      // Three-hop itineraries: rewritable as S_direct ∘ S_hops.
      "Q(x, y) :- Flight(x, a), Flight(a, b), Flight(b, y)",
      // Direct flights: trivially the first source.
      "Q(x, y) :- Flight(x, y)",
      // Which airports have outgoing flights on some carrier: NOT
      // determined (carriers are only exposed without their routes).
      "Q(x) :- Airline(x, y, c)",
  };

  for (const std::string& text : user_queries) {
    ConjunctiveQuery q = ParseCq(text, pool).value();
    std::cout << "User query: " << CqToString(q, pool) << "\n";

    CqRewritingResult plan = FindCqRewriting(sources, q);
    if (plan.exists) {
      std::cout << "  plan: " << CqToString(*plan.rewriting, pool) << "\n";
      Relation answer = EvaluateCq(*plan.rewriting, source_extents);
      std::cout << "  answer from sources: {";
      bool first = true;
      for (const Tuple& t : answer.tuples()) {
        if (!first) std::cout << ", ";
        first = false;
        std::cout << "(";
        for (std::size_t i = 0; i < t.size(); ++i) {
          if (i > 0) std::cout << ", ";
          std::cout << pool.NameOf(t[i]);
        }
        std::cout << ")";
      }
      std::cout << "}\n";
      std::cout << "  (cross-check vs hidden global: "
                << (answer == EvaluateCq(q, hidden_global) ? "match"
                                                           : "MISMATCH")
                << ")\n";
    } else {
      std::cout << "  no exact plan exists (sources do not determine the "
                   "query);\n"
                << "  falling back to certain answers:\n";
      QueryAnsweringOptions opts;
      opts.extra_values = 1;
      opts.max_instances = 1ull << 22;
      CertainAnswers certain = ComputeCertainAnswers(
          sources, Query::FromCq(q), global, source_extents, opts);
      if (!certain.any_preimage && !certain.exhaustive) {
        std::cout << "  certain-answer search infeasible at this extent "
                     "size (pre-image space too large);\n"
                  << "  the mediator reports the query as unanswerable.\n";
      } else {
        std::cout << "  certain answers: " << certain.answer.ToString()
                  << (certain.exhaustive ? "" : " (truncated)") << "\n";
      }
    }
    std::cout << "\n";
  }
  return 0;
}
