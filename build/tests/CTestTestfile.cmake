# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_cq[1]_include.cmake")
include("/root/repo/build/tests/test_containment[1]_include.cmake")
include("/root/repo/build/tests/test_fo[1]_include.cmake")
include("/root/repo/build/tests/test_so_datalog[1]_include.cmake")
include("/root/repo/build/tests/test_chase[1]_include.cmake")
include("/root/repo/build/tests/test_determinacy[1]_include.cmake")
include("/root/repo/build/tests/test_core_extra[1]_include.cmake")
include("/root/repo/build/tests/test_reductions[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_property2[1]_include.cmake")
include("/root/repo/build/tests/test_reference_rewriter[1]_include.cmake")
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_evaluator_crosscheck[1]_include.cmake")
include("/root/repo/build/tests/test_monotone_completeness[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
