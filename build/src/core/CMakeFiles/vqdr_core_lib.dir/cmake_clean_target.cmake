file(REMOVE_RECURSE
  "libvqdr_core_lib.a"
)
