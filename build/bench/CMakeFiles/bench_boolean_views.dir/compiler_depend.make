# Empty compiler generated dependencies file for bench_boolean_views.
# This may be replaced when dependencies are built.
