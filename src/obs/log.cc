#include "obs/log.h"

#ifndef VQDR_OBS_DISABLED

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vqdr::obs {

namespace {

constexpr std::uint64_t kDefaultRatePerSecond = 1000;

// Sink + rate-limit state, leaked to outlive static dtors. The admission
// path (level check) never takes the mutex; only emission does.
struct LogState {
  std::atomic<int> level{static_cast<int>(LogLevel::kOff)};
  std::atomic<std::uint64_t> rate_per_second{kDefaultRatePerSecond};
  std::atomic<std::uint64_t> dropped_total{0};

  std::mutex mu;
  // Token-bucket window: records admitted in the current wall-clock second.
  std::uint64_t window_second = 0;
  std::uint64_t window_count = 0;
  std::uint64_t dropped_since_last_emit = 0;
  std::ofstream file;
  bool file_open = false;
  std::shared_ptr<std::function<void(const std::string&)>> capture;

  static LogState& Get() {
    static LogState* s = new LogState;
    return *s;
  }
};

std::uint64_t UnixNowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LogState::Get().level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      LogState::Get().level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         LogState::Get().level.load(std::memory_order_relaxed);
}

bool SetLogFilePath(const std::string& path) {
  LogState& s = LogState::Get();
  std::lock_guard<std::mutex> lock(s.mu);
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return false;
  if (s.file_open) s.file.close();
  s.file = std::move(out);
  s.file_open = true;
  return true;
}

void CloseLogFile() {
  LogState& s = LogState::Get();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.file_open) {
    s.file.close();
    s.file_open = false;
  }
}

void SetLogCapture(std::function<void(const std::string&)> capture) {
  LogState& s = LogState::Get();
  std::lock_guard<std::mutex> lock(s.mu);
  if (capture) {
    s.capture = std::make_shared<std::function<void(const std::string&)>>(
        std::move(capture));
  } else {
    s.capture.reset();
  }
}

void SetLogRateLimit(std::uint64_t per_second) {
  LogState::Get().rate_per_second.store(per_second,
                                        std::memory_order_relaxed);
}

std::uint64_t LogDroppedCount() {
  return LogState::Get().dropped_total.load(std::memory_order_relaxed);
}

void InitLogFromEnv() {
  static const bool initialized = [] {
    if (const char* lvl = std::getenv("VQDR_LOG"); lvl != nullptr) {
      if (std::strcmp(lvl, "debug") == 0) SetLogLevel(LogLevel::kDebug);
      else if (std::strcmp(lvl, "info") == 0) SetLogLevel(LogLevel::kInfo);
      else if (std::strcmp(lvl, "warn") == 0) SetLogLevel(LogLevel::kWarn);
      else if (std::strcmp(lvl, "error") == 0) SetLogLevel(LogLevel::kError);
      else if (std::strcmp(lvl, "off") == 0) SetLogLevel(LogLevel::kOff);
    }
    if (const char* path = std::getenv("VQDR_LOG_FILE");
        path != nullptr && path[0] != '\0') {
      SetLogFilePath(path);
    }
    if (const char* rate = std::getenv("VQDR_LOG_RATE");
        rate != nullptr && rate[0] != '\0') {
      char* end = nullptr;
      unsigned long long n = std::strtoull(rate, &end, 10);
      if (end != nullptr && *end == '\0') {
        SetLogRateLimit(static_cast<std::uint64_t>(n));
      }
    }
    return true;
  }();
  (void)initialized;
}

LogRecord::LogRecord(LogLevel level, std::string_view event) {
  InitLogFromEnv();
  if (!LogEnabled(level)) return;

  LogState& s = LogState::Get();
  std::uint64_t now_ms = UnixNowMs();
  std::uint64_t dropped_before = 0;
  {
    // Token-bucket admission: at most rate_per_second records per
    // wall-clock second, process-wide. Dropped records are counted and
    // surfaced on the next admitted one.
    std::lock_guard<std::mutex> lock(s.mu);
    std::uint64_t rate = s.rate_per_second.load(std::memory_order_relaxed);
    std::uint64_t second = now_ms / 1000;
    if (second != s.window_second) {
      s.window_second = second;
      s.window_count = 0;
    }
    if (rate != 0 && s.window_count >= rate) {
      s.dropped_since_last_emit += 1;
      s.dropped_total.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    s.window_count += 1;
    dropped_before = s.dropped_since_last_emit;
    s.dropped_since_last_emit = 0;
  }

  live_ = true;
  level_ = level;
  line_.reserve(128);
  line_.append("{\"ts_ms\":");
  line_.append(std::to_string(now_ms));
  line_.append(",\"level\":");
  internal::AppendJsonString(LogLevelName(level), &line_);
  line_.append(",\"event\":");
  internal::AppendJsonString(event, &line_);
  line_.append(",\"op\":");
  line_.append(std::to_string(CurrentOpId()));
  line_.append(",\"tid\":");
  line_.append(std::to_string(CurrentTraceTid()));
  if (dropped_before != 0) {
    line_.append(",\"dropped\":");
    line_.append(std::to_string(dropped_before));
  }
}

LogRecord& LogRecord::Str(std::string_view key, std::string_view value) {
  if (!live_) return *this;
  line_.push_back(',');
  internal::AppendJsonString(key, &line_);
  line_.push_back(':');
  internal::AppendJsonString(value, &line_);
  return *this;
}

LogRecord& LogRecord::Num(std::string_view key, std::int64_t value) {
  if (!live_) return *this;
  line_.push_back(',');
  internal::AppendJsonString(key, &line_);
  line_.push_back(':');
  line_.append(std::to_string(value));
  return *this;
}

LogRecord& LogRecord::Num(std::string_view key, std::uint64_t value) {
  if (!live_) return *this;
  line_.push_back(',');
  internal::AppendJsonString(key, &line_);
  line_.push_back(':');
  line_.append(std::to_string(value));
  return *this;
}

LogRecord& LogRecord::Bool(std::string_view key, bool value) {
  if (!live_) return *this;
  line_.push_back(',');
  internal::AppendJsonString(key, &line_);
  line_.push_back(':');
  line_.append(value ? "true" : "false");
  return *this;
}

LogRecord::~LogRecord() {
  if (!live_) return;
  line_.push_back('}');
  LogState& s = LogState::Get();
  std::shared_ptr<std::function<void(const std::string&)>> capture;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    capture = s.capture;
    if (capture == nullptr) {
      if (s.file_open) {
        s.file << line_ << '\n';
        s.file.flush();
      } else {
        line_.push_back('\n');
        std::fwrite(line_.data(), 1, line_.size(), stderr);
      }
      return;
    }
  }
  (*capture)(line_);
}

}  // namespace vqdr::obs

#endif  // VQDR_OBS_DISABLED
