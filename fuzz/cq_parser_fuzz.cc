// libFuzzer harness for the CQ-family parsers (cq/parser.h): ParseCq,
// ParseUcq, and ParseInstance must never crash, hang, or trip UB on ANY
// byte string — they return a Status instead. On an accepted parse the
// harness additionally round-trips through the pretty-printer: the printed
// form must re-parse, and re-parse to something the printer maps to the
// same text (printer/parser fixpoint).
//
// Built two ways by fuzz/CMakeLists.txt:
//   * fuzz_cq (Clang + -fsanitize=fuzzer): the actual coverage-guided run;
//   * fuzz_cq_replay (any compiler, replay_main.cc): deterministic corpus
//     replay for CI, `fuzz_cq_replay fuzz/corpus/cq`.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "cq/parser.h"
#include "cq/ucq.h"
#include "data/schema.h"

namespace {

// Reject pathological inputs the grammar cannot justify spending time on:
// the parsers are linear but the fuzzer will happily grow megabyte atoms.
constexpr std::size_t kMaxInput = 1 << 12;

void FuzzCq(std::string_view text) {
  vqdr::NamePool pool;
  vqdr::StatusOr<vqdr::ConjunctiveQuery> q = vqdr::ParseCq(text, pool);
  if (!q.ok()) return;
  std::string printed = vqdr::CqToString(q.value(), pool);
  vqdr::StatusOr<vqdr::ConjunctiveQuery> again = vqdr::ParseCq(printed, pool);
  if (!again.ok()) __builtin_trap();  // printer emitted unparseable text
  if (vqdr::CqToString(again.value(), pool) != printed) __builtin_trap();
}

void FuzzUcq(std::string_view text) {
  vqdr::NamePool pool;
  vqdr::StatusOr<vqdr::UnionQuery> q = vqdr::ParseUcq(text, pool);
  if (!q.ok()) return;
  std::string printed = vqdr::UcqToString(q.value(), pool);
  vqdr::StatusOr<vqdr::UnionQuery> again = vqdr::ParseUcq(printed, pool);
  if (!again.ok()) __builtin_trap();
  if (vqdr::UcqToString(again.value(), pool) != printed) __builtin_trap();
}

void FuzzInstance(std::string_view text) {
  vqdr::NamePool pool;
  // A small fixed schema exercises arity checks, unknown-relation errors,
  // and the zero-ary fact syntax.
  vqdr::Schema schema{{"E", 2}, {"P", 1}, {"Flag", 0}};
  vqdr::StatusOr<vqdr::Instance> inst =
      vqdr::ParseInstance(text, schema, pool);
  if (!inst.ok()) return;
  // InstanceToString prints the fact-list format the parser accepts back, so
  // the full printer/parser fixpoint holds here too (empty relations are
  // elided, which content-equality absorbs).
  std::string printed = vqdr::InstanceToString(inst.value(), pool);
  vqdr::StatusOr<vqdr::Instance> again =
      vqdr::ParseInstance(printed, schema, pool);
  if (!again.ok()) __builtin_trap();  // printer emitted unparseable text
  if (vqdr::InstanceToString(again.value(), pool) != printed) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0 || size > kMaxInput) return 0;
  // First byte routes to a parser; the rest is the text under test.
  std::string_view text(reinterpret_cast<const char*>(data + 1), size - 1);
  switch (data[0] % 3) {
    case 0:
      FuzzCq(text);
      break;
    case 1:
      FuzzUcq(text);
      break;
    default:
      FuzzInstance(text);
      break;
  }
  return 0;
}
