#ifndef VQDR_DATA_ISOMORPHISM_H_
#define VQDR_DATA_ISOMORPHISM_H_

#include <map>
#include <optional>
#include <vector>

#include "data/instance.h"

namespace vqdr {

/// A bijective value mapping (restricted to the relevant active domains).
using ValueBijection = std::map<Value, Value>;

/// Finds an isomorphism from `a` to `b` (a bijection of active domains that
/// maps a's facts exactly onto b's facts), or nullopt if none exists.
/// Exhaustive over permutations — intended for the small instances used in
/// the paper's counterexamples and in property tests.
std::optional<ValueBijection> FindIsomorphism(const Instance& a,
                                              const Instance& b);

/// True if `a` and `b` are isomorphic.
bool AreIsomorphic(const Instance& a, const Instance& b);

/// All automorphisms of `d` (permutations of adom(d) mapping d onto itself).
/// Includes the identity. Exhaustive; small instances only.
std::vector<ValueBijection> Automorphisms(const Instance& d);

/// A canonical representative key of d's isomorphism class: the
/// lexicographically least serialization over all relabelings of adom(d)
/// by 1..n. Two instances have equal canonical keys iff they are isomorphic
/// (over the same schema).
std::string CanonicalKey(const Instance& d);

}  // namespace vqdr

#endif  // VQDR_DATA_ISOMORPHISM_H_
