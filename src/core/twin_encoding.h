#ifndef VQDR_CORE_TWIN_ENCODING_H_
#define VQDR_CORE_TWIN_ENCODING_H_

#include <optional>
#include <utility>

#include "core/finite_search.h"
#include "fo/formula.h"
#include "views/view_set.h"

namespace vqdr {

/// The twin-schema reduction of Section 4 of the paper: over two disjoint
/// copies σ₁, σ₂ of the base schema, the FO sentence
///
///   φ  =  ⋀_{V∈V} ∀x̄ (V₁(x̄) ↔ V₂(x̄))  ∧  ∃ȳ (Q₁(ȳ) ∧ ¬Q₂(ȳ))
///
/// is finitely satisfiable iff V does **not** determine Q (for
/// domain-independent queries such as CQs/UCQs; active-domain evaluation of
/// the joint instance then matches separate evaluation of the halves).
struct TwinEncoding {
  Schema twin_schema;       // σ₁ ∪ σ₂
  FoPtr sentence;           // φ above
  std::string prefix1 = "one_";
  std::string prefix2 = "two_";
};

/// Builds the encoding for CQ/UCQ views and query over `base`.
TwinEncoding BuildTwinEncoding(const ViewSet& views, const Query& q,
                               const Schema& base);

/// Splits a satisfying twin instance back into the pair (D₁, D₂).
std::pair<Instance, Instance> SplitTwinInstance(const TwinEncoding& encoding,
                                                const Schema& base,
                                                const Instance& twin);

/// Bounded finite-satisfiability search for the twin sentence: enumerates
/// instances over σ₁ ∪ σ₂ within `options`. A model refutes determinacy.
struct TwinSatResult {
  SearchVerdict verdict = SearchVerdict::kNoneWithinBound;
  std::optional<DeterminacyCounterexample> counterexample;
  std::uint64_t instances_examined = 0;
};
TwinSatResult BoundedTwinSearch(const TwinEncoding& encoding,
                                const Schema& base,
                                const EnumerationOptions& options);

}  // namespace vqdr

#endif  // VQDR_CORE_TWIN_ENCODING_H_
