// Cross-validation of the chase-based rewriting synthesiser against the
// brute-force reference enumerator (both implement the [22] problem).

#include <gtest/gtest.h>

#include "core/reference_rewriter.h"
#include "core/rewriting.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "gen/random_query.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

TEST(ReferenceRewriter, FindsTheObviousRewriting) {
  ViewSet views = PathViews(2);
  ConjunctiveQuery q = ChainQuery(4);
  ReferenceRewritingOptions options;
  options.max_atoms = 2;
  auto result = FindCqRewritingByEnumeration(views, q, options);
  ASSERT_TRUE(result.exists);
  EXPECT_TRUE(CqEquivalent(ExpandRewriting(*result.rewriting, views), q));
}

TEST(ReferenceRewriter, ReportsNonexistenceExhaustively) {
  // P2 alone cannot rewrite the 3-chain: within the bound the enumerator
  // must fail exhaustively (the LMSS bound |body(Q)| = 3 > 2 atoms is
  // covered by max_atoms=3).
  ViewSet views;
  views.Add("P2", Query::FromCq(ChainQuery(2, "E", "P2")));
  ConjunctiveQuery q = ChainQuery(3);
  ReferenceRewritingOptions options;
  options.max_atoms = 3;
  options.variable_pool = 3;
  auto result = FindCqRewritingByEnumeration(views, q, options);
  EXPECT_FALSE(result.exists);
  EXPECT_TRUE(result.exhaustive);
}

TEST(ReferenceRewriter, BudgetTruncation) {
  ViewSet views = PathViews(2);
  ConjunctiveQuery q = ChainQuery(4);
  ReferenceRewritingOptions options;
  options.max_atoms = 2;
  options.max_candidates = 3;  // far too small
  auto result = FindCqRewritingByEnumeration(views, q, options);
  EXPECT_FALSE(result.exists);
  EXPECT_FALSE(result.exhaustive);
}

class RewriterAgreement : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RewriterAgreement,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST_P(RewriterAgreement, ChaseAndEnumerationAgree) {
  // On constructed rewritable pairs both must say "exists"; when the chase
  // says "no", the (bounded-complete) enumeration must not find anything
  // within the LMSS bound either — Theorem 3.3 soundness both ways.
  Rng rng(GetParam());
  RandomCqOptions options;
  options.max_atoms = 2;
  options.variable_pool = 3;
  ViewSet views = RandomCqViews(rng, options, 2);
  ConjunctiveQuery q = RandomCq(rng, options);
  if (!q.IsSafe() || q.atoms().empty()) GTEST_SKIP();

  CqRewritingResult chase = FindCqRewriting(views, q);

  ReferenceRewritingOptions ropts;
  ropts.max_atoms = static_cast<int>(q.atoms().size());  // LMSS bound
  ropts.variable_pool = 3;
  ropts.max_candidates = 1ull << 18;
  auto reference = FindCqRewritingByEnumeration(views, q, ropts);

  if (chase.exists) {
    // The chase certificate must be verifiable...
    EXPECT_TRUE(CqEquivalent(ExpandRewriting(*chase.rewriting, views), q));
    // ...and the enumerator, if it covered its space, should also find one
    // (its variable pool may be too small in rare shapes; only require
    // agreement when it succeeded or was exhaustive with enough variables).
    if (reference.exhaustive && !reference.exists) {
      // Possible only if every rewriting needs > pool variables; verify by
      // checking the chase rewriting's variable count exceeds the pool.
      EXPECT_GT(chase.rewriting->AllVariables().size(),
                static_cast<std::size_t>(ropts.variable_pool) +
                    q.head_arity())
          << views.ToString() << q.ToString();
    }
  } else {
    // No rewriting exists at all (Theorem 3.3): the enumerator must not
    // fabricate one.
    EXPECT_FALSE(reference.exists)
        << "reference found a rewriting the chase missed:\n"
        << views.ToString() << q.ToString() << "\n"
        << reference.rewriting->ToString();
  }
}

}  // namespace
}  // namespace vqdr
