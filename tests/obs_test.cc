// Tests for the observability layer: counter registry and snapshot/delta
// semantics, histogram extremes, the trace ring buffer and JSONL sink
// (including span nesting order), the progress hook, and the
// VQDR_OBS_DISABLED macro seam — both modes compiled into this one file by
// re-including obs/obs_macros.h.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/finite_search.h"
#include "gen/workloads.h"
#include "obs/explain.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace vqdr {
namespace {

// --- counters and snapshots ------------------------------------------------

TEST(ObsMetrics, CounterRegistryHandsOutStableReferences) {
  obs::Counter& a = obs::GetCounter("test.obs.stable");
  obs::Counter& b = obs::GetCounter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  std::uint64_t before = a.value();
  b.Add(3);
  EXPECT_EQ(a.value(), before + 3);
}

TEST(ObsMetrics, SnapshotDeltaReportsOnlyMovement) {
  obs::Counter& moved = obs::GetCounter("test.obs.delta.moved");
  obs::GetCounter("test.obs.delta.idle");  // registered but untouched

  obs::MetricsSnapshot before = obs::SnapshotMetrics();
  moved.Add(7);
  obs::MetricsSnapshot delta = obs::SnapshotDelta(before);

  EXPECT_EQ(delta.counters.count("test.obs.delta.idle"), 0u);
  ASSERT_EQ(delta.counters.count("test.obs.delta.moved"), 1u);
  EXPECT_EQ(delta.counters.at("test.obs.delta.moved"), 7u);
}

TEST(ObsMetrics, ResetZeroesButKeepsRegistration) {
  obs::Counter& c = obs::GetCounter("test.obs.reset");
  c.Add(5);
  obs::ResetMetrics();
  EXPECT_EQ(c.value(), 0u);
  // The registry entry survives the reset and still snapshots.
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  ASSERT_EQ(snap.counters.count("test.obs.reset"), 1u);
  EXPECT_EQ(snap.counters.at("test.obs.reset"), 0u);
  c.Increment();
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsMetrics, HistogramTracksCountSumMinMax) {
  obs::Histogram& h = obs::GetHistogram("test.obs.hist");
  h.Reset();
  h.Record(10);
  h.Record(2);
  h.Record(40);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 52u);
  EXPECT_EQ(h.min(), 2u);
  EXPECT_EQ(h.max(), 40u);

  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  ASSERT_EQ(snap.histograms.count("test.obs.hist"), 1u);
  EXPECT_EQ(snap.histograms.at("test.obs.hist").max, 40u);
}

TEST(ObsMetrics, SnapshotRendersToStringAndJson) {
  obs::GetCounter("test.obs.render").Add(1);
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  EXPECT_NE(snap.ToString().find("test.obs.render="), std::string::npos);
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.render\":"), std::string::npos);
}

// --- macros (enabled mode) -------------------------------------------------
// Compiled out under a -DVQDR_OBS=OFF build, where the macros are no-ops
// from the first include on.
#ifndef VQDR_OBS_DISABLED

TEST(ObsMacros, EnabledMacrosBumpTheNamedCounter) {
  std::uint64_t before = obs::GetCounter("test.obs.macro.live").value();
  for (int i = 0; i < 4; ++i) {
    VQDR_COUNTER_INC("test.obs.macro.live");
  }
  VQDR_COUNTER_ADD("test.obs.macro.live", 6);
  EXPECT_EQ(obs::GetCounter("test.obs.macro.live").value(), before + 10);

  VQDR_HISTOGRAM_RECORD("test.obs.macro.hist", 17);
  EXPECT_GE(obs::GetHistogram("test.obs.macro.hist").count(), 1u);
}

#endif  // VQDR_OBS_DISABLED

// --- tracing ---------------------------------------------------------------

TEST(ObsTrace, RingBufferRecordsNestedSpansInnerFirst) {
  obs::EnableTracing();
  obs::DrainTraceEvents();  // discard anything earlier tests left behind
  {
    obs::TraceSpan outer("test.outer", 1);
    { obs::TraceSpan inner("test.inner"); }
  }
  obs::DisableTracing();

  std::vector<obs::TraceEvent> events = obs::DrainTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded on completion: the inner span lands first, one level
  // deeper, and its lifetime nests inside the outer's.
  EXPECT_EQ(events[0].name, "test.inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_FALSE(events[0].has_arg);
  EXPECT_EQ(events[1].name, "test.outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_TRUE(events[1].has_arg);
  EXPECT_EQ(events[1].arg, 1);
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].start_us + events[0].dur_us,
            events[1].start_us + events[1].dur_us);
}

TEST(ObsTrace, JsonlSinkWritesOneWellFormedLinePerSpan) {
  std::string path = ::testing::TempDir() + "/vqdr_obs_trace_test.jsonl";
  ASSERT_TRUE(obs::SetTraceSinkPath(path));
  {
    obs::TraceSpan outer("sink.outer");
    { obs::TraceSpan inner("sink.inner", 42); }
  }
  obs::DisableTracing();
  obs::DrainTraceEvents();

  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  // Inner completes (and is written) before outer; depth disambiguates.
  EXPECT_EQ(lines[0].find("{\"name\":\"sink.inner\",\"arg\":42,"), 0u);
  EXPECT_NE(lines[0].find("\"depth\":1,"), std::string::npos);
  EXPECT_EQ(lines[1].find("{\"name\":\"sink.outer\","), 0u);
  EXPECT_NE(lines[1].find("\"depth\":0,"), std::string::npos);
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_NE(l.find("\"start_us\":"), std::string::npos);
    EXPECT_NE(l.find("\"dur_us\":"), std::string::npos);
    // Every span line carries the op-id join key (0 outside any operation).
    EXPECT_NE(l.find("\"op\":"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  obs::DisableTracing();
  obs::DrainTraceEvents();
  { VQDR_TRACE_SPAN("test.disabled"); }
  EXPECT_TRUE(obs::DrainTraceEvents().empty());
}

// --- progress --------------------------------------------------------------

TEST(ObsProgress, TickerThrottlesAndReportsPhase) {
  std::vector<std::uint64_t> reported;
  obs::SetProgressCallback([&](const obs::ProgressEvent& e) {
    EXPECT_STREQ(e.phase, "test.progress");
    EXPECT_EQ(e.total, 100u);
    reported.push_back(e.current);
    return true;
  });
  obs::ProgressTicker ticker("test.progress", /*stride=*/10, /*total=*/100);
  for (int i = 0; i < 35; ++i) EXPECT_TRUE(ticker.Tick());
  obs::ClearProgressCallback();
  EXPECT_EQ(reported, (std::vector<std::uint64_t>{10, 20, 30}));
  EXPECT_EQ(ticker.count(), 35u);
}

TEST(ObsProgress, TickerLatchesCancellation) {
  // Once the callback returns false, every later Tick() must keep
  // returning false without re-asking (and possibly re-granting) on the
  // next stride boundary.
  int calls = 0;
  obs::SetProgressCallback([&](const obs::ProgressEvent&) {
    ++calls;
    return false;
  });
  obs::ProgressTicker ticker("test.progress.latch", /*stride=*/4);
  EXPECT_TRUE(ticker.Tick());   // 1
  EXPECT_TRUE(ticker.Tick());   // 2
  EXPECT_TRUE(ticker.Tick());   // 3
  EXPECT_FALSE(ticker.Tick());  // 4: callback fires, cancels
  EXPECT_TRUE(ticker.cancelled());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(ticker.Tick());
  obs::ClearProgressCallback();
  EXPECT_EQ(calls, 1);  // never re-asked after the latch
  EXPECT_EQ(ticker.count(), 4u);  // cancelled ticks are not counted as work
}

TEST(ObsProgress, CallbackCancellationStopsFiniteSearch) {
  // A callback that cancels immediately turns the (huge) search into a
  // budget-exhausted verdict after at most one stride of instances.
  obs::SetProgressCallback(
      [](const obs::ProgressEvent&) { return false; });
  ViewSet views = PathViews(2);
  EnumerationOptions options;
  options.domain_size = 4;  // 2^16 instances; cancellation must cut it short
  DeterminacySearchResult result = SearchDeterminacyCounterexample(
      views, Query::FromCq(ChainQuery(3)), Schema{{"E", 2}}, options);
  obs::ClearProgressCallback();
  EXPECT_EQ(result.verdict, SearchVerdict::kBudgetExhausted);
  EXPECT_LE(result.instances_examined, 1024u);
}

// --- histogram buckets -----------------------------------------------------

TEST(ObsMetrics, HistogramBucketIndexIsLog2) {
  EXPECT_EQ(obs::HistogramBucketIndex(0), 0u);
  EXPECT_EQ(obs::HistogramBucketIndex(1), 1u);   // [1,1]
  EXPECT_EQ(obs::HistogramBucketIndex(2), 2u);   // [2,3]
  EXPECT_EQ(obs::HistogramBucketIndex(3), 2u);
  EXPECT_EQ(obs::HistogramBucketIndex(4), 3u);   // [4,7]
  EXPECT_EQ(obs::HistogramBucketIndex(1023), 10u);
  EXPECT_EQ(obs::HistogramBucketIndex(1024), 11u);
  // Everything with 31+ significant bits lands in the overflow bucket.
  EXPECT_EQ(obs::HistogramBucketIndex(1ull << 40), 31u);
  EXPECT_EQ(obs::HistogramBucketIndex(~0ull), 31u);
  EXPECT_EQ(obs::HistogramBucketUpperBound(1), 1u);
  EXPECT_EQ(obs::HistogramBucketUpperBound(3), 7u);
  EXPECT_EQ(obs::HistogramBucketUpperBound(31), ~0ull);
}

TEST(ObsMetrics, HistogramBucketsWindowInDeltas) {
  obs::Histogram& h = obs::GetHistogram("test.obs.buckets");
  h.Reset();
  h.Record(1);
  h.Record(5);
  obs::MetricsSnapshot before = obs::SnapshotMetrics();
  h.Record(5);
  h.Record(6);
  obs::MetricsSnapshot delta = obs::SnapshotDelta(before);

  ASSERT_EQ(delta.histograms.count("test.obs.buckets"), 1u);
  const obs::HistogramSnapshot& hs = delta.histograms.at("test.obs.buckets");
  EXPECT_EQ(hs.count, 2u);
  // Only the two new values appear in the windowed buckets: both in [4,7].
  EXPECT_EQ(hs.buckets[obs::HistogramBucketIndex(5)], 2u);
  EXPECT_EQ(hs.buckets[obs::HistogramBucketIndex(1)], 0u);
}

TEST(ObsMetrics, ApproxQuantileWalksBuckets) {
  obs::Histogram& h = obs::GetHistogram("test.obs.quantile");
  h.Reset();
  for (int i = 0; i < 90; ++i) h.Record(3);    // bucket [2,3]
  for (int i = 0; i < 10; ++i) h.Record(100);  // bucket [64,127]
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  const obs::HistogramSnapshot& hs = snap.histograms.at("test.obs.quantile");
  // p50 falls in the low bucket (upper bound 3); p95+ in the high one. The
  // quantile is clamped to the recorded max, so p99 reports 100, not 127.
  EXPECT_EQ(hs.ApproxQuantile(0.5), 3u);
  EXPECT_EQ(hs.ApproxQuantile(0.99), 100u);
  obs::HistogramSnapshot empty;
  EXPECT_EQ(empty.ApproxQuantile(0.5), 0u);
}

// --- Prometheus export -----------------------------------------------------

// A lint for the Prometheus text exposition format (version 0.0.4): every
// line is a comment (# HELP / # TYPE) or a sample `name{labels} value`;
// metric names match [a-zA-Z_:][a-zA-Z0-9_:]*; every sample's name was
// announced by a preceding # TYPE.
void LintPrometheusText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::set<std::string> announced;
  int samples = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, kind, name;
      comment >> hash >> kind >> name;
      EXPECT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      if (kind == "TYPE") {
        std::string type;
        comment >> type;
        EXPECT_TRUE(type == "counter" || type == "histogram") << line;
        announced.insert(name);
      }
      continue;
    }
    std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    std::string name = line.substr(0, name_end);
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_' || name[0] == ':')
        << line;
    for (char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << "bad metric name char in: " << line;
    }
    // A sample's base name (modulo _total/_bucket/_sum/_count suffixes)
    // must have been announced by a TYPE line.
    bool known = false;
    for (const std::string& base : announced) {
      if (name == base || name == base + "_total" ||
          name == base + "_bucket" || name == base + "_sum" ||
          name == base + "_count") {
        known = true;
      }
    }
    EXPECT_TRUE(known) << "sample without TYPE announcement: " << line;
    // The value is the last space-separated token and must parse.
    std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_FALSE(line.substr(space + 1).empty()) << line;
    ++samples;
  }
  EXPECT_GT(samples, 0);
}

TEST(ObsExport, PrometheusTextPassesFormatLint) {
  obs::ResetMetrics();
  obs::GetCounter("test.prom.counter").Add(42);
  obs::Histogram& h = obs::GetHistogram("test.prom.hist");
  h.Reset();
  h.Record(1);
  h.Record(9);
  h.Record(300);
  std::string text = obs::ExportPrometheusText();
  LintPrometheusText(text);

  // Counters gain the conventional _total suffix and the vqdr_ namespace;
  // dots sanitize to underscores.
  EXPECT_NE(text.find("vqdr_test_prom_counter_total 42"), std::string::npos);
  // Histogram buckets are cumulative with le="+Inf" last and equal to count.
  EXPECT_NE(text.find("vqdr_test_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("vqdr_test_prom_hist_count 3"), std::string::npos);
  EXPECT_NE(text.find("vqdr_test_prom_hist_sum 310"), std::string::npos);

  // Cumulative monotonicity across the bucket lines.
  std::istringstream in(text);
  std::string line;
  std::uint64_t prev = 0;
  int bucket_lines = 0;
  while (std::getline(in, line)) {
    if (line.rfind("vqdr_test_prom_hist_bucket", 0) != 0) continue;
    std::uint64_t value = std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(value, prev) << line;
    prev = value;
    ++bucket_lines;
  }
  EXPECT_GT(bucket_lines, 1);
}

// --- span-tree profiler ----------------------------------------------------

obs::TraceEvent MakeSpan(const char* name, std::uint64_t start_us,
                         std::uint64_t dur_us, std::uint32_t tid, int depth) {
  obs::TraceEvent e;
  e.name = name;
  e.start_us = start_us;
  e.dur_us = dur_us;
  e.tid = tid;
  e.depth = depth;
  return e;
}

TEST(ObsProfile, ReconstructsKnownNestingFromOutOfOrderSpans) {
  // Completion order (as a ring would record it): inner spans land before
  // the outers that contain them, and two threads interleave arbitrarily.
  //   tid 1:  analyze[0,100) > decide[10,40) > match[12,20)
  //                          > search[50,90)
  //   tid 2:  worker[0,80) > match[5,25)
  std::vector<obs::TraceEvent> events;
  events.push_back(MakeSpan("match", 12, 8, 1, 2));
  events.push_back(MakeSpan("match", 5, 20, 2, 1));
  events.push_back(MakeSpan("decide", 10, 30, 1, 1));
  events.push_back(MakeSpan("search", 50, 40, 1, 1));
  events.push_back(MakeSpan("worker", 0, 80, 2, 0));
  events.push_back(MakeSpan("analyze", 0, 100, 1, 0));

  obs::Profile profile = obs::BuildProfile(events);
  EXPECT_EQ(profile.span_count, 6u);
  EXPECT_EQ(profile.orphans, 0u);
  ASSERT_EQ(profile.roots.size(), 2u);

  // Roots sort by total time: analyze (100) before worker (80).
  const obs::ProfileNode& analyze = profile.roots[0];
  EXPECT_EQ(analyze.name, "analyze");
  EXPECT_EQ(analyze.total_us, 100u);
  EXPECT_EQ(analyze.self_us, 100u - 30u - 40u);
  ASSERT_EQ(analyze.children.size(), 2u);
  EXPECT_EQ(analyze.children[0].name, "search");  // 40us > decide's 30us
  const obs::ProfileNode& decide = analyze.children[1];
  EXPECT_EQ(decide.name, "decide");
  ASSERT_EQ(decide.children.size(), 1u);
  EXPECT_EQ(decide.children[0].name, "match");
  EXPECT_EQ(decide.children[0].count, 1u);

  const obs::ProfileNode& worker = profile.roots[1];
  EXPECT_EQ(worker.name, "worker");
  ASSERT_EQ(worker.children.size(), 1u);
  EXPECT_EQ(worker.children[0].name, "match");

  std::string rendered = obs::RenderProfileText(profile);
  EXPECT_NE(rendered.find("analyze"), std::string::npos);
  EXPECT_NE(rendered.find("6 spans"), std::string::npos);
}

TEST(ObsProfile, AggregatesRepeatedSpansAndCountsOrphans) {
  std::vector<obs::TraceEvent> events;
  events.push_back(MakeSpan("outer", 0, 50, 1, 0));
  for (int i = 0; i < 3; ++i) {
    events.push_back(MakeSpan("leaf", 5 + 10 * i, 5, 1, 1));
  }
  // A depth-2 span whose parent never completed (ring overflow): re-rooted.
  events.push_back(MakeSpan("stray", 100, 5, 1, 2));

  obs::Profile profile = obs::BuildProfile(events);
  EXPECT_EQ(profile.orphans, 1u);
  ASSERT_EQ(profile.roots.size(), 2u);
  const obs::ProfileNode& outer =
      profile.roots[0].name == "outer" ? profile.roots[0] : profile.roots[1];
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0].name, "leaf");
  EXPECT_EQ(outer.children[0].count, 3u);
  EXPECT_EQ(outer.children[0].total_us, 15u);
  EXPECT_EQ(outer.self_us, 35u);
}

TEST(ObsProfile, ParsesJsonlSinkAndConvertsToChromeTrace) {
  std::string path = ::testing::TempDir() + "/vqdr_obs_profile_test.jsonl";
  ASSERT_TRUE(obs::SetTraceSinkPath(path));
  {
    obs::TraceSpan outer("profile.outer");
    { obs::TraceSpan inner("profile.inner", 7); }
  }
  obs::DisableTracing();
  obs::DrainTraceEvents();

#ifndef VQDR_OBS_DISABLED
  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  std::string error;
  auto events = obs::ParseTraceJsonl(file, &error);
  ASSERT_TRUE(events.has_value()) << error;
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].name, "profile.inner");
  EXPECT_EQ((*events)[0].arg, 7);
  EXPECT_TRUE((*events)[0].has_arg);
  EXPECT_GT((*events)[0].tid, 0u);  // the sink carries the dense thread id
  EXPECT_EQ((*events)[0].tid, (*events)[1].tid);

  obs::Profile profile = obs::BuildProfile(*events);
  ASSERT_EQ(profile.roots.size(), 1u);
  EXPECT_EQ(profile.roots[0].name, "profile.outer");
  ASSERT_EQ(profile.roots[0].children.size(), 1u);
  EXPECT_EQ(profile.roots[0].children[0].name, "profile.inner");

  std::string chrome = obs::ChromeTraceJson(*events);
  EXPECT_NE(chrome.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"profile.inner\""), std::string::npos);

  std::ifstream file2(path);
  std::ostringstream converted;
  ASSERT_TRUE(obs::ConvertTraceJsonlToChrome(file2, converted, &error))
      << error;
  EXPECT_NE(converted.str().find("\"ph\":\"X\""), std::string::npos);
#endif  // VQDR_OBS_DISABLED
  std::remove(path.c_str());
}

// --- explain log -----------------------------------------------------------

obs::ExplainWitness MakeTestWitness() {
  // Witness for Q(x) :- E(x,y), E(y,x) mapping into {E(1,2), E(2,1)} with
  // head image (1): binding {x->1, y->2}.
  obs::ExplainWitness w;
  w.atoms.push_back(
      {"E", {obs::ExplainTerm::Var("x"), obs::ExplainTerm::Var("y")}});
  w.atoms.push_back(
      {"E", {obs::ExplainTerm::Var("y"), obs::ExplainTerm::Var("x")}});
  w.head = {obs::ExplainTerm::Var("x")};
  w.binding["x"] = 1;
  w.binding["y"] = 2;
  w.instance.push_back({"E", {1, 2}});
  w.instance.push_back({"E", {2, 1}});
  w.expected_head = {1};
  return w;
}

TEST(ObsExplain, WitnessVerifyAcceptsAndRejects) {
  obs::ExplainWitness good = MakeTestWitness();
  std::string error;
  EXPECT_TRUE(good.Verify(&error)) << error;

  obs::ExplainWitness bad_image = good;
  bad_image.binding["y"] = 3;  // E(1,3) is not a fact
  EXPECT_FALSE(bad_image.Verify(&error));
  EXPECT_FALSE(error.empty());

  obs::ExplainWitness bad_head = good;
  bad_head.expected_head = {2};
  EXPECT_FALSE(bad_head.Verify(&error));

  obs::ExplainWitness bad_diseq = good;
  bad_diseq.disequalities.push_back(
      {obs::ExplainTerm::Var("x"), obs::ExplainTerm::Var("x")});
  EXPECT_FALSE(bad_diseq.Verify(&error));
}

TEST(ObsExplain, LogJsonRoundTripPreservesEventsAndWitnesses) {
  obs::ExplainLog log;
  log.Note("setup", "two views over E/2");
  obs::ExplainEvent ev;
  ev.kind = obs::ExplainKind::kWitness;
  ev.label = "cq.sub";
  ev.stats["instance_facts"] = 2;
  ev.witness = MakeTestWitness();
  log.Append(std::move(ev));
  obs::ExplainEvent refute;
  refute.kind = obs::ExplainKind::kRefutation;
  refute.label = "cq.sub";
  refute.detail = "no preimage";
  refute.instance.push_back({"E", {1, 2}});
  log.Append(std::move(refute));

  std::string json = log.ToJson();
  std::string error;
  auto parsed = obs::ExplainLog::FromJson(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 3u);

  const auto& events = parsed->events();
  EXPECT_EQ(events[0].kind, obs::ExplainKind::kNote);
  EXPECT_EQ(events[0].label, "setup");
  EXPECT_EQ(events[1].kind, obs::ExplainKind::kWitness);
  EXPECT_EQ(events[1].stats.at("instance_facts"), 2);
  ASSERT_TRUE(events[1].witness.has_value());
  EXPECT_TRUE(events[1].witness->Verify());
  EXPECT_EQ(events[1].witness->binding.at("y"), 2);
  EXPECT_EQ(events[2].kind, obs::ExplainKind::kRefutation);
  ASSERT_EQ(events[2].instance.size(), 1u);
  EXPECT_EQ(events[2].instance[0], (obs::ExplainFact{"E", {1, 2}}));

  // Serialization is stable: a second round trip emits identical JSON.
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(ObsExplain, FromJsonRejectsGarbage) {
  EXPECT_FALSE(obs::ExplainLog::FromJson("not json").has_value());
  EXPECT_FALSE(obs::ExplainLog::FromJson("{\"events\":[]}").has_value());
  std::string error;
  EXPECT_FALSE(
      obs::ExplainLog::FromJson("{\"explain\":2,\"events\":[]}", &error)
          .has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ObsProgress, SearchTallyIsFedFromObsCounter) {
  std::uint64_t before = obs::GetCounter("search.instances").value();
  ViewSet views = PathViews(2);
  EnumerationOptions options;
  options.domain_size = 1;
  DeterminacySearchResult result = SearchDeterminacyCounterexample(
      views, Query::FromCq(ChainQuery(2)), Schema{{"E", 2}}, options);
  std::uint64_t after = obs::GetCounter("search.instances").value();
  EXPECT_GT(result.instances_examined, 0u);
  EXPECT_EQ(after - before, result.instances_examined);
}

}  // namespace
}  // namespace vqdr

// --- the macro seam: disabled mode in the same translation unit ------------

#define VQDR_OBS_DISABLED
#include "obs/obs_macros.h"  // macros are now no-ops

namespace vqdr {
namespace {

TEST(ObsMacros, DisabledMacrosAreNoOps) {
  std::uint64_t counter_before = obs::GetCounter("test.obs.macro.dead").value();
  std::uint64_t hist_before = obs::GetHistogram("test.obs.macro.hist").count();
  obs::EnableTracing();
  obs::DrainTraceEvents();

  VQDR_COUNTER_INC("test.obs.macro.dead");
  VQDR_COUNTER_ADD("test.obs.macro.dead", 100);
  VQDR_HISTOGRAM_RECORD("test.obs.macro.hist", 5);
  { VQDR_TRACE_SPAN("test.obs.macro.dead.span"); }

  EXPECT_EQ(obs::GetCounter("test.obs.macro.dead").value(), counter_before);
  EXPECT_EQ(obs::GetHistogram("test.obs.macro.hist").count(), hist_before);
  EXPECT_TRUE(obs::DrainTraceEvents().empty());
  obs::DisableTracing();
}

}  // namespace
}  // namespace vqdr

#undef VQDR_OBS_DISABLED
#include "obs/obs_macros.h"  // restore for anything below

namespace vqdr {
namespace {

TEST(ObsMacros, ReincludeRestoresLiveMacros) {
  std::uint64_t before = obs::GetCounter("test.obs.macro.restored").value();
  VQDR_COUNTER_INC("test.obs.macro.restored");
  EXPECT_EQ(obs::GetCounter("test.obs.macro.restored").value(), before + 1);
}

}  // namespace
}  // namespace vqdr
