// Substrate benchmark: CQ/UCQ containment (Chandra–Merlin / Sagiv–
// Yannakakis) and core minimisation — the NP-complete engine everything
// else calls into. The shape to observe: chain-into-chain containment is
// polynomial in practice (pruned backtracking), disequality patterns pay
// the Bell-number factor, minimisation is quadratic in atoms times a
// containment call.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "cq/containment.h"
#include "cq/matcher.h"
#include "cq/minimize.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

void BM_CqContainmentChains(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ConjunctiveQuery longer = ChainQuery(2 * n);
  ConjunctiveQuery shorter = ChainQuery(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CqContainedIn(longer, shorter));
  }
  state.counters["atoms"] = static_cast<double>(2 * n);
}
BENCHMARK(BM_CqContainmentChains)->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);

void BM_CqContainmentCycles(benchmark::State& state) {
  // Cycle-into-cycle: divisibility structure, harder hom search.
  int n = static_cast<int>(state.range(0));
  ConjunctiveQuery big = CycleQuery(2 * n);
  ConjunctiveQuery small = CycleQuery(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CqContainedIn(big, small));
  }
}
BENCHMARK(BM_CqContainmentCycles)->DenseRange(2, 5)
    ->Unit(benchmark::kMicrosecond);

void BM_CqContainmentWithDisequality(benchmark::State& state) {
  // The Bell-number blowup: q1 pure with k variables, q2 with one ≠.
  int n = static_cast<int>(state.range(0));
  ConjunctiveQuery q1 = ChainQuery(n);
  ConjunctiveQuery q2 = ChainQuery(n);
  q2.AddDisequality(Term::Var("x0"), Term::Var("x" + std::to_string(n)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CqContainedIn(q1, q2));
  }
  state.counters["vars"] = static_cast<double>(n + 1);
}
BENCHMARK(BM_CqContainmentWithDisequality)->DenseRange(1, 5)
    ->Unit(benchmark::kMicrosecond);

void BM_MinimizeStar(benchmark::State& state) {
  // All arms of a star are redundant: n-1 successful removals.
  ConjunctiveQuery q = StarQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimizeCq(q));
  }
}
BENCHMARK(BM_MinimizeStar)->DenseRange(2, 8)->Unit(benchmark::kMicrosecond);

void BM_MinimizeIrreducibleChain(benchmark::State& state) {
  // Nothing removable: n failed removal attempts.
  ConjunctiveQuery q = ChainQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimizeCq(q));
  }
}
BENCHMARK(BM_MinimizeIrreducibleChain)->DenseRange(2, 8)
    ->Unit(benchmark::kMicrosecond);

void BM_UcqContainment(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  UnionQuery left, right;
  for (int i = 1; i <= n; ++i) {
    left.AddDisjunct(ChainQuery(2 * i, "E", "Q"));
    right.AddDisjunct(ChainQuery(i, "E", "Q"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(UcqContainedIn(left, right));
  }
  state.counters["disjuncts"] = static_cast<double>(n);
}
BENCHMARK(BM_UcqContainment)->DenseRange(1, 5)
    ->Unit(benchmark::kMicrosecond);

// --- Engine-differential variants (DESIGN.md §12) ---
//
// Hom-dominated shapes, parameterized by engine (arg 1: 0 = indexed,
// 1 = legacy) so `--benchmark_filter=ByEngine` prints the speedup directly.
// The legacy rows only run under -DVQDR_MATCHER_LEGACY=ON and are skipped
// (not silently measured as indexed) otherwise. Memoization is pinned off:
// the subject here is the homomorphism search, not the verdict cache.

bool SelectEngine(benchmark::State& state, MatcherOptions* matcher) {
  if (state.range(1) == 0) {
    matcher->engine = MatcherEngine::kIndexed;
    return true;
  }
  if (!MatcherLegacyCompiled()) {
    state.SkipWithError("legacy oracle not compiled (-DVQDR_MATCHER_LEGACY=ON)");
    return false;
  }
  matcher->engine = MatcherEngine::kLegacy;
  return true;
}

void BM_HomChainContainmentByEngine(benchmark::State& state) {
  // Chain-2n vs chain-n: the pattern check walks a long frozen path with
  // the head pre-bound — a deep, failure-terminated join where the legacy
  // engine re-scans the whole edge relation at every node.
  int n = static_cast<int>(state.range(0));
  CqContainmentOptions options;
  options.memo.use = memo::Use::kOff;
  if (!SelectEngine(state, &options.matcher)) return;
  ConjunctiveQuery longer = ChainQuery(2 * n);
  ConjunctiveQuery shorter = ChainQuery(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CqContainedIn(longer, shorter, options));
    benchmark::DoNotOptimize(CqContainedIn(shorter, longer, options));
  }
  state.counters["atoms"] = static_cast<double>(2 * n);
}
BENCHMARK(BM_HomChainContainmentByEngine)
    ->ArgsProduct({{16, 24, 32}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_HomPatternOverRandomGraphByEngine(benchmark::State& state) {
  // Chain-pattern evaluation over a dense random graph: the success-heavy
  // case (every hom is enumerated), measuring raw candidate generation.
  int k = static_cast<int>(state.range(0));
  MatcherOptions matcher;
  if (!SelectEngine(state, &matcher)) return;
  ConjunctiveQuery q = ChainQuery(k);
  Instance g = RandomGraph(40, 240, /*seed=*/7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateCq(q, g, matcher));
  }
  state.counters["edges"] =
      static_cast<double>(g.Get("E").tuples().size());
}
BENCHMARK(BM_HomPatternOverRandomGraphByEngine)
    ->ArgsProduct({{2, 3, 4}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_HomOddCycleOverBipartiteByEngine(benchmark::State& state) {
  // Failure-heavy: an odd cycle has no hom into a bipartite graph, so the
  // whole search tree is refutation — exactly where forward checking and
  // backjumping earn their keep.
  int k = static_cast<int>(state.range(0));  // odd cycle length
  MatcherOptions matcher;
  if (!SelectEngine(state, &matcher)) return;
  ConjunctiveQuery q = CycleQuery(k);
  Instance g(Schema{{"E", 2}});
  for (int i = 1; i <= 10; ++i) {
    for (int j = 1; j <= 10; ++j) {
      if ((i * 7 + j * 3) % 4 == 0) {
        g.AddFact("E", {Value(i), Value(10 + j)});
      }
      if ((i * 5 + j) % 4 == 0) {
        g.AddFact("E", {Value(10 + j), Value(i)});
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateCq(q, g, matcher));
  }
}
BENCHMARK(BM_HomOddCycleOverBipartiteByEngine)
    ->ArgsProduct({{5, 7}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("containment");
