#ifndef VQDR_REDUCTIONS_GIMP_H_
#define VQDR_REDUCTIONS_GIMP_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "fo/formula.h"
#include "views/view_set.h"

namespace vqdr {

/// The Theorem 5.4 construction: from an implicit FO definition of a query
/// q (GIMP, Lindell/Grumbach–Lacroix–Lindell) to UCQ views V and an FO
/// query Q with V ↠ Q and Q_V ≡ q. This is the paper's lower bound showing
/// every language complete for UCQ-to-FO rewritings expresses all of
/// ∃SO ∩ ∀SO.
///
/// Input: an FO sentence φ(T, S̄) over τ' = τ ∪ {T, S̄} (normalized to the
/// {∧, ¬, ∃} fragment) such that (i) every D over τ admits T, S̄ with
/// φ(q(D), S̄), and (ii) φ(T, S̄) forces T = q(D).
///
/// Per subformula θ of φ the construction adds auxiliary relations
/// (R_θ for composite θ, and a complement relation for every θ) plus UCQ
/// views whose answers are ∅ / adom^k exactly when the auxiliary relations
/// have the intended contents. The views reveal *only* D(τ), those
/// emptiness/fullness patterns, and the root bit R_φ — never T or S̄.
class GimpConstruction {
 public:
  /// Builds the construction. φ must be a sentence over
  /// τ ∪ {t_decl} ∪ s_decls after normalization; equality atoms are not
  /// supported inside φ.
  static StatusOr<GimpConstruction> Build(FoPtr phi, Schema tau,
                                          RelationDecl t_decl,
                                          std::vector<RelationDecl> s_decls);

  const Schema& tau() const { return tau_; }
  /// τ' = τ ∪ {T, S̄}.
  const Schema& tau_prime() const { return tau_prime_; }
  /// τ'' = τ' plus the auxiliary relations.
  const Schema& full_schema() const { return full_schema_; }
  const ViewSet& views() const { return views_; }

  /// Q = ψ ∧ φ(T, S̄) ∧ T(x̄) as an FO query over τ''.
  const Query& query() const { return query_; }

  /// ψ: the FO sentence asserting every auxiliary relation has its intended
  /// content.
  const FoPtr& psi() const { return psi_; }

  const std::string& t_name() const { return t_name_; }

  /// Extends an instance over τ' (base + T + S̄) to τ'' by materializing
  /// every auxiliary relation with its intended content, making ψ true.
  Instance CompleteInstance(const Instance& d_tau_prime) const;

  /// Builders need a default-constructed shell; prefer Build().
  GimpConstruction() = default;

 private:
  struct Node {
    FoPtr formula;
    std::vector<std::string> vars;  // free variables, canonical order
    // pos atom: how to assert θ(x̄) positively (base atom or R_θ atom).
    Atom pos;
    // neg atom: the materialized complement relation (or pos of the child
    // for ¬-nodes).
    Atom neg;
    bool has_own_symbol = false;  // composite nodes introduce R_θ
  };

  std::vector<Node> nodes_;
  Schema tau_, tau_prime_, full_schema_;
  ViewSet views_;
  Query query_{Query::FromCq(ConjunctiveQuery("Q", {}))};
  FoPtr psi_;
  FoPtr phi_;
  std::string t_name_;
};

/// A worked GIMP instance: EVEN cardinality of the unary relation U —
/// a query in NP ∩ co-NP (indeed PTIME) that is *not* FO-definable, made
/// implicitly definable with an order S̄ = {Ord} and parity marker {Alt}.
struct ParityGimp {
  GimpConstruction construction;
  /// q itself, for cross-checking: |U| even?
  static bool Even(const Instance& d_tau);
};
StatusOr<ParityGimp> BuildParityGimp();

}  // namespace vqdr

#endif  // VQDR_REDUCTIONS_GIMP_H_
