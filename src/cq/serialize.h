#ifndef VQDR_CQ_SERIALIZE_H_
#define VQDR_CQ_SERIALIZE_H_

#include "base/wire.h"
#include "cq/canonical.h"
#include "cq/conjunctive_query.h"
#include "cq/ucq.h"

// Binary codecs for query objects, used by the memo snapshot (DESIGN.md
// §14). Same contract as data/serialize.h: exact (variables by name,
// constants by raw id), fully validated before any aborting builder runs,
// decoders return false on malformed input.

namespace vqdr {

void EncodeTerm(const Term& term, wire::Encoder& enc);
bool DecodeTerm(wire::Decoder& dec, Term* out);

void EncodeCq(const ConjunctiveQuery& q, wire::Encoder& enc);
bool DecodeCq(wire::Decoder& dec, ConjunctiveQuery* out);

void EncodeUcq(const UnionQuery& q, wire::Encoder& enc);
bool DecodeUcq(wire::Decoder& dec, UnionQuery* out);

void EncodeFrozenQuery(const FrozenQuery& frozen, wire::Encoder& enc);
bool DecodeFrozenQuery(wire::Decoder& dec, FrozenQuery* out);

}  // namespace vqdr

#endif  // VQDR_CQ_SERIALIZE_H_
