// Tests for second-order evaluation (∃SO/∀SO, Figure 1) and the Datalog
// engine (Corollaries 5.6/5.9 machinery).

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "datalog/program.h"
#include "fo/parser.h"
#include "so/so_query.h"
#include "views/query.h"

namespace vqdr {
namespace {

class SoDatalogFixture : public ::testing::Test {
 protected:
  FoQuery FoQ(const std::string& text) {
    auto q = ParseFoQuery(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message();
    return q.value();
  }

  Instance Db(const std::string& text, const Schema& schema) {
    auto d = ParseInstance(text, schema, pool_);
    EXPECT_TRUE(d.ok()) << d.status().message();
    return d.value();
  }

  NamePool pool_;
};

// ∃SO: 2-colorability (a classic NP property). A 2-coloring partitions the
// nodes so that every edge crosses.
TEST_F(SoDatalogFixture, ExistsSoTwoColorability) {
  SoQuery q;
  q.existential = true;
  q.relation_vars = {{"C", 1}};
  q.matrix = FoQ(
      "Q() := forall x, y . (E(x, y) -> (C(x) & !C(y)) | (!C(x) & C(y)))");

  Schema schema{{"E", 2}};
  // A 4-cycle is 2-colorable.
  Instance square = Db("E(a, b), E(b, c), E(c, d), E(d, a)", schema);
  auto r1 = SoSentenceHolds(q, square);
  ASSERT_TRUE(r1.ok()) << r1.status().message();
  EXPECT_TRUE(r1.value());
  // A triangle is not.
  Instance triangle = Db("E(a, b), E(b, c), E(c, a)", schema);
  auto r2 = SoSentenceHolds(q, triangle);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value());
}

// ∀SO: non-3-colorability is co-NP; here a simpler ∀SO check — every
// subset closed under edges and containing a source contains everything —
// expresses connectivity-style reachability from 'a'.
TEST_F(SoDatalogFixture, ForallSoReachability) {
  SoQuery q;
  q.existential = false;
  q.relation_vars = {{"S", 1}};
  q.matrix = FoQ(
      "Q() := (S('a') & (forall x, y . (S(x) & E(x, y) -> S(y)))) "
      "-> forall z . ((exists w . E(z, w) | E(w, z)) -> S(z))");

  Schema schema{{"E", 2}};
  Instance path = Db("E(a, b), E(b, c)", schema);
  auto reachable = SoSentenceHolds(q, path);
  ASSERT_TRUE(reachable.ok());
  EXPECT_TRUE(reachable.value());

  Instance split = Db("E(a, b), E(c, d)", schema);
  auto unreachable = SoSentenceHolds(q, split);
  ASSERT_TRUE(unreachable.ok());
  EXPECT_FALSE(unreachable.value());
}

TEST_F(SoDatalogFixture, SoWithFreeVariables) {
  // Q(x): x belongs to some independent set containing it of size >= 2 —
  // phrased: exists S with x ∈ S, some y ≠ x in S, and no edge within S.
  SoQuery q;
  q.existential = true;
  q.relation_vars = {{"S", 1}};
  q.matrix = FoQ(
      "Q(h) := S(h) & (exists y . S(y) & y != h) "
      "& (forall u, v . (S(u) & S(v) -> !E(u, v)))");
  Schema schema{{"E", 2}};
  Instance path = Db("E(a, b), E(b, c)", schema);
  auto answer = EvaluateSo(q, path);
  ASSERT_TRUE(answer.ok());
  // {a, c} is independent; b is adjacent to both others but {b} ∪ {} too
  // small, and {a,c} ∌ b. So answers: a and c.
  EXPECT_EQ(answer->size(), 2u);
  EXPECT_TRUE(answer->Contains(Tuple{pool_.Intern("a")}));
  EXPECT_TRUE(answer->Contains(Tuple{pool_.Intern("c")}));
}

TEST_F(SoDatalogFixture, SoBudgetIsEnforced) {
  SoQuery q;
  q.existential = true;
  q.relation_vars = {{"S", 2}};  // n² candidate tuples
  q.matrix = FoQ("Q() := exists x . S(x, x)");
  Schema schema{{"E", 2}};
  // 6 nodes → 36 candidate tuples > default 24.
  Instance big = Db("E(a,b), E(b,c), E(c,d), E(d,e), E(e,f)", schema);
  auto result = SoSentenceHolds(q, big);
  EXPECT_FALSE(result.ok());
}

TEST_F(SoDatalogFixture, DatalogTransitiveClosure) {
  auto program = ParseDatalog(
      "T(x, y) :- E(x, y); T(x, y) :- E(x, z), T(z, y)", pool_);
  ASSERT_TRUE(program.ok()) << program.status().message();
  Schema schema{{"E", 2}};
  Instance d = Db("E(a, b), E(b, c), E(c, d)", schema);
  auto t = program->Query(d, "T");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 6u);  // all forward pairs
  EXPECT_TRUE(t->Contains(Tuple{pool_.Intern("a"), pool_.Intern("d")}));
}

TEST_F(SoDatalogFixture, DatalogSemiNaiveMatchesOnCycle) {
  auto program = ParseDatalog(
      "T(x, y) :- E(x, y); T(x, y) :- T(x, z), T(z, y)", pool_);
  ASSERT_TRUE(program.ok());
  Schema schema{{"E", 2}};
  Instance d = Db("E(a, b), E(b, a)", schema);
  auto t = program->Query(d, "T");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 4u);  // {a,b}²
}

TEST_F(SoDatalogFixture, DatalogWithDisequality) {
  auto program =
      ParseDatalog("NEq(x, y) :- E(x, y), x != y", pool_);
  ASSERT_TRUE(program.ok());
  Schema schema{{"E", 2}};
  Instance d = Db("E(a, a), E(a, b)", schema);
  auto answer = program->Query(d, "NEq");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 1u);
}

TEST_F(SoDatalogFixture, DatalogStratifiedNegation) {
  // Nodes not reachable from 'a'.
  auto program = ParseDatalog(
      "Reach(x) :- S(x);"
      "Reach(y) :- Reach(x), E(x, y);"
      "Node(x) :- E(x, y); Node(y) :- E(x, y);"
      "Unreach(x) :- Node(x), not Reach(x)",
      pool_);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->IsStratified());
  EXPECT_FALSE(program->IsPositive());

  Schema schema{{"E", 2}, {"S", 1}};
  Instance d = Db("S(a), E(a, b), E(c, d)", schema);
  auto answer = program->Query(d, "Unreach");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 2u);
  EXPECT_TRUE(answer->Contains(Tuple{pool_.Intern("c")}));
  EXPECT_TRUE(answer->Contains(Tuple{pool_.Intern("d")}));
}

TEST_F(SoDatalogFixture, DatalogRejectsUnstratified) {
  auto program = ParseDatalog("P(x) :- E(x, y), not P(y)", pool_);
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(program->IsStratified());
  Schema schema{{"E", 2}};
  Instance d = Db("E(a, b)", schema);
  EXPECT_FALSE(program->Evaluate(d).ok());
}

TEST_F(SoDatalogFixture, DatalogRejectsUnsafeRule) {
  auto program = ParseDatalog("P(x, w) :- E(x, y)", pool_);
  ASSERT_TRUE(program.ok());
  Schema schema{{"E", 2}};
  EXPECT_FALSE(program->Evaluate(Instance(schema)).ok());
}

TEST_F(SoDatalogFixture, DatalogSameGenerationProgram) {
  // Same-generation: a classic nonlinear Datalog workload.
  auto program = ParseDatalog(
      "SG(x, y) :- Par(x, p), Par(y, p);"
      "SG(x, y) :- Par(x, u), Par(y, v), SG(u, v)",
      pool_);
  ASSERT_TRUE(program.ok());
  Schema schema{{"Par", 2}};
  // A small tree: r has children a, b; a has child c; b has child d.
  Instance d = Db("Par(a, r), Par(b, r), Par(c, a), Par(d, b)", schema);
  auto sg = program->Query(d, "SG");
  ASSERT_TRUE(sg.ok());
  EXPECT_TRUE(sg->Contains(Tuple{pool_.Intern("a"), pool_.Intern("b")}));
  EXPECT_TRUE(sg->Contains(Tuple{pool_.Intern("c"), pool_.Intern("d")}));
  EXPECT_FALSE(sg->Contains(Tuple{pool_.Intern("a"), pool_.Intern("d")}));
}

TEST_F(SoDatalogFixture, QueryWrapperDatalogEval) {
  auto program = ParseDatalog(
      "T(x, y) :- E(x, y); T(x, y) :- E(x, z), T(z, y)", pool_);
  ASSERT_TRUE(program.ok());
  Query q = Query::FromDatalog(program.value(), "T");
  EXPECT_EQ(q.language(), Query::Language::kDatalog);
  EXPECT_EQ(q.arity(), 2);
  EXPECT_TRUE(q.IsSyntacticallyMonotone());
  Schema schema{{"E", 2}};
  Instance d = Db("E(a, b), E(b, c)", schema);
  EXPECT_EQ(q.Eval(d).size(), 3u);
}

}  // namespace
}  // namespace vqdr
