#ifndef VQDR_REDUCTIONS_MONOID_H_
#define VQDR_REDUCTIONS_MONOID_H_

#include <optional>
#include <string>
#include <vector>

#include "core/finite_search.h"
#include "cq/ucq.h"
#include "views/view_set.h"

namespace vqdr {

/// The Theorem 4.5 reduction: from the word problem for finite monoids
/// (undecidable, Gurevich [19]) to UCQ determinacy. The database schema is
/// σ = {R/3, p1/0, p2/0}, with R(x,y,z) encoding x·y = z; the *fixed* view
/// set checks that R is (pseudo-)monoidal via the (p1∧S)∨(p2∧T) trick, and
/// the query Q_{H,F} encodes "H implies F". Then V ↠ Q_{H,F} iff H implies
/// F over all finite monoidal functions.

/// An equation x·y = z over symbol names.
struct MonoidEquation {
  std::string x, y, z;
};

/// A word-problem instance: does H imply F (= lhs = rhs) over all finite
/// monoids?
struct WordProblem {
  std::vector<MonoidEquation> hypotheses;
  std::string lhs, rhs;
};

/// The paper's fixed schema for the reduction.
Schema MonoidSchema();

/// The fixed view set V. With `use_equality` the views are UCQ= exactly as
/// in the first construction; without it, equalities are replaced via the
/// pseudo-monoidal trick (x ≈ y iff ∃u,v R(u,v,x) ∧ R(u,v,y)) and the
/// function check is replaced by the three congruence equations.
ViewSet MonoidViews(bool use_equality);

/// The query Q_{H,F}. Symbols of F must occur in H. The paper's disjunct
/// (p1 ∧ p2) — whose answer is adom(R)² — is expanded into the 9 safe
/// disjuncts over R's argument positions.
UnionQuery MonoidQuery(const WordProblem& problem, bool use_equality);

/// A monoidal function counterexample found by bounded search: a complete,
/// onto, associative f: X² → X with an H-satisfying assignment violating F.
struct MonoidalCounterexample {
  int size = 0;
  /// table[a*size + b] = f(a, b), elements 0..size-1.
  std::vector<int> table;
  /// assignment of H's symbols to elements.
  std::vector<std::pair<std::string, int>> assignment;
};

/// Bounded semi-decision of "H implies F over finite monoidal functions":
/// exhaustively enumerates monoidal functions up to `max_size` elements
/// (|X|^(|X|²) tables, so max_size ≤ 3 in practice).
struct MonoidalSearchResult {
  bool implies_up_to_bound = true;
  std::optional<MonoidalCounterexample> counterexample;
  std::uint64_t functions_examined = 0;
  std::uint64_t monoidal_functions = 0;
};
MonoidalSearchResult SearchMonoidalCounterexample(const WordProblem& problem,
                                                  int max_size);

/// Converts a monoidal counterexample into the paper's determinacy
/// counterexample pair: D1 = graph(f) + p1, D2 = graph(f) + p2, which have
/// equal view images but different Q_{H,F} answers.
DeterminacyCounterexample MonoidCounterexampleToInstances(
    const MonoidalCounterexample& ce);

}  // namespace vqdr

#endif  // VQDR_REDUCTIONS_MONOID_H_
