# Empty dependencies file for bench_lmss.
# This may be replaced when dependencies are built.
