#ifndef VQDR_CQ_FINGERPRINT_H_
#define VQDR_CQ_FINGERPRINT_H_

#include <optional>
#include <string>
#include <unordered_map>

#include "cq/conjunctive_query.h"
#include "cq/ucq.h"
#include "data/instance.h"

namespace vqdr {

/// Canonical fingerprint of a CQ(=,≠): a string equal for two queries iff
/// they are syntactically isomorphic after normalization (equalities
/// propagated, exact duplicate atoms/disequalities collapsed, variables
/// renamed canonically, atoms sorted). Isomorphic queries are equivalent, so
/// the fingerprint is a sound memo key for any isomorphism-invariant verdict
/// (containment booleans in particular — see DESIGN.md §9). It is NOT sound
/// for artifact-valued results whose concrete variable names matter; those
/// use ExactCqKey.
///
/// The canonical renaming is computed by Weisfeiler–Leman color refinement
/// plus an individualization-refinement search; the leaf serialization is
/// exact (actual atoms under the candidate renaming), so hash collisions in
/// the refinement can only coarsen the search, never conflate
/// non-isomorphic queries.
///
/// Returns nullopt — "no fingerprint, bypass the cache" — for queries with
/// negation and for queries whose canonical search exceeds its internal
/// variable/leaf/node budgets. Unsatisfiable queries collapse to a
/// per-arity UNSAT token (they all have the empty result).
std::optional<std::string> CanonicalCqFingerprint(const ConjunctiveQuery& q);

/// Core-then-canonical fingerprint: minimizes the query to its core first,
/// so equivalent (not merely isomorphic) pure CQs share a fingerprint
/// (cores are unique up to isomorphism, Chandra–Merlin). Requires a pure CQ;
/// non-pure queries fall back to nullopt.
std::optional<std::string> CoreCqFingerprint(const ConjunctiveQuery& q);

/// Canonical fingerprint of a UCQ: the sorted, deduplicated canonical
/// fingerprints of its satisfiable disjuncts (all-unsatisfiable unions
/// collapse to a per-arity token). nullopt if any disjunct has none.
std::optional<std::string> CanonicalUcqFingerprint(const UnionQuery& q);

/// Exact (syntax-preserving) memo keys: byte-for-byte serializations, for
/// caching artifact-valued results that must replay identically.
std::string ExactCqKey(const ConjunctiveQuery& q);
std::string ExactUcqKey(const UnionQuery& q);

/// Exact content digest of an instance: schema declarations plus the sorted
/// tuple serialization from Instance::ToKey.
std::string InstanceMemoKey(const Instance& instance);

/// Weisfeiler–Leman color classes over the active domain of an instance:
/// iterated 1-WL refinement of the values, where a value's color is a hash
/// of its (relation, position, co-occurring colors) contexts. Two values in
/// different classes are provably NOT interchangeable (no automorphism of
/// the instance swaps them); equal class is necessary but not sufficient.
/// The indexed matcher's symmetry breaker (DESIGN.md §12) uses this as the
/// cheap filter in front of its exact transposition check. Returns one
/// dense class id per active-domain value.
std::unordered_map<Value, int> WlValueColorClasses(const Instance& instance);

}  // namespace vqdr

#endif  // VQDR_CQ_FINGERPRINT_H_
