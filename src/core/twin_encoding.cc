#include "core/twin_encoding.h"

#include <vector>

#include "base/check.h"
#include "fo/evaluator.h"
#include "fo/from_cq.h"

namespace vqdr {

namespace {

// Query → FO with relations prefixed.
FoQuery PrefixedFoQuery(const Query& q, const std::string& prefix) {
  FoQuery fo;
  switch (q.language()) {
    case Query::Language::kCq:
      fo = CqToFoQuery(q.AsCq());
      break;
    case Query::Language::kUcq:
      fo = UcqToFoQuery(q.AsUcq());
      break;
    case Query::Language::kFo:
      fo = q.AsFo();
      break;
    default:
      VQDR_CHECK(false) << "twin encoding supports CQ/UCQ/FO queries only";
  }
  fo.formula = fo.formula->RenameRelations(
      [&prefix](const std::string& r) { return prefix + r; });
  return fo;
}

// ∀x̄ (defn1(x̄) ↔ defn2(x̄)) for one view.
FoPtr ViewAgreement(const View& view, const std::string& p1,
                    const std::string& p2) {
  FoQuery q1 = PrefixedFoQuery(view.query, p1);
  FoQuery q2 = PrefixedFoQuery(view.query, p2);
  VQDR_CHECK(q1.free_vars == q2.free_vars);
  return FoFormula::Forall(q1.free_vars,
                           FoFormula::Iff(q1.formula, q2.formula));
}

}  // namespace

TwinEncoding BuildTwinEncoding(const ViewSet& views, const Query& q,
                               const Schema& base) {
  TwinEncoding encoding;
  encoding.twin_schema = base.WithPrefix(encoding.prefix1)
                             .UnionWith(base.WithPrefix(encoding.prefix2));

  std::vector<FoPtr> conjuncts;
  for (const View& v : views.views()) {
    conjuncts.push_back(ViewAgreement(v, encoding.prefix1, encoding.prefix2));
  }

  FoQuery q1 = PrefixedFoQuery(q, encoding.prefix1);
  FoQuery q2 = PrefixedFoQuery(q, encoding.prefix2);
  FoPtr disagreement = FoFormula::Exists(
      q1.free_vars,
      FoFormula::And({q1.formula, FoFormula::Not(q2.formula)}));
  conjuncts.push_back(disagreement);

  encoding.sentence = FoFormula::And(std::move(conjuncts));
  return encoding;
}

std::pair<Instance, Instance> SplitTwinInstance(const TwinEncoding& encoding,
                                                const Schema& base,
                                                const Instance& twin) {
  Instance d1(base);
  Instance d2(base);
  for (const RelationDecl& d : base.decls()) {
    d1.Set(d.name, twin.Get(encoding.prefix1 + d.name));
    d2.Set(d.name, twin.Get(encoding.prefix2 + d.name));
  }
  return {std::move(d1), std::move(d2)};
}

TwinSatResult BoundedTwinSearch(const TwinEncoding& encoding,
                                const Schema& base,
                                const EnumerationOptions& options) {
  TwinSatResult result;
  EnumerationOutcome outcome = ForEachInstance(
      encoding.twin_schema, options, [&](const Instance& twin) {
        if (FoSentenceHolds(encoding.sentence, twin)) {
          auto [d1, d2] = SplitTwinInstance(encoding, base, twin);
          result.verdict = SearchVerdict::kCounterexampleFound;
          result.counterexample = DeterminacyCounterexample{d1, d2};
          return false;
        }
        return true;
      });
  result.instances_examined = outcome.visited;
  if (result.verdict != SearchVerdict::kCounterexampleFound &&
      !outcome.complete) {
    result.verdict = SearchVerdict::kBudgetExhausted;
  }
  return result;
}

}  // namespace vqdr
