file(REMOVE_RECURSE
  "CMakeFiles/bench_monoid.dir/bench_monoid.cc.o"
  "CMakeFiles/bench_monoid.dir/bench_monoid.cc.o.d"
  "bench_monoid"
  "bench_monoid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monoid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
