#ifndef VQDR_CORE_REPORT_H_
#define VQDR_CORE_REPORT_H_

#include <optional>
#include <string>

#include "core/determinacy.h"
#include "core/finite_search.h"
#include "cq/conjunctive_query.h"
#include "memo/memo.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "views/view_set.h"

namespace vqdr {

/// The combined verdict the theory permits for finite determinacy of CQ
/// views and query (the problem itself is open/undecidable in general —
/// Theorems 4.5 and 5.11).
enum class DeterminacyVerdict {
  /// Unrestricted determinacy holds — a sound *proof* of finite
  /// determinacy, with a CQ rewriting attached.
  kDeterminedWithRewriting,
  /// A finite counterexample pair was found — finite determinacy refuted.
  kRefuted,
  /// Neither: not determined in the unrestricted sense and no finite
  /// counterexample within the search bound. For CQs this is the open
  /// territory of Theorem 5.11.
  kOpenWithinBound,
};

/// Options for the battery.
struct DeterminacyAnalysisOptions {
  /// Bound for the counterexample search.
  EnumerationOptions search;
  /// Also probe Q_V monotonicity when determinacy holds on the searched
  /// fragment (Theorem 5.11(3) evidence).
  bool probe_monotonicity = true;
  /// Optional resource budget: one envelope over the whole battery (chase
  /// decision, searches, probes). Takes effect everywhere search.budget
  /// would and in the chase decision too; when both are set, this one wins.
  /// nullptr = ungoverned.
  guard::Budget* budget = nullptr;

  /// Collect decision provenance into DeterminacyReport::explain: the chase
  /// decision's witness or refuting inverse, every counterexample pair the
  /// searches surface, memo probes, and a closing note naming the verdict.
  /// No-op (empty log) when VQDR_OBS is compiled out. See DESIGN.md §10.
  bool explain = false;
};

/// Everything the library can say about one (V, Q) pair, assembled.
struct DeterminacyReport {
  DeterminacyVerdict verdict = DeterminacyVerdict::kOpenWithinBound;

  /// The exact unrestricted decision (Theorem 3.7).
  UnrestrictedDeterminacyResult unrestricted;

  /// A minimised CQ rewriting when one exists.
  std::optional<ConjunctiveQuery> rewriting;

  /// The refuting pair when the search found one.
  std::optional<DeterminacyCounterexample> counterexample;

  /// A Q_V monotonicity violation on the searched fragment, if probed and
  /// found (evidence on Theorem 5.11(3)).
  std::optional<MonotonicityViolation> monotonicity_violation;

  /// Whether the bounded searches covered their spaces.
  bool searches_exhaustive = true;

  /// Why the battery ended: kComplete for a full run, otherwise the first
  /// budget stop reason encountered. A non-complete outcome never comes
  /// with a fabricated verdict — a budget-stopped unrestricted decision
  /// reports kOpenWithinBound with searches_exhaustive == false, and a
  /// stopped search leaves whatever sound verdict was already established.
  guard::Outcome outcome = guard::Outcome::kComplete;

  /// Observability counters/histograms attributed to this analysis (the
  /// metrics delta across the battery): chase.*, cq.hom.*, search.*, ...
  obs::MetricsSnapshot metrics;

  /// Memoization activity attributed to this analysis (the process-wide
  /// store's delta across the battery). All-zero when memoization is
  /// disabled or compiled out.
  memo::StatsSnapshot memo;

  /// Decision provenance (populated when opts.explain was set and VQDR_OBS
  /// is compiled in; empty otherwise). Serialize with explain.ToJson().
  obs::ExplainLog explain;

  /// One-paragraph human-readable summary, ending with "[metrics] ..." /
  /// "[memo] ..." blocks when the analysis recorded any.
  std::string Summary() const;
};

/// Runs the full battery: the chase decision, rewriting synthesis, bounded
/// counterexample search, and the optional monotonicity probe.
DeterminacyReport AnalyzeDeterminacy(const ViewSet& views,
                                     const ConjunctiveQuery& q,
                                     const Schema& base,
                                     const DeterminacyAnalysisOptions& opts);

/// *Instance-based* determinacy (the future direction named in the paper's
/// conclusion): relative to a given view extent E, do all pre-images of E
/// agree on Q? Decidable for CQ views by bounding the pre-image domain;
/// budgeted here.
struct InstanceDeterminacyResult {
  /// No pre-image of E within the budget (E off-image or budget too small).
  bool any_preimage = false;
  /// All pre-images found agree on Q.
  bool determined_on_instance = true;
  bool exhaustive = true;
  /// The common answer when determined.
  Relation answer{0};
  std::optional<std::pair<Instance, Instance>> disagreement;
};
InstanceDeterminacyResult DecideInstanceDeterminacy(
    const ViewSet& views, const Query& q, const Schema& base,
    const Instance& extent, int extra_values, std::uint64_t max_instances);

}  // namespace vqdr

#endif  // VQDR_CORE_REPORT_H_
