#ifndef VQDR_DATALOG_PROGRAM_H_
#define VQDR_DATALOG_PROGRAM_H_

#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "cq/conjunctive_query.h"
#include "data/instance.h"

namespace vqdr {

/// A Datalog rule: head :- positive atoms, negated atoms, disequalities.
/// Negation must be stratified (checked at program level). `Datalog≠` of
/// Corollaries 5.6/5.9 is the fragment without negated atoms.
struct DatalogRule {
  Atom head;
  std::vector<Atom> positive;
  std::vector<Atom> negated;
  std::vector<TermComparison> disequalities;

  /// Safety: head, negated and disequality variables occur positively.
  bool IsSafe() const;

  std::string ToString() const;
};

/// A Datalog(≠, stratified ¬) program. Predicates occurring in rule heads
/// are intensional (IDB); the rest are extensional (EDB).
class DatalogProgram {
 public:
  DatalogProgram() = default;

  void AddRule(DatalogRule rule) { rules_.push_back(std::move(rule)); }

  const std::vector<DatalogRule>& rules() const { return rules_; }

  /// IDB predicate names.
  std::set<std::string> IdbPredicates() const;

  /// True if the program has no negated IDB dependency cycle. Programs with
  /// negation only on EDB predicates are trivially stratified.
  bool IsStratified() const;

  /// True if no rule uses negation (Datalog≠ / plain Datalog).
  bool IsPositive() const;

  /// Evaluates the program on `edb` by stratified semi-naïve fixpoint and
  /// returns the instance extended with all IDB relations. Fails if the
  /// program is unsafe or not stratified.
  StatusOr<Instance> Evaluate(const Instance& edb) const;

  /// Convenience: evaluates and returns a single IDB relation.
  StatusOr<Relation> Query(const Instance& edb,
                           const std::string& predicate) const;

  std::string ToString() const;

 private:
  std::vector<DatalogRule> rules_;
};

/// Parses a Datalog program: rules in CQ syntax separated by ';' or
/// newlines, e.g.
///
///   T(x, y) :- E(x, y);
///   T(x, y) :- E(x, z), T(z, y)
StatusOr<DatalogProgram> ParseDatalog(std::string_view text, NamePool& pool);

}  // namespace vqdr

#endif  // VQDR_DATALOG_PROGRAM_H_
