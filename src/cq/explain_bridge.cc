#include "cq/explain_bridge.h"

namespace vqdr {

namespace {

obs::ExplainTerm ToExplainTerm(const Term& t) {
  if (t.is_const()) return obs::ExplainTerm::Const(t.constant().id);
  return obs::ExplainTerm::Var(t.var());
}

}  // namespace

std::vector<obs::ExplainFact> ToExplainFacts(const Instance& instance) {
  std::vector<obs::ExplainFact> facts;
  for (const RelationDecl& decl : instance.schema().decls()) {
    for (const Tuple& tuple : instance.Get(decl.name).tuples()) {
      obs::ExplainFact fact;
      fact.relation = decl.name;
      fact.tuple.reserve(tuple.size());
      for (Value v : tuple) fact.tuple.push_back(v.id);
      facts.push_back(std::move(fact));
    }
  }
  return facts;
}

obs::ExplainAtom ToExplainAtom(const Atom& atom) {
  obs::ExplainAtom out;
  out.relation = atom.predicate;
  out.args.reserve(atom.args.size());
  for (const Term& t : atom.args) out.args.push_back(ToExplainTerm(t));
  return out;
}

obs::ExplainWitness MakeContainmentWitness(const ConjunctiveQuery& q,
                                           const Instance& db,
                                           const Tuple& expected_head,
                                           const Binding& binding) {
  // Normalize exactly as the matcher does, so atoms/disequalities refer to
  // the variables the binding actually assigns.
  bool satisfiable = true;
  ConjunctiveQuery normalized = q.PropagateEqualities(&satisfiable);

  obs::ExplainWitness witness;
  for (const Atom& atom : normalized.atoms()) {
    witness.atoms.push_back(ToExplainAtom(atom));
  }
  for (const Term& t : normalized.head_terms()) {
    witness.head.push_back(ToExplainTerm(t));
  }
  for (const TermComparison& c : normalized.disequalities()) {
    witness.disequalities.emplace_back(ToExplainTerm(c.lhs),
                                       ToExplainTerm(c.rhs));
  }
  for (const auto& [var, value] : binding) {
    witness.binding.emplace(var, value.id);
  }
  witness.instance = ToExplainFacts(db);
  witness.expected_head.reserve(expected_head.size());
  for (Value v : expected_head) witness.expected_head.push_back(v.id);
  return witness;
}

}  // namespace vqdr
