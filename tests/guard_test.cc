// Tests for the guard subsystem: Budget limit semantics (steps, atoms,
// wall-clock deadline, chase levels), the Outcome lattice and its Status
// mapping, and graceful degradation of every governed engine entry point —
// chase chain, finite searches, containment, determinacy, report, batch.
// Budget-stopped runs must return an honest prefix of work and never a
// fabricated verdict.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "chase/chain.h"
#include "core/determinacy.h"
#include "core/determinacy_batch.h"
#include "core/finite_search.h"
#include "core/report.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "gen/workloads.h"
#include "guard/budget.h"
#include "guard/outcome.h"

namespace vqdr {
namespace {

using guard::Budget;
using guard::BudgetSpec;
using guard::Outcome;

// --- Budget unit semantics -------------------------------------------------

TEST(GuardBudget, DefaultBudgetNeverStops) {
  Budget budget;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(budget.Checkpoint(), Outcome::kComplete);
  }
  EXPECT_EQ(budget.NoteAtoms(1'000'000), Outcome::kComplete);
  EXPECT_FALSE(budget.Stopped());
  EXPECT_EQ(budget.stop_reason(), Outcome::kComplete);
  EXPECT_EQ(budget.steps_used(), 1000u);
}

TEST(GuardBudget, StepBudgetTripsAndSticks) {
  Budget budget(BudgetSpec{.max_steps = 10});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(budget.Checkpoint(), Outcome::kComplete) << "step " << i;
  }
  EXPECT_EQ(budget.Checkpoint(), Outcome::kStepBudgetExhausted);
  EXPECT_TRUE(budget.Stopped());
  // Sticky: later checkpoints keep reporting the same reason.
  EXPECT_EQ(budget.Checkpoint(), Outcome::kStepBudgetExhausted);
  EXPECT_EQ(budget.stop_reason(), Outcome::kStepBudgetExhausted);
}

TEST(GuardBudget, BulkStepsChargeAtOnce) {
  Budget budget(BudgetSpec{.max_steps = 100});
  EXPECT_EQ(budget.Checkpoint(64), Outcome::kComplete);
  EXPECT_EQ(budget.Checkpoint(64), Outcome::kStepBudgetExhausted);
  EXPECT_EQ(budget.steps_used(), 128u);
}

TEST(GuardBudget, AtomBudgetTrips) {
  Budget budget(BudgetSpec{.max_atoms = 50});
  EXPECT_EQ(budget.NoteAtoms(30), Outcome::kComplete);
  EXPECT_EQ(budget.NoteAtoms(30), Outcome::kMemoryBudgetExhausted);
  EXPECT_EQ(budget.stop_reason(), Outcome::kMemoryBudgetExhausted);
  EXPECT_EQ(budget.atoms_used(), 60u);
}

TEST(GuardBudget, DeadlineTripsPromptly) {
  // An already-expired deadline must trip within one clock stride of
  // checkpoints, never run unbounded.
  Budget budget(BudgetSpec{.wall_ms = 0});
  Outcome last = Outcome::kComplete;
  std::uint64_t polls = 0;
  while (guard::IsComplete(last) && polls < 10 * Budget::kClockStride) {
    last = budget.Checkpoint();
    ++polls;
  }
  EXPECT_EQ(last, Outcome::kDeadlineExceeded);
  EXPECT_LE(polls, 2 * Budget::kClockStride);
}

TEST(GuardBudget, CancelIsSticky) {
  Budget budget;
  budget.Cancel();
  EXPECT_TRUE(budget.Stopped());
  EXPECT_EQ(budget.stop_reason(), Outcome::kCancelled);
  EXPECT_EQ(budget.Checkpoint(), Outcome::kCancelled);
}

TEST(GuardBudget, InternalErrorOutranksEveryOtherStop) {
  Budget budget(BudgetSpec{.max_steps = 1});
  EXPECT_EQ(budget.Checkpoint(5), Outcome::kStepBudgetExhausted);
  budget.MarkInternalError();
  EXPECT_EQ(budget.stop_reason(), Outcome::kInternalError);
  // But nothing outranks an internal error once recorded.
  budget.Cancel();
  EXPECT_EQ(budget.stop_reason(), Outcome::kInternalError);
}

TEST(GuardBudget, FirstSoftStopWins) {
  Budget budget;
  budget.Cancel();
  Budget step_budget(BudgetSpec{.max_steps = 1});
  step_budget.Checkpoint(2);
  // A later, different soft reason does not overwrite the first.
  step_budget.Cancel();
  EXPECT_EQ(step_budget.stop_reason(), Outcome::kStepBudgetExhausted);
}

TEST(GuardBudget, AllowsChaseLevelHonoursSpec) {
  Budget unlimited;
  EXPECT_TRUE(unlimited.AllowsChaseLevel(1'000'000));
  Budget capped(BudgetSpec{.max_chase_levels = 2});
  EXPECT_TRUE(capped.AllowsChaseLevel(1));
  EXPECT_TRUE(capped.AllowsChaseLevel(2));
  EXPECT_FALSE(capped.AllowsChaseLevel(3));
}

TEST(GuardBudget, NullTolerantHelpers) {
  EXPECT_EQ(guard::Check(nullptr), Outcome::kComplete);
  EXPECT_EQ(guard::Check(nullptr, 1'000'000), Outcome::kComplete);
  EXPECT_EQ(guard::CheckAtoms(nullptr, 1'000'000), Outcome::kComplete);
  EXPECT_EQ(guard::StopReason(nullptr), Outcome::kComplete);
}

// --- Outcome lattice -------------------------------------------------------

TEST(GuardOutcome, MergeIsMaxBySeverity) {
  using guard::MergeOutcome;
  EXPECT_EQ(MergeOutcome(Outcome::kComplete, Outcome::kComplete),
            Outcome::kComplete);
  EXPECT_EQ(MergeOutcome(Outcome::kComplete, Outcome::kDeadlineExceeded),
            Outcome::kDeadlineExceeded);
  EXPECT_EQ(
      MergeOutcome(Outcome::kStepBudgetExhausted, Outcome::kDeadlineExceeded),
      Outcome::kStepBudgetExhausted);
  EXPECT_EQ(MergeOutcome(Outcome::kCancelled, Outcome::kInternalError),
            Outcome::kInternalError);
}

TEST(GuardOutcome, NamesAreStable) {
  EXPECT_STREQ(guard::OutcomeName(Outcome::kComplete), "COMPLETE");
  EXPECT_STREQ(guard::OutcomeName(Outcome::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(guard::OutcomeName(Outcome::kStepBudgetExhausted),
               "STEP_BUDGET_EXHAUSTED");
  EXPECT_STREQ(guard::OutcomeName(Outcome::kMemoryBudgetExhausted),
               "MEMORY_BUDGET_EXHAUSTED");
  EXPECT_STREQ(guard::OutcomeName(Outcome::kCancelled), "CANCELLED");
  EXPECT_STREQ(guard::OutcomeName(Outcome::kInternalError), "INTERNAL_ERROR");
}

TEST(GuardOutcome, StatusMappingDistinguishesExhaustionFromMisuse) {
  EXPECT_TRUE(guard::OutcomeToStatus(Outcome::kComplete, "x").ok());
  EXPECT_EQ(guard::OutcomeToStatus(Outcome::kDeadlineExceeded, "x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(guard::OutcomeToStatus(Outcome::kStepBudgetExhausted, "x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(guard::OutcomeToStatus(Outcome::kMemoryBudgetExhausted, "x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(guard::OutcomeToStatus(Outcome::kCancelled, "x").code(),
            StatusCode::kCancelled);
  EXPECT_EQ(guard::OutcomeToStatus(Outcome::kInternalError, "x").code(),
            StatusCode::kInternal);
}

// --- governed engines ------------------------------------------------------

class GuardEngineFixture : public ::testing::Test {
 protected:
  ConjunctiveQuery Cq(const std::string& text) {
    auto q = ParseCq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message();
    return q.value();
  }

  ViewSet CqViews(const std::vector<std::string>& defs) {
    ViewSet views;
    for (const std::string& def : defs) {
      ConjunctiveQuery q = Cq(def);
      views.Add(q.head_name(), Query::FromCq(q));
    }
    return views;
  }

  NamePool pool_;
};

TEST_F(GuardEngineFixture, SearchStepBudgetReturnsHonestPrefix) {
  ViewSet views = PathViews(2);
  Query q = Query::FromCq(ChainQuery(3));
  Schema base{{"E", 2}};

  Budget budget(BudgetSpec{.max_steps = 5});
  EnumerationOptions options;
  options.domain_size = 3;  // 2^9 instances: far beyond the budget
  options.budget = &budget;
  DeterminacySearchResult result =
      SearchDeterminacyCounterexample(views, q, base, options);
  EXPECT_EQ(result.verdict, SearchVerdict::kBudgetExhausted);
  EXPECT_EQ(result.outcome, Outcome::kStepBudgetExhausted);
  EXPECT_FALSE(result.counterexample.has_value());
  // The examined prefix is honest: at most the allowed steps (+1 for the
  // instance whose checkpoint tripped).
  EXPECT_LE(result.instances_examined, 6u);
}

TEST_F(GuardEngineFixture, DeadlineFiresWithin100msOnHostileInput) {
  // Acceptance criterion: a 2^25-instance space at domain size 5 would run
  // for ages; a 50 ms deadline must stop it within 100 ms of the limit.
  ViewSet views = PathViews(2);
  Query q = Query::FromCq(ChainQuery(3));
  Schema base{{"E", 2}};

  Budget budget(BudgetSpec{.wall_ms = 50});
  EnumerationOptions options;
  options.domain_size = 5;
  options.max_instances = 1ull << 40;
  options.budget = &budget;
  auto start = std::chrono::steady_clock::now();
  DeterminacySearchResult result =
      SearchDeterminacyCounterexample(views, q, base, options);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_EQ(result.verdict, SearchVerdict::kBudgetExhausted);
  EXPECT_EQ(result.outcome, Outcome::kDeadlineExceeded);
  EXPECT_LE(elapsed, 150) << "deadline overshot by " << (elapsed - 50)
                          << " ms";
}

TEST_F(GuardEngineFixture, MonotonicitySearchHonoursBudget) {
  ViewSet views = PathViews(2);
  Query q = Query::FromCq(ChainQuery(2));
  Schema base{{"E", 2}};

  Budget budget(BudgetSpec{.max_steps = 3});
  EnumerationOptions options;
  options.domain_size = 2;
  options.budget = &budget;
  MonotonicitySearchResult result =
      SearchMonotonicityViolation(views, q, base, options);
  EXPECT_EQ(result.verdict, SearchVerdict::kBudgetExhausted);
  EXPECT_EQ(result.outcome, Outcome::kStepBudgetExhausted);
}

TEST_F(GuardEngineFixture, ChaseLevelCapTruncatesAtLevelBoundary) {
  // P4 over {P2, P3}: the chase-back actually materializes facts, so the
  // levels are non-trivial and the prefix comparison is meaningful.
  ViewSet views = CqViews({"P2(x, y) :- E(x, z), E(z, y)",
                           "P3(x, y) :- E(x, a), E(a, b), E(b, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, c), E(c, y)");

  ValueFactory unbounded_factory;
  ChaseChain full = BuildChaseChain(views, q, /*levels=*/3, unbounded_factory);
  ASSERT_EQ(full.d.size(), 4u);
  EXPECT_EQ(full.outcome, Outcome::kComplete);

  Budget budget(BudgetSpec{.max_chase_levels = 1});
  ChaseChainOptions options;
  options.levels = 3;
  options.budget = &budget;
  ValueFactory capped_factory;
  ChaseChain capped = BuildChaseChain(views, q, options, capped_factory);
  ASSERT_EQ(capped.d.size(), 2u);  // levels 0 and 1 only
  EXPECT_EQ(capped.outcome, Outcome::kStepBudgetExhausted);
  // Levels are only appended whole, so the prefix matches the full chain.
  for (std::size_t k = 0; k < capped.d.size(); ++k) {
    EXPECT_EQ(capped.d[k], full.d[k]) << "level " << k;
    EXPECT_EQ(capped.d_prime[k], full.d_prime[k]) << "level " << k;
  }
}

TEST_F(GuardEngineFixture, ChaseAtomBudgetStopsWithWholeLevels) {
  ViewSet views = CqViews({"P2(x, y) :- E(x, z), E(z, y)",
                           "P3(x, y) :- E(x, a), E(a, b), E(b, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, c), E(c, y)");

  Budget budget(BudgetSpec{.max_atoms = 10});
  ChaseChainOptions options;
  options.levels = 3;
  options.budget = &budget;
  ValueFactory factory;
  ChaseChain chain = BuildChaseChain(views, q, options, factory);
  EXPECT_EQ(chain.outcome, Outcome::kMemoryBudgetExhausted);
  EXPECT_LT(chain.d.size(), 4u);
  // Whatever was kept is exact: sizes of the parallel sequences agree.
  EXPECT_EQ(chain.d.size(), chain.s.size());
  EXPECT_EQ(chain.d.size(), chain.s_prime.size());
  EXPECT_EQ(chain.d.size(), chain.d_prime.size());
}

TEST_F(GuardEngineFixture, GovernedDeterminacyNeverFabricatesAVerdict) {
  ViewSet views = CqViews({"V(x, y) :- E(x, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, z), E(z, y)");
  // Ungoverned: determined.
  ASSERT_TRUE(DecideUnrestrictedDeterminacy(views, q).determined);

  // One chase step is nowhere near enough; the governed call must report
  // the stop instead of claiming either verdict.
  Budget budget(BudgetSpec{.max_steps = 1});
  UnrestrictedDeterminacyResult result =
      DecideUnrestrictedDeterminacy(views, q, &budget);
  EXPECT_EQ(result.outcome, Outcome::kStepBudgetExhausted);
  EXPECT_FALSE(result.determined);
  EXPECT_FALSE(result.canonical_rewriting.has_value());
}

TEST_F(GuardEngineFixture, GovernedDeterminacyCompleteMatchesUngoverned) {
  ViewSet views = CqViews({"P1(x, y) :- E(x, y)",
                           "P2(x, y) :- E(x, z), E(z, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, y)");
  Budget budget;  // unlimited
  UnrestrictedDeterminacyResult governed =
      DecideUnrestrictedDeterminacy(views, q, &budget);
  UnrestrictedDeterminacyResult plain = DecideUnrestrictedDeterminacy(views, q);
  EXPECT_EQ(governed.outcome, Outcome::kComplete);
  EXPECT_EQ(governed.determined, plain.determined);
  EXPECT_EQ(governed.chase_inverse, plain.chase_inverse);
}

TEST_F(GuardEngineFixture, GovernedContainmentBudgetStopsSweep) {
  // Disequalities force the identification-pattern sweep (exponential in
  // variables), so a tiny step budget trips mid-sweep.
  ConjunctiveQuery q1 = Cq(
      "Q(a, b, c, d, e) :- R(a, b), R(b, c), R(c, d), R(d, e), a != e");
  ConjunctiveQuery q2 = Cq("Q(a, b, c, d, e) :- R(a, b), R(b, c), R(d, e)");

  CqContainmentOptions unlimited;
  ContainmentResult full = CqContainedInGoverned(q1, q2, unlimited);
  EXPECT_EQ(full.outcome, Outcome::kComplete);
  EXPECT_TRUE(full.contained);
  ASSERT_GT(full.patterns_checked, 2u);

  Budget budget(BudgetSpec{.max_steps = 2});
  CqContainmentOptions options;
  options.budget = &budget;
  ContainmentResult stopped = CqContainedInGoverned(q1, q2, options);
  EXPECT_EQ(stopped.outcome, Outcome::kStepBudgetExhausted);
  EXPECT_LT(stopped.patterns_checked, full.patterns_checked);
}

TEST_F(GuardEngineFixture, ContainmentWitnessIsDefinitiveUnderBudget) {
  // Non-containment: the witness (first canonical db failing Q2) is found
  // immediately and stays trustworthy whatever the budget says afterwards.
  ConjunctiveQuery q1 = Cq("Q(x, y) :- R(x, y)");
  ConjunctiveQuery q2 = Cq("Q(x, y) :- R(x, y), R(y, x)");
  Budget budget(BudgetSpec{.max_steps = 1000});
  CqContainmentOptions options;
  options.budget = &budget;
  ContainmentResult result = CqContainedInGoverned(q1, q2, options);
  EXPECT_FALSE(result.contained);
}

TEST_F(GuardEngineFixture, GovernedUcqContainmentMergesDisjunctOutcomes) {
  auto u1 = ParseUcq("Q(x) :- A(x) | Q(x) :- B(x)", pool_);
  auto u2 = ParseUcq("Q(x) :- A(x) | Q(x) :- B(x)", pool_);
  ASSERT_TRUE(u1.ok() && u2.ok());
  CqContainmentOptions options;
  ContainmentResult result =
      UcqContainedInGoverned(u1.value(), u2.value(), options);
  EXPECT_TRUE(result.contained);
  EXPECT_EQ(result.outcome, Outcome::kComplete);
}

TEST_F(GuardEngineFixture, ReportPropagatesBudgetOutcome) {
  ViewSet views = CqViews({"V(x, y) :- E(x, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, z), E(z, y)");
  Schema base{{"E", 2}};

  Budget budget(BudgetSpec{.max_steps = 1});
  DeterminacyAnalysisOptions options;
  options.budget = &budget;
  options.search.domain_size = 2;
  DeterminacyReport report = AnalyzeDeterminacy(views, q, base, options);
  EXPECT_EQ(report.verdict, DeterminacyVerdict::kOpenWithinBound);
  EXPECT_FALSE(report.searches_exhaustive);
  EXPECT_EQ(report.outcome, Outcome::kStepBudgetExhausted);
  EXPECT_NE(report.Summary().find("STEP_BUDGET_EXHAUSTED"), std::string::npos);
}

TEST_F(GuardEngineFixture, GovernedBatchSharesOneEnvelope) {
  DeterminacyBatchItem item;
  item.views = CqViews({"V(x, y) :- E(x, y)"});
  item.query = Cq("Q(x, y) :- E(x, z), E(z, y)");
  std::vector<DeterminacyBatchItem> items(6, item);

  // Ungoverned: every item decided.
  DeterminacyBatchResult full =
      DecideUnrestrictedDeterminacyBatchGoverned(items, /*threads=*/1);
  EXPECT_EQ(full.outcome, Outcome::kComplete);
  EXPECT_EQ(full.items_completed, items.size());
  for (const auto& r : full.results) EXPECT_TRUE(r.determined);

  // A shared envelope too small for the batch: a prefix completes, the
  // rest carry the stop reason, and nothing claims a verdict it cannot.
  Budget budget(BudgetSpec{.max_steps = 4});
  DeterminacyBatchResult partial =
      DecideUnrestrictedDeterminacyBatchGoverned(items, /*threads=*/1, &budget);
  EXPECT_EQ(partial.outcome, Outcome::kStepBudgetExhausted);
  EXPECT_LT(partial.items_completed, items.size());
  ASSERT_EQ(partial.results.size(), items.size());
  for (const auto& r : partial.results) {
    if (guard::IsComplete(r.outcome)) {
      EXPECT_TRUE(r.determined);
    } else {
      EXPECT_EQ(r.outcome, Outcome::kStepBudgetExhausted);
    }
  }
}

TEST_F(GuardEngineFixture, CancelledBudgetStopsEverythingDownstream) {
  ViewSet views = PathViews(2);
  Query q = Query::FromCq(ChainQuery(3));
  Schema base{{"E", 2}};

  Budget budget;
  budget.Cancel();
  EnumerationOptions options;
  options.domain_size = 2;
  options.budget = &budget;
  DeterminacySearchResult result =
      SearchDeterminacyCounterexample(views, q, base, options);
  EXPECT_EQ(result.verdict, SearchVerdict::kBudgetExhausted);
  EXPECT_EQ(result.outcome, Outcome::kCancelled);
  EXPECT_LE(result.instances_examined, 1u);
}

}  // namespace
}  // namespace vqdr
