file(REMOVE_RECURSE
  "CMakeFiles/test_fo.dir/fo_test.cc.o"
  "CMakeFiles/test_fo.dir/fo_test.cc.o.d"
  "test_fo"
  "test_fo.pdb"
  "test_fo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
