# Empty compiler generated dependencies file for determinacy_tool.
# This may be replaced when dependencies are built.
