file(REMOVE_RECURSE
  "CMakeFiles/bench_determinacy.dir/bench_determinacy.cc.o"
  "CMakeFiles/bench_determinacy.dir/bench_determinacy.cc.o.d"
  "bench_determinacy"
  "bench_determinacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_determinacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
