// Concurrency battery for the observability surfaces (run under
// ThreadSanitizer by the CI tsan job via the PAR label): drains the trace
// ring, snapshots metrics, and exports Prometheus text WHILE the parallel
// engines hammer the same structures from worker threads, at thread counts
// 2 and 8. The assertions are deliberately weak — the verdicts must stay
// correct and the drained events well-formed — because the point is the
// data-race-freedom tsan checks, not the values.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/finite_search.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "obs/context.h"
#include "obs/explain.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace vqdr {
namespace {

class ObsStressFixture : public ::testing::TestWithParam<int> {
 protected:
  ConjunctiveQuery Cq(const std::string& text) {
    auto q = ParseCq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message();
    return q.value();
  }

  ViewSet CqViews(const std::vector<std::string>& defs) {
    ViewSet views;
    for (const std::string& def : defs) {
      ConjunctiveQuery q = Cq(def);
      views.Add(q.head_name(), Query::FromCq(q));
    }
    return views;
  }

  NamePool pool_;
};

TEST_P(ObsStressFixture, DrainingTracesWhileParallelSearchRuns) {
  const int threads = GetParam();
  obs::EnableTracing();
  obs::DrainTraceEvents();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> drained{0};
  std::thread reader([&] {
    // Continuously drain the ring and fold whatever lands into a profile;
    // under tsan this races against every worker's span completion unless
    // the ring is properly synchronized.
    while (!done.load(std::memory_order_acquire)) {
      std::vector<obs::TraceEvent> events = obs::DrainTraceEvents();
      drained.fetch_add(events.size(), std::memory_order_relaxed);
      obs::Profile profile = obs::BuildProfile(events);
      ASSERT_EQ(profile.span_count, events.size());
      std::this_thread::yield();
    }
    drained.fetch_add(obs::DrainTraceEvents().size(),
                      std::memory_order_relaxed);
  });

  // Projection views lose the edge target, so a refuting pair exists at
  // domain size 2 (same test case FiniteSearchRefutesNonDeterminedCase pins).
  ViewSet views = CqViews({"V(x) :- E(x, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, y)");
  EnumerationOptions options;
  options.domain_size = 2;
  options.threads = threads;
  DeterminacySearchResult result = SearchDeterminacyCounterexample(
      views, Query::FromCq(q), Schema{{"E", 2}}, options);

  done.store(true, std::memory_order_release);
  reader.join();
  obs::DisableTracing();
  obs::DrainTraceEvents();

  // The verdict must be untouched by the concurrent drains.
  EXPECT_EQ(result.verdict, SearchVerdict::kCounterexampleFound);
}

TEST_P(ObsStressFixture, SnapshottingMetricsWhileParallelSweepRecords) {
  const int threads = GetParam();
  std::atomic<bool> done{false};
  std::thread reader([&] {
    obs::MetricsSnapshot base = obs::SnapshotMetrics();
    while (!done.load(std::memory_order_acquire)) {
      obs::MetricsSnapshot delta = obs::SnapshotDelta(base);
      std::string text = obs::ExportPrometheusText(delta);
      // Histogram invariant under concurrent Record(): the windowed bucket
      // sum never exceeds the windowed count... but relaxed per-bucket
      // increments can lag the count load, so only sanity-check the shape.
      for (const auto& [name, hs] : delta.histograms) {
        std::uint64_t bucket_sum = 0;
        for (std::uint64_t b : hs.buckets) bucket_sum += b;
        EXPECT_LE(hs.min, hs.max) << name;
        (void)bucket_sum;
      }
      std::this_thread::yield();
    }
  });

  ConjunctiveQuery left = Cq("Q(x, y) :- E(x, y), x != y");
  ConjunctiveQuery right = Cq("Q(x, y) :- E(x, y)");
  CqContainmentOptions options;
  options.threads = threads;
  for (int i = 0; i < 3; ++i) {
    VQDR_HISTOGRAM_RECORD("test.stress.hist", 1u << (i % 20));
    EXPECT_TRUE(CqContainedIn(left, right, options));
  }

  done.store(true, std::memory_order_release);
  reader.join();
}

TEST_P(ObsStressFixture, SharedExplainLogSurvivesParallelSweep) {
  const int threads = GetParam();
  // One ExplainLog shared by every worker of the pattern sweep: appends must
  // be internally synchronized, and every recorded witness must replay.
  ConjunctiveQuery left = Cq("Q(x, y, z) :- E(x, y), E(y, z), x != z");
  ConjunctiveQuery right = Cq("Q(x, y, z) :- E(x, y), E(y, z)");

  obs::ExplainLog log;
  CqContainmentOptions options;
  options.threads = threads;
  options.explain = &log;
  EXPECT_TRUE(CqContainedIn(left, right, options));

  if (!obs::kExplainEnabled) return;
  int witnesses = 0;
  for (const obs::ExplainEvent& e : log.events()) {
    if (e.kind != obs::ExplainKind::kWitness) continue;
    ++witnesses;
    std::string error;
    EXPECT_TRUE(e.witness.has_value() && e.witness->Verify(&error)) << error;
  }
  EXPECT_GE(witnesses, 1);
}

#ifndef VQDR_OBS_DISABLED

// Live-telemetry battery (DESIGN.md §11): GetParam() client threads each
// open their own OpScope and run a full engine call while a snapshotter
// thread hammers every registry read surface. Unlike the weak assertions
// above, the attribution checks here are EXACT: a serial client's per-op
// "search.instances" delta must equal its own result's instances_examined —
// any cross-op pollution under concurrency breaks the equality.
TEST_P(ObsStressFixture, RegistryAttributesCountersToTheRightOpConcurrently) {
  const int threads = GetParam();

  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::vector<obs::OpSnapshot> ops = obs::SnapshotOps();
      std::string json = obs::OpsToJson(ops, 1754650000000ull);
      ASSERT_EQ(json.find("{\"event\":\"ops\""), 0u);
      std::string text = obs::RenderOpsText(ops);
      ASSERT_FALSE(text.empty());
      (void)obs::SnapshotThreadStacks();
      std::this_thread::yield();
    }
  });

  struct ClientResult {
    obs::OpId id = 0;
    bool parallel = false;
    std::uint64_t examined = 0;
    std::uint64_t counter = 0;
    std::uint64_t tasks = 0;
    bool phase_seen = false;
    SearchVerdict verdict = SearchVerdict::kNoneWithinBound;
  };
  std::vector<ClientResult> clients(static_cast<std::size_t>(threads));

  // Each client re-parses its own inputs: NamePool is not shared across
  // threads.
  auto client = [&](std::size_t i) {
    NamePool pool;
    auto v = ParseCq("V(x) :- E(x, y)", pool);
    ASSERT_TRUE(v.ok());
    ViewSet views;
    views.Add(v.value().head_name(), Query::FromCq(v.value()));
    auto q = ParseCq("Q(x, y) :- E(x, y)", pool);
    ASSERT_TRUE(q.ok());

    obs::OpScope op(obs::OpKind::kOther, "stress.client");
    clients[i].id = op.id();
    {
      // Span bookkeeping must land on THIS op even while every other client
      // pushes spans of its own.
      VQDR_TRACE_SPAN("stress.client.phase");
      clients[i].phase_seen =
          obs::SnapshotOp(op.id()).phase == std::string("stress.client.phase");
    }
    EnumerationOptions options;
    options.domain_size = 2;
    // Even clients sweep serially (exact attribution identity); odd clients
    // shard across their own pool (exercises task-boundary propagation).
    clients[i].parallel = (i % 2) == 1;
    options.threads = clients[i].parallel ? threads : 1;
    DeterminacySearchResult result = SearchDeterminacyCounterexample(
        views, Query::FromCq(q.value()), Schema{{"E", 2}}, options);
    clients[i].verdict = result.verdict;
    clients[i].examined = result.instances_examined;

    obs::OpSnapshot snap = obs::SnapshotOp(op.id());
    auto it = snap.counters.find("search.instances");
    clients[i].counter = it == snap.counters.end() ? 0 : it->second;
    clients[i].tasks = snap.tasks;
  };

  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    workers.emplace_back(client, i);
  }
  for (std::thread& w : workers) w.join();
  done.store(true, std::memory_order_release);
  snapshotter.join();

  for (std::size_t i = 0; i < clients.size(); ++i) {
    const ClientResult& c = clients[i];
    ASSERT_NE(c.id, 0u) << "client " << i;
    EXPECT_EQ(c.verdict, SearchVerdict::kCounterexampleFound) << "client " << i;
    EXPECT_TRUE(c.phase_seen) << "client " << i;
    ASSERT_GT(c.examined, 0u) << "client " << i;
    if (c.parallel) {
      // Workers may race past the earliest conflict, so the per-op tally can
      // only exceed the deterministic prefix — but it must still be this
      // op's own work, and the pool tasks must have bound to it.
      EXPECT_GE(c.counter, c.examined) << "client " << i;
      EXPECT_GT(c.tasks, 0u) << "client " << i;
    } else {
      EXPECT_EQ(c.counter, c.examined) << "client " << i;
    }
    for (std::size_t j = i + 1; j < clients.size(); ++j) {
      EXPECT_NE(c.id, clients[j].id);
    }
  }
}

// Every log record must carry the op id of the thread that emitted it, even
// when GetParam() clients log through the shared sink at once.
TEST_P(ObsStressFixture, LoggerStampsRecordsWithTheEmittingOp) {
  const int threads = GetParam();
  constexpr int kRecordsPerClient = 50;

  std::mutex mu;
  std::vector<std::string> lines;
  obs::SetLogCapture([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  obs::SetLogLevel(obs::LogLevel::kInfo);
  obs::SetLogRateLimit(0);  // unlimited: shedding would break the tally

  std::vector<obs::OpId> ids(static_cast<std::size_t>(threads), 0);
  std::vector<std::thread> workers;
  for (int i = 0; i < threads; ++i) {
    workers.emplace_back([&, i] {
      obs::OpScope op(obs::OpKind::kOther, "stress.logger");
      ids[static_cast<std::size_t>(i)] = op.id();
      for (int n = 0; n < kRecordsPerClient; ++n) {
        obs::LogRecord(obs::LogLevel::kInfo, "stress.log")
            .Num("client", i)
            .Num("n", n);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  obs::SetLogLevel(obs::LogLevel::kOff);
  obs::SetLogCapture(nullptr);
  obs::SetLogRateLimit(1000);

  // Drop the built-in op.done lifecycle records the closing scopes emit;
  // the tally below is for this test's own records only.
  std::erase_if(lines, [](const std::string& l) {
    return l.find("\"event\":\"stress.log\"") == std::string::npos;
  });
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(threads) * kRecordsPerClient);
  auto field = [](const std::string& line, const std::string& key) {
    std::size_t at = line.find("\"" + key + "\":");
    EXPECT_NE(at, std::string::npos) << line;
    return std::stoull(line.substr(at + key.size() + 3));
  };
  for (const std::string& line : lines) {
    std::uint64_t client = field(line, "client");
    ASSERT_LT(client, ids.size()) << line;
    EXPECT_EQ(field(line, "op"), ids[client]) << line;
  }
}

#endif  // VQDR_OBS_DISABLED

INSTANTIATE_TEST_SUITE_P(Threads, ObsStressFixture, ::testing::Values(2, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace vqdr
