#include "memo/store.h"

#include <atomic>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <functional>
#include <sstream>

#include "base/check.h"
#include "memo/snapshot.h"
#include "obs/metrics.h"
#include "obs/obs_macros.h"

namespace vqdr::memo {

namespace {

constexpr std::size_t kDefaultCapacity = 8192;

std::size_t CapacityFromEnv() {
  const char* raw = std::getenv("VQDR_MEMO_CAPACITY");
  std::size_t parsed = ParseCapacityEnvValue(raw);
  return parsed == 0 ? kDefaultCapacity : parsed;
}

bool EnabledFromEnv() {
  const char* raw = std::getenv("VQDR_MEMO");
  if (raw == nullptr) return false;
  std::string v(raw);
  return !v.empty() && v != "0" && v != "off" && v != "OFF" && v != "false" &&
         v != "FALSE";
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnabledFromEnv()};
  return flag;
}

}  // namespace

std::size_t ParseCapacityEnvValue(const char* raw) {
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  errno = 0;
  unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (errno == ERANGE || end == raw || *end != '\0') return 0;
  // A negative input wraps modulo 2^64 and "parses"; reject it like the
  // overflow case. SIZE_MAX guards 32-bit size_t against a 64-bit parse.
  if (*raw == '-' || parsed > SIZE_MAX) return 0;
  return static_cast<std::size_t>(parsed);
}

Store::Store(std::size_t capacity, std::size_t shards)
    : capacity_(capacity == 0 ? 1 : capacity),
      shard_count_(shards == 0 ? 1 : shards) {
  if (shard_count_ > capacity_) shard_count_ = capacity_;
  shards_ = std::make_unique<Shard[]>(shard_count_);
}

Store::Shard& Store::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shard_count_];
}

std::shared_ptr<const void> Store::GetErased(const std::string& key,
                                             const std::type_info& type) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || *it->second.type != type) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    VQDR_COUNTER_INC("memo.misses");
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  hits_.fetch_add(1, std::memory_order_relaxed);
  VQDR_COUNTER_INC("memo.hits");
  return it->second.value;
}

void Store::PutErased(const std::string& key,
                      std::shared_ptr<const void> value,
                      const std::type_info& type) {
  VQDR_CHECK(value != nullptr) << "memo::Store::Put: null value";
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    if (*it->second.type == type) {
      // First install wins; the keying discipline guarantees any concurrent
      // computation of the same key produced an equivalent value.
      return;
    }
    // Cross-type collision: keeping the old entry would poison the slot
    // forever (a Get of the new type misses, a Get of the old type can
    // still hit, and every Put of the new type is dropped — the value is
    // recomputed on every call). Replace in place; the previous value stays
    // alive through any outstanding shared_ptr.
    it->second.value = std::move(value);
    it->second.type = &type;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    installs_.fetch_add(1, std::memory_order_relaxed);
    VQDR_COUNTER_INC("memo.installs");
    VQDR_COUNTER_INC("memo.type_replacements");
    return;
  }
  // Capacity is a global bound: evict from this shard's LRU tail until the
  // whole store has room (an unlucky hash may leave this shard empty while
  // others are full — then we insert anyway, a transient overshoot of at
  // most shard_count_ - 1 under concurrency).
  while (total_entries_.load(std::memory_order_relaxed) >= capacity_ &&
         !shard.lru.empty()) {
    const std::string& victim = shard.lru.back();
    shard.map.erase(victim);
    shard.lru.pop_back();
    total_entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    VQDR_COUNTER_INC("memo.evictions");
  }
  shard.lru.push_front(key);
  Entry entry;
  entry.value = std::move(value);
  entry.type = &type;
  entry.lru_it = shard.lru.begin();
  shard.map.emplace(key, std::move(entry));
  total_entries_.fetch_add(1, std::memory_order_relaxed);
  installs_.fetch_add(1, std::memory_order_relaxed);
  VQDR_COUNTER_INC("memo.installs");
}

std::vector<Store::ErasedEntry> Store::ExportEntries() const {
  std::vector<ErasedEntry> out;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    // Walk the LRU list back to front so the export is oldest-first.
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      auto entry = shard.map.find(*it);
      if (entry == shard.map.end()) continue;
      out.push_back({entry->first, entry->second.value, entry->second.type});
    }
  }
  return out;
}

StatsSnapshot Store::Stats() const {
  StatsSnapshot s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.installs = installs_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = size();
  s.capacity = capacity_;
  return s;
}

void Store::Clear() {
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total_entries_.fetch_sub(shards_[i].map.size(),
                             std::memory_order_relaxed);
    shards_[i].map.clear();
    shards_[i].lru.clear();
  }
}

std::size_t Store::size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].map.size();
  }
  return total;
}

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}

bool ResolveUse(const MemoOptions& options) {
  switch (options.use) {
    case Use::kOn:
      return true;
    case Use::kOff:
      return false;
    case Use::kDefault:
      return Enabled();
  }
  return false;
}

Store& GlobalStore() {
  static Store* store = [] {
    Store* s = new Store(CapacityFromEnv());
    // Warm boot: VQDR_MEMO_SNAPSHOT names an on-disk image to restore
    // before the first request touches the store (DESIGN.md §14). A
    // missing or corrupt file is a clean cold boot, never an error.
    LoadSnapshotFromEnv(*s);
    return s;
  }();
  return *store;
}

Store& ResolveStore(const MemoOptions& options) {
  return options.store != nullptr ? *options.store : GlobalStore();
}

StatsSnapshot GlobalStats() { return GlobalStore().Stats(); }

}  // namespace vqdr::memo
