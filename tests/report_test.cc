// Tests for the combined determinacy analysis battery and the
// instance-based determinacy extension (the direction named in the
// paper's conclusion).

#include <gtest/gtest.h>

#include "core/report.h"
#include "cq/parser.h"
#include "gen/workloads.h"
#include "reductions/counterexamples.h"

namespace vqdr {
namespace {

class ReportFixture : public ::testing::Test {
 protected:
  ConjunctiveQuery Cq(const std::string& text) {
    auto q = ParseCq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message();
    return q.value();
  }

  NamePool pool_;
};

TEST_F(ReportFixture, DeterminedCaseProducesRewriting) {
  ViewSet views = PathViews(2);
  ConjunctiveQuery q = ChainQuery(3);
  DeterminacyAnalysisOptions opts;
  opts.search.domain_size = 2;
  DeterminacyReport report =
      AnalyzeDeterminacy(views, q, Schema{{"E", 2}}, opts);
  EXPECT_EQ(report.verdict, DeterminacyVerdict::kDeterminedWithRewriting);
  ASSERT_TRUE(report.rewriting.has_value());
  EXPECT_FALSE(report.monotonicity_violation.has_value());
  EXPECT_NE(report.Summary().find("DETERMINED"), std::string::npos);
}

TEST_F(ReportFixture, SummaryIncludesMetricsBlock) {
  ViewSet views = PathViews(2);
  ConjunctiveQuery q = ChainQuery(3);
  DeterminacyAnalysisOptions opts;
  opts.search.domain_size = 2;
  DeterminacyReport report =
      AnalyzeDeterminacy(views, q, Schema{{"E", 2}}, opts);

#ifndef VQDR_OBS_DISABLED
  // The battery always exercises the chase decision, so its metrics delta
  // must carry the determinacy and homomorphism counters.
  EXPECT_FALSE(report.metrics.empty());
  EXPECT_GE(report.metrics.counters["determinacy.decisions"], 1u);
  EXPECT_GE(report.metrics.counters["cq.hom.attempts"], 1u);

  std::string summary = report.Summary();
  EXPECT_NE(summary.find("[metrics]"), std::string::npos);
  EXPECT_NE(summary.find("determinacy.decisions="), std::string::npos);
#else
  // Under -DVQDR_OBS=OFF the macro layer is compiled out, so macro-ticked
  // counters never move; only the direct-API counters that feed result
  // fields (search.instances, rewrite.candidates, ...) can appear.
  EXPECT_EQ(report.metrics.counters.count("determinacy.decisions"), 0u);
  EXPECT_EQ(report.metrics.counters.count("cq.hom.attempts"), 0u);
#endif
}

TEST_F(ReportFixture, RefutedCaseCarriesCounterexample) {
  ViewSet views;
  views.Add("V", Query::FromCq(Cq("V(x) :- E(x, y)")));
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, y)");
  DeterminacyAnalysisOptions opts;
  opts.search.domain_size = 2;
  DeterminacyReport report =
      AnalyzeDeterminacy(views, q, Schema{{"E", 2}}, opts);
  EXPECT_EQ(report.verdict, DeterminacyVerdict::kRefuted);
  ASSERT_TRUE(report.counterexample.has_value());
  EXPECT_EQ(views.Apply(report.counterexample->d1),
            views.Apply(report.counterexample->d2));
  EXPECT_NE(report.Summary().find("REFUTED"), std::string::npos);
}

TEST_F(ReportFixture, OpenCaseIsReportedAsOpen) {
  // P2-only views vs the 3-chain: not determined unrestrictedly; whether a
  // finite counterexample exists at domain 2 decides the verdict between
  // refuted and open — either way the report must be coherent.
  ViewSet views;
  views.Add("P2", Query::FromCq(Cq("P2(x, y) :- E(x, z), E(z, y)")));
  ConjunctiveQuery q = ChainQuery(3);
  DeterminacyAnalysisOptions opts;
  opts.search.domain_size = 2;
  DeterminacyReport report =
      AnalyzeDeterminacy(views, q, Schema{{"E", 2}}, opts);
  EXPECT_FALSE(report.unrestricted.determined);
  if (report.verdict == DeterminacyVerdict::kRefuted) {
    EXPECT_TRUE(report.counterexample.has_value());
  } else {
    EXPECT_EQ(report.verdict, DeterminacyVerdict::kOpenWithinBound);
    EXPECT_NE(report.Summary().find("OPEN"), std::string::npos);
  }
}

TEST_F(ReportFixture, InstanceDeterminacyOnDeterminedExtent) {
  Schema base{{"E", 2}};
  ViewSet views = PathViews(1);
  Query q = Query::FromCq(ChainQuery(2));
  Instance extent = views.Apply(PathInstance(3));
  auto result = DecideInstanceDeterminacy(views, q, base, extent,
                                          /*extra_values=*/0,
                                          /*max_instances=*/1 << 20);
  EXPECT_TRUE(result.any_preimage);
  EXPECT_TRUE(result.determined_on_instance);
  EXPECT_EQ(result.answer, q.Eval(PathInstance(3)));
}

TEST_F(ReportFixture, InstanceDeterminacyCanHoldWhereGlobalFails) {
  // V(x) = ∃y E(x,y) globally does NOT determine Q() = ∃xy E(x,y) —
  // except it does on every instance, since both are emptiness tests.
  // Sharper: Q(x) = E(x,x). On the extent E is forced to a self-loop only
  // when one element is available and no extras are allowed.
  Schema base{{"E", 2}};
  ViewSet views;
  views.Add("V", Query::FromCq(
                     ParseCq("V(x) :- E(x, y)", pool_).value()));
  Query q = Query::FromCq(ParseCq("Q(x) :- E(x, x)", pool_).value());

  Instance extent(views.OutputSchema());
  extent.AddFact("V", MakeTuple({1}));

  // Without fresh values, E ⊆ {1}×{1}: the only pre-image is {E(1,1)} —
  // instance-determined.
  auto strict = DecideInstanceDeterminacy(views, q, base, extent, 0, 1 << 20);
  EXPECT_TRUE(strict.any_preimage);
  EXPECT_TRUE(strict.determined_on_instance);
  EXPECT_TRUE(strict.answer.Contains(MakeTuple({1})));

  // With one fresh value allowed, E(1,fresh) is also a pre-image and the
  // answers disagree: not instance-determined.
  auto loose = DecideInstanceDeterminacy(views, q, base, extent, 1, 1 << 20);
  EXPECT_TRUE(loose.any_preimage);
  EXPECT_FALSE(loose.determined_on_instance);
  ASSERT_TRUE(loose.disagreement.has_value());
}

TEST_F(ReportFixture, MonotonicityProbeFiresOnProp58) {
  NonMonotonicityFamily family = Prop58Family(pool_);
  // The battery is CQ-focused; Prop 5.8's query is a plain CQ, its views
  // are UCQs, so the unrestricted chase decision does not apply — use the
  // probe directly through the report on the CQ-views variant:
  // here we call the search component via AnalyzeDeterminacy's options on
  // a CQ-view family exhibiting the same effect is not available, so probe
  // the original family directly.
  EnumerationOptions options;
  options.domain_size = 2;
  auto probe = SearchMonotonicityViolation(family.views, family.query,
                                           family.base, options);
  EXPECT_EQ(probe.verdict, SearchVerdict::kCounterexampleFound);
}

}  // namespace
}  // namespace vqdr
