#include "guard/classes.h"

#include <algorithm>
#include <mutex>

namespace vqdr::guard {

namespace {

std::int64_t TightenWall(std::int64_t a, std::int64_t b) {
  if (a < 0) return b;
  if (b < 0) return a;
  return std::min(a, b);
}

std::uint64_t TightenCount(std::uint64_t a, std::uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return std::min(a, b);
}

int TightenLevels(int a, int b) {
  if (a < 0) return b;
  if (b < 0) return a;
  return std::min(a, b);
}

}  // namespace

BudgetSpec TightenSpec(const BudgetSpec& a, const BudgetSpec& b) {
  BudgetSpec out;
  out.wall_ms = TightenWall(a.wall_ms, b.wall_ms);
  out.max_steps = TightenCount(a.max_steps, b.max_steps);
  out.max_atoms = TightenCount(a.max_atoms, b.max_atoms);
  out.max_chase_levels = TightenLevels(a.max_chase_levels, b.max_chase_levels);
  return out;
}

bool BudgetClass::TryAcquire() {
  if (spec_.max_concurrent > 0) {
    // Optimistic claim, roll back on overshoot: cheap for the common
    // under-limit case and exact under contention.
    int now = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (now > spec_.max_concurrent) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  } else {
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void BudgetClass::Release() {
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

BudgetClassTable::BudgetClassTable() {
  BudgetClassSpec def;
  def.name = "default";
  Define(std::move(def));
}

void BudgetClassTable::Define(BudgetClassSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string name = spec.name;
  classes_[name] = std::make_unique<BudgetClass>(std::move(spec));
}

BudgetClass* BudgetClassTable::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : it->second.get();
}

BudgetClass& BudgetClassTable::Resolve(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!name.empty()) {
    auto it = classes_.find(name);
    if (it != classes_.end()) return *it->second;
  }
  return *classes_.at("default");
}

std::vector<std::string> BudgetClassTable::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(classes_.size());
  for (const auto& [name, cls] : classes_) out.push_back(name);
  return out;
}

}  // namespace vqdr::guard
