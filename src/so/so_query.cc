#include "so/so_query.h"

#include <cmath>
#include <functional>
#include <sstream>

#include "base/check.h"
#include "fo/evaluator.h"

namespace vqdr {

namespace {

// All tuples of the given arity over `universe`, in lexicographic order.
std::vector<Tuple> AllTuples(const std::vector<Value>& universe, int arity) {
  std::vector<Tuple> result;
  if (arity == 0) {
    result.push_back(Tuple{});
    return result;
  }
  Tuple current(arity);
  std::function<void(int)> rec = [&](int pos) {
    if (pos == arity) {
      result.push_back(current);
      return;
    }
    for (Value v : universe) {
      current[pos] = v;
      rec(pos + 1);
    }
  };
  rec(0);
  return result;
}

}  // namespace

std::string SoQuery::ToString() const {
  std::ostringstream out;
  out << (existential ? "exists-SO " : "forall-SO ");
  for (std::size_t i = 0; i < relation_vars.size(); ++i) {
    if (i > 0) out << ", ";
    out << relation_vars[i].name << "/" << relation_vars[i].arity;
  }
  out << " . " << matrix.ToString();
  return out.str();
}

StatusOr<Relation> EvaluateSo(const SoQuery& q, const Instance& db,
                              const SoBudget& budget) {
  VQDR_CHECK(q.matrix.formula != nullptr);

  // Universe: active domain plus the matrix's constants.
  std::set<Value> universe_set = db.ActiveDomain();
  for (Value c : q.matrix.formula->Constants()) universe_set.insert(c);
  std::vector<Value> universe(universe_set.begin(), universe_set.end());

  // Candidate tuple pools per quantified relation, with budget checks.
  std::vector<std::vector<Tuple>> pools;
  std::uint64_t total_assignments = 1;
  for (const RelationDecl& decl : q.relation_vars) {
    std::vector<Tuple> pool = AllTuples(universe, decl.arity);
    if (pool.size() > budget.max_tuples_per_relation) {
      return Status::Error("SO budget exceeded: relation " + decl.name +
                           " has " + std::to_string(pool.size()) +
                           " candidate tuples (max " +
                           std::to_string(budget.max_tuples_per_relation) +
                           ")");
    }
    // 2^(pool size) assignments for this relation.
    if (pool.size() >= 63) return Status::Error("SO budget overflow");
    std::uint64_t count = 1ull << pool.size();
    if (total_assignments > budget.max_assignments / count) {
      return Status::Error("SO budget exceeded: too many assignments");
    }
    total_assignments *= count;
    pools.push_back(std::move(pool));
  }

  // Extended schema: base plus quantified relations.
  Schema extended = db.schema();
  for (const RelationDecl& decl : q.relation_vars) {
    extended.Add(decl.name, decl.arity);
  }

  // Enumerate assignments of free variables over the universe; for each,
  // search (∃) or verify (∀) over all relation assignments.
  Relation result(q.head_arity());

  // Checks the matrix truth over all relation assignments.
  auto decide = [&](const std::map<std::string, Value>& binding) -> bool {
    Instance extended_db(extended);
    for (const RelationDecl& d : db.schema().decls()) {
      extended_db.Set(d.name, db.Get(d.name));
    }
    std::function<bool(std::size_t)> rec = [&](std::size_t i) -> bool {
      if (i == pools.size()) {
        bool holds = EvalFo(q.matrix.formula, extended_db, binding);
        return q.existential ? holds : holds;
      }
      const std::vector<Tuple>& pool = pools[i];
      const std::string& name = q.relation_vars[i].name;
      std::uint64_t subsets = 1ull << pool.size();
      for (std::uint64_t mask = 0; mask < subsets; ++mask) {
        Relation rel(q.relation_vars[i].arity);
        for (std::size_t t = 0; t < pool.size(); ++t) {
          if (mask & (1ull << t)) rel.Insert(pool[t]);
        }
        extended_db.Set(name, std::move(rel));
        bool sub = rec(i + 1);
        if (q.existential && sub) return true;
        if (!q.existential && !sub) return false;
      }
      return !q.existential;
    };
    return rec(0);
  };

  if (q.head_arity() == 0) {
    if (decide({})) result.Insert(Tuple{});
    return result;
  }
  if (universe.empty()) return result;

  std::map<std::string, Value> binding;
  std::function<void(std::size_t)> loop = [&](std::size_t i) {
    if (i == q.matrix.free_vars.size()) {
      if (decide(binding)) {
        Tuple answer;
        for (const std::string& v : q.matrix.free_vars) {
          answer.push_back(binding.at(v));
        }
        result.Insert(answer);
      }
      return;
    }
    for (Value v : universe) {
      binding[q.matrix.free_vars[i]] = v;
      loop(i + 1);
    }
    binding.erase(q.matrix.free_vars[i]);
  };
  loop(0);
  return result;
}

StatusOr<bool> SoSentenceHolds(const SoQuery& q, const Instance& db,
                               const SoBudget& budget) {
  VQDR_CHECK_EQ(q.head_arity(), 0) << "SoSentenceHolds on non-Boolean query";
  StatusOr<Relation> result = EvaluateSo(q, db, budget);
  if (!result.ok()) return result.status();
  return !result->empty();
}

}  // namespace vqdr
