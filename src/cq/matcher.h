#ifndef VQDR_CQ_MATCHER_H_
#define VQDR_CQ_MATCHER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cq/conjunctive_query.h"
#include "cq/ucq.h"
#include "data/instance.h"

namespace vqdr {

/// A variable assignment (a homomorphism from query variables to dom).
using Binding = std::map<std::string, Value>;

/// Enumerates every assignment of the variables of `atoms` extending
/// `initial` under which each atom's image is a fact of `db` (i.e. every
/// homomorphism from the atom set into `db`). Invokes `on_match` per match;
/// a false return stops the enumeration. Returns true if the enumeration ran
/// to completion, false if stopped early.
///
/// This single routine powers CQ evaluation, homomorphism search between
/// instances, containment tests, and the chase.
bool ForEachMatch(const std::vector<Atom>& atoms, const Instance& db,
                  const Binding& initial,
                  const std::function<bool(const Binding&)>& on_match);

/// Q(D) for a safe conjunctive query (handles =, ≠ and safe negation).
/// Aborts on unsafe queries; unsatisfiable queries evaluate to empty.
Relation EvaluateCq(const ConjunctiveQuery& q, const Instance& db);

/// Q(D) for a safe UCQ: union of the disjuncts' answers.
Relation EvaluateUcq(const UnionQuery& q, const Instance& db);

/// True iff `tuple` ∈ Q(D). For Boolean queries pass the empty tuple.
bool CqAnswerContains(const ConjunctiveQuery& q, const Instance& db,
                      const Tuple& tuple);

/// True iff the Boolean query is satisfied (head arity must be 0).
bool CqHolds(const ConjunctiveQuery& q, const Instance& db);

}  // namespace vqdr

#endif  // VQDR_CQ_MATCHER_H_
