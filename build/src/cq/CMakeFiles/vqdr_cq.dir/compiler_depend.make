# Empty compiler generated dependencies file for vqdr_cq.
# This may be replaced when dependencies are built.
