#include "cq/matcher.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "base/check.h"
#include "cq/matcher_impl.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vqdr {

namespace {

using matcher_internal::MatchStats;

MatcherEngine ResolveInitialEngine() {
  if (const char* env = std::getenv("VQDR_MATCHER")) {
    std::string v(env);
    if (v == "indexed") return MatcherEngine::kIndexed;
    if (v == "legacy") {
      VQDR_CHECK(MatcherLegacyCompiled())
          << "VQDR_MATCHER=legacy requires a -DVQDR_MATCHER_LEGACY=ON build";
      return MatcherEngine::kLegacy;
    }
    VQDR_CHECK(v.empty()) << "unknown VQDR_MATCHER value: " << v
                          << " (expected indexed or legacy)";
  }
#ifdef VQDR_MATCHER_LEGACY
  // A legacy build routes the whole suite through the oracle by default, so
  // the matcher-legacy CI job proves every golden both ways.
  return MatcherEngine::kLegacy;
#else
  return MatcherEngine::kIndexed;
#endif
}

std::atomic<MatcherEngine>& DefaultEngineSlot() {
  static std::atomic<MatcherEngine> slot{ResolveInitialEngine()};
  return slot;
}

// Resolves a term under a binding; all variables must be bound.
Value ResolveTerm(const Term& t, const Binding& binding) {
  if (t.is_const()) return t.constant();
  auto it = binding.find(t.var());
  VQDR_CHECK(it != binding.end()) << "unbound variable " << t.var();
  return it->second;
}

// Checks negated atoms and disequalities under a full binding.
bool FiltersPass(const ConjunctiveQuery& q, const Instance& db,
                 const Binding& binding) {
  for (const TermComparison& c : q.disequalities()) {
    if (ResolveTerm(c.lhs, binding) == ResolveTerm(c.rhs, binding)) {
      return false;
    }
  }
  for (const Atom& atom : q.negated_atoms()) {
    // A predicate absent from the database schema denotes an empty relation,
    // so the negated atom trivially passes.
    if (!db.schema().Contains(atom.predicate)) continue;
    Tuple ground;
    ground.reserve(atom.args.size());
    for (const Term& t : atom.args) ground.push_back(ResolveTerm(t, binding));
    if (db.HasFact(atom.predicate, ground)) return false;
  }
  return true;
}

}  // namespace

bool MatcherLegacyCompiled() {
#ifdef VQDR_MATCHER_LEGACY
  return true;
#else
  return false;
#endif
}

MatcherEngine DefaultMatcherEngine() {
  return DefaultEngineSlot().load(std::memory_order_relaxed);
}

MatcherEngine SetDefaultMatcherEngine(MatcherEngine engine) {
  if (engine == MatcherEngine::kDefault) engine = ResolveInitialEngine();
  VQDR_CHECK(engine != MatcherEngine::kLegacy || MatcherLegacyCompiled())
      << "legacy matcher requested but not compiled in "
         "(build with -DVQDR_MATCHER_LEGACY=ON)";
  return DefaultEngineSlot().exchange(engine, std::memory_order_relaxed);
}

bool ForEachMatch(const std::vector<Atom>& atoms, const Instance& db,
                  const Binding& initial,
                  const std::function<bool(const Binding&)>& on_match,
                  guard::Budget* budget) {
  return ForEachMatch(atoms, db, initial, on_match, budget, MatcherOptions{});
}

bool ForEachMatch(const std::vector<Atom>& atoms, const Instance& db,
                  const Binding& initial,
                  const std::function<bool(const Binding&)>& on_match,
                  guard::Budget* budget, const MatcherOptions& options) {
  for (const Atom& atom : atoms) {
    // A predicate missing from the database schema denotes an empty
    // relation: the conjunction has no matches.
    if (!db.schema().Contains(atom.predicate)) return true;
    VQDR_CHECK_EQ(*db.schema().ArityOf(atom.predicate), atom.arity())
        << "atom/relation arity mismatch for " << atom.predicate;
  }
  // With tracing off this is one relaxed load; with it on, the hom matcher
  // shows up as its own node in the span-tree profile.
  VQDR_TRACE_SPAN("cq.match", static_cast<std::int64_t>(atoms.size()));
  MatcherEngine engine = options.engine == MatcherEngine::kDefault
                             ? DefaultMatcherEngine()
                             : options.engine;
  MatchStats stats;
  bool completed;
  if (engine == MatcherEngine::kLegacy) {
#ifdef VQDR_MATCHER_LEGACY
    completed = matcher_internal::LegacyMatch(atoms, db, initial, on_match,
                                              stats, budget);
#else
    VQDR_CHECK(false) << "legacy matcher requested but not compiled in "
                         "(build with -DVQDR_MATCHER_LEGACY=ON)";
    completed = false;
#endif
  } else {
    completed = matcher_internal::IndexedMatch(atoms, db, initial, on_match,
                                               stats, budget, options);
  }
  VQDR_COUNTER_ADD("cq.hom.attempts", stats.attempts);
  VQDR_COUNTER_ADD("cq.hom.matches", stats.matches);
  if (stats.index_builds) {
    VQDR_COUNTER_ADD("cq.hom.index.builds", stats.index_builds);
  }
  if (stats.index_lookups) {
    VQDR_COUNTER_ADD("cq.hom.index.lookups", stats.index_lookups);
  }
  if (stats.index_candidates) {
    VQDR_COUNTER_ADD("cq.hom.index.candidates", stats.index_candidates);
  }
  if (stats.fc_prunes) VQDR_COUNTER_ADD("cq.hom.fc.prunes", stats.fc_prunes);
  if (stats.bj_jumps) VQDR_COUNTER_ADD("cq.hom.bj.jumps", stats.bj_jumps);
  if (stats.sym_skips) VQDR_COUNTER_ADD("cq.hom.sym.skips", stats.sym_skips);
  return completed;
}

Relation EvaluateCq(const ConjunctiveQuery& q, const Instance& db) {
  return EvaluateCq(q, db, MatcherOptions{});
}

Relation EvaluateCq(const ConjunctiveQuery& q, const Instance& db,
                    const MatcherOptions& options) {
  VQDR_COUNTER_INC("cq.eval.calls");
  VQDR_CHECK(q.IsSafe()) << "evaluating unsafe query: " << q.ToString();
  bool satisfiable = true;
  ConjunctiveQuery normalized = q.PropagateEqualities(&satisfiable);
  Relation result(q.head_arity());
  if (!satisfiable) return result;

  ForEachMatch(
      normalized.atoms(), db, Binding{},
      [&](const Binding& binding) {
        if (FiltersPass(normalized, db, binding)) {
          Tuple answer;
          answer.reserve(normalized.head_terms().size());
          for (const Term& t : normalized.head_terms()) {
            answer.push_back(ResolveTerm(t, binding));
          }
          result.Insert(answer);
        }
        return true;
      },
      nullptr, options);
  return result;
}

Relation EvaluateUcq(const UnionQuery& q, const Instance& db) {
  return EvaluateUcq(q, db, MatcherOptions{});
}

Relation EvaluateUcq(const UnionQuery& q, const Instance& db,
                     const MatcherOptions& options) {
  VQDR_CHECK(!q.empty()) << "evaluating empty UCQ";
  Relation result(q.head_arity());
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    result = result.Union(EvaluateCq(disjunct, db, options));
  }
  return result;
}

bool CqAnswerContains(const ConjunctiveQuery& q, const Instance& db,
                      const Tuple& tuple, guard::Budget* budget) {
  return CqAnswerContains(q, db, tuple, budget, nullptr, MatcherOptions{});
}

bool CqAnswerContains(const ConjunctiveQuery& q, const Instance& db,
                      const Tuple& tuple, guard::Budget* budget,
                      Binding* witness) {
  return CqAnswerContains(q, db, tuple, budget, witness, MatcherOptions{});
}

bool CqAnswerContains(const ConjunctiveQuery& q, const Instance& db,
                      const Tuple& tuple, guard::Budget* budget,
                      Binding* witness, const MatcherOptions& options) {
  VQDR_COUNTER_INC("cq.answer_contains.calls");
  VQDR_CHECK_EQ(static_cast<int>(tuple.size()), q.head_arity());
  VQDR_CHECK(q.IsSafe()) << "evaluating unsafe query: " << q.ToString();
  bool satisfiable = true;
  ConjunctiveQuery normalized = q.PropagateEqualities(&satisfiable);
  if (!satisfiable) return false;

  // Bind head variables to the target tuple up front; reject if the head's
  // constants disagree with the tuple.
  Binding initial;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    const Term& t = normalized.head_terms()[i];
    if (t.is_const()) {
      if (t.constant() != tuple[i]) return false;
      continue;
    }
    auto it = initial.find(t.var());
    if (it != initial.end()) {
      if (it->second != tuple[i]) return false;
    } else {
      initial.emplace(t.var(), tuple[i]);
    }
  }

  bool found = false;
  ForEachMatch(
      normalized.atoms(), db, initial,
      [&](const Binding& binding) {
        if (FiltersPass(normalized, db, binding)) {
          found = true;
          if (witness != nullptr) *witness = binding;
          return false;  // stop
        }
        return true;
      },
      budget, options);
  return found;
}

bool CqHolds(const ConjunctiveQuery& q, const Instance& db) {
  VQDR_CHECK_EQ(q.head_arity(), 0) << "CqHolds on non-Boolean query";
  return CqAnswerContains(q, db, Tuple{});
}

}  // namespace vqdr
