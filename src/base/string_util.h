#ifndef VQDR_BASE_STRING_UTIL_H_
#define VQDR_BASE_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace vqdr {

/// Joins the elements of `parts` (streamed via operator<<) with `sep`.
template <typename Container>
std::string Join(const Container& parts, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out << sep;
    first = false;
    out << part;
  }
  return out.str();
}

/// Splits `text` on `sep`, trimming nothing; empty pieces are kept.
std::vector<std::string> Split(std::string_view text, char sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace vqdr

#endif  // VQDR_BASE_STRING_UTIL_H_
