#ifndef VQDR_OBS_WATCHDOG_H_
#define VQDR_OBS_WATCHDOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/registry.h"

// Stall watchdog (DESIGN.md §11): a sampling thread that watches the
// in-flight op registry and raises a structured report when an operation
// stops making progress — heartbeats frozen, phase unchanged, budget steps
// flat — for longer than the configured interval.
//
// Progress is fed by heartbeats the engines already emit: every
// guard::Budget checkpoint, progress-ticker stride, and par shard progress
// tick. The watchdog only OBSERVES: it never cancels, never unblocks, never
// alters a verdict. Exactly one report is emitted per stall; if the op
// resumes, the trigger re-arms.
//
//   VQDR_WATCHDOG_MS=2000 ./determinacy_tool ...   # report 2s stalls
//
// Compiled out (inline no-op stubs) under -DVQDR_OBS=OFF.

namespace vqdr::obs {

/// Everything known about a stall at detection time.
struct StallReport {
  /// Wall-clock stamp of the report.
  std::uint64_t unix_ms = 0;
  /// The no-progress threshold that tripped, in milliseconds.
  std::uint64_t stall_ms = 0;
  /// How long the op had shown no progress when the report fired.
  std::uint64_t quiet_ms = 0;
  /// The stalled operation (with its per-op counter deltas).
  OpSnapshot op;
  /// Every in-flight operation at detection time.
  std::vector<OpSnapshot> all_ops;
  /// Last-known live span stack of every known thread.
  std::vector<ThreadStackSnapshot> threads;

  /// One JSON object: {"event":"stall","unix_ms":...,"op":{...},
  /// "all_ops":[...],"threads":[{"tid":..,"op":..,"spans":[...]},...]}.
  std::string ToJson() const;
};

#ifndef VQDR_OBS_DISABLED

/// Starts the watchdog (idempotent; false if already running or stall_ms is
/// 0). `poll_ms` is the sampling period; 0 picks stall_ms/4, clamped to
/// [10ms, 1s]. Reports go to the stall callback when one is set, otherwise
/// to stderr as one JSON line.
bool StartWatchdog(std::uint64_t stall_ms, std::uint64_t poll_ms = 0);

/// Stops and joins the watchdog thread if running.
void StopWatchdog();

bool WatchdogRunning();

/// Test/embedding seam: receive reports instead of the stderr line. Must be
/// thread-safe; called from the watchdog thread. Pass nullptr to restore.
void SetStallCallback(std::function<void(const StallReport&)> callback);

/// Total stall reports emitted since process start.
std::uint64_t WatchdogStallReports();

/// Reads VQDR_WATCHDOG_MS and starts the watchdog when it names a positive
/// integer. Called once from the first OpScope; exposed for tools/tests.
void InitWatchdogFromEnv();

#else  // VQDR_OBS_DISABLED

inline bool StartWatchdog(std::uint64_t, std::uint64_t = 0) { return false; }
inline void StopWatchdog() {}
inline bool WatchdogRunning() { return false; }
inline void SetStallCallback(std::function<void(const StallReport&)>) {}
inline std::uint64_t WatchdogStallReports() { return 0; }
inline void InitWatchdogFromEnv() {}

inline std::string StallReport::ToJson() const { return "{}"; }

#endif  // VQDR_OBS_DISABLED

}  // namespace vqdr::obs

#endif  // VQDR_OBS_WATCHDOG_H_
