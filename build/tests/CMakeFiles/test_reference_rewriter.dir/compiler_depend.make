# Empty compiler generated dependencies file for test_reference_rewriter.
# This may be replaced when dependencies are built.
